package obs

import (
	"bytes"
	"sync"
	"time"
)

// UnixMilli is the sanctioned wall-clock timestamp for service-layer records
// (journal entries, heartbeats). Like the Stopwatch, it lives here because
// internal/obs owns the clock: solver code has no business reading wall time,
// but a daemon journaling "when did this job start" does, and routing that
// read through obs keeps placelint's walltime check meaningful everywhere
// else.
func UnixMilli() int64 {
	return time.Now().UnixMilli()
}

// LineBroadcaster is an io.Writer that splits its input into lines and fans
// each complete line out to every subscriber. It is the bridge between a
// per-job Recorder's JSONL trace and any number of live SSE watchers: the
// recorder writes lines, each subscriber reads them from its own buffered
// channel.
//
// Delivery is best-effort per subscriber: a subscriber whose buffer is full
// drops the oldest pending line rather than blocking the writer — telemetry
// must never be able to stall a solver. Subscribers learn the stream ended
// when their channel closes.
type LineBroadcaster struct {
	mu      sync.Mutex
	partial bytes.Buffer
	subs    map[int]chan string
	nextID  int
	closed  bool
}

// NewLineBroadcaster returns an empty broadcaster with no subscribers.
func NewLineBroadcaster() *LineBroadcaster {
	return &LineBroadcaster{subs: make(map[int]chan string)}
}

// Subscribe registers a new subscriber with the given channel capacity
// (minimum 1) and returns its line channel plus a cancel function. Cancel is
// idempotent and closes the channel; the broadcaster closing also closes it.
func (b *LineBroadcaster) Subscribe(capacity int) (<-chan string, func()) {
	if capacity < 1 {
		capacity = 1
	}
	ch := make(chan string, capacity)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := b.nextID
	b.nextID++
	b.subs[id] = ch
	b.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			if _, ok := b.subs[id]; ok {
				delete(b.subs, id)
				close(ch)
			}
			b.mu.Unlock()
		})
	}
	return ch, cancel
}

// Write splits p into newline-terminated lines, buffering any trailing
// partial line until its newline arrives, and broadcasts each complete line
// (without the newline) to all subscribers. Always returns len(p), nil: a
// broadcaster has no failure mode a writer could act on.
func (b *LineBroadcaster) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return len(p), nil
	}
	b.partial.Write(p)
	for {
		data := b.partial.Bytes()
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			break
		}
		line := string(data[:i])
		b.partial.Next(i + 1)
		//placelint:ignore maporder every subscriber gets every line; cross-subscriber delivery order is unobservable
		for _, ch := range b.subs {
			select {
			case ch <- line:
			default:
				// Buffer full: drop the oldest pending line so the newest
				// telemetry wins, then deliver. Both channel ops are
				// nonblocking — a concurrent reader may have drained or
				// filled the buffer between them.
				select {
				case <-ch:
				default:
				}
				select {
				case ch <- line:
				default:
				}
			}
		}
	}
	return len(p), nil
}

// Close ends the stream: every subscriber channel is closed after the lines
// already delivered, and later writes are discarded. Close is idempotent.
func (b *LineBroadcaster) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	//placelint:ignore maporder closing every subscriber channel; order cannot be observed
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
	return nil
}
