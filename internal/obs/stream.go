package obs

import (
	"bytes"
	"sync"
	"sync/atomic"
	"time"
)

// UnixMilli is the sanctioned wall-clock timestamp for service-layer records
// (journal entries, heartbeats). Like the Stopwatch, it lives here because
// internal/obs owns the clock: solver code has no business reading wall time,
// but a daemon journaling "when did this job start" does, and routing that
// read through obs keeps placelint's walltime check meaningful everywhere
// else.
func UnixMilli() int64 {
	return time.Now().UnixMilli()
}

// LineBroadcaster is an io.Writer that splits its input into lines and fans
// each complete line out to every subscriber. It is the bridge between a
// per-job Recorder's JSONL trace and any number of live SSE watchers: the
// recorder writes lines, each subscriber reads them from its own buffered
// channel.
//
// Delivery is best-effort per subscriber: a subscriber whose buffer is full
// drops the oldest pending line rather than blocking the writer — telemetry
// must never be able to stall a solver. Drops are never silent: each
// subscription counts its own losses (Subscription.Drops) and an optional
// broadcaster-wide hook (SetDropHook) feeds aggregated metrics. Subscribers
// learn the stream ended when their channel closes.
type LineBroadcaster struct {
	mu       sync.Mutex
	partial  bytes.Buffer
	subs     map[int]*Subscription
	nextID   int
	closed   bool
	dropHook func()
}

// NewLineBroadcaster returns an empty broadcaster with no subscribers.
func NewLineBroadcaster() *LineBroadcaster {
	return &LineBroadcaster{subs: make(map[int]*Subscription)}
}

// SetDropHook registers fn to be called once per dropped line, across all
// subscribers. fn must be fast and must not call back into the broadcaster
// (it runs with the broadcaster locked); bumping an atomic counter is the
// intended use. nil clears the hook.
func (b *LineBroadcaster) SetDropHook(fn func()) {
	b.mu.Lock()
	b.dropHook = fn
	b.mu.Unlock()
}

// Subscription is one subscriber's handle on a LineBroadcaster: its line
// channel, its cancel, and its count of dropped lines. A nil *Subscription
// is valid and inert, so callers that may watch a stream-less job never need
// a nil check.
type Subscription struct {
	ch     chan string
	drops  atomic.Int64
	b      *LineBroadcaster
	id     int
	cancel sync.Once
}

// Lines returns the subscriber's channel. Lines arrive without their
// trailing newline; the channel closes when the subscription is canceled or
// the broadcaster closes. A nil subscription returns a nil (forever
// blocking) channel.
func (s *Subscription) Lines() <-chan string {
	if s == nil {
		return nil
	}
	return s.ch
}

// Drops returns how many lines this subscriber has lost to a full buffer —
// the honesty counter a slow SSE client sees echoed on its heartbeats.
// Nil-safe.
func (s *Subscription) Drops() int64 {
	if s == nil {
		return 0
	}
	return s.drops.Load()
}

// Cancel removes the subscription and closes its channel. Idempotent and
// nil-safe; the broadcaster closing cancels every subscription the same way.
func (s *Subscription) Cancel() {
	if s == nil {
		return
	}
	s.cancel.Do(func() {
		s.b.mu.Lock()
		if _, ok := s.b.subs[s.id]; ok {
			delete(s.b.subs, s.id)
			close(s.ch)
		}
		s.b.mu.Unlock()
	})
}

// Subscribe registers a new subscriber with the given channel capacity
// (minimum 1). On a closed broadcaster the returned subscription is already
// canceled: its channel is closed and it will never deliver.
func (b *LineBroadcaster) Subscribe(capacity int) *Subscription {
	if capacity < 1 {
		capacity = 1
	}
	s := &Subscription{ch: make(chan string, capacity), b: b}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		s.cancel.Do(func() {}) // burn the once so Cancel won't double-close
		close(s.ch)
		return s
	}
	s.id = b.nextID
	b.nextID++
	b.subs[s.id] = s
	b.mu.Unlock()
	return s
}

// Write splits p into newline-terminated lines, buffering any trailing
// partial line until its newline arrives, and broadcasts each complete line
// (without the newline) to all subscribers. Always returns len(p), nil: a
// broadcaster has no failure mode a writer could act on.
func (b *LineBroadcaster) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return len(p), nil
	}
	b.partial.Write(p)
	for {
		data := b.partial.Bytes()
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			break
		}
		line := string(data[:i])
		b.partial.Next(i + 1)
		//placelint:ignore maporder every subscriber gets every line; cross-subscriber delivery order is unobservable
		for _, s := range b.subs {
			select {
			case s.ch <- line:
			default:
				// Buffer full: drop the oldest pending line so the newest
				// telemetry wins, then deliver. Both channel ops are
				// nonblocking — a concurrent reader may have drained or
				// filled the buffer between them.
				s.drops.Add(1)
				if b.dropHook != nil {
					b.dropHook()
				}
				select {
				case <-s.ch:
				default:
				}
				select {
				case s.ch <- line:
				default:
				}
			}
		}
	}
	return len(p), nil
}

// Close ends the stream: every subscriber channel is closed after the lines
// already delivered, and later writes are discarded. Close is idempotent.
func (b *LineBroadcaster) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	//placelint:ignore maporder closing every subscriber channel; order cannot be observed
	for id, s := range b.subs {
		delete(b.subs, id)
		close(s.ch)
	}
	return nil
}
