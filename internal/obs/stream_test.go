package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLineBroadcasterDeliversCompleteLines(t *testing.T) {
	b := NewLineBroadcaster()
	sub := b.Subscribe(8)
	defer sub.Cancel()

	// Lines split across writes are reassembled; only complete lines land.
	fmt.Fprintf(b, "alpha\nbe")
	fmt.Fprintf(b, "ta\n")
	b.Close()

	var got []string
	for line := range sub.Lines() {
		got = append(got, line)
	}
	if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("got %q, want [alpha beta]", got)
	}
	if sub.Drops() != 0 {
		t.Fatalf("fast subscriber reports %d drops, want 0", sub.Drops())
	}
}

func TestLineBroadcasterDropsOldestWhenSlow(t *testing.T) {
	b := NewLineBroadcaster()
	sub := b.Subscribe(2)
	defer sub.Cancel()
	var hooked atomic.Int64
	b.SetDropHook(func() { hooked.Add(1) })
	for i := 0; i < 10; i++ {
		fmt.Fprintf(b, "line%d\n", i)
	}
	b.Close()
	var got []string
	for line := range sub.Lines() {
		got = append(got, line)
	}
	if len(got) != 2 {
		t.Fatalf("slow subscriber holds %d lines, want its buffer size 2", len(got))
	}
	// The newest telemetry wins; the tail of the stream survives the drops.
	if got[len(got)-1] != "line9" {
		t.Fatalf("last delivered line = %q, want line9", got[len(got)-1])
	}
	// 10 lines into a 2-slot buffer with no reader: 8 dropped, and the
	// subscription and the registry hook agree on the count.
	if sub.Drops() != 8 {
		t.Fatalf("sub.Drops() = %d, want 8", sub.Drops())
	}
	if hooked.Load() != sub.Drops() {
		t.Fatalf("drop hook fired %d times, subscription counted %d", hooked.Load(), sub.Drops())
	}
}

func TestLineBroadcasterSubscribeAfterClose(t *testing.T) {
	b := NewLineBroadcaster()
	b.Close()
	sub := b.Subscribe(1)
	defer sub.Cancel()
	if _, open := <-sub.Lines(); open {
		t.Fatal("subscription to a closed broadcaster should be closed immediately")
	}
}

func TestLineBroadcasterCancelIsIdempotent(t *testing.T) {
	b := NewLineBroadcaster()
	sub := b.Subscribe(1)
	sub.Cancel()
	sub.Cancel()
	b.Close()
}

func TestNilSubscriptionIsInert(t *testing.T) {
	var sub *Subscription
	if sub.Lines() != nil {
		t.Fatal("nil subscription should expose a nil channel")
	}
	if sub.Drops() != 0 {
		t.Fatal("nil subscription should report zero drops")
	}
	sub.Cancel() // must not panic
}

// TestLineBroadcasterConcurrent exercises writes, subscriptions and
// cancellations racing each other; run with -race.
func TestLineBroadcasterConcurrent(t *testing.T) {
	b := NewLineBroadcaster()
	var readers sync.WaitGroup
	for s := 0; s < 4; s++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			sub := b.Subscribe(4)
			defer sub.Cancel()
			// Drain until the broadcaster closes; the drop-oldest policy
			// guarantees writers never block on us.
			for range sub.Lines() {
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 100; i++ {
				fmt.Fprintf(b, "w%d-%d\n", w, i)
			}
		}(w)
	}
	writers.Wait()
	b.Close()
	readers.Wait()
}
