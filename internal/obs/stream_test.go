package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestLineBroadcasterDeliversCompleteLines(t *testing.T) {
	b := NewLineBroadcaster()
	ch, cancel := b.Subscribe(8)
	defer cancel()

	// Lines split across writes are reassembled; only complete lines land.
	fmt.Fprintf(b, "alpha\nbe")
	fmt.Fprintf(b, "ta\n")
	b.Close()

	var got []string
	for line := range ch {
		got = append(got, line)
	}
	if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("got %q, want [alpha beta]", got)
	}
}

func TestLineBroadcasterDropsOldestWhenSlow(t *testing.T) {
	b := NewLineBroadcaster()
	ch, cancel := b.Subscribe(2)
	defer cancel()
	for i := 0; i < 10; i++ {
		fmt.Fprintf(b, "line%d\n", i)
	}
	b.Close()
	var got []string
	for line := range ch {
		got = append(got, line)
	}
	if len(got) != 2 {
		t.Fatalf("slow subscriber holds %d lines, want its buffer size 2", len(got))
	}
	// The newest telemetry wins; the tail of the stream survives the drops.
	if got[len(got)-1] != "line9" {
		t.Fatalf("last delivered line = %q, want line9", got[len(got)-1])
	}
}

func TestLineBroadcasterSubscribeAfterClose(t *testing.T) {
	b := NewLineBroadcaster()
	b.Close()
	ch, cancel := b.Subscribe(1)
	defer cancel()
	if _, open := <-ch; open {
		t.Fatal("subscription to a closed broadcaster should be closed immediately")
	}
}

func TestLineBroadcasterCancelIsIdempotent(t *testing.T) {
	b := NewLineBroadcaster()
	_, cancel := b.Subscribe(1)
	cancel()
	cancel()
	b.Close()
}

// TestLineBroadcasterConcurrent exercises writes, subscriptions and
// cancellations racing each other; run with -race.
func TestLineBroadcasterConcurrent(t *testing.T) {
	b := NewLineBroadcaster()
	var readers sync.WaitGroup
	for s := 0; s < 4; s++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			ch, cancel := b.Subscribe(4)
			defer cancel()
			// Drain until the broadcaster closes; the drop-oldest policy
			// guarantees writers never block on us.
			for range ch {
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 100; i++ {
				fmt.Fprintf(b, "w%d-%d\n", w, i)
			}
		}(w)
	}
	writers.Wait()
	b.Close()
	readers.Wait()
}
