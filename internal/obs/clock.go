// Clock ownership: this file is the one sanctioned wall-clock access point
// for non-test code outside internal/obs itself. Solver and pipeline code
// must not call time.Now/time.Since directly (placelint's walltime check
// rejects it): timing is telemetry, and concentrating it here keeps the
// solver paths free of hidden nondeterminism and keeps every duration that
// reaches a report flowing through one auditable type.
package obs

import "time"

// Stopwatch measures elapsed wall time for reports and spans. The zero
// value reads as zero elapsed time; real measurements start with
// StartStopwatch. A Stopwatch is a value — copy it freely, read it from
// any goroutine.
type Stopwatch struct {
	t0 time.Time
}

// StartStopwatch starts timing now.
func StartStopwatch() Stopwatch {
	return Stopwatch{t0: time.Now()}
}

// Started reports whether the stopwatch was actually started (false for the
// zero value), so callers can skip recording durations that would read as a
// meaningless zero.
func (s Stopwatch) Started() bool {
	return !s.t0.IsZero()
}

// Elapsed returns the wall time since the stopwatch started (zero for the
// zero value).
func (s Stopwatch) Elapsed() time.Duration {
	if s.t0.IsZero() {
		return 0
	}
	return time.Since(s.t0)
}

// Seconds returns Elapsed in seconds, the unit run reports use.
func (s Stopwatch) Seconds() float64 {
	return s.Elapsed().Seconds()
}
