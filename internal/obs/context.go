package obs

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying r, so the recorder rides the same context
// that already threads cancellation through every pipeline stage.
func NewContext(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// From extracts the recorder from ctx, or nil (a valid disabled recorder)
// when none is attached. Stages call it once at entry, never per iteration.
func From(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
