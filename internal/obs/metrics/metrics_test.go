package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentIncrements drives counters, gauges and histograms from 1, 2
// and 4 workers and checks the totals are exact. Run with -race: the hot
// path must be safe without a lock.
func TestConcurrentIncrements(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		r := NewRegistry()
		c := r.Counter("test_ops_total", "ops")
		g := r.Gauge("test_level", "level")
		h := r.Histogram("test_latency_seconds", "latency", []float64{0.1, 1})
		cv := r.CounterVec("test_by_kind_total", "by kind", "kind")
		const perWorker = 1000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					c.Inc()
					g.Add(1)
					h.Observe(0.5)
					cv.With("a").Inc()
				}
			}()
		}
		wg.Wait()
		want := int64(workers * perWorker)
		if got := c.Value(); got != want {
			t.Errorf("workers=%d: counter = %d, want %d", workers, got, want)
		}
		if got := g.Value(); got != want {
			t.Errorf("workers=%d: gauge = %d, want %d", workers, got, want)
		}
		if got := h.Count(); got != want {
			t.Errorf("workers=%d: histogram count = %d, want %d", workers, got, want)
		}
		if got := h.Sum(); got != 0.5*float64(want) {
			t.Errorf("workers=%d: histogram sum = %g, want %g", workers, got, 0.5*float64(want))
		}
		if got := cv.With("a").Value(); got != want {
			t.Errorf("workers=%d: vec child = %d, want %d", workers, got, want)
		}
	}
}

// TestExpositionDeterministic pins the byte-identical-scrapes contract:
// families in sorted name order, children in sorted label order, and two
// consecutive WriteText calls on an idle registry producing identical bytes.
func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	// Register deliberately out of name order.
	r.Gauge("zz_depth", "depth")
	r.Counter("aa_total", "total")
	cv := r.CounterVec("mm_by_state_total", "by state", "state")
	cv.With("running").Inc()
	cv.With("done").Add(2)
	cv.With("queued")

	var one, two bytes.Buffer
	if err := r.WriteText(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatalf("two idle scrapes differ:\n--- first\n%s--- second\n%s", one.String(), two.String())
	}

	text := one.String()
	aa := strings.Index(text, "# HELP aa_total")
	mm := strings.Index(text, "# HELP mm_by_state_total")
	zz := strings.Index(text, "# HELP zz_depth")
	if aa < 0 || mm < 0 || zz < 0 || !(aa < mm && mm < zz) {
		t.Fatalf("families not in sorted name order:\n%s", text)
	}
	done := strings.Index(text, `mm_by_state_total{state="done"} 2`)
	queued := strings.Index(text, `mm_by_state_total{state="queued"} 0`)
	running := strings.Index(text, `mm_by_state_total{state="running"} 1`)
	if done < 0 || queued < 0 || running < 0 || !(done < queued && queued < running) {
		t.Fatalf("vec children not in sorted label order:\n%s", text)
	}
}

// TestHistogramBuckets pins the bucket boundary semantics: le is inclusive
// (v <= bound lands in the bucket), exposition is cumulative, and the +Inf
// bucket equals the count.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "t", []float64{1, 2})
	h.Observe(0.5) // le="1"
	h.Observe(1)   // boundary: still le="1"
	h.Observe(1.5) // le="2"
	h.Observe(99)  // +Inf only
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`test_seconds_bucket{le="1"} 2`,
		`test_seconds_bucket{le="2"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		`test_seconds_sum 102`,
		`test_seconds_count 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestNaNObservationsDropped keeps NaN out of the sum.
func TestNaNObservationsDropped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "t", []float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("NaN observation was counted")
	}
}

// TestRegistrationPanics pins the fail-loudly contract for wiring bugs.
func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(r *Registry)
	}{
		{"duplicate name", func(r *Registry) {
			r.Counter("dup_total", "a")
			r.Counter("dup_total", "b")
		}},
		{"duplicate across kinds", func(r *Registry) {
			r.Counter("dup_total", "a")
			r.Gauge("dup_total", "b")
		}},
		{"non-snake-case name", func(r *Registry) {
			r.Counter("BadName", "a")
		}},
		{"non-snake-case label", func(r *Registry) {
			r.CounterVec("ok_total", "a", "Bad-Label")
		}},
		{"non-increasing buckets", func(r *Registry) {
			r.Histogram("h_seconds", "a", []float64{2, 1})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.f(NewRegistry())
		})
	}
}

// TestNilRegistryInert pins the disabled mode: a nil registry hands out nil
// instruments whose methods are no-ops, and nil exposition writes nothing.
func TestNilRegistryInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	g := r.Gauge("x", "x")
	h := r.Histogram("x_seconds", "x", []float64{1})
	cv := r.CounterVec("x_by_total", "x", "k")
	hv := r.HistogramVec("x_by_seconds", "x", "k", []float64{1})
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	cv.With("a").Inc()
	hv.With("a").Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteText = (%d bytes, %v), want empty", buf.Len(), err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry Snapshot must be nil")
	}
}

// TestDisabledPathAllocFree mirrors the obs recorder's overhead contract:
// the disabled (nil) instruments must not allocate on the hot path.
func TestDisabledPathAllocFree(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		cv *CounterVec
		hv *HistogramVec
	)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(1)
		h.Observe(0.5)
		cv.With("a").Inc()
		hv.With("a").Observe(0.5)
	}); n != 0 {
		t.Fatalf("nil instruments allocated %.1f times per op, want 0", n)
	}
}

// TestSnapshot pins the run-report snapshot shape: counters and gauges only,
// vec children keyed name{label="value"}.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "jobs").Add(3)
	r.Gauge("depth", "depth").Set(7)
	r.CounterVec("rejects_total", "rejects", "reason").With("full").Add(2)
	r.Histogram("lat_seconds", "lat", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["jobs_total"] != 3 || snap["depth"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap[`rejects_total{reason="full"}`] != 2 {
		t.Fatalf("vec child key missing: %v", snap)
	}
	if _, ok := snap["lat_seconds"]; ok {
		t.Fatal("histograms must not appear in snapshots")
	}
}

// BenchmarkCounterInc is the enabled hot path: one atomic add.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve is the enabled observation path: a short bucket
// scan plus three atomics.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "bench", []float64{0.001, 0.01, 0.1, 1, 10})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.05)
	}
}

// BenchmarkCounterIncDisabled is the nil path instrumented code pays when
// metrics are off.
func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
