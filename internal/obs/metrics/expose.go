package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteText writes every family in Prometheus text exposition format
// (version 0.0.4): families in sorted name order, children in sorted
// label-value order, histogram buckets cumulative with an implicit +Inf.
// HELP and TYPE lines are emitted even for families with no samples yet, so
// the series namespace a daemon exports is visible from its first scrape.
// Two scrapes of an idle registry produce byte-identical output. Nil-safe:
// a nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := r.families
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		if err := writeFamily(w, fams[name]); err != nil {
			return err
		}
	}
	return nil
}

// writeFamily writes one family's HELP/TYPE header and samples.
func writeFamily(w io.Writer, f *family) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	switch {
	case f.counter != nil:
		return writeSample(w, f.name, "", "", f.counter.Value())
	case f.gauge != nil:
		return writeSample(w, f.name, "", "", f.gauge.Value())
	case f.hist != nil:
		return writeHistogram(w, f.name, "", "", f.hist)
	case f.cvec != nil:
		for _, val := range f.cvec.sortedValues() {
			if err := writeSample(w, f.name, f.label, val, f.cvec.child(val).Value()); err != nil {
				return err
			}
		}
	case f.hvec != nil:
		for _, val := range f.hvec.sortedValues() {
			if err := writeHistogram(w, f.name, f.label, val, f.hvec.child(val)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample writes one integer-valued sample line, labeled when label is
// non-empty.
func writeSample(w io.Writer, name, label, value string, v int64) error {
	if label == "" {
		_, err := fmt.Fprintf(w, "%s %d\n", name, v)
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, value, v)
	return err
}

// writeHistogram writes the cumulative _bucket series plus _sum and _count.
// label/value tag every line when label is non-empty.
func writeHistogram(w io.Writer, name, label, value string, h *Histogram) error {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.upper) {
			le = formatFloat(h.upper[i])
		}
		var err error
		if label == "" {
			_, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		} else {
			_, err = fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n",
				name, label, value, le, cum)
		}
		if err != nil {
			return err
		}
	}
	suffix := ""
	if label != "" {
		suffix = fmt.Sprintf("{%s=%q}", label, value)
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.Count())
	return err
}

// formatFloat renders a float the shortest way that round-trips, matching
// what Prometheus clients emit for bucket bounds and sums.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text per the
// exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns the GET /metrics endpoint: the text exposition with the
// Prometheus content type. Nil-safe: a nil registry serves an empty body.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// Snapshot returns the current value of every counter and gauge sample —
// labeled children keyed "name{label=\"value\"}" — for embedding in run
// reports. Histograms are excluded: their state is the full bucket vector,
// which belongs to /metrics, not a point-in-time summary. Nil-safe: a nil
// registry returns nil.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	//placelint:ignore maporder values land in a map keyed by sample name; order cannot be observed
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	out := make(map[string]float64)
	for _, f := range fams {
		switch {
		case f.counter != nil:
			out[f.name] = float64(f.counter.Value())
		case f.gauge != nil:
			out[f.name] = float64(f.gauge.Value())
		case f.cvec != nil:
			for _, val := range f.cvec.sortedValues() {
				key := fmt.Sprintf("%s{%s=%q}", f.name, f.label, val)
				out[key] = float64(f.cvec.child(val).Value())
			}
		}
	}
	return out
}
