// Package metrics is a deterministic, stdlib-only metrics registry for the
// placement service: counters, gauges and fixed-bucket histograms with
// Prometheus text-format exposition. It is the aggregated, scrapeable
// complement to the obs flight recorder — the Recorder tells the story of
// one run, the registry accumulates fleet state across every job a daemon
// serves.
//
// The package follows the obs Recorder's cost discipline:
//
//   - The hot path is lock-free. Counter.Add, Gauge.Set and
//     Histogram.Observe are a handful of atomic operations; registration
//     (which takes a lock) happens once at startup, never per event.
//   - Everything is nil-safe. A nil *Registry hands out nil instruments and
//     a nil instrument's methods are a pointer check and a return — no
//     locks, no allocations — so instrumented code never needs a nil check
//     and a binary that doesn't serve /metrics pays ~nothing.
//   - Exposition is reproducible. Families export in sorted name order and
//     labeled children in sorted label-value order, so two scrapes of an
//     idle registry are byte-identical. No timestamps, no wall-clock reads:
//     time only enters as durations the caller measured via obs.Stopwatch.
//
// Metric names must be snake_case ([a-z][a-z0-9_]*); this repository
// additionally prefixes daemon-level series dpplaced_* and pipeline-level
// series dpplace_*. Registration panics on an invalid name, a duplicate
// name, or mismatched buckets — misregistration is a programmer error the
// placelint metricnames check also rejects statically.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// nameRE is the snake_case shape every metric and label name must match.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// kind discriminates the exposition type of a family.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

// String names the kind in Prometheus TYPE lines.
func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds one process's metric families. The zero value is not
// usable; call NewRegistry. A nil *Registry is a valid, permanently
// disabled registry: every constructor returns a nil instrument whose
// methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one registered metric name: its metadata plus either a single
// unlabeled instrument or a vec of labeled children.
type family struct {
	name    string
	help    string
	kind    kind
	label   string    // label name; "" for unlabeled families
	buckets []float64 // histogram upper bounds (without +Inf)

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cvec    *CounterVec
	hvec    *HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register validates and claims a family name, panicking on misuse: an
// invalid name or label, a duplicate registration, or bad buckets. These are
// wiring bugs, not runtime conditions, so failing loudly at startup beats
// exporting a corrupt namespace.
func (r *Registry) register(f *family) {
	if !nameRE.MatchString(f.name) {
		panic(fmt.Sprintf("metrics: name %q is not snake_case", f.name))
	}
	if f.label != "" && !nameRE.MatchString(f.label) {
		panic(fmt.Sprintf("metrics: label %q on %s is not snake_case", f.label, f.name))
	}
	for i, b := range f.buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("metrics: %s bucket %d is not finite", f.name, i))
		}
		if i > 0 && b <= f.buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s buckets are not strictly increasing", f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %s", f.name))
	}
	r.families[f.name] = f
}

// Counter registers and returns an unlabeled counter. Nil-safe: a nil
// registry returns a nil (inert) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: counterKind, counter: c})
	return c
}

// Gauge registers and returns an unlabeled gauge. Nil-safe.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: gaugeKind, gauge: g})
	return g
}

// Histogram registers and returns an unlabeled fixed-bucket histogram.
// buckets are the upper bounds (exclusive of +Inf, which is implicit) and
// must be finite and strictly increasing. Nil-safe.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(buckets)
	r.register(&family{name: name, help: help, kind: histogramKind,
		buckets: h.upper, hist: h})
	return h
}

// CounterVec registers and returns a counter family keyed by one label.
// Children are created on first With and live forever, so label values must
// come from a bounded enum (a state machine, an error taxonomy), never from
// user input. Nil-safe.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	v := &CounterVec{children: make(map[string]*Counter)}
	r.register(&family{name: name, help: help, kind: counterKind, label: label, cvec: v})
	return v
}

// HistogramVec registers and returns a histogram family keyed by one label,
// with the same bucket layout for every child. The bounded-enum rule of
// CounterVec applies. Nil-safe.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	ref := newHistogram(buckets)
	v := &HistogramVec{buckets: ref.upper, children: make(map[string]*Histogram)}
	r.register(&family{name: name, help: help, kind: histogramKind, label: label,
		buckets: ref.upper, hvec: v})
	return v
}

// Counter is a monotonically increasing count. The nil counter is inert.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (negative deltas are ignored —
// counters never go down). Instrumented solver loops call it per
// iteration, so it is part of the §14 zero-allocation contract.
//
//placelint:hotpath
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
//
//placelint:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The nil gauge is inert.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
//
//placelint:hotpath
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (either sign).
//
//placelint:hotpath
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets and tracks their sum.
// Bucket counts are per-bucket (not cumulative) internally and cumulated at
// exposition, the Prometheus convention. The nil histogram is inert.
type Histogram struct {
	upper  []float64      // sorted upper bounds, +Inf excluded
	counts []atomic.Int64 // len(upper)+1; the last slot is the +Inf bucket
	sum    atomicFloat
	count  atomic.Int64
}

// newHistogram copies buckets so callers can reuse literals.
func newHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum the way they poison a JSON trace). Observe sits on the
// scheduler and solver-bridge hot paths, hence the zero-alloc contract.
//
//placelint:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// CounterVec is a family of counters keyed by one label value. The nil vec
// is inert: With returns a nil counter.
type CounterVec struct {
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the label value, creating it (at zero)
// on first use. Pre-seeding every enum value at startup keeps the exposed
// series set identical across daemon instances.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.children[value]
	if c == nil {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// HistogramVec is a family of histograms keyed by one label value, sharing
// one bucket layout. The nil vec is inert: With returns a nil histogram.
type HistogramVec struct {
	buckets  []float64
	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for the label value, creating it empty
// on first use.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	h := v.children[value]
	if h == nil {
		h = newHistogram(v.buckets)
		v.children[value] = h
	}
	return h
}

// sortedValues returns the vec's label values in sorted order. Shared by
// exposition and snapshots so both walk children deterministically.
func (v *CounterVec) sortedValues() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.children))
	for val := range v.children {
		vals = append(vals, val)
	}
	sort.Strings(vals)
	return vals
}

// sortedValues returns the vec's label values in sorted order.
func (v *HistogramVec) sortedValues() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.children))
	for val := range v.children {
		vals = append(vals, val)
	}
	sort.Strings(vals)
	return vals
}

// child returns the existing child for value without creating one.
func (v *CounterVec) child(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.children[value]
}

// child returns the existing child for value without creating one.
func (v *HistogramVec) child(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.children[value]
}

// atomicFloat is a float64 with atomic add, stored as IEEE-754 bits. The
// CAS loop is the standard lock-free float accumulator; contention is low
// (one histogram sum per family).
type atomicFloat struct {
	bits atomic.Uint64
}

// add atomically adds v.
//
//placelint:hotpath
func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// load returns the current value.
func (f *atomicFloat) load() float64 {
	return math.Float64frombits(f.bits.Load())
}
