package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// decodeTrace parses a JSONL buffer into generic maps, one per line.
func decodeTrace(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if _, ok := m["ev"]; !ok {
			t.Fatalf("line missing ev discriminator: %q", line)
		}
		if _, ok := m["t"]; !ok {
			t.Fatalf("line missing t timestamp: %q", line)
		}
		out = append(out, m)
	}
	return out
}

func ofKind(evs []map[string]any, kind string) []map[string]any {
	var out []map[string]any
	for _, e := range evs {
		if e["ev"] == kind {
			out = append(out, e)
		}
	}
	return out
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Active() {
		t.Fatal("nil recorder reports active")
	}
	r.Add("x", 1)
	r.SolverIter("s", 0, 0, 1, 1)
	r.SolverEvent("s", 0, "k", 0, 1, 1)
	r.OuterIter("s", TrajectoryPoint{})
	r.Degrade("s", 0, "r")
	r.Event("s", "n")
	r.Logf(Error, "s", "msg %d", 1)
	if r.LogEnabled(Error) {
		t.Fatal("nil recorder reports log enabled")
	}
	if r.Counter("x") != 0 || r.Counters() != nil || r.Trajectory() != nil {
		t.Fatal("nil recorder returned non-zero state")
	}
	sp := r.Span("root")
	if sp != nil {
		t.Fatal("nil recorder returned non-nil span")
	}
	sp.Add("k", 1) // nil span: all no-ops
	sp.End()
	if c := sp.Child("c"); c != nil {
		t.Fatal("nil span returned non-nil child")
	}
}

func TestDisabledRecorderInert(t *testing.T) {
	r := New()
	if r.Active() {
		t.Fatal("fresh recorder is active")
	}
	r.Add("x", 5)
	r.SolverIter("s", 0, 0, 1, 1)
	if sp := r.Span("root"); sp != nil {
		t.Fatal("disabled recorder returned non-nil span")
	}
	if r.Counter("x") != 0 {
		t.Fatal("disabled recorder accumulated a counter")
	}
}

func TestSpanNesting(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.SetTrace(&buf)

	root := r.Span("place")
	g := root.Child("global")
	g.Add("outer_iters", 3)
	g.Add("outer_iters", 2)
	gg := g.Child("solve")
	gg.End()
	g.End()
	g.End() // idempotent
	root.End()

	evs := decodeTrace(t, &buf)
	starts := ofKind(evs, "span")
	ends := ofKind(evs, "span_end")
	if len(starts) != 3 {
		t.Fatalf("got %d span starts, want 3", len(starts))
	}
	if len(ends) != 3 {
		t.Fatalf("got %d span ends, want 3 (End must be idempotent)", len(ends))
	}
	// Parent links: place is a root (parent 0); global's parent is place's
	// id; solve's parent is global's id.
	ids := map[string]float64{}
	for _, s := range starts {
		ids[s["name"].(string)] = s["id"].(float64)
	}
	for _, s := range starts {
		switch s["name"] {
		case "place":
			if s["parent"].(float64) != 0 {
				t.Errorf("place parent = %v, want 0", s["parent"])
			}
		case "global":
			if s["parent"].(float64) != ids["place"] {
				t.Errorf("global parent = %v, want %v", s["parent"], ids["place"])
			}
		case "solve":
			if s["parent"].(float64) != ids["global"] {
				t.Errorf("solve parent = %v, want %v", s["parent"], ids["global"])
			}
		}
	}
	// The global span_end carries its counters; they also roll up to the
	// recorder total under "global/outer_iters".
	for _, e := range ends {
		if e["name"] != "global" {
			continue
		}
		cs, ok := e["counters"].(map[string]any)
		if !ok {
			t.Fatalf("global span_end missing counters: %v", e)
		}
		if cs["outer_iters"].(float64) != 5 {
			t.Errorf("span counter outer_iters = %v, want 5", cs["outer_iters"])
		}
		if _, hasDur := e["dur"]; !hasDur {
			t.Error("span_end missing dur")
		}
	}
	if got := r.Counter("global/outer_iters"); got != 5 {
		t.Errorf("recorder total global/outer_iters = %d, want 5", got)
	}
}

func TestCounterAggregation(t *testing.T) {
	r := New()
	r.Collect()
	r.Add("a", 2)
	r.Add("a", 3)
	r.Add("b", 1)
	r.Add("zero", 0) // no-op; must not create the key
	cs := r.Counters()
	if cs["a"] != 5 || cs["b"] != 1 {
		t.Fatalf("counters = %v, want a=5 b=1", cs)
	}
	if _, ok := cs["zero"]; ok {
		t.Fatal("zero-delta Add created a counter")
	}
	// SolverEvent bumps the stage/kind counter even in collect-only mode.
	r.SolverEvent("global", 1, "cg-restart", 7, 1.5, 0.1)
	r.SolverEvent("global", 1, "cg-restart", 9, 1.4, 0.1)
	if got := r.Counter("global/cg-restart"); got != 2 {
		t.Fatalf("global/cg-restart = %d, want 2", got)
	}
	r.Degrade("legalize", 3, "fallback")
	if got := r.Counter("degradations"); got != 1 {
		t.Fatalf("degradations = %d, want 1", got)
	}
}

func TestTrajectoryCollection(t *testing.T) {
	r := New()
	r.Collect()
	r.OuterIter("global", TrajectoryPoint{Outer: 0, HPWL: 100, Lambda: 1e-4})
	r.OuterIter("global", TrajectoryPoint{Outer: 1, HPWL: 90, Lambda: 2e-4})
	traj := r.Trajectory()
	if len(traj) != 2 {
		t.Fatalf("trajectory length = %d, want 2", len(traj))
	}
	if traj[0].HPWL != 100 || traj[1].Lambda != 2e-4 {
		t.Fatalf("trajectory content wrong: %+v", traj)
	}
	// The returned slice is a copy.
	traj[0].HPWL = -1
	if r.Trajectory()[0].HPWL != 100 {
		t.Fatal("Trajectory returned the internal slice, not a copy")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.SetTrace(&buf)
	r.SolverIter("global", 2, 17, 123.5, 0.25)
	r.SolverEvent("global", 2, "nan-rollback", 18, math.NaN(), 0.5)
	r.OuterIter("global", TrajectoryPoint{Outer: 2, Inner: 40, HPWL: 99, Overflow: 0.3,
		Objective: 123.5, Lambda: 1e-3, Alpha: 2, Gamma: 40})
	r.Degrade("extract", 4, "degenerate group")
	r.Event("legalize", "deadline")

	evs := decodeTrace(t, &buf)

	iters := ofKind(evs, "iter")
	if len(iters) != 1 {
		t.Fatalf("got %d iter events, want 1", len(iters))
	}
	it := iters[0]
	if it["stage"] != "global" || it["outer"].(float64) != 2 ||
		it["iter"].(float64) != 17 || it["f"].(float64) != 123.5 ||
		it["gnorm"].(float64) != 0.25 {
		t.Fatalf("iter event fields wrong: %v", it)
	}

	recs := ofKind(evs, "recovery")
	if len(recs) != 1 {
		t.Fatalf("got %d recovery events, want 1", len(recs))
	}
	rec := recs[0]
	if rec["kind"] != "nan-rollback" {
		t.Fatalf("recovery kind = %v", rec["kind"])
	}
	if rec["f"] != nil {
		t.Fatalf("NaN objective should serialize as null, got %v", rec["f"])
	}
	if rec["step"].(float64) != 0.5 {
		t.Fatalf("recovery step = %v, want 0.5", rec["step"])
	}

	outs := ofKind(evs, "outer")
	if len(outs) != 1 {
		t.Fatalf("got %d outer events, want 1", len(outs))
	}
	out := outs[0]
	for k, want := range map[string]float64{
		"outer": 2, "inner": 40, "hpwl": 99, "overflow": 0.3,
		"objective": 123.5, "lambda": 1e-3, "alpha": 2, "gamma": 40,
	} {
		if out[k].(float64) != want {
			t.Errorf("outer event %s = %v, want %v", k, out[k], want)
		}
	}

	degs := ofKind(evs, "degrade")
	if len(degs) != 1 || degs[0]["group"].(float64) != 4 ||
		degs[0]["reason"] != "degenerate group" {
		t.Fatalf("degrade event wrong: %v", degs)
	}
	marks := ofKind(evs, "event")
	if len(marks) != 1 || marks[0]["stage"] != "legalize" || marks[0]["name"] != "deadline" {
		t.Fatalf("marker event wrong: %v", marks)
	}
}

func TestLogLevels(t *testing.T) {
	var logBuf bytes.Buffer
	r := New()
	r.SetLog(&logBuf, Info)

	if r.LogEnabled(Debug) {
		t.Fatal("Debug enabled at Info threshold")
	}
	if !r.LogEnabled(Info) || !r.LogEnabled(Warn) || !r.LogEnabled(Error) {
		t.Fatal("Info/Warn/Error should be enabled at Info threshold")
	}
	r.Logf(Debug, "global", "dropped %d", 1)
	r.Logf(Warn, "global", "kept %d", 2)
	out := logBuf.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("debug line leaked past Info threshold: %q", out)
	}
	if !strings.Contains(out, "warn") || !strings.Contains(out, "kept 2") {
		t.Fatalf("warn line malformed: %q", out)
	}

	// Log lines mirror into the trace when one is attached.
	var traceBuf bytes.Buffer
	r.SetTrace(&traceBuf)
	r.Logf(Error, "core", "boom")
	logs := ofKind(decodeTrace(t, &traceBuf), "log")
	if len(logs) != 1 || logs[0]["level"] != "error" ||
		logs[0]["stage"] != "core" || logs[0]["msg"] != "boom" {
		t.Fatalf("trace log event wrong: %v", logs)
	}

	// Attaching only a log sink must not activate event recording.
	r2 := New()
	r2.SetLog(&logBuf, Debug)
	if r2.Active() {
		t.Fatal("SetLog alone turned event recording on")
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{Debug: "debug", Info: "info", Warn: "warn", Error: "error"} {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, l.String(), want)
		}
	}
}

func TestContextThreading(t *testing.T) {
	if From(nil) != nil {
		t.Fatal("From(nil ctx) should be nil")
	}
	ctx := t.Context()
	if From(ctx) != nil {
		t.Fatal("From(plain ctx) should be nil")
	}
	r := New()
	if got := From(NewContext(ctx, r)); got != r {
		t.Fatal("recorder did not round-trip through context")
	}
	// NewContext with a nil recorder is the identity, so a nil recorder
	// never masks an outer one.
	if NewContext(ctx, nil) != ctx {
		t.Fatal("NewContext(ctx, nil) should return ctx unchanged")
	}
}

func TestJFSanitization(t *testing.T) {
	if jf(math.NaN()) != nil || jf(math.Inf(1)) != nil || jf(math.Inf(-1)) != nil {
		t.Fatal("non-finite values must map to nil")
	}
	if v := jf(1.5); v == nil || *v != 1.5 {
		t.Fatal("finite value must round-trip")
	}
}
