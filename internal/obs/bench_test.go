package obs

import (
	"io"
	"testing"
)

// TestDisabledPathAllocFree pins the tentpole's overhead contract: with
// recording off, the hot-path methods must not allocate at all.
func TestDisabledPathAllocFree(t *testing.T) {
	r := New()
	if n := testing.AllocsPerRun(1000, func() {
		r.SolverIter("global", 1, 2, 3.0, 4.0)
		r.SolverEvent("global", 1, "cg-restart", 2, 3.0, 4.0)
		r.Add("k", 1)
		r.OuterIter("global", TrajectoryPoint{})
		r.Event("global", "x")
		sp := r.Span("s")
		sp.Add("k", 1)
		sp.End()
	}); n != 0 {
		t.Fatalf("disabled recorder allocated %.1f times per op, want 0", n)
	}
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		nilRec.SolverIter("global", 1, 2, 3.0, 4.0)
		nilRec.Add("k", 1)
	}); n != 0 {
		t.Fatalf("nil recorder allocated %.1f times per op, want 0", n)
	}
}

// BenchmarkRecorderDisabled measures the cost instrumentation adds to a hot
// solver loop when recording is off: it must stay at the
// single-atomic-load level (ns per op, zero allocs).
func BenchmarkRecorderDisabled(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SolverIter("global", 1, i, 123.0, 0.5)
	}
}

// BenchmarkRecorderDisabledNil is the same loop through a nil recorder, the
// shape stages see when no recorder rides the context.
func BenchmarkRecorderDisabledNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SolverIter("global", 1, i, 123.0, 0.5)
	}
}

// BenchmarkRecorderEnabled is the reference point for the enabled path with
// a discarding sink: the cost a traced run pays per accepted iterate.
func BenchmarkRecorderEnabled(b *testing.B) {
	r := New()
	r.SetTrace(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SolverIter("global", 1, i, 123.0, 0.5)
	}
}
