package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReportSchema identifies the run-report JSON layout.
const ReportSchema = "dpplace-run-report/v1"

// RunReport is the machine-readable summary of one placement run: the final
// quality numbers, per-stage timings, aggregated counters, degradations and
// the λ-schedule trajectory. It is what -report writes and what the bench
// harness stores as BENCH_*.json.
type RunReport struct {
	Schema  string `json:"schema"`
	Design  string `json:"design"`
	Mode    string `json:"mode"`
	Exit    string `json:"exit"` // ok|timeout|diverged|degenerate-groups|malformed-input|error
	Partial bool   `json:"partial,omitempty"`

	// Workers is the resolved worker count of the parallel placement engine
	// (1 = fully serial). ParallelSpeedup is the wall-clock speedup of the
	// global-place stage relative to a workers=1 run of the same design; it
	// is filled by sweep harnesses (make bench) that have both timings, and
	// is zero in single runs.
	Workers         int     `json:"workers,omitempty"`
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`

	// Incremental-evaluation effectiveness of the global-place engine.
	// DirtyNetRatio is net recomputations over total per-net decisions
	// (recomputations + reuses): 1.0 means every evaluation recomputed every
	// net (no reuse), small values mean the epoch scheme proved most nets
	// clean. FullRecomputes and DeltaRecomputes count whole objective
	// evaluations by kind: ones that recomputed every incident net versus
	// ones that reused at least one cached per-net result.
	DirtyNetRatio   float64 `json:"dirty_net_ratio,omitempty"`
	FullRecomputes  int64   `json:"full_recomputes,omitempty"`
	DeltaRecomputes int64   `json:"delta_recomputes,omitempty"`

	// Levels and ClusterRatio describe the multilevel V-cycle when it ran:
	// Levels counts placement levels (1 = flat), ClusterRatio is the
	// coarsest level's movable-cell count relative to the flat netlist.
	// Both are zero for flat runs.
	Levels       int     `json:"levels,omitempty"`
	ClusterRatio float64 `json:"cluster_ratio,omitempty"`

	HPWL         HPWLSummary        `json:"hpwl"`
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
	Counters     map[string]int64   `json:"counters,omitempty"`
	Degradations []DegradeEntry     `json:"degradations,omitempty"`
	Trajectory   []TrajectoryPoint  `json:"trajectory,omitempty"`

	// Congestion summarizes the congestion feedback loop of the global solve
	// when it was enabled. Additive to dpplace-run-report/v1: absent when the
	// loop was off.
	Congestion *CongestionReport `json:"congestion,omitempty"`

	// Metrics holds the evaluation report (metrics.Report) when the caller
	// computed one. Typed as any so this package stays dependency-free.
	Metrics any `json:"metrics,omitempty"`

	// MetricsSnapshot captures the daemon's counter and gauge values at the
	// moment the job finished (obs/metrics Registry.Snapshot) — fleet context
	// frozen next to the per-run story. Additive to dpplace-run-report/v1:
	// absent for CLI runs and for daemons without a registry.
	MetricsSnapshot map[string]float64 `json:"metrics_snapshot,omitempty"`
}

// CongestionReport is the run-report `congestion` block: what the feedback
// loop did during the global solve. Mirrors congestion.Stats field-for-field;
// duplicated here so this package stays dependency-free.
type CongestionReport struct {
	// Snapshots is the number of RUDY snapshots taken; Applied counts the
	// ones that changed the inflation state.
	Snapshots int `json:"snapshots"`
	Applied   int `json:"applied,omitempty"`
	// InflatedCells and MaxInflation describe the final inflation state.
	InflatedCells int     `json:"inflated_cells,omitempty"`
	MaxInflation  float64 `json:"max_inflation,omitempty"`
	// FrozenAtSnapshot is the 1-based snapshot index at which the cool-down
	// froze the schedule (0: never froze).
	FrozenAtSnapshot int `json:"frozen_at_snapshot,omitempty"`
	// Overflow is the RUDY-overflow trajectory, one entry per snapshot.
	Overflow []float64 `json:"overflow,omitempty"`
}

// HPWLSummary carries the wirelength at each pipeline boundary.
type HPWLSummary struct {
	Global float64 `json:"global"`
	Legal  float64 `json:"legal,omitempty"`
	Final  float64 `json:"final"`
}

// DegradeEntry mirrors one graceful-degradation event in the report.
type DegradeEntry struct {
	Stage  string `json:"stage"`
	Group  int    `json:"group"`
	Reason string `json:"reason"`
}

// WriteReportFile writes the report as indented JSON.
func WriteReportFile(path string, rep *RunReport) error {
	if rep.Schema == "" {
		rep.Schema = ReportSchema
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal report: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("obs: write report: %w", err)
	}
	return nil
}
