package obs

import (
	"fmt"
	"io"
	"time"
)

// Level orders log severities. Info is the default threshold; Debug is
// opted into with -v, Warn with -quiet.
type Level int32

// Log levels.
const (
	Debug Level = -1
	Info  Level = 0
	Warn  Level = 1
	Error Level = 2
)

// String names the log level.
func (l Level) String() string {
	switch {
	case l <= Debug:
		return "debug"
	case l == Info:
		return "info"
	case l == Warn:
		return "warn"
	default:
		return "error"
	}
}

// SetLog attaches a human-readable log sink with a minimum level. Logging
// is independent of SetTrace: log lines also land in the trace (ev "log")
// when one is attached, but attaching a log sink alone does not turn event
// recording on.
func (r *Recorder) SetLog(w io.Writer, min Level) {
	r.logMu.Lock()
	r.logW = w
	r.logMu.Unlock()
	r.logMin.Store(int32(min))
	r.hasLog.Store(w != nil)
}

// LogEnabled reports whether a line at level l would be written, so call
// sites can skip building expensive arguments.
func (r *Recorder) LogEnabled(l Level) bool {
	if r == nil {
		return false
	}
	if !r.hasLog.Load() && !r.on.Load() {
		return false
	}
	return int32(l) >= r.logMin.Load()
}

type logEvent struct {
	T     float64 `json:"t"`
	Ev    string  `json:"ev"`
	Level string  `json:"level"`
	Stage string  `json:"stage"`
	Msg   string  `json:"msg"`
}

// Logf writes one leveled, stage-tagged log line. Lines below the level
// threshold are dropped. Not for hot loops — use the typed event methods
// there; Logf is for stage-frequency diagnostics.
func (r *Recorder) Logf(l Level, stage, format string, args ...any) {
	if !r.LogEnabled(l) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if r.hasLog.Load() {
		r.logMu.Lock()
		if r.logW != nil {
			fmt.Fprintf(r.logW, "%8.3fs %-5s %s: %s\n",
				time.Since(r.start).Seconds(), l, stage, msg)
		}
		r.logMu.Unlock()
	}
	if r.on.Load() {
		r.emit(logEvent{T: r.now(), Ev: "log", Level: l.String(), Stage: stage, Msg: msg})
	}
}
