package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"testing"
)

// syncBuffer lets many goroutines write the final JSONL through one bufio
// layer, mimicking the CLI's buffered trace file.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// TestConcurrentHammer drives every recorder entry point from many goroutines
// at once. Run under -race it is the recorder's thread-safety proof; the
// counter totals double as a lost-update check.
func TestConcurrentHammer(t *testing.T) {
	var sink syncBuffer
	r := New()
	r.SetTrace(&sink)
	r.SetLog(io.Discard, Warn)

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			root := r.Span("worker")
			for i := 0; i < iters; i++ {
				r.Add("hits", 1)
				r.SolverIter("global", w, i, float64(i), 0.5)
				if i%10 == 0 {
					r.SolverEvent("global", w, "cg-restart", i, float64(i), 0.1)
				}
				if i%25 == 0 {
					r.OuterIter("global", TrajectoryPoint{Outer: i / 25, HPWL: float64(i)})
					r.Logf(Warn, "global", "worker %d at %d", w, i)
				}
				child := root.Child("inner")
				child.Add("visits", 1)
				child.End()
			}
			root.Add("done", 1)
			root.End()
		}(w)
	}
	wg.Wait()

	if got := r.Counter("hits"); got != workers*iters {
		t.Errorf("hits = %d, want %d (lost updates)", got, workers*iters)
	}
	if got := r.Counter("inner/visits"); got != workers*iters {
		t.Errorf("inner/visits = %d, want %d", got, workers*iters)
	}
	if got := r.Counter("worker/done"); got != workers {
		t.Errorf("worker/done = %d, want %d", got, workers)
	}
	if got := r.Counter("global/cg-restart"); got != workers*iters/10 {
		t.Errorf("global/cg-restart = %d, want %d", got, workers*iters/10)
	}
	if got := len(r.Trajectory()); got != workers*iters/25 {
		t.Errorf("trajectory points = %d, want %d", got, workers*iters/25)
	}

	// Concurrent emission must still yield one valid JSON object per line:
	// interleaved torn writes would fail to parse.
	sc := bufio.NewScanner(bytes.NewReader(sink.buf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("torn JSONL line under concurrency: %q: %v", sc.Bytes(), err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("no trace lines written")
	}
}
