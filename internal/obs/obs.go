// Package obs is the flight recorder of the placement flow: hierarchical
// wall-time spans, per-stage counters, per-iteration solver telemetry and
// leveled logging, emitted as a JSONL trace and aggregated into a
// machine-readable run report. It has no dependencies outside the standard
// library and no dependencies on the rest of this repository, so every
// package of the flow can record into it.
//
// A Recorder is concurrency-safe and nil-safe: a nil *Recorder (and a nil
// *Span) is a valid, permanently disabled recorder, so call sites never need
// a nil check. When recording is off every event method is a single atomic
// load followed by a return — no locks, no allocations — so instrumentation
// can stay in hot solver loops permanently without a measurable cost and
// without perturbing the iterate sequence. Enabling the recorder is equally
// passive: it only observes, so a traced run produces bit-identical
// placements to an untraced one.
//
// Trace schema (one JSON object per line, field "ev" discriminates):
//
//	span      — span start: id, parent (0 = root), name
//	span_end  — span end: id, name, dur (seconds), counters
//	iter      — one accepted solver iterate: stage, outer, iter, f, gnorm
//	recovery  — a solver health event: stage, outer, kind, iter, f, step
//	outer     — one λ-schedule point: stage + TrajectoryPoint fields
//	degrade   — a graceful-degradation event: stage, group, reason
//	event     — a generic marker: stage, name
//	log       — a log line that cleared the level filter: level, stage, msg
//
// Every event carries "t", seconds since the recorder was created.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder collects spans, counters, telemetry and logs for one run.
// The zero value is unusable; call New.
type Recorder struct {
	on     atomic.Bool // recording (trace and/or collection) active
	hasLog atomic.Bool // a log sink is attached
	logMin atomic.Int32
	nextID atomic.Int64
	start  time.Time

	mu       sync.Mutex
	w        io.Writer // JSONL sink; nil = collect only
	counters map[string]int64
	traj     []TrajectoryPoint
	spanHook func(name string, seconds float64)

	logMu sync.Mutex
	logW  io.Writer
}

// New returns a disabled recorder. Attach sinks with SetTrace / SetLog, or
// call Collect to aggregate counters and trajectory without a trace file.
func New() *Recorder {
	return &Recorder{start: time.Now(), counters: make(map[string]int64)}
}

// Active reports whether recording is on. Nil-safe; instrumentation sites
// use it to gate work (HPWL snapshots, closures) that only feeds the trace.
func (r *Recorder) Active() bool { return r != nil && r.on.Load() }

// SetTrace attaches the JSONL sink and turns recording on. The recorder
// never closes w; the caller owns its lifetime (and any buffering).
func (r *Recorder) SetTrace(w io.Writer) {
	r.mu.Lock()
	r.w = w
	r.mu.Unlock()
	r.on.Store(true)
}

// Collect turns recording on without a trace sink: counters, spans and the
// trajectory aggregate in memory for the run report, and events are dropped.
func (r *Recorder) Collect() { r.on.Store(true) }

// SetSpanHook registers fn to receive every ended span's name and wall-time
// duration in seconds. It is the bridge from per-run spans to aggregated
// state: the daemon feeds ended stage spans into its metrics histograms
// without the pipeline ever importing a metrics package. fn runs on the
// goroutine that ends the span and must not block; nil clears the hook.
// Nil-safe.
func (r *Recorder) SetSpanHook(fn func(name string, seconds float64)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spanHook = fn
	r.mu.Unlock()
}

// now returns seconds since the recorder was created.
func (r *Recorder) now() float64 { return time.Since(r.start).Seconds() }

// emit writes one JSONL line. Marshal failures (non-finite floats that
// slipped past sanitization) drop the event rather than corrupt the trace.
func (r *Recorder) emit(v any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w == nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	b = append(b, '\n')
	r.w.Write(b)
}

// jf maps a float to a JSON-safe pointer: NaN/Inf (which encoding/json
// rejects) become null instead of poisoning the whole event.
func jf(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// Add bumps a named counter. Keys are slash-scoped by convention
// ("global/cg-restart", "detail/moves"); Span.Add prefixes automatically.
func (r *Recorder) Add(key string, delta int64) {
	if !r.Active() || delta == 0 {
		return
	}
	r.mu.Lock()
	r.counters[key] += delta
	r.mu.Unlock()
}

// Counter returns one counter's current value.
func (r *Recorder) Counter(key string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[key]
}

// Counters returns a snapshot of all counters.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	//placelint:ignore maporder copying into a map; insertion order cannot be observed
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// TrajectoryPoint is one λ-schedule (outer-iteration) snapshot of the global
// placer: the standard HPWL/overflow-vs-iteration curve placement papers
// report, plus the schedule state that produced it.
type TrajectoryPoint struct {
	Outer     int     `json:"outer"`
	Inner     int     `json:"inner"` // accepted CG iterations in this stage
	HPWL      float64 `json:"hpwl"`
	Overflow  float64 `json:"overflow"`
	AlignRMS  float64 `json:"align_rms"`
	Objective float64 `json:"objective"`
	Lambda    float64 `json:"lambda"`
	Alpha     float64 `json:"alpha"`
	Gamma     float64 `json:"gamma"`
}

// Trajectory returns a copy of the collected λ-schedule points.
func (r *Recorder) Trajectory() []TrajectoryPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TrajectoryPoint(nil), r.traj...)
}

type iterEvent struct {
	T     float64  `json:"t"`
	Ev    string   `json:"ev"`
	Stage string   `json:"stage"`
	Outer int      `json:"outer"`
	Iter  int      `json:"iter"`
	F     *float64 `json:"f"`
	GNorm *float64 `json:"gnorm"`
}

// SolverIter records one accepted inner-solver iterate. Hot path: when
// recording is off this is one atomic load and a return.
func (r *Recorder) SolverIter(stage string, outer, iter int, f, gnorm float64) {
	if !r.Active() {
		return
	}
	r.emit(iterEvent{T: r.now(), Ev: "iter", Stage: stage, Outer: outer,
		Iter: iter, F: jf(f), GNorm: jf(gnorm)})
}

type recoveryEvent struct {
	T     float64  `json:"t"`
	Ev    string   `json:"ev"`
	Stage string   `json:"stage"`
	Outer int      `json:"outer"`
	Kind  string   `json:"kind"`
	Iter  int      `json:"iter"`
	F     *float64 `json:"f"`
	Step  *float64 `json:"step"`
}

// SolverEvent records a solver health event — a rollback, line-search reset,
// CG restart, re-anneal or divergence — and bumps the matching
// "stage/kind" counter, so diverged-then-recovered solves are visible
// instead of appearing as a gap in iteration numbers.
func (r *Recorder) SolverEvent(stage string, outer int, kind string, iter int, f, step float64) {
	if !r.Active() {
		return
	}
	r.Add(stage+"/"+kind, 1)
	r.emit(recoveryEvent{T: r.now(), Ev: "recovery", Stage: stage, Outer: outer,
		Kind: kind, Iter: iter, F: jf(f), Step: jf(step)})
}

type outerEvent struct {
	T     float64 `json:"t"`
	Ev    string  `json:"ev"`
	Stage string  `json:"stage"`
	TrajectoryPoint
}

// OuterIter records one λ-schedule point, both into the trace and into the
// in-memory trajectory for the run report.
func (r *Recorder) OuterIter(stage string, p TrajectoryPoint) {
	if !r.Active() {
		return
	}
	r.mu.Lock()
	r.traj = append(r.traj, p)
	r.mu.Unlock()
	r.emit(outerEvent{T: r.now(), Ev: "outer", Stage: stage, TrajectoryPoint: p})
}

type degradeEvent struct {
	T      float64 `json:"t"`
	Ev     string  `json:"ev"`
	Stage  string  `json:"stage"`
	Group  int     `json:"group"`
	Reason string  `json:"reason"`
}

// Degrade records one graceful-degradation event (group = -1 for whole-flow
// events) and bumps the "degradations" counter.
func (r *Recorder) Degrade(stage string, group int, reason string) {
	if !r.Active() {
		return
	}
	r.Add("degradations", 1)
	r.emit(degradeEvent{T: r.now(), Ev: "degrade", Stage: stage, Group: group, Reason: reason})
}

type markerEvent struct {
	T     float64 `json:"t"`
	Ev    string  `json:"ev"`
	Stage string  `json:"stage"`
	Name  string  `json:"name"`
}

// Event records a generic named marker (stage transitions, fault
// injections, deadline expiries).
func (r *Recorder) Event(stage, name string) {
	if !r.Active() {
		return
	}
	r.emit(markerEvent{T: r.now(), Ev: "event", Stage: stage, Name: name})
}

// Span is one timed region of the run. Spans form a hierarchy via Child and
// carry their own counters, rolled up into the recorder's totals under
// "name/key". A nil *Span is valid and inert.
type Span struct {
	r      *Recorder
	id     int64
	parent int64
	name   string
	start  time.Time

	mu       sync.Mutex
	counters map[string]int64
	ended    bool
}

type spanStartEvent struct {
	T      float64 `json:"t"`
	Ev     string  `json:"ev"`
	ID     int64   `json:"id"`
	Parent int64   `json:"parent"`
	Name   string  `json:"name"`
}

type spanEndEvent struct {
	T        float64          `json:"t"`
	Ev       string           `json:"ev"`
	ID       int64            `json:"id"`
	Name     string           `json:"name"`
	Dur      float64          `json:"dur"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Span opens a root span. Returns nil (inert) when recording is off.
func (r *Recorder) Span(name string) *Span {
	if !r.Active() {
		return nil
	}
	return r.newSpan(name, 0)
}

func (r *Recorder) newSpan(name string, parent int64) *Span {
	s := &Span{r: r, id: r.nextID.Add(1), parent: parent, name: name, start: time.Now()}
	r.emit(spanStartEvent{T: r.now(), Ev: "span", ID: s.id, Parent: parent, Name: name})
	return s
}

// Child opens a nested span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.r.newSpan(name, s.id)
}

// Add bumps a span counter and the recorder total "span-name/key".
func (s *Span) Add(key string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[key] += delta
	s.mu.Unlock()
	s.r.Add(s.name+"/"+key, delta)
}

// End closes the span, emitting its duration and counters. Ending twice is
// a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	var counters map[string]int64
	if len(s.counters) > 0 {
		counters = make(map[string]int64, len(s.counters))
		//placelint:ignore maporder copying into a map; insertion order cannot be observed
		for k, v := range s.counters {
			counters[k] = v
		}
	}
	s.mu.Unlock()
	dur := time.Since(s.start).Seconds()
	s.r.emit(spanEndEvent{T: s.r.now(), Ev: "span_end", ID: s.id, Name: s.name,
		Dur: dur, Counters: counters})
	s.r.mu.Lock()
	hook := s.r.spanHook
	s.r.mu.Unlock()
	if hook != nil {
		hook(s.name, dur)
	}
}
