// Package viz renders placements as SVG: the core region and rows, every
// cell footprint, and the extracted datapath groups in distinct colors so a
// human can check at a glance whether the arrays came out bit-aligned. It is
// how the paper's layout figures are reproduced.
package viz

import (
	"fmt"
	"io"

	"repro/internal/datapath"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// Options controls rendering.
type Options struct {
	// WidthPx is the output image width in pixels (default 900); height
	// follows the core aspect ratio.
	WidthPx float64
	// Extraction colors group cells when non-nil.
	Extraction *datapath.Extraction
	// Title is drawn in the top-left corner.
	Title string
}

// groupPalette cycles through visually distinct fills for datapath groups.
var groupPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#17becf", "#e377c2", "#bcbd22", "#8c564b",
}

// WriteSVG renders the placement to w.
func WriteSVG(w io.Writer, nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core, opt Options) error {
	if opt.WidthPx <= 0 {
		opt.WidthPx = 900
	}
	region := core.Region
	// Include fixed cells (pads) that sit outside the core.
	var bb geom.BBox
	bb.ExpandRect(region)
	for i := range nl.Cells {
		bb.ExpandRect(pl.CellRect(nl, netlist.CellID(i)))
	}
	view := bb.Rect().Inset(-2)
	scale := opt.WidthPx / view.W()
	hPx := view.H() * scale

	// SVG y grows downward; chip y grows upward — flip.
	x := func(v float64) float64 { return (v - view.Lo.X) * scale }
	y := func(v float64) float64 { return hPx - (v-view.Lo.Y)*scale }

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		opt.WidthPx, hPx, opt.WidthPx, hPx); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="#fafafa"/>`+"\n")

	// Core region and row lines.
	fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#ffffff" stroke="#888" stroke-width="1"/>`+"\n",
		x(region.Lo.X), y(region.Hi.Y), region.W()*scale, region.H()*scale)
	for _, row := range core.Rows {
		fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee" stroke-width="0.5"/>`+"\n",
			x(row.X), y(row.Y), x(row.Right()), y(row.Y))
	}

	// Cells: random logic gray, fixed cells dark, groups colored.
	for i := range nl.Cells {
		cell := &nl.Cells[i]
		r := pl.CellRect(nl, netlist.CellID(i))
		fill := "#c8c8c8"
		stroke := "#aaa"
		switch {
		case cell.Fixed:
			fill = "#444444"
			stroke = "#222"
		case opt.Extraction != nil && opt.Extraction.CellGroup[i] >= 0:
			fill = groupPalette[opt.Extraction.CellGroup[i]%len(groupPalette)]
			stroke = "#333"
		}
		fmt.Fprintf(w,
			`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="0.85" stroke="%s" stroke-width="0.3"/>`+"\n",
			x(r.Lo.X), y(r.Hi.Y), r.W()*scale, r.H()*scale, fill, stroke)
	}

	if opt.Title != "" {
		fmt.Fprintf(w, `<text x="8" y="16" font-family="monospace" font-size="13" fill="#333">%s</text>`+"\n",
			escapeXML(opt.Title))
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

func escapeXML(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
