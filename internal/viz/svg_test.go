package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datapath"
	"repro/internal/gen"
)

func TestWriteSVG(t *testing.T) {
	b := gen.Generate(gen.Config{
		Name: "viz", Seed: 3, Bits: 8,
		Units: []gen.UnitKind{gen.Adder}, RandomCells: 100, Pads: 8,
	})
	ext := datapath.Extract(b.Netlist, datapath.DefaultOptions())

	var buf bytes.Buffer
	err := WriteSVG(&buf, b.Netlist, b.Placement, b.Core, Options{
		Extraction: ext,
		Title:      `demo <&> "quoted"`,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	// One rect per cell plus background and core.
	if got := strings.Count(out, "<rect"); got < b.Netlist.NumCells() {
		t.Errorf("rects = %d, want >= %d", got, b.Netlist.NumCells())
	}
	// Group color present (extraction found the adder).
	if ext.NumGrouped() > 0 && !strings.Contains(out, groupPalette[0]) {
		t.Error("no group coloring emitted")
	}
	// Title escaped.
	if !strings.Contains(out, "demo &lt;&amp;&gt; &quot;quoted&quot;") {
		t.Error("title not escaped")
	}
	// Row grid lines present.
	if strings.Count(out, "<line") < b.Core.NumRows() {
		t.Error("row lines missing")
	}
}

func TestWriteSVGNoExtraction(t *testing.T) {
	b := gen.Generate(gen.Config{
		Name: "viz2", Seed: 4, Bits: 8,
		Units: nil, RandomCells: 50, Pads: 4,
	})
	var buf bytes.Buffer
	if err := WriteSVG(&buf, b.Netlist, b.Placement, b.Core, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Fatal("incomplete SVG")
	}
}

func TestEscapeXML(t *testing.T) {
	if got := escapeXML(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Errorf("escapeXML = %q", got)
	}
}
