// Package legal turns a spread global placement into a legal one: every
// movable cell inside the core, bottom-aligned to a row, on the site grid,
// with no overlaps. It is structure-preserving: extracted datapath groups
// are snapped first as rigid bit-aligned blocks (one row per bit, one
// x-aligned column per stage) by a Tetris-style scan, then the remaining
// cells are legalized with the Abacus row-cluster algorithm around them.
package legal

import (
	"context"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/place/global"
)

// Options controls legalization.
type Options struct {
	// Groups are placed as rigid arrays before everything else.
	Groups []global.AlignGroup
	// RowSearchSpan bounds how many rows above/below the desired row Abacus
	// examines (default 12; it expands automatically when a cell does not
	// fit).
	RowSearchSpan int
}

// Result reports legalization quality.
type Result struct {
	TotalDisplacement float64 // Manhattan sum over movable cells
	MaxDisplacement   float64
	GroupBlocks       int // groups successfully placed as rigid blocks
	GroupFallbacks    int // groups dissolved into plain cells (no fit)
}

// Legalize updates pl in place. The incoming placement must be inside the
// core region; the outgoing placement satisfies Placement.CheckLegal.
func Legalize(nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core, opt Options) (Result, error) {
	return LegalizeCtx(context.Background(), nl, pl, core, opt)
}

// LegalizeCtx is Legalize with cooperative cancellation. The context is
// polled between group blocks and periodically inside the Abacus scan; on
// expiry the error wraps pipeline.ErrTimeout and the placement is only
// partially legalized (cells processed so far are legal, the rest keep
// their global positions).
func LegalizeCtx(ctx context.Context, nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core, opt Options) (Result, error) {
	if opt.RowSearchSpan <= 0 {
		opt.RowSearchSpan = 12
	}
	before := pl.Clone()
	l := newLegalizer(nl, pl, core)

	var res Result
	// Stage A: rigid group blocks, largest first.
	groups := append([]global.AlignGroup(nil), opt.Groups...)
	sort.SliceStable(groups, func(a, b int) bool {
		return groupCells(groups[a]) > groupCells(groups[b])
	})
	rec := obs.From(ctx)
	inBlock := make([]bool, nl.NumCells())
	for gi, g := range groups {
		if pipeline.Expired(ctx) {
			rec.Event("legalize", "deadline")
			return res, pipeline.StageError("legalize", pipeline.ErrTimeout)
		}
		if l.placeGroup(g, inBlock) {
			res.GroupBlocks++
		} else {
			res.GroupFallbacks++
			rec.Event("legalize", "group-fallback")
			rec.Logf(obs.Debug, "legalize", "group %d (size %d): no rigid-block fit, dissolving",
				gi, groupCells(g))
		}
	}

	// Stage B: Abacus for everything else (including dissolved groups).
	var rest []netlist.CellID
	for i := range nl.Cells {
		if nl.Cells[i].Fixed || inBlock[i] {
			continue
		}
		rest = append(rest, netlist.CellID(i))
	}
	if err := l.abacus(ctx, rest, opt.RowSearchSpan); err != nil {
		return res, err
	}

	res.TotalDisplacement = pl.TotalDisplacement(nl, before)
	res.MaxDisplacement = pl.MaxDisplacement(nl, before)
	return res, nil
}

func groupCells(g global.AlignGroup) int {
	n := 0
	for _, col := range g.Cols {
		n += len(col)
	}
	return n
}

// interval is a free span [x0, x1) within a row.
type interval struct {
	x0, x1 float64
}

// legalizer tracks per-row free space.
type legalizer struct {
	nl   *netlist.Netlist
	pl   *netlist.Placement
	core *geom.Core
	free [][]interval // per row, sorted by x0
}

func newLegalizer(nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core) *legalizer {
	l := &legalizer{nl: nl, pl: pl, core: core}
	l.free = make([][]interval, core.NumRows())
	for r, row := range core.Rows {
		l.free[r] = []interval{{row.X, row.Right()}}
	}
	// Fixed cells inside the core are blockages.
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed {
			continue
		}
		r := pl.CellRect(nl, netlist.CellID(i))
		if r.Intersect(core.Region).Empty() {
			continue
		}
		r0 := core.RowIndex(r.Lo.Y + 1e-9)
		r1 := core.RowIndex(r.Hi.Y - 1e-9)
		for ri := r0; ri <= r1; ri++ {
			l.occupy(ri, r.Lo.X, r.Hi.X)
		}
	}
	return l
}

// occupy removes [x0, x1) from row ri's free list.
func (l *legalizer) occupy(ri int, x0, x1 float64) {
	if ri < 0 || ri >= len(l.free) || x1 <= x0 {
		return
	}
	var out []interval
	for _, iv := range l.free[ri] {
		if x1 <= iv.x0 || x0 >= iv.x1 {
			out = append(out, iv)
			continue
		}
		if iv.x0 < x0 {
			out = append(out, interval{iv.x0, x0})
		}
		if x1 < iv.x1 {
			out = append(out, interval{x1, iv.x1})
		}
	}
	l.free[ri] = out
}

// placeGroup snaps one group as bit-aligned column strips: every column
// keeps one cell per consecutive row starting from a shared bottom row, but
// columns land independently near their global-placement x. This preserves
// the structure (exact bit alignment, x-aligned columns) without forcing the
// whole array into one monolithic rectangle — monolithic packing degenerates
// into a greedy floorplanner and wrecks wirelength on datapath-heavy
// designs. Returns false when no feasible bottom row exists.
func (l *legalizer) placeGroup(g global.AlignGroup, inBlock []bool) bool {
	if len(g.Cols) == 0 || len(g.Cols[0]) == 0 {
		return false
	}
	nl, pl, core := l.nl, l.pl, l.core
	bits := len(g.Cols[0])
	if bits > core.NumRows() {
		return false
	}

	// Column geometry, ordered by mean x.
	cols := make([]placeCol, 0, len(g.Cols))
	var meanY float64
	n := 0
	for _, col := range g.Cols {
		ci := placeCol{cells: col}
		for _, c := range col {
			ci.meanX += pl.X[c]
			ci.w = math.Max(ci.w, nl.Cell(c).W)
			meanY += pl.Y[c]
			n++
		}
		ci.meanX /= float64(len(col))
		cols = append(cols, ci)
	}
	meanY /= float64(n)
	sort.SliceStable(cols, func(a, b int) bool { return cols[a].meanX < cols[b].meanX })

	rowH := core.RowH()
	desY := meanY - float64(bits)*rowH/2
	desRow := core.RowIndex(desY + rowH/2)

	// Try candidate bottom rows near the desired one; for each, greedily
	// place the columns left to right and keep the cheapest feasible row.
	type placedCol struct{ x float64 }
	var bestPlacement []placedCol
	bestRow := -1
	bestCost := math.Inf(1)
	maxScan := core.NumRows()
	for d := 0; d < maxScan; d++ {
		cands := []int{desRow - d, desRow + d}
		if d == 0 {
			cands = cands[:1]
		}
		for _, r := range cands {
			if r < 0 || r+bits > core.NumRows() {
				continue
			}
			yCost := math.Abs(core.Rows[r].Y-desY) * float64(n)
			if yCost >= bestCost {
				continue
			}
			spans := l.spanIntervals(r, bits)
			// Ideal packed x-positions first (columns of a merged group
			// often share their mean, e.g. the words of a register bank;
			// naive left-to-right placement at raw means runs off the row).
			targets := packColumns(colMeans(cols), colWidths(cols), core.Rows[r].X, core.Rows[r].Right())
			placement := make([]placedCol, 0, len(cols))
			cost := yCost
			minX := math.Inf(-1)
			ok := true
			for k, ci := range cols {
				x, fit := fitInSpans(spans, ci.w, targets[k], minX)
				if !fit {
					ok = false
					break
				}
				placement = append(placement, placedCol{x})
				spans = subtractInterval(spans, x, x+ci.w)
				minX = x + ci.w
				cost += math.Abs(x-ci.meanX) * float64(bits)
				if cost >= bestCost {
					ok = false
					break
				}
			}
			if ok && cost < bestCost {
				bestCost = cost
				bestRow = r
				bestPlacement = placement
			}
		}
		if bestRow >= 0 && float64(d)*rowH*float64(n) > bestCost {
			break
		}
	}
	if bestRow < 0 {
		return false
	}

	site := core.Rows[bestRow].SiteW
	for k, ci := range cols {
		x := bestPlacement[k].x
		if site > 0 {
			x = math.Floor((x-core.Rows[bestRow].X)/site)*site + core.Rows[bestRow].X
			if x < core.Rows[bestRow].X {
				x = core.Rows[bestRow].X
			}
		}
		for b, cell := range ci.cells {
			pl.X[cell] = x
			pl.Y[cell] = core.Rows[bestRow+b].Y
			inBlock[cell] = true
		}
		for b := 0; b < bits; b++ {
			l.occupy(bestRow+b, x, x+ci.w)
		}
	}
	return true
}

// spanIntervals returns the x-ranges free in ALL rows r..r+bits-1.
func (l *legalizer) spanIntervals(r, bits int) []interval {
	spans := append([]interval(nil), l.free[r]...)
	for b := 1; b < bits && len(spans) > 0; b++ {
		spans = intersectIntervals(spans, l.free[r+b])
	}
	return spans
}

// fitInSpans finds the x ≥ minX closest to desX where width w fits in one
// of the spans.
func fitInSpans(spans []interval, w, desX, minX float64) (float64, bool) {
	bestX, best := 0.0, math.Inf(1)
	found := false
	for _, iv := range spans {
		lo := math.Max(iv.x0, minX)
		if iv.x1-lo < w {
			continue
		}
		x := geom.Clamp(desX, lo, iv.x1-w)
		if d := math.Abs(x - desX); d < best {
			best = d
			bestX = x
			found = true
		}
	}
	return bestX, found
}

// subtractInterval removes [x0, x1) from every span.
func subtractInterval(spans []interval, x0, x1 float64) []interval {
	var out []interval
	for _, iv := range spans {
		if x1 <= iv.x0 || x0 >= iv.x1 {
			out = append(out, iv)
			continue
		}
		if iv.x0 < x0 {
			out = append(out, interval{iv.x0, x0})
		}
		if x1 < iv.x1 {
			out = append(out, interval{x1, iv.x1})
		}
	}
	return out
}

// fitSpan finds the x closest to desX where a block of width w fits in all
// rows r..r+bits-1 simultaneously (used for tall movable macros).
func (l *legalizer) fitSpan(r, bits int, w, desX float64) (float64, bool) {
	return fitInSpans(l.spanIntervals(r, bits), w, desX, math.Inf(-1))
}

func intersectIntervals(a, b []interval) []interval {
	var out []interval
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := math.Max(a[i].x0, b[j].x0)
		hi := math.Min(a[i].x1, b[j].x1)
		if lo < hi {
			out = append(out, interval{lo, hi})
		}
		if a[i].x1 < b[j].x1 {
			i++
		} else {
			j++
		}
	}
	return out
}

// placeCol is one group column during legalization.
type placeCol struct {
	cells []netlist.CellID
	meanX float64
	w     float64
}

// colMeans and colWidths project the column slice for packColumns; they are
// tiny but keep the call site readable.
func colMeans(cols []placeCol) []float64 {
	out := make([]float64, len(cols))
	for i := range cols {
		out[i] = cols[i].meanX
	}
	return out
}

func colWidths(cols []placeCol) []float64 {
	out := make([]float64, len(cols))
	for i := range cols {
		out[i] = cols[i].w
	}
	return out
}

// packColumns computes non-overlapping x positions for ordered columns that
// minimize the quadratic distance to the desired positions within [lo, hi]:
// the classic cluster-collapse (Abacus) recurrence in one dimension.
func packColumns(mus, ws []float64, lo, hi float64) []float64 {
	n := len(mus)
	type cl struct {
		q, e, w float64
		first   int
	}
	var clusters []cl
	pos := func(c cl, totalAfter float64) float64 {
		p := c.q / c.e
		if p < lo {
			p = lo
		}
		if p > hi-c.w-totalAfter {
			p = hi - c.w - totalAfter
		}
		if p < lo {
			p = lo
		}
		return p
	}
	for i := 0; i < n; i++ {
		clusters = append(clusters, cl{q: mus[i], e: 1, w: ws[i], first: i})
		for len(clusters) >= 2 {
			last := clusters[len(clusters)-1]
			prev := clusters[len(clusters)-2]
			if pos(prev, 0)+prev.w <= pos(last, 0) {
				break
			}
			prev.q += last.q - last.e*prev.w
			prev.e += last.e
			prev.w += last.w
			clusters = clusters[:len(clusters)-2]
			clusters = append(clusters, prev)
		}
	}
	out := make([]float64, n)
	// Assign left to right, clamping so the remaining width always fits.
	remaining := 0.0
	for _, c := range clusters {
		remaining += c.w
	}
	cur := lo
	for ci, c := range clusters {
		after := 0.0
		for _, d := range clusters[ci+1:] {
			after += d.w
		}
		x := pos(c, after)
		if x < cur {
			x = cur
		}
		// Clusters always merge consecutive columns, so this cluster's
		// members run from c.first up to the next cluster's first column
		// (float accumulation makes a width-based loop bound unsafe).
		end := n
		if ci+1 < len(clusters) {
			end = clusters[ci+1].first
		}
		x2 := x
		for k := c.first; k < end; k++ {
			out[k] = x2
			x2 += ws[k]
		}
		cur = x + c.w
		remaining -= c.w
	}
	return out
}
