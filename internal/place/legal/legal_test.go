package legal_test

import (
	"math"
	"testing"

	"repro/internal/datapath"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place/global"
	"repro/internal/place/legal"
)

func placedBench(t *testing.T) (*gen.Benchmark, *netlist.Placement, []global.AlignGroup) {
	t.Helper()
	b := gen.Generate(gen.Config{
		Name: "lg", Seed: 21, Bits: 8,
		Units:       []gen.UnitKind{gen.Adder, gen.RegBank},
		RandomCells: 300,
		Pads:        12,
	})
	ext := datapath.Extract(b.Netlist, datapath.DefaultOptions())
	groups := global.AlignGroupsFromExtraction(ext)
	pl := b.Placement.Clone()
	if _, err := global.Place(b.Netlist, pl, b.Core, global.Options{
		MaxOuterIters: 18, InnerIters: 35, Groups: groups,
	}); err != nil {
		t.Fatal(err)
	}
	return b, pl, groups
}

func TestLegalizeProducesLegalPlacement(t *testing.T) {
	b, pl, groups := placedBench(t)
	res, err := legal.Legalize(b.Netlist, pl, b.Core, legal.Options{Groups: groups})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.CheckLegal(b.Netlist, b.Core); err != nil {
		t.Fatalf("not legal: %v", err)
	}
	if res.TotalDisplacement <= 0 {
		t.Error("zero displacement is implausible")
	}
	if res.GroupBlocks == 0 {
		t.Error("no group placed as a block")
	}
}

func TestLegalizePreservesGroupAlignment(t *testing.T) {
	b, pl, groups := placedBench(t)
	if _, err := legal.Legalize(b.Netlist, pl, b.Core, legal.Options{Groups: groups}); err != nil {
		t.Fatal(err)
	}
	// Every block-placed group: same-column cells share x exactly; bit b
	// sits exactly b rows above bit 0.
	rowH := b.Core.RowH()
	checked := 0
	for _, g := range groups {
		aligned := true
		for _, col := range g.Cols {
			for _, c := range col[1:] {
				if pl.X[c] != pl.X[col[0]] {
					aligned = false
				}
			}
			for bit, c := range col {
				if math.Abs(pl.Y[c]-(pl.Y[col[0]]+float64(bit)*rowH)) > 1e-9 {
					aligned = false
				}
			}
		}
		if aligned {
			checked++
		}
	}
	if checked == 0 {
		t.Error("no group survived legalization bit-aligned")
	}
}

func TestLegalizeBaselineNoGroups(t *testing.T) {
	b, pl, _ := placedBench(t)
	if _, err := legal.Legalize(b.Netlist, pl, b.Core, legal.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := pl.CheckLegal(b.Netlist, b.Core); err != nil {
		t.Fatalf("baseline legalization not legal: %v", err)
	}
}

func TestLegalizeRespectsFixedObstacles(t *testing.T) {
	// Small synthetic core with a fixed macro in the middle.
	nl := netlist.New("obs")
	blk := nl.MustAddCell("blk", "MACRO", 40, 20, true)
	var cells []netlist.CellID
	for i := 0; i < 40; i++ {
		c := nl.MustAddCell(cellName(i), "STD", 4, 10, false)
		cells = append(cells, c)
	}
	// A couple of nets so displacement means something.
	for i := 0; i+1 < len(cells); i += 2 {
		nl.MustAddNet(cellName(i)+"n", 1,
			netlist.Endpoint{Cell: cells[i], Pin: "Y", Dir: netlist.DirOutput},
			netlist.Endpoint{Cell: cells[i+1], Pin: "A", Dir: netlist.DirInput},
		)
	}
	core := geom.NewCore(geom.NewRect(0, 0, 100, 50), 10, 1)
	pl := netlist.NewPlacement(nl)
	pl.SetLoc(blk, geom.Point{X: 30, Y: 20}) // blocks rows 2-3 in [30,70)
	for i, c := range cells {
		pl.SetLoc(c, geom.Point{X: 45 + float64(i%3), Y: 25})
	}
	if _, err := legal.Legalize(nl, pl, core, legal.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := pl.CheckLegal(nl, core); err != nil {
		t.Fatalf("not legal: %v", err)
	}
	// No movable cell may overlap the macro.
	blkRect := pl.CellRect(nl, blk)
	for _, c := range cells {
		if pl.CellRect(nl, c).Overlap(blkRect) > 0 {
			t.Fatalf("cell %d overlaps the fixed macro", c)
		}
	}
}

func TestLegalizeTallCell(t *testing.T) {
	nl := netlist.New("tall")
	tall := nl.MustAddCell("tall", "MACRO", 10, 20, false) // 2 rows, movable
	small := nl.MustAddCell("s", "STD", 4, 10, false)
	nl.MustAddNet("n", 1,
		netlist.Endpoint{Cell: tall, Pin: "A", Dir: netlist.DirInput},
		netlist.Endpoint{Cell: small, Pin: "Y", Dir: netlist.DirOutput},
	)
	core := geom.NewCore(geom.NewRect(0, 0, 100, 50), 10, 1)
	pl := netlist.NewPlacement(nl)
	pl.SetLoc(tall, geom.Point{X: 50.3, Y: 23.7})
	pl.SetLoc(small, geom.Point{X: 50.4, Y: 23.9})
	if _, err := legal.Legalize(nl, pl, core, legal.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := pl.CheckLegal(nl, core); err != nil {
		t.Fatalf("not legal: %v", err)
	}
}

func TestLegalizeOverfullFails(t *testing.T) {
	nl := netlist.New("full")
	var ends []netlist.Endpoint
	for i := 0; i < 30; i++ {
		c := nl.MustAddCell(cellName(i), "STD", 10, 10, false)
		ends = append(ends, netlist.Endpoint{Cell: c, Pin: "A", Dir: netlist.DirInput})
	}
	nl.MustAddNet("n", 1, ends...)
	core := geom.NewCore(geom.NewRect(0, 0, 50, 20), 10, 1) // 100 sites for 300 width
	pl := netlist.NewPlacement(nl)
	if _, err := legal.Legalize(nl, pl, core, legal.Options{}); err == nil {
		t.Fatal("over-full design legalized successfully?!")
	}
}

func cellName(i int) string {
	return "c" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}
