package legal

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPackColumnsNoOverlapWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		mus := make([]float64, n)
		ws := make([]float64, n)
		total := 0.0
		for i := range mus {
			mus[i] = rng.Float64() * 100
			ws[i] = 1 + rng.Float64()*5
			total += ws[i]
		}
		sort.Float64s(mus)
		lo, hi := 0.0, total+rng.Float64()*100 // always feasible
		xs := packColumns(mus, ws, lo, hi)
		prevEnd := lo
		for i, x := range xs {
			if x < prevEnd-1e-9 {
				return false // overlap or out of bounds
			}
			prevEnd = x + ws[i]
		}
		return prevEnd <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPackColumnsKeepsSeparatedAtDesired(t *testing.T) {
	mus := []float64{10, 30, 60}
	ws := []float64{4, 4, 4}
	xs := packColumns(mus, ws, 0, 100)
	for i := range mus {
		if xs[i] != mus[i] {
			t.Errorf("separated column %d moved: %g != %g", i, xs[i], mus[i])
		}
	}
}

func TestPackColumnsCollapsesBunched(t *testing.T) {
	// Three columns wanting the same spot must pack around it.
	mus := []float64{50, 50, 50}
	ws := []float64{4, 4, 4}
	xs := packColumns(mus, ws, 0, 100)
	if !(xs[0] < xs[1] && xs[1] < xs[2]) {
		t.Fatalf("order broken: %v", xs)
	}
	if xs[1]-xs[0] != 4 || xs[2]-xs[1] != 4 {
		t.Errorf("not abutted: %v", xs)
	}
	// Quadratic optimum centers the run on the shared mean.
	center := (xs[0] + xs[2] + 4) / 2
	if center < 48 || center > 56 {
		t.Errorf("pack not centered near 52: %v", xs)
	}
}

func TestPackColumnsClampsToInterval(t *testing.T) {
	mus := []float64{-50, -40}
	ws := []float64{10, 10}
	xs := packColumns(mus, ws, 0, 100)
	if xs[0] != 0 || xs[1] != 10 {
		t.Errorf("left clamp wrong: %v", xs)
	}
	mus = []float64{140, 150}
	xs = packColumns(mus, ws, 0, 100)
	if xs[1]+10 > 100+1e-9 {
		t.Errorf("right clamp wrong: %v", xs)
	}
}

func TestIntersectAndSubtractIntervals(t *testing.T) {
	a := []interval{{0, 10}, {20, 30}}
	b := []interval{{5, 25}}
	got := intersectIntervals(a, b)
	want := []interval{{5, 10}, {20, 25}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("intersect = %v", got)
	}
	sub := subtractInterval([]interval{{0, 30}}, 10, 20)
	if len(sub) != 2 || sub[0] != (interval{0, 10}) || sub[1] != (interval{20, 30}) {
		t.Errorf("subtract = %v", sub)
	}
	if got := subtractInterval([]interval{{0, 5}}, 10, 20); len(got) != 1 {
		t.Errorf("disjoint subtract = %v", got)
	}
}

func TestFitInSpansRespectsMinX(t *testing.T) {
	spans := []interval{{0, 10}, {20, 40}}
	x, ok := fitInSpans(spans, 5, 2, 12)
	if !ok || x < 20 {
		t.Errorf("minX violated: x=%g ok=%v", x, ok)
	}
	// Desired inside the allowed span: stays at desired.
	x, ok = fitInSpans(spans, 5, 25, 12)
	if !ok || x != 25 {
		t.Errorf("x=%g", x)
	}
	// Nothing fits.
	if _, ok := fitInSpans(spans, 50, 0, 0); ok {
		t.Error("oversized fit accepted")
	}
}
