package legal

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/netlist"
	"repro/internal/pipeline"
)

// subrow is one free interval of a row carrying Abacus cluster state.
type subrow struct {
	rowIdx   int
	x0, x1   float64
	used     float64
	clusters []cluster
}

// cluster is a maximal run of abutting cells. Standard Abacus bookkeeping:
// the optimal cluster position is q/e clamped into the subrow; q accumulates
// e_i·(x'_i − offset_i) with offset_i the width of earlier cells in the
// cluster.
type cluster struct {
	q, e, w float64
	cells   []netlist.CellID
}

func (c *cluster) pos(sr *subrow) float64 {
	p := c.q / c.e
	if p < sr.x0 {
		p = sr.x0
	}
	if p > sr.x1-c.w {
		p = sr.x1 - c.w
	}
	return p
}

// abacus legalizes the given cells around the existing blockages. Cells are
// processed in increasing global-placement x, the classic Abacus order. The
// context is polled every few hundred cells; on expiry the cells committed
// so far are still written to legal positions and the error wraps
// pipeline.ErrTimeout.
func (l *legalizer) abacus(ctx context.Context, cells []netlist.CellID, rowSpan int) error {
	nl, pl, core := l.nl, l.pl, l.core
	rowH := core.RowH()

	// Tall movable cells (multi-row macros) are rare; place them as 1-wide
	// group blocks first so the row model stays single-height.
	var tall []netlist.CellID
	var std []netlist.CellID
	for _, c := range cells {
		if nl.Cell(c).H > rowH+1e-9 {
			tall = append(tall, c)
		} else {
			std = append(std, c)
		}
	}
	inBlock := make([]bool, nl.NumCells())
	for _, c := range tall {
		g := singleCellGroup(c)
		if !l.placeGroupTall(g, inBlock, int(math.Ceil(nl.Cell(c).H/rowH))) {
			return fmt.Errorf("legal: no space for macro %q", nl.Cell(c).Name)
		}
	}

	// Build subrows from the remaining free intervals.
	var subrows []*subrow
	rowSubrows := make([][]*subrow, core.NumRows())
	for r, ivs := range l.free {
		for _, iv := range ivs {
			sr := &subrow{rowIdx: r, x0: iv.x0, x1: iv.x1}
			subrows = append(subrows, sr)
			rowSubrows[r] = append(rowSubrows[r], sr)
		}
	}
	_ = subrows

	sort.SliceStable(std, func(a, b int) bool { return pl.X[std[a]] < pl.X[std[b]] })

	expired := false
	for i, c := range std {
		if i%256 == 0 && pipeline.Expired(ctx) {
			expired = true
			break
		}
		cell := nl.Cell(c)
		desX, desY := pl.X[c], pl.Y[c]
		desRow := core.RowIndex(desY + rowH/2)

		bestCost := math.Inf(1)
		var bestSr *subrow
		span := rowSpan
		for bestSr == nil && span <= 4*core.NumRows() {
			for d := 0; d <= span; d++ {
				cands := []int{desRow - d, desRow + d}
				if d == 0 {
					cands = cands[:1]
				}
				for _, r := range cands {
					if r < 0 || r >= core.NumRows() {
						continue
					}
					yCost := math.Abs(core.Rows[r].Y - desY)
					if yCost >= bestCost {
						continue
					}
					for _, sr := range rowSubrows[r] {
						if sr.used+cell.W > sr.x1-sr.x0 {
							continue
						}
						x := simulate(sr, desX, cell.W)
						cost := yCost + math.Abs(x-desX)
						if cost < bestCost {
							bestCost = cost
							bestSr = sr
						}
					}
				}
				if bestSr != nil && float64(d)*rowH > bestCost {
					break
				}
			}
			span *= 2
		}
		if bestSr == nil {
			return fmt.Errorf("legal: no subrow fits cell %q (w=%g)", cell.Name, cell.W)
		}
		commit(bestSr, c, desX, cell.W)
	}

	// Write final positions: walk clusters, snap to the site grid, resolve
	// rounding overlaps left-to-right with a feasibility-preserving clamp.
	for r := range rowSubrows {
		row := core.Rows[r]
		for _, sr := range rowSubrows[r] {
			remaining := 0.0
			for i := range sr.clusters {
				remaining += sr.clusters[i].w
			}
			cur := sr.x0
			for i := range sr.clusters {
				cl := &sr.clusters[i]
				x := cl.pos(sr)
				if row.SiteW > 0 {
					x = math.Floor((x-row.X)/row.SiteW)*row.SiteW + row.X
				}
				if x < cur {
					x = cur
					if row.SiteW > 0 {
						x = math.Ceil((x-row.X)/row.SiteW)*row.SiteW + row.X
					}
				}
				if x > sr.x1-remaining {
					x = sr.x1 - remaining
					if row.SiteW > 0 {
						x = math.Floor((x-row.X)/row.SiteW)*row.SiteW + row.X
					}
				}
				for _, cid := range cl.cells {
					pl.X[cid] = x
					pl.Y[cid] = row.Y
					x += nl.Cell(cid).W
				}
				cur = x
				remaining -= cl.w
			}
		}
	}
	if expired {
		return pipeline.StageError("legalize", pipeline.ErrTimeout)
	}
	return nil
}

// simulate computes where a cell of width w appended at desired x would
// land in sr, without mutating state.
func simulate(sr *subrow, desX, w float64) float64 {
	q, e, wSum := desX, 1.0, w
	pos := clampPos(q/e, sr, wSum)
	for k := len(sr.clusters) - 1; k >= 0; k-- {
		c := &sr.clusters[k]
		cPos := c.pos(sr)
		if cPos+c.w <= pos {
			break
		}
		q = c.q + q - e*c.w
		e += c.e
		wSum += c.w
		pos = clampPos(q/e, sr, wSum)
	}
	return pos + wSum - w
}

// commit appends the cell for real, collapsing clusters.
func commit(sr *subrow, cid netlist.CellID, desX, w float64) {
	sr.clusters = append(sr.clusters, cluster{
		q: desX, e: 1, w: w, cells: []netlist.CellID{cid},
	})
	sr.used += w
	for len(sr.clusters) >= 2 {
		last := &sr.clusters[len(sr.clusters)-1]
		prev := &sr.clusters[len(sr.clusters)-2]
		if prev.pos(sr)+prev.w <= last.pos(sr) {
			break
		}
		// Merge last into prev.
		prev.q += last.q - last.e*prev.w
		prev.e += last.e
		prev.w += last.w
		prev.cells = append(prev.cells, last.cells...)
		sr.clusters = sr.clusters[:len(sr.clusters)-1]
	}
}

func clampPos(p float64, sr *subrow, w float64) float64 {
	if p < sr.x0 {
		p = sr.x0
	}
	if p > sr.x1-w {
		p = sr.x1 - w
	}
	return p
}

// singleCellGroup wraps one tall cell as a one-column group.
func singleCellGroup(c netlist.CellID) []netlist.CellID {
	return []netlist.CellID{c}
}

// placeGroupTall places a tall cell spanning nRows rows using the same span
// intersection as datapath blocks.
func (l *legalizer) placeGroupTall(cells []netlist.CellID, inBlock []bool, nRows int) bool {
	nl, pl, core := l.nl, l.pl, l.core
	c := cells[0]
	cell := nl.Cell(c)
	desX, desY := pl.X[c], pl.Y[c]
	desRow := core.RowIndex(desY + core.RowH()/2)

	bestCost := math.Inf(1)
	bestRow, bestX := -1, 0.0
	for d := 0; d < core.NumRows(); d++ {
		cands := []int{desRow - d, desRow + d}
		if d == 0 {
			cands = cands[:1]
		}
		for _, r := range cands {
			if r < 0 || r+nRows > core.NumRows() {
				continue
			}
			yCost := math.Abs(core.Rows[r].Y - desY)
			if yCost >= bestCost {
				continue
			}
			x, ok := l.fitSpan(r, nRows, cell.W, desX)
			if !ok {
				continue
			}
			if cost := yCost + math.Abs(x-desX); cost < bestCost {
				bestCost, bestRow, bestX = cost, r, x
			}
		}
		if bestRow >= 0 && float64(d+1)*core.RowH() > bestCost {
			break
		}
	}
	if bestRow < 0 {
		return false
	}
	row := core.Rows[bestRow]
	if row.SiteW > 0 {
		bestX = math.Floor((bestX-row.X)/row.SiteW)*row.SiteW + row.X
	}
	pl.X[c] = bestX
	pl.Y[c] = row.Y
	inBlock[c] = true
	for b := 0; b < nRows; b++ {
		l.occupy(bestRow+b, bestX, bestX+cell.W)
	}
	return true
}
