package multilevel

import (
	"math"
	"testing"

	"repro/internal/datapath"
	"repro/internal/gen"
	"repro/internal/netlist"
)

// propertyBench generates one deterministic datapath-heavy design per seed.
func propertyBench(seed int64, random int) *gen.Benchmark {
	return gen.Generate(gen.Config{
		Name: "prop", Seed: seed, Bits: 8,
		Units:       []gen.UnitKind{gen.Adder, gen.RegBank},
		RandomCells: random,
	})
}

// coarsenOnce extracts datapath groups, coarsens one level, and projects.
func coarsenOnce(t *testing.T, b *gen.Benchmark, ratio float64) (*datapath.Extraction, []int, *netlist.ClusterMap) {
	t.Helper()
	ext := datapath.Extract(b.Netlist, datapath.DefaultOptions())
	assign := coarsen(b.Netlist, ext.AtomicSets(), nil, ratio)
	cm, err := netlist.ProjectClusters(b.Netlist, assign)
	if err != nil {
		t.Fatal(err)
	}
	return ext, assign, cm
}

// TestClusteringPreservesArea asserts total movable area is invariant under
// clustering at every level of a two-level hierarchy, across seeds.
func TestClusteringPreservesArea(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		b := propertyBench(seed, 300)
		_, _, cm := coarsenOnce(t, b, 0.4)
		levels := []*netlist.Netlist{b.Netlist, cm.Coarse}
		// Second level: no atomic seeds, frozen propagated.
		frozen := propagateFrozen(cm, frozenMask(b.Netlist, t))
		assign2 := coarsen(cm.Coarse, nil, frozen, 0.4)
		cm2, err := netlist.ProjectClusters(cm.Coarse, assign2)
		if err != nil {
			t.Fatal(err)
		}
		levels = append(levels, cm2.Coarse)
		want := b.Netlist.MovableArea()
		for li, nl := range levels {
			got := nl.MovableArea()
			if math.Abs(got-want) > 1e-6*want {
				t.Errorf("seed %d level %d: movable area %g, want %g", seed, li, got, want)
			}
		}
	}
}

// frozenMask recomputes the flat frozen mask from extraction, as the driver
// does internally.
func frozenMask(nl *netlist.Netlist, t *testing.T) []bool {
	t.Helper()
	ext := datapath.Extract(nl, datapath.DefaultOptions())
	frozen := make([]bool, nl.NumCells())
	for _, set := range ext.AtomicSets() {
		for _, c := range set {
			frozen[c] = true
		}
	}
	return frozen
}

// TestClusteringKeepsGroupsAtomic asserts every extracted datapath group
// coarsens into exactly one cluster containing exactly the group's cells —
// never merged with foreign cells or another group.
func TestClusteringKeepsGroupsAtomic(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		b := propertyBench(seed, 300)
		ext, assign, cm := coarsenOnce(t, b, 0.4)
		if len(ext.Groups) == 0 {
			t.Fatalf("seed %d: extraction found no groups", seed)
		}
		for gi, set := range ext.AtomicSets() {
			k := cm.ClusterOf[set[0]]
			for _, c := range set[1:] {
				if cm.ClusterOf[c] != k {
					t.Fatalf("seed %d group %d: split across clusters %d and %d",
						seed, gi, k, cm.ClusterOf[c])
				}
			}
			if got, want := len(cm.Members[k]), len(set); got != want {
				t.Errorf("seed %d group %d: cluster has %d members, group has %d cells",
					seed, gi, got, want)
			}
		}
		// Cross-check via the raw assignment: two cells of different groups
		// never share a cluster id.
		for c1 := range b.Netlist.Cells {
			g1 := ext.CellGroup[c1]
			if g1 < 0 {
				continue
			}
			for c2 := c1 + 1; c2 < b.Netlist.NumCells(); c2++ {
				g2 := ext.CellGroup[c2]
				if g2 >= 0 && g2 != g1 && assign[c1] == assign[c2] {
					t.Fatalf("seed %d: cells %d (group %d) and %d (group %d) share cluster %d",
						seed, c1, g1, c2, g2, assign[c1])
				}
			}
		}
	}
}

// TestUnclusteringIsBijection asserts the partition is a bijection back to
// the flat netlist: every flat cell sits in exactly one member slot and the
// two directions of the map agree.
func TestUnclusteringIsBijection(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		b := propertyBench(seed, 300)
		_, _, cm := coarsenOnce(t, b, 0.4)
		if err := cm.CheckBijection(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got, want := len(sortedMembers(cm)), b.Netlist.NumCells(); got != want {
			t.Fatalf("seed %d: member lists cover %d of %d cells", seed, got, want)
		}
		// Fixed cells must be singletons so pads survive every level intact.
		for ck, ms := range cm.Members {
			for _, c := range ms {
				if b.Netlist.Cell(c).Fixed && len(ms) != 1 {
					t.Errorf("seed %d: fixed cell %d in %d-member cluster %d",
						seed, c, len(ms), ck)
				}
			}
		}
	}
}

// TestCoarseningIsDeterministic asserts the clustering pass is a pure
// function of its inputs: two runs produce identical assignments.
func TestCoarseningIsDeterministic(t *testing.T) {
	b := propertyBench(7, 300)
	ext := datapath.Extract(b.Netlist, datapath.DefaultOptions())
	a1 := coarsen(b.Netlist, ext.AtomicSets(), nil, 0.4)
	a2 := coarsen(b.Netlist, ext.AtomicSets(), nil, 0.4)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("assignment differs at cell %d: %d vs %d", i, a1[i], a2[i])
		}
	}
}

// TestCoarseningReduces asserts the pass actually approaches the requested
// ratio on a connected design instead of stalling.
func TestCoarseningReduces(t *testing.T) {
	b := propertyBench(3, 600)
	ext := datapath.Extract(b.Netlist, datapath.DefaultOptions())
	assign := coarsen(b.Netlist, ext.AtomicSets(), nil, 0.4)
	cm, err := netlist.ProjectClusters(b.Netlist, assign)
	if err != nil {
		t.Fatal(err)
	}
	if r := cm.Ratio(); r > 0.7 {
		t.Errorf("coarsening ratio %.3f barely reduced the netlist", r)
	}
	if err := cm.Coarse.Validate(); err != nil {
		t.Fatal(err)
	}
}
