// Package multilevel implements V-cycle clustered global placement: the
// netlist is coarsened bottom-up by connectivity-driven clustering (with
// extracted datapath groups kept atomic so bits × stages regularity survives
// coarsening), the coarsest cluster netlist is placed with the analytical
// engine, and positions are interpolated back down level by level, each
// level warm-starting a refinement solve under a progressively tighter
// density target. The driver reuses internal/place/global unchanged at every
// level, so the determinism, health-guard and cancellation guarantees of the
// flat engine hold per level — and the whole V-cycle is a deterministic
// function of the netlist and options.
package multilevel

import (
	"math"
	"sort"

	"repro/internal/netlist"
)

// maxScoredDegree caps the net degree considered by the clustering score:
// wider nets (clock, reset, control fanout) carry almost no locality signal
// and would make scoring quadratic in the worst case.
const maxScoredDegree = 16

// coarsen computes one level of best-choice clustering and returns the
// cluster id of every cell (ids are union-find roots; ProjectClusters
// compacts them). Cells listed in an atomic set are pre-merged into one
// cluster that is never extended; fixed cells and cells marked frozen stay
// singletons. ratio is the target |coarse movable| / |fine movable|.
//
// The pass is deterministic: cells are visited in index order, the best
// neighbor is the highest clique-model score with ties broken toward the
// lowest cluster root, and union-find roots are always the lowest member id.
func coarsen(nl *netlist.Netlist, atomic [][]netlist.CellID, frozen []bool, ratio float64) []int {
	nc := nl.NumCells()
	parent := make([]int32, nc)
	size := make([]int32, nc)
	area := make([]float64, nc)
	locked := make([]bool, nc) // cluster may not grow (atomic group / frozen / fixed)
	for i := 0; i < nc; i++ {
		parent[i] = int32(i)
		size[i] = 1
		area[i] = nl.Cells[i].Area()
		locked[i] = nl.Cells[i].Fixed || (frozen != nil && frozen[i])
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) int32 {
		ra, rb := find(a), find(b)
		if ra == rb {
			return ra
		}
		if rb < ra {
			ra, rb = rb, ra // root is always the lowest member id
		}
		parent[rb] = ra
		size[ra] += size[rb]
		area[ra] += area[rb]
		locked[ra] = locked[ra] || locked[rb]
		return ra
	}

	movable := nl.NumMovable()
	clusters := movable
	for _, set := range atomic {
		if len(set) < 2 {
			if len(set) == 1 {
				locked[find(int32(set[0]))] = true
			}
			continue
		}
		root := int32(set[0])
		for _, c := range set[1:] {
			if find(int32(c)) != find(root) {
				clusters--
			}
			root = union(root, int32(c))
		}
		locked[find(root)] = true
	}

	if ratio <= 0 || ratio >= 1 {
		ratio = 0.4
	}
	target := int(math.Ceil(float64(movable) * ratio))
	maxMembers := int32(math.Round(1 / ratio))
	if maxMembers < 2 {
		maxMembers = 2
	}
	avgArea := 0.0
	if movable > 0 {
		avgArea = nl.MovableArea() / float64(movable)
	}
	maxArea := avgArea * float64(maxMembers) * 2

	// First-choice pass: each unlocked movable cell merges with its highest-
	// scoring eligible neighbor. The score map is keyed by cluster root;
	// argmax with a full (score, root) tie-break is iteration-order free.
	score := map[int32]float64{}
	for u := 0; u < nc && clusters > target; u++ {
		cell := &nl.Cells[u]
		if cell.Fixed {
			continue
		}
		ru := find(int32(u))
		if locked[ru] || size[ru] >= maxMembers {
			continue
		}
		clear(score)
		for _, pid := range cell.Pins {
			net := nl.Net(nl.Pin(pid).Net)
			deg := net.Degree()
			if deg < 2 || deg > maxScoredDegree {
				continue
			}
			w := net.Weight / float64(deg-1)
			for _, qid := range net.Pins {
				q := nl.Pin(qid)
				if q.Cell == netlist.NoCell || q.Cell == netlist.CellID(u) {
					continue
				}
				if nl.Cells[q.Cell].Fixed {
					continue
				}
				rv := find(int32(q.Cell))
				if rv == ru || locked[rv] {
					continue
				}
				if size[ru]+size[rv] > maxMembers || area[ru]+area[rv] > maxArea {
					continue
				}
				score[rv] += w
			}
		}
		best, bestScore := int32(-1), 0.0
		//placelint:ignore maporder argmax with a full (score, root) tie break is iteration-order independent
		for rv, s := range score {
			//placelint:ignore floateq scores accumulate identical weight terms for symmetric neighbors; == is exact tie detection
			if s > bestScore || (s == bestScore && best >= 0 && rv < best) {
				best, bestScore = rv, s
			}
		}
		if best < 0 {
			continue
		}
		union(ru, best)
		clusters--
	}

	out := make([]int, nc)
	for i := 0; i < nc; i++ {
		out[i] = int(find(int32(i)))
	}
	return out
}

// propagateFrozen marks the coarse cells whose members include a frozen flat
// cell (an atomic datapath cluster), so coarser levels keep them atomic.
func propagateFrozen(m *netlist.ClusterMap, frozenFlat []bool) []bool {
	frozen := make([]bool, m.NumClusters())
	if frozenFlat == nil {
		return frozen
	}
	for ck, ms := range m.Members {
		for _, c := range ms {
			if frozenFlat[c] {
				frozen[ck] = true
				break
			}
		}
	}
	return frozen
}

// sortedMembers is a test hook: it asserts every member list ProjectClusters
// built is ascending (the bijection check relies on it) and returns the
// flattened membership for invariant tests.
func sortedMembers(m *netlist.ClusterMap) []netlist.CellID {
	var all []netlist.CellID
	for _, ms := range m.Members {
		all = append(all, ms...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}
