package multilevel_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/place/multilevel"
)

func vcycleBench(random int) *gen.Benchmark {
	return gen.Generate(gen.Config{
		Name: "vcycle", Seed: 11, Bits: 8,
		Units:       []gen.UnitKind{gen.Adder, gen.RegBank},
		RandomCells: random,
	})
}

// mlOptions forces at least two levels on the small test design.
func mlOptions() multilevel.Options {
	return multilevel.Options{MinCells: 100}
}

// placeML runs the full pipeline with the V-cycle enabled.
func placeML(t *testing.T, random int, workers int) *core.Result {
	t.Helper()
	b := vcycleBench(random)
	opt := core.Options{Mode: core.StructureAware, Multilevel: true, MultilevelOpts: mlOptions()}
	opt.Global.Workers = workers
	res, err := core.Place(b.Netlist, b.Core, b.Placement, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestVCycleProducesLegalPlacement is the end-to-end smoke: the multilevel
// path must coarsen at least once and hand legalization a placement it can
// finish into a verified-legal result.
func TestVCycleProducesLegalPlacement(t *testing.T) {
	res := placeML(t, 400, 1)
	if res.Multilevel == nil {
		t.Fatal("multilevel result missing")
	}
	if res.Multilevel.Levels < 2 {
		t.Fatalf("V-cycle ran %d levels, want >= 2", res.Multilevel.Levels)
	}
	if res.Multilevel.ClusterRatio >= 1 || res.Multilevel.ClusterRatio <= 0 {
		t.Errorf("cluster ratio %.3f out of range", res.Multilevel.ClusterRatio)
	}
	if len(res.Multilevel.PerLevel) != res.Multilevel.Levels {
		t.Errorf("per-level stats: %d entries for %d levels",
			len(res.Multilevel.PerLevel), res.Multilevel.Levels)
	}
	if !res.LegalityChecked {
		t.Error("final placement was not legality-checked")
	}
	if res.HPWLFinal <= 0 || math.IsNaN(res.HPWLFinal) {
		t.Errorf("bad final HPWL %g", res.HPWLFinal)
	}
}

// TestVCycleQualityNearFlat compares the multilevel result against the flat
// flow on the same design: the V-cycle exists to be faster at scale, but on
// a small benchmark it must stay in the same quality regime.
func TestVCycleQualityNearFlat(t *testing.T) {
	b := vcycleBench(400)
	flat, err := core.Place(b.Netlist, b.Core, b.Placement,
		core.Options{Mode: core.StructureAware})
	if err != nil {
		t.Fatal(err)
	}
	ml := placeML(t, 400, 1)
	if ml.HPWLFinal > 1.25*flat.HPWLFinal {
		t.Errorf("multilevel HPWL %.0f vs flat %.0f (>25%% worse)",
			ml.HPWLFinal, flat.HPWLFinal)
	}
}

// TestVCycleDeterministic asserts the whole V-cycle is a pure function of
// its inputs, bit-identical run to run and at every worker count — the
// guarantee the flat engine already gives, preserved per level.
func TestVCycleDeterministic(t *testing.T) {
	ref := placeML(t, 300, 1)
	for _, workers := range []int{1, 2} {
		res := placeML(t, 300, workers)
		for i := range ref.Placement.X {
			if ref.Placement.X[i] != res.Placement.X[i] ||
				ref.Placement.Y[i] != res.Placement.Y[i] {
				t.Fatalf("workers=%d: cell %d moved: (%v,%v) vs (%v,%v)",
					workers, i,
					ref.Placement.X[i], ref.Placement.Y[i],
					res.Placement.X[i], res.Placement.Y[i])
			}
		}
	}
}

// TestVCycleTimeout asserts a blown deadline still yields a complete flat
// placement (every coordinate finite) and the timeout classification.
func TestVCycleTimeout(t *testing.T) {
	b := vcycleBench(400)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// Let the context expire before placement begins.
	time.Sleep(5 * time.Millisecond)
	pl := b.Placement.Clone()
	mlRes, err := multilevel.PlaceCtx(ctx, b.Netlist, pl, b.Core, multilevel.Options{MinCells: 100})
	if !errors.Is(err, pipeline.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !mlRes.Global.Diagnostics.Partial {
		t.Error("partial flag not set on timeout")
	}
	for i := range pl.X {
		if math.IsNaN(pl.X[i]) || math.IsNaN(pl.Y[i]) {
			t.Fatalf("cell %d has NaN coordinates after timeout", i)
		}
	}
}

// TestVCycleSingleLevelFallback asserts a design already below MinCells
// degenerates gracefully to the flat engine (one level, no coarsening).
func TestVCycleSingleLevelFallback(t *testing.T) {
	b := vcycleBench(50)
	pl := b.Placement.Clone()
	res, err := multilevel.Place(b.Netlist, pl, b.Core, multilevel.Options{MinCells: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels != 1 {
		t.Fatalf("levels = %d, want 1", res.Levels)
	}
	if res.ClusterRatio != 1 {
		t.Errorf("cluster ratio = %g, want 1 for the flat fallback", res.ClusterRatio)
	}
	if res.Global.HPWL <= 0 {
		t.Errorf("flat fallback produced HPWL %g", res.Global.HPWL)
	}
}
