package multilevel

import (
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/place/congestion"
	"repro/internal/place/global"
)

// Options controls the V-cycle.
type Options struct {
	// ClusterRatio is the target per-level coarsening ratio
	// |coarse movable| / |fine movable| (default 0.22). The default is
	// steeper than the classic 0.3–0.5 used by flat-clustering placers: a
	// steep ratio keeps the stack shallow (4 levels on a ~13k-cell design),
	// and each saved refinement level buys more wall clock than a gentler
	// hierarchy buys quality on the benchmarks in EXPERIMENTS.md.
	ClusterRatio float64
	// MaxLevels caps the number of coarsening levels built on top of the
	// flat netlist (default 8; the stack also stops at MinCells).
	MaxLevels int
	// MinCells stops coarsening once a level has at most this many movable
	// cells (default 400) — below that the flat engine is already cheap.
	MinCells int
	// RefineOuter bounds the λ-schedule length of the warm-started
	// refinement solves at intermediate and finest levels (default
	// max(8, Global.MaxOuterIters/2)). The coarsest level always gets the
	// full Global.MaxOuterIters budget.
	RefineOuter int
	// Global is the base configuration every level's analytical solve
	// derives from (density target, worker count, wirelength model, ...).
	Global global.Options
	// Groups are the extracted datapath groups of the flat netlist. Each
	// group coarsens into one atomic cluster, and the finest-level refine
	// re-aligns it through the usual hard-alignment formulation.
	Groups []global.AlignGroup
}

func (o *Options) fillDefaults() {
	if o.ClusterRatio <= 0 || o.ClusterRatio >= 1 {
		o.ClusterRatio = 0.22
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 8
	}
	if o.MinCells <= 0 {
		o.MinCells = 400
	}
	if o.RefineOuter <= 0 {
		outer := o.Global.MaxOuterIters
		if outer <= 0 {
			outer = 24
		}
		o.RefineOuter = outer / 2
		if o.RefineOuter < 8 {
			o.RefineOuter = 8
		}
	}
}

// LevelStats summarizes one level of the V-cycle for reports and tables.
type LevelStats struct {
	// Level is the height in the hierarchy: 0 is the flat netlist.
	Level int
	// Cells and Nets size this level's (cluster) netlist.
	Cells, Nets int
	// Movable is the movable-cell count the coarsening ratio steers by.
	Movable int
	// HPWL is the half-perimeter wirelength after this level's solve.
	HPWL float64
	// OuterIters is the λ-schedule length this level's solve used.
	OuterIters int
	// Seconds is the wall clock of this level's solve.
	Seconds float64
}

// Result reports the V-cycle outcome.
type Result struct {
	// Levels is the number of placement levels run (1 = flat only).
	Levels int
	// CoarsestCells is the movable-cell count of the coarsest level.
	CoarsestCells int
	// ClusterRatio is |coarsest movable| / |flat movable|.
	ClusterRatio float64
	// PerLevel holds one entry per level, coarsest first.
	PerLevel []LevelStats
	// Global is the finest-level solve's result: its diagnostics and quality
	// numbers describe the placement the caller receives.
	Global global.Result
}

// levelState is one rung of the hierarchy.
type levelState struct {
	nl     *netlist.Netlist
	pl     *netlist.Placement
	frozen []bool
}

// Place runs the V-cycle without cancellation; see PlaceCtx.
func Place(nl *netlist.Netlist, pl *netlist.Placement, chip *geom.Core, o Options) (Result, error) {
	return PlaceCtx(context.Background(), nl, pl, chip, o)
}

// PlaceCtx coarsens the netlist bottom-up, places the coarsest cluster
// netlist with the analytical engine, then walks back down: each finer level
// starts from the interpolated cluster positions and refines them under a
// progressively tighter density target, with the flat level re-aligning the
// datapath groups. pl is updated in place with the finest-level placement
// (spread but not legalized, exactly like global.PlaceCtx output).
//
// Cancellation and health guards compose per level: on a deadline or a
// divergence the best iterate of the failing level is interpolated all the
// way down to the flat netlist, so pl always holds a complete placement, and
// the error wraps pipeline.ErrTimeout / pipeline.ErrDiverged as usual.
func PlaceCtx(ctx context.Context, nl *netlist.Netlist, pl *netlist.Placement, chip *geom.Core, o Options) (Result, error) {
	o.fillDefaults()
	rec := obs.From(ctx)
	res := Result{}

	levels, maps, err := buildHierarchy(nl, pl, o, rec)
	if err != nil {
		return res, err
	}
	top := len(levels) - 1
	res.Levels = len(levels)
	res.CoarsestCells = levels[top].nl.NumMovable()
	if fm := nl.NumMovable(); fm > 0 {
		res.ClusterRatio = float64(res.CoarsestCells) / float64(fm)
	}
	rec.Add("multilevel/levels", int64(res.Levels))
	rec.Add("multilevel/coarsest_cells", int64(res.CoarsestCells))
	rec.Logf(obs.Debug, "multilevel", "%d levels, coarsest %d movable cells (ratio %.3f)",
		res.Levels, res.CoarsestCells, res.ClusterRatio)

	// Downward pass: solve coarsest-to-finest, interpolating between levels.
	for k := top; k >= 0; k-- {
		if pipeline.Expired(ctx) {
			// Level k is not solved yet; the best committed positions live at
			// level k+1 (when one was solved) — push those down to flat.
			if k < top {
				cascade(maps, levels, k+1)
			}
			res.Global.Diagnostics.Partial = true
			return res, pipeline.StageError("multilevel", pipeline.ErrTimeout)
		}
		if k < top {
			maps[k].InterpolatePlacement(levels[k+1].pl, levels[k].pl)
		}
		gOpt := levelOptions(o, k, top)
		sp := rec.Span(fmt.Sprintf("multilevel/level%d", k))
		sp.Add("cells", int64(levels[k].nl.NumCells()))
		sp.Add("nets", int64(levels[k].nl.NumNets()))
		sw := obs.StartStopwatch()
		gRes, gErr := global.PlaceCtx(ctx, levels[k].nl, levels[k].pl, chip, gOpt)
		sp.Add("outer_iters", int64(gRes.OuterIters))
		sp.End()
		res.PerLevel = append(res.PerLevel, LevelStats{
			Level:      k,
			Cells:      levels[k].nl.NumCells(),
			Nets:       levels[k].nl.NumNets(),
			Movable:    levels[k].nl.NumMovable(),
			HPWL:       levels[k].pl.HPWL(levels[k].nl),
			OuterIters: gRes.OuterIters,
			Seconds:    sw.Seconds(),
		})
		// res.Global carries the finest solve's quality numbers, but the
		// incremental-evaluation counters aggregate across every level: the
		// dirty-net ratio of the whole V-cycle is what the run report surfaces.
		gRes.NetRecomputes += res.Global.NetRecomputes
		gRes.NetReuses += res.Global.NetReuses
		gRes.FullEvals += res.Global.FullEvals
		gRes.DeltaEvals += res.Global.DeltaEvals
		res.Global = gRes
		if gErr != nil {
			// The failing level committed its best iterate; push it down so
			// the flat placement is complete, then surface the stage error.
			cascade(maps, levels, k)
			return res, fmt.Errorf("multilevel: level %d: %w", k, gErr)
		}
	}
	return res, nil
}

// buildHierarchy coarsens bottom-up until MinCells, MaxLevels or a
// stalled ratio stops it. maps[k] projects level k onto level k+1.
func buildHierarchy(nl *netlist.Netlist, pl *netlist.Placement, o Options, rec *obs.Recorder) ([]*levelState, []*netlist.ClusterMap, error) {
	flat := &levelState{nl: nl, pl: pl}
	levels := []*levelState{flat}
	var maps []*netlist.ClusterMap

	atomic := atomicFromGroups(o.Groups)
	for len(levels) <= o.MaxLevels {
		cur := levels[len(levels)-1]
		if cur.nl.NumMovable() <= o.MinCells {
			break
		}
		// Atomic group sets exist in flat cell ids, so they seed only the
		// first coarsening; above that the frozen flags carry atomicity.
		var seeds [][]netlist.CellID
		if len(levels) == 1 {
			seeds = atomic
		}
		assign := coarsen(cur.nl, seeds, cur.frozen, o.ClusterRatio)
		cm, err := netlist.ProjectClusters(cur.nl, assign)
		if err != nil {
			return nil, nil, fmt.Errorf("multilevel: level %d projection: %w", len(levels), err)
		}
		if cm.Ratio() > 0.95 {
			break // clustering stalled; a further level would only add overhead
		}
		next := &levelState{
			nl:     cm.Coarse,
			pl:     cm.ProjectPlacement(cur.pl),
			frozen: propagateFrozen(cm, levelFrozen(cur, atomic)),
		}
		maps = append(maps, cm)
		levels = append(levels, next)
		rec.Logf(obs.Debug, "multilevel", "level %d: %d cells, %d nets (ratio %.3f)",
			len(levels)-1, cm.Coarse.NumCells(), cm.Coarse.NumNets(), cm.Ratio())
	}
	return levels, maps, nil
}

// levelFrozen returns the frozen mask of a level, materializing the flat
// level's mask from the atomic group sets on first use.
func levelFrozen(lv *levelState, atomic [][]netlist.CellID) []bool {
	if lv.frozen != nil || len(atomic) == 0 {
		return lv.frozen
	}
	frozen := make([]bool, lv.nl.NumCells())
	for _, set := range atomic {
		for _, c := range set {
			frozen[c] = true
		}
	}
	return frozen
}

// levelOptions derives the solver configuration of level k in a stack of
// top+1 levels: the coarsest level runs the full cold-start schedule on the
// cluster netlist; every finer level warm-starts from the interpolation with
// a compressed schedule and a density target that tightens toward the
// caller's as k approaches 0.
func levelOptions(o Options, k, top int) global.Options {
	gOpt := o.Global
	target := gOpt.TargetDensity
	if target <= 0 {
		target = 0.9
	}
	if k > 0 {
		// Looser targets at coarse levels: square clusters overestimate the
		// local footprint, and over-spreading them would be undone anyway.
		// Congestion feedback is disabled too — cluster RUDY over synthetic
		// cluster nets is not the signal the controller was calibrated for,
		// and its cell inflation only means anything on the flat netlist.
		gOpt.TargetDensity = math.Min(0.97, target+0.02*float64(k))
		gOpt.Groups = nil
		gOpt.Trace = nil
		gOpt.Congestion = congestion.Options{}
	} else {
		gOpt.TargetDensity = target
		gOpt.Groups = o.Groups
		if top > 0 {
			// Finest level of a real V-cycle: snapshot immediately on entry
			// so inflation responds to the interpolated placement inherited
			// from the coarser level, not only to the periodic cadence.
			gOpt.Congestion.SnapshotOnEntry = true
		}
	}
	if k == top && top > 0 {
		// Coarsest level: cold start (its own quadratic init) at full budget.
		gOpt.SkipQuadraticInit = false
		return gOpt
	}
	if top > 0 {
		// Warm start from the interpolated positions.
		gOpt.SkipQuadraticInit = true
		gOpt.Refine = true
		gOpt.MaxOuterIters = o.RefineOuter
	}
	return gOpt
}

// cascade interpolates the best placement committed at level k down to the
// flat netlist so callers always receive a complete placement.
func cascade(maps []*netlist.ClusterMap, levels []*levelState, k int) {
	for j := k - 1; j >= 0; j-- {
		maps[j].InterpolatePlacement(levels[j+1].pl, levels[j].pl)
	}
}

// atomicFromGroups flattens each extracted group into one atomic cell set
// (column-major, matching datapath.Extraction.AtomicSets).
func atomicFromGroups(groups []global.AlignGroup) [][]netlist.CellID {
	sets := make([][]netlist.CellID, 0, len(groups))
	for _, g := range groups {
		var cells []netlist.CellID
		for _, col := range g.Cols {
			cells = append(cells, col...)
		}
		if len(cells) > 0 {
			sets = append(sets, cells)
		}
	}
	return sets
}
