package detail_test

import (
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place/detail"
	"repro/internal/place/global"
)

// crossedColumns builds a 2-column group whose stage order is deliberately
// wrong: column 0 connects to a pad on the right, column 1 to a pad on the
// left, but column 0 is placed left of column 1.
func crossedColumns(t *testing.T) (*netlist.Netlist, *netlist.Placement, []global.AlignGroup) {
	t.Helper()
	nl := netlist.New("cc")
	padL := nl.MustAddCell("padL", "PAD", 1, 1, true)
	padR := nl.MustAddCell("padR", "PAD", 1, 1, true)
	bits := 4
	colA := make([]netlist.CellID, bits)
	colB := make([]netlist.CellID, bits)
	for b := 0; b < bits; b++ {
		colA[b] = nl.MustAddCell(fmt.Sprintf("a%d", b), "DFF", 6, 10, false)
		colB[b] = nl.MustAddCell(fmt.Sprintf("b%d", b), "DFF", 6, 10, false)
		nl.MustAddNet(fmt.Sprintf("na%d", b), 1,
			netlist.Endpoint{Cell: padR, Pin: "P", Dir: netlist.DirOutput},
			netlist.Endpoint{Cell: colA[b], Pin: "D", Dir: netlist.DirInput},
		)
		nl.MustAddNet(fmt.Sprintf("nb%d", b), 1,
			netlist.Endpoint{Cell: padL, Pin: "P", Dir: netlist.DirOutput},
			netlist.Endpoint{Cell: colB[b], Pin: "D", Dir: netlist.DirInput},
		)
	}
	pl := netlist.NewPlacement(nl)
	pl.SetLoc(padL, geom.Point{X: -2, Y: 20})
	pl.SetLoc(padR, geom.Point{X: 200, Y: 20})
	for b := 0; b < bits; b++ {
		pl.SetLoc(colA[b], geom.Point{X: 40, Y: float64(b) * 10}) // wants right
		pl.SetLoc(colB[b], geom.Point{X: 60, Y: float64(b) * 10}) // wants left
	}
	groups := []global.AlignGroup{{Cols: [][]netlist.CellID{colA, colB}}}
	return nl, pl, groups
}

func TestImproveColumnsSwapsCrossedStages(t *testing.T) {
	nl, pl, groups := crossedColumns(t)
	before := pl.HPWL(nl)
	moves := detail.ImproveColumns(nl, pl, groups, 2)
	if moves == 0 {
		t.Fatal("crossed columns not swapped")
	}
	after := pl.HPWL(nl)
	if after >= before {
		t.Fatalf("HPWL did not improve: %.0f -> %.0f", before, after)
	}
	// Alignment preserved: each column still shares one x.
	for _, g := range groups {
		for _, col := range g.Cols {
			for _, c := range col[1:] {
				if pl.X[c] != pl.X[col[0]] {
					t.Fatal("column alignment broken by swap")
				}
			}
		}
	}
}

func TestImproveColumnsSkipsUnaligned(t *testing.T) {
	nl, pl, groups := crossedColumns(t)
	// Break the alignment of column 0 — simulates a dissolved group.
	pl.X[groups[0].Cols[0][2]] += 3
	if moves := detail.ImproveColumns(nl, pl, groups, 1); moves != 0 {
		t.Fatalf("unaligned group was swapped (%d moves)", moves)
	}
}

func TestImproveColumnsNoImprovementNoMoves(t *testing.T) {
	nl, pl, groups := crossedColumns(t)
	// Pre-swap into the optimal order; no further move should be accepted.
	detail.ImproveColumns(nl, pl, groups, 2)
	if moves := detail.ImproveColumns(nl, pl, groups, 2); moves != 0 {
		t.Fatalf("oscillation: %d extra moves", moves)
	}
}

func TestLockedFromGroups(t *testing.T) {
	nl, _, groups := crossedColumns(t)
	locked := detail.LockedFromGroups(nl.NumCells(), groups)
	n := 0
	for _, l := range locked {
		if l {
			n++
		}
	}
	if n != 8 {
		t.Errorf("locked %d cells, want 8", n)
	}
}
