package detail

import (
	"sort"

	"repro/internal/netlist"
	"repro/internal/place/global"
)

// ImproveColumns optimizes the stage order inside aligned datapath groups:
// any two equal-width columns of a group may swap x positions (all cells of
// a column move together, so bit alignment and legality are preserved
// exactly). Global placement orders columns by their pre-snap means, which
// is frequently off by a stage or two; this repairs it. Returns the number
// of accepted swaps.
func ImproveColumns(nl *netlist.Netlist, pl *netlist.Placement, groups []global.AlignGroup, passes int) int {
	if passes <= 0 {
		passes = 2
	}
	d := &improver{nl: nl, pl: pl}
	d.buildAdjacency()

	total := 0
	for pass := 0; pass < passes; pass++ {
		moves := 0
		for _, g := range groups {
			moves += d.columnSwapPass(g)
		}
		total += moves
		if moves == 0 {
			break
		}
	}
	return total
}

// isAligned reports whether the group actually survived legalization as an
// aligned array: all cells of each column share one x. Dissolved fallback
// groups fail this and must not be column-swapped (their cells sit at
// arbitrary positions).
func isAligned(pl *netlist.Placement, g global.AlignGroup) bool {
	for _, col := range g.Cols {
		for _, c := range col[1:] {
			// Alignment assigns the identical value to every cell of a column,
			// so bitwise inequality is exactly "this group was dissolved".
			//placelint:ignore floateq aligned columns share one assigned x; any difference means a dissolved group
			if pl.X[c] != pl.X[col[0]] {
				return false
			}
		}
	}
	return true
}

// columnSwapPass tries every equal-width column pair of one group.
func (d *improver) columnSwapPass(g global.AlignGroup) int {
	nl, pl := d.nl, d.pl
	if !isAligned(pl, g) {
		return 0
	}
	type colState struct {
		cells []netlist.CellID
		x     float64
		w     float64
	}
	cols := make([]colState, 0, len(g.Cols))
	for _, col := range g.Cols {
		if len(col) == 0 {
			continue
		}
		cs := colState{cells: col, x: pl.X[col[0]], w: nl.Cell(col[0]).W}
		cols = append(cols, cs)
	}
	// Deterministic order by x.
	sort.SliceStable(cols, func(a, b int) bool { return cols[a].x < cols[b].x })

	moves := 0
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			//placelint:ignore floateq cell widths are stored netlist values, never computed; only identical widths may swap
			if cols[i].w != cols[j].w {
				continue
			}
			affected := d.netsOf(append(append([]netlist.CellID{}, cols[i].cells...), cols[j].cells...))
			before := d.wlOf(affected)
			setColumnX(pl, cols[i].cells, cols[j].x)
			setColumnX(pl, cols[j].cells, cols[i].x)
			if d.wlOf(affected) < before-1e-9 {
				cols[i].x, cols[j].x = cols[j].x, cols[i].x
				moves++
				continue
			}
			// Revert.
			setColumnX(pl, cols[i].cells, cols[i].x)
			setColumnX(pl, cols[j].cells, cols[j].x)
		}
	}
	return moves
}

func setColumnX(pl *netlist.Placement, cells []netlist.CellID, x float64) {
	for _, c := range cells {
		pl.X[c] = x
	}
}

// LockedFromGroups builds the detail-placement lock mask for group cells.
func LockedFromGroups(n int, groups []global.AlignGroup) []bool {
	locked := make([]bool, n)
	for _, g := range groups {
		for _, col := range g.Cols {
			for _, c := range col {
				if int(c) < n {
					locked[c] = true
				}
			}
		}
	}
	return locked
}
