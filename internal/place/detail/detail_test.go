package detail_test

import (
	"testing"

	"repro/internal/datapath"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place/detail"
	"repro/internal/place/global"
	"repro/internal/place/legal"
)

func legalBench(t *testing.T) (*gen.Benchmark, *netlist.Placement, []global.AlignGroup) {
	t.Helper()
	b := gen.Generate(gen.Config{
		Name: "dt", Seed: 31, Bits: 8,
		Units:       []gen.UnitKind{gen.Adder},
		RandomCells: 250,
		Pads:        12,
	})
	ext := datapath.Extract(b.Netlist, datapath.DefaultOptions())
	groups := global.AlignGroupsFromExtraction(ext)
	pl := b.Placement.Clone()
	if _, err := global.Place(b.Netlist, pl, b.Core, global.Options{
		MaxOuterIters: 16, InnerIters: 30, Groups: groups,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := legal.Legalize(b.Netlist, pl, b.Core, legal.Options{Groups: groups}); err != nil {
		t.Fatal(err)
	}
	return b, pl, groups
}

func lockedFromGroups(n int, groups []global.AlignGroup) []bool {
	locked := make([]bool, n)
	for _, g := range groups {
		for _, col := range g.Cols {
			for _, c := range col {
				locked[c] = true
			}
		}
	}
	return locked
}

func TestImproveReducesHPWLAndStaysLegal(t *testing.T) {
	b, pl, groups := legalBench(t)
	locked := lockedFromGroups(b.Netlist.NumCells(), groups)
	res := detail.Improve(b.Netlist, pl, b.Core, detail.Options{Locked: locked})
	if res.HPWLAfter > res.HPWLBefore+1e-9 {
		t.Errorf("HPWL increased: %.1f -> %.1f", res.HPWLBefore, res.HPWLAfter)
	}
	if res.Moves == 0 {
		t.Error("no improving moves found (implausible on a fresh legalization)")
	}
	if err := pl.CheckLegal(b.Netlist, b.Core); err != nil {
		t.Fatalf("detailed placement broke legality: %v", err)
	}
}

func TestImproveKeepsLockedCellsPut(t *testing.T) {
	b, pl, groups := legalBench(t)
	locked := lockedFromGroups(b.Netlist.NumCells(), groups)
	before := pl.Clone()
	detail.Improve(b.Netlist, pl, b.Core, detail.Options{Locked: locked})
	for i, isLocked := range locked {
		if isLocked && (pl.X[i] != before.X[i] || pl.Y[i] != before.Y[i]) {
			t.Fatalf("locked cell %d moved", i)
		}
	}
}

func TestImproveWithoutLocks(t *testing.T) {
	b, pl, _ := legalBench(t)
	res := detail.Improve(b.Netlist, pl, b.Core, detail.Options{Passes: 1})
	if res.HPWLAfter > res.HPWLBefore+1e-9 {
		t.Errorf("HPWL increased without locks: %.1f -> %.1f", res.HPWLBefore, res.HPWLAfter)
	}
	if err := pl.CheckLegal(b.Netlist, b.Core); err != nil {
		t.Fatalf("not legal: %v", err)
	}
}

func TestImproveFixesObviousSwap(t *testing.T) {
	// Two cells in one row placed in crossing order relative to their
	// anchor pads: window reordering must uncross them.
	nl := netlist.New("x")
	padL := nl.MustAddCell("padL", "PAD", 1, 1, true)
	padR := nl.MustAddCell("padR", "PAD", 1, 1, true)
	a := nl.MustAddCell("a", "STD", 4, 10, false)
	c := nl.MustAddCell("c", "STD", 4, 10, false)
	nl.MustAddNet("nl", 1,
		netlist.Endpoint{Cell: padL, Pin: "P", Dir: netlist.DirOutput},
		netlist.Endpoint{Cell: a, Pin: "A", Dir: netlist.DirInput},
	)
	nl.MustAddNet("nr", 1,
		netlist.Endpoint{Cell: padR, Pin: "P", Dir: netlist.DirOutput},
		netlist.Endpoint{Cell: c, Pin: "A", Dir: netlist.DirInput},
	)
	core := geom.NewCore(geom.NewRect(0, 0, 100, 20), 10, 1)
	pl := netlist.NewPlacement(nl)
	pl.SetLoc(padL, geom.Point{X: -1, Y: 0})
	pl.SetLoc(padR, geom.Point{X: 100, Y: 0})
	pl.SetLoc(c, geom.Point{X: 40, Y: 0}) // c wants right, sits left
	pl.SetLoc(a, geom.Point{X: 50, Y: 0}) // a wants left, sits right
	res := detail.Improve(nl, pl, core, detail.Options{Window: 2, Passes: 1})
	if res.Moves == 0 || res.HPWLAfter >= res.HPWLBefore {
		t.Fatalf("crossing not fixed: %+v", res)
	}
	if !(pl.X[a] < pl.X[c]) {
		t.Errorf("order not fixed: a=%g c=%g", pl.X[a], pl.X[c])
	}
	if err := pl.CheckLegal(nl, core); err != nil {
		t.Fatal(err)
	}
}

func TestImproveVerticalSwap(t *testing.T) {
	// Same-width cells in adjacent rows, each pulled to the other's row.
	nl := netlist.New("v")
	padB := nl.MustAddCell("padB", "PAD", 1, 1, true)
	padT := nl.MustAddCell("padT", "PAD", 1, 1, true)
	a := nl.MustAddCell("a", "STD", 4, 10, false)
	c := nl.MustAddCell("c", "STD", 4, 10, false)
	nl.MustAddNet("nb", 1,
		netlist.Endpoint{Cell: padB, Pin: "P", Dir: netlist.DirOutput},
		netlist.Endpoint{Cell: a, Pin: "A", Dir: netlist.DirInput},
	)
	nl.MustAddNet("nt", 1,
		netlist.Endpoint{Cell: padT, Pin: "P", Dir: netlist.DirOutput},
		netlist.Endpoint{Cell: c, Pin: "A", Dir: netlist.DirInput},
	)
	core := geom.NewCore(geom.NewRect(0, 0, 100, 20), 10, 1)
	pl := netlist.NewPlacement(nl)
	pl.SetLoc(padB, geom.Point{X: 50, Y: -10})
	pl.SetLoc(padT, geom.Point{X: 50, Y: 20})
	pl.SetLoc(a, geom.Point{X: 50, Y: 10}) // a wants bottom, sits top
	pl.SetLoc(c, geom.Point{X: 50, Y: 0})  // c wants top, sits bottom
	res := detail.Improve(nl, pl, core, detail.Options{Passes: 1})
	if res.Moves == 0 {
		t.Fatalf("vertical swap not found: %+v", res)
	}
	if !(pl.Y[a] == 0 && pl.Y[c] == 10) {
		t.Errorf("swap wrong: a.y=%g c.y=%g", pl.Y[a], pl.Y[c])
	}
	if err := pl.CheckLegal(nl, core); err != nil {
		t.Fatal(err)
	}
}
