// Package detail implements row-based detailed placement: sliding-window
// reordering inside rows and same-width vertical swaps between nearby rows,
// both accepted only on strict HPWL improvement. It is structure-preserving:
// cells locked by the caller (datapath group members, whose quality comes
// from bit alignment) never move.
package detail

import (
	"context"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Options controls detailed placement.
type Options struct {
	// Locked marks cells that must not move (indexed by CellID). Fixed
	// cells are always locked regardless.
	Locked []bool
	// Passes is the number of full improvement sweeps (default 2).
	Passes int
	// Window is the reordering window size (default 3; max 4).
	Window int
	// Ctx, when non-nil, is polled between sweeps; on expiry Improve stops
	// early with Result.Partial set. The placement stays legal — every
	// accepted move preserves legality.
	Ctx context.Context
}

// Result reports the improvement achieved.
type Result struct {
	HPWLBefore float64
	HPWLAfter  float64
	Moves      int  // accepted changes
	Partial    bool // stopped early at a deadline
}

// Improve runs detailed placement on a legal placement, keeping it legal.
func Improve(nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core, opt Options) Result {
	if opt.Passes <= 0 {
		opt.Passes = 2
	}
	if opt.Window <= 0 {
		opt.Window = 3
	}
	if opt.Window > 4 {
		opt.Window = 4
	}
	d := &improver{nl: nl, pl: pl, core: core, opt: opt}
	d.buildAdjacency()

	rec := obs.From(opt.Ctx)
	res := Result{HPWLBefore: pl.HPWL(nl)}
	for pass := 0; pass < opt.Passes; pass++ {
		if pipeline.Expired(opt.Ctx) {
			res.Partial = true
			rec.Event("detail", "deadline")
			break
		}
		moves := 0
		moves += d.reorderPass()
		if pipeline.Expired(opt.Ctx) {
			res.Partial = true
			res.Moves += moves
			rec.Event("detail", "deadline")
			break
		}
		moves += d.vSwapPass()
		res.Moves += moves
		rec.Logf(obs.Debug, "detail", "pass %d: %d moves", pass, moves)
		if moves == 0 {
			break
		}
	}
	res.HPWLAfter = pl.HPWL(nl)
	rec.Logf(obs.Debug, "detail", "HPWL %.0f → %.0f (%d moves)",
		res.HPWLBefore, res.HPWLAfter, res.Moves)
	return res
}

type improver struct {
	nl   *netlist.Netlist
	pl   *netlist.Placement
	core *geom.Core
	opt  Options

	cellNets [][]netlist.NetID // dedup nets per cell
}

func (d *improver) locked(c netlist.CellID) bool {
	if d.nl.Cell(c).Fixed {
		return true
	}
	return d.opt.Locked != nil && int(c) < len(d.opt.Locked) && d.opt.Locked[c]
}

func (d *improver) buildAdjacency() {
	nl := d.nl
	d.cellNets = make([][]netlist.NetID, nl.NumCells())
	for i := range nl.Cells {
		seen := map[netlist.NetID]bool{}
		for _, pid := range nl.Cells[i].Pins {
			ni := nl.Pin(pid).Net
			if !seen[ni] {
				seen[ni] = true
				d.cellNets[i] = append(d.cellNets[i], ni)
			}
		}
	}
}

// netsOf returns the deduplicated union of nets touching the given cells.
func (d *improver) netsOf(cells []netlist.CellID) []netlist.NetID {
	var nets []netlist.NetID
	seen := map[netlist.NetID]bool{}
	for _, c := range cells {
		for _, ni := range d.cellNets[c] {
			if !seen[ni] {
				seen[ni] = true
				nets = append(nets, ni)
			}
		}
	}
	return nets
}

func (d *improver) wlOf(nets []netlist.NetID) float64 {
	total := 0.0
	for _, ni := range nets {
		total += d.nl.Net(ni).Weight * d.pl.NetHPWL(d.nl, ni)
	}
	return total
}

// rowCells returns movable single-row cells per row index, sorted by x.
func (d *improver) rowCells() [][]netlist.CellID {
	nl, pl, core := d.nl, d.pl, d.core
	rows := make([][]netlist.CellID, core.NumRows())
	rowH := core.RowH()
	for i := range nl.Cells {
		c := netlist.CellID(i)
		if nl.Cells[i].Fixed || nl.Cells[i].H > rowH+1e-9 {
			continue
		}
		r := core.RowIndex(pl.Y[c] + rowH/2)
		rows[r] = append(rows[r], c)
	}
	for r := range rows {
		cells := rows[r]
		sort.Slice(cells, func(a, b int) bool { return d.pl.X[cells[a]] < d.pl.X[cells[b]] })
	}
	return rows
}

// reorderPass slides a window along each row and keeps the best permutation
// of the window cells packed into their combined span.
func (d *improver) reorderPass() int {
	pl := d.pl
	moves := 0
	rows := d.rowCells()
	w := d.opt.Window
	for _, cells := range rows {
		for start := 0; start+w <= len(cells); start++ {
			win := cells[start : start+w]
			ok := true
			for _, c := range win {
				if d.locked(c) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// The permuted cells pack from the window's left edge; the span
			// is bounded on the right by the next cell (or row end), which
			// the pack can never exceed since widths are preserved.
			nets := d.netsOf(win)
			before := d.wlOf(nets)
			origX := make([]float64, w)
			for i, c := range win {
				origX[i] = pl.X[c]
			}
			left := origX[0]

			best := before
			bestPerm := -1
			perms := permutations(w)
			for pi, perm := range perms {
				x := left
				for _, k := range perm {
					pl.X[win[k]] = x
					x += d.nl.Cell(win[k]).W
				}
				if wl := d.wlOf(nets); wl < best-1e-9 {
					best = wl
					bestPerm = pi
				}
			}
			if bestPerm < 0 {
				// Restore the original (possibly gapped) layout.
				for i, c := range win {
					pl.X[c] = origX[i]
				}
				continue
			}
			x := left
			for _, k := range perms[bestPerm] {
				pl.X[win[k]] = x
				x += d.nl.Cell(win[k]).W
			}
			// Keep the row order array consistent with positions.
			sort.Slice(win, func(a, b int) bool { return pl.X[win[a]] < pl.X[win[b]] })
			moves++
		}
	}
	return moves
}

// vSwapPass exchanges same-width cells between nearby rows when it helps.
func (d *improver) vSwapPass() int {
	nl, pl := d.nl, d.pl
	moves := 0
	rows := d.rowCells()
	for r := 0; r+1 < len(rows); r++ {
		upper := rows[r+1]
		for _, c := range rows[r] {
			if d.locked(c) {
				continue
			}
			cw := nl.Cell(c).W
			// Nearest same-width unlocked partner in the row above.
			idx := sort.Search(len(upper), func(i int) bool { return pl.X[upper[i]] >= pl.X[c] })
			for _, j := range []int{idx - 1, idx, idx + 1} {
				if j < 0 || j >= len(upper) {
					continue
				}
				p := upper[j]
				//placelint:ignore floateq cell widths are stored netlist values, never computed; the swap needs identical widths
				if d.locked(p) || nl.Cell(p).W != cw {
					continue
				}
				if math.Abs(pl.X[p]-pl.X[c]) > 8*cw {
					continue
				}
				nets := d.netsOf([]netlist.CellID{c, p})
				before := d.wlOf(nets)
				pl.X[c], pl.X[p] = pl.X[p], pl.X[c]
				pl.Y[c], pl.Y[p] = pl.Y[p], pl.Y[c]
				if d.wlOf(nets) < before-1e-9 {
					moves++
					break
				}
				// Revert.
				pl.X[c], pl.X[p] = pl.X[p], pl.X[c]
				pl.Y[c], pl.Y[p] = pl.Y[p], pl.Y[c]
			}
		}
	}
	return moves
}

// permutations returns all permutations of 0..n-1 (n ≤ 4).
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	var rec func(cur []int, used []bool)
	rec = func(cur []int, used []bool) {
		if len(cur) == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				used[i] = true
				rec(append(cur, i), used)
				used[i] = false
			}
		}
	}
	rec(nil, make([]bool, n))
	return out
}
