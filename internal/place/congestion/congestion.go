// Package congestion implements the routability feedback loop of global
// placement: periodic RUDY snapshots of the evolving placement, a monotone
// capped cell-inflation schedule for cells sitting in over-demand bins, and
// optional per-bin density-target modulation. The controller only *decides*
// (which cells inflate, by how much, when to stop); applying the decision is
// the engine's job — it feeds Scale/TargetScale to density.Potential and
// invalidates its own caches (DESIGN.md §15).
//
// Everything here is deterministic: snapshot cadence depends only on the
// outer-iteration index, the RUDY estimator is bit-identical at every worker
// count, and the inflation sweep visits cells in ascending index order with
// no data-dependent float comparisons beyond the shared snapshot.
package congestion

import (
	"context"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/route"
)

// Options configures the feedback loop. The zero value with Enable=false is
// inert; New applies the documented defaults to zero fields.
type Options struct {
	// Enable turns the loop on. All other fields are ignored when false.
	Enable bool
	// Interval is the outer-iteration cadence: a snapshot fires every
	// Interval-th outer iteration (default 2 — the maturity gate below
	// already delays the first snapshot until late in the λ schedule, so
	// the cadence within the remaining iterations is tight).
	Interval int
	// MaxInflate caps the per-cell area multiplier (default 2.0). The
	// schedule is monotone non-decreasing and never exceeds this cap.
	MaxInflate float64
	// InflateStep scales the per-snapshot multiplicative growth: a cell in
	// a bin at twice the hot threshold grows by the full (1+InflateStep)
	// factor, shallower excesses grow proportionally less (default 0.15 —
	// tuned with HotQuantile on the seed-7 bench for roughly −19% routed
	// overflow at under 1% HPWL cost).
	InflateStep float64
	// HotQuantile selects hot bins relatively: a bin is hot when its demand
	// exceeds this quantile of the snapshot's per-bin demand distribution
	// (default 0.92 — the worst 8% of bins, the same tail the ACE metrics
	// watch). Relative selection is what makes the loop portable: absolute
	// RUDY demand scales with the capacity calibration, but the hot tail is
	// hot under any calibration.
	HotQuantile float64
	// HotThreshold is an absolute floor under the quantile: bins below this
	// normalized demand are never hot even when the design is so uncongested
	// that the quantile lands there (default 1.0 — demand exceeds capacity).
	HotThreshold float64
	// MaxDensOverflow gates the cadence on placement maturity: snapshots
	// fire only once the committed placement's exact density overflow has
	// dropped below this (default 0.35). Early in the λ schedule cells are
	// still clustered, RUDY flags most of the core hot, and inflating on
	// that signal is indistinguishable from uniform area scaling — all HPWL
	// cost, no routability gain.
	MaxDensOverflow float64
	// CoolDown freezes the schedule after this many consecutive snapshots
	// without RUDY-overflow improvement (default 2), so inflation that has
	// stopped helping cannot balloon cell area without bound.
	CoolDown int
	// TargetScaleMin, when < 1, also lowers the density target of hot bins
	// (multiplicatively, floored here). Default 1: target modulation off.
	TargetScaleMin float64
	// SnapshotOnEntry fires an extra snapshot at outer iteration 0; the
	// multilevel driver sets it on the finest level so inflation responds
	// to the warm-started placement inherited from the coarser level.
	SnapshotOnEntry bool
	// WireWidth and Capacity configure the RUDY estimate (route.RUDYOptions;
	// Capacity defaults to 0.15, matching the evaluation calibration).
	WireWidth float64
	Capacity  float64
}

// withDefaults returns o with zero fields replaced by the documented defaults.
func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 2
	}
	if o.HotQuantile <= 0 || o.HotQuantile >= 1 {
		o.HotQuantile = 0.92
	}
	if o.MaxInflate <= 1 {
		o.MaxInflate = 2.0
	}
	if o.InflateStep <= 0 {
		o.InflateStep = 0.15
	}
	if o.HotThreshold <= 0 {
		o.HotThreshold = 1.0
	}
	if o.MaxDensOverflow <= 0 {
		o.MaxDensOverflow = 0.35
	}
	if o.CoolDown <= 0 {
		o.CoolDown = 2
	}
	if o.TargetScaleMin <= 0 || o.TargetScaleMin > 1 {
		o.TargetScaleMin = 1
	}
	if o.Capacity <= 0 {
		o.Capacity = 0.15
	}
	return o
}

// Stats summarizes a controller's activity for run reports and metrics.
type Stats struct {
	// Snapshots is the number of RUDY snapshots taken.
	Snapshots int
	// Applied counts snapshots that changed the inflation state.
	Applied int
	// InflatedCells is the number of cells currently above scale 1.
	InflatedCells int
	// MaxInflation is the largest per-cell scale reached.
	MaxInflation float64
	// FrozenAtSnapshot is the 1-based snapshot index at which the cool-down
	// froze the schedule; 0 when it never froze.
	FrozenAtSnapshot int
	// Overflow is the RUDY-overflow trajectory, one entry per snapshot.
	Overflow []float64
}

// Report converts the stats to the run-report congestion block
// (obs.CongestionReport mirrors Stats field-for-field; the conversion lives
// here so dpplace and the daemon's artifact writer share one code path).
func (s Stats) Report() *obs.CongestionReport {
	return &obs.CongestionReport{
		Snapshots:        s.Snapshots,
		Applied:          s.Applied,
		InflatedCells:    s.InflatedCells,
		MaxInflation:     s.MaxInflation,
		FrozenAtSnapshot: s.FrozenAtSnapshot,
		Overflow:         s.Overflow,
	}
}

// Controller owns the feedback state between snapshots. Not safe for
// concurrent use; the engine calls it from its outer loop only.
type Controller struct {
	nl   *netlist.Netlist
	grid geom.Grid
	opt  Options
	est  *route.Estimator

	scale  []float64 // per-cell area multiplier, monotone in [1, MaxInflate]
	tscale []float64 // per-bin target multiplier, only when TargetScaleMin < 1
	sorted []float64 // scratch for the per-snapshot demand quantile

	stats        Stats
	frozen       bool
	bestOverflow float64
	sinceImprove int
}

// New builds a controller for nl over the engine's density grid. Returns nil
// when opt.Enable is false, so engines can hold a nil controller and skip the
// loop with one check.
func New(nl *netlist.Netlist, grid geom.Grid, opt Options) *Controller {
	if !opt.Enable {
		return nil
	}
	opt = opt.withDefaults()
	c := &Controller{
		nl:   nl,
		grid: grid,
		opt:  opt,
		est: route.NewEstimator(nl, grid, route.RUDYOptions{
			WireWidth: opt.WireWidth,
			Capacity:  opt.Capacity,
		}),
		scale:        make([]float64, len(nl.Cells)),
		bestOverflow: math.Inf(1),
	}
	for i := range c.scale {
		c.scale[i] = 1
	}
	if opt.TargetScaleMin < 1 {
		c.tscale = make([]float64, grid.Bins())
		for i := range c.tscale {
			c.tscale[i] = 1
		}
	}
	return c
}

// Due reports whether a snapshot should fire at the given outer iteration,
// where densOv is the committed placement's exact density overflow. The
// decision depends only on the iteration index, that overflow, and the
// controller's own history — never on wall clock — so every worker count
// sees the same schedule.
func (c *Controller) Due(outer int, densOv float64) bool {
	if c == nil || c.frozen || densOv > c.opt.MaxDensOverflow {
		return false
	}
	if outer == 0 {
		return c.opt.SnapshotOnEntry
	}
	return outer%c.opt.Interval == 0
}

// Snapshot takes a RUDY snapshot of pl and advances the inflation schedule.
// It reports whether the inflation or target-scale state changed (the caller
// must then re-feed Scale/TargetScale to its density model and invalidate
// value/gradient caches). A context expiry mid-snapshot leaves the schedule
// unchanged and returns false.
func (c *Controller) Snapshot(ctx context.Context, pool *par.Pool, pl *netlist.Placement) bool {
	cm := c.est.Snapshot(ctx, pool, pl)
	if cm == nil {
		return false
	}
	c.stats.Snapshots++

	ov := 0.0
	for _, d := range cm.Demand {
		if d > 1 {
			ov += d - 1
		}
	}
	c.stats.Overflow = append(c.stats.Overflow, ov)

	// Hot threshold for this snapshot: the demand quantile, floored by the
	// absolute threshold. sort.Float64s on a copy is deterministic.
	if c.sorted == nil {
		c.sorted = make([]float64, len(cm.Demand))
	}
	copy(c.sorted, cm.Demand)
	sort.Float64s(c.sorted)
	qi := int(c.opt.HotQuantile * float64(len(c.sorted)-1))
	thr := c.sorted[qi]
	if thr < c.opt.HotThreshold {
		thr = c.opt.HotThreshold
	}

	// Cool-down: freeze once overflow stops improving. The comparison uses
	// a small relative margin so float jitter near convergence does not
	// count as progress.
	if ov < c.bestOverflow*(1-1e-6) {
		c.bestOverflow = ov
		c.sinceImprove = 0
	} else {
		c.sinceImprove++
		if c.sinceImprove >= c.opt.CoolDown {
			c.frozen = true
			c.stats.FrozenAtSnapshot = c.stats.Snapshots
			return false
		}
	}
	if ov == 0 {
		return false
	}

	changed := false
	// Inflate movable cells sitting in hot bins, ascending cell order.
	for ci := range c.nl.Cells {
		if c.nl.Cells[ci].Fixed {
			continue
		}
		bi, bj := c.grid.Loc(pl.CellCenter(c.nl, netlist.CellID(ci)))
		d := cm.Demand[c.grid.Index(bi, bj)]
		if d <= thr {
			continue
		}
		sev := (d - thr) / thr
		if sev > 1 {
			sev = 1
		}
		ns := c.scale[ci] * (1 + c.opt.InflateStep*sev)
		if ns > c.opt.MaxInflate {
			ns = c.opt.MaxInflate
		}
		if ns > c.scale[ci] {
			c.scale[ci] = ns
			changed = true
		}
	}
	// Optional per-bin target modulation, ascending bin order.
	if c.tscale != nil {
		step := c.opt.InflateStep / 2
		for b, d := range cm.Demand {
			if d <= thr {
				continue
			}
			sev := (d - thr) / thr
			if sev > 1 {
				sev = 1
			}
			nt := c.tscale[b] * (1 - step*sev)
			if nt < c.opt.TargetScaleMin {
				nt = c.opt.TargetScaleMin
			}
			if nt < c.tscale[b] {
				c.tscale[b] = nt
				changed = true
			}
		}
	}

	if changed {
		c.stats.Applied++
		c.stats.InflatedCells = 0
		c.stats.MaxInflation = 1
		for _, s := range c.scale {
			if s > 1 {
				c.stats.InflatedCells++
			}
			if s > c.stats.MaxInflation {
				c.stats.MaxInflation = s
			}
		}
	}
	return changed
}

// Scale returns the per-cell area multipliers (indexed by CellID). The slice
// is live controller state: it reflects later snapshots without re-fetching,
// which is exactly what the density model wants, but callers must not mutate
// it.
func (c *Controller) Scale() []float64 { return c.scale }

// TargetScale returns the per-bin density-target multipliers, or nil when
// target modulation is off (TargetScaleMin == 1). Same ownership rules as
// Scale.
func (c *Controller) TargetScale() []float64 { return c.tscale }

// Stats returns a copy of the controller's activity summary. The Overflow
// trajectory is copied too, so the caller may retain the result.
func (c *Controller) Stats() Stats {
	st := c.stats
	st.Overflow = append([]float64(nil), c.stats.Overflow...)
	return st
}
