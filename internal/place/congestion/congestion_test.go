package congestion

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
)

// congProblem builds a netlist of 2-pin nets with every cell pinched into the
// lower-left quadrant of the grid, so a RUDY snapshot sees a genuinely hot
// tail (demand well above the quantile threshold) next to empty bins.
func congProblem(seed int64, nCells, nNets int) (*netlist.Netlist, *netlist.Placement, geom.Grid) {
	rng := rand.New(rand.NewSource(seed))
	nl := netlist.New(fmt.Sprintf("cong%d", seed))
	for i := 0; i < nCells; i++ {
		fixed := i%19 == 0
		nl.MustAddCell(fmt.Sprintf("c%d", i), "std", 4, 8, fixed)
	}
	for i := 0; i < nNets; i++ {
		a := rng.Intn(nCells)
		b := rng.Intn(nCells)
		if a == b {
			b = (b + 1) % nCells
		}
		nl.MustAddNet(fmt.Sprintf("n%d", i), 1,
			netlist.Endpoint{Cell: netlist.CellID(a), Pin: fmt.Sprintf("pa%d", i)},
			netlist.Endpoint{Cell: netlist.CellID(b), Pin: fmt.Sprintf("pb%d", i)})
	}
	pl := netlist.NewPlacement(nl)
	for i := range nl.Cells {
		pl.X[i] = rng.Float64() * 60
		pl.Y[i] = rng.Float64() * 60
	}
	return nl, pl, geom.NewGrid(geom.NewRect(0, 0, 200, 200), 16, 16)
}

func TestNewDisabledReturnsNil(t *testing.T) {
	nl, _, grid := congProblem(1, 40, 50)
	if New(nl, grid, Options{}) != nil {
		t.Fatal("New with Enable=false returned a controller")
	}
	var c *Controller
	if c.Due(4, 0) {
		t.Fatal("nil controller reported Due")
	}
}

func TestDueSchedule(t *testing.T) {
	nl, _, grid := congProblem(2, 40, 50)
	c := New(nl, grid, Options{Enable: true}) // defaults: Interval 2, MaxDensOverflow 0.35
	if c.Due(0, 0.1) {
		t.Error("outer 0 fired without SnapshotOnEntry")
	}
	if !c.Due(2, 0.1) {
		t.Error("interval boundary did not fire")
	}
	if c.Due(3, 0.1) {
		t.Error("off-interval iteration fired")
	}
	if c.Due(2, 0.5) {
		t.Error("immature placement (density overflow above the gate) fired")
	}
	entry := New(nl, grid, Options{Enable: true, SnapshotOnEntry: true})
	if !entry.Due(0, 0.1) {
		t.Error("SnapshotOnEntry did not fire at outer 0")
	}
}

// TestInflationMonotoneCapped is the schedule's core property: across
// snapshots of an evolving placement every per-cell scale is non-decreasing,
// never exceeds MaxInflate, and fixed cells stay exactly 1.
func TestInflationMonotoneCapped(t *testing.T) {
	nl, pl, grid := congProblem(3, 300, 500)
	const maxInf = 1.3
	c := New(nl, grid, Options{Enable: true, MaxInflate: maxInf, CoolDown: 100})
	pool := par.New(2)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	prev := append([]float64(nil), c.Scale()...)
	for s := 0; s < 6; s++ {
		c.Snapshot(ctx, pool, pl)
		cur := c.Scale()
		for i := range cur {
			if cur[i] < prev[i] {
				t.Fatalf("snapshot %d: cell %d scale shrank %v -> %v", s, i, prev[i], cur[i])
			}
			if cur[i] > maxInf {
				t.Fatalf("snapshot %d: cell %d scale %v exceeds cap %v", s, i, cur[i], maxInf)
			}
			if nl.Cells[i].Fixed && cur[i] != 1 {
				t.Fatalf("snapshot %d: fixed cell %d inflated to %v", s, i, cur[i])
			}
		}
		copy(prev, cur)
		for i := range nl.Cells {
			pl.X[i] += (rng.Float64() - 0.5) * 4
			pl.Y[i] += (rng.Float64() - 0.5) * 4
		}
	}
	st := c.Stats()
	if st.Snapshots != 6 {
		t.Fatalf("Snapshots = %d, want 6", st.Snapshots)
	}
	if st.InflatedCells == 0 {
		t.Fatal("pinched placement inflated no cells")
	}
	if st.MaxInflation > maxInf {
		t.Fatalf("MaxInflation %v exceeds cap %v", st.MaxInflation, maxInf)
	}
	if len(st.Overflow) != 6 {
		t.Fatalf("Overflow trajectory has %d entries, want 6", len(st.Overflow))
	}
}

// TestSnapshotDeterministicAcrossWorkers requires bit-identical inflation
// state and stats regardless of the worker count driving the RUDY snapshot.
func TestSnapshotDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Controller {
		nl, pl, grid := congProblem(4, 260, 420)
		c := New(nl, grid, Options{Enable: true, CoolDown: 100})
		pool := par.New(workers)
		rng := rand.New(rand.NewSource(5))
		for s := 0; s < 4; s++ {
			c.Snapshot(context.Background(), pool, pl)
			for i := range nl.Cells {
				pl.X[i] += (rng.Float64() - 0.5) * 6
				pl.Y[i] += (rng.Float64() - 0.5) * 6
			}
		}
		return c
	}
	ref := run(1)
	refSt := ref.Stats()
	for _, workers := range []int{2, 4} {
		got := run(workers)
		for i, s := range got.Scale() {
			if s != ref.Scale()[i] {
				t.Fatalf("workers=%d: cell %d scale %v != serial %v", workers, i, s, ref.Scale()[i])
			}
		}
		st := got.Stats()
		if st.Snapshots != refSt.Snapshots || st.Applied != refSt.Applied ||
			st.InflatedCells != refSt.InflatedCells || st.MaxInflation != refSt.MaxInflation {
			t.Fatalf("workers=%d: stats %+v != serial %+v", workers, st, refSt)
		}
		for i := range st.Overflow {
			if st.Overflow[i] != refSt.Overflow[i] {
				t.Fatalf("workers=%d: overflow[%d] %v != serial %v",
					workers, i, st.Overflow[i], refSt.Overflow[i])
			}
		}
	}
}

// TestCoolDownFreezes pins the stop condition: a placement that never
// improves its RUDY overflow freezes the schedule after CoolDown stagnant
// snapshots, and a frozen controller is never Due again.
func TestCoolDownFreezes(t *testing.T) {
	nl, pl, grid := congProblem(5, 200, 400)
	c := New(nl, grid, Options{Enable: true, CoolDown: 2})
	pool := par.New(1)
	ctx := context.Background()
	c.Snapshot(ctx, pool, pl) // establishes bestOverflow
	c.Snapshot(ctx, pool, pl) // stagnant once
	if changed := c.Snapshot(ctx, pool, pl); changed {
		t.Error("freezing snapshot still applied inflation")
	}
	st := c.Stats()
	if st.FrozenAtSnapshot != 3 {
		t.Fatalf("FrozenAtSnapshot = %d, want 3", st.FrozenAtSnapshot)
	}
	if c.Due(4, 0) {
		t.Error("frozen controller reported Due")
	}
}

// TestTargetScaleModulation checks the optional per-bin target lowering:
// bounded below by TargetScaleMin, never above 1, and actually engaged on a
// congested placement.
func TestTargetScaleModulation(t *testing.T) {
	nl, pl, grid := congProblem(6, 200, 400)
	const floor = 0.8
	c := New(nl, grid, Options{Enable: true, TargetScaleMin: floor, CoolDown: 100})
	ts := c.TargetScale()
	if ts == nil {
		t.Fatal("TargetScaleMin < 1 left target modulation off")
	}
	c.Snapshot(context.Background(), par.New(2), pl)
	lowered := 0
	for b, v := range ts {
		if v < floor || v > 1 {
			t.Fatalf("bin %d target scale %v outside [%v, 1]", b, v, floor)
		}
		if v < 1 {
			lowered++
		}
	}
	if lowered == 0 {
		t.Fatal("congested placement lowered no bin targets")
	}
}

// TestSnapshotCancelledContext checks an expired context leaves the schedule
// untouched.
func TestSnapshotCancelledContext(t *testing.T) {
	nl, pl, grid := congProblem(7, 100, 150)
	c := New(nl, grid, Options{Enable: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if c.Snapshot(ctx, par.New(2), pl) {
		t.Error("cancelled snapshot reported a change")
	}
	if st := c.Stats(); st.Applied != 0 || st.InflatedCells != 0 {
		t.Fatalf("cancelled snapshot mutated stats: %+v", st)
	}
	for i, s := range c.Scale() {
		if s != 1 {
			t.Fatalf("cancelled snapshot inflated cell %d to %v", i, s)
		}
	}
}
