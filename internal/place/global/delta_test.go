package global

import (
	"math/rand"
	"testing"
)

// TestDeltaMatchesFullRecomputation is the property test behind incremental
// evaluation: over randomized move/probe sequences — partial-variable
// perturbations, repeated probes at an unchanged point, value-only probes,
// gradient evaluations and occasional γ changes — the incremental engine must
// return the bit-identical objective and gradient a fresh engine computes
// from scratch at the same point, at every worker count. Runs under -race via
// `make race` to also exercise the dirty-flag publication across the pool.
func TestDeltaMatchesFullRecomputation(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		nl, pl, core := randProblem(21, 140, 190)
		e := testEngine(nl, pl, core, Options{Workers: workers})
		e.lambda = 0.6
		v := make([]float64, e.nVars)
		e.initVars(v)
		gamma := 4.0

		// reference evaluates v from scratch on a fresh engine each time.
		reference := func(grad []float64) float64 {
			f := testEngine(nl, pl, core, Options{Workers: workers})
			f.setGamma(gamma)
			f.lambda = 0.6
			f.noReuse = true
			return f.eval(v, grad)
		}

		rng := rand.New(rand.NewSource(int64(workers)))
		gRef := make([]float64, e.nVars)
		gInc := make([]float64, e.nVars)
		for step := 0; step < 40; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // perturb a small random subset of variables
				for k := 0; k < 1+rng.Intn(8); k++ {
					v[rng.Intn(e.nVars)] += (rng.Float64() - 0.5) * 3
				}
			case op < 7: // perturb a single variable (line-search-like move)
				v[rng.Intn(e.nVars)] += (rng.Float64() - 0.5) * 0.25
			case op < 8: // γ anneal: dirties every net
				gamma *= 0.9
				e.setGamma(gamma)
			default: // no move: probe the same point again
			}

			if rng.Intn(3) == 0 { // value-only probe
				fInc := e.eval(v, nil)
				fRef := reference(nil)
				if fInc != fRef {
					t.Fatalf("workers=%d step %d: value-only delta %v != full %v",
						workers, step, fInc, fRef)
				}
				continue
			}
			fInc := e.eval(v, gInc)
			fRef := reference(gRef)
			if fInc != fRef {
				t.Fatalf("workers=%d step %d: delta objective %v != full %v",
					workers, step, fInc, fRef)
			}
			for i := range gInc {
				if gInc[i] != gRef[i] {
					t.Fatalf("workers=%d step %d: delta grad[%d] %v != full %v",
						workers, step, i, gInc[i], gRef[i])
				}
			}
		}
		if e.netReuses.Load() == 0 {
			t.Fatalf("workers=%d: sequence exercised no incremental reuse", workers)
		}
		if e.deltaEvals == 0 {
			t.Fatalf("workers=%d: no evaluation was classified as a delta eval", workers)
		}
		if e.fullEvals == 0 {
			t.Fatalf("workers=%d: no evaluation was classified as a full recompute", workers)
		}
	}
}

// TestDirtyNetRatio pins the report-facing ratio arithmetic, including the
// zero-evaluation case a skipped global stage produces.
func TestDirtyNetRatio(t *testing.T) {
	if r := (Result{}).DirtyNetRatio(); r != 0 {
		t.Fatalf("empty result ratio = %v, want 0", r)
	}
	res := Result{NetRecomputes: 3, NetReuses: 1}
	if r := res.DirtyNetRatio(); r != 0.75 {
		t.Fatalf("ratio = %v, want 0.75", r)
	}
}
