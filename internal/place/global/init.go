package global

import (
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/sparse"
)

// InitQuadratic computes the wirelength-driven initial placement: the
// minimizer of a clique-model quadratic wirelength with fixed pins as
// anchors, solved per axis by Jacobi-preconditioned conjugate gradients. A
// weak anchor to the core center regularizes cells with no fixed path.
// Results are written into pl (movable cells only, clamped into the core).
func InitQuadratic(nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core) {
	// Movable-cell index map.
	movIdx := make([]int, nl.NumCells())
	var movables []netlist.CellID
	for i := range nl.Cells {
		if nl.Cells[i].Fixed {
			movIdx[i] = -1
			continue
		}
		movIdx[i] = len(movables)
		movables = append(movables, netlist.CellID(i))
	}
	n := len(movables)
	if n == 0 {
		return
	}

	const (
		cliqueCap  = 10   // largest net modeled as a clique
		centerPull = 1e-4 // regularization spring to the core center
	)
	center := core.Region.Center()

	// Assemble both axes in one pass (the matrix is shared; only the rhs
	// differs through fixed-pin positions and pin offsets).
	bld := sparse.NewBuilder(n)
	bx := make([]float64, n)
	by := make([]float64, n)

	addSpring := func(pa, pb netlist.PinID, w float64) {
		a := nl.Pin(pa)
		b := nl.Pin(pb)
		// Spring between pin positions: pin = cell + offset (or fixed pos).
		aMov := a.Cell != netlist.NoCell && movIdx[a.Cell] >= 0
		bMov := b.Cell != netlist.NoCell && movIdx[b.Cell] >= 0
		ax, ay := pinAnchor(nl, pl, pa)
		bxp, byp := pinAnchor(nl, pl, pb)
		switch {
		case aMov && bMov:
			i, j := movIdx[a.Cell], movIdx[b.Cell]
			bld.AddSym(i, j, w)
			// Offsets shift the equilibrium: w(xi+da − xj−db)² contributes
			// w(da−db) terms to the rhs.
			d := a.DX - b.DX
			bx[i] -= w * d
			bx[j] += w * d
			dy := a.DY - b.DY
			by[i] -= w * dy
			by[j] += w * dy
		case aMov:
			i := movIdx[a.Cell]
			bld.AddDiag(i, w)
			bx[i] += w * (bxp - a.DX)
			by[i] += w * (byp - a.DY)
		case bMov:
			j := movIdx[b.Cell]
			bld.AddDiag(j, w)
			bx[j] += w * (ax - b.DX)
			by[j] += w * (ay - b.DY)
		}
	}

	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		p := net.Degree()
		if p < 2 {
			continue
		}
		if p <= cliqueCap {
			w := net.Weight / float64(p-1)
			for i := 0; i < p; i++ {
				for j := i + 1; j < p; j++ {
					addSpring(net.Pins[i], net.Pins[j], w)
				}
			}
		} else {
			// Large nets: star to the driver (or first pin) avoids the
			// quadratic clique blow-up on clocks and resets.
			hub := nl.Driver(netlist.NetID(ni))
			if hub < 0 {
				hub = net.Pins[0]
			}
			w := net.Weight / float64(p-1)
			for _, pid := range net.Pins {
				if pid != hub {
					addSpring(hub, pid, w)
				}
			}
		}
	}
	for i := range movables {
		bld.AddDiag(i, centerPull)
		bx[i] += centerPull * center.X
		by[i] += centerPull * center.Y
	}

	m := bld.Build()
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, c := range movables {
		xs[i] = pl.X[c]
		ys[i] = pl.Y[c]
	}
	// Best-effort: CG may not fully converge on ill-conditioned designs;
	// the iterate is still a usable start for the nonlinear stage.
	_, _ = sparse.SolveCG(m, xs, bx, sparse.CGOptions{MaxIter: 600, Tol: 1e-5})
	_, _ = sparse.SolveCG(m, ys, by, sparse.CGOptions{MaxIter: 600, Tol: 1e-5})

	for i, c := range movables {
		pl.X[c] = xs[i]
		pl.Y[c] = ys[i]
	}
	pl.ClampInto(nl, core.Region)
}

// pinAnchor returns the absolute position of a pin when its cell is fixed
// (or it is a top-level terminal); for movable cells it returns zeros (the
// caller uses offsets instead).
func pinAnchor(nl *netlist.Netlist, pl *netlist.Placement, pid netlist.PinID) (float64, float64) {
	p := nl.Pin(pid)
	if p.Cell == netlist.NoCell {
		return p.DX, p.DY
	}
	if nl.Cell(p.Cell).Fixed {
		return pl.X[p.Cell] + p.DX, pl.Y[p.Cell] + p.DY
	}
	return 0, 0
}
