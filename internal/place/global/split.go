package global

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// SplitWideGroups folds groups that are too wide to place as one bit-aligned
// band into several side-by-side banks, the way a designer folds a long
// datapath. A group whose packed column width exceeds maxFrac of the core
// width is cut into consecutive runs (columns ordered by their current
// wirelength-driven x) each narrow enough to place. Each bank keeps the full
// bit order, so alignment semantics are unchanged; only the shared base-y
// constraint is relaxed between banks.
func SplitWideGroups(nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core, groups []AlignGroup, maxFrac float64) []AlignGroup {
	if maxFrac <= 0 {
		maxFrac = 0.95
	}
	limit := core.Region.W() * maxFrac
	var out []AlignGroup
	for _, g := range groups {
		if len(g.Cols) == 0 {
			out = append(out, g)
			continue
		}
		type colInfo struct {
			cells []netlist.CellID
			meanX float64
			w     float64
		}
		cols := make([]colInfo, 0, len(g.Cols))
		total := 0.0
		for _, col := range g.Cols {
			ci := colInfo{cells: col}
			for _, c := range col {
				ci.meanX += pl.X[c]
				if w := nl.Cell(c).W; w > ci.w {
					ci.w = w
				}
			}
			ci.meanX /= float64(len(col))
			total += ci.w
			cols = append(cols, ci)
		}
		if total <= limit {
			out = append(out, g)
			continue
		}
		sort.SliceStable(cols, func(a, b int) bool { return cols[a].meanX < cols[b].meanX })
		nBanks := int(total/limit) + 1
		perBank := total/float64(nBanks) + 1e-9
		bank := AlignGroup{}
		acc := 0.0
		for _, ci := range cols {
			if acc+ci.w > perBank && len(bank.Cols) > 0 {
				out = append(out, bank)
				bank = AlignGroup{}
				acc = 0
			}
			bank.Cols = append(bank.Cols, ci.cells)
			acc += ci.w
		}
		if len(bank.Cols) > 0 {
			out = append(out, bank)
		}
	}
	return out
}
