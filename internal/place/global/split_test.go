package global

import (
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// chainDesign builds n columns of `bits` DFFs, chained left to right by
// per-bit nets, and returns everything needed for split/chain tests.
func chainDesign(t *testing.T, bits, nCols int) (*netlist.Netlist, *netlist.Placement, *geom.Core, AlignGroup) {
	t.Helper()
	nl := netlist.New("chain")
	cols := make([][]netlist.CellID, nCols)
	for s := 0; s < nCols; s++ {
		cols[s] = make([]netlist.CellID, bits)
		for b := 0; b < bits; b++ {
			cols[s][b] = nl.MustAddCell(fmt.Sprintf("c%d_%d", s, b), "DFF", 6, 10, false)
		}
	}
	for s := 0; s+1 < nCols; s++ {
		for b := 0; b < bits; b++ {
			nl.MustAddNet(fmt.Sprintf("n%d_%d", s, b), 1,
				netlist.Endpoint{Cell: cols[s][b], Pin: "Q", Dir: netlist.DirOutput},
				netlist.Endpoint{Cell: cols[s+1][b], Pin: "D", Dir: netlist.DirInput},
			)
		}
	}
	core := geom.NewCore(geom.NewRect(0, 0, 200, 200), 10, 1)
	pl := netlist.NewPlacement(nl)
	return nl, pl, core, AlignGroup{Cols: cols}
}

func TestSplitWideGroupsKeepsNarrow(t *testing.T) {
	nl, pl, core, g := chainDesign(t, 4, 5) // 5 cols × 6 wide = 30 ≤ 100
	out := SplitWideGroups(nl, pl, core, []AlignGroup{g}, 0.5)
	if len(out) != 1 || len(out[0].Cols) != 5 {
		t.Fatalf("narrow group was split: %d groups", len(out))
	}
}

func TestSplitWideGroupsFoldsWide(t *testing.T) {
	nl, pl, core, g := chainDesign(t, 4, 40) // 40 × 6 = 240 > 100
	// Spread initial x so column order is meaningful.
	for s, col := range g.Cols {
		for _, c := range col {
			pl.X[c] = float64(s) * 5
		}
	}
	out := SplitWideGroups(nl, pl, core, []AlignGroup{g}, 0.5)
	if len(out) < 2 {
		t.Fatalf("wide group not split: %d groups", len(out))
	}
	// Every bank must be narrow enough and keep all bits.
	totalCols := 0
	for _, bank := range out {
		w := 0.0
		for _, col := range bank.Cols {
			w += nl.Cell(col[0]).W
			if len(col) != 4 {
				t.Fatalf("bank column lost bits: %d", len(col))
			}
		}
		if w > 100+1e-9 {
			t.Errorf("bank width %g exceeds limit", w)
		}
		totalCols += len(bank.Cols)
	}
	if totalCols != 40 {
		t.Errorf("columns lost in split: %d", totalCols)
	}
	// Banks follow the x order: first bank holds the leftmost columns.
	first := out[0].Cols[0][0]
	last := out[len(out)-1].Cols[len(out[len(out)-1].Cols)-1][0]
	if !(pl.X[first] < pl.X[last]) {
		t.Error("banks not ordered by position")
	}
}

func TestChainOrderRecoversChain(t *testing.T) {
	nl, _, _, g := chainDesign(t, 4, 8)
	order := chainOrder(nl, g, 16)
	if len(order) != 8 {
		t.Fatalf("order length %d", len(order))
	}
	// The recovered order must be the chain or its reverse.
	forward := true
	for i := range order {
		if order[i] != i {
			forward = false
			break
		}
	}
	backward := true
	for i := range order {
		if order[i] != len(order)-1-i {
			backward = false
			break
		}
	}
	if !forward && !backward {
		t.Errorf("chain not recovered: %v", order)
	}
}

func TestChainOrderHandlesDisconnected(t *testing.T) {
	// Two disjoint chains in one group: order must still include every
	// column exactly once.
	nl := netlist.New("dis")
	var cols [][]netlist.CellID
	for s := 0; s < 6; s++ {
		col := make([]netlist.CellID, 4)
		for b := 0; b < 4; b++ {
			col[b] = nl.MustAddCell(fmt.Sprintf("d%d_%d", s, b), "DFF", 6, 10, false)
		}
		cols = append(cols, col)
	}
	link := func(a, b int) {
		for bit := 0; bit < 4; bit++ {
			nl.MustAddNet(fmt.Sprintf("l%d_%d_%d", a, b, bit), 1,
				netlist.Endpoint{Cell: cols[a][bit], Pin: "Q", Dir: netlist.DirOutput},
				netlist.Endpoint{Cell: cols[b][bit], Pin: "D", Dir: netlist.DirInput},
			)
		}
	}
	link(0, 1)
	link(1, 2)
	link(3, 4)
	link(4, 5)
	order := chainOrder(nl, AlignGroup{Cols: cols}, 16)
	seen := map[int]bool{}
	for _, o := range order {
		if seen[o] {
			t.Fatalf("column %d repeated in order %v", o, order)
		}
		seen[o] = true
	}
	if len(order) != 6 {
		t.Fatalf("order incomplete: %v", order)
	}
}

func TestChainOrderTinyGroups(t *testing.T) {
	nl, _, _, g := chainDesign(t, 4, 2)
	if got := chainOrder(nl, g, 16); len(got) != 2 {
		t.Errorf("2-column order = %v", got)
	}
	g1 := AlignGroup{Cols: g.Cols[:1]}
	if got := chainOrder(nl, g1, 16); len(got) != 1 || got[0] != 0 {
		t.Errorf("1-column order = %v", got)
	}
}
