package global

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/density"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/place/congestion"
	"repro/internal/wirelength"
)

// AlignMode selects how extracted groups constrain the optimization.
type AlignMode int

// Alignment modes.
const (
	// AlignHard substitutes variables: every cell of a column shares one x
	// variable and every group shares one base-y variable (bit offsets are
	// fixed at the row pitch). Alignment is exact by construction and the
	// optimizer spends all of its effort on wirelength and density. This is
	// the default.
	AlignHard AlignMode = iota
	// AlignSoft keeps per-cell variables and adds the quadratic alignment
	// energy with an annealed weight α — the formulation the α-sweep
	// ablation studies.
	AlignSoft
)

// Options controls global placement.
type Options struct {
	// WLModel selects the smooth wirelength model: "wa" (default) or "lse".
	WLModel string
	// TargetDensity is the per-bin utilization target (default 0.9).
	TargetDensity float64
	// GridDim forces the density grid to GridDim×GridDim bins; 0 derives it
	// from the design size.
	GridDim int
	// OverflowTarget stops the outer loop once total overflow drops below
	// it (default 0.10).
	OverflowTarget float64
	// MaxOuterIters bounds the λ-schedule length (default 24).
	MaxOuterIters int
	// InnerIters bounds the conjugate-gradient iterations per λ stage
	// (default 50).
	InnerIters int
	// Groups, when non-empty, turns on structure-aware mode.
	Groups []AlignGroup
	// AlignMode selects hard (default) or soft alignment.
	AlignMode AlignMode
	// AlignWeight scales the soft-alignment term relative to its
	// auto-derived base weight (default 1.0). Ignored in hard mode.
	AlignWeight float64
	// SkipQuadraticInit keeps the caller-provided start instead of running
	// the bound-to-bound solve.
	SkipQuadraticInit bool
	// Refine treats the caller-provided start as nearly converged (a
	// multilevel interpolation or an earlier solve's output): the γ schedule
	// starts 4× more compressed (2× bin size instead of 8×), so the solve
	// spends its budget polishing instead of re-deriving the global
	// structure. The density weight still auto-scales from first-order
	// balance — forcing it higher was tried and blocks wirelength descent on
	// warm starts. Implies nothing about feasibility — the health guards
	// behave exactly as in a cold start.
	Refine bool
	// Workers is the worker count for the parallel hot paths (wirelength,
	// density): 0 means GOMAXPROCS, 1 runs everything inline on the calling
	// goroutine. The placement is bit-identical at every worker count; the
	// setting only trades wall clock for cores.
	Workers int
	// Congestion configures the routability feedback loop: periodic RUDY
	// snapshots inflating cells in over-demand bins (package congestion).
	// The zero value (Enable=false) keeps the loop off and the solve
	// byte-identical to a build without it.
	Congestion congestion.Options
	// Trace, when non-nil, observes every outer iteration.
	Trace func(TracePoint)
}

// TracePoint is one outer-iteration snapshot for convergence figures.
type TracePoint struct {
	Outer     int
	HPWL      float64
	Overflow  float64
	AlignRMS  float64
	Objective float64
	Lambda    float64
	Alpha     float64
}

// Result reports the global placement outcome.
type Result struct {
	HPWL       float64
	Overflow   float64
	AlignRMS   float64
	OuterIters int
	FuncEvals  int
	// Workers is the resolved worker count the parallel engine ran with
	// (Options.Workers after the GOMAXPROCS default is applied).
	Workers int
	// NetRecomputes and NetReuses count per-net, per-evaluation outcomes of
	// the incremental (delta) evaluator: a recompute ran the wirelength
	// kernel because a pin of the net moved (or γ changed); a reuse served
	// the stored per-net value — and, for gradient evaluations, the stored
	// per-pin gradients — because nothing the net depends on changed.
	NetRecomputes int64
	NetReuses     int64
	// FullEvals and DeltaEvals classify whole objective evaluations: full
	// means every net recomputed (cold start, γ change, line-search probes
	// that move all variables), delta means at least one net was reused
	// (gradient evaluation at an accepted iterate, rollback re-evaluation,
	// moves touching a variable subset).
	FullEvals  int64
	DeltaEvals int64
	// Congestion summarizes the routability feedback loop when it was
	// enabled (Options.Congestion): snapshots taken, cells inflated, the
	// RUDY-overflow trajectory. Nil when the loop was off.
	Congestion *congestion.Stats
	// Diagnostics records the resilience events of the run.
	Diagnostics Diagnostics
}

// DirtyNetRatio returns net recomputations over total per-net decisions
// (recomputations + reuses), the headline effectiveness number of the
// incremental evaluator: 1.0 means no reuse ever happened, values near zero
// mean the epoch scheme proved almost every net clean. Returns 0 when no
// evaluation ran.
func (r Result) DirtyNetRatio() float64 {
	total := r.NetRecomputes + r.NetReuses
	if total == 0 {
		return 0
	}
	return float64(r.NetRecomputes) / float64(total)
}

// Diagnostics records the numerical-health and cancellation events of one
// global-placement run. All-zero means the run was clean.
type Diagnostics struct {
	// Recoveries counts inner-solver health events: NaN/Inf rollbacks and
	// pathological line-search resets inside opt.Minimize.
	Recoveries int
	// Rollbacks counts outer-loop restorations of the best iterate after a
	// diverged inner solve.
	Rollbacks int
	// ReAnneals counts γ/λ re-annealing events that accompany a rollback.
	ReAnneals int
	// Partial is set when a deadline stopped the λ-schedule early; the
	// committed placement is the best iterate found so far.
	Partial bool
	// Diverged is set when the health guard gave up (the run returned an
	// error wrapping pipeline.ErrDiverged).
	Diverged bool
}

func (o *Options) fillDefaults() {
	if o.WLModel == "" {
		o.WLModel = "wa"
	}
	if o.TargetDensity <= 0 {
		o.TargetDensity = 0.9
	}
	if o.OverflowTarget <= 0 {
		o.OverflowTarget = 0.10
	}
	if o.MaxOuterIters <= 0 {
		o.MaxOuterIters = 24
	}
	if o.InnerIters <= 0 {
		o.InnerIters = 50
	}
	if o.AlignWeight == 0 {
		o.AlignWeight = 1
	}
}

// Place runs analytical global placement, updating pl in place (movable
// cells only). The returned placement is spread but not legalized; in hard
// alignment mode the extracted groups come out exactly bit-aligned.
func Place(nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core, o Options) (Result, error) {
	return PlaceCtx(context.Background(), nl, pl, core, o)
}

// PlaceCtx is Place with cooperative cancellation. The context is polled in
// the outer λ-schedule loop and inside every conjugate-gradient iteration;
// on expiry the best iterate found so far is committed to pl, the returned
// Result has Diagnostics.Partial set, and the error wraps
// pipeline.ErrTimeout. When the numerical-health guard gives up after
// repeated divergence the best iterate is likewise committed and the error
// wraps pipeline.ErrDiverged.
func PlaceCtx(ctx context.Context, nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core, o Options) (Result, error) {
	o.fillDefaults()
	switch o.WLModel {
	case "wa", "lse":
	default:
		return Result{}, fmt.Errorf("global: unknown wirelength model %q", o.WLModel)
	}

	if !o.SkipQuadraticInit {
		InitQuadratic(nl, pl, core)
	}

	e := newEngine(nl, pl, core, o)
	if e.nVars == 0 {
		return Result{HPWL: pl.HPWL(nl)}, nil
	}
	return e.run(ctx)
}

// engine carries the optimization state. The variable vector v packs the x
// variables first, then the y variables. In hard alignment mode several
// cells map to one variable (column x, group base y).
type engine struct {
	nl   *netlist.Netlist
	pl   *netlist.Placement
	core *geom.Core
	o    Options
	lse  bool // o.WLModel == "lse"; WA otherwise
	grid geom.Grid
	pot  *density.Potential

	// Per-cell variable mapping: index into the x/y variable arrays, or -1
	// for fixed cells. yOff is added to the y variable's value.
	xVar, yVar []int
	yOff       []float64
	nx, ny     int
	nVars      int

	// Per-x-variable clamp bounds (account for cell width / group height).
	xLo, xHi []float64
	yLo, yHi []float64

	// Hard-mode group bookkeeping: per group, the x-var of each column and
	// each column's width (for chain-ordered initialization).
	groupColVars [][]int
	groupColW    [][]float64

	// Full per-cell scratch arrays.
	xFull, yFull   []float64
	cxFull, cyFull []float64
	gxFull, gyFull []float64

	// Parallel execution: the worker pool and the run context it polls. The
	// SoA wirelength kernels are pure functions writing caller-owned CSR
	// slots, so no per-worker model clones exist anymore.
	pool *par.Pool
	ctx  context.Context

	// Flat SoA netlist view in CSR-by-net layout, built once per engine:
	// netOff[ni] is the first pin slot of net ni; pinCell, pinDX, pinDY are
	// the per-pin cell index (-1 for pad pins) and offsets; netWeight the
	// per-net weight. Iterating these flat arrays replaces the pointer-chasing
	// walk over nl.Nets[ni].Pins in the hot loops.
	netOff    []int32
	pinCell   []int32
	pinDX     []float64
	pinDY     []float64
	netWeight []float64

	// Wirelength kernel state, CSR-parallel to the pin layout: gathered pin
	// coordinates, the per-pin exponential scratch of the last value
	// evaluation, per-net axis states and values, and per-pin gradients.
	// Ownership: inside evalWL's parallel pass a worker touches only the
	// slots of the nets in its chunk; the serial reduction then reads
	// everything in net order.
	curX, curY            []float64
	expPX, expNX          []float64
	expPY, expNY          []float64
	stX, stY              []wirelength.AxisState
	netVal                []float64
	pinGX, pinGY          []float64
	netValClean           []bool // netVal/curX/curY/exp*/st* hold results at current coords+γ
	netGradClean          []bool // pinGX/pinGY hold gradients at current coords+γ
	gamma                 float64
	netRecomps, netReuses atomic.Int64
	fullEvals, deltaEvals int64
	noReuse               bool // tests/benchmarks disable delta reuse to measure it

	// Incremental-evaluation state: vPrev is the variable vector the full
	// coordinate arrays currently reflect; refresh diffs a new vector against
	// it and marks exactly the incident nets dirty through the var→nets CSR
	// (varNetOff/varNets, deduplicated) and updates the cells of varCellOff/
	// varCells. wlAllDirty is the γ-epoch hammer: SetGamma invalidates every
	// net at once without walking the incidence lists.
	vPrev       []float64
	havePrev    bool
	wlAllDirty  bool
	varNetOff   []int32
	varNets     []int32
	varCellOff  []int32
	varCells    []int32
	changedVars []int32 // refresh scratch: indices of moved variables

	// Density term cache: dgx/dgy hold the (unweighted) density gradients of
	// the last density gradient pass; densVal the objective. densClean means
	// densVal is the potential's value at the current coordinates (and the
	// potential's internal tables/residuals match them); densGradClean means
	// dgx/dgy match too. λ is applied at fold time, so λ changes between
	// outer stages never invalidate the cache.
	dgx, dgy                 []float64
	densVal                  float64
	densClean, densGradClean bool

	// Congestion feedback controller; nil when Options.Congestion is off.
	cong *congestion.Controller

	// Term-gradient scratch (soft alignment).
	sgx, sgy []float64

	hard          bool
	lambda, alpha float64
	funcEvals     int
}

func newEngine(nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core, o Options) *engine {
	e := &engine{nl: nl, pl: pl, core: core, o: o, lse: o.WLModel == "lse"}
	e.hard = o.AlignMode == AlignHard && len(o.Groups) > 0

	nc := nl.NumCells()
	e.xVar = make([]int, nc)
	e.yVar = make([]int, nc)
	e.yOff = make([]float64, nc)
	for i := range e.xVar {
		e.xVar[i] = -1
		e.yVar[i] = -1
	}

	pitch := core.RowH()
	if e.hard {
		for _, g := range o.Groups {
			if len(g.Cols) == 0 || len(g.Cols[0]) == 0 {
				continue
			}
			bits := len(g.Cols[0])
			gy := e.ny
			e.ny++
			e.yLo = append(e.yLo, core.Region.Lo.Y)
			groupH := float64(bits-1)*pitch + rowHOf(nl, g)
			e.yHi = append(e.yHi, core.Region.Hi.Y-groupH)
			var colVars []int
			var colWs []float64
			for _, col := range g.Cols {
				gx := e.nx
				e.nx++
				maxW := 0.0
				for b, c := range col {
					if nl.Cell(c).Fixed {
						continue
					}
					e.xVar[c] = gx
					e.yVar[c] = gy
					e.yOff[c] = float64(b) * pitch
					if w := nl.Cell(c).W; w > maxW {
						maxW = w
					}
				}
				e.xLo = append(e.xLo, core.Region.Lo.X)
				e.xHi = append(e.xHi, core.Region.Hi.X-maxW)
				colVars = append(colVars, gx)
				colWs = append(colWs, maxW)
			}
			e.groupColVars = append(e.groupColVars, colVars)
			e.groupColW = append(e.groupColW, colWs)
		}
	}
	for i := range nl.Cells {
		if nl.Cells[i].Fixed || e.xVar[i] >= 0 {
			continue
		}
		e.xVar[i] = e.nx
		e.nx++
		e.xLo = append(e.xLo, core.Region.Lo.X)
		e.xHi = append(e.xHi, core.Region.Hi.X-nl.Cells[i].W)
		e.yVar[i] = e.ny
		e.ny++
		e.yLo = append(e.yLo, core.Region.Lo.Y)
		e.yHi = append(e.yHi, core.Region.Hi.Y-nl.Cells[i].H)
	}
	e.nVars = e.nx + e.ny

	dim := o.GridDim
	if dim <= 0 {
		dim = int(math.Sqrt(float64(nl.NumMovable())/3)) + 8
		if dim < 16 {
			dim = 16
		}
		if dim > 128 {
			dim = 128
		}
	}
	e.grid = geom.NewGrid(core.Region, dim, dim)
	e.pot = density.NewPotential(nl, pl, e.grid, o.TargetDensity)
	e.cong = congestion.New(nl, e.grid, o.Congestion)

	e.xFull = make([]float64, nc)
	e.yFull = make([]float64, nc)
	e.cxFull = make([]float64, nc)
	e.cyFull = make([]float64, nc)
	e.gxFull = make([]float64, nc)
	e.gyFull = make([]float64, nc)
	e.sgx = make([]float64, nc)
	e.sgy = make([]float64, nc)
	e.dgx = make([]float64, nc)
	e.dgy = make([]float64, nc)
	for i := range nl.Cells {
		e.xFull[i] = pl.X[i]
		e.yFull[i] = pl.Y[i]
		e.cxFull[i] = pl.X[i] + nl.Cells[i].W/2
		e.cyFull[i] = pl.Y[i] + nl.Cells[i].H/2
	}

	// Worker pool. Workers==1 (or a one-core GOMAXPROCS) keeps every hot
	// path inline on the calling goroutine — the exact serial code path.
	e.pool = par.New(o.Workers)
	e.ctx = context.Background()

	// Flat SoA netlist view: CSR pin layout plus per-net weights.
	nNets := len(nl.Nets)
	e.netOff = make([]int32, nNets+1)
	for ni := range nl.Nets {
		e.netOff[ni+1] = e.netOff[ni] + int32(nl.Nets[ni].Degree())
	}
	totalPins := int(e.netOff[nNets])
	e.pinCell = make([]int32, totalPins)
	e.pinDX = make([]float64, totalPins)
	e.pinDY = make([]float64, totalPins)
	e.netWeight = make([]float64, nNets)
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		e.netWeight[ni] = net.Weight
		off := int(e.netOff[ni])
		for k, pid := range net.Pins {
			pin := nl.Pin(pid)
			if pin.Cell == netlist.NoCell {
				e.pinCell[off+k] = -1
			} else {
				e.pinCell[off+k] = int32(pin.Cell)
			}
			e.pinDX[off+k] = pin.DX
			e.pinDY[off+k] = pin.DY
		}
	}

	// Wirelength kernel state.
	e.curX = make([]float64, totalPins)
	e.curY = make([]float64, totalPins)
	e.expPX = make([]float64, totalPins)
	e.expNX = make([]float64, totalPins)
	e.expPY = make([]float64, totalPins)
	e.expNY = make([]float64, totalPins)
	e.pinGX = make([]float64, totalPins)
	e.pinGY = make([]float64, totalPins)
	e.stX = make([]wirelength.AxisState, nNets)
	e.stY = make([]wirelength.AxisState, nNets)
	e.netVal = make([]float64, nNets)
	e.netValClean = make([]bool, nNets)
	e.netGradClean = make([]bool, nNets)

	e.vPrev = make([]float64, e.nVars)
	e.changedVars = make([]int32, 0, e.nVars)
	e.buildIncidence()
	return e
}

// buildIncidence constructs the two deduplicated CSR incidence maps the
// delta evaluator diffs through: variable → cells (to update the full
// coordinate arrays of exactly the moved cells) and variable → nets (to mark
// exactly the affected nets dirty). In hard alignment mode one variable can
// own many cells and a net can touch one variable through several pins; the
// per-variable net lists carry each net once.
func (e *engine) buildIncidence() {
	nl := e.nl
	// var → cells.
	cellCnt := make([]int32, e.nVars+1)
	for c := range nl.Cells {
		if e.xVar[c] < 0 {
			continue
		}
		cellCnt[e.xVar[c]+1]++
		cellCnt[e.nx+e.yVar[c]+1]++
	}
	for i := 0; i < e.nVars; i++ {
		cellCnt[i+1] += cellCnt[i]
	}
	e.varCellOff = cellCnt
	e.varCells = make([]int32, cellCnt[e.nVars])
	fill := make([]int32, e.nVars)
	copy(fill, cellCnt[:e.nVars])
	for c := range nl.Cells {
		if e.xVar[c] < 0 {
			continue
		}
		xv, yv := e.xVar[c], e.nx+e.yVar[c]
		e.varCells[fill[xv]] = int32(c)
		fill[xv]++
		e.varCells[fill[yv]] = int32(c)
		fill[yv]++
	}

	// var → nets, deduplicated per (variable, net) pair. Nets are visited in
	// ascending order, so "last net appended to this variable" detects
	// duplicates without a set.
	netCnt := make([]int32, e.nVars+1)
	last := make([]int32, e.nVars)
	for i := range last {
		last[i] = -1
	}
	countVar := func(v int, ni int32) {
		if last[v] != ni {
			last[v] = ni
			netCnt[v+1]++
		}
	}
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		if net.Degree() < 2 {
			continue
		}
		for _, pid := range net.Pins {
			pin := nl.Pin(pid)
			if pin.Cell == netlist.NoCell || e.xVar[pin.Cell] < 0 {
				continue
			}
			countVar(e.xVar[pin.Cell], int32(ni))
			countVar(e.nx+e.yVar[pin.Cell], int32(ni))
		}
	}
	for i := 0; i < e.nVars; i++ {
		netCnt[i+1] += netCnt[i]
	}
	e.varNetOff = netCnt
	e.varNets = make([]int32, netCnt[e.nVars])
	for i := range last {
		last[i] = -1
	}
	netFill := make([]int32, e.nVars)
	copy(netFill, netCnt[:e.nVars])
	appendVar := func(v int, ni int32) {
		if last[v] != ni {
			last[v] = ni
			e.varNets[netFill[v]] = ni
			netFill[v]++
		}
	}
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		if net.Degree() < 2 {
			continue
		}
		for _, pid := range net.Pins {
			pin := nl.Pin(pid)
			if pin.Cell == netlist.NoCell || e.xVar[pin.Cell] < 0 {
				continue
			}
			appendVar(e.xVar[pin.Cell], int32(ni))
			appendVar(e.nx+e.yVar[pin.Cell], int32(ni))
		}
	}
}

// setGamma installs a new smoothing parameter and invalidates every net at
// once: stored values and exponentials are exact only at the γ they were
// computed with, so each step of the λ/γ-schedule dirties the whole
// wirelength state. The density cache is untouched — it does not depend
// on γ.
func (e *engine) setGamma(g float64) {
	e.gamma = g
	e.wlAllDirty = true
}

// rowHOf returns the cell height of a group (uniform in row-based designs).
func rowHOf(nl *netlist.Netlist, g AlignGroup) float64 {
	return nl.Cell(g.Cols[0][0]).H
}

// initVars seeds the variable vector from the current placement: shared
// variables start at the mean of their members.
func (e *engine) initVars(v []float64) {
	cnt := make([]float64, e.nVars)
	for i := range v {
		v[i] = 0
	}
	for c := range e.nl.Cells {
		if e.xVar[c] < 0 {
			continue
		}
		v[e.xVar[c]] += e.pl.X[c]
		cnt[e.xVar[c]]++
		v[e.nx+e.yVar[c]] += e.pl.Y[c] - e.yOff[c]
		cnt[e.nx+e.yVar[c]]++
	}
	for i := range v {
		if cnt[i] > 0 {
			v[i] /= cnt[i]
		}
	}
	// Hard mode: the quadratic start puts all of a group's columns at
	// nearly the same x, and columns cannot tunnel through each other later
	// (density is a barrier), so their initial left-to-right order persists
	// into the final stage order. Spread each group's columns in chain-
	// connectivity order around the group's mean.
	gi := 0
	for _, g := range e.o.Groups {
		if len(g.Cols) == 0 || len(g.Cols[0]) == 0 || !e.hard {
			continue
		}
		colVars := e.groupColVars[gi]
		colWs := e.groupColW[gi]
		gi++
		order := chainOrder(e.nl, g, 16)
		total := 0.0
		mean := 0.0
		for k, cv := range colVars {
			total += colWs[k]
			mean += v[cv]
		}
		mean /= float64(len(colVars))
		x := mean - total/2
		if x < e.core.Region.Lo.X {
			x = e.core.Region.Lo.X
		}
		for _, k := range order {
			v[colVars[k]] = x
			x += colWs[k]
		}
	}
	e.clampVars(v)
}

// refresh moves the engine's full-coordinate arrays and dirty-net state to
// the variable vector v. It is the only entry point that may change xFull/
// yFull/cxFull/cyFull: diffing v against vPrev identifies exactly the moved
// variables, their cells are updated through the var→cells CSR, and their
// nets marked dirty through the var→nets CSR. Every consumer of the full
// arrays (wirelength kernels, density, alignment, tracing) therefore sees
// coordinates whose staleness is tracked, which is what makes delta
// evaluation exact rather than heuristic.
func (e *engine) refresh(v []float64) {
	if !e.havePrev || e.noReuse {
		copy(e.vPrev, v)
		e.havePrev = true
		e.wlAllDirty = true
		e.densClean, e.densGradClean = false, false
		for c := range e.nl.Cells {
			if e.xVar[c] >= 0 {
				e.updateCell(c, v)
			}
		}
	} else {
		// Two-phase diff: find the moved variables first, then mark their
		// nets. Line-search probes move every variable (the CG direction is
		// dense), and for those the per-variable net walks cost more than
		// they save — when most variables moved, blanket-dirtying is both
		// cheaper and provably equivalent, since recomputing a clean net
		// reproduces its cached bits exactly.
		changed := e.changedVars[:0]
		for i, vi := range v {
			//placelint:ignore floateq bitwise change detection: an unchanged bit pattern provably leaves every downstream result identical, and NaN≠NaN conservatively re-dirties
			if vi == e.vPrev[i] {
				continue
			}
			e.vPrev[i] = vi
			changed = append(changed, int32(i))
			for _, c := range e.varCells[e.varCellOff[i]:e.varCellOff[i+1]] {
				e.updateCell(int(c), v)
			}
		}
		e.changedVars = changed
		if len(changed) > 0 {
			e.densClean, e.densGradClean = false, false
			if 4*len(changed) > e.nVars {
				e.wlAllDirty = true
			} else if !e.wlAllDirty {
				for _, i := range changed {
					for _, ni := range e.varNets[e.varNetOff[i]:e.varNetOff[i+1]] {
						e.netValClean[ni] = false
						e.netGradClean[ni] = false
					}
				}
			}
		}
	}
	if e.wlAllDirty {
		for i := range e.netValClean {
			e.netValClean[i] = false
			e.netGradClean[i] = false
		}
		e.wlAllDirty = false
	}
}

// updateCell recomputes one cell's corner and center coordinates from v.
func (e *engine) updateCell(c int, v []float64) {
	cell := &e.nl.Cells[c]
	e.xFull[c] = v[e.xVar[c]]
	e.yFull[c] = v[e.nx+e.yVar[c]] + e.yOff[c]
	e.cxFull[c] = e.xFull[c] + cell.W/2
	e.cyFull[c] = e.yFull[c] + cell.H/2
}

// eval computes the objective and, when grad is non-nil, the gradient at v.
// Value-only calls (grad == nil) are what the optimizer's line-search probes
// issue under ValueOnlyProbes; the delta evaluator then reuses per-net
// values, the density objective and the stored gradients wherever the
// incidence diff proves them current.
func (e *engine) eval(v, grad []float64) float64 {
	e.funcEvals++
	e.refresh(v)
	withGrad := grad != nil
	if withGrad {
		for i := range e.gxFull {
			e.gxFull[i] = 0
			e.gyFull[i] = 0
		}
	}

	reuse0 := e.netReuses.Load()
	recomp0 := e.netRecomps.Load()
	wl := e.evalWL(withGrad)
	if e.netReuses.Load() > reuse0 {
		e.deltaEvals++
	} else if e.netRecomps.Load() > recomp0 {
		e.fullEvals++
	}

	var dens float64
	if e.lambda > 0 {
		if e.densClean {
			dens = e.densVal
		} else {
			dens = e.pot.Value(e.cxFull, e.cyFull)
			if !math.IsNaN(dens) {
				e.densVal = dens
				e.densClean = true
			}
			e.densGradClean = false
		}
		if withGrad && !math.IsNaN(dens) {
			if !e.densGradClean {
				for i := range e.dgx {
					e.dgx[i] = 0
					e.dgy[i] = 0
				}
				if !e.pot.Gradient(e.dgx, e.dgy) {
					return math.NaN()
				}
				e.densGradClean = true
			}
			for i := range e.dgx {
				e.gxFull[i] += e.lambda * e.dgx[i]
				e.gyFull[i] += e.lambda * e.dgy[i]
			}
		}
	}
	var align float64
	if e.alpha > 0 && len(e.o.Groups) > 0 && !e.hard {
		align = e.evalAlign(withGrad, e.alpha)
	}

	if withGrad {
		for i := range grad {
			grad[i] = 0
		}
		for c := range e.nl.Cells {
			if e.xVar[c] < 0 {
				continue
			}
			grad[e.xVar[c]] += e.gxFull[c]
			grad[e.nx+e.yVar[c]] += e.gyFull[c]
		}
	}
	return wl + e.lambda*dens + e.alpha*align
}

// evalWL computes the smooth wirelength and, when withGrad is set,
// accumulates the weighted per-pin gradients into the full per-cell arrays.
//
// The evaluation is sharded by net through the SoA kernels of package
// wirelength: dirty nets gather their pin coordinates from the flat CSR
// view, run WAValueAxis/LSEValueAxis into their own exp/state slots, and —
// when a gradient is wanted — WAGradAxis/LSEGradAxis into their pin-gradient
// slots. Clean nets are skipped entirely; a net whose value is clean but
// whose gradient is stale gets a gradient-only pass from the stored
// exponentials, with no math.Exp call. The weighted objective sum and the
// scatter into per-cell gradients then run serially in net order, so the
// result is bit-identical at every worker count and to a from-scratch
// evaluation (the kernels are pure functions of stored inputs).
func (e *engine) evalWL(withGrad bool) float64 {
	nNets := len(e.netVal)
	// Hoist the hot slices and scalars out of the worker closure: the engine
	// holds atomic counters, so repeated field loads through e would not be
	// registerized inside the net loop.
	netOff, pinCell, pinDX, pinDY := e.netOff, e.pinCell, e.pinDX, e.pinDY
	curX, curY, xFull, yFull := e.curX, e.curY, e.xFull, e.yFull
	expPX, expNX, expPY, expNY := e.expPX, e.expNX, e.expPY, e.expNY
	netValClean, netGradClean := e.netValClean, e.netGradClean
	netVal, stX, stY := e.netVal, e.stX, e.stY
	pinGX, pinGY := e.pinGX, e.pinGY
	lse, gamma := e.lse, e.gamma
	if err := e.pool.Run(e.ctx, nNets, 32, func(lo, hi int) {
		var recomputed, reused int64
		for ni := lo; ni < hi; ni++ {
			off, end := int(netOff[ni]), int(netOff[ni+1])
			if end-off < 2 {
				continue
			}
			if netValClean[ni] && (!withGrad || netGradClean[ni]) {
				reused++
				continue
			}
			xs, ys := curX[off:end], curY[off:end]
			epx, enx := expPX[off:end], expNX[off:end]
			epy, eny := expPY[off:end], expNY[off:end]
			if !netValClean[ni] {
				recomputed++
				for k := off; k < end; k++ {
					if c := pinCell[k]; c >= 0 {
						curX[k] = xFull[c] + pinDX[k]
						curY[k] = yFull[c] + pinDY[k]
					} else {
						curX[k] = pinDX[k]
						curY[k] = pinDY[k]
					}
				}
				if lse {
					sx, wx := wirelength.LSEValueAxis(xs, epx, enx, gamma)
					sy, wy := wirelength.LSEValueAxis(ys, epy, eny, gamma)
					stX[ni], stY[ni] = sx, sy
					netVal[ni] = wx + wy
				} else {
					sx, wx := wirelength.WAValueAxis(xs, epx, enx, gamma)
					sy, wy := wirelength.WAValueAxis(ys, epy, eny, gamma)
					stX[ni], stY[ni] = sx, sy
					netVal[ni] = wx + wy
				}
				netValClean[ni] = true
				netGradClean[ni] = false
			} else {
				// Value current, gradient stale: the gradient-only fast path
				// below reconstructs it from the stored exponentials.
				reused++
			}
			if withGrad {
				if lse {
					wirelength.LSEGradAxis(epx, enx, stX[ni], pinGX[off:end])
					wirelength.LSEGradAxis(epy, eny, stY[ni], pinGY[off:end])
				} else {
					wirelength.WAGradAxis(xs, epx, enx, stX[ni], gamma, pinGX[off:end])
					wirelength.WAGradAxis(ys, epy, eny, stY[ni], gamma, pinGY[off:end])
				}
				netGradClean[ni] = true
			}
		}
		e.netRecomps.Add(recomputed)
		e.netReuses.Add(reused)
	}); err != nil {
		// Cancelled mid-evaluation: poison the objective so the optimizer
		// rejects the iterate; its own context poll stops the solve next.
		// Any nets marked clean hold valid results — cleanliness is per net,
		// not per evaluation — but the poisoned objective is discarded.
		return math.NaN()
	}

	// Serial reduction in net order.
	netWeight, xVar := e.netWeight, e.xVar
	gxFull, gyFull := e.gxFull, e.gyFull
	total := 0.0
	for ni := 0; ni < nNets; ni++ {
		off, end := int(netOff[ni]), int(netOff[ni+1])
		if end-off < 2 {
			continue
		}
		total += netWeight[ni] * netVal[ni]
		if !withGrad {
			continue
		}
		w := netWeight[ni]
		for k := off; k < end; k++ {
			c := pinCell[k]
			if c < 0 || xVar[c] < 0 {
				continue
			}
			gxFull[c] += w * pinGX[k]
			gyFull[c] += w * pinGY[k]
		}
	}
	return total
}

// evalAlign computes the soft alignment energy and adds weight·grad.
func (e *engine) evalAlign(withGrad bool, weight float64) float64 {
	if !withGrad {
		return alignEnergy(e.o.Groups, e.core.RowH(), e.cxFull, e.cyFull, nil, nil)
	}
	for i := range e.sgx {
		e.sgx[i] = 0
		e.sgy[i] = 0
	}
	a := alignEnergy(e.o.Groups, e.core.RowH(), e.cxFull, e.cyFull, e.sgx, e.sgy)
	for i := range e.sgx {
		e.gxFull[i] += weight * e.sgx[i]
		e.gyFull[i] += weight * e.sgy[i]
	}
	return a
}

// gradL1 sums |g| over movable cells.
func gradL1(gx, gy []float64, nl *netlist.Netlist) float64 {
	s := 0.0
	for i := range nl.Cells {
		if nl.Cells[i].Fixed {
			continue
		}
		s += math.Abs(gx[i]) + math.Abs(gy[i])
	}
	return s
}

// innerOpts assembles the inner-solver options for one λ stage, attaching
// flight-recorder telemetry when recording is on: every accepted iterate and
// every health event (rollback, line-search reset, CG restart, divergence)
// lands in the trace. The callback only observes, so the iterate sequence is
// bit-identical to an unrecorded run.
func (e *engine) innerOpts(ctx context.Context, rec *obs.Recorder, outer int, stepInit float64) opt.Options {
	oo := opt.Options{
		MaxIter:  e.o.InnerIters,
		GradTol:  1e-7,
		StepInit: stepInit,
		Ctx:      ctx,
		// Line-search probes ask for the objective alone; the delta
		// evaluator then skips every per-pin gradient kernel and the density
		// chain-rule pass for them, and the accepted iterate's gradient comes
		// mostly from stored exponentials and tables. The iterate sequence is
		// bit-identical to fused probes (see opt.Options.ValueOnlyProbes).
		ValueOnlyProbes: true,
	}
	if rec.Active() {
		oo.Callback = func(iter int, f, gnorm float64) bool {
			rec.SolverIter("global", outer, iter, f, gnorm)
			return true
		}
		oo.OnEvent = func(ev opt.Event) {
			rec.SolverEvent("global", outer, ev.Kind, ev.Iter, ev.F, ev.Step)
		}
	}
	return oo
}

// run executes the λ-scheduled outer loop.
func (e *engine) run(ctx context.Context) (Result, error) {
	nl, pl := e.nl, e.pl
	rec := obs.From(ctx)
	// The run context reaches into the parallel kernels so a deadline can
	// stop work between chunks; determinism is unaffected because partial
	// results are poisoned (NaN) rather than used.
	e.ctx = ctx
	e.pot.SetParallel(e.pool, ctx)
	v := make([]float64, e.nVars)
	e.initVars(v)

	gammaHi := 8 * math.Max(e.grid.BinW, e.grid.BinH)
	gammaLo := 0.5 * math.Max(e.grid.BinW, e.grid.BinH)
	if e.o.Refine {
		// Warm start: the placement is already spread, so the schedule skips
		// the exploratory large-γ stages and polishes from mid-schedule.
		gammaHi = 2 * math.Max(e.grid.BinW, e.grid.BinH)
	}
	e.setGamma(gammaHi)

	// Auto-scale λ (and α in soft mode) from first-order balance.
	e.lambda, e.alpha = 0, 0
	e.refresh(v)
	for i := range e.gxFull {
		e.gxFull[i] = 0
		e.gyFull[i] = 0
	}
	e.evalWL(true)
	wlNorm := gradL1(e.gxFull, e.gyFull, nl)

	dgx := make([]float64, len(e.gxFull))
	dgy := make([]float64, len(e.gyFull))
	e.pot.Eval(e.cxFull, e.cyFull, dgx, dgy)
	densNorm := gradL1(dgx, dgy, nl)
	lambda0 := 1e-4
	if densNorm > 0 {
		lambda0 = 0.2 * wlNorm / densNorm
	}

	alpha0 := 0.0
	if len(e.o.Groups) > 0 && !e.hard {
		agx := make([]float64, len(e.gxFull))
		agy := make([]float64, len(e.gyFull))
		alignEnergy(e.o.Groups, e.core.RowH(), e.cxFull, e.cyFull, agx, agy)
		if alignNorm := gradL1(agx, agy, nl); alignNorm > 0 {
			alpha0 = 0.02 * wlNorm / alignNorm * e.o.AlignWeight
		}
	}

	res := Result{}
	e.lambda = lambda0
	e.alpha = alpha0
	// Over-penalization guard: past some λ the smooth-kernel objective
	// stops tracking exact overflow and the iterates drift. Keep the best
	// iterate seen and stop once overflow plateaus.
	bestV := make([]float64, len(v))
	bestOv := math.Inf(1)
	sinceBest := 0
	// Health bookkeeping: γ re-annealing boost (1 = schedule as planned)
	// and the divergence strike count. Two strikes and the run gives up so
	// the caller can fall back to a simpler formulation.
	gammaBoost := 1.0
	diverged := 0
	// lastOv tracks the exact density overflow of the committed placement;
	// the congestion controller gates its snapshot cadence on it (inflating
	// a still-clustered placement is pure HPWL cost). Seeded with a real
	// measurement only when the loop is on — it costs an exact map pass.
	lastOv := math.Inf(1)
	if e.cong != nil {
		lastOv = density.Overflow(nl, pl, e.grid, e.o.TargetDensity)
	}
	var stageErr error
	for outer := 0; outer < e.o.MaxOuterIters; outer++ {
		if pipeline.Expired(ctx) {
			res.Diagnostics.Partial = true
			stageErr = pipeline.StageError("global", pipeline.ErrTimeout)
			rec.Event("global", "deadline")
			rec.Logf(obs.Warn, "global",
				"deadline expired at outer %d; committing best iterate", outer)
			break
		}
		// Congestion feedback: pl holds the committed iterate (the initial
		// placement at outer 0), so the snapshot sees what the spreader
		// produced. Inflation changes the density objective at unchanged
		// coordinates, so both density caches must drop (§14: all-or-nothing).
		if e.cong.Due(outer, lastOv) {
			if e.cong.Snapshot(ctx, e.pool, pl) {
				e.pot.SetAreaScale(e.cong.Scale())
				if ts := e.cong.TargetScale(); ts != nil {
					e.pot.SetTargetScale(ts)
				}
				e.densClean, e.densGradClean = false, false
				st := e.cong.Stats()
				rec.SolverEvent("global", outer, "congestion-inflate", 0, 0, e.lambda)
				rec.Logf(obs.Debug, "global",
					"congestion snapshot %d at outer %d: %d cells inflated (max ×%.2f), RUDY overflow %.1f",
					st.Snapshots, outer, st.InflatedCells, st.MaxInflation,
					st.Overflow[len(st.Overflow)-1])
			}
		}

		frac := float64(outer) / math.Max(1, float64(e.o.MaxOuterIters-1))
		gamma := gammaHi * math.Pow(gammaLo/gammaHi, frac)
		if gammaBoost != 1 {
			gamma = math.Min(gammaHi, gamma*gammaBoost)
		}
		e.setGamma(gamma)

		r := opt.Minimize(e.eval, v, e.innerOpts(ctx, rec, outer, e.stepInit(v)))
		res.FuncEvals += r.FuncEvals
		res.OuterIters = outer + 1
		res.Diagnostics.Recoveries += r.Recoveries
		rec.Add("global/recoveries", int64(r.Recoveries))

		if r.Diverged || !finiteVec(v) {
			// The inner solve blew up beyond its own recovery budget: roll
			// back to the best iterate and re-anneal — smoother γ, gentler λ
			// — so the next stage re-approaches the barrier gradually.
			diverged++
			res.Diagnostics.Rollbacks++
			res.Diagnostics.ReAnneals++
			if bestOv < math.Inf(1) {
				copy(v, bestV)
			} else {
				e.initVars(v)
			}
			e.lambda = math.Max(lambda0, e.lambda*0.25)
			if e.alpha > 0 {
				e.alpha = math.Max(alpha0, e.alpha*0.25)
			}
			gammaBoost *= 2
			rec.SolverEvent("global", outer, "outer-rollback", r.Iters, r.F, 0)
			rec.SolverEvent("global", outer, "re-anneal", r.Iters, r.F, e.lambda)
			rec.Logf(obs.Warn, "global",
				"inner solve diverged at outer %d; rolled back and re-annealed (λ→%.3g, γ boost ×%g)",
				outer, e.lambda, gammaBoost)
			if diverged >= 2 {
				res.Diagnostics.Diverged = true
				stageErr = pipeline.StageError("global", pipeline.ErrDiverged)
				rec.Logf(obs.Warn, "global", "health guard gave up after %d diverged stages", diverged)
				break
			}
			continue
		}

		e.clampVars(v)
		e.commit(v)
		ov := density.Overflow(nl, pl, e.grid, e.o.TargetDensity)
		lastOv = ov
		if ov < bestOv-1e-4 {
			bestOv = ov
			copy(bestV, v)
			sinceBest = 0
		} else {
			sinceBest++
		}
		if e.o.Trace != nil {
			e.refresh(v)
			e.o.Trace(TracePoint{
				Outer:     outer,
				HPWL:      pl.HPWL(nl),
				Overflow:  ov,
				AlignRMS:  AlignmentScore(e.o.Groups, e.core.RowH(), e.cxFull, e.cyFull),
				Objective: r.F,
				Lambda:    e.lambda,
				Alpha:     e.alpha,
			})
		}
		if rec.Active() {
			e.refresh(v)
			rec.OuterIter("global", obs.TrajectoryPoint{
				Outer:     outer,
				Inner:     r.Iters,
				HPWL:      pl.HPWL(nl),
				Overflow:  ov,
				AlignRMS:  AlignmentScore(e.o.Groups, e.core.RowH(), e.cxFull, e.cyFull),
				Objective: r.F,
				Lambda:    e.lambda,
				Alpha:     e.alpha,
				Gamma:     gamma,
			})
		}
		if r.Stopped {
			res.Diagnostics.Partial = true
			stageErr = pipeline.StageError("global", pipeline.ErrTimeout)
			break
		}
		if ov < e.o.OverflowTarget && outer >= 3 {
			break
		}
		if sinceBest >= 4 {
			break // density progress has stalled; more λ only hurts
		}
		e.lambda *= 2
		if e.alpha > 0 {
			e.alpha *= 1.7
		}
	}
	if bestOv < math.Inf(1) {
		copy(v, bestV)
	}

	// Soft mode needs a final alignment polish before legalization; hard
	// mode is aligned by construction. Skipped on an abnormal stop: the
	// best iterate is worth more than a polish under a blown budget.
	if stageErr == nil && !e.hard && len(e.o.Groups) > 0 && e.alpha > 0 {
		e.alpha *= 64
		// Outer index -1 marks the soft-alignment polish solve in the trace.
		r := opt.Minimize(e.eval, v, e.innerOpts(ctx, rec, -1, e.stepInit(v)))
		res.FuncEvals += r.FuncEvals
		res.Diagnostics.Recoveries += r.Recoveries
		rec.Add("global/recoveries", int64(r.Recoveries))
		if r.Stopped {
			res.Diagnostics.Partial = true
			stageErr = pipeline.StageError("global", pipeline.ErrTimeout)
		}
		e.clampVars(v)
	}

	e.commit(v)
	pl.ClampInto(nl, e.core.Region)
	e.refresh(v)
	res.HPWL = pl.HPWL(nl)
	res.Overflow = density.Overflow(nl, pl, e.grid, e.o.TargetDensity)
	res.AlignRMS = AlignmentScore(e.o.Groups, e.core.RowH(), e.cxFull, e.cyFull)
	res.Workers = e.pool.Workers()
	res.NetRecomputes = e.netRecomps.Load()
	res.NetReuses = e.netReuses.Load()
	res.FullEvals = e.fullEvals
	res.DeltaEvals = e.deltaEvals
	rec.Add("global/net_recomputes", res.NetRecomputes)
	rec.Add("global/net_reuses", res.NetReuses)
	rec.Add("global/evals_full", res.FullEvals)
	rec.Add("global/evals_delta", res.DeltaEvals)
	if e.cong != nil {
		st := e.cong.Stats()
		res.Congestion = &st
		rec.Add("global/congestion_snapshots", int64(st.Snapshots))
		rec.Add("global/congestion_inflated_cells", int64(st.InflatedCells))
	}
	rec.Logf(obs.Debug, "global",
		"done: %d outer iters, %d evals, HPWL %.0f, overflow %.3f, align RMS %.3f",
		res.OuterIters, res.FuncEvals, res.HPWL, res.Overflow, res.AlignRMS)
	return res, stageErr
}

// finiteVec reports whether every component of v is finite.
func finiteVec(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// stepInit picks the first trial step so the strongest variable moves about
// a quarter bin.
func (e *engine) stepInit(v []float64) float64 {
	g := make([]float64, len(v))
	e.eval(v, g)
	maxG := 0.0
	for _, gv := range g {
		if a := math.Abs(gv); a > maxG {
			maxG = a
		}
	}
	if maxG == 0 {
		return 1
	}
	return 0.25 * math.Max(e.grid.BinW, e.grid.BinH) / maxG
}

// clampVars keeps every variable inside its feasible interval.
func (e *engine) clampVars(v []float64) {
	for i := 0; i < e.nx; i++ {
		v[i] = geom.Clamp(v[i], e.xLo[i], math.Max(e.xLo[i], e.xHi[i]))
	}
	for i := 0; i < e.ny; i++ {
		v[e.nx+i] = geom.Clamp(v[e.nx+i], e.yLo[i], math.Max(e.yLo[i], e.yHi[i]))
	}
}

// commit writes the variable vector back into the placement.
func (e *engine) commit(v []float64) {
	for c := range e.nl.Cells {
		if e.xVar[c] < 0 {
			continue
		}
		e.pl.X[c] = v[e.xVar[c]]
		e.pl.Y[c] = v[e.nx+e.yVar[c]] + e.yOff[c]
	}
}
