package global

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/density"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/wirelength"
)

// AlignMode selects how extracted groups constrain the optimization.
type AlignMode int

// Alignment modes.
const (
	// AlignHard substitutes variables: every cell of a column shares one x
	// variable and every group shares one base-y variable (bit offsets are
	// fixed at the row pitch). Alignment is exact by construction and the
	// optimizer spends all of its effort on wirelength and density. This is
	// the default.
	AlignHard AlignMode = iota
	// AlignSoft keeps per-cell variables and adds the quadratic alignment
	// energy with an annealed weight α — the formulation the α-sweep
	// ablation studies.
	AlignSoft
)

// Options controls global placement.
type Options struct {
	// WLModel selects the smooth wirelength model: "wa" (default) or "lse".
	WLModel string
	// TargetDensity is the per-bin utilization target (default 0.9).
	TargetDensity float64
	// GridDim forces the density grid to GridDim×GridDim bins; 0 derives it
	// from the design size.
	GridDim int
	// OverflowTarget stops the outer loop once total overflow drops below
	// it (default 0.10).
	OverflowTarget float64
	// MaxOuterIters bounds the λ-schedule length (default 24).
	MaxOuterIters int
	// InnerIters bounds the conjugate-gradient iterations per λ stage
	// (default 50).
	InnerIters int
	// Groups, when non-empty, turns on structure-aware mode.
	Groups []AlignGroup
	// AlignMode selects hard (default) or soft alignment.
	AlignMode AlignMode
	// AlignWeight scales the soft-alignment term relative to its
	// auto-derived base weight (default 1.0). Ignored in hard mode.
	AlignWeight float64
	// SkipQuadraticInit keeps the caller-provided start instead of running
	// the bound-to-bound solve.
	SkipQuadraticInit bool
	// Refine treats the caller-provided start as nearly converged (a
	// multilevel interpolation or an earlier solve's output): the γ schedule
	// starts 4× more compressed (2× bin size instead of 8×), so the solve
	// spends its budget polishing instead of re-deriving the global
	// structure. The density weight still auto-scales from first-order
	// balance — forcing it higher was tried and blocks wirelength descent on
	// warm starts. Implies nothing about feasibility — the health guards
	// behave exactly as in a cold start.
	Refine bool
	// Workers is the worker count for the parallel hot paths (wirelength,
	// density): 0 means GOMAXPROCS, 1 runs everything inline on the calling
	// goroutine. The placement is bit-identical at every worker count; the
	// setting only trades wall clock for cores.
	Workers int
	// Trace, when non-nil, observes every outer iteration.
	Trace func(TracePoint)
}

// TracePoint is one outer-iteration snapshot for convergence figures.
type TracePoint struct {
	Outer     int
	HPWL      float64
	Overflow  float64
	AlignRMS  float64
	Objective float64
	Lambda    float64
	Alpha     float64
}

// Result reports the global placement outcome.
type Result struct {
	HPWL       float64
	Overflow   float64
	AlignRMS   float64
	OuterIters int
	FuncEvals  int
	// Workers is the resolved worker count the parallel engine ran with
	// (Options.Workers after the GOMAXPROCS default is applied).
	Workers int
	// NetCacheHits and NetCacheMisses count per-net wirelength evaluations
	// served from the incremental cache versus recomputed. Hits come from
	// repeated objective evaluations at unchanged pin coordinates within one
	// γ epoch (step-size probes, health-guard rollbacks, fixed-pin nets).
	NetCacheHits   int64
	NetCacheMisses int64
	// Diagnostics records the resilience events of the run.
	Diagnostics Diagnostics
}

// Diagnostics records the numerical-health and cancellation events of one
// global-placement run. All-zero means the run was clean.
type Diagnostics struct {
	// Recoveries counts inner-solver health events: NaN/Inf rollbacks and
	// pathological line-search resets inside opt.Minimize.
	Recoveries int
	// Rollbacks counts outer-loop restorations of the best iterate after a
	// diverged inner solve.
	Rollbacks int
	// ReAnneals counts γ/λ re-annealing events that accompany a rollback.
	ReAnneals int
	// Partial is set when a deadline stopped the λ-schedule early; the
	// committed placement is the best iterate found so far.
	Partial bool
	// Diverged is set when the health guard gave up (the run returned an
	// error wrapping pipeline.ErrDiverged).
	Diverged bool
}

func (o *Options) fillDefaults() {
	if o.WLModel == "" {
		o.WLModel = "wa"
	}
	if o.TargetDensity <= 0 {
		o.TargetDensity = 0.9
	}
	if o.OverflowTarget <= 0 {
		o.OverflowTarget = 0.10
	}
	if o.MaxOuterIters <= 0 {
		o.MaxOuterIters = 24
	}
	if o.InnerIters <= 0 {
		o.InnerIters = 50
	}
	if o.AlignWeight == 0 {
		o.AlignWeight = 1
	}
}

// Place runs analytical global placement, updating pl in place (movable
// cells only). The returned placement is spread but not legalized; in hard
// alignment mode the extracted groups come out exactly bit-aligned.
func Place(nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core, o Options) (Result, error) {
	return PlaceCtx(context.Background(), nl, pl, core, o)
}

// PlaceCtx is Place with cooperative cancellation. The context is polled in
// the outer λ-schedule loop and inside every conjugate-gradient iteration;
// on expiry the best iterate found so far is committed to pl, the returned
// Result has Diagnostics.Partial set, and the error wraps
// pipeline.ErrTimeout. When the numerical-health guard gives up after
// repeated divergence the best iterate is likewise committed and the error
// wraps pipeline.ErrDiverged.
func PlaceCtx(ctx context.Context, nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core, o Options) (Result, error) {
	o.fillDefaults()
	var model wirelength.Model
	switch o.WLModel {
	case "wa":
		model = wirelength.NewWA(1)
	case "lse":
		model = wirelength.NewLSE(1)
	default:
		return Result{}, fmt.Errorf("global: unknown wirelength model %q", o.WLModel)
	}

	if !o.SkipQuadraticInit {
		InitQuadratic(nl, pl, core)
	}

	e := newEngine(nl, pl, core, model, o)
	if e.nVars == 0 {
		return Result{HPWL: pl.HPWL(nl)}, nil
	}
	return e.run(ctx)
}

// engine carries the optimization state. The variable vector v packs the x
// variables first, then the y variables. In hard alignment mode several
// cells map to one variable (column x, group base y).
type engine struct {
	nl    *netlist.Netlist
	pl    *netlist.Placement
	core  *geom.Core
	o     Options
	model wirelength.Model
	grid  geom.Grid
	pot   *density.Potential

	// Per-cell variable mapping: index into the x/y variable arrays, or -1
	// for fixed cells. yOff is added to the y variable's value.
	xVar, yVar []int
	yOff       []float64
	nx, ny     int
	nVars      int

	// Per-x-variable clamp bounds (account for cell width / group height).
	xLo, xHi []float64
	yLo, yHi []float64

	// Hard-mode group bookkeeping: per group, the x-var of each column and
	// each column's width (for chain-ordered initialization).
	groupColVars [][]int
	groupColW    [][]float64

	// Full per-cell scratch arrays.
	xFull, yFull   []float64
	cxFull, cyFull []float64
	gxFull, gyFull []float64

	// Parallel execution: the worker pool, the run context it polls, and one
	// wirelength-model clone per worker (models carry scratch buffers and are
	// not concurrency-safe).
	pool     *par.Pool
	ctx      context.Context
	wlModels []wirelength.Model

	// Per-net CSR pin buffers: netOff[ni] is the first slot of net ni in the
	// flat pin arrays. curX/curY hold the gathered pin coordinates of the
	// evaluation in flight; pinGX/pinGY the per-pin model gradients.
	netOff     []int32
	curX, curY []float64
	pinGX      []float64
	pinGY      []float64
	netVal     []float64

	// Per-net incremental cache: cacheX/cacheY are the pin coordinates the
	// net was last evaluated at, netVal/pinGX/pinGY the results. A cached
	// entry is valid when netEpoch matches the engine epoch (bumped on every
	// γ change, i.e. by the λ-schedule) and, for gradient evaluations,
	// netGrad is set. Reuse is exact: the cached numbers were produced by
	// identical arithmetic at identical inputs, so caching never perturbs
	// the placement.
	cacheX, cacheY []float64
	netEpoch       []int64
	netGrad        []bool
	epoch          int64
	noCache        bool // benchmarks disable the cache to measure its value
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64

	// Term-gradient scratch.
	sgx, sgy []float64

	hard          bool
	lambda, alpha float64
	funcEvals     int
}

func newEngine(nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core, model wirelength.Model, o Options) *engine {
	e := &engine{nl: nl, pl: pl, core: core, o: o, model: model}
	e.hard = o.AlignMode == AlignHard && len(o.Groups) > 0

	nc := nl.NumCells()
	e.xVar = make([]int, nc)
	e.yVar = make([]int, nc)
	e.yOff = make([]float64, nc)
	for i := range e.xVar {
		e.xVar[i] = -1
		e.yVar[i] = -1
	}

	pitch := core.RowH()
	if e.hard {
		for _, g := range o.Groups {
			if len(g.Cols) == 0 || len(g.Cols[0]) == 0 {
				continue
			}
			bits := len(g.Cols[0])
			gy := e.ny
			e.ny++
			e.yLo = append(e.yLo, core.Region.Lo.Y)
			groupH := float64(bits-1)*pitch + rowHOf(nl, g)
			e.yHi = append(e.yHi, core.Region.Hi.Y-groupH)
			var colVars []int
			var colWs []float64
			for _, col := range g.Cols {
				gx := e.nx
				e.nx++
				maxW := 0.0
				for b, c := range col {
					if nl.Cell(c).Fixed {
						continue
					}
					e.xVar[c] = gx
					e.yVar[c] = gy
					e.yOff[c] = float64(b) * pitch
					if w := nl.Cell(c).W; w > maxW {
						maxW = w
					}
				}
				e.xLo = append(e.xLo, core.Region.Lo.X)
				e.xHi = append(e.xHi, core.Region.Hi.X-maxW)
				colVars = append(colVars, gx)
				colWs = append(colWs, maxW)
			}
			e.groupColVars = append(e.groupColVars, colVars)
			e.groupColW = append(e.groupColW, colWs)
		}
	}
	for i := range nl.Cells {
		if nl.Cells[i].Fixed || e.xVar[i] >= 0 {
			continue
		}
		e.xVar[i] = e.nx
		e.nx++
		e.xLo = append(e.xLo, core.Region.Lo.X)
		e.xHi = append(e.xHi, core.Region.Hi.X-nl.Cells[i].W)
		e.yVar[i] = e.ny
		e.ny++
		e.yLo = append(e.yLo, core.Region.Lo.Y)
		e.yHi = append(e.yHi, core.Region.Hi.Y-nl.Cells[i].H)
	}
	e.nVars = e.nx + e.ny

	dim := o.GridDim
	if dim <= 0 {
		dim = int(math.Sqrt(float64(nl.NumMovable())/3)) + 8
		if dim < 16 {
			dim = 16
		}
		if dim > 128 {
			dim = 128
		}
	}
	e.grid = geom.NewGrid(core.Region, dim, dim)
	e.pot = density.NewPotential(nl, pl, e.grid, o.TargetDensity)

	e.xFull = make([]float64, nc)
	e.yFull = make([]float64, nc)
	e.cxFull = make([]float64, nc)
	e.cyFull = make([]float64, nc)
	e.gxFull = make([]float64, nc)
	e.gyFull = make([]float64, nc)
	e.sgx = make([]float64, nc)
	e.sgy = make([]float64, nc)
	for i := range nl.Cells {
		e.xFull[i] = pl.X[i]
		e.yFull[i] = pl.Y[i]
	}

	// Worker pool and per-worker wirelength models. Workers==1 (or a
	// one-core GOMAXPROCS) keeps every hot path inline on the calling
	// goroutine — the exact serial code path.
	e.pool = par.New(o.Workers)
	e.ctx = context.Background()
	e.wlModels = make([]wirelength.Model, e.pool.Workers())
	e.wlModels[0] = model
	for i := 1; i < len(e.wlModels); i++ {
		e.wlModels[i] = model.Clone()
	}

	// CSR pin buffers and the per-net cache.
	e.netOff = make([]int32, len(nl.Nets)+1)
	for ni := range nl.Nets {
		e.netOff[ni+1] = e.netOff[ni] + int32(nl.Nets[ni].Degree())
	}
	totalPins := int(e.netOff[len(nl.Nets)])
	e.curX = make([]float64, totalPins)
	e.curY = make([]float64, totalPins)
	e.pinGX = make([]float64, totalPins)
	e.pinGY = make([]float64, totalPins)
	e.cacheX = make([]float64, totalPins)
	e.cacheY = make([]float64, totalPins)
	e.netVal = make([]float64, len(nl.Nets))
	e.netEpoch = make([]int64, len(nl.Nets))
	e.netGrad = make([]bool, len(nl.Nets))
	for i := range e.netEpoch {
		e.netEpoch[i] = -1
	}
	return e
}

// setGamma propagates a new smoothing parameter to every worker's model and
// invalidates the per-net cache: cached values are exact only at the γ they
// were computed with, so each step of the λ/γ-schedule starts a new epoch.
func (e *engine) setGamma(g float64) {
	for _, m := range e.wlModels {
		m.SetGamma(g)
	}
	e.epoch++
}

// rowHOf returns the cell height of a group (uniform in row-based designs).
func rowHOf(nl *netlist.Netlist, g AlignGroup) float64 {
	return nl.Cell(g.Cols[0][0]).H
}

// initVars seeds the variable vector from the current placement: shared
// variables start at the mean of their members.
func (e *engine) initVars(v []float64) {
	cnt := make([]float64, e.nVars)
	for i := range v {
		v[i] = 0
	}
	for c := range e.nl.Cells {
		if e.xVar[c] < 0 {
			continue
		}
		v[e.xVar[c]] += e.pl.X[c]
		cnt[e.xVar[c]]++
		v[e.nx+e.yVar[c]] += e.pl.Y[c] - e.yOff[c]
		cnt[e.nx+e.yVar[c]]++
	}
	for i := range v {
		if cnt[i] > 0 {
			v[i] /= cnt[i]
		}
	}
	// Hard mode: the quadratic start puts all of a group's columns at
	// nearly the same x, and columns cannot tunnel through each other later
	// (density is a barrier), so their initial left-to-right order persists
	// into the final stage order. Spread each group's columns in chain-
	// connectivity order around the group's mean.
	gi := 0
	for _, g := range e.o.Groups {
		if len(g.Cols) == 0 || len(g.Cols[0]) == 0 || !e.hard {
			continue
		}
		colVars := e.groupColVars[gi]
		colWs := e.groupColW[gi]
		gi++
		order := chainOrder(e.nl, g, 16)
		total := 0.0
		mean := 0.0
		for k, cv := range colVars {
			total += colWs[k]
			mean += v[cv]
		}
		mean /= float64(len(colVars))
		x := mean - total/2
		if x < e.core.Region.Lo.X {
			x = e.core.Region.Lo.X
		}
		for _, k := range order {
			v[colVars[k]] = x
			x += colWs[k]
		}
	}
	e.clampVars(v)
}

// unpack refreshes the full coordinate arrays from the variable vector.
func (e *engine) unpack(v []float64) {
	for c := range e.nl.Cells {
		if e.xVar[c] < 0 {
			continue
		}
		e.xFull[c] = v[e.xVar[c]]
		e.yFull[c] = v[e.nx+e.yVar[c]] + e.yOff[c]
	}
	for i := range e.nl.Cells {
		cell := &e.nl.Cells[i]
		e.cxFull[i] = e.xFull[i] + cell.W/2
		e.cyFull[i] = e.yFull[i] + cell.H/2
	}
}

// eval computes the objective and gradient at v.
func (e *engine) eval(v, grad []float64) float64 {
	e.funcEvals++
	e.unpack(v)
	withGrad := grad != nil
	if withGrad {
		for i := range e.gxFull {
			e.gxFull[i] = 0
			e.gyFull[i] = 0
		}
	}

	wl := e.evalWL(withGrad, 1)
	var dens float64
	if e.lambda > 0 {
		if withGrad {
			dens = e.evalDensity(e.lambda)
		} else {
			dens = e.pot.Eval(e.cxFull, e.cyFull, nil, nil)
		}
	}
	var align float64
	if e.alpha > 0 && len(e.o.Groups) > 0 && !e.hard {
		align = e.evalAlign(withGrad, e.alpha)
	}

	if withGrad {
		for i := range grad {
			grad[i] = 0
		}
		for c := range e.nl.Cells {
			if e.xVar[c] < 0 {
				continue
			}
			grad[e.xVar[c]] += e.gxFull[c]
			grad[e.nx+e.yVar[c]] += e.gyFull[c]
		}
	}
	return wl + e.lambda*dens + e.alpha*align
}

// evalWL computes the smooth wirelength and accumulates weight·grad into the
// full per-cell gradient arrays.
//
// The evaluation is sharded by net: workers gather pin coordinates and run
// the smooth model independently into per-net CSR slots (curX/curY, netVal,
// pinGX/pinGY), consulting the per-net cache first. The weighted objective
// sum and the scatter into the per-cell gradients then run serially in net
// order, which reproduces the historical serial loop's floating-point
// accumulation order exactly — the parallel phase only ever computes
// per-net quantities, so the result is bit-identical at every worker count.
func (e *engine) evalWL(withGrad bool, weight float64) float64 {
	nl := e.nl
	if err := e.pool.RunWorker(e.ctx, len(nl.Nets), 32, func(worker, lo, hi int) {
		model := e.wlModels[worker]
		var hits, misses int64
		for ni := lo; ni < hi; ni++ {
			net := &nl.Nets[ni]
			p := net.Degree()
			if p < 2 {
				continue
			}
			off := int(e.netOff[ni])
			xs := e.curX[off : off+p]
			ys := e.curY[off : off+p]
			for k, pid := range net.Pins {
				pin := nl.Pin(pid)
				if pin.Cell == netlist.NoCell {
					xs[k] = pin.DX
					ys[k] = pin.DY
				} else {
					xs[k] = e.xFull[pin.Cell] + pin.DX
					ys[k] = e.yFull[pin.Cell] + pin.DY
				}
			}
			if !e.noCache && e.netEpoch[ni] == e.epoch && (e.netGrad[ni] || !withGrad) &&
				coordsEqual(xs, e.cacheX[off:off+p]) && coordsEqual(ys, e.cacheY[off:off+p]) {
				// netVal and pinGX/pinGY still hold this net's results.
				hits++
				continue
			}
			misses++
			var gx, gy []float64
			if withGrad {
				gx = e.pinGX[off : off+p]
				gy = e.pinGY[off : off+p]
				for k := range gx {
					gx[k] = 0
					gy[k] = 0
				}
			}
			e.netVal[ni] = model.EvalAxis(xs, gx) + model.EvalAxis(ys, gy)
			copy(e.cacheX[off:off+p], xs)
			copy(e.cacheY[off:off+p], ys)
			e.netEpoch[ni] = e.epoch
			e.netGrad[ni] = withGrad
		}
		e.cacheHits.Add(hits)
		e.cacheMisses.Add(misses)
	}); err != nil {
		// Cancelled mid-evaluation: poison the objective so the optimizer
		// rejects the iterate; its own context poll stops the solve next.
		return math.NaN()
	}

	// Serial reduction in net order.
	total := 0.0
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		p := net.Degree()
		if p < 2 {
			continue
		}
		total += net.Weight * e.netVal[ni]
		if !withGrad {
			continue
		}
		off := int(e.netOff[ni])
		w := net.Weight * weight
		for k, pid := range net.Pins {
			pin := nl.Pin(pid)
			if pin.Cell == netlist.NoCell || e.xVar[pin.Cell] < 0 {
				continue
			}
			e.gxFull[pin.Cell] += w * e.pinGX[off+k]
			e.gyFull[pin.Cell] += w * e.pinGY[off+k]
		}
	}
	return total
}

// coordsEqual reports exact (bitwise, modulo ±0) equality of two coordinate
// slices. NaNs compare unequal, which conservatively forces re-evaluation.
func coordsEqual(a, b []float64) bool {
	for i := range a {
		//placelint:ignore floateq deliberately bitwise: the caller needs "identical iterate", not "close iterate"
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// evalDensity computes the density penalty and adds weight·grad.
func (e *engine) evalDensity(weight float64) float64 {
	for i := range e.sgx {
		e.sgx[i] = 0
		e.sgy[i] = 0
	}
	n := e.pot.Eval(e.cxFull, e.cyFull, e.sgx, e.sgy)
	for i := range e.sgx {
		e.gxFull[i] += weight * e.sgx[i]
		e.gyFull[i] += weight * e.sgy[i]
	}
	return n
}

// evalAlign computes the soft alignment energy and adds weight·grad.
func (e *engine) evalAlign(withGrad bool, weight float64) float64 {
	if !withGrad {
		return alignEnergy(e.o.Groups, e.core.RowH(), e.cxFull, e.cyFull, nil, nil)
	}
	for i := range e.sgx {
		e.sgx[i] = 0
		e.sgy[i] = 0
	}
	a := alignEnergy(e.o.Groups, e.core.RowH(), e.cxFull, e.cyFull, e.sgx, e.sgy)
	for i := range e.sgx {
		e.gxFull[i] += weight * e.sgx[i]
		e.gyFull[i] += weight * e.sgy[i]
	}
	return a
}

// gradL1 sums |g| over movable cells.
func gradL1(gx, gy []float64, nl *netlist.Netlist) float64 {
	s := 0.0
	for i := range nl.Cells {
		if nl.Cells[i].Fixed {
			continue
		}
		s += math.Abs(gx[i]) + math.Abs(gy[i])
	}
	return s
}

// innerOpts assembles the inner-solver options for one λ stage, attaching
// flight-recorder telemetry when recording is on: every accepted iterate and
// every health event (rollback, line-search reset, CG restart, divergence)
// lands in the trace. The callback only observes, so the iterate sequence is
// bit-identical to an unrecorded run.
func (e *engine) innerOpts(ctx context.Context, rec *obs.Recorder, outer int, stepInit float64) opt.Options {
	oo := opt.Options{
		MaxIter:  e.o.InnerIters,
		GradTol:  1e-7,
		StepInit: stepInit,
		Ctx:      ctx,
	}
	if rec.Active() {
		oo.Callback = func(iter int, f, gnorm float64) bool {
			rec.SolverIter("global", outer, iter, f, gnorm)
			return true
		}
		oo.OnEvent = func(ev opt.Event) {
			rec.SolverEvent("global", outer, ev.Kind, ev.Iter, ev.F, ev.Step)
		}
	}
	return oo
}

// run executes the λ-scheduled outer loop.
func (e *engine) run(ctx context.Context) (Result, error) {
	nl, pl := e.nl, e.pl
	rec := obs.From(ctx)
	// The run context reaches into the parallel kernels so a deadline can
	// stop work between chunks; determinism is unaffected because partial
	// results are poisoned (NaN) rather than used.
	e.ctx = ctx
	e.pot.SetParallel(e.pool, ctx)
	v := make([]float64, e.nVars)
	e.initVars(v)

	gammaHi := 8 * math.Max(e.grid.BinW, e.grid.BinH)
	gammaLo := 0.5 * math.Max(e.grid.BinW, e.grid.BinH)
	if e.o.Refine {
		// Warm start: the placement is already spread, so the schedule skips
		// the exploratory large-γ stages and polishes from mid-schedule.
		gammaHi = 2 * math.Max(e.grid.BinW, e.grid.BinH)
	}
	e.setGamma(gammaHi)

	// Auto-scale λ (and α in soft mode) from first-order balance.
	e.lambda, e.alpha = 0, 0
	e.unpack(v)
	for i := range e.gxFull {
		e.gxFull[i] = 0
		e.gyFull[i] = 0
	}
	e.evalWL(true, 1)
	wlNorm := gradL1(e.gxFull, e.gyFull, nl)

	dgx := make([]float64, len(e.gxFull))
	dgy := make([]float64, len(e.gyFull))
	e.pot.Eval(e.cxFull, e.cyFull, dgx, dgy)
	densNorm := gradL1(dgx, dgy, nl)
	lambda0 := 1e-4
	if densNorm > 0 {
		lambda0 = 0.2 * wlNorm / densNorm
	}

	alpha0 := 0.0
	if len(e.o.Groups) > 0 && !e.hard {
		agx := make([]float64, len(e.gxFull))
		agy := make([]float64, len(e.gyFull))
		alignEnergy(e.o.Groups, e.core.RowH(), e.cxFull, e.cyFull, agx, agy)
		if alignNorm := gradL1(agx, agy, nl); alignNorm > 0 {
			alpha0 = 0.02 * wlNorm / alignNorm * e.o.AlignWeight
		}
	}

	res := Result{}
	e.lambda = lambda0
	e.alpha = alpha0
	// Over-penalization guard: past some λ the smooth-kernel objective
	// stops tracking exact overflow and the iterates drift. Keep the best
	// iterate seen and stop once overflow plateaus.
	bestV := make([]float64, len(v))
	bestOv := math.Inf(1)
	sinceBest := 0
	// Health bookkeeping: γ re-annealing boost (1 = schedule as planned)
	// and the divergence strike count. Two strikes and the run gives up so
	// the caller can fall back to a simpler formulation.
	gammaBoost := 1.0
	diverged := 0
	var stageErr error
	for outer := 0; outer < e.o.MaxOuterIters; outer++ {
		if pipeline.Expired(ctx) {
			res.Diagnostics.Partial = true
			stageErr = pipeline.StageError("global", pipeline.ErrTimeout)
			rec.Event("global", "deadline")
			rec.Logf(obs.Warn, "global",
				"deadline expired at outer %d; committing best iterate", outer)
			break
		}
		frac := float64(outer) / math.Max(1, float64(e.o.MaxOuterIters-1))
		gamma := gammaHi * math.Pow(gammaLo/gammaHi, frac)
		if gammaBoost != 1 {
			gamma = math.Min(gammaHi, gamma*gammaBoost)
		}
		e.setGamma(gamma)

		r := opt.Minimize(e.eval, v, e.innerOpts(ctx, rec, outer, e.stepInit(v)))
		res.FuncEvals += r.FuncEvals
		res.OuterIters = outer + 1
		res.Diagnostics.Recoveries += r.Recoveries
		rec.Add("global/recoveries", int64(r.Recoveries))

		if r.Diverged || !finiteVec(v) {
			// The inner solve blew up beyond its own recovery budget: roll
			// back to the best iterate and re-anneal — smoother γ, gentler λ
			// — so the next stage re-approaches the barrier gradually.
			diverged++
			res.Diagnostics.Rollbacks++
			res.Diagnostics.ReAnneals++
			if bestOv < math.Inf(1) {
				copy(v, bestV)
			} else {
				e.initVars(v)
			}
			e.lambda = math.Max(lambda0, e.lambda*0.25)
			if e.alpha > 0 {
				e.alpha = math.Max(alpha0, e.alpha*0.25)
			}
			gammaBoost *= 2
			rec.SolverEvent("global", outer, "outer-rollback", r.Iters, r.F, 0)
			rec.SolverEvent("global", outer, "re-anneal", r.Iters, r.F, e.lambda)
			rec.Logf(obs.Warn, "global",
				"inner solve diverged at outer %d; rolled back and re-annealed (λ→%.3g, γ boost ×%g)",
				outer, e.lambda, gammaBoost)
			if diverged >= 2 {
				res.Diagnostics.Diverged = true
				stageErr = pipeline.StageError("global", pipeline.ErrDiverged)
				rec.Logf(obs.Warn, "global", "health guard gave up after %d diverged stages", diverged)
				break
			}
			continue
		}

		e.clampVars(v)
		e.commit(v)
		ov := density.Overflow(nl, pl, e.grid, e.o.TargetDensity)
		if ov < bestOv-1e-4 {
			bestOv = ov
			copy(bestV, v)
			sinceBest = 0
		} else {
			sinceBest++
		}
		if e.o.Trace != nil {
			e.unpack(v)
			e.o.Trace(TracePoint{
				Outer:     outer,
				HPWL:      pl.HPWL(nl),
				Overflow:  ov,
				AlignRMS:  AlignmentScore(e.o.Groups, e.core.RowH(), e.cxFull, e.cyFull),
				Objective: r.F,
				Lambda:    e.lambda,
				Alpha:     e.alpha,
			})
		}
		if rec.Active() {
			e.unpack(v)
			rec.OuterIter("global", obs.TrajectoryPoint{
				Outer:     outer,
				Inner:     r.Iters,
				HPWL:      pl.HPWL(nl),
				Overflow:  ov,
				AlignRMS:  AlignmentScore(e.o.Groups, e.core.RowH(), e.cxFull, e.cyFull),
				Objective: r.F,
				Lambda:    e.lambda,
				Alpha:     e.alpha,
				Gamma:     gamma,
			})
		}
		if r.Stopped {
			res.Diagnostics.Partial = true
			stageErr = pipeline.StageError("global", pipeline.ErrTimeout)
			break
		}
		if ov < e.o.OverflowTarget && outer >= 3 {
			break
		}
		if sinceBest >= 4 {
			break // density progress has stalled; more λ only hurts
		}
		e.lambda *= 2
		if e.alpha > 0 {
			e.alpha *= 1.7
		}
	}
	if bestOv < math.Inf(1) {
		copy(v, bestV)
	}

	// Soft mode needs a final alignment polish before legalization; hard
	// mode is aligned by construction. Skipped on an abnormal stop: the
	// best iterate is worth more than a polish under a blown budget.
	if stageErr == nil && !e.hard && len(e.o.Groups) > 0 && e.alpha > 0 {
		e.alpha *= 64
		// Outer index -1 marks the soft-alignment polish solve in the trace.
		r := opt.Minimize(e.eval, v, e.innerOpts(ctx, rec, -1, e.stepInit(v)))
		res.FuncEvals += r.FuncEvals
		res.Diagnostics.Recoveries += r.Recoveries
		rec.Add("global/recoveries", int64(r.Recoveries))
		if r.Stopped {
			res.Diagnostics.Partial = true
			stageErr = pipeline.StageError("global", pipeline.ErrTimeout)
		}
		e.clampVars(v)
	}

	e.commit(v)
	pl.ClampInto(nl, e.core.Region)
	e.unpack(v)
	res.HPWL = pl.HPWL(nl)
	res.Overflow = density.Overflow(nl, pl, e.grid, e.o.TargetDensity)
	res.AlignRMS = AlignmentScore(e.o.Groups, e.core.RowH(), e.cxFull, e.cyFull)
	res.Workers = e.pool.Workers()
	res.NetCacheHits = e.cacheHits.Load()
	res.NetCacheMisses = e.cacheMisses.Load()
	rec.Add("global/net_cache_hits", res.NetCacheHits)
	rec.Add("global/net_cache_misses", res.NetCacheMisses)
	rec.Logf(obs.Debug, "global",
		"done: %d outer iters, %d evals, HPWL %.0f, overflow %.3f, align RMS %.3f",
		res.OuterIters, res.FuncEvals, res.HPWL, res.Overflow, res.AlignRMS)
	return res, stageErr
}

// finiteVec reports whether every component of v is finite.
func finiteVec(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// stepInit picks the first trial step so the strongest variable moves about
// a quarter bin.
func (e *engine) stepInit(v []float64) float64 {
	g := make([]float64, len(v))
	e.eval(v, g)
	maxG := 0.0
	for _, gv := range g {
		if a := math.Abs(gv); a > maxG {
			maxG = a
		}
	}
	if maxG == 0 {
		return 1
	}
	return 0.25 * math.Max(e.grid.BinW, e.grid.BinH) / maxG
}

// clampVars keeps every variable inside its feasible interval.
func (e *engine) clampVars(v []float64) {
	for i := 0; i < e.nx; i++ {
		v[i] = geom.Clamp(v[i], e.xLo[i], math.Max(e.xLo[i], e.xHi[i]))
	}
	for i := 0; i < e.ny; i++ {
		v[e.nx+i] = geom.Clamp(v[e.nx+i], e.yLo[i], math.Max(e.yLo[i], e.yHi[i]))
	}
}

// commit writes the variable vector back into the placement.
func (e *engine) commit(v []float64) {
	for c := range e.nl.Cells {
		if e.xVar[c] < 0 {
			continue
		}
		e.pl.X[c] = v[e.xVar[c]]
		e.pl.Y[c] = v[e.nx+e.yVar[c]] + e.yOff[c]
	}
}
