package global

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// randProblem builds a random netlist, placement and core for the parallel
// equality property tests: a mix of movable cells, a few fixed pads, and
// nets of varying degree (including high-degree buses that stress the
// sharded evaluator).
func randProblem(seed int64, nCells, nNets int) (*netlist.Netlist, *netlist.Placement, *geom.Core) {
	rng := rand.New(rand.NewSource(seed))
	nl := netlist.New(fmt.Sprintf("rand%d", seed))
	for i := 0; i < nCells; i++ {
		fixed := i%17 == 0
		w := 4 + float64(rng.Intn(4))*2
		nl.MustAddCell(fmt.Sprintf("c%d", i), "std", w, 8, fixed)
	}
	for i := 0; i < nNets; i++ {
		deg := 2 + rng.Intn(9)
		if i%13 == 0 {
			deg = 2 + rng.Intn(30) // occasional wide bus
		}
		ends := make([]netlist.Endpoint, 0, deg)
		for k := 0; k < deg; k++ {
			c := netlist.CellID(rng.Intn(nCells))
			ends = append(ends, netlist.Endpoint{
				Cell: c,
				Pin:  fmt.Sprintf("p%d_%d", i, k),
				DX:   float64(rng.Intn(4)),
				DY:   float64(rng.Intn(4)),
			})
		}
		nl.MustAddNet(fmt.Sprintf("n%d", i), 1, ends...)
	}
	core := geom.NewCore(geom.NewRect(0, 0, 400, 400), 8, 1)
	pl := netlist.NewPlacement(nl)
	for i := range nl.Cells {
		pl.X[i] = rng.Float64() * 380
		pl.Y[i] = rng.Float64() * 380
	}
	return nl, pl, core
}

// testEngine builds a fresh engine at γ=4 ready for eval, mirroring the
// state the solver sees mid-schedule.
func testEngine(nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core, o Options) *engine {
	e := newEngine(nl, pl, core, o)
	e.setGamma(4)
	return e
}

// evalAt runs one objective+gradient evaluation of a fresh engine with the
// given worker count and returns the objective and the gradient vector.
func evalAt(nl *netlist.Netlist, pl *netlist.Placement, core *geom.Core, workers int, lambda float64, noReuse bool) (float64, []float64, []float64) {
	e := testEngine(nl, pl, core, Options{Workers: workers})
	e.lambda = lambda
	v := make([]float64, e.nVars)
	e.initVars(v)
	grad := make([]float64, e.nVars)
	e.noReuse = noReuse
	f := e.eval(v, grad)
	return f, grad, v
}

// TestParallelGradientMatchesSerial is the property test behind the
// engine's determinism claim: across random netlists and worker counts, the
// objective and every gradient component of the parallel evaluation equal
// the serial evaluation bit-for-bit — with and without incremental reuse.
func TestParallelGradientMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		nCells := 60 + int(seed)*37
		nNets := 80 + int(seed)*53
		nl, pl, core := randProblem(seed, nCells, nNets)
		fSer, gSer, _ := evalAt(nl, pl, core, 1, 0.7, false)
		for _, workers := range []int{2, 3, 4, 8} {
			for _, noReuse := range []bool{false, true} {
				f, g, _ := evalAt(nl, pl, core, workers, 0.7, noReuse)
				if f != fSer {
					t.Fatalf("seed %d workers %d noReuse=%v: objective %v != serial %v",
						seed, workers, noReuse, f, fSer)
				}
				for i := range g {
					if g[i] != gSer[i] {
						t.Fatalf("seed %d workers %d noReuse=%v: grad[%d] %v != serial %v",
							seed, workers, noReuse, i, g[i], gSer[i])
					}
				}
			}
		}
	}
}

// TestDeltaReuseIsExact verifies an all-clean re-evaluation returns the
// bit-identical objective and gradient without recomputing any net, that
// reuse actually happens, and that a γ change dirties every net again.
func TestDeltaReuseIsExact(t *testing.T) {
	nl, pl, core := randProblem(42, 150, 200)
	e := testEngine(nl, pl, core, Options{Workers: 2})
	e.lambda = 0.5
	v := make([]float64, e.nVars)
	e.initVars(v)
	g1 := make([]float64, e.nVars)
	f1 := e.eval(v, g1)
	recomps := e.netRecomps.Load()
	if recomps == 0 {
		t.Fatal("cold evaluation recomputed no nets")
	}

	g2 := make([]float64, e.nVars)
	f2 := e.eval(v, g2)
	if f2 != f1 {
		t.Fatalf("reused objective %v != original %v", f2, f1)
	}
	for i := range g1 {
		if g2[i] != g1[i] {
			t.Fatalf("reused grad[%d] %v != original %v", i, g2[i], g1[i])
		}
	}
	if e.netReuses.Load() == 0 {
		t.Fatal("repeated evaluation at the same point reused no nets")
	}
	if e.netRecomps.Load() != recomps {
		t.Fatalf("repeated evaluation recomputed %d nets",
			e.netRecomps.Load()-recomps)
	}

	// γ change: every net must be re-evaluated.
	e.setGamma(2)
	g3 := make([]float64, e.nVars)
	e.eval(v, g3)
	if e.netRecomps.Load() != 2*recomps {
		t.Fatalf("γ change did not dirty every net: %d recomputes, want %d",
			e.netRecomps.Load(), 2*recomps)
	}
}

// TestPlaceWorkersBitIdentical runs the full global placement at several
// worker counts and requires bit-identical placements.
func TestPlaceWorkersBitIdentical(t *testing.T) {
	base := func(workers int) *netlist.Placement {
		nl, pl, core := randProblem(7, 260, 380)
		_, err := Place(nl, pl, core, Options{
			MaxOuterIters: 6, InnerIters: 20, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	ref := base(1)
	for _, workers := range []int{2, 4} {
		got := base(workers)
		for i := range ref.X {
			if got.X[i] != ref.X[i] || got.Y[i] != ref.Y[i] {
				t.Fatalf("workers=%d: cell %d at (%v,%v), workers=1 at (%v,%v)",
					workers, i, got.X[i], got.Y[i], ref.X[i], ref.Y[i])
			}
		}
	}
}

// TestEvalCancellationPoisons verifies an expired context inside the
// parallel kernels yields a NaN objective instead of a silently truncated
// one.
func TestEvalCancellationPoisons(t *testing.T) {
	nl, pl, core := randProblem(3, 80, 100)
	e := testEngine(nl, pl, core, Options{Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.ctx = ctx
	e.pot.SetParallel(e.pool, ctx)
	v := make([]float64, e.nVars)
	e.initVars(v)
	g := make([]float64, e.nVars)
	if f := e.eval(v, g); f == f { // NaN != NaN
		t.Fatalf("cancelled evaluation returned finite %v, want NaN", f)
	}
}

// BenchmarkEvalWorkers measures one full objective+gradient evaluation at
// several worker counts (the speedup here is what `make bench` sweeps at
// the whole-flow level).
func BenchmarkEvalWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			nl, pl, core := randProblem(9, 400, 600)
			e := testEngine(nl, pl, core, Options{Workers: workers})
			e.lambda = 0.5
			e.noReuse = true
			v := make([]float64, e.nVars)
			e.initVars(v)
			g := make([]float64, e.nVars)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.eval(v, g)
			}
		})
	}
}
