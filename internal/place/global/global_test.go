package global_test

import (
	"math"
	"testing"

	"repro/internal/datapath"
	"repro/internal/density"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place/global"
)

func testBench(t *testing.T) *gen.Benchmark {
	t.Helper()
	return gen.Generate(gen.Config{
		Name: "gp", Seed: 11, Bits: 8,
		Units:       []gen.UnitKind{gen.Adder, gen.MuxTree},
		RandomCells: 250,
		Pads:        12,
	})
}

func TestInitQuadraticPullsTowardPads(t *testing.T) {
	b := testBench(t)
	pl := b.Placement.Clone()
	global.InitQuadratic(b.Netlist, pl, b.Core)
	// All movables inside the core.
	for i := range b.Netlist.Cells {
		if b.Netlist.Cells[i].Fixed {
			continue
		}
		r := pl.CellRect(b.Netlist, netlist.CellID(i))
		if !b.Core.Region.ContainsRect(r) {
			t.Fatalf("cell %d outside core after init: %v", i, r)
		}
	}
	// The quadratic solution should beat the all-at-center start on HPWL.
	if got, init := pl.HPWL(b.Netlist), b.Placement.HPWL(b.Netlist); got >= init {
		t.Errorf("quadratic init HPWL %.0f not better than center start %.0f", got, init)
	}
}

func TestPlaceBaselineSpreads(t *testing.T) {
	b := testBench(t)
	pl := b.Placement.Clone()
	res, err := global.Place(b.Netlist, pl, b.Core, global.Options{
		MaxOuterIters: 20,
		InnerIters:    40,
	})
	if err != nil {
		t.Fatal(err)
	}
	grid := geom.NewGrid(b.Core.Region, 24, 24)
	ovStart := density.Overflow(b.Netlist, b.Placement, grid, 0.9)
	ovEnd := density.Overflow(b.Netlist, pl, grid, 0.9)
	if ovEnd > ovStart/2 {
		t.Errorf("placement did not spread: overflow %.3f -> %.3f", ovStart, ovEnd)
	}
	if res.HPWL <= 0 || math.IsNaN(res.HPWL) {
		t.Errorf("bad HPWL %g", res.HPWL)
	}
	// Everything inside the core.
	for i := range b.Netlist.Cells {
		if b.Netlist.Cells[i].Fixed {
			continue
		}
		r := pl.CellRect(b.Netlist, netlist.CellID(i))
		if !b.Core.Region.ContainsRect(r) {
			t.Fatalf("cell %d outside core: %v", i, r)
		}
	}
}

func TestPlaceStructureAwareAligns(t *testing.T) {
	b := testBench(t)
	ext := datapath.Extract(b.Netlist, datapath.DefaultOptions())
	if len(ext.Groups) == 0 {
		t.Fatal("no groups extracted")
	}
	groups := global.AlignGroupsFromExtraction(ext)

	base := b.Placement.Clone()
	resBase, err := global.Place(b.Netlist, base, b.Core, global.Options{
		MaxOuterIters: 20, InnerIters: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	sa := b.Placement.Clone()
	resSA, err := global.Place(b.Netlist, sa, b.Core, global.Options{
		MaxOuterIters: 20, InnerIters: 40, Groups: groups,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline ignores groups, so score its result with the same groups.
	cx := make([]float64, b.Netlist.NumCells())
	cy := make([]float64, b.Netlist.NumCells())
	for i := range b.Netlist.Cells {
		cx[i] = base.X[i] + b.Netlist.Cells[i].W/2
		cy[i] = base.Y[i] + b.Netlist.Cells[i].H/2
	}
	baseAlign := global.AlignmentScore(groups, b.Core.RowH(), cx, cy)
	if resSA.AlignRMS >= baseAlign {
		t.Errorf("structure-aware alignment %.3f not better than baseline %.3f",
			resSA.AlignRMS, baseAlign)
	}
	// Structure-aware wirelength should stay in the same ballpark (< 1.5x).
	if resSA.HPWL > 1.5*resBase.HPWL {
		t.Errorf("structure-aware HPWL %.0f blew up vs baseline %.0f", resSA.HPWL, resBase.HPWL)
	}
}

func TestPlaceTraceAndModels(t *testing.T) {
	b := testBench(t)
	var traces []global.TracePoint
	pl := b.Placement.Clone()
	_, err := global.Place(b.Netlist, pl, b.Core, global.Options{
		MaxOuterIters: 6, InnerIters: 15, WLModel: "lse",
		Trace: func(tp global.TracePoint) { traces = append(traces, tp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("no trace points")
	}
	for _, tp := range traces {
		if math.IsNaN(tp.HPWL) || math.IsNaN(tp.Overflow) {
			t.Fatalf("NaN in trace: %+v", tp)
		}
	}
	// Unknown model rejected.
	if _, err := global.Place(b.Netlist, pl, b.Core, global.Options{WLModel: "bogus"}); err == nil {
		t.Error("bogus model accepted")
	}
}

func TestAlignmentScoreZeroForPerfectArray(t *testing.T) {
	nl := netlist.New("a")
	var cols [][]netlist.CellID
	col := make([]netlist.CellID, 4)
	for b := 0; b < 4; b++ {
		col[b] = nl.MustAddCell(string(rune('a'+b)), "DFF", 4, 10, false)
	}
	cols = append(cols, col)
	groups := []global.AlignGroup{{Cols: cols}}
	cx := []float64{5, 5, 5, 5}
	cy := []float64{5, 15, 25, 35} // pitch 10
	if got := global.AlignmentScore(groups, 10, cx, cy); got != 0 {
		t.Errorf("perfect array score = %g, want 0", got)
	}
	cy[2] = 28 // misalign one bit
	if got := global.AlignmentScore(groups, 10, cx, cy); got <= 0 {
		t.Errorf("misaligned array score = %g, want > 0", got)
	}
}
