package global

import (
	"sort"

	"repro/internal/netlist"
)

// chainOrder computes a 1-D ordering of a group's columns that follows the
// datapath's stage connectivity: start from a chain end (the column with the
// weakest total coupling) and repeatedly append the unplaced column most
// strongly connected to the one just placed. Columns cannot tunnel through
// each other during continuous optimization — the density term is a
// barrier — so their *initial* left-to-right order largely decides the final
// stage order, and a connectivity-consistent initial order is the difference
// between stage buses of one column pitch and stage buses spanning the core.
func chainOrder(nl *netlist.Netlist, g AlignGroup, maxFanout int) []int {
	n := len(g.Cols)
	if n <= 2 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	// Map cells to their column.
	colOf := make(map[netlist.CellID]int, n*len(g.Cols[0]))
	for ci, col := range g.Cols {
		for _, c := range col {
			colOf[c] = ci
		}
	}
	// Column-pair coupling: number of nets joining them.
	w := make([]map[int]float64, n)
	for i := range w {
		w[i] = make(map[int]float64)
	}
	seenNet := make(map[netlist.NetID]bool)
	for ci, col := range g.Cols {
		_ = ci
		for _, c := range col {
			for _, pid := range nl.Cell(c).Pins {
				ni := nl.Pin(pid).Net
				if seenNet[ni] {
					continue
				}
				seenNet[ni] = true
				net := nl.Net(ni)
				if net.Degree() > maxFanout {
					continue
				}
				var touched []int
				seenCol := map[int]bool{}
				for _, pid2 := range net.Pins {
					cell := nl.Pin(pid2).Cell
					if cell == netlist.NoCell {
						continue
					}
					if tc, ok := colOf[cell]; ok && !seenCol[tc] {
						seenCol[tc] = true
						touched = append(touched, tc)
					}
				}
				for a := 0; a < len(touched); a++ {
					for b := a + 1; b < len(touched); b++ {
						w[touched[a]][touched[b]]++
						w[touched[b]][touched[a]]++
					}
				}
			}
		}
	}

	// Start from the weakest-coupled column (a chain end). Sum couplings in
	// sorted key order: float addition is not associative, so accumulating
	// in map order would make the totals — and with them the start-column
	// choice — vary in the last ulp from run to run.
	totals := make([]float64, n)
	for i := range w {
		keys := make([]int, 0, len(w[i]))
		for c := range w[i] {
			keys = append(keys, c)
		}
		sort.Ints(keys)
		for _, c := range keys {
			totals[i] += w[i][c]
		}
	}
	start := 0
	for i := 1; i < n; i++ {
		if totals[i] < totals[start] {
			start = i
		}
	}

	order := make([]int, 0, n)
	used := make([]bool, n)
	order = append(order, start)
	used[start] = true
	for len(order) < n {
		last := order[len(order)-1]
		// Argmax with an index tie break: map iteration order is randomized,
		// and equal-coupling ties are common in regular datapaths, so a plain
		// range argmax here made the whole placement nondeterministic.
		best, bestW := -1, -1.0
		//placelint:ignore maporder argmax with the full (weight, index) tie break added in the PR 2 determinism fix
		for c, v := range w[last] {
			if used[c] {
				continue
			}
			//placelint:ignore floateq coupling counts are small integer sums stored in float64; == is exact tie detection
			if v > bestW || (v == bestW && (best < 0 || c < best)) {
				best, bestW = c, v
			}
		}
		if best < 0 {
			// Disconnected from the tail: attach the unused column with the
			// strongest coupling to ANY placed column (deterministic tie
			// break by index).
			type cand struct {
				col int
				w   float64
			}
			var cands []cand
			for c := 0; c < n; c++ {
				if used[c] {
					continue
				}
				cw := 0.0
				for _, p := range order {
					cw += w[c][p]
				}
				cands = append(cands, cand{c, cw})
			}
			sort.Slice(cands, func(a, b int) bool {
				//placelint:ignore floateq comparator tie detection; equal sums fall through to the index key for a total order
				if cands[a].w != cands[b].w {
					return cands[a].w > cands[b].w
				}
				return cands[a].col < cands[b].col
			})
			best = cands[0].col
		}
		order = append(order, best)
		used[best] = true
	}
	return order
}
