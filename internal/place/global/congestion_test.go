package global

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/place/congestion"
)

// congPlace runs a full global placement over the shared random problem with
// the given options and returns the placement and result.
func congPlace(t *testing.T, o Options) (*netlist.Placement, Result) {
	t.Helper()
	nl, pl, core := randProblem(11, 240, 360)
	res, err := Place(nl, pl, core, o)
	if err != nil {
		t.Fatal(err)
	}
	return pl, res
}

// TestPlaceCongestionWorkersBitIdentical is the feedback loop's determinism
// gate: with congestion on and actually firing, full global placements at
// workers 1/2/4 must be bit-identical, and the controller stats must agree.
func TestPlaceCongestionWorkersBitIdentical(t *testing.T) {
	opts := func(workers int) Options {
		return Options{
			MaxOuterIters: 8, InnerIters: 20, Workers: workers,
			Congestion: congestion.Options{
				Enable:          true,
				SnapshotOnEntry: true,
				// Open the maturity gate and drop the RUDY capacity so the
				// small random design is unambiguously congested — the test
				// is about determinism of the engaged loop, not tuning.
				MaxDensOverflow: 100,
				Capacity:        0.02,
			},
		}
	}
	refPl, refRes := congPlace(t, opts(1))
	st := refRes.Congestion
	if st == nil {
		t.Fatal("congestion enabled but Result.Congestion is nil")
	}
	if st.Snapshots == 0 {
		t.Fatal("congestion loop never fired")
	}
	if st.InflatedCells == 0 {
		t.Fatal("congested design inflated no cells")
	}
	for _, workers := range []int{2, 4} {
		gotPl, gotRes := congPlace(t, opts(workers))
		for i := range refPl.X {
			if gotPl.X[i] != refPl.X[i] || gotPl.Y[i] != refPl.Y[i] {
				t.Fatalf("workers=%d: cell %d at (%v,%v), workers=1 at (%v,%v)",
					workers, i, gotPl.X[i], gotPl.Y[i], refPl.X[i], refPl.Y[i])
			}
		}
		gst := gotRes.Congestion
		if gst.Snapshots != st.Snapshots || gst.Applied != st.Applied ||
			gst.InflatedCells != st.InflatedCells || gst.MaxInflation != st.MaxInflation {
			t.Fatalf("workers=%d: congestion stats %+v != serial %+v", workers, gst, st)
		}
	}
}

// TestPlaceCongestionGatedIsInert checks the hook itself perturbs nothing: a
// controller that exists but whose maturity gate never opens must leave the
// placement bit-identical to a run with the loop off entirely.
func TestPlaceCongestionGatedIsInert(t *testing.T) {
	base := Options{MaxOuterIters: 6, InnerIters: 20}
	refPl, refRes := congPlace(t, base)
	if refRes.Congestion != nil {
		t.Fatal("congestion off but Result.Congestion set")
	}

	gated := base
	// MaxDensOverflow this small never opens: the schedule stays untouched.
	gated.Congestion = congestion.Options{Enable: true, MaxDensOverflow: 1e-12}
	gotPl, gotRes := congPlace(t, gated)
	if gotRes.Congestion == nil {
		t.Fatal("congestion enabled but Result.Congestion is nil")
	}
	if gotRes.Congestion.Snapshots != 0 {
		t.Fatalf("gated controller still snapshotted %d times", gotRes.Congestion.Snapshots)
	}
	for i := range refPl.X {
		if gotPl.X[i] != refPl.X[i] || gotPl.Y[i] != refPl.Y[i] {
			t.Fatalf("gated congestion moved cell %d: (%v,%v) != (%v,%v)",
				i, gotPl.X[i], gotPl.Y[i], refPl.X[i], refPl.Y[i])
		}
	}
}
