// Package global implements analytical global placement: minimize smooth
// wirelength plus a λ-scheduled density penalty — and, in structure-aware
// mode, a quadratic alignment energy that pulls every extracted datapath
// group into a bit-aligned array — using nonlinear conjugate gradients over
// the movable-cell coordinates. A bound-to-bound quadratic solve (sparse
// Jacobi-PCG) provides the initial placement.
package global

import (
	"math"

	"repro/internal/datapath"
	"repro/internal/netlist"
)

// AlignGroup is the placement view of one extracted datapath group: Cols[s]
// lists the cells of column s, with Cols[s][b] on bit (row) b.
type AlignGroup struct {
	Cols [][]netlist.CellID
}

// AlignGroupsFromExtraction converts extractor output.
func AlignGroupsFromExtraction(ext *datapath.Extraction) []AlignGroup {
	groups := make([]AlignGroup, 0, len(ext.Groups))
	for _, g := range ext.Groups {
		groups = append(groups, AlignGroup{Cols: g.Columns})
	}
	return groups
}

// alignEnergy computes the alignment energy of the groups at cell centers
// (cx, cy) and accumulates gradients:
//
//	A = Σ_G [ Σ_cols Σ_c (cx_c − μ_col)² + Σ_c (cy_c − (μ_G + bit·pitch))² ]
//
// μ_col is the column's mean x; μ_G is the group's mean bit-zero-referred y.
// Means are recomputed per evaluation and treated as constants in the
// gradient; the within-group gradient then sums to zero, so alignment moves
// cells relative to their array without dragging the array itself.
func alignEnergy(groups []AlignGroup, pitch float64, cx, cy, gx, gy []float64) float64 {
	total := 0.0
	for gi := range groups {
		g := &groups[gi]
		if len(g.Cols) == 0 {
			continue
		}
		// Column x-alignment.
		for _, col := range g.Cols {
			mu := 0.0
			for _, c := range col {
				mu += cx[c]
			}
			mu /= float64(len(col))
			for _, c := range col {
				d := cx[c] - mu
				total += d * d
				if gx != nil {
					gx[c] += 2 * d
				}
			}
		}
		// Row y-alignment at the row pitch.
		muY := 0.0
		n := 0
		for _, col := range g.Cols {
			for b, c := range col {
				muY += cy[c] - float64(b)*pitch
				n++
			}
		}
		if n == 0 {
			continue
		}
		muY /= float64(n)
		for _, col := range g.Cols {
			for b, c := range col {
				d := cy[c] - (muY + float64(b)*pitch)
				total += d * d
				if gy != nil {
					gy[c] += 2 * d
				}
			}
		}
	}
	return total
}

// AlignmentScore reports the RMS misalignment of the groups at a placement
// (cell centers): 0 means perfectly bit-aligned arrays. It is the quantity
// the convergence figure traces.
func AlignmentScore(groups []AlignGroup, pitch float64, cx, cy []float64) float64 {
	n := 0
	for _, g := range groups {
		for _, col := range g.Cols {
			n += len(col)
		}
	}
	if n == 0 {
		return 0
	}
	e := alignEnergy(groups, pitch, cx, cy, nil, nil)
	return math.Sqrt(e / float64(n))
}
