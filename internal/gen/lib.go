// Package gen generates synthetic datapath-intensive benchmarks with ground
// truth. It substitutes for the proprietary industrial benchmarks of the
// original evaluation: each benchmark embeds bit-sliced datapath units
// (adders, mux trees, shifters, register banks) in a sea of Rent-style
// random logic, records exact slice labels for extraction scoring, and
// emits the row structure and IO pads the placement flow needs.
package gen

import (
	"fmt"

	"repro/internal/netlist"
)

// RowH is the uniform standard-cell row height used by generated designs.
const RowH = 10.0

// masterPin describes one pin of a library master.
type masterPin struct {
	name string
	dir  netlist.Dir
}

// master is a library cell class.
type master struct {
	typ  string
	w    float64
	pins []masterPin
}

// The compact standard-cell library of generated designs. Pin offsets are
// synthesized uniformly along the cell edges at netlist build time.
var (
	masterINV  = master{"INV", 2, []masterPin{{"A", netlist.DirInput}, {"Y", netlist.DirOutput}}}
	masterBUF  = master{"BUF", 2, []masterPin{{"A", netlist.DirInput}, {"Y", netlist.DirOutput}}}
	masterNAND = master{"NAND2", 3, []masterPin{{"A", netlist.DirInput}, {"B", netlist.DirInput}, {"Y", netlist.DirOutput}}}
	masterNOR  = master{"NOR2", 3, []masterPin{{"A", netlist.DirInput}, {"B", netlist.DirInput}, {"Y", netlist.DirOutput}}}
	masterAND  = master{"AND2", 3, []masterPin{{"A", netlist.DirInput}, {"B", netlist.DirInput}, {"Y", netlist.DirOutput}}}
	masterOR   = master{"OR2", 3, []masterPin{{"A", netlist.DirInput}, {"B", netlist.DirInput}, {"Y", netlist.DirOutput}}}
	masterXOR  = master{"XOR2", 4, []masterPin{{"A", netlist.DirInput}, {"B", netlist.DirInput}, {"Y", netlist.DirOutput}}}
	masterMUX  = master{"MUX2", 4, []masterPin{{"A", netlist.DirInput}, {"B", netlist.DirInput}, {"S", netlist.DirInput}, {"Y", netlist.DirOutput}}}
	masterDFF  = master{"DFF", 6, []masterPin{{"D", netlist.DirInput}, {"CK", netlist.DirInput}, {"Q", netlist.DirOutput}}}
	masterPAD  = master{"PAD", 4, []masterPin{{"P", netlist.DirInout}}}
)

// randomMasters is the pool used for random-logic cells.
var randomMasters = []master{
	masterINV, masterBUF, masterNAND, masterNOR, masterAND, masterOR, masterXOR, masterMUX, masterDFF,
}

// pinOffset returns the synthesized offset of pin k of n pins on a master of
// width w: inputs spaced along the left/bottom edge, outputs on the right.
func pinOffset(m master, k int) (dx, dy float64) {
	p := m.pins[k]
	if p.dir == netlist.DirOutput {
		return m.w, RowH / 2
	}
	// Inputs distributed along the left edge.
	nIn := 0
	idx := 0
	for i, q := range m.pins {
		if q.dir != netlist.DirOutput {
			if i == k {
				idx = nIn
			}
			nIn++
		}
	}
	return 0, RowH * float64(idx+1) / float64(nIn+1)
}

// builder accumulates a benchmark under construction.
type builder struct {
	nl        *netlist.Netlist
	truth     []sliceLabel
	group     int // next ground-truth group id
	cellCount int
	netCount  int
	scramble  bool
}

type sliceLabel struct {
	group, bit int
}

func newBuilder(name string, scramble bool) *builder {
	return &builder{nl: netlist.New(name), scramble: scramble}
}

// addCell instantiates a master; group/bit < 0 marks random logic.
func (b *builder) addCell(m master, group, bit int) netlist.CellID {
	name := fmt.Sprintf("u%d", b.cellCount)
	b.cellCount++
	id := b.nl.MustAddCell(name, m.typ, m.w, RowH, false)
	b.truth = append(b.truth, sliceLabel{group, bit})
	return id
}

// addPad instantiates a fixed IO pad.
func (b *builder) addPad() netlist.CellID {
	name := fmt.Sprintf("p%d", b.cellCount)
	b.cellCount++
	id := b.nl.MustAddCell(name, masterPAD.typ, masterPAD.w, masterPAD.w, true)
	b.truth = append(b.truth, sliceLabel{-1, -1})
	return id
}

// conn is one endpoint of a net under construction: cell + pin index into
// its master's pin list.
type conn struct {
	cell netlist.CellID
	m    master
	pin  int
}

// net wires the given endpoints with a (possibly scrambled) name.
func (b *builder) net(name string, weight float64, conns ...conn) netlist.NetID {
	if b.scramble || name == "" {
		name = fmt.Sprintf("n%d", b.netCount)
	}
	b.netCount++
	ends := make([]netlist.Endpoint, 0, len(conns))
	for _, c := range conns {
		p := c.m.pins[c.pin]
		dx, dy := pinOffset(c.m, c.pin)
		ends = append(ends, netlist.Endpoint{
			Cell: c.cell, Pin: p.name, Dir: p.dir, DX: dx, DY: dy,
		})
	}
	return b.nl.MustAddNet(name, weight, ends...)
}

// pinIndex returns the index of the named pin in master m; it panics on
// unknown names (generator bugs).
func pinIndex(m master, name string) int {
	for i, p := range m.pins {
		if p.name == name {
			return i
		}
	}
	panic(fmt.Sprintf("gen: master %s has no pin %q", m.typ, name))
}

// on is a convenience constructor for conn.
func on(cell netlist.CellID, m master, pin string) conn {
	return conn{cell: cell, m: m, pin: pinIndex(m, pin)}
}
