package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/datapath"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// Config describes a benchmark to generate.
type Config struct {
	Name        string
	Seed        int64
	Bits        int        // datapath width
	Units       []UnitKind // datapath units to instantiate, in order
	RandomCells int        // random-logic cell count
	Pads        int        // fixed IO pads (default 16)
	Whitespace  float64    // core area / total cell area (default 2.0)
	Scramble    bool       // strip bus indices from net names
	ExtraSinks  float64    // mean extra sinks per random net (default 1.2)
	ClockWeight float64    // net weight of the clock (default 0.25)
}

func (c *Config) fillDefaults() {
	if c.Bits <= 0 {
		c.Bits = 16
	}
	if c.Pads <= 0 {
		c.Pads = 16
	}
	if c.Whitespace <= 1 {
		c.Whitespace = 2.0
	}
	if c.ExtraSinks <= 0 {
		c.ExtraSinks = 1.2
	}
	if c.ClockWeight <= 0 {
		c.ClockWeight = 0.25
	}
	if c.Name == "" {
		c.Name = "bench"
	}
}

// Benchmark is a generated design ready for placement and extraction
// scoring.
type Benchmark struct {
	Config    Config
	Netlist   *netlist.Netlist
	Core      *geom.Core
	Placement *netlist.Placement // pads placed; movables at the core center
	Truth     datapath.Labels    // ground-truth slice labels
	// DatapathCells counts cells belonging to ground-truth slices.
	DatapathCells int
}

// DatapathFraction returns the fraction of movable cells inside ground-truth
// datapath slices.
func (b *Benchmark) DatapathFraction() float64 {
	mov := b.Netlist.NumMovable()
	if mov == 0 {
		return 0
	}
	return float64(b.DatapathCells) / float64(mov)
}

// Generate builds a benchmark from cfg. Generation is deterministic in
// cfg.Seed.
func Generate(cfg Config) *Benchmark {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := newBuilder(cfg.Name, cfg.Scramble)

	var clkSinks []conn
	var openIn, openOut []conn

	// Datapath units.
	units := make([]unit, 0, len(cfg.Units))
	for uid, kind := range cfg.Units {
		units = append(units, b.build(kind, uid, cfg.Bits, &clkSinks))
	}

	// Inter-unit buses: chain unit k's bit-b outputs into unit k+1's bit-b
	// inputs. This is what makes a design *datapath-intensive*: most
	// connectivity flows bit-parallel between stages, exactly the
	// structure whose alignment the placer exploits. Control pins and
	// leftover bit pins join the random sea below.
	inUsed := make([][]bool, len(units))
	outUsed := make([][]bool, len(units))
	for k := range units {
		inUsed[k] = make([]bool, len(units[k].openIn))
		outUsed[k] = make([]bool, len(units[k].openOut))
	}
	busID := 0
	for k := 0; k+1 < len(units); k++ {
		prev, cur := &units[k], &units[k+1]
		for bit := 0; bit < cfg.Bits; bit++ {
			var outs, ins []int
			for i, ob := range prev.outBit {
				if ob == bit && !outUsed[k][i] {
					outs = append(outs, i)
				}
			}
			for i, ib := range cur.inBit {
				if ib == bit && !inUsed[k+1][i] {
					ins = append(ins, i)
				}
			}
			// Each output drives up to two next-stage inputs of its bit.
			for _, oi := range outs {
				if len(ins) == 0 {
					break
				}
				n := 1
				if len(ins) > len(outs) && len(ins) >= 2 {
					n = 2
				}
				if n > len(ins) {
					n = len(ins)
				}
				ends := []conn{prev.openOut[oi]}
				for _, ii := range ins[:n] {
					ends = append(ends, cur.openIn[ii])
					inUsed[k+1][ii] = true
				}
				ins = ins[n:]
				outUsed[k][oi] = true
				b.net(fmt.Sprintf("ubus%d[%d]", busID, bit), 1, ends...)
			}
		}
		busID++
	}
	for k := range units {
		for i, c := range units[k].openIn {
			if !inUsed[k][i] {
				openIn = append(openIn, c)
			}
		}
		for i, c := range units[k].openOut {
			if !outUsed[k][i] {
				openOut = append(openOut, c)
			}
		}
	}

	// Random-logic cells: every input pin joins the open-input pool, every
	// output pin the driver pool, so each pin connects exactly once.
	type drv struct {
		c conn
	}
	var drivers []drv
	for i := 0; i < cfg.RandomCells; i++ {
		m := randomMasters[rng.Intn(len(randomMasters))]
		id := b.addCell(m, -1, -1)
		for pi, p := range m.pins {
			switch p.dir {
			case netlist.DirOutput:
				drivers = append(drivers, drv{conn{id, m, pi}})
			case netlist.DirInput:
				if m.typ == "DFF" && p.name == "CK" {
					clkSinks = append(clkSinks, conn{id, m, pi})
					continue
				}
				openIn = append(openIn, conn{id, m, pi})
			}
		}
	}
	// Unit outputs behave as extra drivers.
	for _, c := range openOut {
		drivers = append(drivers, drv{c})
	}

	// Pads: fixed IO ring.
	pads := make([]netlist.CellID, cfg.Pads)
	for i := range pads {
		pads[i] = b.addPad()
	}

	// Wire the sea: shuffle inputs, hand geometric batches to each driver.
	rng.Shuffle(len(openIn), func(i, j int) { openIn[i], openIn[j] = openIn[j], openIn[i] })
	rng.Shuffle(len(drivers), func(i, j int) { drivers[i], drivers[j] = drivers[j], drivers[i] })

	inAt := 0
	takeSinks := func(mean float64) []conn {
		n := 1
		for rng.Float64() < mean/(mean+1) && n < 6 {
			n++
		}
		if inAt+n > len(openIn) {
			n = len(openIn) - inAt
		}
		s := openIn[inAt : inAt+n]
		inAt += n
		return s
	}
	netID := 0
	for _, d := range drivers {
		sinks := takeSinks(cfg.ExtraSinks)
		ends := append([]conn{d.c}, sinks...)
		if len(ends) < 2 {
			// Leave danglers for the pads below; a driver-only net carries
			// no placement information.
			if inAt >= len(openIn) {
				// Tie the lonely driver to a pad so every pin is wired.
				pad := pads[netID%len(pads)]
				ends = append(ends, on(pad, masterPAD, "P"))
			}
		}
		b.net(fmt.Sprintf("r%d", netID), 1, ends...)
		netID++
	}
	// Remaining inputs hang off pads in small batches.
	for inAt < len(openIn) {
		pad := pads[netID%len(pads)]
		n := 1 + rng.Intn(3)
		if inAt+n > len(openIn) {
			n = len(openIn) - inAt
		}
		ends := append([]conn{on(pad, masterPAD, "P")}, openIn[inAt:inAt+n]...)
		inAt += n
		b.net(fmt.Sprintf("r%d", netID), 1, ends...)
		netID++
	}

	// Clock tree root.
	if len(clkSinks) > 0 {
		clkbuf := b.addCell(masterBUF, -1, -1)
		ends := append([]conn{on(clkbuf, masterBUF, "Y")}, clkSinks...)
		b.net("clk", cfg.ClockWeight, ends...)
		// The buffer's input hangs off pad 0.
		b.net("clk_in", 1, on(pads[0], masterPAD, "P"), on(clkbuf, masterBUF, "A"))
	}

	nl := b.nl
	if err := nl.Validate(); err != nil {
		panic(fmt.Sprintf("gen: generated invalid netlist: %v", err))
	}

	// Core region sized from total movable area.
	area := nl.MovableArea() * cfg.Whitespace
	w := math.Sqrt(area)
	nRows := int(math.Ceil(area / (w * RowH)))
	if nRows < 1 {
		nRows = 1
	}
	w = math.Ceil(area / (float64(nRows) * RowH))
	core := geom.NewCore(geom.NewRect(0, 0, w, float64(nRows)*RowH), RowH, 1)

	// Pads on a ring just outside the core; movables start at the center.
	pl := netlist.NewPlacement(nl)
	placePadRing(nl, pl, pads, core.Region)
	center := core.Region.Center()
	spread := math.Min(core.Region.W(), core.Region.H()) * 0.05
	for i := range nl.Cells {
		if nl.Cells[i].Fixed {
			continue
		}
		pl.X[i] = center.X + (rng.Float64()-0.5)*spread
		pl.Y[i] = center.Y + (rng.Float64()-0.5)*spread
	}

	// Ground truth labels. The inter-unit buses chain every unit
	// bit-preservingly, so the whole datapath is one physical array: bit i
	// of every unit belongs to the same slice (the layout a designer would
	// draw puts them in one row). Collapse the per-unit group ids into one
	// chain group accordingly.
	truth := datapath.NewLabels(nl.NumCells())
	dpCells := 0
	for c, lab := range b.truth {
		if lab.group >= 0 {
			truth.Group[c] = 0
			truth.Bit[c] = lab.bit
			dpCells++
		}
	}

	return &Benchmark{
		Config:        cfg,
		Netlist:       nl,
		Core:          core,
		Placement:     pl,
		Truth:         truth,
		DatapathCells: dpCells,
	}
}

// placePadRing distributes pads evenly around the outside of region.
func placePadRing(nl *netlist.Netlist, pl *netlist.Placement, pads []netlist.CellID, region geom.Rect) {
	n := len(pads)
	if n == 0 {
		return
	}
	perim := 2 * (region.W() + region.H())
	for i, id := range pads {
		t := float64(i) / float64(n) * perim
		cell := nl.Cell(id)
		var x, y float64
		switch {
		case t < region.W(): // bottom edge
			x, y = region.Lo.X+t, region.Lo.Y-cell.H
		case t < region.W()+region.H(): // right edge
			x, y = region.Hi.X, region.Lo.Y+(t-region.W())
		case t < 2*region.W()+region.H(): // top edge
			x, y = region.Hi.X-(t-region.W()-region.H()), region.Hi.Y
		default: // left edge
			x, y = region.Lo.X-cell.W, region.Hi.Y-(t-2*region.W()-region.H())
		}
		pl.X[id] = x
		pl.Y[id] = y
	}
}

// Suite returns the dp01..dp08 benchmark suite used throughout the
// evaluation: increasing size and datapath fraction (≈20% → ≈75%), fixed
// seeds. The high-fraction designs are the "datapath-intensive" regime of
// the paper's title; the low-fraction ones anchor the crossover.
func Suite() []Config {
	return []Config{
		{Name: "dp01", Seed: 101, Bits: 8, Units: []UnitKind{Adder, MuxTree}, RandomCells: 400},
		{Name: "dp02", Seed: 102, Bits: 16, Units: []UnitKind{Adder, Shifter}, RandomCells: 600},
		{Name: "dp03", Seed: 103, Bits: 16, Units: []UnitKind{Adder, MuxTree, RegBank}, RandomCells: 900},
		{Name: "dp04", Seed: 104, Bits: 16, Units: []UnitKind{Adder, MuxTree, RegBank, Shifter, Adder}, RandomCells: 500},
		{Name: "dp05", Seed: 105, Bits: 16, Units: []UnitKind{Adder, MuxTree, RegBank, Shifter, Adder, RegBank, MuxTree}, RandomCells: 250},
		{Name: "dp06", Seed: 106, Bits: 32, Units: []UnitKind{Adder, Adder, MuxTree, RegBank}, RandomCells: 2400},
		{Name: "dp07", Seed: 107, Bits: 32, Units: []UnitKind{Adder, MuxTree, Shifter, RegBank, Adder, MuxTree}, RandomCells: 2000},
		{Name: "dp08", Seed: 108, Bits: 64, Units: []UnitKind{Adder, MuxTree, Shifter, RegBank, Adder}, RandomCells: 3000},
	}
}
