package gen

import (
	"testing"

	"repro/internal/datapath"
	"repro/internal/netlist"
)

func smallConfig() Config {
	return Config{
		Name:        "t",
		Seed:        7,
		Bits:        8,
		Units:       []UnitKind{Adder, MuxTree, Shifter, RegBank},
		RandomCells: 300,
		Pads:        8,
	}
}

func TestGenerateValidNetlist(t *testing.T) {
	b := Generate(smallConfig())
	if err := b.Netlist.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Netlist.NumCells() < 300 {
		t.Errorf("too few cells: %d", b.Netlist.NumCells())
	}
	if b.Netlist.NumNets() == 0 || b.Netlist.NumPins() == 0 {
		t.Error("no nets/pins")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if a.Netlist.NumCells() != b.Netlist.NumCells() ||
		a.Netlist.NumNets() != b.Netlist.NumNets() ||
		a.Netlist.NumPins() != b.Netlist.NumPins() {
		t.Fatal("same seed produced different designs")
	}
	for i := range a.Placement.X {
		if a.Placement.X[i] != b.Placement.X[i] {
			t.Fatal("same seed produced different placements")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg1 := smallConfig()
	cfg2 := smallConfig()
	cfg2.Seed = 8
	a, b := Generate(cfg1), Generate(cfg2)
	same := true
	for i := range a.Placement.X {
		if a.Placement.X[i] != b.Placement.X[i] {
			same = false
			break
		}
	}
	// Topology may match in counts, but random wiring must differ; compare
	// net degrees as a cheap fingerprint.
	if same {
		diff := false
		for i := 0; i < a.Netlist.NumNets() && i < b.Netlist.NumNets(); i++ {
			if a.Netlist.Net(netlist.NetID(i)).Degree() != b.Netlist.Net(netlist.NetID(i)).Degree() {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical designs")
		}
	}
}

func TestEveryInputPinWiredOnce(t *testing.T) {
	b := Generate(smallConfig())
	nl := b.Netlist
	// Every movable cell must have as many pins as its master defines
	// (each pin wired exactly once); masters are identified by Type.
	wantPins := map[string]int{
		"INV": 2, "BUF": 2, "NAND2": 3, "NOR2": 3, "AND2": 3, "OR2": 3,
		"XOR2": 3, "MUX2": 4, "DFF": 3,
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Fixed {
			continue
		}
		if want, ok := wantPins[c.Type]; ok {
			if len(c.Pins) != want {
				t.Fatalf("cell %s (%s) has %d pins, want %d", c.Name, c.Type, len(c.Pins), want)
			}
		}
		// No pin name may repeat on a movable cell.
		seen := map[string]bool{}
		for _, pid := range c.Pins {
			n := nl.Pin(pid).Name
			if seen[n] {
				t.Fatalf("cell %s has duplicate pin %q", c.Name, n)
			}
			seen[n] = true
		}
	}
}

func TestDatapathFraction(t *testing.T) {
	b := Generate(smallConfig())
	f := b.DatapathFraction()
	if f <= 0 || f >= 1 {
		t.Errorf("datapath fraction = %g", f)
	}
	// No units → zero fraction.
	cfg := smallConfig()
	cfg.Units = nil
	if got := Generate(cfg).DatapathFraction(); got != 0 {
		t.Errorf("fraction without units = %g", got)
	}
}

func TestPadsFixedAndOutsideCore(t *testing.T) {
	b := Generate(smallConfig())
	nl, pl := b.Netlist, b.Placement
	nPads := 0
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed {
			continue
		}
		nPads++
		r := pl.CellRect(nl, netlist.CellID(i))
		if !b.Core.Region.Intersect(r).Empty() {
			t.Errorf("pad %s overlaps the core", nl.Cells[i].Name)
		}
	}
	if nPads != 8 {
		t.Errorf("pads = %d, want 8", nPads)
	}
}

func TestMovablesStartInsideCore(t *testing.T) {
	b := Generate(smallConfig())
	for i := range b.Netlist.Cells {
		if b.Netlist.Cells[i].Fixed {
			continue
		}
		p := b.Placement.Loc(netlist.CellID(i))
		if !b.Core.Region.Contains(p) {
			t.Fatalf("movable cell %d starts at %v outside core %v", i, p, b.Core.Region)
		}
	}
}

func TestCoreAreaMatchesWhitespace(t *testing.T) {
	b := Generate(smallConfig())
	ratio := b.Core.Area() / b.Netlist.MovableArea()
	if ratio < 1.9 || ratio > 2.3 {
		t.Errorf("core/cell area ratio = %g, want ≈2.0", ratio)
	}
}

func TestGroundTruthShape(t *testing.T) {
	b := Generate(smallConfig())
	// Each labeled group must have cells in >= Bits slices.
	slices := map[[2]int]int{}
	for c, g := range b.Truth.Group {
		if g >= 0 {
			slices[[2]int{g, b.Truth.Bit[c]}]++
		}
	}
	if len(slices) == 0 {
		t.Fatal("no ground-truth slices")
	}
	// The bus chain makes the whole datapath one physical array.
	groups := map[int]bool{}
	for k := range slices {
		groups[k[0]] = true
	}
	if len(groups) != 1 {
		t.Errorf("ground-truth groups = %d, want 1 (bus-chained units)", len(groups))
	}
}

// Extraction on generated benchmarks: the integration test tying the
// generator and extractor together. Named mode must recover most slices.
func TestExtractionOnGeneratedNamed(t *testing.T) {
	b := Generate(smallConfig())
	ext := datapath.Extract(b.Netlist, datapath.DefaultOptions())
	score := datapath.Compare(b.Truth, ext.Labels())
	if score.Recall < 0.95 {
		t.Errorf("named-mode recall = %.3f, want >= 0.95 (score %+v)", score.Recall, score)
	}
	if score.Precision < 0.95 {
		t.Errorf("named-mode precision = %.3f, want >= 0.95", score.Precision)
	}
}

func TestExtractionOnGeneratedScrambled(t *testing.T) {
	cfg := smallConfig()
	cfg.Scramble = true
	b := Generate(cfg)
	opt := datapath.DefaultOptions()
	opt.UseNames = false
	ext := datapath.Extract(b.Netlist, opt)
	score := datapath.Compare(b.Truth, ext.Labels())
	if score.Recall < 0.8 {
		t.Errorf("structural-mode recall = %.3f, want >= 0.8 (score %+v)", score.Recall, score)
	}
	if score.Precision < 0.9 {
		t.Errorf("structural-mode precision = %.3f, want >= 0.9", score.Precision)
	}
}

func TestSuiteConfigsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("suite generation is slow in -short mode")
	}
	for _, cfg := range Suite()[:4] {
		b := Generate(cfg)
		if err := b.Netlist.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestUnitKindString(t *testing.T) {
	if Adder.String() != "adder" || RegBank.String() != "regbank" {
		t.Error("UnitKind strings wrong")
	}
	if UnitKind(99).String() == "" {
		t.Error("unknown kind should still print")
	}
}
