package gen

import (
	"fmt"

	"repro/internal/netlist"
)

// UnitKind selects a datapath unit archetype.
type UnitKind int

// The datapath unit archetypes, mirroring the structures the paper's intro
// motivates: arithmetic (adder), steering (mux tree), shifting (rotator) and
// storage (register bank).
const (
	Adder UnitKind = iota
	MuxTree
	Shifter
	RegBank
)

// String names the unit kind.
func (k UnitKind) String() string {
	switch k {
	case Adder:
		return "adder"
	case MuxTree:
		return "muxtree"
	case Shifter:
		return "shifter"
	case RegBank:
		return "regbank"
	}
	return fmt.Sprintf("UnitKind(%d)", int(k))
}

// unit is a constructed datapath block with unconnected boundary pins that
// the top level wires into inter-unit buses (bit-indexed pins) and the
// random-logic sea (control pins, bit -1).
type unit struct {
	openIn  []conn
	inBit   []int // bit index per openIn entry; -1 for control
	openOut []conn
	outBit  []int
	cells   int
}

// addIn registers an unconnected input pin with its bit index.
func (u *unit) addIn(c conn, bit int) {
	u.openIn = append(u.openIn, c)
	u.inBit = append(u.inBit, bit)
}

// addOut registers an unconnected output pin with its bit index.
func (u *unit) addOut(c conn, bit int) {
	u.openOut = append(u.openOut, c)
	u.outBit = append(u.outBit, bit)
}

// busName builds a per-unit indexed net name, e.g. "u3_a[7]".
func (b *builder) busName(uid int, base string, bit int) string {
	return fmt.Sprintf("u%d_%s[%d]", uid, base, bit)
}

// adder builds a registered ripple-carry adder: DFF columns for both
// operands, a full-adder slice per bit (2×XOR, 2×AND, OR), and a sum DFF
// column. All cells of bit i share ground-truth slice i.
func (b *builder) adder(uid, bits int, clk *[]conn) unit {
	g := b.group
	b.group++
	var u unit

	cin := b.addCell(masterBUF, -1, -1) // carry-in driver, not part of a slice
	u.addIn(on(cin, masterBUF, "A"), -1)
	carry := on(cin, masterBUF, "Y")
	carryM := masterBUF

	for i := 0; i < bits; i++ {
		dffA := b.addCell(masterDFF, g, i)
		dffB := b.addCell(masterDFF, g, i)
		x1 := b.addCell(masterXOR, g, i)
		a1 := b.addCell(masterAND, g, i)
		x2 := b.addCell(masterXOR, g, i)
		a2 := b.addCell(masterAND, g, i)
		orc := b.addCell(masterOR, g, i)
		dffS := b.addCell(masterDFF, g, i)
		u.cells += 8

		b.net(b.busName(uid, "a", i), 1,
			on(dffA, masterDFF, "Q"), on(x1, masterXOR, "A"), on(a1, masterAND, "A"))
		b.net(b.busName(uid, "b", i), 1,
			on(dffB, masterDFF, "Q"), on(x1, masterXOR, "B"), on(a1, masterAND, "B"))
		b.net(b.busName(uid, "p", i), 1,
			on(x1, masterXOR, "Y"), on(x2, masterXOR, "A"), on(a2, masterAND, "A"))
		b.net(b.busName(uid, "c", i), 1,
			conn{carry.cell, carryM, carry.pin},
			on(x2, masterXOR, "B"), on(a2, masterAND, "B"))
		b.net(b.busName(uid, "g", i), 1,
			on(a1, masterAND, "Y"), on(orc, masterOR, "A"))
		b.net(b.busName(uid, "t", i), 1,
			on(a2, masterAND, "Y"), on(orc, masterOR, "B"))
		b.net(b.busName(uid, "s", i), 1,
			on(x2, masterXOR, "Y"), on(dffS, masterDFF, "D"))

		carry = on(orc, masterOR, "Y")
		carryM = masterOR

		*clk = append(*clk,
			on(dffA, masterDFF, "CK"), on(dffB, masterDFF, "CK"), on(dffS, masterDFF, "CK"))
		u.addIn(on(dffA, masterDFF, "D"), i)
		u.addIn(on(dffB, masterDFF, "D"), i)
		u.addOut(on(dffS, masterDFF, "Q"), i)
	}
	u.cells++ // cin
	// Terminate the final carry.
	cout := b.addCell(masterINV, -1, -1)
	u.cells++
	b.net(b.busName(uid, "cout", 0), 1,
		conn{carry.cell, carryM, carry.pin}, on(cout, masterINV, "A"))
	u.addOut(on(cout, masterINV, "Y"), -1)
	return u
}

// muxTree builds a k-input operand selector: per bit, a chain of k−1 MUX2
// cells; select lines are shared across bits (control nets).
func (b *builder) muxTree(uid, bits, k int, clk *[]conn) unit {
	if k < 2 {
		k = 2
	}
	g := b.group
	b.group++
	var u unit

	// Shared select drivers.
	sels := make([]netlist.CellID, k-1)
	selConns := make([][]conn, k-1)
	for j := range sels {
		sels[j] = b.addCell(masterBUF, -1, -1)
		u.cells++
		u.addIn(on(sels[j], masterBUF, "A"), -1)
	}

	muxes := make([][]netlist.CellID, bits)
	for i := 0; i < bits; i++ {
		muxes[i] = make([]netlist.CellID, k-1)
		var prev conn
		for j := 0; j < k-1; j++ {
			m := b.addCell(masterMUX, g, i)
			muxes[i][j] = m
			u.cells++
			if j == 0 {
				u.addIn(on(m, masterMUX, "A"), i)
			} else {
				b.net(b.busName(uid, fmt.Sprintf("m%d", j), i), 1,
					prev, on(m, masterMUX, "A"))
			}
			u.addIn(on(m, masterMUX, "B"), i)
			selConns[j] = append(selConns[j], on(m, masterMUX, "S"))
			prev = on(m, masterMUX, "Y")
		}
		// Register the output.
		dff := b.addCell(masterDFF, g, i)
		u.cells++
		b.net(b.busName(uid, "y", i), 1, prev, on(dff, masterDFF, "D"))
		*clk = append(*clk, on(dff, masterDFF, "CK"))
		u.addOut(on(dff, masterDFF, "Q"), i)
	}
	for j := range sels {
		ends := append([]conn{on(sels[j], masterBUF, "Y")}, selConns[j]...)
		b.net(fmt.Sprintf("u%d_sel%d", uid, j), 1, ends...)
	}
	return u
}

// shifter builds a logarithmic rotator: stages of MUX2 per bit, where stage
// s mixes bit i with bit (i−2^s) mod bits. Cross-bit wiring makes this the
// hardest structure for lock-step extraction.
func (b *builder) shifter(uid, bits, stages int, clk *[]conn) unit {
	g := b.group
	b.group++
	var u unit

	// Input register column.
	cur := make([]conn, bits)
	curM := make([]master, bits)
	for i := 0; i < bits; i++ {
		dff := b.addCell(masterDFF, g, i)
		u.cells++
		*clk = append(*clk, on(dff, masterDFF, "CK"))
		u.addIn(on(dff, masterDFF, "D"), i)
		cur[i] = on(dff, masterDFF, "Q")
		curM[i] = masterDFF
	}

	for s := 0; s < stages; s++ {
		sel := b.addCell(masterBUF, -1, -1)
		u.cells++
		u.addIn(on(sel, masterBUF, "A"), -1)
		shift := 1 << uint(s)

		next := make([]netlist.CellID, bits)
		var selSinks []conn
		// Endpoint sets per source bit: straight sink and rotated sink.
		type sink struct {
			straight, rotated conn
		}
		sinks := make([]sink, bits)
		for i := 0; i < bits; i++ {
			m := b.addCell(masterMUX, g, i)
			next[i] = m
			u.cells++
			selSinks = append(selSinks, on(m, masterMUX, "S"))
		}
		for i := 0; i < bits; i++ {
			sinks[i].straight = on(next[i], masterMUX, "A")
			j := (i + shift) % bits
			sinks[i].rotated = on(next[j], masterMUX, "B")
		}
		for i := 0; i < bits; i++ {
			b.net(b.busName(uid, fmt.Sprintf("st%d", s), i), 1,
				cur[i], sinks[i].straight, sinks[i].rotated)
		}
		b.net(fmt.Sprintf("u%d_shsel%d", uid, s), 1,
			append([]conn{on(sel, masterBUF, "Y")}, selSinks...)...)
		for i := 0; i < bits; i++ {
			cur[i] = on(next[i], masterMUX, "Y")
			curM[i] = masterMUX
		}
	}
	// Output register column.
	for i := 0; i < bits; i++ {
		dff := b.addCell(masterDFF, g, i)
		u.cells++
		b.net(b.busName(uid, "out", i), 1, cur[i], on(dff, masterDFF, "D"))
		*clk = append(*clk, on(dff, masterDFF, "CK"))
		u.addOut(on(dff, masterDFF, "Q"), i)
	}
	return u
}

// regBank builds a write-enabled register bank: an input DFF column plus,
// per word, a MUX2 (hold/load) feeding a DFF per bit. The whole bank is one
// group: bit i of every word shares slice i.
func (b *builder) regBank(uid, bits, words int, clk *[]conn) unit {
	g := b.group
	b.group++
	var u unit

	// Input column drives the shared per-bit din nets.
	din := make([]conn, bits)
	for i := 0; i < bits; i++ {
		dff := b.addCell(masterDFF, g, i)
		u.cells++
		*clk = append(*clk, on(dff, masterDFF, "CK"))
		u.addIn(on(dff, masterDFF, "D"), i)
		din[i] = on(dff, masterDFF, "Q")
	}
	dinSinks := make([][]conn, bits)

	for w := 0; w < words; w++ {
		we := b.addCell(masterBUF, -1, -1)
		u.cells++
		u.addIn(on(we, masterBUF, "A"), -1)
		var weSinks []conn
		for i := 0; i < bits; i++ {
			m := b.addCell(masterMUX, g, i)
			dff := b.addCell(masterDFF, g, i)
			u.cells += 2
			// Feedback: q → mux.A; load: din → mux.B; mux.Y → dff.D. The
			// last word carries the read port: a buffer per bit taps q and
			// becomes the unit's bus output, keeping the chain connected
			// through the bank.
			qEnds := []conn{on(dff, masterDFF, "Q"), on(m, masterMUX, "A")}
			if w == words-1 {
				rd := b.addCell(masterBUF, g, i)
				u.cells++
				qEnds = append(qEnds, on(rd, masterBUF, "A"))
				u.addOut(on(rd, masterBUF, "Y"), i)
			}
			b.net(fmt.Sprintf("u%d_w%d_q[%d]", uid, w, i), 1, qEnds...)
			dinSinks[i] = append(dinSinks[i], on(m, masterMUX, "B"))
			b.net(fmt.Sprintf("u%d_w%d_m[%d]", uid, w, i), 1,
				on(m, masterMUX, "Y"), on(dff, masterDFF, "D"))
			weSinks = append(weSinks, on(m, masterMUX, "S"))
			*clk = append(*clk, on(dff, masterDFF, "CK"))
		}
		b.net(fmt.Sprintf("u%d_we%d", uid, w), 1,
			append([]conn{on(we, masterBUF, "Y")}, weSinks...)...)
	}
	for i := 0; i < bits; i++ {
		b.net(b.busName(uid, "din", i), 1, append([]conn{din[i]}, dinSinks[i]...)...)
	}
	return u
}

// build dispatches a unit kind.
func (b *builder) build(kind UnitKind, uid, bits int, clk *[]conn) unit {
	switch kind {
	case Adder:
		return b.adder(uid, bits, clk)
	case MuxTree:
		return b.muxTree(uid, bits, 4, clk)
	case Shifter:
		stages := 3
		if bits <= 4 {
			stages = 2
		}
		return b.shifter(uid, bits, stages, clk)
	case RegBank:
		return b.regBank(uid, bits, 4, clk)
	}
	panic(fmt.Sprintf("gen: unknown unit kind %d", kind))
}
