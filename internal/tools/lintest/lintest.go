// Package lintest is the testdata-driven harness shared by the repository's
// static-analysis tools (docslint, placelint). A testdata file marks every
// expected finding with a trailing comment of the form
//
//	// want "regexp"
//
// on the line the tool should flag. When the finding cannot share the line —
// a malformed //placelint:ignore directive is itself a comment, so a trailing
// want would become its reason — the comment takes a line offset:
//
//	// want[-1] "regexp"
//
// expects the finding offset lines away from the want comment.
//
// The tool's test converts its findings to []Finding and calls Check, which
// enforces an exact two-way match: every want must be hit by a finding on
// its line whose message matches the pattern, and every finding must be
// claimed by exactly one want. Unexpected findings and unmatched wants are
// both test failures, so testdata documents the check's behavior precisely.
package lintest

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Finding is one diagnostic produced by the tool under test, keyed by the
// file's base name so testdata directories can move without breaking tests.
type Finding struct {
	File string // base name, e.g. "maporder.go"
	Line int
	Msg  string
}

// Want is one expectation parsed from a `// want "…"` comment.
type Want struct {
	File    string // base name of the file holding the comment
	Line    int    // line the finding is expected on (offset already applied)
	Pattern *regexp.Regexp
}

// wantRE matches `// want "pat"` and `// want[±N] "pat"`. The pattern
// capture is greedy to the last quote on the line, so patterns may contain
// embedded double quotes.
var wantRE = regexp.MustCompile(`//\s*want(?:\[([+-]?\d+)\])?\s+"(.*)"`)

// ParseWants scans every non-test .go file under dir — recursively, so a
// testdata package may carry helper sub-packages (cross-package facts need
// a real dependency to traverse) whose files hold wants of their own — and
// returns the wants in file-walk order. Malformed patterns fail the test
// immediately: a want that cannot match anything would silently weaken the
// two-way check.
func ParseWants(t *testing.T, dir string) []Want {
	t.Helper()
	var wants []Want
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			offset := 0
			if m[1] != "" {
				offset, err = strconv.Atoi(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want offset %q: %v", name, i+1, m[1], err)
				}
			}
			re, err := regexp.Compile(m[2])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, m[2], err)
			}
			wants = append(wants, Want{File: name, Line: i + 1 + offset, Pattern: re})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("lintest: %v", err)
	}
	return wants
}

// Check enforces the exact two-way match between wants and got. Each finding
// can satisfy at most one want, so duplicated diagnostics need duplicated
// want comments and are never silently collapsed.
func Check(t *testing.T, wants []Want, got []Finding) {
	t.Helper()
	claimed := make([]bool, len(got))
	for _, w := range wants {
		hit := false
		for i, f := range got {
			if claimed[i] || f.File != w.File || f.Line != w.Line || !w.Pattern.MatchString(f.Msg) {
				continue
			}
			claimed[i] = true
			hit = true
			break
		}
		if !hit {
			t.Errorf("%s:%d: no finding matching %q", w.File, w.Line, w.Pattern)
		}
	}
	for i, f := range got {
		if !claimed[i] {
			t.Errorf("%s:%d: unexpected finding: %s", f.File, f.Line, f.Msg)
		}
	}
}
