// Command benchsum post-processes the run reports of a `make bench`
// -workers sweep: it reads every BENCH_workers_*.json report, takes the
// workers=1 run's global-place stage time as the baseline, writes each
// report's parallel_speedup field in place (speedup = t_serial / t_N for
// the global stage), and prints the speedup table that EXPERIMENTS.md
// quotes.
//
// With -kernels it instead parses `go test -bench` output for the SoA
// solver-kernel microbenchmarks (BenchmarkWAGradSoA in internal/wirelength,
// BenchmarkDensitySoA in internal/density) and writes their ns/op table as a
// dpplace-kernel-bench/v1 JSON summary, so the kernel baseline is committed
// next to the sweep.
//
// With -congestion it distills one dpplace run report (a `-congestion
// -report` run) into a dpplace-congestion-bench/v1 summary: routed overflow,
// overflowed edges/bins, final HPWL and the feedback loop's own stats — the
// routability baseline committed as BENCH_congestion.json.
//
// With -diff it compares two reports of the same schema (typically the same
// `make bench` artifact from two commits). For run reports it prints the
// per-stage wall-clock deltas and the final-HPWL delta, then exits 1 when
// the new run's total stage time regressed by more than 10%. For kernel
// reports it prints per-benchmark ns/op deltas and exits 1 when any kernel
// regressed by more than 10% — the CI kernel gate. For congestion reports it
// prints routed-overflow and HPWL deltas and exits 1 when routed overflow
// regressed by more than 10% at equal-or-better HPWL — the CI routability
// gate (a worse overflow bought by a worse HPWL is a tradeoff for the other
// gates; a worse overflow at the same wirelength is just a regression).
//
// Usage:
//
//	go run ./internal/tools/benchsum BENCH_workers_1.json BENCH_workers_2.json ...
//	go run ./internal/tools/benchsum -kernels bench.txt BENCH_kernels.json
//	go run ./internal/tools/benchsum -congestion report.json BENCH_congestion.json
//	go run ./internal/tools/benchsum -diff old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// report is the slice of dpplace-run-report/v1 benchsum needs. Unknown
// fields are preserved through the raw map when rewriting.
type report struct {
	path    string
	raw     map[string]any
	workers int
	global  float64
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchsum BENCH_workers_*.json | benchsum -kernels bench.txt out.json | benchsum -diff old.json new.json")
		os.Exit(2)
	}
	if os.Args[1] == "-diff" {
		if len(os.Args) != 4 {
			fmt.Fprintln(os.Stderr, "usage: benchsum -diff old.json new.json")
			os.Exit(2)
		}
		ok, err := diffReports(os.Args[2], os.Args[3])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsum: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	if os.Args[1] == "-kernels" {
		if len(os.Args) != 4 {
			fmt.Fprintln(os.Stderr, "usage: benchsum -kernels bench.txt out.json")
			os.Exit(2)
		}
		if err := kernelSummary(os.Args[2], os.Args[3]); err != nil {
			fmt.Fprintf(os.Stderr, "benchsum: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if os.Args[1] == "-congestion" {
		if len(os.Args) != 4 {
			fmt.Fprintln(os.Stderr, "usage: benchsum -congestion report.json out.json")
			os.Exit(2)
		}
		if err := congestionSummary(os.Args[2], os.Args[3]); err != nil {
			fmt.Fprintf(os.Stderr, "benchsum: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var reports []report
	for _, path := range os.Args[1:] {
		r, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsum: %v\n", err)
			os.Exit(1)
		}
		reports = append(reports, r)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].workers < reports[j].workers })

	baseline := 0.0
	for _, r := range reports {
		if r.workers == 1 {
			baseline = r.global
		}
	}
	if baseline <= 0 {
		fmt.Fprintln(os.Stderr, "benchsum: no workers=1 report with a positive global-stage time")
		os.Exit(1)
	}

	fmt.Printf("%-8s %-12s %-8s\n", "workers", "global[s]", "speedup")
	for _, r := range reports {
		speedup := baseline / r.global
		r.raw["parallel_speedup"] = speedup
		b, err := json.MarshalIndent(r.raw, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsum: %v\n", err)
			os.Exit(1)
		}
		b = append(b, '\n')
		if err := os.WriteFile(r.path, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchsum: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-8d %-12.3f %-8.2f\n", r.workers, r.global, speedup)
	}
}

// slowdownBudget is the bench-diff tolerance: a new run whose total stage
// time exceeds old × (1 + slowdownBudget) fails the gate. 10% rides above
// ordinary shared-runner noise on the small `make bench` design while still
// catching real hot-path regressions.
const slowdownBudget = 0.10

// diffReports compares two dpplace-run-report/v1 files stage by stage and
// reports whether the new run is within the slowdown budget. A missing
// baseline file is not a failure — there is nothing to regress against —
// but it is said out loud instead of erroring opaquely.
func diffReports(oldPath, newPath string) (ok bool, err error) {
	if _, statErr := os.Stat(oldPath); os.IsNotExist(statErr) {
		fmt.Printf("no baseline: %s does not exist — skipping the bench diff.\n"+
			"Record one with `make bench` on the reference revision and commit it.\n", oldPath)
		return true, nil
	}
	oldRep, err := loadRaw(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := loadRaw(newPath)
	if err != nil {
		return false, err
	}
	oldSchema, _ := oldRep["schema"].(string)
	newSchema, _ := newRep["schema"].(string)
	if oldSchema == kernelBenchSchema || newSchema == kernelBenchSchema ||
		oldSchema == congestionBenchSchema || newSchema == congestionBenchSchema {
		if oldSchema != newSchema {
			return false, fmt.Errorf("schema mismatch: %s is %q, %s is %q",
				oldPath, oldSchema, newPath, newSchema)
		}
		if oldSchema == congestionBenchSchema {
			return diffCongestion(oldRep, newRep)
		}
		return diffKernels(oldRep, newRep)
	}
	oldStages := stageSeconds(oldRep)
	newStages := stageSeconds(newRep)
	if len(oldStages) == 0 || len(newStages) == 0 {
		return false, fmt.Errorf("%s vs %s: a report has no stage_seconds", oldPath, newPath)
	}

	names := make([]string, 0, len(oldStages)+len(newStages))
	for n := range oldStages {
		names = append(names, n)
	}
	for n := range newStages {
		if _, dup := oldStages[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	fmt.Printf("%-12s %10s %10s %8s\n", "stage", "old[s]", "new[s]", "delta")
	var oldTotal, newTotal float64
	for _, n := range names {
		o, nw := oldStages[n], newStages[n]
		oldTotal += o
		newTotal += nw
		fmt.Printf("%-12s %10.3f %10.3f %7.1f%%\n", n, o, nw, pctDelta(o, nw))
	}
	fmt.Printf("%-12s %10.3f %10.3f %7.1f%%\n", "total", oldTotal, newTotal, pctDelta(oldTotal, newTotal))
	if oh, nh := finalHPWL(oldRep), finalHPWL(newRep); oh > 0 && nh > 0 {
		fmt.Printf("%-12s %10.0f %10.0f %7.1f%%\n", "hpwl_final", oh, nh, pctDelta(oh, nh))
	}

	if oldTotal <= 0 {
		return false, fmt.Errorf("%s: old report has no positive stage time", oldPath)
	}
	if newTotal > oldTotal*(1+slowdownBudget) {
		fmt.Printf("FAIL: total stage time regressed %.1f%% (budget %.0f%%)\n",
			pctDelta(oldTotal, newTotal), slowdownBudget*100)
		return false, nil
	}
	fmt.Printf("OK: total stage time within the %.0f%% budget\n", slowdownBudget*100)
	return true, nil
}

// loadRaw reads one run report without the worker-sweep field requirements.
func loadRaw(path string) (map[string]any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return raw, nil
}

// stageSeconds extracts the per-stage wall-clock map of a report.
func stageSeconds(raw map[string]any) map[string]float64 {
	stages, _ := raw["stage_seconds"].(map[string]any)
	out := make(map[string]float64, len(stages))
	//placelint:ignore maporder copying into a map; insertion order cannot be observed
	for n, v := range stages {
		if s, isNum := v.(float64); isNum {
			out[n] = s
		}
	}
	return out
}

// finalHPWL extracts hpwl.final, or 0 when the report lacks it.
func finalHPWL(raw map[string]any) float64 {
	hpwl, _ := raw["hpwl"].(map[string]any)
	v, _ := hpwl["final"].(float64)
	return v
}

// pctDelta is the old→cur change in percent; 0 when old is 0.
func pctDelta(old, cur float64) float64 {
	if old == 0 {
		return 0
	}
	return (cur - old) / old * 100
}

// kernelBenchSchema identifies the SoA kernel-microbenchmark JSON layout.
const kernelBenchSchema = "dpplace-kernel-bench/v1"

// kernelSummary parses `go test -bench` output for the SoA solver-kernel
// microbenchmarks (BenchmarkWAGradSoA, BenchmarkDensitySoA) and writes their
// ns/op table as JSON, one entry per sub-benchmark.
func kernelSummary(benchPath, outPath string) error {
	f, err := os.Open(benchPath)
	if err != nil {
		return err
	}
	defer f.Close()
	// e.g. "BenchmarkWAGradSoA/soa-grad-reuse-8   3518   319498 ns/op ..."
	// The trailing -N is the GOMAXPROCS suffix; it is absent on single-CPU
	// runs, so it is matched optionally and stripped from the name.
	row := regexp.MustCompile(`^Benchmark(WAGradSoA|DensitySoA)/(\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)
	nsPerOp := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if m := row.FindStringSubmatch(sc.Text()); m != nil {
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return fmt.Errorf("%s: %w", benchPath, err)
			}
			nsPerOp[m[1]+"/"+m[2]] = v
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(nsPerOp) == 0 {
		return fmt.Errorf("%s: no BenchmarkWAGradSoA/BenchmarkDensitySoA rows", benchPath)
	}
	out := map[string]any{
		"schema":     kernelBenchSchema,
		"ns_op":      nsPerOp,
		"benchmarks": "BenchmarkWAGradSoA (internal/wirelength), BenchmarkDensitySoA (internal/density)",
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(outPath, b, 0o644); err != nil {
		return err
	}
	names := make([]string, 0, len(nsPerOp))
	for n := range nsPerOp {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-36s %12.0f ns/op\n", n, nsPerOp[n])
	}
	return nil
}

// diffKernels compares two dpplace-kernel-bench/v1 reports benchmark by
// benchmark and reports whether every kernel is within the slowdown budget.
// Benchmarks present on only one side are printed but never gate (renames
// must not brick CI); budget violations on shared benchmarks do.
func diffKernels(oldRep, newRep map[string]any) (ok bool, err error) {
	oldNs := nsOpTable(oldRep)
	newNs := nsOpTable(newRep)
	if len(oldNs) == 0 || len(newNs) == 0 {
		return false, fmt.Errorf("a kernel report has no ns_op table")
	}
	names := make([]string, 0, len(oldNs)+len(newNs))
	for n := range oldNs {
		names = append(names, n)
	}
	for n := range newNs {
		if _, dup := oldNs[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	fmt.Printf("%-36s %12s %12s %8s\n", "kernel", "old[ns/op]", "new[ns/op]", "delta")
	worst, worstName := 0.0, ""
	for _, n := range names {
		o, hasOld := oldNs[n]
		nw, hasNew := newNs[n]
		switch {
		case !hasOld:
			fmt.Printf("%-36s %12s %12.0f %8s\n", n, "-", nw, "new")
		case !hasNew:
			fmt.Printf("%-36s %12.0f %12s %8s\n", n, o, "-", "gone")
		default:
			d := pctDelta(o, nw)
			fmt.Printf("%-36s %12.0f %12.0f %7.1f%%\n", n, o, nw, d)
			if d > worst {
				worst, worstName = d, n
			}
		}
	}
	if worst > slowdownBudget*100 {
		fmt.Printf("FAIL: %s regressed %.1f%% (budget %.0f%%)\n",
			worstName, worst, slowdownBudget*100)
		return false, nil
	}
	fmt.Printf("OK: every kernel within the %.0f%% budget\n", slowdownBudget*100)
	return true, nil
}

// nsOpTable extracts the per-benchmark ns/op map of a kernel report.
func nsOpTable(raw map[string]any) map[string]float64 {
	tab, _ := raw["ns_op"].(map[string]any)
	out := make(map[string]float64, len(tab))
	//placelint:ignore maporder copying into a map; insertion order cannot be observed
	for n, v := range tab {
		if s, isNum := v.(float64); isNum {
			out[n] = s
		}
	}
	return out
}

// congestionBenchSchema identifies the routability-baseline JSON layout.
const congestionBenchSchema = "dpplace-congestion-bench/v1"

// overflowSlack is the absolute routed-overflow tolerance of the congestion
// gate, in tracks. The relative budget alone would make a near-zero baseline
// un-gateable (0 → 0.1 tracks is a 10 000% "regression" nobody cares about).
const overflowSlack = 0.5

// congestionSummary distills a dpplace run report (written by a `-congestion
// -report` run whose pipeline evaluated metrics) into the committed
// routability baseline: routed overflow, overflowed edges/bins, final HPWL
// and the feedback loop's own run-report block.
func congestionSummary(reportPath, outPath string) error {
	raw, err := loadRaw(reportPath)
	if err != nil {
		return err
	}
	routed := routedMetrics(raw)
	if len(routed) == 0 {
		return fmt.Errorf("%s: report has no metrics.Routed block; run dpplace with -report on a completed pipeline", reportPath)
	}
	hpwl := finalHPWL(raw)
	if hpwl <= 0 {
		return fmt.Errorf("%s: report has no final HPWL", reportPath)
	}
	out := map[string]any{
		"schema":          congestionBenchSchema,
		"design":          raw["design"],
		"hpwl_final":      hpwl,
		"routed_overflow": routed["Overflow"],
		"overflow_edges":  routed["OverflowEdges"],
		"overflow_bins":   routed["OverflowBins"],
		"max_usage":       routed["MaxUsage"],
	}
	if cong, hasCong := raw["congestion"]; hasCong {
		out["congestion"] = cong
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(outPath, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("%-18s %12.1f tracks (%.0f edges, %.0f bins, peak %.2fx)\n",
		"routed overflow", routed["Overflow"], routed["OverflowEdges"],
		routed["OverflowBins"], routed["MaxUsage"])
	fmt.Printf("%-18s %12.0f\n", "hpwl final", hpwl)
	return nil
}

// routedMetrics extracts the global-router numbers of a run report. The
// metrics block serializes metrics.Report with Go field names (no json tags),
// so the keys are Overflow/OverflowEdges/OverflowBins/MaxUsage.
func routedMetrics(raw map[string]any) map[string]float64 {
	met, _ := raw["metrics"].(map[string]any)
	routed, _ := met["Routed"].(map[string]any)
	out := make(map[string]float64, len(routed))
	//placelint:ignore maporder copying into a map; insertion order cannot be observed
	for n, v := range routed {
		if s, isNum := v.(float64); isNum {
			out[n] = s
		}
	}
	return out
}

// diffCongestion compares two dpplace-congestion-bench/v1 baselines and
// reports whether the new run passes the routability gate: routed overflow
// must not regress more than the slowdown budget (plus an absolute slack for
// near-zero baselines) while HPWL stayed equal or better. An overflow
// regression accompanied by a clearly worse HPWL does not fail here — that
// tradeoff is the HPWL/time gates' jurisdiction — so the gate only fires on
// the unambiguous case: same wirelength, worse routability.
func diffCongestion(oldRep, newRep map[string]any) (ok bool, err error) {
	oldOv, hasOldOv := oldRep["routed_overflow"].(float64)
	newOv, hasNewOv := newRep["routed_overflow"].(float64)
	oldH, hasOldH := oldRep["hpwl_final"].(float64)
	newH, hasNewH := newRep["hpwl_final"].(float64)
	if !hasOldOv || !hasNewOv || !hasOldH || !hasNewH {
		return false, fmt.Errorf("a congestion report lacks routed_overflow or hpwl_final")
	}
	fmt.Printf("%-18s %12s %12s %8s\n", "metric", "old", "new", "delta")
	fmt.Printf("%-18s %12.1f %12.1f %7.1f%%\n", "routed_overflow", oldOv, newOv, pctDelta(oldOv, newOv))
	fmt.Printf("%-18s %12.0f %12.0f %7.1f%%\n", "hpwl_final", oldH, newH, pctDelta(oldH, newH))

	overflowRegressed := newOv > oldOv*(1+slowdownBudget)+overflowSlack
	hpwlEqualOrBetter := newH <= oldH*1.01
	if overflowRegressed && hpwlEqualOrBetter {
		fmt.Printf("FAIL: routed overflow regressed %.1f%% at equal-or-better HPWL (budget %.0f%% + %.1f tracks)\n",
			pctDelta(oldOv, newOv), slowdownBudget*100, overflowSlack)
		return false, nil
	}
	if overflowRegressed {
		fmt.Printf("WARN: routed overflow regressed %.1f%% but HPWL moved %.1f%% — the HPWL/time gates own this tradeoff\n",
			pctDelta(oldOv, newOv), pctDelta(oldH, newH))
		return true, nil
	}
	fmt.Printf("OK: routed overflow within the %.0f%% budget\n", slowdownBudget*100)
	return true, nil
}

// load reads one run report, requiring the workers count and the global
// stage time the speedup is computed from.
func load(path string) (report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	workers, _ := raw["workers"].(float64)
	if workers == 0 {
		// workers=1 runs omit the field (omitempty would too if it were 0);
		// dpplace always records the resolved count, so a missing field means
		// a pre-sweep report.
		return report{}, fmt.Errorf("%s: report has no workers field; re-run the sweep", path)
	}
	stages, _ := raw["stage_seconds"].(map[string]any)
	global, _ := stages["global"].(float64)
	if global <= 0 {
		return report{}, fmt.Errorf("%s: report has no global stage time", path)
	}
	return report{path: path, raw: raw, workers: int(workers), global: global}, nil
}
