package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile drops content into dir under name and returns the full path.
func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runReport builds a minimal dpplace-run-report/v1 JSON body.
func runReport(workers int, stages map[string]float64, hpwlFinal float64) string {
	raw := map[string]any{
		"schema":        "dpplace-run-report/v1",
		"workers":       workers,
		"stage_seconds": stages,
		"hpwl":          map[string]any{"final": hpwlFinal},
	}
	b, err := json.Marshal(raw)
	if err != nil {
		panic(err)
	}
	return string(b)
}

func TestKernelSummaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bench := writeFile(t, dir, "bench.txt", strings.Join([]string{
		"goos: linux",
		"BenchmarkWAGradSoA/soa-8         \t    3518\t    319498 ns/op\t  0 B/op",
		"BenchmarkWAGradSoA/soa-grad-reuse\t   36012\t     32563 ns/op",
		"BenchmarkDensitySoA/value-only-8 \t    3201\t    324420.5 ns/op",
		"BenchmarkUnrelated/thing-8       \t     100\t      1000 ns/op",
		"PASS",
	}, "\n"))
	out := filepath.Join(dir, "kernels.json")
	if err := kernelSummary(bench, out); err != nil {
		t.Fatal(err)
	}
	raw, err := loadRaw(out)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := raw["schema"].(string); s != kernelBenchSchema {
		t.Fatalf("schema = %q, want %q", s, kernelBenchSchema)
	}
	ns := nsOpTable(raw)
	want := map[string]float64{
		"WAGradSoA/soa":            319498,
		"WAGradSoA/soa-grad-reuse": 32563,
		"DensitySoA/value-only":    324420.5,
	}
	if len(ns) != len(want) {
		t.Fatalf("ns_op has %d entries (%v), want %d", len(ns), ns, len(want))
	}
	for n, v := range want {
		if ns[n] != v {
			t.Errorf("ns_op[%q] = %v, want %v", n, ns[n], v)
		}
	}
}

func TestKernelSummaryNoRows(t *testing.T) {
	dir := t.TempDir()
	bench := writeFile(t, dir, "bench.txt", "PASS\nok\n")
	err := kernelSummary(bench, filepath.Join(dir, "out.json"))
	if err == nil || !strings.Contains(err.Error(), "no Benchmark") {
		t.Fatalf("err = %v, want a no-rows error", err)
	}
}

func TestDiffReportsStages(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeFile(t, dir, "old.json",
		runReport(1, map[string]float64{"global": 10, "detail": 1}, 5000))
	within := writeFile(t, dir, "within.json",
		runReport(1, map[string]float64{"global": 10.5, "detail": 1}, 5100))
	regressed := writeFile(t, dir, "regressed.json",
		runReport(1, map[string]float64{"global": 14, "detail": 1}, 5100))

	if ok, err := diffReports(oldPath, within); err != nil || !ok {
		t.Fatalf("within-budget diff: ok=%v err=%v, want ok", ok, err)
	}
	if ok, err := diffReports(oldPath, regressed); err != nil || ok {
		t.Fatalf("regressed diff: ok=%v err=%v, want gate failure without error", ok, err)
	}
	// A missing baseline skips the gate rather than failing it.
	if ok, err := diffReports(filepath.Join(dir, "nope.json"), within); err != nil || !ok {
		t.Fatalf("missing baseline: ok=%v err=%v, want ok", ok, err)
	}
}

func TestDiffReportsSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	run := writeFile(t, dir, "run.json",
		runReport(1, map[string]float64{"global": 10}, 0))
	kern := writeFile(t, dir, "kern.json",
		`{"schema":"`+kernelBenchSchema+`","ns_op":{"WAGradSoA/soa":100}}`)
	if _, err := diffReports(run, kern); err == nil ||
		!strings.Contains(err.Error(), "schema mismatch") {
		t.Fatalf("err = %v, want schema mismatch", err)
	}
}

func TestDiffKernelsGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeFile(t, dir, "old.json",
		`{"schema":"`+kernelBenchSchema+`","ns_op":{"WAGradSoA/soa":100,"DensitySoA/value-only":200,"WAGradSoA/gone":5}}`)
	within := writeFile(t, dir, "within.json",
		`{"schema":"`+kernelBenchSchema+`","ns_op":{"WAGradSoA/soa":105,"DensitySoA/value-only":190,"WAGradSoA/new":7}}`)
	regressed := writeFile(t, dir, "regressed.json",
		`{"schema":"`+kernelBenchSchema+`","ns_op":{"WAGradSoA/soa":120,"DensitySoA/value-only":200}}`)

	// New and gone benchmarks print but never gate; 5% is within budget.
	if ok, err := diffReports(oldPath, within); err != nil || !ok {
		t.Fatalf("within-budget kernels: ok=%v err=%v, want ok", ok, err)
	}
	// A 20% single-kernel regression fails even with the total improved.
	if ok, err := diffReports(oldPath, regressed); err != nil || ok {
		t.Fatalf("regressed kernel: ok=%v err=%v, want gate failure without error", ok, err)
	}
}

func TestLoadRequiresSweepFields(t *testing.T) {
	dir := t.TempDir()
	good := writeFile(t, dir, "good.json",
		runReport(4, map[string]float64{"global": 2.5}, 0))
	r, err := load(good)
	if err != nil {
		t.Fatal(err)
	}
	if r.workers != 4 || r.global != 2.5 {
		t.Fatalf("load = workers %d global %v, want 4 / 2.5", r.workers, r.global)
	}

	noWorkers := writeFile(t, dir, "nw.json",
		`{"stage_seconds":{"global":2.5}}`)
	if _, err := load(noWorkers); err == nil ||
		!strings.Contains(err.Error(), "workers") {
		t.Fatalf("err = %v, want missing-workers error", err)
	}
	noGlobal := writeFile(t, dir, "ng.json",
		`{"workers":2,"stage_seconds":{"detail":0.1}}`)
	if _, err := load(noGlobal); err == nil ||
		!strings.Contains(err.Error(), "global") {
		t.Fatalf("err = %v, want missing-global error", err)
	}
}

func TestPctDelta(t *testing.T) {
	if d := pctDelta(0, 5); d != 0 {
		t.Fatalf("pctDelta(0,5) = %v, want 0", d)
	}
	if d := pctDelta(10, 12); d != 20 {
		t.Fatalf("pctDelta(10,12) = %v, want 20", d)
	}
}

// congBench builds a dpplace-congestion-bench/v1 baseline body.
func congBench(overflow, hpwl float64) string {
	b, err := json.Marshal(map[string]any{
		"schema":          congestionBenchSchema,
		"design":          "bench",
		"hpwl_final":      hpwl,
		"routed_overflow": overflow,
		"overflow_edges":  10.0,
		"overflow_bins":   8.0,
		"max_usage":       1.2,
	})
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestDiffCongestionGate seeds regressions against a committed-style
// baseline and checks the gate fires only on the unambiguous case: routed
// overflow up beyond the budget at equal-or-better HPWL.
func TestDiffCongestionGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeFile(t, dir, "old.json", congBench(100, 5000))
	cases := []struct {
		name     string
		overflow float64
		hpwl     float64
		wantOK   bool
	}{
		{"within-budget", 105, 5000, true},
		{"improved", 80, 4900, true},
		{"regressed-equal-hpwl", 120, 5000, false},
		{"regressed-better-hpwl", 120, 4800, false},
		// Overflow up but HPWL clearly worse: the tradeoff belongs to the
		// HPWL/time gates, so this warns instead of failing.
		{"regressed-worse-hpwl", 120, 5300, true},
	}
	for _, c := range cases {
		p := writeFile(t, dir, c.name+".json", congBench(c.overflow, c.hpwl))
		ok, err := diffReports(oldPath, p)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if ok != c.wantOK {
			t.Errorf("%s: gate ok=%v, want %v", c.name, ok, c.wantOK)
		}
	}

	// Near-zero baseline: the absolute slack keeps 0 -> 0.4 tracks from
	// reading as an infinite-percent regression.
	zeroOld := writeFile(t, dir, "zero-old.json", congBench(0, 5000))
	zeroNew := writeFile(t, dir, "zero-new.json", congBench(0.4, 5000))
	if ok, err := diffReports(zeroOld, zeroNew); err != nil || !ok {
		t.Fatalf("near-zero baseline: ok=%v err=%v, want ok", ok, err)
	}
	beyondSlack := writeFile(t, dir, "beyond-slack.json", congBench(1.0, 5000))
	if ok, err := diffReports(zeroOld, beyondSlack); err != nil || ok {
		t.Fatalf("beyond-slack: ok=%v err=%v, want gate failure", ok, err)
	}
}

// TestCongestionSummaryRoundTrip distills a synthetic run report and checks
// the baseline fields, then pins the error paths for reports without routed
// metrics or HPWL.
func TestCongestionSummaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep := map[string]any{
		"schema": "dpplace-run-report/v1",
		"design": "bench",
		"hpwl":   map[string]any{"final": 48876.58},
		"metrics": map[string]any{"Routed": map[string]any{
			"Overflow": 249.4, "OverflowEdges": 301.0,
			"OverflowBins": 260.0, "MaxUsage": 1.4,
		}},
		"congestion": map[string]any{"snapshots": 2.0, "inflated_cells": 374.0},
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	in := writeFile(t, dir, "report.json", string(b))
	out := filepath.Join(dir, "cong.json")
	if err := congestionSummary(in, out); err != nil {
		t.Fatal(err)
	}
	raw, err := loadRaw(out)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := raw["schema"].(string); s != congestionBenchSchema {
		t.Fatalf("schema = %q, want %q", s, congestionBenchSchema)
	}
	if ov, _ := raw["routed_overflow"].(float64); ov != 249.4 {
		t.Fatalf("routed_overflow = %v, want 249.4", ov)
	}
	if h, _ := raw["hpwl_final"].(float64); h != 48876.58 {
		t.Fatalf("hpwl_final = %v, want 48876.58", h)
	}
	if _, hasCong := raw["congestion"].(map[string]any); !hasCong {
		t.Fatal("congestion block did not pass through")
	}

	noRouted := writeFile(t, dir, "nr.json",
		`{"schema":"dpplace-run-report/v1","hpwl":{"final":1}}`)
	if err := congestionSummary(noRouted, out); err == nil ||
		!strings.Contains(err.Error(), "metrics.Routed") {
		t.Fatalf("err = %v, want missing-metrics error", err)
	}
	noHPWL := writeFile(t, dir, "nh.json",
		`{"schema":"dpplace-run-report/v1","metrics":{"Routed":{"Overflow":1.0}}}`)
	if err := congestionSummary(noHPWL, out); err == nil ||
		!strings.Contains(err.Error(), "HPWL") {
		t.Fatalf("err = %v, want missing-HPWL error", err)
	}
}
