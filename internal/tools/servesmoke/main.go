// Command servesmoke is the CI smoke driver for dpplaced: it boots the
// daemon on an ephemeral port, submits an example generated netlist, polls
// the job to completion, validates the dpplace-run-report/v1 artifact and
// the placement, sends SIGTERM, and asserts a clean drain (exit 0). Any
// deviation exits nonzero with a description, so the Makefile target
// (`make serve-smoke`) is a single command in CI.
//
// Usage:
//
//	servesmoke -bin path/to/dpplaced [-timeout 120s]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	bin := flag.String("bin", "", "path to the dpplaced binary (required)")
	timeout := flag.Duration("timeout", 120*time.Second, "overall smoke budget")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "usage: servesmoke -bin path/to/dpplaced")
		os.Exit(2)
	}
	if err := smoke(*bin, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "serve-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("serve-smoke: PASS")
}

// smoke runs the whole scenario; any error fails the smoke.
func smoke(bin string, budget time.Duration) error {
	data, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(data)

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", data, "-workers", "2")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start daemon: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	defer cmd.Process.Kill()

	// The overall budget is enforced with a deadline timer rather than
	// wall-clock reads.
	expired := time.NewTimer(budget)
	defer expired.Stop()
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	wait := func(what string, poll func() (bool, error)) error {
		for {
			ok, err := poll()
			if err != nil {
				return fmt.Errorf("%s: %w", what, err)
			}
			if ok {
				return nil
			}
			select {
			case err := <-done:
				return fmt.Errorf("%s: daemon exited early: %w", what, err)
			case <-expired.C:
				return fmt.Errorf("%s: smoke budget exhausted", what)
			case <-tick.C:
			}
		}
	}

	// 1. The daemon publishes its resolved address.
	var addr string
	if err := wait("daemon startup", func() (bool, error) {
		b, err := os.ReadFile(filepath.Join(data, "dpplaced.addr"))
		if err != nil || len(strings.TrimSpace(string(b))) == 0 {
			return false, nil
		}
		addr = strings.TrimSpace(string(b))
		return true, nil
	}); err != nil {
		return err
	}
	base := "http://" + addr

	// 2. Submit an example generated netlist.
	spec := `{"name":"smoke","priority":1,
		"gen":{"seed":7,"bits":8,"units":["adder","regbank"],"random_cells":300,"pads":12},
		"options":{"outer":8,"inner":20}}`
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	var view struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("submit: decode: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted || view.ID == "" {
		return fmt.Errorf("submit: status %d (%s)", resp.StatusCode, view.Error)
	}
	fmt.Printf("serve-smoke: submitted %s to %s\n", view.ID, base)

	// 3. Poll the job to completion.
	var last struct {
		State string  `json:"state"`
		Exit  string  `json:"exit"`
		Error string  `json:"error"`
		HPWL  float64 `json:"hpwl"`
	}
	if err := wait("job completion", func() (bool, error) {
		resp, err := http.Get(base + "/jobs/" + view.ID)
		if err != nil {
			return false, nil
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&last); err != nil {
			return false, nil
		}
		switch last.State {
		case "done":
			return true, nil
		case "failed", "canceled":
			return false, fmt.Errorf("job %s %s: %s", view.ID, last.State, last.Error)
		}
		return false, nil
	}); err != nil {
		return err
	}
	if last.Exit != "ok" || last.HPWL <= 0 {
		return fmt.Errorf("job finished exit=%q hpwl=%v, want ok with positive HPWL", last.Exit, last.HPWL)
	}
	fmt.Printf("serve-smoke: %s done, HPWL %.0f\n", view.ID, last.HPWL)

	// 4. Validate the run-report artifact.
	resp, err = http.Get(base + "/jobs/" + view.ID + "/report")
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	var report struct {
		Schema string `json:"schema"`
		Exit   string `json:"exit"`
		HPWL   struct {
			Final float64 `json:"final"`
		} `json:"hpwl"`
	}
	err = json.NewDecoder(resp.Body).Decode(&report)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("report: decode: %w", err)
	}
	if report.Schema != "dpplace-run-report/v1" {
		return fmt.Errorf("report schema = %q, want dpplace-run-report/v1", report.Schema)
	}
	if report.Exit != "ok" || report.HPWL.Final <= 0 {
		return fmt.Errorf("report exit=%q final=%v, want ok with positive final HPWL", report.Exit, report.HPWL.Final)
	}

	// 5. The placement artifact is a Bookshelf .pl.
	resp, err = http.Get(base + "/jobs/" + view.ID + "/placement")
	if err != nil {
		return fmt.Errorf("placement: %w", err)
	}
	plBytes := make([]byte, 64)
	n, _ := resp.Body.Read(plBytes)
	resp.Body.Close()
	if !strings.Contains(string(plBytes[:n]), "UCLA pl") {
		return fmt.Errorf("placement artifact does not look like a .pl: %q", plBytes[:n])
	}

	// 6. SIGTERM: the drain must be clean (exit 0).
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	select {
	case err := <-done:
		if err != nil {
			var ee *exec.ExitError
			if errors.As(err, &ee) {
				return fmt.Errorf("drain exit code %d, want 0", ee.ExitCode())
			}
			return fmt.Errorf("drain: %w", err)
		}
	case <-expired.C:
		return fmt.Errorf("drain: daemon still running at the smoke budget")
	}
	fmt.Println("serve-smoke: clean drain")
	return nil
}
