// Command servesmoke is the CI smoke driver for dpplaced. It runs two
// scripted daemon lifetimes against one shared data directory:
//
// Phase 1 (clean lifecycle): boot the daemon on an ephemeral port, check the
// health probes, submit an example generated netlist, poll the job to
// completion, validate the dpplace-run-report/v1 artifact (including its
// metrics_snapshot section) and the placement, scrape /metrics and assert
// the core series exist and that two idle scrapes are byte-identical, then
// SIGTERM and assert a clean drain (exit 0).
//
// Phase 2 (drain under load): reboot the daemon on the same data directory
// (exercising journal replay) with a short -drain-timeout, submit a job big
// enough to still be grinding at the deadline, SIGTERM mid-run, assert
// /readyz flips to 503 while the job is still running and /metrics keeps
// serving through the drain window, and assert the daemon exits 3 (forced
// drain: the job checkpointed for the next instance).
//
// Any deviation exits nonzero with a description, so the Makefile target
// (`make serve-smoke`) is a single command in CI.
//
// Usage:
//
//	servesmoke -bin path/to/dpplaced [-timeout 300s]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	bin := flag.String("bin", "", "path to the dpplaced binary (required)")
	timeout := flag.Duration("timeout", 300*time.Second, "overall smoke budget")
	dataDir := flag.String("data", "", "daemon data directory, wiped at start and "+
		"kept after the run (default: a private temp dir, removed afterwards); "+
		"CI passes a known path here so the journal and artifacts survive a "+
		"failure for upload")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "usage: servesmoke -bin path/to/dpplaced")
		os.Exit(2)
	}
	if err := smoke(*bin, *timeout, *dataDir); err != nil {
		fmt.Fprintf(os.Stderr, "serve-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("serve-smoke: PASS")
}

// daemon is one running dpplaced instance under test.
type daemon struct {
	cmd  *exec.Cmd
	done chan error
	base string
}

// startDaemon boots the binary on an ephemeral port over the given data dir
// and waits (via poll) for the published address file.
func startDaemon(bin, data string, extraArgs []string, wait func(string, func() (bool, error)) error) (*daemon, error) {
	args := append([]string{"-addr", "127.0.0.1:0", "-data", data, "-workers", "2"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start daemon: %w", err)
	}
	d := &daemon{cmd: cmd, done: make(chan error, 1)}
	go func() { d.done <- cmd.Wait() }()
	var addr string
	if err := wait("daemon startup", func() (bool, error) {
		b, err := os.ReadFile(filepath.Join(data, "dpplaced.addr"))
		if err != nil || len(strings.TrimSpace(string(b))) == 0 {
			return false, nil
		}
		addr = strings.TrimSpace(string(b))
		return true, nil
	}); err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	d.base = "http://" + addr
	return d, nil
}

// getStatus fetches path and returns the status code (0 on transport error).
func (d *daemon) getStatus(path string) int {
	resp, err := http.Get(d.base + path)
	if err != nil {
		return 0
	}
	resp.Body.Close()
	return resp.StatusCode
}

// scrapeMetrics fetches /metrics and returns the exposition text.
func (d *daemon) scrapeMetrics() (string, error) {
	resp, err := http.Get(d.base + "/metrics")
	if err != nil {
		return "", fmt.Errorf("GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return "", fmt.Errorf("GET /metrics: Content-Type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("GET /metrics: read: %w", err)
	}
	return string(b), nil
}

// submit posts a job spec and returns the job id.
func (d *daemon) submit(spec string) (string, error) {
	resp, err := http.Post(d.base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return "", fmt.Errorf("submit: %w", err)
	}
	var view struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		return "", fmt.Errorf("submit: decode: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted || view.ID == "" {
		return "", fmt.Errorf("submit: status %d (%s)", resp.StatusCode, view.Error)
	}
	return view.ID, nil
}

// jobView is the subset of the job view the smoke inspects.
type jobView struct {
	State string  `json:"state"`
	Exit  string  `json:"exit"`
	Error string  `json:"error"`
	HPWL  float64 `json:"hpwl"`
}

// job fetches one job's view (ok=false on transport/decode trouble, which
// pollers treat as retry).
func (d *daemon) job(id string) (jobView, bool) {
	var v jobView
	resp, err := http.Get(d.base + "/jobs/" + id)
	if err != nil {
		return v, false
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return v, false
	}
	return v, true
}

// coreSeries are the /metrics series whose presence phase 1 asserts after
// one completed job.
var coreSeries = []string{
	`dpplaced_jobs_total{state="done"} 1`,
	`dpplaced_jobs_total{state="queued"} 1`,
	`dpplaced_jobs_total{state="running"} 1`,
	`dpplaced_queue_depth 0`,
	`dpplaced_job_duration_seconds_count 1`,
	`dpplaced_job_duration_seconds_bucket`,
	`dpplaced_journal_fsync_seconds_bucket`,
	`dpplaced_journal_appends_total`,
	`dpplaced_admission_rejects_total{reason="queue_full"} 0`,
	`dpplaced_par_budget_workers 2`,
	`dpplace_stage_seconds_bucket{stage="global",le=`,
	`dpplace_health_events_total{kind="rollbacks"}`,
}

// smoke runs the whole scenario; any error fails the smoke. A non-empty
// dataDir is wiped first — a journal left over from an earlier run would be
// replayed by the phase-1 boot and skew the metrics assertions — and left
// behind afterwards for post-mortem inspection.
func smoke(bin string, budget time.Duration, dataDir string) error {
	data := dataDir
	if data == "" {
		var err error
		data, err = os.MkdirTemp("", "servesmoke")
		if err != nil {
			return err
		}
		defer os.RemoveAll(data)
	} else {
		if err := os.RemoveAll(data); err != nil {
			return err
		}
		if err := os.MkdirAll(data, 0o755); err != nil {
			return err
		}
	}

	// The overall budget is enforced with a deadline timer rather than
	// wall-clock reads.
	expired := time.NewTimer(budget)
	defer expired.Stop()
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	var activeDone chan error
	wait := func(what string, poll func() (bool, error)) error {
		for {
			ok, err := poll()
			if err != nil {
				return fmt.Errorf("%s: %w", what, err)
			}
			if ok {
				return nil
			}
			select {
			case err := <-activeDone:
				return fmt.Errorf("%s: daemon exited early: %w", what, err)
			case <-expired.C:
				return fmt.Errorf("%s: smoke budget exhausted", what)
			case <-tick.C:
			}
		}
	}

	if err := phaseCleanLifecycle(bin, data, &activeDone, wait, expired.C); err != nil {
		return fmt.Errorf("phase 1: %w", err)
	}
	if err := phaseDrainUnderLoad(bin, data, &activeDone, wait, expired.C); err != nil {
		return fmt.Errorf("phase 2: %w", err)
	}
	return nil
}

// phaseCleanLifecycle is the happy path: one job end to end, probes green,
// metrics populated and deterministic, clean drain on SIGTERM.
func phaseCleanLifecycle(bin, data string, activeDone *chan error,
	wait func(string, func() (bool, error)) error, expired <-chan time.Time) error {
	d, err := startDaemon(bin, data, nil, wait)
	if err != nil {
		return err
	}
	*activeDone = d.done
	defer d.cmd.Process.Kill()

	// Health probes before any work: alive and ready.
	if got := d.getStatus("/healthz"); got != http.StatusOK {
		return fmt.Errorf("/healthz = %d, want 200", got)
	}
	if got := d.getStatus("/readyz"); got != http.StatusOK {
		return fmt.Errorf("/readyz = %d, want 200", got)
	}

	id, err := d.submit(`{"name":"smoke","priority":1,
		"gen":{"seed":7,"bits":8,"units":["adder","regbank"],"random_cells":300,"pads":12},
		"options":{"outer":8,"inner":20}}`)
	if err != nil {
		return err
	}
	fmt.Printf("serve-smoke: submitted %s to %s\n", id, d.base)

	var last jobView
	if err := wait("job completion", func() (bool, error) {
		v, ok := d.job(id)
		if !ok {
			return false, nil
		}
		last = v
		switch v.State {
		case "done":
			return true, nil
		case "failed", "canceled":
			return false, fmt.Errorf("job %s %s: %s", id, v.State, v.Error)
		}
		return false, nil
	}); err != nil {
		return err
	}
	if last.Exit != "ok" || last.HPWL <= 0 {
		return fmt.Errorf("job finished exit=%q hpwl=%v, want ok with positive HPWL", last.Exit, last.HPWL)
	}
	fmt.Printf("serve-smoke: %s done, HPWL %.0f\n", id, last.HPWL)

	// Validate the run-report artifact, metrics_snapshot included.
	resp, err := http.Get(d.base + "/jobs/" + id + "/report")
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	var report struct {
		Schema string `json:"schema"`
		Exit   string `json:"exit"`
		HPWL   struct {
			Final float64 `json:"final"`
		} `json:"hpwl"`
		MetricsSnapshot map[string]float64 `json:"metrics_snapshot"`
	}
	err = json.NewDecoder(resp.Body).Decode(&report)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("report: decode: %w", err)
	}
	if report.Schema != "dpplace-run-report/v1" {
		return fmt.Errorf("report schema = %q, want dpplace-run-report/v1", report.Schema)
	}
	if report.Exit != "ok" || report.HPWL.Final <= 0 {
		return fmt.Errorf("report exit=%q final=%v, want ok with positive final HPWL", report.Exit, report.HPWL.Final)
	}
	if len(report.MetricsSnapshot) == 0 {
		return fmt.Errorf("report has no metrics_snapshot section")
	}
	if report.MetricsSnapshot[`dpplaced_jobs_total{state="running"}`] < 1 {
		return fmt.Errorf("metrics_snapshot missing the running-state transition: %v", report.MetricsSnapshot)
	}

	// The placement artifact is a Bookshelf .pl.
	resp, err = http.Get(d.base + "/jobs/" + id + "/placement")
	if err != nil {
		return fmt.Errorf("placement: %w", err)
	}
	plBytes := make([]byte, 64)
	n, _ := resp.Body.Read(plBytes)
	resp.Body.Close()
	if !strings.Contains(string(plBytes[:n]), "UCLA pl") {
		return fmt.Errorf("placement artifact does not look like a .pl: %q", plBytes[:n])
	}

	// Wait for the scheduler to go fully idle (runner unwound, budget
	// released), then assert the exposition: core series present, and two
	// consecutive idle scrapes byte-identical.
	if err := wait("scheduler idle", func() (bool, error) {
		resp, err := http.Get(d.base + "/stats")
		if err != nil {
			return false, nil
		}
		defer resp.Body.Close()
		var st struct {
			Running      int `json:"running"`
			WorkersInUse int `json:"workers_in_use"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return false, nil
		}
		return st.Running == 0 && st.WorkersInUse == 0, nil
	}); err != nil {
		return err
	}
	text, err := d.scrapeMetrics()
	if err != nil {
		return err
	}
	for _, want := range coreSeries {
		if !strings.Contains(text, want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}
	again, err := d.scrapeMetrics()
	if err != nil {
		return err
	}
	if again != text {
		return fmt.Errorf("two idle /metrics scrapes are not byte-identical")
	}
	fmt.Println("serve-smoke: /metrics core series present, idle scrapes identical")

	// SIGTERM: the drain must be clean (exit 0).
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	select {
	case err := <-d.done:
		if err != nil {
			var ee *exec.ExitError
			if errors.As(err, &ee) {
				return fmt.Errorf("drain exit code %d, want 0", ee.ExitCode())
			}
			return fmt.Errorf("drain: %w", err)
		}
	case <-expired:
		return fmt.Errorf("drain: daemon still running at the smoke budget")
	}
	fmt.Println("serve-smoke: clean drain")
	return nil
}

// phaseDrainUnderLoad reboots on the same data dir (journal replay), pins a
// grinder job, and proves the drain-aware probe contract: /readyz flips to
// 503 before the in-flight job finishes, /metrics serves through the drain,
// and the forced drain exits 3.
func phaseDrainUnderLoad(bin, data string, activeDone *chan error,
	wait func(string, func() (bool, error)) error, expired <-chan time.Time) error {
	d, err := startDaemon(bin, data, []string{"-drain-timeout", "2s"}, wait)
	if err != nil {
		return err
	}
	*activeDone = d.done
	defer d.cmd.Process.Kill()

	// The replayed daemon still serves phase 1's terminal job.
	if got := d.getStatus("/readyz"); got != http.StatusOK {
		return fmt.Errorf("/readyz after replay = %d, want 200", got)
	}

	id, err := d.submit(`{"name":"grinder",
		"gen":{"seed":7,"bits":8,"units":["adder","muxtree"],"random_cells":2500,"pads":16},
		"options":{"outer":400,"inner":200,"workers":1}}`)
	if err != nil {
		return err
	}
	if err := wait("grinder running", func() (bool, error) {
		v, ok := d.job(id)
		if !ok {
			return false, nil
		}
		if v.State == "done" || v.State == "failed" {
			return false, fmt.Errorf("grinder finished (%s) before the drain; enlarge the spec", v.State)
		}
		return v.State == "running", nil
	}); err != nil {
		return err
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	// The readiness probe must flip while the grinder still runs.
	if err := wait("/readyz flip to 503", func() (bool, error) {
		return d.getStatus("/readyz") == http.StatusServiceUnavailable, nil
	}); err != nil {
		return err
	}
	if v, ok := d.job(id); !ok || v.State != "running" {
		return fmt.Errorf("job state during 503 window = %q, want running", v.State)
	}
	text, err := d.scrapeMetrics()
	if err != nil {
		return fmt.Errorf("scrape during drain: %w", err)
	}
	if !strings.Contains(text, `dpplaced_jobs_running 1`) {
		return fmt.Errorf("/metrics during drain missing dpplaced_jobs_running 1")
	}
	fmt.Println("serve-smoke: /readyz flipped to 503 mid-run, /metrics live during drain")

	// The 2s drain deadline forces the checkpoint path: exit code 3.
	select {
	case err := <-d.done:
		var ee *exec.ExitError
		if err == nil {
			return fmt.Errorf("forced drain exited 0, want 3 (checkpointed)")
		}
		if !errors.As(err, &ee) {
			return fmt.Errorf("forced drain: %w", err)
		}
		if ee.ExitCode() != 3 {
			return fmt.Errorf("forced drain exit code %d, want 3", ee.ExitCode())
		}
	case <-expired:
		return fmt.Errorf("forced drain: daemon still running at the smoke budget")
	}
	fmt.Println("serve-smoke: forced drain checkpointed (exit 3)")
	return nil
}
