package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// lintPkg is one loaded, type-checked package: the unit the checks run over
// and the facts engine scans. Unlike the pre-facts placelint, the loader
// keeps the ASTs and the types.Info of every package it touches — including
// packages loaded only as dependencies — because interprocedural facts need
// the bodies of callees in other packages, not just their signatures.
type lintPkg struct {
	path  string // import path, e.g. "repro/internal/par"
	dir   string // directory as given to loadDir (kept for display)
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	// ignores maps filename -> line -> directive, parsed once at load time
	// so both the checks and the facts engine consult the same table.
	// Lookups only; never iterated for reporting (ignoreList is).
	ignores map[string]map[int]*ignoreDirective
	// ignoreList holds every well-formed directive in file/line order, for
	// the unusedignore check.
	ignoreList []*ignoreDirective
	// ignoreFindings are the malformed directives (pseudo-check "ignore"),
	// reported by every pass over this package.
	ignoreFindings []finding
}

// loader loads module packages by import path, type-checking each exactly
// once and caching the result — the per-package fact summaries the engine
// computes stay valid because the underlying packages never reload within a
// process. Imports outside the module fall through to the stdlib source
// importer.
type loader struct {
	fset       *token.FileSet
	moduleDir  string // absolute directory holding go.mod
	modulePath string // module path from go.mod, e.g. "repro"
	stdlib     types.Importer
	pkgs       map[string]*lintPkg // by import path
	byDir      map[string]*lintPkg // by absolute directory
	loading    map[string]bool     // import-cycle guard (should never trip)
}

// moduleLine extracts the module path from a go.mod.
var moduleLine = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// newLoader locates the enclosing module (walking up from the working
// directory to the nearest go.mod) and returns a loader rooted there.
func newLoader(fset *token.FileSet) (*loader, error) {
	dir, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			m := moduleLine.FindSubmatch(data)
			if m == nil {
				return nil, fmt.Errorf("%s/go.mod: no module line", dir)
			}
			return &loader{
				fset:       fset,
				moduleDir:  dir,
				modulePath: string(m[1]),
				stdlib:     importer.ForCompiler(fset, "source", nil),
				pkgs:       map[string]*lintPkg{},
				byDir:      map[string]*lintPkg{},
				loading:    map[string]bool{},
			}, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// Import implements types.Importer: module-internal paths load (and cache)
// through the loader itself, so cross-package identifier uses resolve to the
// same types.Object the callee package's own check sees — the property the
// facts engine's call graph depends on. Everything else is stdlib.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		lp, err := l.loadDir(filepath.Join(l.moduleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.stdlib.Import(path)
}

// loadDir parses and type-checks the non-test Go files of one directory as a
// single package under its real import path, loading module dependencies
// recursively. Results are cached by directory and import path.
func (l *loader) loadDir(dir string) (*lintPkg, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if lp := l.byDir[abs]; lp != nil {
		return lp, nil
	}
	path, err := l.importPath(abs)
	if err != nil {
		return nil, err
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	// Prefer a working-directory-relative parse path so findings print the
	// short names developers (and the testdata harness) expect.
	parseDir := dir
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, abs); err == nil {
			parseDir = rel
		}
	}
	files, err := parseDirFiles(l.fset, parseDir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check: %w", err)
	}
	lp := &lintPkg{path: path, dir: dir, files: files, pkg: pkg, info: info}
	lp.parseIgnores(l.fset)
	l.pkgs[path] = lp
	l.byDir[abs] = lp
	return lp, nil
}

// importPath maps an absolute directory inside the module to its import
// path (the module path itself for the module root).
func (l *loader) importPath(abs string) (string, error) {
	rel, err := filepath.Rel(l.moduleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", abs, l.modulePath)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// parseIgnores scans every comment of the package for suppression
// directives, recording well-formed ones for lookup (and for the
// unusedignore audit) and malformed ones as findings of the pseudo-check
// "ignore" — a bare or typo'd ignore must never silently suppress.
func (lp *lintPkg) parseIgnores(fset *token.FileSet) {
	lp.ignores = map[string]map[int]*ignoreDirective{}
	for _, f := range lp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
				switch {
				case len(fields) == 0:
					lp.ignoreFindings = append(lp.ignoreFindings, finding{pos, "ignore",
						"directive names no check: want //placelint:ignore <check> <reason>"})
				case !knownCheck(fields[0]):
					lp.ignoreFindings = append(lp.ignoreFindings, finding{pos, "ignore",
						fmt.Sprintf("directive names unknown check %q", fields[0])})
				case len(fields) == 1:
					lp.ignoreFindings = append(lp.ignoreFindings, finding{pos, "ignore",
						fmt.Sprintf("bare ignore for %q: a reason is mandatory", fields[0])})
				default:
					d := &ignoreDirective{
						check:  fields[0],
						reason: strings.Join(fields[1:], " "),
						pos:    pos,
					}
					byLine := lp.ignores[pos.Filename]
					if byLine == nil {
						byLine = map[int]*ignoreDirective{}
						lp.ignores[pos.Filename] = byLine
					}
					byLine[pos.Line] = d
					lp.ignoreList = append(lp.ignoreList, d)
				}
			}
		}
	}
}

// ignoreAt returns the directive covering (filename, line) for check — the
// same line or the line directly above — or nil.
func (lp *lintPkg) ignoreAt(filename string, line int, check string) *ignoreDirective {
	byLine := lp.ignores[filename]
	if byLine == nil {
		return nil
	}
	for _, ln := range []int{line, line - 1} {
		if d := byLine[ln]; d != nil && d.check == check {
			return d
		}
	}
	return nil
}
