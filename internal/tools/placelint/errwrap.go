package main

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// checkErrWrap enforces the internal/pipeline error-taxonomy contract:
// callers branch on the four sentinels (ErrTimeout, ErrDiverged,
// ErrDegenerateGroups, ErrMalformedInput) with errors.Is, which only works
// while every wrapping layer preserves the chain. A single fmt.Errorf that
// formats an error with %v or %s instead of %w severs the chain and turns a
// typed degradation into a generic failure.
//
// The check is module-wide rather than scoped to pipeline call sites:
// every stage error eventually crosses the taxonomy boundary, so any lossy
// wrap on the way up is a defect. Deliberate flattening (e.g. folding an
// error into a log string) is annotated //placelint:ignore errwrap <reason>.
func checkErrWrap(p *pass) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFmtErrorf(p.info, call) || len(call.Args) < 2 {
				return true
			}
			format := constStringValue(p.info, call.Args[0])
			if format == "" {
				return true // non-constant format: nothing to verify
			}
			verbs := formatVerbs(format)
			for i, arg := range call.Args[1:] {
				t := p.info.TypeOf(arg)
				if t == nil || !types.Implements(t, errIface) {
					continue
				}
				verb := byte('v')
				if i < len(verbs) {
					verb = verbs[i]
				}
				if verb != 'w' {
					p.reportf(arg.Pos(), "errwrap",
						"error argument formatted with %%%c: use %%w so the pipeline sentinel chain survives errors.Is", verb)
				}
			}
			return true
		})
	}
}

// isFmtErrorf reports whether call invokes fmt.Errorf.
func isFmtErrorf(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "fmt" && obj.Name() == "Errorf"
}

// constStringValue returns e's compile-time string value, or "".
func constStringValue(info *types.Info, e ast.Expr) string {
	v := info.Types[e].Value
	if v == nil || v.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(v)
}

// formatVerbs maps each format argument position to its verb letter,
// following fmt's syntax far enough for the wrap check: flags, width,
// precision (each possibly '*', which consumes an argument) and explicit
// argument indexes '[n]'.
func formatVerbs(format string) []byte {
	var verbs []byte
	argIdx := 0
	note := func(idx int, verb byte) {
		for len(verbs) <= idx {
			verbs = append(verbs, 0)
		}
		verbs[idx] = verb
	}
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags
		for i < len(format) && (format[i] == '+' || format[i] == '-' ||
			format[i] == '#' || format[i] == ' ' || format[i] == '0') {
			i++
		}
		// explicit argument index
		if i < len(format) && format[i] == '[' {
			j := i + 1
			n := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && n > 0 {
				argIdx = n - 1
				i = j + 1
			}
		}
		// width / precision, '*' consumes an argument each
		for i < len(format) && (format[i] == '.' || format[i] == '*' ||
			(format[i] >= '0' && format[i] <= '9')) {
			if format[i] == '*' {
				argIdx++
			}
			i++
		}
		if i < len(format) {
			note(argIdx, format[i])
			argIdx++
		}
	}
	return verbs
}
