package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkParDiscipline enforces the compute-then-reduce rule inside closures
// handed to the internal/par pool (Run, RunWorker, ForShards): a worker may
// write only to slots it owns — slice elements indexed by a value derived
// from the closure's own parameters or locals (the lo..hi range, the worker
// or shard index, a loop variable over them). Anything else is either a
// data race or, for commutative-looking float accumulation, a silent
// dependence on the dynamic schedule: `sum += v` inside a par closure
// produces a different rounding at every worker count, which is exactly the
// bug class the golden TestWorkersBitIdentical exists to catch — placelint
// rejects it before it runs.
//
// Flagged writes, from worst to subtlest:
//
//   - assignment or += into a captured plain variable (shared accumulator);
//   - any write into a captured map (maps have no owned slots);
//   - a write into a captured slice at an index with no closure-local
//     component (e.g. s[0] += v — a disguised shared accumulator);
//   - delete on a captured map, copy into a captured slice not sliced by a
//     closure-local bound.
//
// Reductions belong after the pool call, serially, in index order. A write
// that is provably safe anyway (e.g. idempotent same-value stores) carries
// //placelint:ignore pardiscipline <reason>.
func checkParDiscipline(p *pass) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParPoolCall(p.info, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					p.checkParClosure(lit)
				}
			}
			return true
		})
	}
}

// parMethods are the pool entry points whose closure arguments run
// concurrently.
var parMethods = map[string]bool{"Run": true, "RunWorker": true, "ForShards": true}

// isParPoolCall reports whether call invokes a method of internal/par.Pool
// that takes a worker closure.
func isParPoolCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !parMethods[sel.Sel.Name] {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "internal/par")
}

// checkParClosure walks one worker closure and reports every write that
// escapes the worker-owned slots.
func (p *pass) checkParClosure(lit *ast.FuncLit) {
	locals := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := p.info.Defs[id]; o != nil {
				locals[o] = true
			}
		}
		return true
	})
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				p.checkParWrite(lhs, locals)
			}
		case *ast.IncDecStmt:
			p.checkParWrite(s.X, locals)
		case *ast.CallExpr:
			p.checkParBuiltin(s, locals)
		}
		return true
	})
}

// checkParWrite classifies one assignment target inside a par closure.
func (p *pass) checkParWrite(lhs ast.Expr, locals map[types.Object]bool) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	idxLocal, mapWrite := false, false
	root := lhs
unwrap:
	for {
		switch t := root.(type) {
		case *ast.ParenExpr:
			root = t.X
		case *ast.StarExpr:
			root = t.X
		case *ast.SelectorExpr:
			root = t.X
		case *ast.IndexExpr:
			if xt := p.info.TypeOf(t.X); xt != nil {
				if _, ok := xt.Underlying().(*types.Map); ok {
					mapWrite = true
				}
			}
			if exprUsesAny(p.info, t.Index, locals) {
				idxLocal = true
			}
			root = t.X
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{t.Low, t.High, t.Max} {
				if b != nil && exprUsesAny(p.info, b, locals) {
					idxLocal = true
				}
			}
			root = t.X
		default:
			break unwrap
		}
	}
	id, ok := root.(*ast.Ident)
	if !ok {
		return // write through a call result etc. — out of scope
	}
	obj := p.info.Uses[id]
	if obj == nil {
		obj = p.info.Defs[id] // := definitions are locals by construction
	}
	if obj == nil || locals[obj] {
		return
	}
	switch {
	case root == lhs:
		p.reportf(lhs.Pos(), "pardiscipline",
			"write to captured variable %s inside a par closure: a shared accumulator depends on the worker schedule; compute into per-index slots and reduce serially after the pool call", id.Name)
	case mapWrite:
		p.reportf(lhs.Pos(), "pardiscipline",
			"write into captured map %s inside a par closure: maps have no worker-owned slots (data race); collect per-worker and merge after the pool call", id.Name)
	case !idxLocal:
		p.reportf(lhs.Pos(), "pardiscipline",
			"write into captured %s at an index not derived from the closure's range: the slot is shared across workers; index by the worker's own lo..hi range or slot", id.Name)
	}
}

// checkParBuiltin flags the mutating builtins: delete on a captured map and
// copy into a captured destination without a closure-local slice bound.
func (p *pass) checkParBuiltin(call *ast.CallExpr, locals map[types.Object]bool) {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	b, ok := p.info.Uses[fn].(*types.Builtin)
	if !ok {
		return
	}
	switch b.Name() {
	case "delete":
		if len(call.Args) > 0 {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				obj := p.info.Uses[id]
				if obj != nil && !locals[obj] {
					p.reportf(id.Pos(), "pardiscipline",
						"delete on captured map %s inside a par closure: maps have no worker-owned slots (data race)", id.Name)
				}
			}
		}
	case "copy":
		if len(call.Args) > 0 {
			p.checkParWriteDst(call.Args[0], locals)
		}
	}
}

// checkParWriteDst treats e as a write destination (for copy): fine only
// when it is closure-local or sliced by a closure-local bound.
func (p *pass) checkParWriteDst(e ast.Expr, locals map[types.Object]bool) {
	if se, ok := e.(*ast.SliceExpr); ok {
		for _, b := range []ast.Expr{se.Low, se.High, se.Max} {
			if b != nil && exprUsesAny(p.info, b, locals) {
				return
			}
		}
		e = se.X
	}
	if id, ok := e.(*ast.Ident); ok {
		obj := p.info.Uses[id]
		if obj == nil || locals[obj] {
			return
		}
		p.reportf(e.Pos(), "pardiscipline",
			"copy into captured %s inside a par closure without a closure-local slice bound: the destination is shared across workers", id.Name)
	}
}
