package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkMapOrder flags every `for … range m` where m is a map. Go randomizes
// map iteration order per run, so any map range whose body's effect depends
// on visit order makes the placement nondeterministic — exactly the bug
// PR 2 had to chase through global/chain.go's argmax.
//
// The one idiom that is provably order-independent and therefore exempt is
// collect-then-sort: a loop body that only appends keys (or values) to
// slices, each of which is passed to a sort call later in the same
// function. Everything else must either adopt that idiom or carry a
// //placelint:ignore maporder <reason> explaining why order cannot leak
// into results (e.g. the body only inserts into another map, or the loop is
// a pure existence scan).
func checkMapOrder(p *pass) {
	for _, f := range p.files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if p.collectThenSorted(file, rs) {
				return true
			}
			p.reportf(rs.Pos(), "maporder",
				"range over map has nondeterministic order; collect the keys into a slice and sort, or annotate //placelint:ignore maporder <why order cannot affect results>")
			return true
		})
	}
}

// collectThenSorted reports whether rs is the collect half of the
// collect-then-sort idiom: every statement in its body appends to a slice
// variable — possibly behind an if-filter, which preserves order
// independence — and every one of those slices is handed to a sort call
// somewhere in the same enclosing function.
func (p *pass) collectThenSorted(f *ast.File, rs *ast.RangeStmt) bool {
	targets := map[types.Object]bool{}
	for _, stmt := range rs.Body.List {
		if !collectStmt(p.info, stmt, targets) {
			return false
		}
	}
	if len(targets) == 0 {
		return false
	}
	body := enclosingFuncBody(f, rs.Pos())
	if body == nil {
		return false
	}
	// Every collected slice must reach a sort call. Count the distinct
	// targets seen as sort arguments; all must be covered.
	sorted := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(p.info, call) {
			return true
		}
		for _, arg := range call.Args {
			markUsedTargets(p.info, arg, targets, sorted)
		}
		return true
	})
	return len(sorted) == len(targets)
}

// collectStmt reports whether stmt only collects into slices, recording the
// slice variables into targets. Allowed shapes: `x = append(x, …)` and an
// if statement (no else, no init) whose body only collects — filtering
// before a sorted collect cannot reintroduce order dependence.
func collectStmt(info *types.Info, stmt ast.Stmt, targets map[types.Object]bool) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		obj := appendTarget(info, s)
		if obj == nil {
			return false
		}
		targets[obj] = true
		return true
	case *ast.IfStmt:
		if s.Else != nil {
			return false
		}
		if s.Init != nil {
			// Only a `x := …` declaration init (the comma-ok lookup idiom);
			// anything assigning to existing state could leak order.
			init, ok := s.Init.(*ast.AssignStmt)
			if !ok || init.Tok != token.DEFINE {
				return false
			}
		}
		for _, st := range s.Body.List {
			if !collectStmt(info, st, targets) {
				return false
			}
		}
		return true
	}
	return false
}

// appendTarget returns the variable being appended to when stmt has the
// exact shape `x = append(x, …)` (or `x := append(x, …)`), and nil for any
// other statement.
func appendTarget(info *types.Info, as *ast.AssignStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	if o := info.Defs[lhs]; o != nil {
		return o
	}
	return info.Uses[lhs]
}

// sortFuncs are the stdlib entry points that establish a deterministic
// order over a collected slice.
var sortFuncs = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// isSortCall reports whether call invokes one of sortFuncs.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return sortFuncs[obj.Pkg().Name()+"."+obj.Name()]
}

// markUsedTargets records, into sorted, every target object mentioned
// anywhere inside arg (covering both `sort.Strings(keys)` and
// `sort.Slice(keys, func…)` and wrapper types like `sort.Sort(byX(keys))`).
func markUsedTargets(info *types.Info, arg ast.Expr, targets, sorted map[types.Object]bool) {
	ast.Inspect(arg, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if o := info.Uses[id]; o != nil && targets[o] {
			sorted[o] = true
		}
		return true
	})
}
