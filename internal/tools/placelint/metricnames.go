package main

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// checkMetricNames statically enforces the metric-registration contract of
// internal/obs/metrics before it can panic at daemon startup: every name and
// label handed to a Registry constructor (Counter, Gauge, Histogram,
// CounterVec, HistogramVec) must be a compile-time string constant in
// snake_case, and no name may be registered twice within a package. The
// registry panics on these at runtime; the check moves the failure to review
// time and additionally catches duplicates that only collide across distant
// call sites.
//
// Names built at runtime (fmt.Sprintf, variables of unknown value) are
// flagged too: dynamic metric names defeat both the duplicate analysis and
// the fixed-series-set discipline the exposition relies on. A registration
// helper that genuinely must compute its name carries
// //placelint:ignore metricnames <reason>.
func checkMetricNames(p *pass) {
	seen := map[string]token.Pos{}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := registryConstructor(p.info, call)
			if !ok {
				return true
			}
			name, nameOK := p.constString(call.Args[0])
			if !nameOK {
				p.reportf(call.Args[0].Pos(), "metricnames",
					"metric name passed to Registry.%s is not a compile-time string constant: dynamic names defeat duplicate detection and the fixed-series discipline", method)
				return true
			}
			if !metricNameRE.MatchString(name) {
				p.reportf(call.Args[0].Pos(), "metricnames",
					"metric name %q is not snake_case ([a-z][a-z0-9_]*)", name)
			} else if first, dup := seen[name]; dup {
				p.reportf(call.Args[0].Pos(), "metricnames",
					"duplicate registration of metric %q (first registered at %s)",
					name, p.fset.Position(first))
			} else {
				seen[name] = call.Args[0].Pos()
			}
			if li := labelArgIndex(method); li >= 0 && li < len(call.Args) {
				label, labelOK := p.constString(call.Args[li])
				switch {
				case !labelOK:
					p.reportf(call.Args[li].Pos(), "metricnames",
						"label name passed to Registry.%s is not a compile-time string constant", method)
				case !metricNameRE.MatchString(label):
					p.reportf(call.Args[li].Pos(), "metricnames",
						"label name %q is not snake_case ([a-z][a-z0-9_]*)", label)
				}
			}
			return true
		})
	}
}

// metricNameRE is the snake_case shape the registry accepts; keep in sync
// with internal/obs/metrics.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// registryMethods maps the Registry constructor names to recognition. The
// instrument-level methods (With, Add, Observe) are deliberately absent:
// label values are runtime data, only names and label keys are schema.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "HistogramVec": true,
}

// labelArgIndex returns the argument position of the label name for vec
// constructors (-1 for unlabeled instruments).
func labelArgIndex(method string) int {
	if strings.HasSuffix(method, "Vec") {
		return 2 // (name, help, label, ...)
	}
	return -1
}

// registryConstructor reports whether call invokes a metric-registering
// method of internal/obs/metrics.Registry, returning the method name.
func registryConstructor(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] || len(call.Args) < 2 {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if !strings.HasSuffix(obj.Pkg().Path(), "internal/obs/metrics") {
		return "", false
	}
	// Methods only: the receiver must be the Registry type, not a free
	// function from the same package that happens to share a name.
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if !strings.Contains(sig.Recv().Type().String(), "Registry") {
		return "", false
	}
	return sel.Sel.Name, true
}

// constString resolves e to its compile-time string value when the type
// checker proved it constant (string literals, named constants, constant
// concatenation).
func (p *pass) constString(e ast.Expr) (string, bool) {
	tv, ok := p.info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
