package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// checks registers every analysis in the order they run. One check, one
// file, one invariant — adding a tenth check is a new entry here plus a
// new file with a checkXxx(*pass) function and a testdata package.
// unusedignore must stay last: it audits which suppressions the earlier
// checks (and the facts engine) actually consumed.
var checks = []struct {
	name string
	run  func(*pass)
}{
	{"maporder", checkMapOrder},
	{"pardiscipline", checkParDiscipline},
	{"walltime", checkWallTime},
	{"floateq", checkFloatEq},
	{"errwrap", checkErrWrap},
	{"metricnames", checkMetricNames},
	{"hotalloc", checkHotAlloc},
	{"parpurity", checkParPurity},
	{"unusedignore", checkUnusedIgnore},
}

// knownCheck reports whether name is a registered check, for validating
// ignore directives ("ignore" is the validator's own reporting name).
func knownCheck(name string) bool {
	for _, c := range checks {
		if c.name == name {
			return true
		}
	}
	return false
}

// finding is one violation at one source position.
type finding struct {
	pos   token.Position
	check string
	msg   string
}

// ignoreDirective is one parsed //placelint:ignore comment. A directive
// suppresses findings of its check on its own line and on the line directly
// below it (i.e. it may trail the flagged code or lead it as a comment).
// For the fact-backed checks (walltime, hotalloc, parpurity) a directive
// does more than silence a message: it clears the underlying fact at its
// source, so callers of the suppressed code stay clean too.
type ignoreDirective struct {
	check  string
	reason string
	pos    token.Position
}

// pass carries one type-checked package through every check. The package
// (with its parsed ignore table) comes from the loader; the fact database
// is shared across every pass of the run, so cross-package summaries are
// computed once.
type pass struct {
	fset     *token.FileSet
	lp       *lintPkg
	db       *factDB
	files    []*ast.File
	pkg      *types.Package
	info     *types.Info
	only     []string // nil = all checks; the unusedignore audit respects it
	findings []finding
}

// ignorePrefix introduces a suppression comment:
// //placelint:ignore <check> <reason>.
const ignorePrefix = "//placelint:ignore"

// newPass builds the pass over one loaded package. Malformed suppression
// directives (unknown check, missing reason) surface immediately as
// violations of the pseudo-check "ignore" — a bare ignore must never
// silently suppress.
func newPass(fset *token.FileSet, lp *lintPkg, db *factDB, only []string) *pass {
	p := &pass{fset: fset, lp: lp, db: db,
		files: lp.files, pkg: lp.pkg, info: lp.info, only: only}
	p.findings = append(p.findings, lp.ignoreFindings...)
	return p
}

// run executes the registered checks, or just the named subset when only is
// non-nil (the testdata harness isolates one check per package).
func (p *pass) run() {
	for _, c := range checks {
		if p.only != nil && !contains(p.only, c.name) {
			continue
		}
		c.run(p)
	}
}

// contains reports whether list holds s.
func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// reportf records a finding of check at pos unless a matching ignore
// directive covers the line (same line, or the line directly above). A
// directive that suppresses is marked used, which keeps it alive under the
// unusedignore audit.
func (p *pass) reportf(pos token.Pos, check, format string, args ...any) {
	position := p.fset.Position(pos)
	if d := p.lp.ignoreAt(position.Filename, position.Line, check); d != nil {
		p.db.usedIgnores[d] = true
		return
	}
	p.findings = append(p.findings, finding{position, check, fmt.Sprintf(format, args...)})
}

// fileName returns the path of f as recorded in the file set.
func (p *pass) fileName(f *ast.File) string {
	return p.fset.Position(f.Pos()).Filename
}

// eachFunc visits every function declaration of the package together with
// its fact summary, in file/declaration order.
func (p *pass) eachFunc(visit func(fd *ast.FuncDecl, ff *funcFacts)) {
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if ff := p.db.factsFor(obj); ff != nil {
				visit(fd, ff)
			}
		}
	}
}

// parseDirFiles parses the non-test Go files of dir, in sorted file-name
// order, with comments (the directives live there).
func parseDirFiles(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal in f that contains pos, or nil when pos sits outside any
// function. Checks use it to scope idiom searches (e.g. "are the collected
// keys sorted in the same function").
func enclosingFuncBody(f *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false // prune subtrees that cannot contain pos
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil && pos >= fn.Body.Pos() && pos < fn.Body.End() {
				best = fn.Body
			}
		case *ast.FuncLit:
			if pos >= fn.Body.Pos() && pos < fn.Body.End() {
				best = fn.Body
			}
		}
		return true
	})
	return best
}

// exprUsesAny reports whether e mentions an identifier whose object is in
// objs (by Uses or Defs).
func exprUsesAny(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if o := info.Uses[id]; o != nil && objs[o] {
			found = true
		}
		if o := info.Defs[id]; o != nil && objs[o] {
			found = true
		}
		return true
	})
	return found
}
