package main

import (
	"go/token"
	"path/filepath"
	"testing"

	"repro/internal/tools/lintest"
)

// TestChecksOnTestdata runs each check against its seeded testdata package
// and enforces the exact two-way match between `// want` annotations and
// findings: every seeded violation must be caught, and nothing else may be
// flagged — the exempt idioms in the same files double as false-positive
// regression tests.
func TestChecksOnTestdata(t *testing.T) {
	cases := []struct {
		dir  string
		only []string // nil runs everything, incl. the ignore validator
	}{
		{"maporder", []string{"maporder"}},
		{"pardiscipline", []string{"pardiscipline"}},
		{"walltime", []string{"walltime"}},
		{"floateq", []string{"floateq"}},
		{"errwrap", []string{"errwrap"}},
		{"metricnames", []string{"metricnames"}},
		{"hotalloc", []string{"hotalloc"}},
		{"parpurity", []string{"parpurity"}},
		// The audit needs its subject checks in the run set: it only judges
		// directives whose check had the chance to consume them.
		{"unusedignore", []string{"floateq", "walltime", "unusedignore"}},
		{"ignore", nil},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.dir)
			fset := token.NewFileSet()
			got, err := lintPackages(fset, []string{dir}, tc.only)
			if err != nil {
				t.Fatalf("lintPackages(%s): %v", dir, err)
			}
			finds := make([]lintest.Finding, 0, len(got))
			for _, f := range got {
				finds = append(finds, lintest.Finding{
					File: filepath.Base(f.pos.Filename),
					Line: f.pos.Line,
					Msg:  f.msg,
				})
			}
			lintest.Check(t, lintest.ParseWants(t, dir), finds)
		})
	}
}

// TestTreeIsClean asserts the invariant `make lint` enforces in CI: the
// repository's own source produces zero findings — including the
// transitive fact-backed checks and the unused-suppression audit. Any new
// violation must be fixed or carry a reasoned //placelint:ignore before it
// can land.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := filepath.Join("..", "..", "..")
	dirs, err := collectDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	got, err := lintPackages(fset, dirs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range got {
		t.Errorf("%s:%d: [%s] %s", f.pos.Filename, f.pos.Line, f.check, f.msg)
	}
}
