package main

import "fmt"

// checkUnusedIgnore audits the suppressions themselves: a
// //placelint:ignore <check> <reason> that no longer suppresses anything —
// no diagnostic on its lines, no fact cleared at its source — is reported.
// Stale ignores are how invariant rot starts: the hazard they documented
// was fixed (or moved), the comment stays, and a later real violation on
// the same line hides behind it. The check keeps the suppression set
// exactly as large as the set of live, reasoned exceptions.
//
// It runs last in the registry, after every other check of the run has had
// the chance to consume directives, and judges only directives whose check
// actually ran (-only runs cannot know whether an out-of-set directive is
// live). Findings are recorded directly, not through reportf: a
// suppression of the suppression audit would be self-defeating.
func checkUnusedIgnore(p *pass) {
	for _, d := range p.lp.ignoreList {
		if p.only != nil && !contains(p.only, d.check) {
			continue
		}
		if p.db.usedIgnores[d] {
			continue
		}
		p.findings = append(p.findings, finding{d.pos, "unusedignore",
			fmt.Sprintf("suppression for %q no longer suppresses anything: delete it (stale reason: %s)", d.check, d.reason)})
	}
}
