package main

import (
	"go/ast"
	"go/types"
)

// checkParPurity makes PR 3's compute-then-reduce discipline
// interprocedural. pardiscipline polices the worker closure's own writes;
// parpurity polices what the closure calls: every function invoked (by
// static call) from a closure handed to internal/par (Run, RunWorker,
// ForShards) must be transitively free of
//
//   - writes to package-level variables (a hidden shared accumulator two
//     frames down races and schedule-orders exactly like an inline one),
//   - wall-clock reads and math/rand (a worker whose result depends on
//     time or unseeded randomness breaks bit-identity across worker
//     counts — the property TestWorkersBitIdentical pins).
//
// Writes through the callee's own parameters and receivers are the
// caller's business and stay legal — that is how workers fill their owned
// slots. Dynamic calls (function values, interface methods) inside worker
// closures are out of scope here; hotalloc treats them conservatively, but
// purity of a value-carried callee is the closure author's to guarantee.
// A callee that is safe anyway carries //placelint:ignore parpurity
// <reason> at the offending write, which clears the fact for every worker
// path reaching it.
func checkParPurity(p *pass) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParPoolCall(p.info, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					p.checkWorkerCalls(lit)
				}
			}
			return true
		})
	}
}

// checkWorkerCalls inspects every static call inside one worker closure
// and reports callees whose fact summary is impure.
func (p *pass) checkWorkerCalls(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(p.info, call)
		if fn == nil {
			return true
		}
		ff := p.db.factsFor(fn)
		if ff == nil {
			return true // external or bodyless: walltime covers direct time/rand calls
		}
		label := funcLabel(fn)
		if ff.write != nil {
			p.reportf(call.Pos(), "parpurity",
				"%s is called from a par worker closure but transitively writes non-worker-owned state: %s; compute into owned slots and reduce after the pool call", label, ff.write.describe())
		}
		if ff.clock != nil {
			p.reportf(call.Pos(), "parpurity",
				"%s is called from a par worker closure but transitively reads the wall clock: %s; worker results must not depend on time", label, ff.clock.describe())
		}
		if ff.rand != nil {
			p.reportf(call.Pos(), "parpurity",
				"%s is called from a par worker closure but transitively consumes math/rand: %s; worker results must be deterministic", label, ff.rand.describe())
		}
		return true
	})
}

// staticCallee resolves the statically-known callee of call: a named
// function or a method on a concrete receiver. Function values and
// interface methods return nil (dynamic dispatch).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
		types.IsInterface(sig.Recv().Type()) {
		return nil
	}
	return fn
}
