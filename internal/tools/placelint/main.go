// Command placelint machine-enforces the repository's determinism and
// concurrency invariants: the properties that keep placements bit-identical
// at every worker count and keep the error taxonomy testable with errors.Is.
// Golden tests catch a violation only after it has corrupted a placement;
// placelint rejects the hazard pattern at review time, before it runs.
//
// It is stdlib-only (go/ast + go/parser + go/types with the source
// importer), following the docslint precedent — no external linter
// dependency. Six checks ship today, one file each:
//
//	maporder       for-range over a map outside the collect-then-sort idiom
//	pardiscipline  writes escaping the worker-owned slot inside closures
//	               passed to internal/par (the compute-then-reduce rule)
//	walltime       time.Now / time.Since / time.Until / math/rand outside
//	               internal/obs, internal/gen and _test.go files
//	floateq        == / != on floating-point operands outside approved
//	               epsilon helpers
//	errwrap        error arguments formatted with a verb other than %w,
//	               which would sever the internal/pipeline sentinel chain
//	metricnames    metric registrations on internal/obs/metrics.Registry
//	               whose name or label is dynamic, not snake_case, or a
//	               duplicate within the package
//
// A true finding that is nevertheless safe is suppressed in place with
//
//	//placelint:ignore <check> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: a bare ignore is itself a violation, so every suppression
// documents why the invariant holds anyway.
//
// Usage:
//
//	go run ./internal/tools/placelint [-only check[,check...]] [dir ...]
//
// With no arguments it lints the whole module ("."). -only restricts the
// run to the named checks (e.g. `-only metricnames` for the metrics-schema
// gate). Test files and testdata directories are exempt. Exit status:
// 0 clean, 1 violations, 2 operational failure (parse or type-check error).
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	var only []string
	if len(args) >= 2 && args[0] == "-only" {
		only = strings.Split(args[1], ",")
		for _, c := range only {
			if !knownCheck(c) {
				fatalf("-only names unknown check %q", c)
			}
		}
		args = args[2:]
	}
	roots := args
	if len(roots) == 0 {
		roots = []string{"."}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var all []finding
	for _, root := range roots {
		dirs, err := collectDirs(root)
		if err != nil {
			fatalf("%v", err)
		}
		for _, dir := range dirs {
			fs, err := lintDir(fset, imp, dir, only)
			if err != nil {
				fatalf("%s: %v", dir, err)
			}
			all = append(all, fs...)
		}
	}
	if len(all) == 0 {
		return
	}
	sortFindings(all)
	for _, f := range all {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n",
			f.pos.Filename, f.pos.Line, f.pos.Column, f.check, f.msg)
	}
	fmt.Fprintf(os.Stderr, "placelint: %d violation(s)\n", len(all))
	os.Exit(1)
}

// fatalf reports an operational failure (not a lint violation) and exits 2,
// so CI can distinguish "tree is dirty" from "linter could not run".
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "placelint: "+format+"\n", args...)
	os.Exit(2)
}

// collectDirs walks root and returns, sorted, every directory holding at
// least one non-test Go file. Hidden, underscore and testdata directories
// are skipped — testdata under this tool holds intentional violations for
// the self-test, and must never fail the tree lint.
func collectDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && name != root &&
				(strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// sortFindings orders findings by file, line, column, then check name, so
// output (and the testdata harness) is stable regardless of check order.
func sortFindings(fs []finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.check < b.check
	})
}

// lintDir parses and type-checks the non-test Go files of one directory as
// a single package and runs the checks over it. only restricts the run to
// the named checks (nil means all); the ignore-directive validator always
// runs. Used by main for the tree walk and by the test harness for the
// seeded testdata packages.
func lintDir(fset *token.FileSet, imp types.Importer, dir string, only []string) ([]finding, error) {
	files, err := parseDirFiles(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := conf.Check(abs, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check: %w", err)
	}
	p := newPass(fset, files, pkg, info)
	p.run(only)
	return p.findings, nil
}
