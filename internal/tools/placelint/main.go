// Command placelint machine-enforces the repository's determinism and
// concurrency invariants: the properties that keep placements bit-identical
// at every worker count and keep the error taxonomy testable with errors.Is.
// Golden tests catch a violation only after it has corrupted a placement;
// placelint rejects the hazard pattern at review time, before it runs.
//
// It is stdlib-only (go/ast + go/parser + go/types with a module-aware
// demand-driven loader), following the docslint precedent — no external
// linter dependency. Since PR 10 the checks sit on an interprocedural facts
// engine: every function in the module gets per-function fact summaries
// (readsClock, readsRand, mayAllocate, writesNonLocal) propagated bottom-up
// over the strongly-connected components of the cross-package call graph,
// so the determinism contracts hold transitively, not just at the surface
// syntax. Nine checks ship today, one file each:
//
//	maporder       for-range over a map outside the collect-then-sort idiom
//	pardiscipline  writes escaping the worker-owned slot inside closures
//	               passed to internal/par (the compute-then-reduce rule)
//	walltime       time.Now / time.Since / time.Until / math/rand reachable
//	               — directly or through any call chain — outside the owner
//	               packages (internal/obs for the clock; internal/gen and
//	               internal/faultinject for seeded randomness)
//	floateq        == / != on floating-point operands outside approved
//	               epsilon helpers
//	errwrap        error arguments formatted with a verb other than %w,
//	               which would sever the internal/pipeline sentinel chain
//	metricnames    metric registrations on internal/obs/metrics.Registry
//	               whose name or label is dynamic, not snake_case, or a
//	               duplicate within the package
//	hotalloc       allocations reachable from a //placelint:hotpath
//	               function (the DESIGN.md §14 zero-alloc kernel contract)
//	parpurity      functions called from par worker closures that
//	               transitively write non-worker-owned state or consult
//	               the clock / math/rand
//	unusedignore   suppression directives that no longer suppress anything
//
// A true finding that is nevertheless safe is suppressed in place with
//
//	//placelint:ignore <check> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: a bare ignore is itself a violation, so every suppression
// documents why the invariant holds anyway. For the fact-backed checks the
// directive also clears the fact at its source, so every caller of the
// suppressed code is clean too — and the unusedignore audit reports any
// directive that stops earning its keep.
//
// Usage:
//
//	go run ./internal/tools/placelint [-only check[,check...]] [-json] [-github] [dir ...]
//
// With no arguments it lints the whole module ("."). -only restricts the
// run to the named checks (e.g. `-only metricnames` for the metrics-schema
// gate). -json emits placelint-diagnostics/v1 JSON on stdout for tooling;
// -github emits GitHub Actions ::error workflow commands on stdout so
// findings annotate the offending lines of a pull request. Test files and
// testdata directories are exempt. Exit status: 0 clean, 1 violations,
// 2 operational failure (parse or type-check error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	onlyFlag := flag.String("only", "", "comma-separated subset of checks to run")
	jsonFlag := flag.Bool("json", false, "emit placelint-diagnostics/v1 JSON on stdout")
	githubFlag := flag.Bool("github", false, "emit GitHub Actions ::error annotations on stdout")
	flag.Parse()

	var only []string
	if *onlyFlag != "" {
		only = strings.Split(*onlyFlag, ",")
		for _, c := range only {
			if !knownCheck(c) {
				fatalf("-only names unknown check %q", c)
			}
		}
	}
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var dirs []string
	seen := map[string]bool{}
	for _, root := range roots {
		ds, err := collectDirs(root)
		if err != nil {
			fatalf("%v", err)
		}
		for _, d := range ds {
			if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
				seen[abs] = true
				dirs = append(dirs, d)
			}
		}
	}
	fset := token.NewFileSet()
	all, err := lintPackages(fset, dirs, only)
	if err != nil {
		fatalf("%v", err)
	}
	sortFindings(all)
	switch {
	case *jsonFlag:
		writeJSON(os.Stdout, all)
	case *githubFlag:
		writeGitHub(os.Stdout, all)
	}
	if len(all) == 0 {
		return
	}
	for _, f := range all {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n",
			f.pos.Filename, f.pos.Line, f.pos.Column, f.check, f.msg)
	}
	fmt.Fprintf(os.Stderr, "placelint: %d violation(s)\n", len(all))
	os.Exit(1)
}

// lintPackages loads every target directory through the module loader,
// builds the shared fact database over everything loaded (targets plus
// their dependencies), and runs the checks over each target package.
func lintPackages(fset *token.FileSet, dirs []string, only []string) ([]finding, error) {
	l, err := newLoader(fset)
	if err != nil {
		return nil, err
	}
	targets := make([]*lintPkg, 0, len(dirs))
	for _, dir := range dirs {
		lp, err := l.loadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		targets = append(targets, lp)
	}
	db := newFactDB(l)
	var all []finding
	for _, lp := range targets {
		p := newPass(fset, lp, db, only)
		p.run()
		all = append(all, p.findings...)
	}
	return all, nil
}

// fatalf reports an operational failure (not a lint violation) and exits 2,
// so CI can distinguish "tree is dirty" from "linter could not run".
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "placelint: "+format+"\n", args...)
	os.Exit(2)
}

// collectDirs walks root and returns, sorted, every directory holding at
// least one non-test Go file. Hidden, underscore and testdata directories
// are skipped — testdata under this tool holds intentional violations for
// the self-test, and must never fail the tree lint.
func collectDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && name != root &&
				(strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// sortFindings orders findings by file, line, column, then check name, so
// output (and the testdata harness) is stable regardless of check order.
func sortFindings(fs []finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.check < b.check
	})
}

// jsonDiagnostic is one finding in the placelint-diagnostics/v1 format.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// jsonReport is the envelope of -json output: versioned so downstream
// tooling can detect format drift, mirroring dpplace-run-report/v1.
type jsonReport struct {
	Format   string           `json:"format"`
	Findings []jsonDiagnostic `json:"findings"`
	Count    int              `json:"count"`
}

// writeJSON emits the findings as one placelint-diagnostics/v1 document.
func writeJSON(w *os.File, fs []finding) {
	rep := jsonReport{Format: "placelint-diagnostics/v1", Findings: []jsonDiagnostic{}, Count: len(fs)}
	for _, f := range fs {
		rep.Findings = append(rep.Findings, jsonDiagnostic{
			File: filepath.ToSlash(f.pos.Filename), Line: f.pos.Line,
			Column: f.pos.Column, Check: f.check, Message: f.msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatalf("encode: %v", err)
	}
}

// writeGitHub emits one ::error workflow command per finding, which GitHub
// Actions renders as an inline annotation on the offending line of the PR.
func writeGitHub(w *os.File, fs []finding) {
	for _, f := range fs {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=placelint/%s::%s\n",
			filepath.ToSlash(f.pos.Filename), f.pos.Line, f.pos.Column,
			f.check, githubEscape(f.msg))
	}
}

// githubEscape encodes the characters the workflow-command grammar
// reserves in message data.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
