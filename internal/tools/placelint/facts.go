package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural facts engine. Every function declared in
// a loaded module package gets a summary of four facts:
//
//	readsClock     reaches time.Now / time.Since / time.Until
//	readsRand      reaches math/rand (v1 or v2)
//	mayAllocate    reaches a heap allocation: make, new, append growth,
//	               map/slice literals, &composite literals, closure capture,
//	               interface boxing, string concatenation/conversion, fmt
//	               calls, defer inside a loop, go statements, variadic
//	               argument slices, or a call that cannot be proven
//	               allocation-free (dynamic dispatch, unknown stdlib)
//	writesNonLocal writes a package-level variable
//
// Facts are transitive: a fact set on a callee propagates to every caller,
// computed bottom-up over the strongly-connected components of the
// cross-package call graph (Tarjan emits each SCC after everything it can
// reach, so callee summaries are final when a caller folds them in; within
// an SCC a fix-point handles recursion). Each propagated fact carries a
// trace — the root cause, its position, and the call chain — so a check can
// report "this call two frames up is why" instead of a bare boolean.
//
// Three boundaries keep the facts aligned with the repository's contracts:
//
//   - Owner packages absorb their own facts. internal/obs and internal/gen
//     own the clock and seeded randomness (the §11 walltime allowlist), and
//     internal/faultinject owns its explicitly seeded PRNG; clock/rand facts
//     never escape them, so routing timing through obs.Stopwatch stays the
//     sanctioned idiom under the transitive check too.
//   - A reasoned //placelint:ignore at the fact's source clears the fact
//     itself, not just the local diagnostic: the suppression is an assertion
//     that the invariant holds, so callers must not keep paying for it.
//     Clock/rand sites answer to "walltime", allocation sites to "hotalloc",
//     non-local writes to "parpurity".
//   - External (non-module) functions come from a knowledge table: math,
//     math/bits, sync/atomic and context are allocation-free; time and
//     math/rand carry their obvious facts; fmt allocates; anything else is
//     conservatively "not proven allocation-free" but contributes no
//     clock/rand/write facts.
type factDB struct {
	l     *loader
	funcs map[*types.Func]*funcFacts
	// usedIgnores records directives consumed by fact clearing, so the
	// unusedignore audit counts them as live even though they suppressed a
	// fact rather than a printed diagnostic.
	usedIgnores map[*ignoreDirective]bool
}

// site is one local fact source inside a function body.
type site struct {
	pos    token.Pos
	reason string
}

// callSite is one call expression inside a function body. Static calls
// carry the callee object; dynamic calls (function values, non-allowlisted
// interface methods) surface as allocation sites instead, because they
// cannot be traversed.
type callSite struct {
	pos    token.Pos
	callee *types.Func
}

// trace is one transitive fact: the root cause, where it lives, and the
// call chain from the summarized function down to it (empty for a local
// cause). site is where the fact enters the summarized function — the
// local fact itself, or the call that reaches it — so checks report inside
// the function they flag.
type trace struct {
	reason string
	pos    token.Position
	chain  []string
	site   token.Pos
}

// describe renders the trace for a diagnostic: cause, position, and chain.
func (t *trace) describe() string {
	s := fmt.Sprintf("%s at %s", t.reason, t.pos)
	if len(t.chain) > 0 {
		s += " (via " + strings.Join(t.chain, " → ") + ")"
	}
	return s
}

// funcFacts is the per-function summary: the locally observed sites, the
// statically resolved call edges, and the transitive fact traces (nil when
// the function is clean for that fact).
type funcFacts struct {
	fn      *types.Func
	lp      *lintPkg
	decl    *ast.FuncDecl
	hotpath bool // carries a //placelint:hotpath annotation

	allocs []site
	clocks []site
	rands  []site
	writes []site
	calls  []callSite

	alloc, clock, rand, write *trace
}

// hotpathPrefix marks a function whose whole transitive call tree must be
// allocation-free: //placelint:hotpath in the doc comment.
const hotpathPrefix = "//placelint:hotpath"

// Owner-package predicates: facts of these kinds never escape the packages
// that legitimately own the capability (mirror of the walltime allowlist).
func isClockOwner(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/obs") ||
		strings.Contains(pkgPath, "internal/gen")
}

func isRandOwner(pkgPath string) bool {
	return isClockOwner(pkgPath) || strings.Contains(pkgPath, "internal/faultinject")
}

// newFactDB scans every package the loader has materialized and computes
// the transitive summaries. The loader caches packages for the process
// lifetime, so fact summaries are computed from identical ASTs on every
// build — one lint invocation builds the database once and every check
// shares it.
func newFactDB(l *loader) *factDB {
	db := &factDB{l: l, funcs: map[*types.Func]*funcFacts{}, usedIgnores: map[*ignoreDirective]bool{}}
	// Deterministic package order, then file/declaration order within.
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var all []*funcFacts
	for _, p := range paths {
		lp := l.pkgs[p]
		for _, f := range lp.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := lp.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := db.scanFunc(lp, fd, obj)
				db.funcs[obj] = ff
				all = append(all, ff)
			}
		}
	}
	db.propagate(all)
	return db
}

// funcLabel names a function for chain rendering: pkgname.Func or
// pkgname.Recv.Method.
func funcLabel(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if n, ok := rt.(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// scanner carries the per-function walk state.
type scanner struct {
	db  *factDB
	lp  *lintPkg
	ff  *funcFacts
	fn  *types.Func
	pkg *types.Package
}

// scanFunc computes the local facts of one function declaration. Nested
// function literals fold into the enclosing declaration: a closure the
// function builds may run on any of its paths, so its effects (and the
// capture allocation itself) belong to the builder's summary.
func (db *factDB) scanFunc(lp *lintPkg, decl *ast.FuncDecl, obj *types.Func) *funcFacts {
	ff := &funcFacts{fn: obj, lp: lp, decl: decl}
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if strings.HasPrefix(c.Text, hotpathPrefix) {
				ff.hotpath = true
			}
		}
	}
	s := &scanner{db: db, lp: lp, ff: ff, fn: obj, pkg: lp.pkg}
	sig, _ := obj.Type().(*types.Signature)
	s.scanBody(decl.Body, sig, 0)
	return ff
}

// addFact records one local fact site unless a matching suppression covers
// its line; a consumed suppression is marked used so the unusedignore audit
// keeps it.
func (s *scanner) addFact(kind string, pos token.Pos, reason string) {
	position := s.db.l.fset.Position(pos)
	var check string
	switch kind {
	case "clock", "rand":
		check = "walltime"
	case "alloc":
		check = "hotalloc"
	case "write":
		check = "parpurity"
	}
	if d := s.lp.ignoreAt(position.Filename, position.Line, check); d != nil {
		s.db.usedIgnores[d] = true
		return
	}
	st := site{pos: pos, reason: reason}
	switch kind {
	case "clock":
		if isClockOwner(s.lp.path) {
			return // the owner absorbs its own clock reads
		}
		s.ff.clocks = append(s.ff.clocks, st)
	case "rand":
		if isRandOwner(s.lp.path) {
			return
		}
		s.ff.rands = append(s.ff.rands, st)
	case "alloc":
		s.ff.allocs = append(s.ff.allocs, st)
	case "write":
		s.ff.writes = append(s.ff.writes, st)
	}
}

// scanBody walks one function (or folded closure) body. sig is the
// signature governing return-statement boxing; loopDepth tracks enclosing
// loops for the defer-in-loop rule.
func (s *scanner) scanBody(body *ast.BlockStmt, sig *types.Signature, loopDepth int) {
	var walk func(n ast.Node, depth int)
	var walkList func(list []ast.Stmt, depth int)
	walkStmt := func(st ast.Stmt, depth int) { walk(st, depth) }

	walkList = func(list []ast.Stmt, depth int) {
		for _, st := range list {
			walkStmt(st, depth)
		}
	}

	walk = func(n ast.Node, depth int) {
		switch t := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			s.scanFuncLit(t, depth)
			return
		case *ast.ForStmt:
			walk(t.Init, depth)
			walkExprTree(s, t.Cond, depth)
			walk(t.Post, depth)
			walkList(t.Body.List, depth+1)
			return
		case *ast.RangeStmt:
			walkExprTree(s, t.X, depth)
			walkList(t.Body.List, depth+1)
			return
		case *ast.DeferStmt:
			if depth > 0 {
				s.addFact("alloc", t.Pos(), "defer inside a loop (allocates per iteration)")
			}
			walkExprTree(s, t.Call, depth)
			return
		case *ast.GoStmt:
			s.addFact("alloc", t.Pos(), "go statement (allocates a goroutine)")
			walkExprTree(s, t.Call, depth)
			return
		case *ast.ReturnStmt:
			if sig != nil && sig.Results() != nil {
				res := sig.Results()
				if len(t.Results) == res.Len() {
					for i, e := range t.Results {
						s.checkBoxing(res.At(i).Type(), e, "return value")
					}
				}
			}
			for _, e := range t.Results {
				walkExprTree(s, e, depth)
			}
			return
		case *ast.AssignStmt:
			s.scanAssign(t)
			for _, e := range t.Lhs {
				walkExprTree(s, e, depth)
			}
			for _, e := range t.Rhs {
				walkExprTree(s, e, depth)
			}
			return
		case *ast.IncDecStmt:
			s.checkNonLocalWrite(t.X)
			walkExprTree(s, t.X, depth)
			return
		case *ast.BlockStmt:
			walkList(t.List, depth)
			return
		case *ast.IfStmt:
			walk(t.Init, depth)
			walkExprTree(s, t.Cond, depth)
			walkList(t.Body.List, depth)
			walk(t.Else, depth)
			return
		case *ast.SwitchStmt:
			walk(t.Init, depth)
			walkExprTree(s, t.Tag, depth)
			walkList(t.Body.List, depth)
			return
		case *ast.TypeSwitchStmt:
			walk(t.Init, depth)
			walk(t.Assign, depth)
			walkList(t.Body.List, depth)
			return
		case *ast.CaseClause:
			for _, e := range t.List {
				walkExprTree(s, e, depth)
			}
			walkList(t.Body, depth)
			return
		case *ast.SelectStmt:
			walkList(t.Body.List, depth)
			return
		case *ast.CommClause:
			walk(t.Comm, depth)
			walkList(t.Body, depth)
			return
		case *ast.LabeledStmt:
			walk(t.Stmt, depth)
			return
		case *ast.ExprStmt:
			walkExprTree(s, t.X, depth)
			return
		case *ast.SendStmt:
			walkExprTree(s, t.Chan, depth)
			walkExprTree(s, t.Value, depth)
			return
		case *ast.DeclStmt:
			if gd, ok := t.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							walkExprTree(s, v, depth)
						}
					}
				}
			}
			return
		case ast.Stmt:
			// Branch/empty/etc: nothing to scan.
			return
		}
	}
	walkList(body.List, loopDepth)
}

// walkExprTree scans one expression tree for fact sources: calls,
// composite literals, string concatenation, conversions, and nested
// closures. depth is the enclosing loop depth (closures reset it).
func walkExprTree(s *scanner, e ast.Expr, depth int) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			s.scanFuncLit(t, depth)
			return false
		case *ast.CallExpr:
			s.scanCall(t)
			return true
		case *ast.CompositeLit:
			s.scanCompositeLit(t)
			return true
		case *ast.UnaryExpr:
			if t.Op == token.AND {
				if _, ok := t.X.(*ast.CompositeLit); ok {
					s.addFact("alloc", t.Pos(), "composite literal escapes to the heap (&T{...})")
				}
			}
			return true
		case *ast.BinaryExpr:
			if t.Op == token.ADD && isStringType(s.lp.info.TypeOf(t)) && !isConst(s.lp.info, t) {
				s.addFact("alloc", t.Pos(), "string concatenation")
			}
			return true
		}
		return true
	})
}

// scanFuncLit folds a function literal into the enclosing summary: the
// capture allocation (if it captures anything) plus everything its body
// does. Loop depth resets — the closure's own loops govern its defers.
func (s *scanner) scanFuncLit(lit *ast.FuncLit, depth int) {
	if name := s.captured(lit); name != "" {
		s.addFact("alloc", lit.Pos(), fmt.Sprintf("closure captures %s", name))
	}
	var litSig *types.Signature
	if t := s.lp.info.TypeOf(lit); t != nil {
		litSig, _ = t.(*types.Signature)
	}
	s.scanBody(lit.Body, litSig, 0)
	_ = depth
}

// captured returns the name of a variable the literal captures from its
// enclosing function (empty when it captures nothing — such literals
// compile to static functions and do not allocate).
func (s *scanner) captured(lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := s.lp.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: referenced, not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			name = v.Name()
		}
		return true
	})
	return name
}

// scanAssign records string-concat growth, interface boxing, and non-local
// writes for one assignment.
func (s *scanner) scanAssign(as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 &&
		isStringType(s.lp.info.TypeOf(as.Lhs[0])) {
		s.addFact("alloc", as.Pos(), "string concatenation")
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			if lt := s.lp.info.TypeOf(lhs); lt != nil {
				s.checkBoxing(lt, as.Rhs[i], "assignment")
			}
		}
	}
	if as.Tok != token.DEFINE {
		for _, lhs := range as.Lhs {
			s.checkNonLocalWrite(lhs)
		}
	}
}

// checkNonLocalWrite records a write whose root is a package-level
// variable. Writes through parameters and receivers are the caller's
// business (it handed the memory over); writes to globals are what the
// parpurity contract forbids inside par worker call trees.
func (s *scanner) checkNonLocalWrite(lhs ast.Expr) {
	root := lhs
unwrap:
	for {
		switch t := root.(type) {
		case *ast.ParenExpr:
			root = t.X
		case *ast.StarExpr:
			root = t.X
		case *ast.SelectorExpr:
			root = t.X
		case *ast.IndexExpr:
			root = t.X
		case *ast.SliceExpr:
			root = t.X
		default:
			break unwrap
		}
	}
	id, ok := root.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	v, ok := s.lp.info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		s.addFact("write", lhs.Pos(),
			fmt.Sprintf("write to package-level variable %s", v.Name()))
	}
}

// checkBoxing records an interface-boxing allocation when a concrete
// (non-interface, non-nil) value converts to an interface type.
func (s *scanner) checkBoxing(dst types.Type, src ast.Expr, what string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	st := s.lp.info.TypeOf(src)
	if st == nil || types.IsInterface(st) {
		return
	}
	if b, ok := st.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	s.addFact("alloc", src.Pos(),
		fmt.Sprintf("%s boxes %s into an interface", what, types.TypeString(st, types.RelativeTo(s.pkg))))
}

// scanCall classifies one call expression: conversion, builtin, static
// call (edge into the call graph plus external knowledge), or dynamic call
// (an allocation fact of its own, because it cannot be proven).
func (s *scanner) scanCall(call *ast.CallExpr) {
	info := s.lp.info
	// Type conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		s.scanConversion(call, tv.Type)
		return
	}
	// Builtin?
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				s.addFact("alloc", call.Pos(), "make")
			case "new":
				s.addFact("alloc", call.Pos(), "new")
			case "append":
				s.addFact("alloc", call.Pos(), "append (may grow the backing array)")
			}
			return
		}
	}
	// Resolve the callee object.
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		// Function value (or method value stored in a variable): dynamic.
		s.flagDynamic(call, "function value")
		s.scanCallArgs(call)
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
		types.IsInterface(sig.Recv().Type()) {
		// Interface method: dynamic dispatch. context.Context's methods are
		// allocation-free by contract (Done returns a stored channel, Err a
		// stored error), and the cancellation idiom depends on them.
		if fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			s.flagDynamic(call, fmt.Sprintf("interface method %s", funcLabel(fn)))
		}
		s.scanCallArgs(call)
		return
	}
	if fn.Pkg() != nil && (fn.Pkg().Path() == s.db.l.modulePath ||
		strings.HasPrefix(fn.Pkg().Path(), s.db.l.modulePath+"/")) {
		s.ff.calls = append(s.ff.calls, callSite{pos: call.Pos(), callee: fn})
	} else {
		s.scanExternalCall(call, fn)
	}
	s.scanCallArgs(call)
}

// flagDynamic records a dynamic call as an unprovable allocation.
func (s *scanner) flagDynamic(call *ast.CallExpr, what string) {
	s.addFact("alloc", call.Pos(),
		fmt.Sprintf("dynamic call through %s (cannot be proven allocation-free)", what))
}

// allocFreePkgs are external packages whose functions are known not to
// allocate on any path placer code exercises: pure math and raw atomics.
var allocFreePkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
	"context":     true,
}

// clockFuncs are the wall-clock reads of package time.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// scanExternalCall applies the knowledge table to a call outside the
// module.
func (s *scanner) scanExternalCall(call *ast.CallExpr, fn *types.Func) {
	path := fn.Pkg().Path()
	switch {
	case path == "time" && clockFuncs[fn.Name()]:
		s.addFact("clock", call.Pos(), "time."+fn.Name())
	case path == "math/rand" || path == "math/rand/v2":
		s.addFact("rand", call.Pos(), path+"."+fn.Name())
	case path == "fmt":
		s.addFact("alloc", call.Pos(), "fmt."+fn.Name()+" (fmt formats through interfaces and allocates)")
	case allocFreePkgs[path]:
		// Known allocation-free; no facts.
	default:
		s.addFact("alloc", call.Pos(),
			fmt.Sprintf("call to %s.%s (external, not proven allocation-free)", fn.Pkg().Name(), fn.Name()))
	}
}

// scanCallArgs records variadic-slice and boxing allocations for the
// arguments of any call whose signature is visible.
func (s *scanner) scanCallArgs(call *ast.CallExpr) {
	t := s.lp.info.TypeOf(call.Fun)
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= n {
		s.addFact("alloc", call.Pos(), "variadic call (allocates the argument slice)")
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(n - 1).Type()
			} else if sl, ok := params.At(n - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < n:
			pt = params.At(i).Type()
		}
		s.checkBoxing(pt, arg, "argument")
	}
}

// scanConversion records allocating conversions: to interface (boxing) and
// the string<->byte/rune-slice copies. Constant conversions are free.
func (s *scanner) scanConversion(call *ast.CallExpr, dst types.Type) {
	if len(call.Args) != 1 || isConst(s.lp.info, call) {
		return
	}
	src := s.lp.info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case types.IsInterface(dst):
		s.checkBoxing(dst, call.Args[0], "conversion")
	case isStringType(dst) && !isStringType(src):
		if _, ok := src.Underlying().(*types.Slice); ok {
			s.addFact("alloc", call.Pos(), "slice-to-string conversion (copies)")
		}
	case isStringType(src):
		if _, ok := dst.Underlying().(*types.Slice); ok {
			s.addFact("alloc", call.Pos(), "string-to-slice conversion (copies)")
		}
	}
}

// scanCompositeLit records map and slice literals (both always allocate;
// array and struct literals are values).
func (s *scanner) scanCompositeLit(lit *ast.CompositeLit) {
	t := s.lp.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		s.addFact("alloc", lit.Pos(), "map literal")
	case *types.Slice:
		s.addFact("alloc", lit.Pos(), "slice literal")
	}
}

// isStringType reports whether t is (an alias of) string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ---------------------------------------------------------------------------
// Transitive propagation.

// externalTrace synthesizes the fact trace of a non-module callee from the
// knowledge table, for the propagation step (the scan already recorded
// external facts as local sites of the caller, so this only serves chains
// that pass through module functions).
func externalTraceFor(kind string, fn *types.Func, pos token.Position) *trace {
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	switch kind {
	case "clock":
		if path == "time" && clockFuncs[fn.Name()] {
			return &trace{reason: "time." + fn.Name(), pos: pos}
		}
	case "rand":
		if path == "math/rand" || path == "math/rand/v2" {
			return &trace{reason: path + "." + fn.Name(), pos: pos}
		}
	}
	return nil
}

// propagate computes the transitive fact traces bottom-up over the SCC
// condensation of the call graph. Tarjan emits every SCC after all SCCs it
// can reach, so callee summaries are complete when a caller reads them; a
// fix-point inside each SCC resolves mutual recursion (facts are monotone,
// so the loop terminates).
func (db *factDB) propagate(all []*funcFacts) {
	sccs := db.tarjan(all)
	for _, scc := range sccs {
		for changed := true; changed; {
			changed = false
			for _, ff := range scc {
				if db.fold(ff) {
					changed = true
				}
			}
		}
		// Owner packages absorb clock/rand facts: they never escape.
		for _, ff := range scc {
			if isClockOwner(ff.lp.path) {
				ff.clock = nil
			}
			if isRandOwner(ff.lp.path) {
				ff.rand = nil
			}
		}
	}
}

// fold refreshes one function's transitive traces from its local sites and
// callee summaries, reporting whether anything new appeared.
func (db *factDB) fold(ff *funcFacts) bool {
	changed := false
	pick := func(cur **trace, locals []site, kind string) {
		if *cur != nil {
			return
		}
		if len(locals) > 0 {
			*cur = &trace{reason: locals[0].reason,
				pos: db.l.fset.Position(locals[0].pos), site: locals[0].pos}
			changed = true
			return
		}
		for _, cs := range ff.calls {
			var ct *trace
			if cff := db.funcs[cs.callee]; cff != nil {
				switch kind {
				case "alloc":
					ct = cff.alloc
				case "clock":
					ct = cff.clock
				case "rand":
					ct = cff.rand
				case "write":
					ct = cff.write
				}
			} else {
				ct = externalTraceFor(kind, cs.callee, db.l.fset.Position(cs.pos))
			}
			if ct != nil {
				*cur = &trace{reason: ct.reason, pos: ct.pos, site: cs.pos,
					chain: append([]string{funcLabel(cs.callee)}, ct.chain...)}
				changed = true
				return
			}
		}
	}
	pick(&ff.alloc, ff.allocs, "alloc")
	pick(&ff.clock, ff.clocks, "clock")
	pick(&ff.rand, ff.rands, "rand")
	pick(&ff.write, ff.writes, "write")
	return changed
}

// tarjan returns the strongly-connected components of the module call
// graph in reverse topological order (callees before callers).
func (db *factDB) tarjan(all []*funcFacts) [][]*funcFacts {
	// Deterministic node order: source position.
	sort.Slice(all, func(i, j int) bool { return all[i].decl.Pos() < all[j].decl.Pos() })
	index := map[*funcFacts]int{}
	low := map[*funcFacts]int{}
	onStack := map[*funcFacts]bool{}
	var stack []*funcFacts
	var sccs [][]*funcFacts
	next := 0

	var strongconnect func(ff *funcFacts)
	strongconnect = func(ff *funcFacts) {
		index[ff] = next
		low[ff] = next
		next++
		stack = append(stack, ff)
		onStack[ff] = true
		for _, cs := range ff.calls {
			cff := db.funcs[cs.callee]
			if cff == nil {
				continue
			}
			if _, seen := index[cff]; !seen {
				strongconnect(cff)
				if low[cff] < low[ff] {
					low[ff] = low[cff]
				}
			} else if onStack[cff] && index[cff] < low[ff] {
				low[ff] = index[cff]
			}
		}
		if low[ff] == index[ff] {
			var scc []*funcFacts
			for {
				n := len(stack) - 1
				m := stack[n]
				stack = stack[:n]
				onStack[m] = false
				scc = append(scc, m)
				if m == ff {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, ff := range all {
		if _, seen := index[ff]; !seen {
			strongconnect(ff)
		}
	}
	return sccs
}

// factsFor returns the summary of fn, or nil for functions outside the
// loaded module packages.
func (db *factDB) factsFor(fn *types.Func) *funcFacts {
	return db.funcs[fn]
}
