// Package pardiscipline seeds the pardiscipline check: inside a closure
// handed to the internal/par pool, writes must land in worker-owned slots.
// Shared accumulators, map writes, and fixed-index slice writes are flagged;
// slots indexed by the closure's own range (or the worker id) are exempt,
// as is the serial reduction after the pool call returns.
package pardiscipline

import (
	"context"

	"repro/internal/par"
)

func violations(ctx context.Context, pool *par.Pool, xs []float64) float64 {
	total := 0.0
	out := make([]float64, len(xs))
	counts := make(map[int]int)
	_ = pool.Run(ctx, len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i]    // want "write to captured variable total"
			out[0] = xs[i]    // want "write into captured out at an index not derived"
			counts[i]++       // want "write into captured map counts"
			delete(counts, i) // want "delete on captured map counts"
		}
		copy(out, xs) // want "copy into captured out inside a par closure"
	})
	return total
}

func computeThenReduce(ctx context.Context, pool *par.Pool, xs []float64) float64 {
	out := make([]float64, len(xs))
	_ = pool.Run(ctx, len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = 2 * xs[i] // exempt: slot indexed by the closure's own range
		}
		copy(out[lo:hi], xs[lo:hi]) // exempt: destination sliced by closure-local bounds
	})
	total := 0.0
	for _, v := range out { // serial reduction in index order — the sanctioned shape
		total += v
	}
	return total
}

func perWorkerPartials(ctx context.Context, pool *par.Pool, xs []float64) float64 {
	partial := make([]float64, pool.Workers())
	_ = pool.RunWorker(ctx, len(xs), 1, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			partial[w] += xs[i] // exempt: the worker owns slot w
		}
	})
	total := 0.0
	for _, v := range partial {
		total += v
	}
	return total
}

func annotated(ctx context.Context, pool *par.Pool, done []bool) {
	_ = pool.Run(ctx, len(done), 1, func(lo, hi int) {
		//placelint:ignore pardiscipline idempotent same-value store; every worker writes true
		done[0] = true
	})
}
