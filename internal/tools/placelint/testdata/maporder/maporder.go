// Package maporder seeds the maporder check: a raw map range is flagged,
// the collect-then-sort idiom (including an if-filtered collect) is exempt,
// and a reasoned ignore directive suppresses.
package maporder

import "sort"

func rawRange(m map[string]int) int {
	worst := 0
	for _, v := range m { // want "range over map has nondeterministic order"
		if v > worst {
			worst = v
		}
	}
	return worst
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // exempt: every key lands in a slice that is sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func filteredCollect(m map[string]int) []string {
	var keys []string
	for k, v := range m { // exempt: if-filtered append, still sorted below
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func collectWithoutSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map has nondeterministic order"
		keys = append(keys, k)
	}
	return keys
}

func annotated(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	//placelint:ignore maporder copying into a map; insertion order cannot be observed
	for k, v := range m {
		out[k] = v
	}
	return out
}
