// Package errwrap seeds the errwrap check: an error argument formatted with
// %v (or %s) severs the errors.Is chain and is flagged; %w and non-error
// arguments are exempt, as are multiple %w verbs.
package errwrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

func severed(path string) error {
	return fmt.Errorf("read %s: %v", path, errSentinel) // want "error argument formatted with %v"
}

func severedString() error {
	return fmt.Errorf("stage failed: %s", errSentinel) // want "error argument formatted with %s"
}

func wrapped(path string) error {
	return fmt.Errorf("read %s: %w", path, errSentinel) // exempt: %w keeps errors.Is working
}

func doubleWrapped(inner error) error {
	return fmt.Errorf("%w: %w", errSentinel, inner) // exempt: multiple %w verbs (go1.20+)
}

func nonError(n int) error {
	return fmt.Errorf("bad count %d", n) // exempt: no error argument at all
}
