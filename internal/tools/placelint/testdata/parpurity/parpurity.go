// Package parpurity seeds the parpurity check: every function invoked by
// static call from a closure handed to the internal/par pool must be
// transitively free of writes to package-level state and of clock/rand
// reads — the interprocedural form of the compute-then-reduce discipline.
// Writes through the callee's own parameters stay legal (that is how
// workers fill their owned slots), so scale is exempt.
package parpurity

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/par"
)

var total float64

// impureWrite hides a shared accumulator behind a call frame.
func impureWrite(dst []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		total += dst[i]
	}
}

// timestamp reaches the wall clock two frames below the worker closure.
func timestamp(dst []float64, lo, hi int) {
	mark(dst, lo, hi)
}

func mark(dst []float64, lo, hi int) {
	t0 := time.Now()
	for i := lo; i < hi; i++ {
		dst[i] += float64(t0.Nanosecond())
	}
}

// jitter consumes unseeded randomness.
func jitter(dst []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] += rand.Float64()
	}
}

// scale writes only through its parameters: pure for parpurity's purposes.
func scale(dst []float64, lo, hi int, k float64) {
	for i := lo; i < hi; i++ {
		dst[i] *= k
	}
}

// Reduce drives the pool; only the impure callees inside the closure are
// flagged, at their call sites.
func Reduce(pool *par.Pool, dst []float64) float64 {
	_ = pool.Run(context.Background(), len(dst), 0, func(lo, hi int) {
		impureWrite(dst, lo, hi) // want "parpurity.impureWrite is called from a par worker closure but transitively writes non-worker-owned state: write to package-level variable total"
		timestamp(dst, lo, hi)   // want "parpurity.timestamp is called from a par worker closure but transitively reads the wall clock: time.Now at .*via parpurity.mark"
		jitter(dst, lo, hi)      // want "parpurity.jitter is called from a par worker closure but transitively consumes math/rand: math/rand.Float64"
		scale(dst, lo, hi, 2)    // exempt: writes through its own parameters only
	})
	s := 0.0
	for _, v := range dst {
		s += v
	}
	return s
}
