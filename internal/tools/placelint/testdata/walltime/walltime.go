// Package walltime seeds the walltime check: time.Now/Since/Until and a
// math/rand import are flagged outside the internal/obs and internal/gen
// allowlist; reading time through a passed-in value is exempt.
package walltime

import (
	"math/rand" // want "import of math/rand outside internal/gen"
	"time"
)

func timestamp() time.Duration {
	t0 := time.Now()        // want "time.Now outside internal/obs"
	return time.Since(t0) + // want "time.Since outside internal/obs"
		time.Until(t0) // want "time.Until outside internal/obs"
}

func jitter() float64 {
	return rand.Float64() // only the import is flagged; one finding per root cause
}

func span(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0) // exempt: arithmetic on values handed in, no clock read
}
