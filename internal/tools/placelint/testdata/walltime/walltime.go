// Package walltime seeds the walltime check: time.Now/Since/Until and a
// math/rand import are flagged outside the owner packages (internal/obs for
// the clock; internal/gen and internal/faultinject for seeded randomness);
// reading time through a passed-in value is exempt. Since the facts engine,
// the check is transitive: a function that reaches a clock or rand read
// through any chain of calls is flagged at the call that drags it in.
package walltime

import (
	"math/rand" // want "import of math/rand outside the randomness owners"
	"time"
)

func timestamp() time.Duration {
	t0 := time.Now()        // want "time.Now outside internal/obs"
	return time.Since(t0) + // want "time.Since outside internal/obs"
		time.Until(t0) // want "time.Until outside internal/obs"
}

func jitter() float64 {
	return rand.Float64() // only the import is flagged; one finding per root cause
}

// measure never mentions time, but its callee does: the transitive check
// reports the call that reaches the clock, with the chain to the root read.
func measure() time.Duration {
	return timestamp() // want "measure transitively reads the wall clock: time.Now at .*via walltime.timestamp"
}

// seeded reaches math/rand one frame down.
func seeded() float64 {
	return jitter() // want "seeded transitively consumes math/rand: math/rand.Float64 at .*via walltime.jitter"
}

func span(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0) // exempt: arithmetic on values handed in, no clock read
}
