// Package hotalloc seeds the hotalloc check: a function annotated
// //placelint:hotpath must be allocation-free together with everything it
// transitively calls. Local sites are flagged one by one at the exact
// expression; a clean body that reaches an allocation through calls gets
// one finding at the call that drags it in, with the chain to the root
// site — including across package boundaries (hotdep). Unannotated
// functions may allocate freely.
package hotalloc

import "repro/internal/tools/placelint/testdata/hotalloc/hotdep"

// kernelLocal allocates in its own body: every site is reported.
//
//placelint:hotpath
func kernelLocal(dst []float64) []float64 {
	buf := make([]float64, 4) // want "allocation in hotpath kernelLocal: make"
	copy(buf, dst)
	return append(dst, buf...) // want "allocation in hotpath kernelLocal: append"
}

// kernelChain is clean itself but reaches make two call frames down:
// kernelChain → frameOne → frameTwo.
//
//placelint:hotpath
func kernelChain(dst []float64) float64 {
	return frameOne(dst) // want "hotpath kernelChain transitively allocates: make at .*via hotalloc.frameOne → hotalloc.frameTwo"
}

func frameOne(dst []float64) float64 { return frameTwo(dst) }

func frameTwo(dst []float64) float64 {
	tmp := make([]float64, len(dst))
	copy(tmp, dst)
	s := 0.0
	for _, v := range tmp {
		s += v
	}
	return s
}

// kernelCross reaches an allocation in another package: the facts engine
// follows the call into hotdep and reports the chain.
//
//placelint:hotpath
func kernelCross(dst []float64) float64 {
	return hotdep.Sum(dst) // want "hotpath kernelCross transitively allocates: .*via hotdep.Sum → hotdep.scratch"
}

// kernelClean writes only through its parameters: no findings, and callers
// annotated hotpath stay clean through it.
//
//placelint:hotpath
func kernelClean(dst, src []float64, k float64) {
	for i := range dst {
		dst[i] = src[i] * k
	}
}

//placelint:hotpath
func kernelViaClean(dst, src []float64) {
	kernelClean(dst, src, 2)
}

// kernelSuppressed calls a helper whose allocation carries a reasoned
// ignore: the directive clears the fact at its source, so the hotpath
// caller is clean without a suppression of its own.
//
//placelint:hotpath
func kernelSuppressed(dst []float64) []float64 {
	return grow(dst)
}

func grow(dst []float64) []float64 {
	//placelint:ignore hotalloc the caller pre-reserves capacity by contract; this append never grows the backing array
	return append(dst, 0)
}

// free is unannotated: it may allocate without findings.
func free(n int) []float64 {
	return make([]float64, n)
}
