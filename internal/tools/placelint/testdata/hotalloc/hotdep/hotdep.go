// Package hotdep is the cross-package dependency of the hotalloc testdata:
// Sum hides an allocation one more frame down, so a hotpath caller in the
// parent package proves the facts engine follows calls across package
// boundaries.
package hotdep

// Sum reduces xs through a scratch copy.
func Sum(xs []float64) float64 {
	tmp := scratch(xs)
	s := 0.0
	for _, v := range tmp {
		s += v
	}
	return s
}

func scratch(xs []float64) []float64 {
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	return tmp
}
