// Package metricnames seeds the metricnames check: names and labels handed
// to the internal/obs/metrics Registry constructors must be compile-time
// string constants in snake_case, registered at most once per package.
// Constant-folded names and the full snake_case alphabet are exempt.
package metricnames

import (
	"fmt"

	metrics "repro/internal/obs/metrics"
)

// prefix participates in constant folding — still a compile-time constant.
const prefix = "app_"

func violations(r *metrics.Registry, dynamic string) {
	r.Counter("CamelCase_total", "bad case")                         // want "not snake_case"
	r.Gauge("kebab-case-depth", "bad case")                          // want "not snake_case"
	r.Counter("dup_total", "first")                                  // exempt: first registration
	r.Counter("dup_total", "second")                                 // want "duplicate registration of metric \"dup_total\""
	r.Counter(dynamic, "runtime name")                               // want "not a compile-time string constant"
	r.Gauge(fmt.Sprintf("x_%d", 1), "computed")                      // want "not a compile-time string constant"
	r.CounterVec("ok_total", "bad label", "Bad")                     // want "label name \"Bad\" is not snake_case"
	r.HistogramVec("ok_seconds", "dyn label", dynamic, []float64{1}) // want "label name passed to Registry.HistogramVec is not a compile-time string constant"
}

func exempt(r *metrics.Registry) {
	c := r.Counter("jobs_total", "plain snake_case")
	g := r.Gauge(prefix+"queue_depth", "constant concatenation folds fine")
	h := r.Histogram("latency_seconds_2", "digits and underscores", []float64{1, 2})
	v := r.CounterVec("rejects_total", "label keys checked, values free", "reason")
	c.Inc()
	g.Set(1)
	h.Observe(0.5)
	// Label VALUES are runtime data — never checked.
	v.With("anything-Goes HERE").Inc()
}
