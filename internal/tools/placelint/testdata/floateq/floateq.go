// Package floateq seeds the floateq check: comparing two computed floats
// with == or != is flagged; constant sentinels, the NaN self-test, approved
// epsilon helpers, and annotated sites are exempt.
package floateq

func computedEq(a, b float64) bool {
	return a == b // want "== on float operands"
}

func computedNeq(a, b float64) bool {
	return a+1 != b*2 // want "!= on float operands"
}

func sentinel(x float64) bool {
	return x == 0 // exempt: one operand is a compile-time constant
}

func isNaN(x float64) bool {
	return x != x // exempt: the NaN self-test idiom
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12 || a == b // exempt: inside an approved epsilon helper
}

func annotated(a, b float64) bool {
	//placelint:ignore floateq both values are copies of the same assignment; equality is exact by construction
	return a == b
}
