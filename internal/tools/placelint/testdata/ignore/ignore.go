// Package ignore seeds malformed suppression directives: each must be
// reported by the "ignore" pseudo-check rather than silently accepted, so a
// typo in a directive can never suppress a real finding. The want comments
// carry a -1 line offset because a trailing want on the directive's own line
// would parse as its reason.
package ignore

//placelint:ignore
// want[-1] "directive names no check"

//placelint:ignore nosuchcheck left over from a deleted check
// want[-1] "directive names unknown check "nosuchcheck""

//placelint:ignore maporder
// want[-1] "bare ignore for "maporder": a reason is mandatory"

func placeholder() {}
