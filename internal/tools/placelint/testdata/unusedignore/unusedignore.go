// Package unusedignore seeds the suppression audit: a well-formed
// //placelint:ignore that no longer suppresses a diagnostic (and clears no
// fact) is itself reported, so stale exceptions cannot accumulate and hide
// later real violations. Live directives — trailing a line the check would
// flag, or clearing a fact the engine would otherwise propagate — stay
// silent. The want comments use a +1 offset because a want trailing a
// directive's own line would parse as its reason.
package unusedignore

import "time"

// liveExact: floateq would flag the comparison; the directive consumes it.
func liveExact(a, b float64) bool {
	return a == b //placelint:ignore floateq golden convergence gate is deliberately bitwise-exact
}

// staleFloat: the operands became ints in a refactor; the directive now
// suppresses nothing.
func staleFloat(a, b int) bool {
	// want[+1] "suppression for "floateq" no longer suppresses anything"
	//placelint:ignore floateq left behind after the operands became ints
	return a == b
}

// liveClock: the walltime finding on the same line is consumed, and the
// cleared fact keeps viaLiveClock clean transitively.
func liveClock() int64 {
	return time.Now().UnixNano() //placelint:ignore walltime startup stamp only; never feeds a placement decision
}

func viaLiveClock() int64 {
	return liveClock() + 1
}

// staleClock: the clock read it once excused was deleted.
func staleClock(d time.Duration) time.Duration {
	// want[+1] "suppression for "walltime" no longer suppresses anything"
	//placelint:ignore walltime measured duration is reported, not consumed
	return 2 * d
}
