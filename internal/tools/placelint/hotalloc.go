package main

import (
	"go/ast"
)

// checkHotAlloc enforces the zero-allocation contract of DESIGN.md §14 on
// every function annotated
//
//	//placelint:hotpath
//
// in its doc comment: neither the function nor anything it transitively
// calls may allocate. The §14 kernels (wirelength CSR value/grad, density
// splat and axis tables, the par dispatch loop, the metrics atomics) run
// millions of times per placement iteration; a single allocation there
// turns into GC pressure that the runtime alloc tests only catch on the
// handful of benchmarked shapes. The facts engine proves the property for
// every caller path instead.
//
// "May allocate" is deliberately conservative: make/new/append, map and
// slice literals, escaping composite literals, closure captures, interface
// boxing, string concatenation and conversions, fmt, defer inside a loop,
// go statements, variadic argument slices, and any call that cannot be
// proven allocation-free (dynamic dispatch, unknown external packages).
// A site that is provably safe anyway (e.g. an append into a
// pre-sized-by-contract buffer) carries //placelint:ignore hotalloc
// <reason>, which clears the fact for every hotpath reaching it.
func checkHotAlloc(p *pass) {
	p.eachFunc(func(fd *ast.FuncDecl, ff *funcFacts) {
		if !ff.hotpath {
			return
		}
		// Every local site is a separate, precisely-positioned finding;
		// the transitive trace is reported only when the body itself is
		// clean (the chain explains which call drags the allocation in).
		for _, st := range ff.allocs {
			p.reportf(st.pos, "hotalloc",
				"allocation in hotpath %s: %s", fd.Name.Name, st.reason)
		}
		if len(ff.allocs) == 0 && ff.alloc != nil {
			p.reportf(ff.alloc.site, "hotalloc",
				"hotpath %s transitively allocates: %s", fd.Name.Name, ff.alloc.describe())
		}
	})
}
