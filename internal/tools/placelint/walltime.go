package main

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// checkWallTime flags wall-clock reads (time.Now, time.Since, time.Until)
// and any import of math/rand in solver and pipeline code. Wall time and
// unseeded randomness are the two classic back doors out of reproducibility:
// a solver that consults either can produce different placements from the
// same input.
//
// The allowlist is structural, not per-site: internal/obs owns the clock
// (timing belongs in telemetry, and the Stopwatch type is the sanctioned way
// for solver code to measure a duration for reports), internal/gen owns
// seeded randomness (benchmark synthesis is deterministic by construction),
// and _test.go files are never linted. Everything else must route timing
// through internal/obs or carry a //placelint:ignore walltime <reason>.
func checkWallTime(p *pass) {
	for _, f := range p.files {
		name := filepath.ToSlash(p.fileName(f))
		if strings.Contains(name, "internal/obs/") || strings.Contains(name, "internal/gen/") {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.reportf(imp.Pos(), "walltime",
					"import of %s outside internal/gen: randomness in solver code breaks run-to-run reproducibility", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Now", "Since", "Until":
			default:
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := p.info.Uses[x].(*types.PkgName)
			if !ok || pkg.Imported().Path() != "time" {
				return true
			}
			p.reportf(sel.Pos(), "walltime",
				"time.%s outside internal/obs: route timing through the obs clock (obs.StartStopwatch) or annotate with a reason", sel.Sel.Name)
			return true
		})
	}
}
