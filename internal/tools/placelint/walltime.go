package main

import (
	"go/ast"
	"go/types"
	"strconv"
)

// checkWallTime flags wall-clock reads (time.Now, time.Since, time.Until)
// and math/rand in solver and pipeline code — directly or through any chain
// of calls. Wall time and unseeded randomness are the two classic back
// doors out of reproducibility: a solver that consults either can produce
// different placements from the same input, and since PR 10 the check is
// transitive, a helper that hides the read one call frame down no longer
// slips through.
//
// The allowlist is structural, not per-site: internal/obs owns the clock
// (timing belongs in telemetry, and the Stopwatch type is the sanctioned
// way for solver code to measure a duration for reports), internal/gen and
// internal/faultinject own seeded randomness (benchmark synthesis and
// fault schedules are deterministic by construction), and _test.go files
// are never linted. The facts engine encodes the same boundary: clock and
// rand facts never escape the owner packages, so calling obs.StartStopwatch
// stays clean everywhere. Everything else must route timing through
// internal/obs or carry a //placelint:ignore walltime <reason> — which
// clears the fact at its source, so callers of the suppressed code stay
// clean too.
func checkWallTime(p *pass) {
	if isClockOwner(p.lp.path) {
		return
	}
	for _, f := range p.files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (path == "math/rand" || path == "math/rand/v2") && !isRandOwner(p.lp.path) {
				p.reportf(imp.Pos(), "walltime",
					"import of %s outside the randomness owners (internal/gen, internal/faultinject): randomness in solver code breaks run-to-run reproducibility", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Now", "Since", "Until":
			default:
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := p.info.Uses[x].(*types.PkgName)
			if !ok || pkg.Imported().Path() != "time" {
				return true
			}
			p.reportf(sel.Pos(), "walltime",
				"time.%s outside internal/obs: route timing through the obs clock (obs.StartStopwatch) or annotate with a reason", sel.Sel.Name)
			return true
		})
	}
	// Transitive reach: a function that arrives at a clock or rand read
	// through calls. Local sites (empty chain) were already reported above
	// at the exact expression, so only chained traces are news.
	p.eachFunc(func(fd *ast.FuncDecl, ff *funcFacts) {
		if ff.clock != nil && len(ff.clock.chain) > 0 {
			p.reportf(ff.clock.site, "walltime",
				"%s transitively reads the wall clock: %s", fd.Name.Name, ff.clock.describe())
		}
		if ff.rand != nil && len(ff.rand.chain) > 0 {
			p.reportf(ff.rand.site, "walltime",
				"%s transitively consumes math/rand: %s", fd.Name.Name, ff.rand.describe())
		}
	})
}
