package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// checkFloatEq flags == and != between floating-point operands. Exact float
// comparison is order-of-evaluation- and optimization-sensitive: two
// mathematically equal reductions can differ in the last ulp, so an exact
// comparison that gates solver behavior is a latent nondeterminism (and a
// latent never-true branch).
//
// Exempt are: comparisons where either operand is a compile-time constant
// (`x == 0`, `boost != 1` — the constant side is exact, and the idiom is a
// sentinel check against a value that was *assigned*, not computed; the
// hazard this check targets is comparing two computed floats), the NaN
// self-test idiom `x != x`, and any code inside an approved epsilon
// helper — a function whose name matches approvedFloatEqFunc (almostEqual,
// approxEq, …, or anything mentioning eps), since the helper is exactly
// where the exact comparison belongs. Deliberate bitwise-exact comparisons
// elsewhere (tie-break detection, golden convergence checks) carry
// //placelint:ignore floateq <reason>.
func checkFloatEq(p *pass) {
	for _, f := range p.files {
		helpers := approvedHelperSpans(f)
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.info.TypeOf(be.X)) && !isFloat(p.info.TypeOf(be.Y)) {
				return true
			}
			if isConst(p.info, be.X) || isConst(p.info, be.Y) {
				return true
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // NaN check: x != x (or a tautology — vet's problem)
			}
			for _, span := range helpers {
				if be.Pos() >= span[0] && be.Pos() < span[1] {
					return true
				}
			}
			p.reportf(be.Pos(), "floateq",
				"%s on float operands: compare through an epsilon helper, or annotate //placelint:ignore floateq <why exact equality is intended>", be.Op)
			return true
		})
	}
}

// approvedFloatEqFunc matches the names of functions allowed to compare
// floats exactly: the epsilon helpers themselves.
var approvedFloatEqFunc = regexp.MustCompile(`(?i)(almost|approx|near|fuzzy)eq|eps`)

// approvedHelperSpans returns the [start, end) extents of every approved
// epsilon-helper function declared in f.
func approvedHelperSpans(f *ast.File) [][2]token.Pos {
	var spans [][2]token.Pos
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if approvedFloatEqFunc.MatchString(fd.Name.Name) {
			spans = append(spans, [2]token.Pos{fd.Body.Pos(), fd.Body.End()})
		}
	}
	return spans
}

// isFloat reports whether t is (an alias of) a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConst reports whether e has a compile-time constant value.
func isConst(info *types.Info, e ast.Expr) bool {
	return info.Types[e].Value != nil
}
