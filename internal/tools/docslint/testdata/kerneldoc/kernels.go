// Package kerneldoc seeds the //docslint:kerneldoc check: its package doc
// names MentionedKernel, MentionedState and MentionedLimit, so only the
// unmentioned exported symbols in the directive-carrying file are flagged.
package kerneldoc

//docslint:kerneldoc

// MentionedState is named in the package doc and carries its own doc.
type MentionedState struct{}

// HiddenState is documented here but never named in the package doc.
type HiddenState struct{} // want "exported type HiddenState in a kerneldoc file is not named in the package doc"

// MentionedKernel is named in the package doc.
func MentionedKernel() {}

// HiddenKernel is documented here but never named in the package doc.
func HiddenKernel() {} // want "exported function HiddenKernel in a kerneldoc file is not named in the package doc"

// Reduce rides on MentionedState's mention: methods are exempt.
func (MentionedState) Reduce() {}

// MentionedLimit is named in the package doc; HiddenLimit is not. The
// mention of MentionedLimit must not satisfy a substring like Limit.
const (
	MentionedLimit = 8
	HiddenLimit    = 9 // want "exported const/var HiddenLimit in a kerneldoc file is not named in the package doc"
)

// helper is unexported and exempt.
func helper() {}
