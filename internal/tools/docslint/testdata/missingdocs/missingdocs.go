package missingdocs // want "package missingdocs has no package-level doc comment"

func Exported() {} // want "exported function Exported has no doc comment"

// Documented carries a doc comment and must not be flagged.
func Documented() {}

func unexported() {} // exempt: never renders in godoc

type Public struct{} // want "exported type Public has no doc comment"

// Describe is documented.
func (Public) Describe() {}

func (Public) Bare() {} // want "exported method Bare has no doc comment"

type hidden struct{}

func (hidden) Exported() {} // exempt: methods on unexported receivers never render

var Threshold = 3

// want[-2] "exported const/var Threshold has no doc comment"

// Limit is documented. A trailing same-line comment would count as the
// spec's doc, so the want above uses a line offset instead.
var Limit = 5
