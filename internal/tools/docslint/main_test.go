package main

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/tools/lintest"
)

// TestLintDirOnTestdata checks docslint against seeded packages through the
// shared lintest harness: every violation in testdata must be reported at
// its annotated line, and documented (or unexported, or mentioned) symbols
// in the same files guard against false positives. The kerneldoc package
// exercises the //docslint:kerneldoc package-doc-mention check.
func TestLintDirOnTestdata(t *testing.T) {
	for _, pkg := range []string{"missingdocs", "kerneldoc"} {
		t.Run(pkg, func(t *testing.T) {
			dir := filepath.Join("testdata", pkg)
			violations, err := lintDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			finds := make([]lintest.Finding, 0, len(violations))
			for _, v := range violations {
				parts := strings.SplitN(v, ":", 3)
				if len(parts) != 3 {
					t.Fatalf("malformed violation %q", v)
				}
				line, err := strconv.Atoi(parts[1])
				if err != nil {
					t.Fatalf("malformed violation %q: %v", v, err)
				}
				finds = append(finds, lintest.Finding{
					File: filepath.Base(parts[0]),
					Line: line,
					Msg:  strings.TrimSpace(parts[2]),
				})
			}
			lintest.Check(t, lintest.ParseWants(t, dir), finds)
		})
	}
}
