// Command docslint enforces the repository's documentation bar without any
// external linter dependency: every package must carry a package-level doc
// comment, and every exported top-level identifier (types, functions,
// methods, grouped consts/vars) must be documented. Files that opt in with a
// `//docslint:kerneldoc` directive additionally require every exported
// symbol they declare to be named in the package doc comment — hot-path
// kernel files are an API surface the package page must introduce. `make
// docs-lint` runs it over the whole module and fails the build on
// violations.
//
// Usage:
//
//	go run ./internal/tools/docslint [dir ...]
//
// With no arguments it lints the current module ("."). Test files,
// testdata directories and generated files are exempt, matching the
// conventions of go/doc.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var violations []string
	for _, root := range roots {
		v, err := lintTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docslint: %v\n", err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "docslint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}

// lintTree walks root and lints every directory that contains Go files.
func lintTree(root string) ([]string, error) {
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Lint in sorted directory order: the tool's own output must be as
	// reproducible as the code it polices.
	sorted := make([]string, 0, len(dirs))
	for dir := range dirs {
		sorted = append(sorted, dir)
	}
	sort.Strings(sorted)
	var violations []string
	for _, dir := range sorted {
		v, err := lintDir(dir)
		if err != nil {
			return nil, err
		}
		violations = append(violations, v...)
	}
	return violations, nil
}

// lintDir parses the non-test files of one directory and reports every
// missing doc comment, plus every kerneldoc violation (see lintKernelDoc).
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	hasPkgDoc := false
	pkgName := ""
	pkgDoc := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		pkgName = f.Name.Name
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasPkgDoc = true
			pkgDoc += f.Doc.Text() + "\n"
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	var violations []string
	if !hasPkgDoc {
		// Anchor the violation to the package's first file so the finding is
		// clickable and the testdata harness can match it by position.
		p := fset.Position(files[0].Pos())
		violations = append(violations,
			fmt.Sprintf("%s:%d: package %s has no package-level doc comment", p.Filename, p.Line, pkgName))
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			violations = append(violations, lintDecl(fset, decl)...)
		}
		if hasKernelDocDirective(f) {
			violations = append(violations, lintKernelDoc(fset, f, pkgDoc)...)
		}
	}
	return violations, nil
}

// hasKernelDocDirective reports whether the file opts into the kerneldoc
// check with a `//docslint:kerneldoc` directive comment.
func hasKernelDocDirective(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == "//docslint:kerneldoc" {
				return true
			}
		}
	}
	return false
}

// lintKernelDoc enforces the kernel-file documentation contract: a file
// carrying //docslint:kerneldoc holds hot-path kernels whose exported
// symbols form an API surface the package doc must introduce — a reader
// landing on the package page has to find the kernel entry points without
// spelunking the file. Every exported top-level identifier declared in the
// file must therefore be named somewhere in the package doc comment.
func lintKernelDoc(fset *token.FileSet, f *ast.File, pkgDoc string) []string {
	var violations []string
	check := func(pos token.Pos, what, name string) {
		if kernelDocMentions(pkgDoc, name) {
			return
		}
		p := fset.Position(pos)
		violations = append(violations, fmt.Sprintf(
			"%s:%d: exported %s %s in a kerneldoc file is not named in the package doc",
			p.Filename, p.Line, what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			// Methods ride on their receiver type's mention; only package-level
			// functions are independent entry points.
			if d.Recv == nil && d.Name.IsExported() {
				check(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() {
						check(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() {
							check(n.Pos(), "const/var", n.Name)
						}
					}
				}
			}
		}
	}
	return violations
}

// kernelDocMentions reports whether doc names the identifier as a whole
// word: a mention of WAValueAxis must not satisfy a check for ValueAxis.
func kernelDocMentions(doc, name string) bool {
	for rest := doc; ; {
		i := strings.Index(rest, name)
		if i < 0 {
			return false
		}
		beforeOK := i == 0 || !isIdentChar(rest[i-1])
		after := i + len(name)
		afterOK := after >= len(rest) || !isIdentChar(rest[after])
		if beforeOK && afterOK {
			return true
		}
		rest = rest[i+1:]
	}
}

// isIdentChar reports whether b can appear in a Go identifier (ASCII view —
// the symbols this check covers are exported Go names).
func isIdentChar(b byte) bool {
	return b == '_' || (b >= '0' && b <= '9') ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

// lintDecl reports exported top-level identifiers without a doc comment.
// A documented grouped const/var block covers its members, matching godoc's
// rendering.
func lintDecl(fset *token.FileSet, decl ast.Decl) []string {
	var violations []string
	missing := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		violations = append(violations,
			fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
			what := "function"
			if d.Recv != nil {
				what = "method"
			}
			missing(d.Pos(), what, d.Name.Name)
		}
	case *ast.GenDecl:
		groupDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && !groupDoc {
					missing(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				if groupDoc || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						missing(n.Pos(), "const/var", n.Name)
					}
				}
			}
		}
	}
	return violations
}

// exportedRecv reports whether a function is package-level or a method on an
// exported receiver type — methods on unexported types never render in
// godoc, so they are exempt.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr:
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		case *ast.Ident:
			return u.IsExported()
		default:
			return true
		}
	}
}
