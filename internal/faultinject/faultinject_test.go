package faultinject

import (
	"io"
	"strings"
	"testing"
)

func TestDisabledNeverFires(t *testing.T) {
	Disable()
	for i := 0; i < 10; i++ {
		if Hit(SiteOptNaNGrad) {
			t.Fatal("disabled site fired")
		}
	}
	if Armed(SiteOptNaNGrad) {
		t.Fatal("disabled site armed")
	}
}

func TestAfterAndCount(t *testing.T) {
	Enable(1, Spec{Site: SiteOptNaNGrad, After: 2, Count: 3})
	defer Disable()
	fired := 0
	for i := 0; i < 10; i++ {
		if Hit(SiteOptNaNGrad) {
			fired++
			// Fires exactly on hits 3..5.
			if i < 2 || i > 4 {
				t.Fatalf("fired on hit %d", i+1)
			}
		}
	}
	if fired != 3 || Fired(SiteOptNaNGrad) != 3 {
		t.Fatalf("fired %d times (Fired=%d), want 3", fired, Fired(SiteOptNaNGrad))
	}
	if Hit("unarmed/site") {
		t.Fatal("unarmed site fired")
	}
}

func TestProbDeterministic(t *testing.T) {
	count := func() int {
		Enable(42, Spec{Site: SiteDeadline, Prob: 0.5})
		defer Disable()
		n := 0
		for i := 0; i < 100; i++ {
			if Hit(SiteDeadline) {
				n++
			}
		}
		return n
	}
	a, b := count(), count()
	if a != b {
		t.Fatalf("same seed produced %d then %d fires", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("prob 0.5 fired %d/100 times", a)
	}
}

func TestTruncatedReader(t *testing.T) {
	const text = "hello bookshelf world"
	if got, _ := io.ReadAll(TruncatedReader(SiteBookshelfTruncate, strings.NewReader(text), 5)); string(got) != text {
		t.Fatalf("unarmed truncation altered stream: %q", got)
	}
	Enable(1, Spec{Site: SiteBookshelfTruncate})
	defer Disable()
	got, _ := io.ReadAll(TruncatedReader(SiteBookshelfTruncate, strings.NewReader(text), 5))
	if string(got) != "hello" {
		t.Fatalf("armed truncation returned %q", got)
	}
	if Fired(SiteBookshelfTruncate) != 1 {
		t.Fatalf("Fired = %d, want 1", Fired(SiteBookshelfTruncate))
	}
}
