// Package faultinject provides deterministic, seeded fault injection for the
// resilience test suite. Production code consults named sites at the points
// where faults can physically occur (a NaN gradient, a stalled line search,
// an exhausted deadline); tests arm a subset of sites and assert that the
// matching recovery path fires.
//
// Injection is off by default and build-tag-free: when disabled, Hit is a
// single atomic load, so shipping the sites in production code costs nothing
// measurable. All state is process-global and mutex-guarded, safe under
// `go test -race`.
package faultinject

import (
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Well-known fault sites. Keeping them here (rather than in the packages
// that consult them) gives tests one import for the whole catalogue.
const (
	// SiteOptNaNGrad corrupts the accepted gradient inside opt.Minimize.
	SiteOptNaNGrad = "opt/nan-grad"
	// SiteOptLineSearchStall forces the Armijo line search to reject every
	// trial step, simulating a pathological objective landscape.
	SiteOptLineSearchStall = "opt/linesearch-stall"
	// SiteDeadline makes pipeline.Expired report an exhausted deadline.
	SiteDeadline = "pipeline/deadline"
	// SiteDegenerateGroups makes core treat every extracted group as
	// degenerate, driving the baseline-fallback path.
	SiteDegenerateGroups = "core/degenerate-groups"
	// SiteBookshelfTruncate truncates a Bookshelf input stream mid-record
	// (used with TruncatedReader).
	SiteBookshelfTruncate = "bookshelf/truncate"
	// SiteServeCrashBeforeCommit makes the dpplaced job runner abandon a
	// finished attempt after the solve but before its terminal journal
	// record — the narrowest window a real SIGKILL can hit. Crash-safety
	// tests arm it to prove journal replay requeues the job and that
	// re-execution reproduces the identical placement.
	SiteServeCrashBeforeCommit = "serve/crash-before-commit"
)

// Spec arms one site. A hit is a call to Hit(site); the spec skips the first
// After hits, then fires with probability Prob (0 means always) at most
// Count times (0 means unlimited).
type Spec struct {
	Site  string
	After int
	Count int
	Prob  float64
}

type siteState struct {
	spec  Spec
	hits  int
	fired int
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	rng     *rand.Rand
	sites   map[string]*siteState
)

// Enable arms the given sites with a deterministic seed, replacing any
// previous plan. Tests should pair it with a deferred Disable.
func Enable(seed int64, specs ...Spec) {
	mu.Lock()
	defer mu.Unlock()
	rng = rand.New(rand.NewSource(seed))
	sites = make(map[string]*siteState, len(specs))
	for _, s := range specs {
		sites[s.Site] = &siteState{spec: s}
	}
	enabled.Store(len(sites) > 0)
}

// Disable turns all injection off.
func Disable() {
	mu.Lock()
	defer mu.Unlock()
	sites = nil
	rng = nil
	enabled.Store(false)
}

// Hit reports whether the fault at site fires now, advancing its counters.
// Disabled or unarmed sites never fire.
func Hit(site string) bool {
	if !enabled.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	st, ok := sites[site]
	if !ok {
		return false
	}
	st.hits++
	if st.hits <= st.spec.After {
		return false
	}
	if st.spec.Count > 0 && st.fired >= st.spec.Count {
		return false
	}
	if st.spec.Prob > 0 && st.spec.Prob < 1 && rng.Float64() >= st.spec.Prob {
		return false
	}
	st.fired++
	return true
}

// Armed reports whether site is in the current plan, without advancing it.
func Armed(site string) bool {
	if !enabled.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	_, ok := sites[site]
	return ok
}

// Fired returns how many times site has fired, for test assertions.
func Fired(site string) int {
	mu.Lock()
	defer mu.Unlock()
	if st, ok := sites[site]; ok {
		return st.fired
	}
	return 0
}

// FiredTotal returns the total number of fault firings across all armed
// sites, for run reports and the flight recorder's counter summary.
func FiredTotal() int {
	mu.Lock()
	defer mu.Unlock()
	n := 0
	//placelint:ignore maporder integer sum is order independent
	for _, st := range sites {
		n += st.fired
	}
	return n
}

// TruncatedReader returns r truncated to n bytes when site is armed, and r
// unchanged otherwise — the injection shape for "the input file was cut off
// mid-record".
func TruncatedReader(site string, r io.Reader, n int64) io.Reader {
	if !Armed(site) {
		return r
	}
	mu.Lock()
	if st, ok := sites[site]; ok {
		st.fired++
	}
	mu.Unlock()
	return io.LimitReader(r, n)
}
