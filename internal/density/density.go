// Package density implements the bin-based cell-density machinery of
// analytical global placement: an exact utilization map with the standard
// overflow metric, and the NTUplace3-style smooth bell-shaped potential with
// analytic gradients, used as the spreading penalty during optimization.
package density

import (
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Map holds per-bin area accumulations over a grid.
type Map struct {
	Grid geom.Grid
	Bins []float64 // area (or potential) per bin, Grid.Index order
}

// NewMap returns a zeroed map over grid.
func NewMap(grid geom.Grid) *Map {
	return &Map{Grid: grid, Bins: make([]float64, grid.Bins())}
}

// Reset zeroes all bins.
func (m *Map) Reset() {
	for i := range m.Bins {
		m.Bins[i] = 0
	}
}

// AddRect distributes the area of r into the bins it overlaps, exactly.
func (m *Map) AddRect(r geom.Rect) {
	i0, i1, j0, j1 := m.Grid.Range(r)
	for j := j0; j < j1; j++ {
		for i := i0; i < i1; i++ {
			ov := m.Grid.BinRect(i, j).Overlap(r)
			if ov > 0 {
				m.Bins[m.Grid.Index(i, j)] += ov
			}
		}
	}
}

// Utilization builds the exact utilization map of a placement: per-bin
// occupied area (movable + fixed) divided by bin area.
func Utilization(nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid) *Map {
	m := NewMap(grid)
	for i := range nl.Cells {
		m.AddRect(pl.CellRect(nl, netlist.CellID(i)))
	}
	binArea := grid.BinW * grid.BinH
	for i := range m.Bins {
		m.Bins[i] /= binArea
	}
	return m
}

// Overflow returns the total-overflow ratio of a placement at the given
// target utilization: Σ_b max(0, area_b − target·binArea) / Σ movable area.
// This is the standard global-placement stopping metric (0 = fully spread).
func Overflow(nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid, target float64) float64 {
	m := NewMap(grid)
	for i := range nl.Cells {
		m.AddRect(pl.CellRect(nl, netlist.CellID(i)))
	}
	binArea := grid.BinW * grid.BinH
	cap := target * binArea
	over := 0.0
	for _, a := range m.Bins {
		if a > cap {
			over += a - cap
		}
	}
	mov := nl.MovableArea()
	if mov <= 0 {
		return 0
	}
	return over / mov
}

// MaxUtilization returns the maximum bin utilization of a placement.
func MaxUtilization(nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid) float64 {
	u := Utilization(nl, pl, grid)
	maxU := 0.0
	for _, v := range u.Bins {
		if v > maxU {
			maxU = v
		}
	}
	return maxU
}

// Potential is the smooth density model. Given cell centers it computes
//
//	N(x, y) = Σ_b (D_b − T_b)²
//
// where D_b spreads each cell's area over nearby bins with the bell-shaped
// kernel of NTUplace3, and T_b is the per-bin target area (target
// utilization × bin area, reduced by fixed-cell blockage). The gradient with
// respect to each movable cell's center is computed analytically, treating
// the per-cell normalization constant as locally fixed (the standard
// approximation).
type Potential struct {
	nl     *netlist.Netlist
	grid   geom.Grid
	target []float64 // per-bin target area T_b
	dens   []float64 // scratch: per-bin spread density D_b
	diff   []float64 // scratch: D_b − T_b
}

// NewPotential prepares a potential for nl over grid with the given target
// utilization. Fixed cells immediately reduce the targets of the bins they
// block.
func NewPotential(nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid, targetUtil float64) *Potential {
	p := &Potential{
		nl:     nl,
		grid:   grid,
		target: make([]float64, grid.Bins()),
		dens:   make([]float64, grid.Bins()),
		diff:   make([]float64, grid.Bins()),
	}
	binArea := grid.BinW * grid.BinH
	for i := range p.target {
		p.target[i] = targetUtil * binArea
	}
	// Fixed cells consume capacity exactly.
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed {
			continue
		}
		r := pl.CellRect(nl, netlist.CellID(i))
		i0, i1, j0, j1 := grid.Range(r)
		for j := j0; j < j1; j++ {
			for bi := i0; bi < i1; bi++ {
				idx := grid.Index(bi, j)
				p.target[idx] -= grid.BinRect(bi, j).Overlap(r)
				if p.target[idx] < 0 {
					p.target[idx] = 0
				}
			}
		}
	}
	return p
}

// bell evaluates the one-dimensional bell kernel and its derivative for a
// cell of size w whose center is at distance d (signed) from the bin center.
// wb is the bin size along the axis.
func bell(d, w, wb float64) (p, dp float64) {
	ad := math.Abs(d)
	r1 := w/2 + wb   // inner knee
	r2 := w/2 + 2*wb // support radius
	if ad >= r2 {
		return 0, 0
	}
	a := 4 / ((w + 2*wb) * (w + 4*wb))
	b := 2 / (wb * (w + 4*wb))
	var sign float64 = 1
	if d < 0 {
		sign = -1
	}
	if ad <= r1 {
		return 1 - a*ad*ad, -2 * a * ad * sign
	}
	t := ad - r2
	return b * t * t, 2 * b * t * sign
}

// Eval computes N at the cell centers (cx, cy), parallel to nl.Cells, and
// adds ∂N/∂cx into gx and ∂N/∂cy into gy when they are non-nil. Fixed cells
// contribute nothing (their blockage already lowered the targets).
func (p *Potential) Eval(cx, cy []float64, gx, gy []float64) float64 {
	g := p.grid
	for i := range p.dens {
		p.dens[i] = 0
	}
	// First pass: accumulate spread density.
	for ci := range p.nl.Cells {
		cell := &p.nl.Cells[ci]
		if cell.Fixed {
			continue
		}
		p.splat(ci, cx[ci], cy[ci], cell.W, cell.H)
	}
	n := 0.0
	for i := range p.dens {
		d := p.dens[i] - p.target[i]
		p.diff[i] = d
		n += d * d
	}
	if gx == nil && gy == nil {
		return n
	}
	// Second pass: chain rule through each cell's kernel footprint.
	for ci := range p.nl.Cells {
		cell := &p.nl.Cells[ci]
		if cell.Fixed {
			continue
		}
		w, h := effSize(cell.W, g.BinW), effSize(cell.H, g.BinH)
		norm := p.cellNorm(cx[ci], cy[ci], w, h, cell.Area())
		x0, y0 := cx[ci], cy[ci]
		i0, i1, j0, j1 := p.footprint(x0, y0, w, h)
		var dx, dy float64
		for j := j0; j < j1; j++ {
			by := g.Region.Lo.Y + (float64(j)+0.5)*g.BinH
			py, dpy := bell(y0-by, h, g.BinH)
			if py == 0 && dpy == 0 {
				continue
			}
			for bi := i0; bi < i1; bi++ {
				bx := g.Region.Lo.X + (float64(bi)+0.5)*g.BinW
				px, dpx := bell(x0-bx, w, g.BinW)
				if px == 0 && dpx == 0 {
					continue
				}
				d := p.diff[g.Index(bi, j)]
				dx += 2 * d * norm * dpx * py
				dy += 2 * d * norm * px * dpy
			}
		}
		if gx != nil {
			gx[ci] += dx
		}
		if gy != nil {
			gy[ci] += dy
		}
	}
	return n
}

// effSize inflates very small cells to the bin size so their kernel support
// is never empty (standard smoothing of tiny cells).
func effSize(w, wb float64) float64 {
	if w < wb {
		return wb
	}
	return w
}

// footprint returns the bin index ranges covered by the kernel support of a
// cell centered at (x0, y0), clamped into the grid.
func (p *Potential) footprint(x0, y0, w, h float64) (i0, i1, j0, j1 int) {
	g := p.grid
	rx := w/2 + 2*g.BinW
	ry := h/2 + 2*g.BinH
	return g.Range(geom.NewRect(x0-rx, y0-ry, x0+rx, y0+ry))
}

// footprintRaw is footprint without grid clamping; indices may be negative
// or beyond the grid. Normalization uses it so that the per-cell scale does
// not jump when a cell's kernel is clipped by the region boundary — that
// jump would make the frozen-normalization gradient badly wrong near edges.
func (p *Potential) footprintRaw(x0, y0, w, h float64) (i0, i1, j0, j1 int) {
	g := p.grid
	rx := w/2 + 2*g.BinW
	ry := h/2 + 2*g.BinH
	i0 = int(math.Floor((x0 - rx - g.Region.Lo.X) / g.BinW))
	i1 = int(math.Ceil((x0 + rx - g.Region.Lo.X) / g.BinW))
	j0 = int(math.Floor((y0 - ry - g.Region.Lo.Y) / g.BinH))
	j1 = int(math.Ceil((y0 + ry - g.Region.Lo.Y) / g.BinH))
	return i0, i1, j0, j1
}

// cellNorm computes the per-cell scale making the kernel integrate to the
// cell area over the unclipped (virtual) footprint.
func (p *Potential) cellNorm(x0, y0, w, h, area float64) float64 {
	g := p.grid
	i0, i1, j0, j1 := p.footprintRaw(x0, y0, w, h)
	sum := 0.0
	for j := j0; j < j1; j++ {
		by := g.Region.Lo.Y + (float64(j)+0.5)*g.BinH
		py, _ := bell(y0-by, h, g.BinH)
		if py == 0 {
			continue
		}
		for bi := i0; bi < i1; bi++ {
			bx := g.Region.Lo.X + (float64(bi)+0.5)*g.BinW
			px, _ := bell(x0-bx, w, g.BinW)
			sum += px * py
		}
	}
	if sum <= 0 {
		return 0
	}
	return area / sum
}

// splat adds one cell's bell-kernel contribution into p.dens.
func (p *Potential) splat(ci int, x0, y0, cw, ch float64) {
	g := p.grid
	w, h := effSize(cw, g.BinW), effSize(ch, g.BinH)
	area := cw * ch
	norm := p.cellNorm(x0, y0, w, h, area)
	if norm == 0 {
		return
	}
	i0, i1, j0, j1 := p.footprint(x0, y0, w, h)
	for j := j0; j < j1; j++ {
		by := g.Region.Lo.Y + (float64(j)+0.5)*g.BinH
		py, _ := bell(y0-by, h, g.BinH)
		if py == 0 {
			continue
		}
		for bi := i0; bi < i1; bi++ {
			bx := g.Region.Lo.X + (float64(bi)+0.5)*g.BinW
			px, _ := bell(x0-bx, w, g.BinW)
			if px == 0 {
				continue
			}
			p.dens[g.Index(bi, j)] += norm * px * py
		}
	}
}

// Grid returns the potential's bin grid.
func (p *Potential) Grid() geom.Grid { return p.grid }

// TargetArea returns the target area of bin idx (after blockage reduction).
func (p *Potential) TargetArea(idx int) float64 { return p.target[idx] }
