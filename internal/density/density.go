// Package density implements the bin-based cell-density machinery of
// analytical global placement: an exact utilization map with the standard
// overflow metric, and the NTUplace3-style smooth bell-shaped potential with
// analytic gradients, used as the spreading penalty during optimization.
//
// The Potential evaluates through flat SoA kernels (soa.go): per-cell 1-D
// bell tables with a separable normalization, a branch-free table-driven
// splat, and a chain-rule gradient over the same tables. The split Value /
// Gradient API lets the placement engine's delta evaluator reuse a cached
// objective and still obtain gradients from the stored tables; Eval fuses
// the two for ordinary callers. Results are bit-identical at every worker
// count (SetParallel).
package density

import (
	"context"
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
)

// Map holds per-bin area accumulations over a grid.
type Map struct {
	Grid geom.Grid
	Bins []float64 // area (or potential) per bin, Grid.Index order
}

// NewMap returns a zeroed map over grid.
func NewMap(grid geom.Grid) *Map {
	return &Map{Grid: grid, Bins: make([]float64, grid.Bins())}
}

// Reset zeroes all bins.
func (m *Map) Reset() {
	for i := range m.Bins {
		m.Bins[i] = 0
	}
}

// AddRect distributes the area of r into the bins it overlaps, exactly.
func (m *Map) AddRect(r geom.Rect) {
	i0, i1, j0, j1 := m.Grid.Range(r)
	for j := j0; j < j1; j++ {
		for i := i0; i < i1; i++ {
			ov := m.Grid.BinRect(i, j).Overlap(r)
			if ov > 0 {
				m.Bins[m.Grid.Index(i, j)] += ov
			}
		}
	}
}

// Utilization builds the exact utilization map of a placement: per-bin
// occupied area (movable + fixed) divided by bin area.
func Utilization(nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid) *Map {
	m := NewMap(grid)
	for i := range nl.Cells {
		m.AddRect(pl.CellRect(nl, netlist.CellID(i)))
	}
	binArea := grid.BinW * grid.BinH
	for i := range m.Bins {
		m.Bins[i] /= binArea
	}
	return m
}

// Overflow returns the total-overflow ratio of a placement at the given
// target utilization: Σ_b max(0, area_b − target·binArea) / Σ movable area.
// This is the standard global-placement stopping metric (0 = fully spread).
func Overflow(nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid, target float64) float64 {
	m := NewMap(grid)
	for i := range nl.Cells {
		m.AddRect(pl.CellRect(nl, netlist.CellID(i)))
	}
	binArea := grid.BinW * grid.BinH
	cap := target * binArea
	over := 0.0
	for _, a := range m.Bins {
		if a > cap {
			over += a - cap
		}
	}
	mov := nl.MovableArea()
	if mov <= 0 {
		return 0
	}
	return over / mov
}

// MaxUtilization returns the maximum bin utilization of a placement.
func MaxUtilization(nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid) float64 {
	u := Utilization(nl, pl, grid)
	maxU := 0.0
	for _, v := range u.Bins {
		if v > maxU {
			maxU = v
		}
	}
	return maxU
}

// Potential is the smooth density model. Given cell centers it computes
//
//	N(x, y) = Σ_b (D_b − T_b)²
//
// where D_b spreads each cell's area over nearby bins with the bell-shaped
// kernel of NTUplace3, and T_b is the per-bin target area (target
// utilization × bin area, reduced by fixed-cell blockage). The gradient with
// respect to each movable cell's center is computed analytically, treating
// the per-cell normalization constant as locally fixed (the standard
// approximation).
type Potential struct {
	nl     *netlist.Netlist
	grid   geom.Grid
	target []float64 // per-bin target area T_b
	dens   []float64 // scratch: per-bin spread density D_b
	diff   []float64 // scratch: D_b − T_b

	// Congestion-feedback modulation (SetAreaScale / SetTargetScale).
	// Both are caller-owned views; nil means identity.
	areaScale []float64 // per-cell area multiplier, indexed by CellID
	tscale    []float64 // per-bin target multiplier, Grid.Index order

	// Parallel execution state (SetParallel). pool == nil runs inline.
	pool *par.Pool
	ctx  context.Context

	// SoA scratch, sized on first use (soa.go). tabX/tabY hold the per-cell
	// 1-D bell constants and the tables the current Value pass filled; norm
	// is the separable normalization; valReady gates Gradient.
	movable  []int32    // indices of movable cells, ascending
	norm     []float64  // per-movable-cell kernel normalization at current centers
	tabX     axisTables // x-axis bell constants + current tables
	tabY     axisTables // y-axis bell constants + current tables
	valReady bool       // a Value pass has filled the tables and residuals
	rowStart []int      // CSR offsets into rowCells, one per grid row (+1)
	rowCells []int32    // movable-list indices whose kernel touches the row, ascending
}

// NewPotential prepares a potential for nl over grid with the given target
// utilization. Fixed cells immediately reduce the targets of the bins they
// block.
func NewPotential(nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid, targetUtil float64) *Potential {
	p := &Potential{
		nl:     nl,
		grid:   grid,
		target: make([]float64, grid.Bins()),
		dens:   make([]float64, grid.Bins()),
		diff:   make([]float64, grid.Bins()),
	}
	binArea := grid.BinW * grid.BinH
	for i := range p.target {
		p.target[i] = targetUtil * binArea
	}
	// Fixed cells consume capacity exactly.
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed {
			continue
		}
		r := pl.CellRect(nl, netlist.CellID(i))
		i0, i1, j0, j1 := grid.Range(r)
		for j := j0; j < j1; j++ {
			for bi := i0; bi < i1; bi++ {
				idx := grid.Index(bi, j)
				p.target[idx] -= grid.BinRect(bi, j).Overlap(r)
				if p.target[idx] < 0 {
					p.target[idx] = 0
				}
			}
		}
	}
	return p
}

// bell evaluates the one-dimensional bell kernel and its derivative for a
// cell of size w whose center is at distance d (signed) from the bin center.
// wb is the bin size along the axis. This is the reference form; the hot
// path precomputes the piecewise constants per cell and fills tables
// (axisTables.fill), which the kernel tests cross-check against bell.
func bell(d, w, wb float64) (p, dp float64) {
	ad := math.Abs(d)
	r1 := w/2 + wb   // inner knee
	r2 := w/2 + 2*wb // support radius
	if ad >= r2 {
		return 0, 0
	}
	a := 4 / ((w + 2*wb) * (w + 4*wb))
	b := 2 / (wb * (w + 4*wb))
	var sign float64 = 1
	if d < 0 {
		sign = -1
	}
	if ad <= r1 {
		return 1 - a*ad*ad, -2 * a * ad * sign
	}
	t := ad - r2
	return b * t * t, 2 * b * t * sign
}

// SetParallel attaches a worker pool (and the context it polls) to the
// potential. Subsequent Eval calls shard their passes across the pool; a nil
// pool (the default) keeps evaluation inline on the calling goroutine. The
// parallel schedule never changes the result: every floating-point
// accumulation order is fixed by cell and bin indices, not by worker count
// (see package par). When the context expires mid-evaluation Eval returns
// NaN, which the optimizer's numerical-health guard already treats as a
// rejected iterate; the caller's own context polling then stops the solve.
func (p *Potential) SetParallel(pool *par.Pool, ctx context.Context) {
	p.pool = pool
	p.ctx = ctx
}

// Eval computes N at the cell centers (cx, cy), parallel to nl.Cells, and
// adds ∂N/∂cx into gx and ∂N/∂cy into gy when they are non-nil. Fixed cells
// contribute nothing (their blockage already lowered the targets).
//
// Eval is the composition of Value and Gradient (soa.go): a table-fill +
// splat pass producing the objective, then — when a gradient is requested —
// a chain-rule pass over the same tables. Callers that can prove the
// coordinates have not changed since the last Value may call Gradient alone;
// the global-placement engine's delta evaluator does exactly that.
func (p *Potential) Eval(cx, cy []float64, gx, gy []float64) float64 {
	n := p.Value(cx, cy)
	if math.IsNaN(n) || (gx == nil && gy == nil) {
		return n
	}
	if !p.Gradient(gx, gy) {
		return math.NaN()
	}
	return n
}

// ensureScratch sizes the movable-cell scratch on first use. Cell sizes and
// the movable set are immutable for the lifetime of a Potential, so the
// per-cell bell constants and the fixed CSR table layout are computed once
// here; only the table *contents* change per evaluation.
func (p *Potential) ensureScratch() {
	if p.movable != nil {
		return
	}
	g := p.grid
	p.movable = make([]int32, 0, len(p.nl.Cells))
	for ci := range p.nl.Cells {
		if !p.nl.Cells[ci].Fixed {
			p.movable = append(p.movable, int32(ci))
		}
	}
	n := len(p.movable)
	p.norm = make([]float64, n)
	p.tabX.init(n)
	p.tabY.init(n)
	for mi, ci := range p.movable {
		capX := p.tabX.setConsts(mi, effSize(p.nl.Cells[ci].W, g.BinW), g.BinW)
		capY := p.tabY.setConsts(mi, effSize(p.nl.Cells[ci].H, g.BinH), g.BinH)
		p.tabX.off[mi+1] = p.tabX.off[mi] + int32(capX)
		p.tabY.off[mi+1] = p.tabY.off[mi] + int32(capY)
	}
	p.tabX.p = make([]float64, p.tabX.off[n])
	p.tabX.dp = make([]float64, p.tabX.off[n])
	p.tabY.p = make([]float64, p.tabY.off[n])
	p.tabY.dp = make([]float64, p.tabY.off[n])
	p.rowStart = make([]int, g.NY+1)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// effSize inflates very small cells to the bin size so their kernel support
// is never empty (standard smoothing of tiny cells).
func effSize(w, wb float64) float64 {
	if w < wb {
		return wb
	}
	return w
}

// Grid returns the potential's bin grid.
func (p *Potential) Grid() geom.Grid { return p.grid }

// TargetArea returns the target area of bin idx (after blockage reduction and
// any SetTargetScale modulation).
func (p *Potential) TargetArea(idx int) float64 {
	t := p.target[idx]
	if p.tscale != nil {
		t *= p.tscale[idx]
	}
	return t
}

// SetAreaScale installs a per-cell area multiplier, indexed by CellID (nil
// restores the identity). The congestion controller inflates cells in
// over-demand bins this way: the scaled area enters only the kernel
// normalization of the next Value pass, so the bell support and the SoA table
// layout (§14 contract) are untouched. The slice is retained, not copied —
// the caller owns it and must not mutate it mid-evaluation. Changing the
// scale changes the objective at unchanged coordinates; callers that cache
// density values or gradients (the placement engine) must invalidate those
// caches themselves.
func (p *Potential) SetAreaScale(scale []float64) { p.areaScale = scale }

// SetTargetScale installs a per-bin target multiplier in Grid.Index order
// (nil restores the identity). Scaled targets lower T_b under hot bins so the
// spreader evacuates them. Ownership and cache-invalidation obligations match
// SetAreaScale.
func (p *Potential) SetTargetScale(ts []float64) { p.tscale = ts }
