// Package density implements the bin-based cell-density machinery of
// analytical global placement: an exact utilization map with the standard
// overflow metric, and the NTUplace3-style smooth bell-shaped potential with
// analytic gradients, used as the spreading penalty during optimization.
package density

import (
	"context"
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
)

// Map holds per-bin area accumulations over a grid.
type Map struct {
	Grid geom.Grid
	Bins []float64 // area (or potential) per bin, Grid.Index order
}

// NewMap returns a zeroed map over grid.
func NewMap(grid geom.Grid) *Map {
	return &Map{Grid: grid, Bins: make([]float64, grid.Bins())}
}

// Reset zeroes all bins.
func (m *Map) Reset() {
	for i := range m.Bins {
		m.Bins[i] = 0
	}
}

// AddRect distributes the area of r into the bins it overlaps, exactly.
func (m *Map) AddRect(r geom.Rect) {
	i0, i1, j0, j1 := m.Grid.Range(r)
	for j := j0; j < j1; j++ {
		for i := i0; i < i1; i++ {
			ov := m.Grid.BinRect(i, j).Overlap(r)
			if ov > 0 {
				m.Bins[m.Grid.Index(i, j)] += ov
			}
		}
	}
}

// Utilization builds the exact utilization map of a placement: per-bin
// occupied area (movable + fixed) divided by bin area.
func Utilization(nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid) *Map {
	m := NewMap(grid)
	for i := range nl.Cells {
		m.AddRect(pl.CellRect(nl, netlist.CellID(i)))
	}
	binArea := grid.BinW * grid.BinH
	for i := range m.Bins {
		m.Bins[i] /= binArea
	}
	return m
}

// Overflow returns the total-overflow ratio of a placement at the given
// target utilization: Σ_b max(0, area_b − target·binArea) / Σ movable area.
// This is the standard global-placement stopping metric (0 = fully spread).
func Overflow(nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid, target float64) float64 {
	m := NewMap(grid)
	for i := range nl.Cells {
		m.AddRect(pl.CellRect(nl, netlist.CellID(i)))
	}
	binArea := grid.BinW * grid.BinH
	cap := target * binArea
	over := 0.0
	for _, a := range m.Bins {
		if a > cap {
			over += a - cap
		}
	}
	mov := nl.MovableArea()
	if mov <= 0 {
		return 0
	}
	return over / mov
}

// MaxUtilization returns the maximum bin utilization of a placement.
func MaxUtilization(nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid) float64 {
	u := Utilization(nl, pl, grid)
	maxU := 0.0
	for _, v := range u.Bins {
		if v > maxU {
			maxU = v
		}
	}
	return maxU
}

// Potential is the smooth density model. Given cell centers it computes
//
//	N(x, y) = Σ_b (D_b − T_b)²
//
// where D_b spreads each cell's area over nearby bins with the bell-shaped
// kernel of NTUplace3, and T_b is the per-bin target area (target
// utilization × bin area, reduced by fixed-cell blockage). The gradient with
// respect to each movable cell's center is computed analytically, treating
// the per-cell normalization constant as locally fixed (the standard
// approximation).
type Potential struct {
	nl     *netlist.Netlist
	grid   geom.Grid
	target []float64 // per-bin target area T_b
	dens   []float64 // scratch: per-bin spread density D_b
	diff   []float64 // scratch: D_b − T_b

	// Parallel execution state (SetParallel). pool == nil runs inline.
	pool *par.Pool
	ctx  context.Context

	// Per-Eval scratch, sized on first use.
	movable  []int32   // indices of movable cells, ascending
	norm     []float64 // per-movable-cell kernel normalization at current centers
	effW     []float64 // per-movable-cell effective kernel width
	effH     []float64 // per-movable-cell effective kernel height
	rowStart []int     // CSR offsets into rowCells, one per grid row (+1)
	rowCells []int32   // movable-list indices whose kernel touches the row, ascending
}

// NewPotential prepares a potential for nl over grid with the given target
// utilization. Fixed cells immediately reduce the targets of the bins they
// block.
func NewPotential(nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid, targetUtil float64) *Potential {
	p := &Potential{
		nl:     nl,
		grid:   grid,
		target: make([]float64, grid.Bins()),
		dens:   make([]float64, grid.Bins()),
		diff:   make([]float64, grid.Bins()),
	}
	binArea := grid.BinW * grid.BinH
	for i := range p.target {
		p.target[i] = targetUtil * binArea
	}
	// Fixed cells consume capacity exactly.
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed {
			continue
		}
		r := pl.CellRect(nl, netlist.CellID(i))
		i0, i1, j0, j1 := grid.Range(r)
		for j := j0; j < j1; j++ {
			for bi := i0; bi < i1; bi++ {
				idx := grid.Index(bi, j)
				p.target[idx] -= grid.BinRect(bi, j).Overlap(r)
				if p.target[idx] < 0 {
					p.target[idx] = 0
				}
			}
		}
	}
	return p
}

// bell evaluates the one-dimensional bell kernel and its derivative for a
// cell of size w whose center is at distance d (signed) from the bin center.
// wb is the bin size along the axis.
func bell(d, w, wb float64) (p, dp float64) {
	ad := math.Abs(d)
	r1 := w/2 + wb   // inner knee
	r2 := w/2 + 2*wb // support radius
	if ad >= r2 {
		return 0, 0
	}
	a := 4 / ((w + 2*wb) * (w + 4*wb))
	b := 2 / (wb * (w + 4*wb))
	var sign float64 = 1
	if d < 0 {
		sign = -1
	}
	if ad <= r1 {
		return 1 - a*ad*ad, -2 * a * ad * sign
	}
	t := ad - r2
	return b * t * t, 2 * b * t * sign
}

// SetParallel attaches a worker pool (and the context it polls) to the
// potential. Subsequent Eval calls shard their passes across the pool; a nil
// pool (the default) keeps evaluation inline on the calling goroutine. The
// parallel schedule never changes the result: every floating-point
// accumulation order is fixed by cell and bin indices, not by worker count
// (see package par). When the context expires mid-evaluation Eval returns
// NaN, which the optimizer's numerical-health guard already treats as a
// rejected iterate; the caller's own context polling then stops the solve.
func (p *Potential) SetParallel(pool *par.Pool, ctx context.Context) {
	p.pool = pool
	p.ctx = ctx
}

// Eval computes N at the cell centers (cx, cy), parallel to nl.Cells, and
// adds ∂N/∂cx into gx and ∂N/∂cy into gy when they are non-nil. Fixed cells
// contribute nothing (their blockage already lowered the targets).
//
// Evaluation runs in four passes — per-cell kernel normalization, density
// splat tiled by bin rows, the serial objective sum, and the per-cell
// gradient chain rule — so the first, second and fourth can run on the pool
// installed with SetParallel while each bin and each gradient slot still
// sees its contributions in a fixed order.
func (p *Potential) Eval(cx, cy []float64, gx, gy []float64) float64 {
	g := p.grid
	p.ensureScratch()

	// Pass 1: per-cell kernel normalization at the current centers (pure
	// per-cell function; embarrassingly parallel). The footprint row index
	// for pass 2 rides along.
	if err := p.pool.Run(p.ctx, len(p.movable), 64, func(lo, hi int) {
		for mi := lo; mi < hi; mi++ {
			ci := int(p.movable[mi])
			cell := &p.nl.Cells[ci]
			p.norm[mi] = p.cellNorm(cx[ci], cy[ci], p.effW[mi], p.effH[mi], cell.Area())
		}
	}); err != nil {
		return math.NaN()
	}

	// Row index: for every grid row, the movable cells whose kernel support
	// touches it, in ascending cell order. Built serially (no bell
	// evaluations, just arithmetic) so the fill order is deterministic.
	p.buildRowIndex(cx, cy)

	// Pass 2: density splat, tiled by bin rows. Each row's bins are owned by
	// exactly one worker, and within a row cells are visited in ascending
	// order — the same per-bin accumulation order as a serial cell loop, so
	// the sum per bin is bit-identical at every worker count.
	for i := range p.dens {
		p.dens[i] = 0
	}
	if err := p.pool.Run(p.ctx, g.NY, 2, func(loRow, hiRow int) {
		for j := loRow; j < hiRow; j++ {
			by := g.Region.Lo.Y + (float64(j)+0.5)*g.BinH
			for _, mi := range p.rowCells[p.rowStart[j]:p.rowStart[j+1]] {
				norm := p.norm[mi]
				if norm == 0 {
					continue
				}
				ci := int(p.movable[mi])
				x0 := cx[ci]
				w := p.effW[mi]
				py, _ := bell(cy[ci]-by, p.effH[mi], g.BinH)
				if py == 0 {
					continue
				}
				i0, i1 := p.xRange(x0, w)
				for bi := i0; bi < i1; bi++ {
					bx := g.Region.Lo.X + (float64(bi)+0.5)*g.BinW
					px, _ := bell(x0-bx, w, g.BinW)
					if px == 0 {
						continue
					}
					p.dens[g.Index(bi, j)] += norm * px * py
				}
			}
		}
	}); err != nil {
		return math.NaN()
	}

	// Pass 3: objective. Serial, in bin order, exactly as before.
	n := 0.0
	for i := range p.dens {
		d := p.dens[i] - p.target[i]
		p.diff[i] = d
		n += d * d
	}
	if gx == nil && gy == nil {
		return n
	}

	// Pass 4: chain rule through each cell's kernel footprint. Each cell
	// accumulates into its own gradient slot, so cells shard freely.
	if err := p.pool.Run(p.ctx, len(p.movable), 64, func(lo, hi int) {
		for mi := lo; mi < hi; mi++ {
			ci := int(p.movable[mi])
			w, h := p.effW[mi], p.effH[mi]
			norm := p.norm[mi]
			x0, y0 := cx[ci], cy[ci]
			i0, i1, j0, j1 := p.footprint(x0, y0, w, h)
			var dx, dy float64
			for j := j0; j < j1; j++ {
				by := g.Region.Lo.Y + (float64(j)+0.5)*g.BinH
				py, dpy := bell(y0-by, h, g.BinH)
				if py == 0 && dpy == 0 {
					continue
				}
				for bi := i0; bi < i1; bi++ {
					bx := g.Region.Lo.X + (float64(bi)+0.5)*g.BinW
					px, dpx := bell(x0-bx, w, g.BinW)
					if px == 0 && dpx == 0 {
						continue
					}
					d := p.diff[g.Index(bi, j)]
					dx += 2 * d * norm * dpx * py
					dy += 2 * d * norm * px * dpy
				}
			}
			if gx != nil {
				gx[ci] += dx
			}
			if gy != nil {
				gy[ci] += dy
			}
		}
	}); err != nil {
		return math.NaN()
	}
	return n
}

// ensureScratch sizes the movable-cell scratch on first use. Cell sizes and
// the movable set are immutable for the lifetime of a Potential, so the
// effective kernel sizes are computed once here.
func (p *Potential) ensureScratch() {
	if p.movable != nil {
		return
	}
	g := p.grid
	p.movable = make([]int32, 0, len(p.nl.Cells))
	for ci := range p.nl.Cells {
		if !p.nl.Cells[ci].Fixed {
			p.movable = append(p.movable, int32(ci))
		}
	}
	p.norm = make([]float64, len(p.movable))
	p.effW = make([]float64, len(p.movable))
	p.effH = make([]float64, len(p.movable))
	for mi, ci := range p.movable {
		p.effW[mi] = effSize(p.nl.Cells[ci].W, g.BinW)
		p.effH[mi] = effSize(p.nl.Cells[ci].H, g.BinH)
	}
	p.rowStart = make([]int, g.NY+1)
}

// buildRowIndex fills rowStart/rowCells with, per grid row, the movable
// cells whose kernel support overlaps it, in ascending movable order.
func (p *Potential) buildRowIndex(cx, cy []float64) {
	g := p.grid
	for i := range p.rowStart {
		p.rowStart[i] = 0
	}
	for mi, ci := range p.movable {
		j0, j1 := p.yRange(cy[ci], p.effH[mi])
		for j := j0; j < j1; j++ {
			p.rowStart[j+1]++
		}
	}
	total := 0
	for j := 0; j < g.NY; j++ {
		total += p.rowStart[j+1]
		p.rowStart[j+1] = total
	}
	if cap(p.rowCells) < total {
		p.rowCells = make([]int32, total)
	}
	p.rowCells = p.rowCells[:total]
	fill := make([]int, g.NY)
	copy(fill, p.rowStart[:g.NY])
	for mi, ci := range p.movable {
		j0, j1 := p.yRange(cy[ci], p.effH[mi])
		for j := j0; j < j1; j++ {
			p.rowCells[fill[j]] = int32(mi)
			fill[j]++
		}
	}
}

// xRange returns the clamped bin columns covered by the kernel support of a
// cell centered at x0; identical to footprint's i-range.
func (p *Potential) xRange(x0, w float64) (i0, i1 int) {
	g := p.grid
	rx := w/2 + 2*g.BinW
	i0 = int(math.Floor((x0 - rx - g.Region.Lo.X) / g.BinW))
	i1 = int(math.Ceil((x0 + rx - g.Region.Lo.X) / g.BinW))
	return clampInt(i0, 0, g.NX), clampInt(i1, 0, g.NX)
}

// yRange returns the clamped bin rows covered by the kernel support of a
// cell centered at y0; identical to footprint's j-range.
func (p *Potential) yRange(y0, h float64) (j0, j1 int) {
	g := p.grid
	ry := h/2 + 2*g.BinH
	j0 = int(math.Floor((y0 - ry - g.Region.Lo.Y) / g.BinH))
	j1 = int(math.Ceil((y0 + ry - g.Region.Lo.Y) / g.BinH))
	return clampInt(j0, 0, g.NY), clampInt(j1, 0, g.NY)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// effSize inflates very small cells to the bin size so their kernel support
// is never empty (standard smoothing of tiny cells).
func effSize(w, wb float64) float64 {
	if w < wb {
		return wb
	}
	return w
}

// footprint returns the bin index ranges covered by the kernel support of a
// cell centered at (x0, y0), clamped into the grid.
func (p *Potential) footprint(x0, y0, w, h float64) (i0, i1, j0, j1 int) {
	g := p.grid
	rx := w/2 + 2*g.BinW
	ry := h/2 + 2*g.BinH
	return g.Range(geom.NewRect(x0-rx, y0-ry, x0+rx, y0+ry))
}

// footprintRaw is footprint without grid clamping; indices may be negative
// or beyond the grid. Normalization uses it so that the per-cell scale does
// not jump when a cell's kernel is clipped by the region boundary — that
// jump would make the frozen-normalization gradient badly wrong near edges.
func (p *Potential) footprintRaw(x0, y0, w, h float64) (i0, i1, j0, j1 int) {
	g := p.grid
	rx := w/2 + 2*g.BinW
	ry := h/2 + 2*g.BinH
	i0 = int(math.Floor((x0 - rx - g.Region.Lo.X) / g.BinW))
	i1 = int(math.Ceil((x0 + rx - g.Region.Lo.X) / g.BinW))
	j0 = int(math.Floor((y0 - ry - g.Region.Lo.Y) / g.BinH))
	j1 = int(math.Ceil((y0 + ry - g.Region.Lo.Y) / g.BinH))
	return i0, i1, j0, j1
}

// cellNorm computes the per-cell scale making the kernel integrate to the
// cell area over the unclipped (virtual) footprint.
func (p *Potential) cellNorm(x0, y0, w, h, area float64) float64 {
	g := p.grid
	i0, i1, j0, j1 := p.footprintRaw(x0, y0, w, h)
	sum := 0.0
	for j := j0; j < j1; j++ {
		by := g.Region.Lo.Y + (float64(j)+0.5)*g.BinH
		py, _ := bell(y0-by, h, g.BinH)
		if py == 0 {
			continue
		}
		for bi := i0; bi < i1; bi++ {
			bx := g.Region.Lo.X + (float64(bi)+0.5)*g.BinW
			px, _ := bell(x0-bx, w, g.BinW)
			sum += px * py
		}
	}
	if sum <= 0 {
		return 0
	}
	return area / sum
}

// Grid returns the potential's bin grid.
func (p *Potential) Grid() geom.Grid { return p.grid }

// TargetArea returns the target area of bin idx (after blockage reduction).
func (p *Potential) TargetArea(idx int) float64 { return p.target[idx] }
