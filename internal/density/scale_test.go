package density

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// pinchedProblem clusters every cell into one corner of the grid so the
// density objective is strictly positive — area scaling then has an
// observable effect.
func pinchedProblem(seed int64, nCells int) (*netlist.Netlist, *netlist.Placement, geom.Grid) {
	rng := rand.New(rand.NewSource(seed))
	nl := netlist.New(fmt.Sprintf("pinch%d", seed))
	for i := 0; i < nCells; i++ {
		nl.MustAddCell(fmt.Sprintf("c%d", i), "std", 4+float64(rng.Intn(5))*2, 8, false)
	}
	pl := netlist.NewPlacement(nl)
	for i := range nl.Cells {
		pl.X[i] = rng.Float64() * 50
		pl.Y[i] = rng.Float64() * 50
	}
	return nl, pl, geom.NewGrid(geom.NewRect(0, 0, 200, 200), 24, 24)
}

func centersOf(nl *netlist.Netlist, pl *netlist.Placement) (cx, cy []float64) {
	cx = make([]float64, len(nl.Cells))
	cy = make([]float64, len(nl.Cells))
	for i := range nl.Cells {
		cx[i] = pl.X[i] + nl.Cells[i].W/2
		cy[i] = pl.Y[i] + nl.Cells[i].H/2
	}
	return cx, cy
}

// TestUnitScalesAreNoOp pins the identity contract of the congestion hooks:
// an all-1.0 area scale and target scale — and a nil reset — produce the
// bit-identical value and gradient of a scale-free potential.
func TestUnitScalesAreNoOp(t *testing.T) {
	nl, pl, grid := pinchedProblem(21, 150)
	cx, cy := centersOf(nl, pl)

	plain := NewPotential(nl, pl, grid, 0.9)
	fP := plain.Value(cx, cy)
	gxP := make([]float64, len(nl.Cells))
	gyP := make([]float64, len(nl.Cells))
	plain.Gradient(gxP, gyP)
	if fP == 0 {
		t.Fatal("pinched placement has zero density value; scaling is unobservable")
	}

	scaled := NewPotential(nl, pl, grid, 0.9)
	ones := make([]float64, len(nl.Cells))
	for i := range ones {
		ones[i] = 1
	}
	tones := make([]float64, grid.Bins())
	for i := range tones {
		tones[i] = 1
	}
	scaled.SetAreaScale(ones)
	scaled.SetTargetScale(tones)
	fS := scaled.Value(cx, cy)
	if fS != fP {
		t.Fatalf("unit scales: Value %v != plain %v", fS, fP)
	}
	gxS := make([]float64, len(nl.Cells))
	gyS := make([]float64, len(nl.Cells))
	scaled.Gradient(gxS, gyS)
	for i := range gxS {
		if gxS[i] != gxP[i] || gyS[i] != gyP[i] {
			t.Fatalf("unit scales: cell %d grad (%v,%v) != plain (%v,%v)",
				i, gxS[i], gyS[i], gxP[i], gyP[i])
		}
	}

	// nil restores the identity.
	scaled.SetAreaScale(nil)
	scaled.SetTargetScale(nil)
	if f := scaled.Value(cx, cy); f != fP {
		t.Fatalf("nil reset: Value %v != plain %v", f, fP)
	}
}

// TestAreaScaleChangesObjective checks the scale actually enters the kernel:
// doubling every cell's effective area on an overfull placement strictly
// raises the density value at unchanged coordinates.
func TestAreaScaleChangesObjective(t *testing.T) {
	nl, pl, grid := pinchedProblem(22, 150)
	cx, cy := centersOf(nl, pl)
	plain := NewPotential(nl, pl, grid, 0.9)
	fP := plain.Value(cx, cy)

	scaled := NewPotential(nl, pl, grid, 0.9)
	twos := make([]float64, len(nl.Cells))
	for i := range twos {
		twos[i] = 2
	}
	scaled.SetAreaScale(twos)
	if fS := scaled.Value(cx, cy); fS <= fP {
		t.Fatalf("doubled area: Value %v, want > plain %v", fS, fP)
	}
}

// TestTargetScaleLowersTargetArea pins the TargetArea accessor contract under
// SetTargetScale modulation.
func TestTargetScaleLowersTargetArea(t *testing.T) {
	nl, pl, grid := pinchedProblem(23, 40)
	p := NewPotential(nl, pl, grid, 0.9)
	base := p.TargetArea(0)
	if base <= 0 {
		t.Fatalf("bin 0 target area %v, want > 0", base)
	}
	ts := make([]float64, grid.Bins())
	for i := range ts {
		ts[i] = 1
	}
	ts[0] = 0.5
	p.SetTargetScale(ts)
	if got := p.TargetArea(0); got != base*0.5 {
		t.Fatalf("scaled TargetArea(0) = %v, want %v", got, base*0.5)
	}
	if got, want := p.TargetArea(1), NewPotential(nl, pl, grid, 0.9).TargetArea(1); got != want {
		t.Fatalf("bin 1 (scale 1.0) target area %v, want unmodulated %v", got, want)
	}
}
