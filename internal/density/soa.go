package density

import "math"

//docslint:kerneldoc

// This file is the SoA (structure-of-arrays) form of the bell-kernel
// potential: per-cell one-dimensional bell tables filled once per
// evaluation, a branch-free density splat that reads them, and a gradient
// pass over the same tables. The key identity is separability — the 2-D
// bell kernel is px(d_x)·py(d_y), so the per-cell normalization over the raw
// (unclipped) footprint factors into (Σ px)·(Σ py); two 1-D sums replace the
// old O(W·H) double loop, and every later bin visit is a table lookup
// instead of a piecewise-quadratic evaluation.
//
// Buffer ownership follows the compute-then-reduce discipline of package
// par: the table-fill and gradient passes shard by cell and write only
// slots owned by that cell (fixed CSR table ranges, gradient components);
// the splat shards by bin row with cells visited in ascending order inside
// each row, matching the serial cell-order accumulation bit for bit. Value
// must run before Gradient at the same coordinates — Eval composes the two;
// the split exists so the engine's delta evaluator can reuse a cached value
// and still get a fresh gradient from the stored tables.

// axisTables is the per-axis half of the SoA scratch: the bell constants of
// every movable cell and its current table fill.
type axisTables struct {
	// Immutable per-cell bell constants (effSize already applied):
	// p(d) = 1 − a·d² for |d| ≤ r1, b·(|d|−r2)² for r1 < |d| < r2, else 0.
	a, b, r1, r2 []float64
	// off is the fixed CSR offset of each cell's table slots; cap their
	// count. The capacity covers any raw footprint span of the cell, so a
	// fill never writes outside its own range.
	off []int32
	// Current fill: bin origin of slot 0 (raw, unclamped), the clamped
	// in-grid bin range, the cell center the fill ran at, and the kernel
	// values per bin. dp holds the derivative tables, which only the
	// gradient pass needs — fillDeriv computes them lazily from ctr so
	// value-only probes never pay for them.
	i0, iLo, iHi []int
	ctr          []float64
	p, dp        []float64
}

func (t *axisTables) init(n int) {
	t.a = make([]float64, n)
	t.b = make([]float64, n)
	t.r1 = make([]float64, n)
	t.r2 = make([]float64, n)
	t.off = make([]int32, n+1)
	t.i0 = make([]int, n)
	t.iLo = make([]int, n)
	t.iHi = make([]int, n)
	t.ctr = make([]float64, n)
}

// setConsts fills the bell constants for one cell from its effective kernel
// size w and the bin size wb, and returns the table capacity its raw
// footprint can ever need.
func (t *axisTables) setConsts(mi int, w, wb float64) int {
	t.a[mi] = 4 / ((w + 2*wb) * (w + 4*wb))
	t.b[mi] = 2 / (wb * (w + 4*wb))
	t.r1[mi] = w/2 + wb
	t.r2[mi] = w/2 + 2*wb
	return int(2*t.r2[mi]/wb) + 3
}

// fill evaluates the cell's 1-D bell kernel at every bin center of its raw
// footprint around center x0, writing values into the cell's table slots,
// and returns Σ p over the raw range (the separable normalization factor).
// Derivatives are not filled — value-only probes never read them; fillDeriv
// computes them on demand from the recorded center. lo is the grid's low
// edge, wb the bin size, nBins the clamped axis extent. Degenerate
// footprints (non-finite coordinates, or spans beyond the table capacity)
// yield a zero sum and an empty clamped range — the cell contributes
// nothing, exactly like the pre-SoA code whose loop over a garbage range
// was empty.
//
//placelint:hotpath
func (t *axisTables) fill(mi int, x0, lo, wb float64, nBins int) float64 {
	r2 := t.r2[mi]
	f0 := math.Floor((x0 - r2 - lo) / wb)
	f1 := math.Ceil((x0 + r2 - lo) / wb)
	span := f1 - f0
	capSlots := float64(t.off[mi+1] - t.off[mi])
	if !(span >= 0 && span <= capSlots) {
		t.i0[mi], t.iLo[mi], t.iHi[mi] = 0, 0, 0
		t.ctr[mi] = x0
		return 0
	}
	i0, i1 := int(f0), int(f1)
	t.i0[mi] = i0
	t.iLo[mi] = clampInt(i0, 0, nBins)
	t.iHi[mi] = clampInt(i1, 0, nBins)
	t.ctr[mi] = x0
	a, b, r1 := t.a[mi], t.b[mi], t.r1[mi]
	tp := t.p[t.off[mi] : int(t.off[mi])+i1-i0]
	sum := 0.0
	for k, bi := 0, i0; bi < i1; k, bi = k+1, bi+1 {
		d := x0 - (lo + (float64(bi)+0.5)*wb)
		ad := d
		if ad < 0 {
			ad = -ad
		}
		var pv float64
		if ad < r2 {
			if ad <= r1 {
				pv = 1 - a*ad*ad
			} else {
				u := ad - r2
				pv = b * u * u
			}
		}
		tp[k] = pv
		sum += pv
	}
	return sum
}

// fillDeriv writes the cell's 1-D bell derivative table for the footprint
// the last fill recorded, reproducing bit for bit the values the fused
// kernel used to compute alongside fill. The gradient pass calls it once
// per cell, so probes that never ask for a gradient skip this work
// entirely.
//
//placelint:hotpath
func (t *axisTables) fillDeriv(mi int, lo, wb float64) {
	x0 := t.ctr[mi]
	i0 := t.i0[mi]
	a, b, r1, r2 := t.a[mi], t.b[mi], t.r1[mi], t.r2[mi]
	// Only the clamped in-grid range is ever read back; slots keep fill's
	// raw-origin indexing.
	tdp := t.dp[t.off[mi]:]
	for bi := t.iLo[mi]; bi < t.iHi[mi]; bi++ {
		d := x0 - (lo + (float64(bi)+0.5)*wb)
		ad, sign := d, 1.0
		if ad < 0 {
			ad, sign = -ad, -1
		}
		var dv float64
		if ad < r2 {
			if ad <= r1 {
				dv = -2 * a * ad * sign
			} else {
				u := ad - r2
				dv = 2 * b * u * sign
			}
		}
		tdp[bi-i0] = dv
	}
}

// Value computes the density objective N = Σ_b (D_b − T_b)² at the cell
// centers (cx, cy), refreshing the per-cell bell tables, the density map and
// the per-bin residuals. It returns NaN when the attached context expires
// mid-pass. A Value call is the prerequisite of Gradient at the same
// coordinates.
func (p *Potential) Value(cx, cy []float64) float64 {
	p.ensureScratch()
	g := p.grid
	p.valReady = false

	// Pass 1: per-cell table fill and separable normalization. Each cell
	// owns its fixed table range and norm slot, so cells shard freely.
	if err := p.pool.Run(p.ctx, len(p.movable), 64, func(lo, hi int) {
		for mi := lo; mi < hi; mi++ {
			ci := int(p.movable[mi])
			sx := p.tabX.fill(mi, cx[ci], g.Region.Lo.X, g.BinW, g.NX)
			sy := p.tabY.fill(mi, cy[ci], g.Region.Lo.Y, g.BinH, g.NY)
			s := sx * sy
			if s > 0 {
				area := p.nl.Cells[ci].Area()
				if p.areaScale != nil {
					area *= p.areaScale[ci]
				}
				p.norm[mi] = area / s
			} else {
				p.norm[mi] = 0
			}
		}
	}); err != nil {
		return math.NaN()
	}

	// Pass 2: density splat from the tables. Serial runs accumulate in cell
	// order; parallel runs tile by bin row with cells ascending within each
	// row — the same per-bin addition order, so the bins are bit-identical
	// at every worker count.
	for i := range p.dens {
		p.dens[i] = 0
	}
	if p.pool.Workers() == 1 {
		for mi := range p.norm {
			p.splatCell(mi)
		}
	} else {
		p.buildRowIndex()
		if err := p.pool.Run(p.ctx, g.NY, 2, func(loRow, hiRow int) {
			for j := loRow; j < hiRow; j++ {
				for _, mi := range p.rowCells[p.rowStart[j]:p.rowStart[j+1]] {
					p.splatRow(int(mi), j)
				}
			}
		}); err != nil {
			return math.NaN()
		}
	}

	// Pass 3: objective and residuals, serial in bin order.
	n := 0.0
	if p.tscale != nil {
		for i := range p.dens {
			d := p.dens[i] - p.target[i]*p.tscale[i]
			p.diff[i] = d
			n += d * d
		}
	} else {
		for i := range p.dens {
			d := p.dens[i] - p.target[i]
			p.diff[i] = d
			n += d * d
		}
	}
	p.valReady = true
	return n
}

// splatRow adds one cell's contribution to the bins of grid row j; the
// parallel splat's unit of work.
//
//placelint:hotpath
func (p *Potential) splatRow(mi, j int) {
	nrm := p.norm[mi]
	if nrm == 0 {
		return
	}
	g := p.grid
	c := nrm * p.tabY.p[int(p.tabY.off[mi])+j-p.tabY.i0[mi]]
	if c == 0 {
		return
	}
	iLo, iHi := p.tabX.iLo[mi], p.tabX.iHi[mi]
	if iLo >= iHi {
		return
	}
	row := p.dens[g.Index(iLo, j):g.Index(iHi, j)]
	base := int(p.tabX.off[mi]) - p.tabX.i0[mi]
	tab := p.tabX.p[base+iLo : base+iHi]
	for k := range row {
		row[k] += c * tab[k]
	}
}

// splatCell adds one cell's contribution to every bin row it touches; the
// serial splat's unit of work. It performs exactly splatRow's additions in
// the same row order, with the cell-level table lookups hoisted out of the
// row loop (the serial path visits every row of a cell back to back, so the
// shared loads pay off; the parallel path cannot, it owns rows not cells).
//
//placelint:hotpath
func (p *Potential) splatCell(mi int) {
	nrm := p.norm[mi]
	if nrm == 0 {
		return
	}
	iLo, iHi := p.tabX.iLo[mi], p.tabX.iHi[mi]
	if iLo >= iHi {
		return
	}
	nx := p.grid.NX
	xBase := int(p.tabX.off[mi]) - p.tabX.i0[mi]
	yBase := int(p.tabY.off[mi]) - p.tabY.i0[mi]
	dens, tabY := p.dens, p.tabY.p
	tab := p.tabX.p[xBase+iLo : xBase+iHi]
	for j := p.tabY.iLo[mi]; j < p.tabY.iHi[mi]; j++ {
		c := nrm * tabY[yBase+j]
		if c == 0 {
			continue
		}
		row := dens[j*nx+iLo : j*nx+iHi]
		for k := range row {
			row[k] += c * tab[k]
		}
	}
}

// Gradient accumulates λ-free density derivatives into gx and gy (indexed by
// cell, added — not overwritten), using the tables and residuals of the last
// Value call, which must have been at the same coordinates. It reports false
// when the attached context expired mid-pass, in which case the
// accumulation is partial and the caller must poison its objective.
func (p *Potential) Gradient(gx, gy []float64) bool {
	if !p.valReady {
		panic("density: Gradient called before Value")
	}
	g := p.grid
	nx := g.NX
	err := p.pool.Run(p.ctx, len(p.movable), 64, func(lo, hi int) {
		tabX, tabY := &p.tabX, &p.tabY
		norm, diffAll, movable := p.norm, p.diff, p.movable
		for mi := lo; mi < hi; mi++ {
			nrm := norm[mi]
			if nrm == 0 {
				continue
			}
			iLo, iHi := tabX.iLo[mi], tabX.iHi[mi]
			if iLo >= iHi {
				continue
			}
			tabX.fillDeriv(mi, g.Region.Lo.X, g.BinW)
			tabY.fillDeriv(mi, g.Region.Lo.Y, g.BinH)
			xBase := int(tabX.off[mi]) - tabX.i0[mi]
			yBase := int(tabY.off[mi]) - tabY.i0[mi]
			px := tabX.p[xBase+iLo : xBase+iHi]
			dpx := tabX.dp[xBase+iLo : xBase+iHi]
			var dx, dy float64
			for j := tabY.iLo[mi]; j < tabY.iHi[mi]; j++ {
				py := tabY.p[yBase+j]
				dpy := tabY.dp[yBase+j]
				if py == 0 && dpy == 0 {
					continue
				}
				diff := diffAll[j*nx+iLo : j*nx+iHi]
				for k := range diff {
					d := diff[k]
					dx += 2 * d * nrm * dpx[k] * py
					dy += 2 * d * nrm * px[k] * dpy
				}
			}
			ci := int(movable[mi])
			if gx != nil {
				gx[ci] += dx
			}
			if gy != nil {
				gy[ci] += dy
			}
		}
	})
	return err == nil
}

// buildRowIndex fills rowStart/rowCells with, per grid row, the movable
// cells whose kernel support overlaps it, in ascending movable order. The
// clamped row ranges come from the tables filled by the current Value pass.
func (p *Potential) buildRowIndex() {
	g := p.grid
	for i := range p.rowStart {
		p.rowStart[i] = 0
	}
	for mi := range p.norm {
		for j := p.tabY.iLo[mi]; j < p.tabY.iHi[mi]; j++ {
			p.rowStart[j+1]++
		}
	}
	total := 0
	for j := 0; j < g.NY; j++ {
		total += p.rowStart[j+1]
		p.rowStart[j+1] = total
	}
	if cap(p.rowCells) < total {
		p.rowCells = make([]int32, total)
	}
	p.rowCells = p.rowCells[:total]
	fill := make([]int, g.NY)
	copy(fill, p.rowStart[:g.NY])
	for mi := range p.norm {
		for j := p.tabY.iLo[mi]; j < p.tabY.iHi[mi]; j++ {
			p.rowCells[fill[j]] = int32(mi)
			fill[j]++
		}
	}
}
