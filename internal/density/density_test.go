package density

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
)

// gridDesign builds nCells unit-square movable cells on a 100x100 core.
func gridDesign(nCells int) (*netlist.Netlist, *netlist.Placement, geom.Grid) {
	nl := netlist.New("d")
	for i := 0; i < nCells; i++ {
		nl.MustAddCell(cellName(i), "STD", 4, 4, false)
	}
	pl := netlist.NewPlacement(nl)
	return nl, pl, geom.NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10)
}

func cellName(i int) string { return "c" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestAddRectExactSplit(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10)
	m := NewMap(g)
	// Rect straddling four bins equally.
	m.AddRect(geom.NewRect(5, 5, 15, 15))
	total := 0.0
	for _, v := range m.Bins {
		total += v
	}
	if math.Abs(total-100) > 1e-9 {
		t.Fatalf("total area = %g, want 100", total)
	}
	for _, idx := range []int{g.Index(0, 0), g.Index(1, 0), g.Index(0, 1), g.Index(1, 1)} {
		if math.Abs(m.Bins[idx]-25) > 1e-9 {
			t.Errorf("bin %d = %g, want 25", idx, m.Bins[idx])
		}
	}
}

func TestUtilization(t *testing.T) {
	nl, pl, g := gridDesign(2)
	pl.SetLoc(0, geom.Point{X: 0, Y: 0}) // wholly in bin (0,0)
	pl.SetLoc(1, geom.Point{X: 3, Y: 3}) // also bin (0,0)
	u := Utilization(nl, pl, g)
	if math.Abs(u.Bins[g.Index(0, 0)]-32.0/100) > 1e-9 {
		t.Errorf("util(0,0) = %g, want 0.32", u.Bins[g.Index(0, 0)])
	}
}

func TestOverflowZeroWhenSpread(t *testing.T) {
	nl, pl, g := gridDesign(25)
	// One 4x4 cell per bin row/col stride: 16 area per 100-area bin = 0.16.
	k := 0
	for j := 0; j < 5; j++ {
		for i := 0; i < 5; i++ {
			pl.SetLoc(netlist.CellID(k), geom.Point{X: float64(i)*20 + 3, Y: float64(j)*20 + 3})
			k++
		}
	}
	if ov := Overflow(nl, pl, g, 1.0); ov != 0 {
		t.Errorf("overflow = %g, want 0", ov)
	}
}

func TestOverflowOneWhenStacked(t *testing.T) {
	nl, pl, g := gridDesign(50)
	// All 50 cells at the origin: 800 area in one 100-area bin.
	for i := range nl.Cells {
		pl.SetLoc(netlist.CellID(i), geom.Point{X: 0, Y: 0})
	}
	ov := Overflow(nl, pl, g, 1.0)
	// 50 cells × 16 area all inside bin (0,0): 800 area in capacity 100.
	// over = 700; movable = 800 → 0.875.
	if math.Abs(ov-0.875) > 1e-9 {
		t.Errorf("overflow = %g, want 0.875", ov)
	}
}

func TestOverflowCountsFixedBlockage(t *testing.T) {
	nl := netlist.New("f")
	nl.MustAddCell("blk", "MACRO", 10, 10, true)
	nl.MustAddCell("c", "STD", 10, 10, false)
	pl := netlist.NewPlacement(nl)
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10)
	// Both in the same bin: blockage makes the movable cell overflow.
	pl.SetLoc(0, geom.Point{X: 0, Y: 0})
	pl.SetLoc(1, geom.Point{X: 0, Y: 0})
	ov := Overflow(nl, pl, g, 1.0)
	if math.Abs(ov-1.0) > 1e-9 {
		t.Errorf("overflow = %g, want 1.0 (bin holds 200 in cap 100, movable 100)", ov)
	}
}

func TestMaxUtilization(t *testing.T) {
	nl, pl, g := gridDesign(2)
	pl.SetLoc(0, geom.Point{X: 0, Y: 0})
	pl.SetLoc(1, geom.Point{X: 50, Y: 50})
	if got := MaxUtilization(nl, pl, g); math.Abs(got-0.16) > 1e-9 {
		t.Errorf("MaxUtilization = %g, want 0.16", got)
	}
}

func TestBellKernelShape(t *testing.T) {
	w, wb := 4.0, 10.0
	// At center: peak value 1.
	p0, d0 := bell(0, w, wb)
	if p0 != 1 || d0 != 0 {
		t.Errorf("bell(0) = %g, %g", p0, d0)
	}
	// Beyond support: zero.
	p, d := bell(w/2+2*wb+1, w, wb)
	if p != 0 || d != 0 {
		t.Errorf("bell outside support = %g, %g", p, d)
	}
	// Continuity at the knee r1 = w/2 + wb.
	r1 := w/2 + wb
	pl, _ := bell(r1-1e-9, w, wb)
	pr, _ := bell(r1+1e-9, w, wb)
	if math.Abs(pl-pr) > 1e-6 {
		t.Errorf("bell discontinuous at knee: %g vs %g", pl, pr)
	}
	// Symmetry.
	pp, dp := bell(3, w, wb)
	pn, dn := bell(-3, w, wb)
	if pp != pn || dp != -dn {
		t.Errorf("bell not even: (%g,%g) vs (%g,%g)", pp, dp, pn, dn)
	}
}

func TestBellDerivativeMatchesFD(t *testing.T) {
	w, wb := 6.0, 5.0
	for _, d := range []float64{0.5, 2, 7.9, 9, 12, 14, -3, -8.5} {
		_, got := bell(d, w, wb)
		const h = 1e-6
		fp, _ := bell(d+h, w, wb)
		fm, _ := bell(d-h, w, wb)
		fd := (fp - fm) / (2 * h)
		if math.Abs(fd-got) > 1e-4 {
			t.Errorf("bell'(%g) = %g, finite diff %g", d, got, fd)
		}
	}
}

func potentialSetup(nCells int, seed int64) (*Potential, []float64, []float64) {
	nl, pl, g := gridDesign(nCells)
	rng := rand.New(rand.NewSource(seed))
	cx := make([]float64, nCells)
	cy := make([]float64, nCells)
	for i := range cx {
		cx[i] = 10 + rng.Float64()*80
		cy[i] = 10 + rng.Float64()*80
	}
	p := NewPotential(nl, pl, g, 0.5)
	return p, cx, cy
}

func TestPotentialGradientMatchesFD(t *testing.T) {
	p, cx, cy := potentialSetup(6, 3)
	gx := make([]float64, len(cx))
	gy := make([]float64, len(cy))
	p.Eval(cx, cy, gx, gy)
	const h = 1e-5
	for i := range cx {
		orig := cx[i]
		cx[i] = orig + h
		fp := p.Eval(cx, cy, nil, nil)
		cx[i] = orig - h
		fm := p.Eval(cx, cy, nil, nil)
		cx[i] = orig
		fd := (fp - fm) / (2 * h)
		// The analytic gradient freezes the normalization constant, so allow
		// a few percent of slack plus an absolute tolerance.
		if math.Abs(fd-gx[i]) > 0.05*math.Abs(fd)+1.0 {
			t.Errorf("gx[%d] = %g, finite diff %g", i, gx[i], fd)
		}
	}
}

func TestPotentialDecreasesWhenSpreading(t *testing.T) {
	// All cells stacked → high N; spread evenly → low N.
	n := 16
	nl, pl, g := gridDesign(n)
	p := NewPotential(nl, pl, g, 0.5)
	cx := make([]float64, n)
	cy := make([]float64, n)
	for i := range cx {
		cx[i], cy[i] = 50, 50
	}
	stacked := p.Eval(cx, cy, nil, nil)
	k := 0
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			cx[k] = 12.5 + 25*float64(i)
			cy[k] = 12.5 + 25*float64(j)
			k++
		}
	}
	spread := p.Eval(cx, cy, nil, nil)
	if spread >= stacked {
		t.Errorf("spreading did not reduce potential: stacked=%g spread=%g", stacked, spread)
	}
}

func TestPotentialGradientPushesAwayFromPile(t *testing.T) {
	// A large pile of cells overloads the center bins; a probe cell offset
	// to the left of the pile must be pushed further left (down the density
	// hill), which is the force that spreads congested placements.
	n := 40
	nl, pl, g := gridDesign(n)
	p := NewPotential(nl, pl, g, 0.5)
	cx := make([]float64, n)
	cy := make([]float64, n)
	for i := range cx {
		cx[i], cy[i] = 55, 50
	}
	probe := 0
	cx[probe] = 42 // left of the pile
	gx := make([]float64, n)
	gy := make([]float64, n)
	p.Eval(cx, cy, gx, gy)
	// gx is ∂N/∂x: positive means the objective rises toward the pile, so
	// gradient descent moves the probe left, away from it.
	if gx[probe] <= 0 {
		t.Errorf("descent does not push probe away from pile: gx=%g", gx[probe])
	}
	_ = pl
}

func TestPotentialFixedBlockageReducesTarget(t *testing.T) {
	nl := netlist.New("b")
	nl.MustAddCell("blk", "MACRO", 10, 10, true)
	nl.MustAddCell("c", "STD", 4, 4, false)
	pl := netlist.NewPlacement(nl)
	pl.SetLoc(0, geom.Point{X: 0, Y: 0})
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10)
	p := NewPotential(nl, pl, g, 1.0)
	if got := p.TargetArea(g.Index(0, 0)); got != 0 {
		t.Errorf("blocked bin target = %g, want 0", got)
	}
	if got := p.TargetArea(g.Index(5, 5)); got != 100 {
		t.Errorf("free bin target = %g, want 100", got)
	}
}

func TestPotentialConservesArea(t *testing.T) {
	// The splatted density must sum to the movable area (kernel normalized)
	// for cells whose kernel support lies fully inside the region; boundary
	// cells intentionally leak (normalization uses the virtual grid).
	n := 8
	nl, _, g := gridDesign(n)
	plc := netlist.NewPlacement(nl)
	p := NewPotential(nl, plc, g, 0.5)
	rng := rand.New(rand.NewSource(5))
	cx := make([]float64, n)
	cy := make([]float64, n)
	for i := range cx {
		// Kernel radius = effSize/2 + 2*binW = 25, so keep centers in [25,75].
		cx[i] = 25 + rng.Float64()*50
		cy[i] = 25 + rng.Float64()*50
	}
	p.Eval(cx, cy, nil, nil)
	total := 0.0
	for _, d := range p.dens {
		total += d
	}
	want := nl.MovableArea()
	if math.Abs(total-want) > 1e-6*want {
		t.Errorf("spread density total = %g, want %g", total, want)
	}
}

func BenchmarkPotentialEval(b *testing.B) {
	n := 1000
	nl := netlist.New("bench")
	for i := 0; i < n; i++ {
		nl.MustAddCell(benchName(i), "STD", 2, 2, false)
	}
	pl := netlist.NewPlacement(nl)
	g := geom.NewGrid(geom.NewRect(0, 0, 200, 200), 32, 32)
	p := NewPotential(nl, pl, g, 0.8)
	rng := rand.New(rand.NewSource(1))
	cx := make([]float64, n)
	cy := make([]float64, n)
	for i := range cx {
		cx[i] = rng.Float64() * 200
		cy[i] = rng.Float64() * 200
	}
	gx := make([]float64, n)
	gy := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Eval(cx, cy, gx, gy)
	}
}

func benchName(i int) string {
	return "b" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
}

// TestPotentialParallelMatchesSerial asserts the row-tiled parallel
// evaluation is bit-identical to the serial one at several worker counts,
// with and without gradients.
func TestPotentialParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nl := netlist.New("par")
	const n = 300
	for i := 0; i < n; i++ {
		nl.MustAddCell(cellName(i)+"p", "STD", 2+rng.Float64()*18, 4, i%11 == 0)
	}
	pl := netlist.NewPlacement(nl)
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 16, 16)
	cx := make([]float64, n)
	cy := make([]float64, n)
	for i := range cx {
		cx[i] = rng.Float64() * 100
		cy[i] = rng.Float64() * 100
	}

	serial := NewPotential(nl, pl, g, 0.5)
	gxS := make([]float64, n)
	gyS := make([]float64, n)
	fS := serial.Eval(cx, cy, gxS, gyS)

	for _, workers := range []int{2, 3, 8} {
		p := NewPotential(nl, pl, g, 0.5)
		p.SetParallel(par.New(workers), context.Background())
		gx := make([]float64, n)
		gy := make([]float64, n)
		if f := p.Eval(cx, cy, gx, gy); f != fS {
			t.Fatalf("workers=%d: N = %v, serial %v", workers, f, fS)
		}
		for i := range gx {
			if gx[i] != gxS[i] || gy[i] != gyS[i] {
				t.Fatalf("workers=%d: grad[%d] = (%v,%v), serial (%v,%v)",
					workers, i, gx[i], gy[i], gxS[i], gyS[i])
			}
		}
		if f := p.Eval(cx, cy, nil, nil); f != fS {
			t.Fatalf("workers=%d no-grad: N = %v, serial %v", workers, f, fS)
		}
	}
}

// TestPotentialCancelledContextPoisons asserts an expired context turns the
// objective into NaN rather than a partial sum.
func TestPotentialCancelledContextPoisons(t *testing.T) {
	nl, pl, g := gridDesign(20)
	p := NewPotential(nl, pl, g, 0.5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.SetParallel(par.New(4), ctx)
	cx := make([]float64, 20)
	cy := make([]float64, 20)
	if f := p.Eval(cx, cy, nil, nil); !math.IsNaN(f) {
		t.Fatalf("cancelled Eval returned %v, want NaN", f)
	}
}
