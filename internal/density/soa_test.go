package density

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
)

// soaProblem builds a random netlist/placement over a square core for the
// SoA kernel tests.
func soaProblem(seed int64, nCells int) (*netlist.Netlist, *netlist.Placement, geom.Grid) {
	rng := rand.New(rand.NewSource(seed))
	nl := netlist.New(fmt.Sprintf("soa%d", seed))
	for i := 0; i < nCells; i++ {
		fixed := i%23 == 0
		nl.MustAddCell(fmt.Sprintf("c%d", i), "std", 4+float64(rng.Intn(5))*2, 8, fixed)
	}
	pl := netlist.NewPlacement(nl)
	for i := range nl.Cells {
		pl.X[i] = rng.Float64() * 180
		pl.Y[i] = rng.Float64() * 180
	}
	return nl, pl, geom.NewGrid(geom.NewRect(0, 0, 200, 200), 24, 24)
}

// TestAxisTablesMatchBell checks that the filled 1-D tables agree with the
// reference bell() evaluation at every bin of the raw footprint, that the
// lazily-filled derivative tables agree on the clamped range a gradient
// pass reads, and that the separable normalization matches the definition
// area/(Σpx·Σpy).
func TestAxisTablesMatchBell(t *testing.T) {
	nl, pl, grid := soaProblem(3, 60)
	p := NewPotential(nl, pl, grid, 0.9)
	cx := make([]float64, len(nl.Cells))
	cy := make([]float64, len(nl.Cells))
	for i := range nl.Cells {
		cx[i] = pl.X[i] + nl.Cells[i].W/2
		cy[i] = pl.Y[i] + nl.Cells[i].H/2
	}
	p.Value(cx, cy)
	// Gradient triggers the lazy fillDeriv pass that writes the dp tables.
	p.Gradient(make([]float64, len(nl.Cells)), make([]float64, len(nl.Cells)))
	for mi, ci := range p.movable {
		w := effSize(nl.Cells[ci].W, grid.BinW)
		i0 := p.tabX.i0[mi]
		n := int(p.tabX.off[mi+1] - p.tabX.off[mi])
		sum := 0.0
		for k := 0; k < n; k++ {
			bi := i0 + k
			bx := grid.Region.Lo.X + (float64(bi)+0.5)*grid.BinW
			wantP, wantDP := bell(cx[ci]-bx, w, grid.BinW)
			gotP := p.tabX.p[int(p.tabX.off[mi])+k]
			// Slots beyond the raw span stay at their previous fill; only
			// in-span slots carry this evaluation's values.
			r2 := w/2 + 2*grid.BinW
			f1 := math.Ceil((cx[ci] + r2 - grid.Region.Lo.X) / grid.BinW)
			if float64(bi) >= f1 {
				continue
			}
			if gotP != wantP {
				t.Fatalf("cell %d slot %d: table %v != bell %v", ci, k, gotP, wantP)
			}
			// dp slots exist only on the clamped in-grid range.
			if bi >= p.tabX.iLo[mi] && bi < p.tabX.iHi[mi] {
				if gotDP := p.tabX.dp[int(p.tabX.off[mi])+k]; gotDP != wantDP {
					t.Fatalf("cell %d slot %d: deriv table %v != bell %v", ci, k, gotDP, wantDP)
				}
			}
			sum += wantP
		}
		if sum > 0 && p.norm[mi] == 0 {
			t.Fatalf("cell %d: nonzero x-sum but zero norm", ci)
		}
	}
}

// TestValueGradientSplitMatchesEval checks the split API against the fused
// wrapper bitwise: Value-then-Gradient must equal Eval, and a second
// Gradient from the same tables must reproduce the same components.
func TestValueGradientSplitMatchesEval(t *testing.T) {
	nl, pl, grid := soaProblem(9, 120)
	cx := make([]float64, len(nl.Cells))
	cy := make([]float64, len(nl.Cells))
	for i := range nl.Cells {
		cx[i] = pl.X[i] + nl.Cells[i].W/2
		cy[i] = pl.Y[i] + nl.Cells[i].H/2
	}
	pe := NewPotential(nl, pl, grid, 0.9)
	gxE := make([]float64, len(nl.Cells))
	gyE := make([]float64, len(nl.Cells))
	fE := pe.Eval(cx, cy, gxE, gyE)

	ps := NewPotential(nl, pl, grid, 0.9)
	fS := ps.Value(cx, cy)
	if fS != fE {
		t.Fatalf("Value %v != Eval %v", fS, fE)
	}
	gxS := make([]float64, len(nl.Cells))
	gyS := make([]float64, len(nl.Cells))
	if !ps.Gradient(gxS, gyS) {
		t.Fatal("Gradient reported cancellation without a context")
	}
	for i := range gxS {
		if gxS[i] != gxE[i] || gyS[i] != gyE[i] {
			t.Fatalf("cell %d: split grad (%v,%v) != fused (%v,%v)",
				i, gxS[i], gyS[i], gxE[i], gyE[i])
		}
	}

	// Gradient-only reuse: same tables, fresh accumulators, same bits.
	gx2 := make([]float64, len(nl.Cells))
	gy2 := make([]float64, len(nl.Cells))
	ps.Gradient(gx2, gy2)
	for i := range gx2 {
		if gx2[i] != gxS[i] || gy2[i] != gyS[i] {
			t.Fatalf("cell %d: repeated Gradient diverged", i)
		}
	}
}

// TestGradientBeforeValuePanics pins the misuse contract: the gradient pass
// reads tables and residuals that only a Value pass writes.
func TestGradientBeforeValuePanics(t *testing.T) {
	nl, pl, grid := soaProblem(5, 20)
	p := NewPotential(nl, pl, grid, 0.9)
	defer func() {
		if recover() == nil {
			t.Fatal("Gradient before Value did not panic")
		}
	}()
	p.Gradient(make([]float64, len(nl.Cells)), make([]float64, len(nl.Cells)))
}

// TestValueSerialMatchesRowTiled checks the serial splat fast path against
// the row-tiled parallel schedule bitwise at several worker counts.
func TestValueSerialMatchesRowTiled(t *testing.T) {
	nl, pl, grid := soaProblem(17, 200)
	cx := make([]float64, len(nl.Cells))
	cy := make([]float64, len(nl.Cells))
	for i := range nl.Cells {
		cx[i] = pl.X[i] + nl.Cells[i].W/2
		cy[i] = pl.Y[i] + nl.Cells[i].H/2
	}
	serial := NewPotential(nl, pl, grid, 0.9)
	fS := serial.Value(cx, cy)
	for _, workers := range []int{2, 3, 4} {
		p := NewPotential(nl, pl, grid, 0.9)
		p.SetParallel(par.New(workers), nil)
		if f := p.Value(cx, cy); f != fS {
			t.Fatalf("workers=%d: Value %v != serial %v", workers, f, fS)
		}
		for i := range p.dens {
			if p.dens[i] != serial.dens[i] {
				t.Fatalf("workers=%d: bin %d density %v != serial %v",
					workers, i, p.dens[i], serial.dens[i])
			}
		}
	}
}

// BenchmarkDensitySoA measures the table-driven potential: the fused
// value+gradient evaluation (the line-search-probe unit of work before
// value-only probes existed), value alone (a probe), and gradient-only from
// stored tables (the accepted-iterate pattern).
func BenchmarkDensitySoA(b *testing.B) {
	nl, pl, grid := soaProblem(7, 2000)
	cx := make([]float64, len(nl.Cells))
	cy := make([]float64, len(nl.Cells))
	for i := range nl.Cells {
		cx[i] = pl.X[i] + nl.Cells[i].W/2
		cy[i] = pl.Y[i] + nl.Cells[i].H/2
	}
	p := NewPotential(nl, pl, grid, 0.9)
	gx := make([]float64, len(nl.Cells))
	gy := make([]float64, len(nl.Cells))
	p.Eval(cx, cy, gx, gy)

	b.Run("value+grad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Eval(cx, cy, gx, gy)
		}
	})
	b.Run("value-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Value(cx, cy)
		}
	})
	b.Run("grad-reuse", func(b *testing.B) {
		p.Value(cx, cy)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Gradient(gx, gy)
		}
	})
}
