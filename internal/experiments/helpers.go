package experiments

import (
	"repro/internal/datapath"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/place/global"
	"repro/internal/place/legal"
)

// coreExtract runs default extraction on a benchmark.
func coreExtract(b *gen.Benchmark) *datapath.Extraction {
	return datapath.Extract(b.Netlist, datapath.DefaultOptions())
}

// legalizeFor legalizes a copy of pl group-aware and returns the resulting
// HPWL (Inf-like large value on failure so sweeps keep going).
func legalizeFor(b *gen.Benchmark, pl *netlist.Placement, groups []global.AlignGroup) float64 {
	cp := pl.Clone()
	if _, err := legal.Legalize(b.Netlist, cp, b.Core, legal.Options{Groups: groups}); err != nil {
		return -1
	}
	return cp.HPWL(b.Netlist)
}
