package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/place/global"
)

// runModel places cfg with the baseline flow under the given wirelength
// model.
func runModel(cfg gen.Config, model string, opts RunOpts) (*core.Result, error) {
	b := gen.Generate(cfg)
	g := opts.globalOpts()
	g.WLModel = model
	res, err := core.Place(b.Netlist, b.Core, b.Placement, core.Options{
		Mode:   core.Baseline,
		Global: g,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s model %s: %w", cfg.Name, model, err)
	}
	return res, nil
}

// Figure5 sweeps the datapath fraction at a roughly constant design size and
// reports the structure-aware HPWL improvement per point: the crossover
// figure — negligible benefit on random logic, growing with regularity.
func Figure5(opts RunOpts) (*Table, error) {
	t := &Table{
		ID:    "Figure 5",
		Title: "Quality vs datapath fraction (fixed ~3k-cell budget)",
		Header: []string{"target frac", "actual frac", "HPWL ratio", "rWL ratio",
			"base ovfl", "SA ovfl", "ovfl ratio"},
	}
	totalCells := 3000
	if opts.Quick {
		totalCells = 1200
	}
	// One 16-bit adder unit is ≈ 130 cells.
	const adderCells = 130
	for _, frac := range []float64{0, 0.15, 0.3, 0.5, 0.7} {
		units := int(frac*float64(totalCells)/adderCells + 0.5)
		kinds := make([]gen.UnitKind, units)
		for i := range kinds {
			kinds[i] = gen.UnitKind(i % 4)
		}
		cfg := gen.Config{
			Name:        fmt.Sprintf("frac%02.0f", frac*100),
			Seed:        500 + int64(frac*100),
			Bits:        16,
			Units:       kinds,
			RandomCells: totalCells - units*adderCells,
		}
		if cfg.RandomCells < 0 {
			cfg.RandomCells = 0
		}
		c, err := RunCase(cfg, opts)
		if err != nil {
			return nil, err
		}
		ovStr := "n/a"
		if c.BaseRep.Routed.Overflow > 0 {
			ovStr = f3(c.SARep.Routed.Overflow / c.BaseRep.Routed.Overflow)
		}
		t.AddRow(pct(frac), pct(c.Bench.DatapathFraction()),
			f3(c.SA.HPWLFinal/c.Base.HPWLFinal),
			f3(c.SARep.Routed.WirelengthDB/c.BaseRep.Routed.WirelengthDB),
			f0(c.BaseRep.Routed.Overflow), f0(c.SARep.Routed.Overflow), ovStr)
	}
	t.Notes = append(t.Notes,
		"paper-shape claim: flows tie at fraction 0 and structure-awareness wins when regularity dominates.",
		"Observed: high variance — the benefit depends on chain shape as much as on raw fraction (many short",
		"units splinter into banks; see dp05 in Table 3 for the long-chain regime where SA wins every metric).")
	return t, nil
}

// Figure6 traces global-placement convergence for both flows on one design:
// HPWL, density overflow and group alignment per outer iteration.
func Figure6(cfg gen.Config, opts RunOpts) (*Table, error) {
	t := &Table{
		ID:    "Figure 6",
		Title: fmt.Sprintf("Global placement convergence on %s (per outer iteration)", cfg.Name),
		Header: []string{"iter", "base HPWL", "base ovfl", "base align",
			"SA HPWL", "SA ovfl", "SA align"},
	}
	b := gen.Generate(cfg)

	// Shared group definition so both traces are scored identically.
	ext := coreExtract(b)
	groups := global.AlignGroupsFromExtraction(ext)

	type pt struct{ hpwl, ovfl, align float64 }
	trace := func(withGroups bool) ([]pt, error) {
		pl := b.Placement.Clone()
		g := opts.globalOpts()
		if withGroups {
			g.Groups = groups
		}
		var pts []pt
		g.Trace = func(tp global.TracePoint) {
			// Score alignment against the same groups in both flows.
			cx := make([]float64, b.Netlist.NumCells())
			cy := make([]float64, b.Netlist.NumCells())
			for i := range b.Netlist.Cells {
				cx[i] = pl.X[i] + b.Netlist.Cells[i].W/2
				cy[i] = pl.Y[i] + b.Netlist.Cells[i].H/2
			}
			pts = append(pts, pt{
				hpwl:  tp.HPWL,
				ovfl:  tp.Overflow,
				align: global.AlignmentScore(groups, b.Core.RowH(), cx, cy),
			})
		}
		if _, err := global.Place(b.Netlist, pl, b.Core, g); err != nil {
			return nil, err
		}
		return pts, nil
	}

	basePts, err := trace(false)
	if err != nil {
		return nil, err
	}
	saPts, err := trace(true)
	if err != nil {
		return nil, err
	}
	n := len(basePts)
	if len(saPts) > n {
		n = len(saPts)
	}
	get := func(pts []pt, i int) pt {
		if i < len(pts) {
			return pts[i]
		}
		if len(pts) == 0 {
			return pt{}
		}
		return pts[len(pts)-1]
	}
	for i := 0; i < n; i++ {
		bp, sp := get(basePts, i), get(saPts, i)
		t.AddRow(fmt.Sprint(i),
			f0(bp.hpwl), f3(bp.ovfl), f2(bp.align),
			f0(sp.hpwl), f3(sp.ovfl), f2(sp.align))
	}
	t.Notes = append(t.Notes,
		"paper-shape claim: both flows converge in overflow; only SA drives alignment down")
	return t, nil
}

// Figure7 is the alignment-weight ablation: α multiplier sweep on one
// design. Too little α loses structure; too much hurts wirelength.
func Figure7(cfg gen.Config, opts RunOpts) (*Table, error) {
	t := &Table{
		ID:     "Figure 7",
		Title:  fmt.Sprintf("Alignment-weight (α) sweep on %s", cfg.Name),
		Header: []string{"α multiplier", "HPWL", "global align RMS", "legal HPWL"},
	}
	b := gen.Generate(cfg)
	ext := coreExtract(b)
	groups := global.AlignGroupsFromExtraction(ext)
	for _, mult := range []float64{0.01, 0.1, 1, 10, 100} {
		pl := b.Placement.Clone()
		g := opts.globalOpts()
		g.Groups = groups
		// The sweep studies the soft-penalty formulation; the default hard
		// mode has no α (alignment is exact by variable substitution).
		g.AlignMode = global.AlignSoft
		g.AlignWeight = mult
		res, err := global.Place(b.Netlist, pl, b.Core, g)
		if err != nil {
			return nil, err
		}
		// Legalize to expose the real cost of a sloppy (or over-tight)
		// global alignment.
		legalHPWL := legalizeFor(b, pl, groups)
		t.AddRow(fmt.Sprintf("%g", mult), f0(res.HPWL), f2(res.AlignRMS), f0(legalHPWL))
	}
	t.Notes = append(t.Notes,
		"paper-shape claim: interior optimum — small α leaves arrays scattered (legalization pays), huge α distorts wirelength")
	return t, nil
}
