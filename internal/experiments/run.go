package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/place/global"
)

// RunOpts scales the computational budget of the experiment runners.
type RunOpts struct {
	// Quick shrinks iteration budgets for smoke runs and benchmarks; the
	// full budget reproduces the reported numbers.
	Quick bool
}

func (o RunOpts) globalOpts() global.Options {
	if o.Quick {
		return global.Options{MaxOuterIters: 12, InnerIters: 25}
	}
	return global.Options{MaxOuterIters: 24, InnerIters: 50}
}

// Case is one benchmark placed by both flows.
type Case struct {
	Cfg      gen.Config
	Bench    *gen.Benchmark
	Base     *core.Result
	SA       *core.Result
	BaseRep  metrics.Report
	SARep    metrics.Report
	BaseTime time.Duration
	SATime   time.Duration
}

// RunCase generates cfg and places it with the baseline and the
// structure-aware flow under identical budgets.
func RunCase(cfg gen.Config, opts RunOpts) (*Case, error) {
	b := gen.Generate(cfg)
	c := &Case{Cfg: cfg, Bench: b}

	sw := obs.StartStopwatch()
	base, err := core.Place(b.Netlist, b.Core, b.Placement, core.Options{
		Mode:   core.Baseline,
		Global: opts.globalOpts(),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s baseline: %w", cfg.Name, err)
	}
	c.BaseTime = sw.Elapsed()
	c.Base = base
	c.BaseRep = metrics.Evaluate(b.Netlist, base.Placement, b.Core, metrics.Options{})

	sw = obs.StartStopwatch()
	sa, err := core.Place(b.Netlist, b.Core, b.Placement, core.Options{
		Mode:   core.StructureAware,
		Global: opts.globalOpts(),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s structure-aware: %w", cfg.Name, err)
	}
	c.SATime = sw.Elapsed()
	c.SA = sa
	c.SARep = metrics.Evaluate(b.Netlist, sa.Placement, b.Core, metrics.Options{})
	return c, nil
}

// RunSuite runs RunCase over a whole config list.
func RunSuite(cfgs []gen.Config, opts RunOpts) ([]*Case, error) {
	cases := make([]*Case, 0, len(cfgs))
	for _, cfg := range cfgs {
		c, err := RunCase(cfg, opts)
		if err != nil {
			return nil, err
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// SuiteConfigs returns the evaluation suite, truncated in quick mode.
func SuiteConfigs(opts RunOpts) []gen.Config {
	cfgs := gen.Suite()
	if opts.Quick {
		return cfgs[:4]
	}
	return cfgs
}
