package experiments

import (
	"fmt"
	"math"

	"repro/internal/gen"
)

// Table6 measures seed robustness: the same design shape placed under
// several generator seeds, reporting the spread of the SA/base ratios. The
// per-design tables are single-seed; this is the error bar that tells a
// reader which differences are signal.
func Table6(base gen.Config, seeds []int64, opts RunOpts) (*Table, error) {
	t := &Table{
		ID:     "Table 6",
		Title:  fmt.Sprintf("Seed robustness on the %s shape (SA/base ratios per seed)", base.Name),
		Header: []string{"seed", "HPWL ratio", "rWL ratio", "ovfl ratio"},
	}
	var hpwl, rwl, ovfl []float64
	for _, seed := range seeds {
		cfg := base
		cfg.Seed = seed
		cfg.Name = fmt.Sprintf("%s_s%d", base.Name, seed)
		c, err := RunCase(cfg, opts)
		if err != nil {
			return nil, err
		}
		h := c.SA.HPWLFinal / c.Base.HPWLFinal
		r := c.SARep.Routed.WirelengthDB / c.BaseRep.Routed.WirelengthDB
		hpwl = append(hpwl, h)
		rwl = append(rwl, r)
		ovStr := "n/a"
		if c.BaseRep.Routed.Overflow > 0 {
			o := c.SARep.Routed.Overflow / c.BaseRep.Routed.Overflow
			ovfl = append(ovfl, o)
			ovStr = f3(o)
		}
		t.AddRow(fmt.Sprint(seed), f3(h), f3(r), ovStr)
	}
	t.AddRow("mean±sd",
		meanSD(hpwl), meanSD(rwl), meanSD(ovfl))
	t.Notes = append(t.Notes,
		"single-seed differences smaller than ~2 sd in this table are noise")
	return t, nil
}

func meanSD(xs []float64) string {
	if len(xs) == 0 {
		return "n/a"
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	sd := 0.0
	if len(xs) > 1 {
		sd = math.Sqrt(v / float64(len(xs)-1))
	}
	return fmt.Sprintf("%.3f±%.3f", m, sd)
}
