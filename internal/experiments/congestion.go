package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/place/congestion"
)

// Table10 measures the congestion feedback loop (DESIGN.md §15): each design
// placed by the structure-aware flow with the loop off and on, comparing
// routed overflow and final HPWL. The loop should buy routed overflow at a
// bounded (≤2%) HPWL cost — often a Pareto improvement.
func Table10(cfgs []gen.Config, opts RunOpts) (*Table, error) {
	t := &Table{
		ID:    "Table 10",
		Title: "Congestion feedback: routed overflow and HPWL, loop off vs on",
		Header: []string{"design", "ovfl off", "ovfl on", "ovfl ratio",
			"HPWL off", "HPWL on", "HPWL ratio", "snapshots", "inflated"},
	}
	place := func(b *gen.Benchmark, enable bool) (*core.Result, metrics.Report, error) {
		gOpt := opts.globalOpts()
		gOpt.Congestion = congestion.Options{Enable: enable}
		res, err := core.Place(b.Netlist, b.Core, b.Placement, core.Options{
			Mode:   core.StructureAware,
			Global: gOpt,
		})
		if err != nil {
			return nil, metrics.Report{}, err
		}
		return res, metrics.Evaluate(b.Netlist, res.Placement, b.Core, metrics.Options{}), nil
	}
	for _, cfg := range cfgs {
		b := gen.Generate(cfg)
		off, offRep, err := place(b, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s congestion off: %w", cfg.Name, err)
		}
		on, onRep, err := place(b, true)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s congestion on: %w", cfg.Name, err)
		}
		ovRatio := "n/a"
		if offRep.Routed.Overflow > 0 {
			ovRatio = f3(onRep.Routed.Overflow / offRep.Routed.Overflow)
		}
		snapshots, inflated := 0, 0
		if st := on.GlobalResult.Congestion; st != nil {
			snapshots, inflated = st.Snapshots, st.InflatedCells
		}
		t.AddRow(cfg.Name,
			f0(offRep.Routed.Overflow), f0(onRep.Routed.Overflow), ovRatio,
			f0(off.HPWLFinal), f0(on.HPWLFinal), f3(on.HPWLFinal/off.HPWLFinal),
			fmt.Sprint(snapshots), fmt.Sprint(inflated))
	}
	t.Notes = append(t.Notes,
		"The maturity gate only opens once density overflow converges, so small/quick budgets may take",
		"few or zero snapshots; EXPERIMENTS.md Table 10 records the full-budget 12.9k-cell numbers.")
	return t, nil
}
