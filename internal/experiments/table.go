// Package experiments regenerates every table and figure of the evaluation.
// Each runner returns a Table that cmd/experiments prints and the root
// benchmark harness re-derives; EXPERIMENTS.md records the measured values
// against the paper-shape claims.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result in printable form.
type Table struct {
	ID     string // e.g. "Table 2", "Figure 5"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
