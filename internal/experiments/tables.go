package experiments

import (
	"fmt"
	"math"

	"repro/internal/datapath"
	"repro/internal/gen"
)

// Table1 reports benchmark statistics — the suite description table.
func Table1(cfgs []gen.Config) *Table {
	t := &Table{
		ID:     "Table 1",
		Title:  "Benchmark statistics (synthetic datapath-intensive suite)",
		Header: []string{"design", "cells", "nets", "pins", "pads", "dp-cells", "dp-frac", "bits"},
	}
	for _, cfg := range cfgs {
		b := gen.Generate(cfg)
		s := b.Netlist.ComputeStats()
		t.AddRow(cfg.Name,
			fmt.Sprint(s.Cells), fmt.Sprint(s.Nets), fmt.Sprint(s.Pins),
			fmt.Sprint(s.Fixed), fmt.Sprint(b.DatapathCells),
			pct(b.DatapathFraction()), fmt.Sprint(cfg.Bits))
	}
	return t
}

// Table2 is the headline comparison: HPWL and runtime, baseline vs
// structure-aware, with per-design ratios and the suite geomean.
func Table2(cases []*Case) *Table {
	t := &Table{
		ID:    "Table 2",
		Title: "HPWL and runtime: baseline vs structure-aware (ratio = SA/base)",
		Header: []string{"design", "base HPWL", "SA HPWL", "HPWL ratio",
			"base time", "SA time", "time ratio", "grouped"},
	}
	geoWL, geoT := 1.0, 1.0
	for _, c := range cases {
		rw := c.SA.HPWLFinal / c.Base.HPWLFinal
		rt := c.SATime.Seconds() / c.BaseTime.Seconds()
		geoWL *= rw
		geoT *= rt
		t.AddRow(c.Cfg.Name,
			f0(c.Base.HPWLFinal), f0(c.SA.HPWLFinal), f3(rw),
			fmt.Sprintf("%.2fs", c.BaseTime.Seconds()),
			fmt.Sprintf("%.2fs", c.SATime.Seconds()), f3(rt),
			fmt.Sprint(c.SA.GroupedCells))
	}
	n := float64(len(cases))
	if n > 0 {
		t.AddRow("geomean", "", "", f3(pow(geoWL, 1/n)), "", "", f3(pow(geoT, 1/n)), "")
	}
	t.Notes = append(t.Notes,
		"HPWL alone under-rewards alignment (a compact blob beats a straight bus on bounding boxes);",
		"the routability payoff appears in Table 3. Expect ratios slightly above 1 that grow with fraction.")
	return t
}

// Table3 extends the comparison to routability: global-router results
// (routed wirelength with detours, residual overflow) plus the Steiner-tree
// wirelength. This is the table that carries the paper's claim — aligned
// buses route in parallel tracks, so the structure-aware flow's congestion
// overflow drops even where its HPWL does not.
func Table3(cases []*Case) *Table {
	t := &Table{
		ID:    "Table 3",
		Title: "Routability: baseline vs structure-aware (global router at marginal capacity)",
		Header: []string{"design", "dp-frac", "base rWL", "SA rWL", "rWL ratio",
			"base ovfl", "SA ovfl", "ovfl ratio", "StWL ratio"},
	}
	geoWL, geoOv := 1.0, 1.0
	nOv := 0
	for _, c := range cases {
		rWL := c.SARep.Routed.WirelengthDB / c.BaseRep.Routed.WirelengthDB
		geoWL *= rWL
		ovStr := "n/a"
		if c.BaseRep.Routed.Overflow > 0 {
			rOv := c.SARep.Routed.Overflow / c.BaseRep.Routed.Overflow
			geoOv *= rOv
			nOv++
			ovStr = f3(rOv)
		}
		t.AddRow(c.Cfg.Name, pct(c.Bench.DatapathFraction()),
			f0(c.BaseRep.Routed.WirelengthDB), f0(c.SARep.Routed.WirelengthDB), f3(rWL),
			f0(c.BaseRep.Routed.Overflow), f0(c.SARep.Routed.Overflow), ovStr,
			f3(c.SARep.SteinerWL/c.BaseRep.SteinerWL))
	}
	if n := float64(len(cases)); n > 0 {
		row := []string{"geomean", "", "", "", f3(pow(geoWL, 1/n)), "", "", "", ""}
		if nOv > 0 {
			row[7] = f3(pow(geoOv, 1/float64(nOv)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper-shape claim: congestion overflow drops under structure-aware placement, more at higher datapath fraction")
	return t
}

// Table4 scores extraction quality: precision/recall of the same-slice
// relation against generator ground truth, with bus names intact (named
// mode) and scrambled (pure structural mode).
func Table4(cfgs []gen.Config) *Table {
	t := &Table{
		ID:    "Table 4",
		Title: "Datapath extraction quality (pairwise same-slice precision/recall)",
		Header: []string{"design", "named P", "named R", "named F1",
			"struct P", "struct R", "struct F1", "groups"},
	}
	for _, cfg := range cfgs {
		b := gen.Generate(cfg)
		extN := datapath.Extract(b.Netlist, datapath.DefaultOptions())
		sn := datapath.Compare(b.Truth, extN.Labels())

		scrCfg := cfg
		scrCfg.Scramble = true
		bs := gen.Generate(scrCfg)
		opt := datapath.DefaultOptions()
		opt.UseNames = false
		extS := datapath.Extract(bs.Netlist, opt)
		ss := datapath.Compare(bs.Truth, extS.Labels())

		t.AddRow(cfg.Name,
			f3(sn.Precision), f3(sn.Recall), f3(sn.F1),
			f3(ss.Precision), f3(ss.Recall), f3(ss.F1),
			fmt.Sprint(len(extN.Groups)))
	}
	t.Notes = append(t.Notes,
		"paper-shape claim: near-perfect recovery with names, high precision and good recall name-free")
	return t
}

// Table5 is the wirelength-model ablation: WA vs LSE at identical budgets.
func Table5(cfgs []gen.Config, opts RunOpts) (*Table, error) {
	t := &Table{
		ID:    "Table 5",
		Title: "Wirelength-model ablation: WA vs LSE (baseline flow, equal budgets)",
		Header: []string{"design", "WA HPWL", "LSE HPWL", "WA/LSE",
			"WA evals", "LSE evals"},
	}
	geo := 1.0
	for _, cfg := range cfgs {
		wa, err := runModel(cfg, "wa", opts)
		if err != nil {
			return nil, err
		}
		lse, err := runModel(cfg, "lse", opts)
		if err != nil {
			return nil, err
		}
		r := wa.HPWLFinal / lse.HPWLFinal
		geo *= r
		t.AddRow(cfg.Name, f0(wa.HPWLFinal), f0(lse.HPWLFinal), f3(r),
			fmt.Sprint(wa.GlobalResult.FuncEvals), fmt.Sprint(lse.GlobalResult.FuncEvals))
	}
	if n := float64(len(cfgs)); n > 0 {
		t.AddRow("geomean", "", "", f3(pow(geo, 1/n)), "", "")
	}
	t.Notes = append(t.Notes,
		"paper-family claim (Hsu-Balabanov-Chang): WA matches or beats LSE at equal γ and budget")
	return t, nil
}

func pow(v, p float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Pow(v, p)
}
