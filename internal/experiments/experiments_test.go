package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
)

var quick = RunOpts{Quick: true}

func tinyConfigs() []gen.Config {
	return []gen.Config{
		{Name: "t1", Seed: 61, Bits: 8, Units: []gen.UnitKind{gen.Adder}, RandomCells: 150},
		{Name: "t2", Seed: 62, Bits: 8, Units: []gen.UnitKind{gen.MuxTree}, RandomCells: 150},
	}
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		ID:     "Table X",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Table X", "demo", "a note", "bb"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1(t *testing.T) {
	tbl := Table1(tinyConfigs())
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "t1" {
		t.Errorf("first design = %q", tbl.Rows[0][0])
	}
}

func TestRunCaseAndTables23(t *testing.T) {
	cases, err := RunSuite(tinyConfigs(), quick)
	if err != nil {
		t.Fatal(err)
	}
	t2 := Table2(cases)
	if len(t2.Rows) != 3 { // 2 designs + geomean
		t.Fatalf("table2 rows = %d", len(t2.Rows))
	}
	t3 := Table3(cases)
	if len(t3.Rows) != 3 {
		t.Fatalf("table3 rows = %d", len(t3.Rows))
	}
	// Sanity of the headline metric: both HPWLs positive and the SA flow
	// produced a legal placement.
	for _, c := range cases {
		if c.Base.HPWLFinal <= 0 || c.SA.HPWLFinal <= 0 {
			t.Errorf("%s: non-positive HPWL", c.Cfg.Name)
		}
		if !c.SA.LegalityChecked || !c.Base.LegalityChecked {
			t.Errorf("%s: missing legality check", c.Cfg.Name)
		}
	}
}

func TestTable4(t *testing.T) {
	tbl := Table4(tinyConfigs())
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Named-mode F1 on these clean designs should be high.
	if f1 := tbl.Rows[0][3]; f1 < "0.8" {
		t.Errorf("named F1 = %s", f1)
	}
}

func TestTable5(t *testing.T) {
	tbl, err := Table5(tinyConfigs()[:1], quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFigure6(t *testing.T) {
	tbl, err := Figure6(tinyConfigs()[0], quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no convergence rows")
	}
}

func TestFigure7(t *testing.T) {
	tbl, err := Figure7(tinyConfigs()[0], quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestPow(t *testing.T) {
	if pow(4, 0.5) != 2 {
		t.Error("pow broken")
	}
	if pow(-1, 0.5) != 0 {
		t.Error("pow should guard non-positive")
	}
}

func TestTable6SeedVariance(t *testing.T) {
	tbl, err := Table6(tinyConfigs()[0], []int64{61, 62}, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 { // 2 seeds + mean row
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Rows[2][1], "±") {
		t.Errorf("no mean±sd row: %v", tbl.Rows[2])
	}
}

func TestMeanSD(t *testing.T) {
	if got := meanSD(nil); got != "n/a" {
		t.Errorf("empty meanSD = %q", got)
	}
	if got := meanSD([]float64{2, 2, 2}); got != "2.000±0.000" {
		t.Errorf("constant meanSD = %q", got)
	}
}

func TestTable10Congestion(t *testing.T) {
	tbl, err := Table10(tinyConfigs()[:1], quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("table10 rows = %d", len(tbl.Rows))
	}
	if got := len(tbl.Rows[0]); got != len(tbl.Header) {
		t.Fatalf("table10 row has %d cells, header %d", got, len(tbl.Header))
	}
}
