package opt

import (
	"math"
	"testing"

	"repro/internal/faultinject"
)

// TestOnEventNaNRollback asserts that injected NaN gradients surface as
// nan-rollback events through OnEvent — the fix for rollbacks being invisible
// because Callback only sees accepted iterates.
func TestOnEventNaNRollback(t *testing.T) {
	faultinject.Enable(7, faultinject.Spec{Site: faultinject.SiteOptNaNGrad, After: 2, Count: 2})
	defer faultinject.Disable()

	c := []float64{1, 3, 0.5}
	tgt := []float64{2, -1, 4}
	x := make([]float64, 3)
	var events []Event
	res := Minimize(quadratic(c, tgt), x, Options{
		MaxIter: 500, GradTol: 1e-8,
		OnEvent: func(ev Event) { events = append(events, ev) },
	})
	if faultinject.Fired(faultinject.SiteOptNaNGrad) == 0 {
		t.Fatal("fault never injected; test proves nothing")
	}
	rollbacks := 0
	for _, ev := range events {
		if ev.Kind == EventNaNRollback {
			rollbacks++
			if ev.Step <= 0 {
				t.Errorf("nan-rollback event carries non-positive damped step: %+v", ev)
			}
		}
	}
	if rollbacks == 0 {
		t.Fatalf("no nan-rollback events seen (events=%v, res=%+v)", events, res)
	}
	if rollbacks != res.Recoveries {
		t.Errorf("rollback events = %d, Result.Recoveries = %d; they must agree",
			rollbacks, res.Recoveries)
	}
}

// TestOnEventLineSearchReset asserts a stalled line search reports
// linesearch-reset before recovering.
func TestOnEventLineSearchReset(t *testing.T) {
	faultinject.Enable(7, faultinject.Spec{Site: faultinject.SiteOptLineSearchStall, After: 1, Count: 2})
	defer faultinject.Disable()

	c := []float64{1, 25}
	tgt := []float64{50, -30}
	x := make([]float64, 2)
	var kinds []string
	res := Minimize(quadratic(c, tgt), x, Options{
		MaxIter: 500, GradTol: 1e-8,
		OnEvent: func(ev Event) { kinds = append(kinds, ev.Kind) },
	})
	if faultinject.Fired(faultinject.SiteOptLineSearchStall) == 0 {
		t.Fatal("fault never injected; test proves nothing")
	}
	resets := 0
	for _, k := range kinds {
		if k == EventLineSearchReset {
			resets++
		}
	}
	if resets == 0 {
		t.Fatalf("no linesearch-reset events seen (kinds=%v, res=%+v)", kinds, res)
	}
}

// TestOnEventDiverged asserts the terminal give-up is reported as a diverged
// event, so a trace distinguishes "recovered N times" from "gave up".
func TestOnEventDiverged(t *testing.T) {
	allNaN := func(x, g []float64) float64 {
		for i := range g {
			g[i] = math.NaN()
		}
		return math.NaN()
	}
	x := []float64{3, 4}
	var kinds []string
	res := Minimize(allNaN, x, Options{
		MaxIter: 50,
		OnEvent: func(ev Event) { kinds = append(kinds, ev.Kind) },
	})
	if !res.Diverged {
		t.Fatalf("always-NaN objective must report Diverged: %+v", res)
	}
	saw := false
	for _, k := range kinds {
		if k == EventDiverged {
			saw = true
		}
	}
	if !saw {
		t.Fatalf("Diverged result without a diverged event (kinds=%v)", kinds)
	}
}

// TestObserversArePassive pins the bit-identical guarantee at the solver
// level: attaching Callback and OnEvent must not change a single accepted
// iterate, even through an injected-fault recovery sequence.
func TestObserversArePassive(t *testing.T) {
	run := func(observe bool) ([]float64, Result, int) {
		// Re-arm identically per run so both see the same fault sequence.
		faultinject.Enable(7, faultinject.Spec{Site: faultinject.SiteOptNaNGrad, After: 2, Count: 2})
		defer faultinject.Disable()
		c := []float64{1, 25, 4, 0.5}
		tgt := []float64{50, -30, 7, 2}
		x := make([]float64, 4)
		o := Options{MaxIter: 500, GradTol: 1e-8}
		observed := 0
		if observe {
			o.Callback = func(iter int, f float64, gnorm float64) bool {
				observed++
				return true
			}
			o.OnEvent = func(Event) { observed++ }
		}
		res := Minimize(quadratic(c, tgt), x, o)
		return x, res, observed
	}
	xPlain, resPlain, _ := run(false)
	xObs, resObs, observed := run(true)
	if observed == 0 {
		t.Fatal("observers never fired; test proves nothing")
	}
	if resPlain.Iters != resObs.Iters || resPlain.Recoveries != resObs.Recoveries ||
		resPlain.F != resObs.F {
		t.Fatalf("observation changed the solve: plain=%+v observed=%+v", resPlain, resObs)
	}
	for i := range xPlain {
		if xPlain[i] != xObs[i] {
			t.Fatalf("x[%d]: plain %g != observed %g — observers must be passive",
				i, xPlain[i], xObs[i])
		}
	}
}
