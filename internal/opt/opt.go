// Package opt implements the unconstrained nonlinear optimizer driving
// analytical global placement: Polak–Ribière+ conjugate gradients with a
// Barzilai–Borwein initial step and Armijo backtracking line search. The
// objective is supplied as a closure so the placer can fold wirelength,
// density and alignment terms together.
package opt

import (
	"math"
)

// Func evaluates an objective at x, fills grad (same length as x) with its
// gradient, and returns the objective value.
type Func func(x, grad []float64) float64

// Options controls Minimize.
type Options struct {
	MaxIter  int     // hard iteration cap; 0 means 100
	GradTol  float64 // stop when ||g||/sqrt(n) < GradTol; 0 means 1e-4
	StepInit float64 // first trial step; 0 means 1
	// Callback, when non-nil, runs after every accepted iterate; returning
	// false stops the optimization early (used for λ-schedule hand-off).
	Callback func(iter int, f, gradNorm float64) bool
}

// Result reports the optimizer outcome.
type Result struct {
	F         float64 // final objective value
	Iters     int     // accepted iterations
	GradNorm  float64 // final RMS gradient norm
	Converged bool    // gradient tolerance reached
	FuncEvals int     // objective evaluations including line search
}

// Minimize runs PR+ nonlinear CG from x, overwriting x with the best iterate
// found.
func Minimize(f Func, x []float64, opt Options) Result {
	n := len(x)
	if n == 0 {
		return Result{Converged: true}
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100
	}
	if opt.GradTol <= 0 {
		opt.GradTol = 1e-4
	}
	if opt.StepInit <= 0 {
		opt.StepInit = 1
	}

	g := make([]float64, n)     // current gradient
	gPrev := make([]float64, n) // previous gradient
	d := make([]float64, n)     // search direction
	xTrial := make([]float64, n)
	gTrial := make([]float64, n)

	res := Result{}
	fx := f(x, g)
	res.FuncEvals++
	for i := range d {
		d[i] = -g[i]
	}
	gg := dot(g, g)
	step := opt.StepInit

	sqrtN := math.Sqrt(float64(n))
	for it := 0; it < opt.MaxIter; it++ {
		gnorm := math.Sqrt(gg) / sqrtN
		res.GradNorm = gnorm
		if gnorm < opt.GradTol {
			res.Converged = true
			break
		}

		// Armijo backtracking along d from the adaptive initial step.
		dg := dot(d, g)
		if dg >= 0 {
			// Not a descent direction (CG drift): restart with steepest descent.
			for i := range d {
				d[i] = -g[i]
			}
			dg = -gg
		}
		const c1 = 1e-4
		alpha := step
		var fNew float64
		accepted := false
		for ls := 0; ls < 30; ls++ {
			for i := range xTrial {
				xTrial[i] = x[i] + alpha*d[i]
			}
			fNew = f(xTrial, gTrial)
			res.FuncEvals++
			if fNew <= fx+c1*alpha*dg && !math.IsNaN(fNew) {
				accepted = true
				break
			}
			alpha *= 0.5
		}
		if !accepted {
			// Line search failed: the gradient is either tiny or the model is
			// pathological at this scale. Stop with the current iterate.
			break
		}

		copy(gPrev, g)
		copy(g, gTrial)
		copy(x, xTrial)
		fx = fNew
		res.Iters++

		ggNew := dot(g, g)
		// Polak–Ribière+ with automatic restart.
		gy := ggNew - dot(g, gPrev)
		beta := gy / gg
		if beta < 0 || it%(n+1) == n {
			beta = 0
		}
		for i := range d {
			d[i] = -g[i] + beta*d[i]
		}
		gg = ggNew

		// Barzilai–Borwein-style initial step for the next iteration:
		// grow on easy acceptance, inherit the backtracked scale otherwise.
		if alpha == step {
			step = alpha * 2
		} else {
			step = alpha * 1.25
		}

		if opt.Callback != nil && !opt.Callback(res.Iters, fx, math.Sqrt(gg)/sqrtN) {
			break
		}
	}
	res.F = fx
	res.GradNorm = math.Sqrt(gg) / sqrtN
	return res
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
