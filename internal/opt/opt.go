// Package opt implements the unconstrained nonlinear optimizer driving
// analytical global placement: Polak–Ribière+ conjugate gradients with a
// Barzilai–Borwein initial step and Armijo backtracking line search. The
// objective is supplied as a closure so the placer can fold wirelength,
// density and alignment terms together.
//
// The solver is resilient: it polls an optional context cooperatively (both
// per iteration and per line-search trial) and runs a numerical-health guard
// that detects NaN/Inf objectives or gradients and pathological line-search
// stalls, recovering by rolling back to the best iterate, damping the step
// and restarting with steepest descent. When no fault occurs the iterate
// sequence is bit-identical to the unguarded solver.
package opt

import (
	"context"
	"math"

	"repro/internal/faultinject"
	"repro/internal/pipeline"
)

// Func evaluates an objective at x, fills grad (same length as x) with its
// gradient, and returns the objective value.
type Func func(x, grad []float64) float64

// Options controls Minimize.
type Options struct {
	MaxIter  int     // hard iteration cap; 0 means 100
	GradTol  float64 // stop when ||g||/sqrt(n) < GradTol; 0 means 1e-4
	StepInit float64 // first trial step; 0 means 1
	// Callback, when non-nil, runs after every accepted iterate; returning
	// false stops the optimization early (used for λ-schedule hand-off).
	Callback func(iter int, f, gradNorm float64) bool
	// Ctx, when non-nil, is polled cooperatively at every iteration and
	// every line-search trial; on expiry Minimize stops at the best iterate
	// found so far and sets Result.Stopped.
	Ctx context.Context
	// MaxRecoveries bounds consecutive numerical-health recoveries
	// (NaN/Inf rollback, pathological line-search reset) before Minimize
	// gives up and reports Diverged (default 3).
	MaxRecoveries int
	// OnEvent, when non-nil, observes solver health events — rollbacks,
	// line-search resets, CG restarts, divergence. Callback sees only
	// accepted iterates, so without this hook a diverged-then-recovered
	// solve shows up as nothing but a gap in iteration numbers.
	OnEvent func(Event)
	// ValueOnlyProbes makes the Armijo line search call f with a nil
	// gradient slice for trial points, re-evaluating only the accepted
	// iterate with its gradient. The Armijo test reads just the objective, so
	// the iterate sequence is bit-identical either way for any deterministic
	// f; the option exists because objectives with an incremental evaluator
	// (the placement engine) answer value-only probes far cheaper than fused
	// value+gradient ones. FuncEvals counts the extra gradient evaluation.
	ValueOnlyProbes bool
}

// Event kinds reported through Options.OnEvent.
const (
	// EventNaNRollback: a non-finite objective or gradient forced a
	// rollback to the best iterate with step damping.
	EventNaNRollback = "nan-rollback"
	// EventLineSearchReset: the Armijo search hit non-finite trial values
	// (or an injected stall) and was reset from the best iterate.
	EventLineSearchReset = "linesearch-reset"
	// EventCGRestart: the conjugate direction stopped being a descent
	// direction and the search restarted with steepest descent.
	EventCGRestart = "cg-restart"
	// EventDiverged: the health guard exhausted MaxRecoveries and gave up.
	EventDiverged = "diverged"
)

// Event describes one solver health event.
type Event struct {
	Kind     string
	Iter     int     // accepted iterations completed when the event fired
	F        float64 // objective at the event (may be non-finite)
	GradNorm float64 // RMS gradient norm at the event (may be non-finite)
	Step     float64 // step scale after any damping
}

// Result reports the optimizer outcome.
type Result struct {
	F          float64 // final objective value
	Iters      int     // accepted iterations
	GradNorm   float64 // final RMS gradient norm
	Converged  bool    // gradient tolerance reached
	FuncEvals  int     // objective evaluations including line search
	Stopped    bool    // context expired before convergence or MaxIter
	Diverged   bool    // health guard exhausted MaxRecoveries
	Recoveries int     // rollback/damping events performed by the guard
}

// Minimize runs PR+ nonlinear CG from x, overwriting x with the best iterate
// found.
func Minimize(f Func, x []float64, opt Options) Result {
	n := len(x)
	if n == 0 {
		return Result{Converged: true}
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100
	}
	if opt.GradTol <= 0 {
		opt.GradTol = 1e-4
	}
	if opt.StepInit <= 0 {
		opt.StepInit = 1
	}
	if opt.MaxRecoveries <= 0 {
		opt.MaxRecoveries = 3
	}

	g := make([]float64, n)     // current gradient
	gPrev := make([]float64, n) // previous gradient
	d := make([]float64, n)     // search direction
	xTrial := make([]float64, n)
	gTrial := make([]float64, n)

	// Best finite iterate seen, for rollback and for the returned x.
	bestX := make([]float64, n)
	bestF := math.Inf(1)

	res := Result{}
	fx := f(x, g)
	res.FuncEvals++
	if faultinject.Hit(faultinject.SiteOptNaNGrad) {
		g[0] = math.NaN()
	}
	for i := range d {
		d[i] = -g[i]
	}
	gg := dot(g, g)
	step := opt.StepInit
	if isFinite(fx) && isFinite(gg) {
		bestF = fx
		copy(bestX, x)
	}

	consecutive := 0 // health recoveries since the last accepted step
	sqrtN := math.Sqrt(float64(n))
	for it := 0; it < opt.MaxIter; it++ {
		if pipeline.Expired(opt.Ctx) {
			res.Stopped = true
			break
		}

		// Numerical health: a non-finite objective or gradient would poison
		// the search direction. Roll back to the best iterate (re-evaluating
		// its gradient), damp the step and restart with steepest descent.
		if !isFinite(fx) || !isFinite(gg) {
			if !isFinite(bestF) || consecutive >= opt.MaxRecoveries {
				res.Diverged = true
				if opt.OnEvent != nil {
					opt.OnEvent(Event{Kind: EventDiverged, Iter: res.Iters,
						F: fx, GradNorm: math.Sqrt(gg) / sqrtN, Step: step})
				}
				break
			}
			consecutive++
			res.Recoveries++
			copy(x, bestX)
			fx = f(x, g)
			res.FuncEvals++
			if faultinject.Hit(faultinject.SiteOptNaNGrad) {
				g[0] = math.NaN()
			}
			gg = dot(g, g)
			for i := range d {
				d[i] = -g[i]
			}
			step = math.Max(step*0.1, 1e-12)
			if opt.OnEvent != nil {
				opt.OnEvent(Event{Kind: EventNaNRollback, Iter: res.Iters,
					F: fx, GradNorm: math.Sqrt(gg) / sqrtN, Step: step})
			}
			continue
		}

		gnorm := math.Sqrt(gg) / sqrtN
		res.GradNorm = gnorm
		if gnorm < opt.GradTol {
			res.Converged = true
			break
		}

		// Armijo backtracking along d from the adaptive initial step.
		dg := dot(d, g)
		if dg >= 0 {
			// Not a descent direction (CG drift): restart with steepest descent.
			for i := range d {
				d[i] = -g[i]
			}
			dg = -gg
			if opt.OnEvent != nil {
				opt.OnEvent(Event{Kind: EventCGRestart, Iter: res.Iters,
					F: fx, GradNorm: gnorm, Step: step})
			}
		}
		const c1 = 1e-4
		alpha := step
		var fNew float64
		accepted := false
		pathological := false // saw a NaN/Inf trial objective
		stalled := faultinject.Hit(faultinject.SiteOptLineSearchStall)
		for ls := 0; ls < 30; ls++ {
			if pipeline.Expired(opt.Ctx) {
				res.Stopped = true
				break
			}
			for i := range xTrial {
				xTrial[i] = x[i] + alpha*d[i]
			}
			if opt.ValueOnlyProbes {
				fNew = f(xTrial, nil)
			} else {
				fNew = f(xTrial, gTrial)
			}
			res.FuncEvals++
			// Reject non-finite trial objectives outright: an Inf (or a NaN
			// compared against a NaN fx) must never be accepted, even when it
			// formally satisfies the Armijo comparison.
			if !math.IsNaN(fNew) && !math.IsInf(fNew, 0) &&
				fNew <= fx+c1*alpha*dg && !stalled {
				accepted = true
				break
			}
			if math.IsNaN(fNew) || math.IsInf(fNew, 0) {
				pathological = true
			}
			alpha *= 0.5
		}
		if res.Stopped {
			break
		}
		if !accepted {
			if pathological || stalled {
				// The model is returning non-finite values at this scale (or
				// a stall was injected): recover instead of silently stopping
				// at a possibly poor iterate.
				if consecutive >= opt.MaxRecoveries {
					res.Diverged = pathological
					if opt.OnEvent != nil && pathological {
						opt.OnEvent(Event{Kind: EventDiverged, Iter: res.Iters,
							F: fx, GradNorm: math.Sqrt(gg) / sqrtN, Step: step})
					}
					break
				}
				consecutive++
				res.Recoveries++
				if bestF < fx {
					copy(x, bestX)
					fx = f(x, g)
					res.FuncEvals++
					gg = dot(g, g)
				}
				for i := range d {
					d[i] = -g[i]
				}
				step = math.Max(step*0.1, 1e-12)
				if opt.OnEvent != nil {
					opt.OnEvent(Event{Kind: EventLineSearchReset, Iter: res.Iters,
						F: fx, GradNorm: math.Sqrt(gg) / sqrtN, Step: step})
				}
				continue
			}
			// Line search failed on a finite landscape: the gradient is either
			// tiny or the model is at convergence scale. Stop with the current
			// iterate, as the unguarded solver did.
			break
		}
		consecutive = 0

		if opt.ValueOnlyProbes {
			// The accepted trial was probed without its gradient; evaluate it
			// now. A deterministic f returns the identical objective, so fNew
			// stands and only gTrial is consumed.
			f(xTrial, gTrial)
			res.FuncEvals++
		}
		copy(gPrev, g)
		copy(g, gTrial)
		copy(x, xTrial)
		fx = fNew
		res.Iters++
		if isFinite(fx) && fx <= bestF {
			bestF = fx
			copy(bestX, x)
		}
		if faultinject.Hit(faultinject.SiteOptNaNGrad) {
			g[0] = math.NaN()
		}

		ggNew := dot(g, g)
		// Polak–Ribière+ with automatic restart.
		gy := ggNew - dot(g, gPrev)
		beta := gy / gg
		if beta < 0 || it%(n+1) == n {
			beta = 0
		}
		for i := range d {
			d[i] = -g[i] + beta*d[i]
		}
		gg = ggNew

		// Barzilai–Borwein-style initial step for the next iteration:
		// grow on easy acceptance, inherit the backtracked scale otherwise.
		// Exact equality is intended: alpha is initialized to step and only
		// changes when backtracking multiplies it, so == detects "the first
		// trial step was accepted", not numerical coincidence.
		//placelint:ignore floateq alpha is a copy of step unless backtracking rescaled it; == detects acceptance exactly
		if alpha == step {
			step = alpha * 2
		} else {
			step = alpha * 1.25
		}

		if opt.Callback != nil && !opt.Callback(res.Iters, fx, math.Sqrt(gg)/sqrtN) {
			break
		}
	}
	// On an abnormal stop, hand back the best iterate rather than whatever
	// the failure left in x.
	if (res.Stopped || res.Diverged) && isFinite(bestF) && (!isFinite(fx) || bestF < fx) {
		copy(x, bestX)
		fx = bestF
	}
	res.F = fx
	res.GradNorm = math.Sqrt(gg) / sqrtN
	return res
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
