package opt

import (
	"math"
	"testing"
)

// rosenbrockN is a deterministic multi-dimensional test objective whose
// gradient fill is skipped when grad is nil, mirroring the placement
// engine's value-only probe contract.
func rosenbrockN(x, grad []float64) float64 {
	f := 0.0
	for i := 0; i+1 < len(x); i++ {
		a := 1 - x[i]
		b := x[i+1] - x[i]*x[i]
		f += a*a + 100*b*b
	}
	if grad != nil {
		for i := range grad {
			grad[i] = 0
		}
		for i := 0; i+1 < len(x); i++ {
			a := 1 - x[i]
			b := x[i+1] - x[i]*x[i]
			grad[i] += -2*a - 400*b*x[i]
			grad[i+1] += 200 * b
		}
	}
	return f
}

// TestValueOnlyProbesBitIdentical checks the headline claim of the option:
// the accepted-iterate sequence, final point and objective are bit-identical
// with probes evaluating the gradient or not — only the evaluation count
// changes (one extra gradient evaluation per accepted step, many skipped
// gradient fills per rejected trial).
func TestValueOnlyProbesBitIdentical(t *testing.T) {
	run := func(valueOnly bool) ([]float64, Result, []float64) {
		x := []float64{-1.2, 1, 0.5, -0.7}
		var iterF []float64
		res := Minimize(rosenbrockN, x, Options{
			MaxIter:         60,
			GradTol:         1e-9,
			ValueOnlyProbes: valueOnly,
			Callback: func(iter int, f, gnorm float64) bool {
				iterF = append(iterF, f)
				return true
			},
		})
		return x, res, iterF
	}
	xF, rF, fF := run(false)
	xV, rV, fV := run(true)
	if rF.F != rV.F || rF.Iters != rV.Iters || rF.Converged != rV.Converged {
		t.Fatalf("results diverge: fused %+v vs value-only %+v", rF, rV)
	}
	for i := range xF {
		if xF[i] != xV[i] {
			t.Fatalf("x[%d] diverges: fused %v vs value-only %v", i, xF[i], xV[i])
		}
	}
	if len(fF) != len(fV) {
		t.Fatalf("iterate counts diverge: %d vs %d", len(fF), len(fV))
	}
	for i := range fF {
		if fF[i] != fV[i] {
			t.Fatalf("objective at iterate %d diverges: %v vs %v", i, fF[i], fV[i])
		}
	}
}

// TestValueOnlyProbesSkipsGradients verifies the option actually skips
// gradient fills on rejected trials and re-evaluates accepted iterates.
func TestValueOnlyProbesSkipsGradients(t *testing.T) {
	var nilProbes, gradEvals int
	f := func(x, grad []float64) float64 {
		if grad == nil {
			nilProbes++
		} else {
			gradEvals++
		}
		return rosenbrockN(x, grad)
	}
	x := []float64{-1.2, 1}
	res := Minimize(f, x, Options{MaxIter: 30, GradTol: 1e-9, ValueOnlyProbes: true})
	if nilProbes == 0 {
		t.Fatal("no value-only probes happened")
	}
	if gradEvals < res.Iters {
		t.Fatalf("only %d gradient evaluations for %d accepted iterates", gradEvals, res.Iters)
	}
	if got := nilProbes + gradEvals; got != res.FuncEvals {
		t.Fatalf("FuncEvals %d != observed evaluations %d", res.FuncEvals, got)
	}
	if math.IsNaN(res.F) {
		t.Fatal("solve produced NaN")
	}
}
