package opt

import (
	"context"
	"math"
	"testing"

	"repro/internal/faultinject"
)

// cliffQuadratic is (x-1)² inside |x| ≤ 10 and -Inf outside: a model whose
// smooth region is surrounded by a numerically bottomless cliff. The old
// line search accepted the -Inf trial (it satisfies the Armijo comparison);
// the guarded one must backtrack into the finite region and converge.
func cliffQuadratic(x, g []float64) float64 {
	v := x[0]
	if math.Abs(v) > 10 {
		g[0] = 0
		return math.Inf(-1)
	}
	g[0] = 2 * (v - 1)
	return (v - 1) * (v - 1)
}

func TestLineSearchRejectsInf(t *testing.T) {
	x := []float64{0}
	res := Minimize(cliffQuadratic, x, Options{MaxIter: 200, GradTol: 1e-8, StepInit: 50})
	if math.IsInf(res.F, 0) || math.IsNaN(res.F) {
		t.Fatalf("accepted a non-finite objective: %+v", res)
	}
	if math.Abs(x[0]-1) > 1e-3 {
		t.Fatalf("x = %g, want 1 (res=%+v)", x[0], res)
	}
}

func TestNaNObjectiveAtStartDiverges(t *testing.T) {
	allNaN := func(x, g []float64) float64 {
		for i := range g {
			g[i] = math.NaN()
		}
		return math.NaN()
	}
	x := []float64{3, 4}
	res := Minimize(allNaN, x, Options{MaxIter: 50})
	if !res.Diverged {
		t.Fatalf("always-NaN objective must report Diverged: %+v", res)
	}
}

func TestNaNGradientRecovery(t *testing.T) {
	faultinject.Enable(7, faultinject.Spec{Site: faultinject.SiteOptNaNGrad, After: 2, Count: 2})
	defer faultinject.Disable()

	c := []float64{1, 3, 0.5}
	tgt := []float64{2, -1, 4}
	x := make([]float64, 3)
	res := Minimize(quadratic(c, tgt), x, Options{MaxIter: 500, GradTol: 1e-8})
	if faultinject.Fired(faultinject.SiteOptNaNGrad) == 0 {
		t.Fatal("fault never injected; test proves nothing")
	}
	if res.Recoveries == 0 {
		t.Fatalf("no recovery recorded: %+v", res)
	}
	if res.Diverged {
		t.Fatalf("recoverable fault reported as divergence: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-tgt[i]) > 1e-3 {
			t.Fatalf("x[%d] = %g, want %g (res=%+v)", i, x[i], tgt[i], res)
		}
	}
}

func TestStalledLineSearchRecovery(t *testing.T) {
	faultinject.Enable(7, faultinject.Spec{Site: faultinject.SiteOptLineSearchStall, After: 1, Count: 2})
	defer faultinject.Disable()

	c := []float64{1, 25}
	tgt := []float64{50, -30}
	x := make([]float64, 2)
	res := Minimize(quadratic(c, tgt), x, Options{MaxIter: 500, GradTol: 1e-8})
	if faultinject.Fired(faultinject.SiteOptLineSearchStall) == 0 {
		t.Fatal("fault never injected; test proves nothing")
	}
	if res.Recoveries == 0 {
		t.Fatalf("no recovery recorded: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-tgt[i]) > 1e-3 {
			t.Fatalf("x[%d] = %g, want %g (res=%+v)", i, x[i], tgt[i], res)
		}
	}
}

func TestCancelledContextStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := []float64{1, 1}
	tgt := []float64{100, 100}
	x := make([]float64, 2)
	res := Minimize(quadratic(c, tgt), x, Options{MaxIter: 500, Ctx: ctx})
	if !res.Stopped {
		t.Fatalf("cancelled context did not stop the solver: %+v", res)
	}
	if res.Iters != 0 {
		t.Fatalf("took %d iterations under a cancelled context", res.Iters)
	}
}

func TestDeadlineInjectionStops(t *testing.T) {
	// The deadline fault site forces pipeline.Expired mid-run, so the stop
	// lands at a deterministic iteration regardless of machine speed.
	faultinject.Enable(7, faultinject.Spec{Site: faultinject.SiteDeadline, After: 3})
	defer faultinject.Disable()

	c := []float64{1, 25, 4}
	tgt := []float64{50, -30, 7}
	x := make([]float64, 3)
	res := Minimize(quadratic(c, tgt), x, Options{MaxIter: 500, GradTol: 1e-12})
	if !res.Stopped {
		t.Fatalf("injected deadline did not stop the solver: %+v", res)
	}
	if !res.Converged && res.Iters >= 500 {
		t.Fatalf("ran to the iteration cap despite the deadline: %+v", res)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("best iterate is non-finite: %v", x)
		}
	}
}
