package opt

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic builds f(x) = sum c_i (x_i - t_i)^2 with analytic gradient.
func quadratic(c, t []float64) Func {
	return func(x, grad []float64) float64 {
		f := 0.0
		for i := range x {
			d := x[i] - t[i]
			f += c[i] * d * d
			grad[i] = 2 * c[i] * d
		}
		return f
	}
}

func TestMinimizeQuadratic(t *testing.T) {
	n := 20
	c := make([]float64, n)
	tgt := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range c {
		c[i] = 0.5 + rng.Float64()*5
		tgt[i] = rng.NormFloat64() * 10
	}
	x := make([]float64, n)
	res := Minimize(quadratic(c, tgt), x, Options{MaxIter: 500, GradTol: 1e-8})
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-tgt[i]) > 1e-4 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], tgt[i])
		}
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	// The classic banana function: hard for steepest descent, fine for CG.
	rosen := func(x, g []float64) float64 {
		a, b := x[0], x[1]
		f := (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
		g[0] = -2*(1-a) - 400*a*(b-a*a)
		g[1] = 200 * (b - a*a)
		return f
	}
	x := []float64{-1.2, 1}
	res := Minimize(rosen, x, Options{MaxIter: 5000, GradTol: 1e-7, StepInit: 0.001})
	if math.Abs(x[0]-1) > 1e-2 || math.Abs(x[1]-1) > 1e-2 {
		t.Fatalf("Rosenbrock minimum missed: x=%v res=%+v", x, res)
	}
}

func TestMinimizeRespectsMaxIter(t *testing.T) {
	n := 10
	c := make([]float64, n)
	tgt := make([]float64, n)
	for i := range c {
		c[i] = 1
		tgt[i] = 100
	}
	x := make([]float64, n)
	res := Minimize(quadratic(c, tgt), x, Options{MaxIter: 3, GradTol: 1e-16})
	if res.Iters > 3 {
		t.Errorf("Iters = %d, exceeded MaxIter", res.Iters)
	}
}

func TestMinimizeCallbackStops(t *testing.T) {
	// Anisotropic so a single CG step cannot reach the optimum.
	c := []float64{1, 25}
	tgt := []float64{50, -30}
	x := make([]float64, 2)
	calls := 0
	res := Minimize(quadratic(c, tgt), x, Options{
		MaxIter: 100,
		Callback: func(iter int, f, g float64) bool {
			calls++
			return calls < 2
		},
	})
	if res.Iters != 2 {
		t.Errorf("Iters = %d, want 2 (stopped by callback)", res.Iters)
	}
}

func TestMinimizeEmptyInput(t *testing.T) {
	res := Minimize(func(x, g []float64) float64 { return 0 }, nil, Options{})
	if !res.Converged {
		t.Error("empty input should converge trivially")
	}
}

func TestMinimizeAlreadyOptimal(t *testing.T) {
	c := []float64{1, 2}
	tgt := []float64{0, 0}
	x := make([]float64, 2)
	res := Minimize(quadratic(c, tgt), x, Options{MaxIter: 50})
	if res.Iters != 0 || !res.Converged {
		t.Errorf("optimal start should take 0 iterations: %+v", res)
	}
}

func TestMinimizeMonotoneDecrease(t *testing.T) {
	// Track objective values through the callback: Armijo acceptance must
	// yield a non-increasing sequence.
	n := 15
	rng := rand.New(rand.NewSource(11))
	c := make([]float64, n)
	tgt := make([]float64, n)
	for i := range c {
		c[i] = 0.1 + rng.Float64()*3
		tgt[i] = rng.NormFloat64() * 5
	}
	x := make([]float64, n)
	prev := math.Inf(1)
	Minimize(quadratic(c, tgt), x, Options{
		MaxIter: 200,
		Callback: func(iter int, f, g float64) bool {
			if f > prev+1e-12 {
				t.Fatalf("objective increased: %g -> %g at iter %d", prev, f, iter)
			}
			prev = f
			return true
		},
	})
}

// Nonsmooth-ish objective: |x| approximated by sqrt(x^2+eps); the optimizer
// must still make progress (models like LSE/WA wirelength are of this kind).
func TestMinimizeSmoothedAbs(t *testing.T) {
	const eps = 1e-4
	f := func(x, g []float64) float64 {
		total := 0.0
		for i := range x {
			v := math.Sqrt(x[i]*x[i] + eps)
			total += v
			g[i] = x[i] / v
		}
		return total
	}
	x := []float64{5, -7, 3}
	res := Minimize(f, x, Options{MaxIter: 2000, GradTol: 1e-5, StepInit: 1})
	for i := range x {
		if math.Abs(x[i]) > 0.05 {
			t.Fatalf("x[%d] = %g not near 0 (res=%+v)", i, x[i], res)
		}
	}
}

func BenchmarkMinimizeQuadratic1k(b *testing.B) {
	n := 1000
	rng := rand.New(rand.NewSource(5))
	c := make([]float64, n)
	tgt := make([]float64, n)
	for i := range c {
		c[i] = 0.5 + rng.Float64()
		tgt[i] = rng.NormFloat64()
	}
	f := quadratic(c, tgt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, n)
		Minimize(f, x, Options{MaxIter: 100, GradTol: 1e-6})
	}
}
