package core

// White-box tests of the degenerate-group predicate: each rejection class
// must be classified with a stable reason string, and healthy groups must
// pass untouched.

import (
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place/global"
)

// degChip builds a 4-row, 100-wide core.
func degChip() *geom.Core {
	rows := make([]geom.Row, 4)
	for i := range rows {
		rows[i] = geom.Row{Y: float64(i) * 10, X: 0, W: 100, H: 10, SiteW: 1}
	}
	return &geom.Core{Region: geom.NewRect(0, 0, 100, 40), Rows: rows}
}

func degNetlist(t *testing.T, n int, w float64) (*netlist.Netlist, []netlist.CellID) {
	t.Helper()
	nl := netlist.New("deg")
	ids := make([]netlist.CellID, n)
	for i := range ids {
		ids[i] = nl.MustAddCell(
			string(rune('a'+i%26))+string(rune('0'+i/26)), "STD", w, 10, false)
	}
	return nl, ids
}

func TestDegenerateReasonClasses(t *testing.T) {
	chip := degChip()

	t.Run("zero stages", func(t *testing.T) {
		nl, _ := degNetlist(t, 1, 5)
		for _, g := range []global.AlignGroup{
			{},
			{Cols: [][]netlist.CellID{}},
			{Cols: [][]netlist.CellID{{}}},
		} {
			if r := degenerateReason(nl, chip, g); !strings.Contains(r, "zero stages") {
				t.Errorf("reason = %q, want zero stages", r)
			}
		}
	})

	t.Run("more bits than rows", func(t *testing.T) {
		nl, ids := degNetlist(t, 6, 5)
		g := global.AlignGroup{Cols: [][]netlist.CellID{ids[:6]}} // 6 bits, 4 rows
		if r := degenerateReason(nl, chip, g); !strings.Contains(r, "core rows") {
			t.Errorf("reason = %q, want row-capacity rejection", r)
		}
	})

	t.Run("wider than core", func(t *testing.T) {
		nl, ids := degNetlist(t, 3, 40)
		// Three 40-wide stages pack to 120 > 100 core width.
		g := global.AlignGroup{Cols: [][]netlist.CellID{
			{ids[0]}, {ids[1]}, {ids[2]},
		}}
		if r := degenerateReason(nl, chip, g); !strings.Contains(r, "core width") {
			t.Errorf("reason = %q, want width rejection", r)
		}
	})

	t.Run("healthy", func(t *testing.T) {
		nl, ids := degNetlist(t, 4, 5)
		g := global.AlignGroup{Cols: [][]netlist.CellID{ids[:2], ids[2:4]}}
		if r := degenerateReason(nl, chip, g); r != "" {
			t.Errorf("healthy group rejected: %q", r)
		}
	})

	t.Run("injected", func(t *testing.T) {
		faultinject.Enable(1, faultinject.Spec{Site: faultinject.SiteDegenerateGroups})
		defer faultinject.Disable()
		nl, ids := degNetlist(t, 4, 5)
		g := global.AlignGroup{Cols: [][]netlist.CellID{ids[:2], ids[2:4]}}
		if r := degenerateReason(nl, chip, g); !strings.Contains(r, "fault-injected") {
			t.Errorf("reason = %q, want injected degeneracy", r)
		}
	})
}
