package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/place/global"
)

func pipelineBench(t *testing.T) *gen.Benchmark {
	t.Helper()
	return gen.Generate(gen.Config{
		Name: "pipe", Seed: 41, Bits: 8,
		Units:       []gen.UnitKind{gen.Adder, gen.MuxTree},
		RandomCells: 300,
		Pads:        12,
	})
}

func TestPipelineBaseline(t *testing.T) {
	b := pipelineBench(t)
	res, err := core.Place(b.Netlist, b.Core, b.Placement, core.Options{Mode: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LegalityChecked {
		t.Error("legality not verified")
	}
	if res.Extraction != nil {
		t.Error("baseline ran extraction")
	}
	if res.HPWLFinal <= 0 {
		t.Errorf("HPWLFinal = %g", res.HPWLFinal)
	}
	// Detailed placement never worsens the legal placement.
	if res.HPWLFinal > res.HPWLLegal+1e-6 {
		t.Errorf("detail worsened HPWL: %.0f -> %.0f", res.HPWLLegal, res.HPWLFinal)
	}
	// The initial placement must not have been mutated.
	if b.Placement.X[0] != res.Placement.X[0] && false {
		t.Error("unreachable")
	}
}

func TestPipelineStructureAware(t *testing.T) {
	b := pipelineBench(t)
	res, err := core.Place(b.Netlist, b.Core, b.Placement, core.Options{Mode: core.StructureAware})
	if err != nil {
		t.Fatal(err)
	}
	if res.Extraction == nil || len(res.Extraction.Groups) == 0 {
		t.Fatal("no extraction result")
	}
	if res.GroupedCells == 0 {
		t.Error("no cells grouped")
	}
	if res.LegalResult.GroupBlocks == 0 {
		t.Error("no group legalized as a block")
	}
	if !res.LegalityChecked {
		t.Error("legality not verified")
	}
	if res.Times.Total() <= 0 {
		t.Error("no time recorded")
	}
}

func TestPipelineStructureAwareBeatsBaselineOnAlignment(t *testing.T) {
	b := pipelineBench(t)
	sa, err := core.Place(b.Netlist, b.Core, b.Placement, core.Options{Mode: core.StructureAware})
	if err != nil {
		t.Fatal(err)
	}
	// Structure-aware mode must end with perfectly aligned groups (they are
	// snapped as rigid blocks), i.e. zero column spread.
	if sa.AlignmentRMS > 1e-6 {
		t.Errorf("final alignment RMS = %g, want 0 (rigid blocks)", sa.AlignmentRMS)
	}
}

func TestPipelineSkipLegalize(t *testing.T) {
	b := pipelineBench(t)
	res, err := core.Place(b.Netlist, b.Core, b.Placement, core.Options{
		Mode:         core.Baseline,
		SkipLegalize: true,
		Global:       globalFast(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LegalityChecked {
		t.Error("skip-legalize should not check legality")
	}
	if res.HPWLFinal != res.HPWLGlobal {
		t.Error("final HPWL should equal global HPWL when legalization skipped")
	}
}

func TestPipelineInitialNotMutated(t *testing.T) {
	b := pipelineBench(t)
	before := b.Placement.Clone()
	if _, err := core.Place(b.Netlist, b.Core, b.Placement, core.Options{
		Mode: core.Baseline, Global: globalFast(), SkipLegalize: true,
	}); err != nil {
		t.Fatal(err)
	}
	for i := range before.X {
		if before.X[i] != b.Placement.X[i] || before.Y[i] != b.Placement.Y[i] {
			t.Fatal("initial placement mutated")
		}
	}
}

func TestModeString(t *testing.T) {
	if core.Baseline.String() != "baseline" || core.StructureAware.String() != "structure-aware" {
		t.Error("mode strings wrong")
	}
}

// globalFast keeps the quick structural tests quick.
func globalFast() global.Options {
	return global.Options{MaxOuterIters: 4, InnerIters: 10}
}
