package core_test

// Resilience suite: deterministic fault injection drives every recovery
// path of the pipeline — NaN gradients, exhausted deadlines, degenerate
// extracted groups and truncated input files — and asserts the documented
// degraded behavior instead of a crash or a silent wrong answer.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/bookshelf"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// fastOpts keeps the fault-injection runs quick while still exercising the
// full pipeline.
func fastOpts() core.Options {
	return core.Options{Mode: core.StructureAware, Global: globalFast()}
}

// TestNaNGradientRecovery poisons the solver gradient mid-run and expects
// the numerical-health guard to roll back, damp the step and still converge
// to a legal placement.
func TestNaNGradientRecovery(t *testing.T) {
	faultinject.Enable(7, faultinject.Spec{
		Site: faultinject.SiteOptNaNGrad, After: 3, Count: 2,
	})
	defer faultinject.Disable()

	b := pipelineBench(t)
	res, err := core.Place(b.Netlist, b.Core, b.Placement, fastOpts())
	if err != nil {
		t.Fatalf("pipeline failed despite recovery guard: %v", err)
	}
	if faultinject.Fired(faultinject.SiteOptNaNGrad) == 0 {
		t.Fatal("fault never fired; test exercises nothing")
	}
	if res.GlobalResult.Diagnostics.Recoveries == 0 {
		t.Error("no solver recoveries recorded after NaN gradient injection")
	}
	if res.GlobalResult.Diagnostics.Diverged {
		t.Error("solver gave up; expected recovery")
	}
	if !res.LegalityChecked {
		t.Error("final placement was not verified legal")
	}
}

// TestGlobalDivergenceFallback poisons the solve at the start of every
// inner call so the structure-aware global placement diverges twice; the
// pipeline must dissolve the groups, record the degradation and finish via
// the baseline formulation.
func TestGlobalDivergenceFallback(t *testing.T) {
	// Count 2: each poisoned Minimize diverges immediately (no finite best
	// iterate exists yet), producing exactly the two strikes the engine
	// tolerates; the baseline rerun then proceeds uninjected.
	faultinject.Enable(7, faultinject.Spec{
		Site: faultinject.SiteOptNaNGrad, Count: 2,
	})
	defer faultinject.Disable()

	b := pipelineBench(t)
	res, err := core.Place(b.Netlist, b.Core, b.Placement, fastOpts())
	if err != nil {
		t.Fatalf("fallback rerun failed: %v", err)
	}
	found := false
	for _, d := range res.Degradations {
		if d.Stage == "global" {
			found = true
		}
	}
	if !found {
		t.Errorf("no global-stage degradation recorded; got %v", res.Degradations)
	}
	if res.GlobalResult.Diagnostics.Rollbacks != 0 || res.GlobalResult.Diagnostics.ReAnneals != 0 {
		// GlobalResult holds the rerun's diagnostics; the rerun is clean.
		t.Errorf("rerun diagnostics not clean: %+v", res.GlobalResult.Diagnostics)
	}
	if !res.LegalityChecked {
		t.Error("fallback placement was not verified legal")
	}
}

// TestGlobalDivergenceFail is the same scenario under DegradeFail: the
// pipeline must abort with the diverged stage error instead of degrading.
func TestGlobalDivergenceFail(t *testing.T) {
	faultinject.Enable(7, faultinject.Spec{
		Site: faultinject.SiteOptNaNGrad, Count: 2,
	})
	defer faultinject.Disable()

	b := pipelineBench(t)
	opt := fastOpts()
	opt.OnDegrade = core.DegradeFail
	_, err := core.Place(b.Netlist, b.Core, b.Placement, opt)
	if !errors.Is(err, core.ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
}

// TestDeadlineRealTimeout bounds the pipeline with a timeout far below its
// runtime and expects a partial result carrying the best iterate, not nil.
func TestDeadlineRealTimeout(t *testing.T) {
	b := pipelineBench(t)
	opt := fastOpts()
	opt.Timeout = time.Millisecond
	res, err := core.Place(b.Netlist, b.Core, b.Placement, opt)
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if res == nil {
		t.Fatal("timeout returned nil result; best iterate lost")
	}
	if !res.Partial {
		t.Error("Partial not set on timeout result")
	}
	if res.Placement == nil {
		t.Error("timeout result carries no placement")
	}
}

// TestDeadlineInjection exhausts the deadline deterministically via the
// fault site rather than the wall clock, hitting mid-solve.
func TestDeadlineInjection(t *testing.T) {
	faultinject.Enable(7, faultinject.Spec{
		Site: faultinject.SiteDeadline, After: 25,
	})
	defer faultinject.Disable()

	b := pipelineBench(t)
	res, err := core.Place(b.Netlist, b.Core, b.Placement, fastOpts())
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("injected deadline did not produce a partial result")
	}
}

// TestStageBudget bounds only the global stage and expects the same partial
// semantics as a whole-pipeline timeout.
func TestStageBudget(t *testing.T) {
	b := pipelineBench(t)
	opt := fastOpts()
	opt.Budgets.Global = time.Millisecond
	res, err := core.Place(b.Netlist, b.Core, b.Placement, opt)
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("stage budget expiry did not produce a partial result")
	}
}

// TestCancelledContext aborts before the pipeline starts; even then the
// caller gets a partial result object, not nil.
func TestCancelledContext(t *testing.T) {
	b := pipelineBench(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := core.PlaceCtx(ctx, b.Netlist, b.Core, b.Placement, fastOpts())
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("cancelled context did not produce a partial result")
	}
}

// TestDegenerateGroupsFallback forces every extracted group to be classified
// degenerate; the pipeline must place their cells as plain cells, record the
// degradations and still produce a legal placement.
func TestDegenerateGroupsFallback(t *testing.T) {
	faultinject.Enable(7, faultinject.Spec{
		Site: faultinject.SiteDegenerateGroups,
	})
	defer faultinject.Disable()

	b := pipelineBench(t)
	res, err := core.Place(b.Netlist, b.Core, b.Placement, fastOpts())
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if len(res.Degradations) == 0 {
		t.Fatal("no degradations recorded for injected degenerate groups")
	}
	for _, d := range res.Degradations {
		if d.Stage != "extract" {
			t.Errorf("unexpected degradation stage %q", d.Stage)
		}
		if d.Group < 0 {
			t.Errorf("degradation lost its group index: %+v", d)
		}
	}
	if !res.LegalityChecked {
		t.Error("degraded placement was not verified legal")
	}
	if res.ColumnSwaps != 0 {
		t.Error("column swaps ran with no surviving groups")
	}
}

// TestDegenerateGroupsFail is the same scenario under DegradeFail.
func TestDegenerateGroupsFail(t *testing.T) {
	faultinject.Enable(7, faultinject.Spec{
		Site: faultinject.SiteDegenerateGroups,
	})
	defer faultinject.Disable()

	b := pipelineBench(t)
	opt := fastOpts()
	opt.OnDegrade = core.DegradeFail
	_, err := core.Place(b.Netlist, b.Core, b.Placement, opt)
	if !errors.Is(err, core.ErrDegenerateGroups) {
		t.Fatalf("err = %v, want ErrDegenerateGroups", err)
	}
}

// TestTruncatedInput writes a valid benchmark to disk, then injects stream
// truncation into the reader; loading must fail with ErrMalformedInput and
// must not panic.
func TestTruncatedInput(t *testing.T) {
	b := pipelineBench(t)
	dir := t.TempDir()
	aux, err := bookshelf.WriteAux(dir, "trunc", &bookshelf.Design{
		Netlist: b.Netlist, Placement: b.Placement, Core: b.Core,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the untruncated benchmark loads.
	if _, err := bookshelf.ReadAux(aux); err != nil {
		t.Fatalf("clean read failed: %v", err)
	}

	faultinject.Enable(7, faultinject.Spec{
		Site: faultinject.SiteBookshelfTruncate,
	})
	defer faultinject.Disable()
	_, err = bookshelf.ReadAux(aux)
	if !errors.Is(err, core.ErrMalformedInput) {
		t.Fatalf("err = %v, want ErrMalformedInput", err)
	}
	if faultinject.Fired(faultinject.SiteBookshelfTruncate) == 0 {
		t.Fatal("truncation never fired; test exercises nothing")
	}
}

// TestDetailPassesDisabled covers DetailPasses == -1: legalization output is
// final, untouched by detailed placement.
func TestDetailPassesDisabled(t *testing.T) {
	b := pipelineBench(t)
	opt := fastOpts()
	opt.DetailPasses = -1
	res, err := core.Place(b.Netlist, b.Core, b.Placement, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWLFinal != res.HPWLLegal {
		t.Errorf("HPWLFinal = %g differs from HPWLLegal = %g with detail disabled",
			res.HPWLFinal, res.HPWLLegal)
	}
	if res.DetailResult.Moves != 0 {
		t.Errorf("detail recorded %d moves while disabled", res.DetailResult.Moves)
	}
	if res.ColumnSwaps != 0 {
		t.Errorf("column swaps = %d while detail disabled", res.ColumnSwaps)
	}
	if !res.LegalityChecked {
		t.Error("placement not verified legal")
	}
}
