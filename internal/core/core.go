// Package core is the top-level API of the structure-aware placement flow —
// the system the paper contributes. One call runs the full pipeline:
//
//	datapath extraction → analytical global placement (+ alignment forces)
//	→ structure-preserving legalization → detailed placement
//
// Baseline mode runs the identical engine with extraction and alignment
// disabled, so measured differences isolate structure-awareness — the
// evaluation protocol of the paper.
package core

import (
	"fmt"
	"time"

	"repro/internal/datapath"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place/detail"
	"repro/internal/place/global"
	"repro/internal/place/legal"
)

// Mode selects the flow variant.
type Mode int

// Flow variants.
const (
	// Baseline is a generic analytical placer: no extraction, no alignment.
	Baseline Mode = iota
	// StructureAware runs extraction and aligns the recovered groups.
	StructureAware
)

func (m Mode) String() string {
	if m == StructureAware {
		return "structure-aware"
	}
	return "baseline"
}

// Options configures the pipeline.
type Options struct {
	Mode Mode
	// Extraction parameters (StructureAware only). Zero value = defaults.
	Extraction datapath.Options
	// Global placement parameters. Mode-driven fields (Groups) are set by
	// the pipeline.
	Global global.Options
	// DetailPasses is the number of detailed-placement sweeps (default 2;
	// -1 disables detailed placement).
	DetailPasses int
	// SkipLegalize stops after global placement (for convergence studies).
	SkipLegalize bool
}

// StageTimes records wall-clock time per pipeline stage.
type StageTimes struct {
	Extract  time.Duration
	Global   time.Duration
	Legalize time.Duration
	Detail   time.Duration
}

// Total returns the summed stage time.
func (s StageTimes) Total() time.Duration {
	return s.Extract + s.Global + s.Legalize + s.Detail
}

// Result is the pipeline outcome.
type Result struct {
	Placement  *netlist.Placement
	Extraction *datapath.Extraction // nil in baseline mode

	GlobalResult    global.Result
	LegalResult     legal.Result
	DetailResult    detail.Result
	ColumnSwaps     int     // accepted stage-order swaps (structure-aware only)
	HPWLGlobal      float64 // after global placement
	HPWLLegal       float64 // after legalization
	HPWLFinal       float64 // after detailed placement
	AlignmentRMS    float64 // final alignment score over extracted groups
	GroupedCells    int
	Times           StageTimes
	LegalityChecked bool
}

// Place runs the pipeline on a netlist. initial provides fixed-cell
// positions and the starting point for movables; it is not modified. The
// returned placement is legal (unless SkipLegalize).
func Place(nl *netlist.Netlist, chip *geom.Core, initial *netlist.Placement, opt Options) (*Result, error) {
	if opt.DetailPasses == 0 {
		opt.DetailPasses = 2
	}
	pl := initial.Clone()
	res := &Result{Placement: pl}

	var groups []global.AlignGroup
	if opt.Mode == StructureAware {
		// A zero Extraction (no inference mode selected) means "defaults".
		if !opt.Extraction.UseNames && !opt.Extraction.UseStructural {
			opt.Extraction = datapath.DefaultOptions()
		}
		t0 := time.Now()
		ext := datapath.Extract(nl, opt.Extraction)
		res.Times.Extract = time.Since(t0)
		res.Extraction = ext
		res.GroupedCells = ext.NumGrouped()
		groups = global.AlignGroupsFromExtraction(ext)
	}

	gOpt := opt.Global
	if len(groups) > 0 && !gOpt.SkipQuadraticInit {
		// Run the quadratic initial solve up front so bank folding can
		// order columns by their wirelength-driven positions; a merged
		// datapath chain can be far wider than the core, and folding it
		// into banks is the layout a designer would draw.
		global.InitQuadratic(nl, pl, chip)
		gOpt.SkipQuadraticInit = true
		// 0.95: fold only when a single band genuinely cannot fit — a
		// full-width band is the classic datapath layout and splitting it
		// unnecessarily costs wirelength.
		groups = global.SplitWideGroups(nl, pl, chip, groups, 0.95)
	}
	gOpt.Groups = groups
	t0 := time.Now()
	gRes, err := global.Place(nl, pl, chip, gOpt)
	if err != nil {
		return nil, fmt.Errorf("core: global placement: %w", err)
	}
	res.Times.Global = time.Since(t0)
	res.GlobalResult = gRes
	res.HPWLGlobal = pl.HPWL(nl)

	if opt.SkipLegalize {
		res.HPWLFinal = res.HPWLGlobal
		return res, nil
	}

	t0 = time.Now()
	lRes, err := legal.Legalize(nl, pl, chip, legal.Options{Groups: groups})
	if err != nil {
		return nil, fmt.Errorf("core: legalization: %w", err)
	}
	res.Times.Legalize = time.Since(t0)
	res.LegalResult = lRes
	res.HPWLLegal = pl.HPWL(nl)

	if opt.DetailPasses > 0 {
		t0 = time.Now()
		// Group cells are locked against generic moves; their stage order
		// is optimized by the structure-preserving column swaps instead.
		res.DetailResult = detail.Improve(nl, pl, chip, detail.Options{
			Locked: detail.LockedFromGroups(nl.NumCells(), groups),
			Passes: opt.DetailPasses,
		})
		if len(groups) > 0 {
			res.ColumnSwaps = detail.ImproveColumns(nl, pl, groups, opt.DetailPasses)
		}
		res.Times.Detail = time.Since(t0)
	}
	res.HPWLFinal = pl.HPWL(nl)

	if err := pl.CheckLegal(nl, chip); err != nil {
		return nil, fmt.Errorf("core: final placement illegal: %w", err)
	}
	res.LegalityChecked = true

	if len(groups) > 0 {
		cx := make([]float64, nl.NumCells())
		cy := make([]float64, nl.NumCells())
		for i := range nl.Cells {
			cx[i] = pl.X[i] + nl.Cells[i].W/2
			cy[i] = pl.Y[i] + nl.Cells[i].H/2
		}
		res.AlignmentRMS = global.AlignmentScore(groups, chip.RowH(), cx, cy)
	}
	return res, nil
}
