// Package core is the top-level API of the structure-aware placement flow —
// the system the paper contributes. One call runs the full pipeline:
//
//	datapath extraction → analytical global placement (+ alignment forces)
//	→ structure-preserving legalization → detailed placement
//
// Baseline mode runs the identical engine with extraction and alignment
// disabled, so measured differences isolate structure-awareness — the
// evaluation protocol of the paper.
//
// The pipeline is resilient. Wall-clock budgets (whole-flow and per-stage)
// are enforced cooperatively; on expiry Place returns the best iterate found
// so far with Result.Partial set and an error wrapping pipeline.ErrTimeout,
// instead of nothing. Degenerate extraction output and repeatedly diverging
// structure-aware solves degrade gracefully to the baseline flow for the
// affected groups (policy-controlled via Options.OnDegrade), recording what
// happened in Result.Degradations.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/datapath"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/place/detail"
	"repro/internal/place/global"
	"repro/internal/place/legal"
	"repro/internal/place/multilevel"
)

// Sentinel errors re-exported for callers that branch on failure class.
var (
	ErrTimeout          = pipeline.ErrTimeout
	ErrDiverged         = pipeline.ErrDiverged
	ErrDegenerateGroups = pipeline.ErrDegenerateGroups
	ErrMalformedInput   = pipeline.ErrMalformedInput
)

// Mode selects the flow variant.
type Mode int

// Flow variants.
const (
	// Baseline is a generic analytical placer: no extraction, no alignment.
	Baseline Mode = iota
	// StructureAware runs extraction and aligns the recovered groups.
	StructureAware
)

// String names the mode for logs and reports.
func (m Mode) String() string {
	if m == StructureAware {
		return "structure-aware"
	}
	return "baseline"
}

// DegradePolicy selects what happens when the structure-aware machinery
// cannot honor the extracted structure.
type DegradePolicy int

// Degradation policies.
const (
	// DegradeFallback (the default) falls back to the baseline flow for the
	// affected groups and records the event in Result.Degradations.
	DegradeFallback DegradePolicy = iota
	// DegradeFail aborts with ErrDegenerateGroups (or the stage error)
	// instead of degrading.
	DegradeFail
)

// Options configures the pipeline.
type Options struct {
	Mode Mode
	// Extraction parameters (StructureAware only). Zero value = defaults.
	Extraction datapath.Options
	// Global placement parameters. Mode-driven fields (Groups) are set by
	// the pipeline.
	Global global.Options
	// DetailPasses is the number of detailed-placement sweeps (default 2;
	// -1 disables detailed placement).
	DetailPasses int
	// SkipLegalize stops after global placement (for convergence studies).
	SkipLegalize bool
	// Timeout bounds the whole pipeline's wall clock (0 = none). On expiry
	// Place returns the best iterate so far with Result.Partial set and an
	// error wrapping ErrTimeout.
	Timeout time.Duration
	// Budgets optionally bounds individual stages the same way (zero fields
	// = unbounded). Global, legalization and detailed placement are
	// preempted cooperatively inside their iteration loops; extraction is
	// checked at the stage boundary.
	Budgets StageTimes
	// OnDegrade selects the reaction to degenerate extracted groups and to
	// a structure-aware solve that repeatedly fails numerical-health checks
	// (default DegradeFallback).
	OnDegrade DegradePolicy
	// Multilevel replaces the flat global-placement stage with the V-cycle:
	// the netlist is coarsened bottom-up (extracted datapath groups stay
	// atomic), the coarsest cluster netlist is placed, and positions are
	// interpolated down level by level with warm-started refinement solves.
	// Legalization and detailed placement are unchanged.
	Multilevel bool
	// MultilevelOpts tunes coarsening when Multilevel is set (zero value =
	// defaults); its Global and Groups fields are filled by the pipeline.
	MultilevelOpts multilevel.Options
}

// StageTimes records a wall-clock duration per pipeline stage. It is used
// both for reporting elapsed times (Result.Times) and for configuring stage
// budgets (Options.Budgets).
type StageTimes struct {
	Extract  time.Duration
	Global   time.Duration
	Legalize time.Duration
	Detail   time.Duration
}

// Total returns the summed stage time.
func (s StageTimes) Total() time.Duration {
	return s.Extract + s.Global + s.Legalize + s.Detail
}

// Degradation records one graceful-degradation event: a piece of extracted
// structure the pipeline dropped or dissolved instead of failing.
type Degradation struct {
	Stage  string // "extract", "global" or "legalize"
	Group  int    // group index at the failing stage; -1 = whole flow
	Reason string
}

// Result is the pipeline outcome.
type Result struct {
	Placement  *netlist.Placement
	Extraction *datapath.Extraction // nil in baseline mode

	GlobalResult    global.Result
	LegalResult     legal.Result
	DetailResult    detail.Result
	ColumnSwaps     int     // accepted stage-order swaps (structure-aware only)
	HPWLGlobal      float64 // after global placement
	HPWLLegal       float64 // after legalization
	HPWLFinal       float64 // after detailed placement
	AlignmentRMS    float64 // final alignment score over extracted groups
	GroupedCells    int
	Times           StageTimes
	LegalityChecked bool
	// Multilevel describes the V-cycle (level count, per-level stats) when
	// Options.Multilevel ran it; nil for the flat flow.
	Multilevel *multilevel.Result
	// Partial is set when a deadline stopped the pipeline early; Placement
	// holds the best iterate reached (legal only if LegalityChecked).
	Partial bool
	// Degradations lists the graceful-degradation events of the run.
	Degradations []Degradation
}

// Place runs the pipeline on a netlist. initial provides fixed-cell
// positions and the starting point for movables; it is not modified. The
// returned placement is legal (unless SkipLegalize).
func Place(nl *netlist.Netlist, chip *geom.Core, initial *netlist.Placement, opt Options) (*Result, error) {
	return PlaceCtx(context.Background(), nl, chip, initial, opt)
}

// PlaceCtx is Place with cooperative cancellation: the context (further
// bounded by Options.Timeout and Options.Budgets) is threaded through every
// stage down to the inner solver iterations. On expiry the returned Result
// is non-nil, carries the best iterate found so far with Partial set, and
// the error wraps ErrTimeout.
func PlaceCtx(ctx context.Context, nl *netlist.Netlist, chip *geom.Core, initial *netlist.Placement, opt Options) (*Result, error) {
	if opt.DetailPasses == 0 {
		opt.DetailPasses = 2
	}
	ctx, cancel := pipeline.WithBudget(ctx, opt.Timeout)
	defer cancel()

	rec := obs.From(ctx)
	root := rec.Span("place")
	defer root.End()

	pl := initial.Clone()
	res := &Result{Placement: pl}

	var groups []global.AlignGroup
	if opt.Mode == StructureAware {
		// A zero Extraction (no inference mode selected) means "defaults".
		if !opt.Extraction.UseNames && !opt.Extraction.UseStructural {
			opt.Extraction = datapath.DefaultOptions()
		}
		sp := root.Child("extract")
		sw := obs.StartStopwatch()
		ext := datapath.Extract(nl, opt.Extraction)
		res.Times.Extract = sw.Elapsed()
		res.Extraction = ext
		res.GroupedCells = ext.NumGrouped()
		groups = global.AlignGroupsFromExtraction(ext)
		sp.Add("groups", int64(len(ext.Groups)))
		sp.Add("grouped_cells", int64(ext.NumGrouped()))
		sp.End()
		rec.Logf(obs.Debug, "extract", "%d groups covering %d cells",
			len(ext.Groups), ext.NumGrouped())
	}
	if pipeline.Expired(ctx) {
		res.Partial = true
		res.HPWLFinal = pl.HPWL(nl)
		return res, pipeline.StageError("core: extract", ErrTimeout)
	}

	gOpt := opt.Global
	if len(groups) > 0 && !gOpt.SkipQuadraticInit {
		// Run the quadratic initial solve up front so bank folding can
		// order columns by their wirelength-driven positions; a merged
		// datapath chain can be far wider than the core, and folding it
		// into banks is the layout a designer would draw.
		global.InitQuadratic(nl, pl, chip)
		gOpt.SkipQuadraticInit = true
		// 0.95: fold only when a single band genuinely cannot fit — a
		// full-width band is the classic datapath layout and splitting it
		// unnecessarily costs wirelength.
		groups = global.SplitWideGroups(nl, pl, chip, groups, 0.95)
	}

	// Degenerate-group screen: structure the placer cannot honor (no
	// stages, taller than the core, wider than the core even after bank
	// folding) either fails fast or falls back to baseline treatment for
	// just those cells.
	if len(groups) > 0 {
		kept := groups[:0]
		for gi, g := range groups {
			reason := degenerateReason(nl, chip, g)
			if reason == "" {
				kept = append(kept, g)
				continue
			}
			if opt.OnDegrade == DegradeFail {
				return nil, fmt.Errorf("core: extraction: group %d: %s: %w", gi, reason, ErrDegenerateGroups)
			}
			res.Degradations = append(res.Degradations, Degradation{
				Stage: "extract", Group: gi, Reason: reason,
			})
			rec.Degrade("extract", gi, reason)
			rec.Logf(obs.Warn, "extract", "group %d degenerate (%s); placing as plain cells", gi, reason)
		}
		groups = kept
	}

	// runGlobal dispatches the global-placement stage: the flat analytical
	// engine, or the multilevel V-cycle wrapping it level by level.
	runGlobal := func(gOpt global.Options, groups []global.AlignGroup) (global.Result, error) {
		gctx, gcancel := pipeline.WithBudget(ctx, opt.Budgets.Global)
		defer gcancel()
		if !opt.Multilevel {
			gOpt.Groups = groups
			return global.PlaceCtx(gctx, nl, pl, chip, gOpt)
		}
		mo := opt.MultilevelOpts
		mo.Global = gOpt
		mo.Groups = groups
		mlRes, mlErr := multilevel.PlaceCtx(gctx, nl, pl, chip, mo)
		res.Multilevel = &mlRes
		return mlRes.Global, mlErr
	}

	gSpan := root.Child("global")
	sw := obs.StartStopwatch()
	gRes, err := runGlobal(gOpt, groups)
	res.Times.Global = sw.Elapsed()
	if err != nil && errors.Is(err, ErrDiverged) && len(groups) > 0 && opt.OnDegrade == DegradeFallback {
		// The structure-aware solve failed its health checks twice (the
		// engine already rolled back and re-annealed in between). Dissolve
		// the groups and rerun the plain baseline formulation from the
		// caller's initial state — a worse but well-conditioned problem.
		reason := "hard-alignment solve diverged twice; groups dissolved"
		res.Degradations = append(res.Degradations, Degradation{
			Stage: "global", Group: -1, Reason: reason,
		})
		rec.Degrade("global", -1, reason)
		rec.Logf(obs.Warn, "global", "%s; rerunning baseline formulation", reason)
		gSpan.Add("baseline_reruns", 1)
		copy(pl.X, initial.X)
		copy(pl.Y, initial.Y)
		groups = nil
		sw = obs.StartStopwatch()
		gRes, err = runGlobal(opt.Global, nil)
		res.Times.Global += sw.Elapsed()
	}
	if res.Multilevel != nil {
		gSpan.Add("levels", int64(res.Multilevel.Levels))
		gSpan.Add("coarsest_cells", int64(res.Multilevel.CoarsestCells))
	}
	gSpan.Add("outer_iters", int64(gRes.OuterIters))
	gSpan.Add("func_evals", int64(gRes.FuncEvals))
	gSpan.Add("rollbacks", int64(gRes.Diagnostics.Rollbacks))
	gSpan.Add("re_anneals", int64(gRes.Diagnostics.ReAnneals))
	gSpan.End()
	res.GlobalResult = gRes
	if err != nil {
		if errors.Is(err, ErrTimeout) {
			res.Partial = true
			res.HPWLGlobal = pl.HPWL(nl)
			res.HPWLFinal = res.HPWLGlobal
			return res, fmt.Errorf("core: global placement: %w", err)
		}
		return nil, fmt.Errorf("core: global placement: %w", err)
	}
	res.HPWLGlobal = pl.HPWL(nl)

	if opt.SkipLegalize {
		res.HPWLFinal = res.HPWLGlobal
		return res, nil
	}

	lSpan := root.Child("legalize")
	lctx, lcancel := pipeline.WithBudget(ctx, opt.Budgets.Legalize)
	sw = obs.StartStopwatch()
	lRes, err := legal.LegalizeCtx(lctx, nl, pl, chip, legal.Options{Groups: groups})
	lcancel()
	res.Times.Legalize = sw.Elapsed()
	res.LegalResult = lRes
	lSpan.Add("group_blocks", int64(lRes.GroupBlocks))
	lSpan.Add("group_fallbacks", int64(lRes.GroupFallbacks))
	lSpan.End()
	if err != nil {
		if errors.Is(err, ErrTimeout) {
			res.Partial = true
			res.HPWLLegal = pl.HPWL(nl)
			res.HPWLFinal = res.HPWLLegal
			return res, fmt.Errorf("core: legalization: %w", err)
		}
		return nil, fmt.Errorf("core: legalization: %w", err)
	}
	if lRes.GroupFallbacks > 0 {
		reason := fmt.Sprintf("%d groups found no rigid-block fit and were dissolved into plain cells", lRes.GroupFallbacks)
		res.Degradations = append(res.Degradations, Degradation{
			Stage: "legalize", Group: -1, Reason: reason,
		})
		rec.Degrade("legalize", -1, reason)
		rec.Logf(obs.Warn, "legalize", "%s", reason)
	}
	res.HPWLLegal = pl.HPWL(nl)
	rec.Logf(obs.Debug, "legalize", "done: HPWL %.0f, displacement total %.0f max %.0f, %d blocks",
		res.HPWLLegal, lRes.TotalDisplacement, lRes.MaxDisplacement, lRes.GroupBlocks)

	if opt.DetailPasses > 0 {
		dSpan := root.Child("detail")
		dctx, dcancel := pipeline.WithBudget(ctx, opt.Budgets.Detail)
		sw = obs.StartStopwatch()
		// Group cells are locked against generic moves; their stage order
		// is optimized by the structure-preserving column swaps instead.
		res.DetailResult = detail.Improve(nl, pl, chip, detail.Options{
			Locked: detail.LockedFromGroups(nl.NumCells(), groups),
			Passes: opt.DetailPasses,
			Ctx:    dctx,
		})
		if len(groups) > 0 && !pipeline.Expired(dctx) {
			res.ColumnSwaps = detail.ImproveColumns(nl, pl, groups, opt.DetailPasses)
		}
		dcancel()
		res.Times.Detail = sw.Elapsed()
		dSpan.Add("moves", int64(res.DetailResult.Moves))
		dSpan.Add("column_swaps", int64(res.ColumnSwaps))
		dSpan.End()
		if res.DetailResult.Partial {
			res.Partial = true
		}
	}
	res.HPWLFinal = pl.HPWL(nl)
	rec.Logf(obs.Debug, "core", "final HPWL %.0f (global %.0f, legal %.0f)",
		res.HPWLFinal, res.HPWLGlobal, res.HPWLLegal)

	if err := pl.CheckLegal(nl, chip); err != nil {
		return nil, fmt.Errorf("core: final placement illegal: %w", err)
	}
	res.LegalityChecked = true

	if len(groups) > 0 {
		cx := make([]float64, nl.NumCells())
		cy := make([]float64, nl.NumCells())
		for i := range nl.Cells {
			cx[i] = pl.X[i] + nl.Cells[i].W/2
			cy[i] = pl.Y[i] + nl.Cells[i].H/2
		}
		res.AlignmentRMS = global.AlignmentScore(groups, chip.RowH(), cx, cy)
	}
	if res.Partial {
		// Detailed placement stopped at its deadline; the placement is
		// legal and complete, just less polished than asked for.
		return res, pipeline.StageError("core: detail", ErrTimeout)
	}
	return res, nil
}

// degenerateReason classifies a group the placer cannot honor, returning ""
// for a healthy group. The fault-injection site forces degeneracy so the
// fallback path can be tested on designs whose extraction is clean.
func degenerateReason(nl *netlist.Netlist, chip *geom.Core, g global.AlignGroup) string {
	if faultinject.Hit(faultinject.SiteDegenerateGroups) {
		return "fault-injected degenerate group"
	}
	if len(g.Cols) == 0 || len(g.Cols[0]) == 0 {
		return "zero stages"
	}
	bits := len(g.Cols[0])
	if bits > chip.NumRows() {
		return fmt.Sprintf("%d bits exceed %d core rows", bits, chip.NumRows())
	}
	total := 0.0
	for _, col := range g.Cols {
		w := 0.0
		for _, c := range col {
			if cw := nl.Cell(c).W; cw > w {
				w = cw
			}
		}
		total += w
	}
	if coreW := chip.Region.W(); total > coreW {
		return fmt.Sprintf("packed width %.0f exceeds core width %.0f after splitting", total, coreW)
	}
	return ""
}
