package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/bookshelf"
	"repro/internal/gen"
	"repro/internal/pipeline"
)

// fuzzDesign renders a small generated design to Bookshelf text so the seed
// corpus contains a fully valid aux bundle.
func fuzzDesign(f *testing.F) (nodes, nets, pl, scl string) {
	f.Helper()
	b := gen.Generate(gen.Config{
		Name: "fuzzseed", Seed: 17, Bits: 4,
		Units:       []gen.UnitKind{gen.Adder},
		RandomCells: 40,
		Pads:        8,
	})
	var nodesB, netsB, plB, sclB bytes.Buffer
	if err := bookshelf.WriteNodes(&nodesB, b.Netlist); err != nil {
		f.Fatal(err)
	}
	if err := bookshelf.WriteNets(&netsB, b.Netlist); err != nil {
		f.Fatal(err)
	}
	if err := bookshelf.WritePl(&plB, b.Netlist, b.Placement); err != nil {
		f.Fatal(err)
	}
	if err := bookshelf.WriteScl(&sclB, b.Core); err != nil {
		f.Fatal(err)
	}
	return nodesB.String(), netsB.String(), plB.String(), sclB.String()
}

// FuzzDecodeSpec throws arbitrary bytes at the HTTP job-spec decoder: any
// outcome is fine except a panic or a rejection that does not carry the
// malformed-input sentinel (which would map to a 500 instead of a 400).
func FuzzDecodeSpec(f *testing.F) {
	nodes, nets, pl, scl := fuzzDesign(f)
	okGen, err := json.Marshal(&JobSpec{
		Name: "g", Priority: 5,
		Gen:     &GenSpec{Seed: 1, Bits: 4, Units: []string{"adder"}, RandomCells: 10},
		Options: SpecOptions{Mode: "baseline", Model: "lse", Workers: 2},
	})
	if err != nil {
		f.Fatal(err)
	}
	okAux, err := json.Marshal(&JobSpec{
		Name: "a", Aux: &AuxBundle{Nodes: nodes, Nets: nets, Pl: pl, Scl: scl},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(okGen))
	f.Add(string(okAux))
	f.Add(`{}`)
	f.Add(`{"gen":{},"aux":{"nodes":"a 1 1\n","nets":"","scl":""}}`)
	f.Add(`{"gen":{"bits":-1}}`)
	f.Add(`{"gen":{"units":["warp-core"]}}`)
	f.Add(`{"priority":101,"gen":{}}`)
	f.Add(`{"timeout_seconds":-3,"gen":{}}`)
	f.Add(`{"options":{"mode":"psychic"},"gen":{}}`)
	f.Add(`{"gen":{}} trailing`)
	f.Add(`[1,2,3]`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, data string) {
		spec, err := DecodeSpec(strings.NewReader(data))
		if err != nil {
			if !errors.Is(err, pipeline.ErrMalformedInput) {
				t.Errorf("rejection without malformed-input sentinel: %v", err)
			}
			return
		}
		// Accepted specs must satisfy the invariants admission relies on.
		if (spec.Gen == nil) == (spec.Aux == nil) {
			t.Error("accepted spec without exactly one of gen/aux")
		}
		if spec.Priority < -maxPriorityMagnitude || spec.Priority > maxPriorityMagnitude {
			t.Errorf("accepted out-of-range priority %d", spec.Priority)
		}
		if EstimateCells(spec) < 0 {
			t.Errorf("negative cost estimate %d", EstimateCells(spec))
		}
	})
}

// FuzzBuildDesignAux drives the uploaded-aux path end to end: fuzzed nodes
// and nets contents (the hardened bookshelf surface) must either build a
// validated design or fail with the malformed-input sentinel — never panic,
// never hand the solver an inconsistent netlist.
func FuzzBuildDesignAux(f *testing.F) {
	nodes, nets, pl, scl := fuzzDesign(f)
	f.Add(nodes, nets)
	f.Add("a 2 10\nb 3 10\n", "NetDegree : 2 n\na O : 0 0\nb I : 0 0\n")
	f.Add("a 2 10\n", "NetDegree : 2 n\na O : 0 0\nghost I : 0 0\n")
	f.Add("a NaN 10\n", "")
	f.Add("NumNodes : 99999999999\na 1 1\n", "NetDegree : -1 n\n")
	f.Fuzz(func(t *testing.T, nodesData, netsData string) {
		spec := &JobSpec{
			Name: "fuzz",
			Aux:  &AuxBundle{Nodes: nodesData, Nets: netsData, Pl: pl, Scl: scl},
		}
		if err := spec.Validate(); err != nil {
			if !errors.Is(err, pipeline.ErrMalformedInput) {
				t.Errorf("validate: error without sentinel: %v", err)
			}
			return
		}
		d, err := BuildDesign(spec)
		if err != nil {
			if !errors.Is(err, pipeline.ErrMalformedInput) {
				t.Errorf("build: error without sentinel: %v", err)
			}
			return
		}
		// An accepted design must be internally consistent and placeable.
		if err := d.Netlist.Validate(); err != nil {
			t.Errorf("accepted design fails validation: %v", err)
		}
		if d.Core == nil {
			t.Error("accepted design has no core region")
		}
	})
}
