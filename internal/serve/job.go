package serve

import (
	"context"

	"repro/internal/obs"
)

// State is a job's lifecycle position. Transitions:
//
//	queued → running → done | failed
//	queued → canceled                      (client cancel while queued)
//	running → canceled                     (client cancel mid-run)
//	running → queued                       (crash requeue or drain checkpoint)
type State string

// Job states.
const (
	// StateQueued means the job is admitted and waiting for workers.
	StateQueued State = "queued"
	// StateRunning means an attempt is executing.
	StateRunning State = "running"
	// StateDone means the job finished and its artifacts are served.
	StateDone State = "done"
	// StateFailed means the job ended in terminal failure.
	StateFailed State = "failed"
	// StateCanceled means a client canceled the job.
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is the daemon's record of one placement. Mutable fields are guarded by
// the server's mutex; the events broadcaster and the cancel func are set
// when the job starts running.
type Job struct {
	// ID is the stable job identifier ("j000042").
	ID string
	// Seq is the submission sequence number; it breaks priority ties FIFO.
	Seq uint64
	// Spec is the submitted job description.
	Spec *JobSpec

	// State is the current lifecycle position.
	State State
	// Attempt counts execution attempts (retries and requeues included).
	Attempt int
	// Retries counts attempts that ended in a retryable failure. Option
	// damping keys on this, never on Attempt: a crash-requeued job must
	// re-run with identical options to stay bit-identical.
	Retries int
	// Workers is the worker grant of the current or last attempt.
	Workers int
	// Exit is the pipeline taxonomy class once terminal.
	Exit string
	// Error is the failure detail once terminal (or the last retry's error).
	Error string
	// HPWL is the final wirelength once done.
	HPWL float64
	// Partial marks a best-iterate checkpoint result.
	Partial bool
	// Requeued marks a job recovered from the journal after a crash or
	// drain; its re-execution is safe because placement is deterministic.
	Requeued bool

	// sw times the job from admission (or requeue at daemon boot) to its
	// terminal state, feeding the end-to-end latency histogram. The zero
	// value means "never admitted by this process" and is not observed.
	sw obs.Stopwatch

	// cancel interrupts the running attempt (nil unless running).
	cancel context.CancelFunc
	// events fans the per-iteration telemetry out to SSE watchers; non-nil
	// from first run to terminal state.
	events *obs.LineBroadcaster
	// stateCh closes and is replaced on every state change, waking SSE
	// watchers polling for transitions.
	stateCh chan struct{}
}

// View is the JSON shape of a job in API responses.
type View struct {
	// ID is the job identifier.
	ID string `json:"id"`
	// Name echoes the spec's design name.
	Name string `json:"name,omitempty"`
	// State is the lifecycle position.
	State State `json:"state"`
	// Priority echoes the spec.
	Priority int `json:"priority,omitempty"`
	// Attempt counts execution attempts so far.
	Attempt int `json:"attempt,omitempty"`
	// Workers is the current/last worker grant.
	Workers int `json:"workers,omitempty"`
	// Exit is the taxonomy class once terminal.
	Exit string `json:"exit,omitempty"`
	// Error is the failure detail once terminal.
	Error string `json:"error,omitempty"`
	// HPWL is the final wirelength once done.
	HPWL float64 `json:"hpwl,omitempty"`
	// Partial marks a best-iterate checkpoint result.
	Partial bool `json:"partial,omitempty"`
	// Requeued marks recovery from the journal.
	Requeued bool `json:"requeued,omitempty"`
}

// view snapshots the job for the API. Caller holds the server mutex.
func (j *Job) view() View {
	name := ""
	if j.Spec != nil {
		name = j.Spec.Name
	}
	return View{
		ID: j.ID, Name: name, State: j.State, Priority: j.priority(),
		Attempt: j.Attempt, Workers: j.Workers, Exit: j.Exit, Error: j.Error,
		HPWL: j.HPWL, Partial: j.Partial, Requeued: j.Requeued,
	}
}

// priority returns the spec priority (0 for a nil spec).
func (j *Job) priority() int {
	if j.Spec == nil {
		return 0
	}
	return j.Spec.Priority
}

// notifyState closes the current state channel (waking watchers) and arms a
// fresh one. Caller holds the server mutex.
func (j *Job) notifyState() {
	if j.stateCh != nil {
		close(j.stateCh)
	}
	j.stateCh = make(chan struct{})
}

// jobQueue is the priority queue of queued jobs: higher priority first,
// submission order within a priority. It implements container/heap.
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(a, b int) bool {
	if pa, pb := q[a].priority(), q[b].priority(); pa != pb {
		return pa > pb
	}
	return q[a].Seq < q[b].Seq
}
func (q jobQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }

// Push appends x (container/heap contract).
func (q *jobQueue) Push(x any) { *q = append(*q, x.(*Job)) }

// Pop removes and returns the last element (container/heap contract).
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

// remove deletes job from the queue slice if present, reporting whether it
// was found. Caller re-heapifies.
func (q *jobQueue) remove(job *Job) bool {
	for i, j := range *q {
		if j == job {
			old := *q
			old[i] = old[len(old)-1]
			old[len(old)-1] = nil
			*q = old[:len(old)-1]
			return true
		}
	}
	return false
}

// waitClosed blocks until ch closes or ctx expires; used by SSE watchers.
func waitClosed(ctx context.Context, ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	case <-ctx.Done():
		return false
	}
}
