package serve

import (
	"bufio"
	"container/heap"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/obs"
	obsmetrics "repro/internal/obs/metrics"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/place/global"

	"sync"
)

// Config tunes the daemon. The zero value of every field selects a sane
// default, so tests can construct servers tersely.
type Config struct {
	// Dir is the data directory: journal.jsonl plus jobs/<id>/ artifact
	// directories. Required.
	Dir string
	// Workers is the shared worker budget across all concurrent placements
	// (0 = all cores). Each running job holds a slice of it.
	Workers int
	// QueueDepth caps the number of queued jobs before admission control
	// answers 429 (0 = 32).
	QueueDepth int
	// MaxCells caps the admission cost estimate per job (0 = 1,000,000).
	MaxCells int
	// DefaultTimeout bounds jobs that do not set timeout_seconds
	// (0 = 10 minutes).
	DefaultTimeout time.Duration
	// MaxRetries bounds retries of retryable failures per job (0 = 2;
	// negative = no retries).
	MaxRetries int
	// Heartbeat is the SSE heartbeat interval (0 = 10s).
	Heartbeat time.Duration
	// MaxBody caps a request body (0 = 64 MiB).
	MaxBody int64
	// Log receives daemon-level logging and counters; nil logs nothing.
	Log *obs.Recorder
	// Metrics is the fleet metrics registry served at /metrics; nil disables
	// metrics at zero cost (every instrument becomes an inert no-op).
	Metrics *obsmetrics.Registry
}

// fillDefaults resolves the zero values.
func (c *Config) fillDefaults() {
	if c.QueueDepth == 0 {
		c.QueueDepth = 32
	}
	if c.MaxCells == 0 {
		c.MaxCells = 1_000_000
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 10 * time.Minute
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 10 * time.Second
	}
	if c.MaxBody == 0 {
		c.MaxBody = 64 << 20
	}
}

// Server is the placement-as-a-service daemon: journal, scheduler and HTTP
// surface over the core placement pipeline.
type Server struct {
	cfg     Config
	log     *obs.Recorder
	journal *Journal
	budget  *par.Budget
	metrics *serverMetrics

	mu       sync.Mutex
	jobs     map[string]*Job
	queue    jobQueue
	nextSeq  uint64
	draining bool
	// drainKill marks that the drain deadline expired and running jobs were
	// told to checkpoint; their attempts journal EvInterrupt, not EvFail.
	drainKill bool
	running   int

	queueCh    chan struct{} // cap 1; signaled when the queue gains a job
	rootCtx    context.Context
	rootCancel context.CancelFunc

	startOnce  sync.Once
	dispatched chan struct{} // closed when the dispatcher exits
	runners    sync.WaitGroup
}

// New opens the data directory, replays the journal, requeues interrupted
// jobs, and returns a server ready to Start. Completed jobs keep serving
// their journaled results and artifacts.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	cfg.fillDefaults()
	journal, recs, err := OpenJournal(cfg.Dir)
	if err != nil {
		return nil, err
	}
	rootCtx, rootCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		log:        cfg.Log,
		journal:    journal,
		budget:     par.NewBudget(cfg.Workers),
		metrics:    newServerMetrics(cfg.Metrics),
		jobs:       make(map[string]*Job),
		queueCh:    make(chan struct{}, 1),
		rootCtx:    rootCtx,
		rootCancel: rootCancel,
		dispatched: make(chan struct{}),
	}
	// Observation wiring: the budget reports lease waits and occupancy, the
	// journal reports appends and fsync latency. With a nil registry every
	// callback lands on inert instruments.
	s.metrics.budgetWorkers.Set(int64(s.budget.Total()))
	s.budget.SetHooks(par.BudgetHooks{
		WaitSeconds: func(sec float64) { s.metrics.leaseWait.Observe(sec) },
		Occupancy: func(used, hw int) {
			s.metrics.budgetInUse.Set(int64(used))
			s.metrics.budgetHighWater.Set(int64(hw))
		},
	})
	journal.Instrument(func(fsyncSec float64) {
		s.metrics.journalAppends.Inc()
		s.metrics.journalFsync.Observe(fsyncSec)
	})
	if err := s.replay(recs); err != nil {
		journal.Close()
		rootCancel()
		return nil, err
	}
	s.mu.Lock()
	s.syncGauges()
	s.mu.Unlock()
	return s, nil
}

// syncGauges refreshes the queue-depth and running-jobs gauges from the
// scheduler state. Caller holds the mutex; call after every mutation of the
// queue or the running count.
func (s *Server) syncGauges() {
	s.metrics.queueDepth.Set(int64(s.queue.Len()))
	s.metrics.jobsRunning.Set(int64(s.running))
}

// replay folds journal records into the job table and requeues every job a
// previous daemon instance left mid-flight.
func (s *Server) replay(recs []Record) error {
	for _, rec := range recs {
		switch rec.Ev {
		case EvSubmit:
			if rec.Spec == nil {
				return fmt.Errorf("serve: journal submit record for %s has no spec", rec.Job)
			}
			s.jobs[rec.Job] = &Job{
				ID: rec.Job, Seq: rec.Seq, Spec: rec.Spec,
				State: StateQueued, stateCh: make(chan struct{}),
			}
			if rec.Seq >= s.nextSeq {
				s.nextSeq = rec.Seq + 1
			}
		case EvStart:
			if j := s.jobs[rec.Job]; j != nil {
				j.State = StateRunning
				j.Attempt = rec.Attempt
				j.Workers = rec.Workers
			}
		case EvRetry:
			if j := s.jobs[rec.Job]; j != nil {
				j.State = StateQueued
				j.Retries++
				j.Error = rec.Error
			}
		case EvDone:
			if j := s.jobs[rec.Job]; j != nil {
				j.State = StateDone
				j.Exit = rec.Exit
				j.HPWL = rec.HPWL
				j.Partial = rec.Partial
			}
		case EvFail:
			if j := s.jobs[rec.Job]; j != nil {
				j.State = StateFailed
				j.Exit = rec.Exit
				j.Error = rec.Error
			}
		case EvCancel:
			if j := s.jobs[rec.Job]; j != nil {
				j.State = StateCanceled
				j.Exit = rec.Exit
			}
		case EvInterrupt:
			if j := s.jobs[rec.Job]; j != nil {
				j.State = StateQueued
				j.Partial = rec.Partial
			}
		case EvRequeue, EvDrain:
			// Informational; job state is carried by the records above.
		}
	}
	// Jobs still marked running were interrupted by a crash (no terminal
	// record); jobs marked queued never got to run. Both go back on the
	// queue — bit-identical re-execution makes this safe.
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := s.jobs[id]
		if j.State.Terminal() {
			continue
		}
		interrupted := j.State == StateRunning
		j.State = StateQueued
		j.Requeued = true
		// The requeued job's latency clock restarts at daemon boot: the
		// duration histogram always measures within one process lifetime.
		j.sw = obs.StartStopwatch()
		heap.Push(&s.queue, j)
		s.metrics.jobState("queued")
		s.metrics.jobState("requeued")
		if interrupted {
			if err := s.journal.Append(Record{Ev: EvRequeue, Job: j.ID, Attempt: j.Attempt}); err != nil {
				return err
			}
			s.log.Logf(obs.Info, "serve", "job %s interrupted mid-attempt %d; requeued", j.ID, j.Attempt)
			s.log.Add("serve/requeued", 1)
		}
	}
	return nil
}

// Start launches the dispatcher. Idempotent.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		go s.dispatch()
	})
}

// dispatch pops queued jobs in priority order, acquires a worker grant from
// the shared budget (blocking while placements hold it all), and hands each
// job to a runner goroutine.
func (s *Server) dispatch() {
	defer close(s.dispatched)
	for {
		job := s.popQueued()
		if job == nil {
			return // draining or shut down
		}
		want := 0
		if job.Spec != nil {
			want = job.Spec.Options.Workers
		}
		grant, err := s.budget.Acquire(s.rootCtx, want)
		if err != nil {
			// Shutdown while waiting for workers: the job stays queued in
			// the journal and the next instance requeues it.
			return
		}
		s.mu.Lock()
		if job.State != StateQueued || s.draining {
			// Canceled while waiting, or drain began: do not start.
			s.mu.Unlock()
			s.budget.Release(grant)
			continue
		}
		s.running++
		s.runners.Add(1)
		s.syncGauges()
		s.mu.Unlock()
		go s.runJob(job, grant)
	}
}

// popQueued blocks until a queued job is available (nil when draining or
// shut down).
func (s *Server) popQueued() *Job {
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return nil
		}
		if s.queue.Len() > 0 {
			job := heap.Pop(&s.queue).(*Job)
			s.syncGauges()
			s.mu.Unlock()
			return job
		}
		s.mu.Unlock()
		select {
		case <-s.queueCh:
		case <-s.rootCtx.Done():
			return nil
		}
	}
}

// Submit admits a job: validates nothing (the HTTP layer decoded and
// validated the spec), applies admission control, journals the submit record
// and queues the job. Returns the job view, or an admission error:
// ErrDraining or ErrOverloaded.
func (s *Server) Submit(spec *JobSpec) (View, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.admissionRejects.With("draining").Inc()
		return View{}, ErrDraining
	}
	if s.queue.Len() >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.log.Add("serve/rejected_queue_full", 1)
		s.metrics.admissionRejects.With("queue_full").Inc()
		return View{}, fmt.Errorf("%w: queue depth %d reached", ErrOverloaded, s.cfg.QueueDepth)
	}
	if cost := EstimateCells(spec); cost > s.cfg.MaxCells {
		s.mu.Unlock()
		s.log.Add("serve/rejected_too_large", 1)
		s.metrics.admissionRejects.With("too_large").Inc()
		return View{}, fmt.Errorf("%w: estimated %d cells exceed the %d cap",
			ErrOverloaded, cost, s.cfg.MaxCells)
	}
	seq := s.nextSeq
	s.nextSeq++
	job := &Job{
		ID:   fmt.Sprintf("j%06d", seq),
		Seq:  seq,
		Spec: spec,
		// State set below, after the journal accepts the submit record.
		State:   StateQueued,
		stateCh: make(chan struct{}),
		sw:      obs.StartStopwatch(),
	}
	s.mu.Unlock()

	// Journal before queueing: a job the scheduler can see must already be
	// recoverable from disk.
	if err := s.journal.Append(Record{Ev: EvSubmit, Job: job.ID, Seq: seq, Spec: spec}); err != nil {
		return View{}, err
	}

	s.mu.Lock()
	s.jobs[job.ID] = job
	heap.Push(&s.queue, job)
	v := job.view()
	s.metrics.jobState("queued")
	s.syncGauges()
	s.mu.Unlock()
	signal(s.queueCh)
	s.log.Add("serve/submitted", 1)
	s.log.Logf(obs.Info, "serve", "job %s admitted (priority %d, ~%d cells)",
		job.ID, spec.Priority, EstimateCells(spec))
	return v, nil
}

// Admission errors. The HTTP layer maps ErrDraining to 503 and
// ErrOverloaded to 429.
var (
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("draining: not admitting new jobs")
	// ErrOverloaded rejects submissions the admission controller bounced.
	ErrOverloaded = errors.New("overloaded")
)

// Cancel cancels a job by id: queued jobs leave the queue immediately,
// running jobs get their context canceled and keep their best iterate.
func (s *Server) Cancel(id string) (View, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return View{}, ErrNoSuchJob
	}
	if job.State.Terminal() {
		v := job.view()
		s.mu.Unlock()
		return v, nil
	}
	wasQueued := job.State == StateQueued
	job.State = StateCanceled
	job.Exit = "canceled"
	job.notifyState()
	if wasQueued {
		if s.queue.remove(job) {
			heap.Init(&s.queue)
		}
		// Running jobs are counted terminal when their runner unwinds through
		// finishJob; queued jobs have no runner, so count here.
		s.countTerminal(job)
		s.syncGauges()
	}
	cancel := job.cancel
	v := job.view()
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if wasQueued {
		// Running jobs journal their cancel when the runner unwinds; queued
		// jobs have no runner, so record it here.
		if err := s.journal.Append(Record{Ev: EvCancel, Job: id, Exit: "canceled"}); err != nil {
			return v, err
		}
	}
	s.log.Add("serve/canceled", 1)
	return v, nil
}

// ErrNoSuchJob reports an unknown job id (HTTP 404).
var ErrNoSuchJob = errors.New("no such job")

// Job returns one job's view.
func (s *Server) Job(id string) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return View{}, ErrNoSuchJob
	}
	return job.view(), nil
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []View {
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]View, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view())
	}
	sort.Slice(views, func(a, b int) bool { return views[a].ID < views[b].ID })
	return views
}

// Stats is the daemon health snapshot served at /stats.
type Stats struct {
	// Queued is the current queue depth.
	Queued int `json:"queued"`
	// Running is the number of executing jobs.
	Running int `json:"running"`
	// WorkersTotal is the shared budget size.
	WorkersTotal int `json:"workers_total"`
	// WorkersInUse is the number of granted workers right now.
	WorkersInUse int `json:"workers_in_use"`
	// Draining reports graceful shutdown in progress.
	Draining bool `json:"draining"`
	// Jobs is the total job count, terminal jobs included.
	Jobs int `json:"jobs"`
}

// Stats snapshots the scheduler.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Queued: s.queue.Len(), Running: s.running,
		WorkersTotal: s.budget.Total(), WorkersInUse: s.budget.InUse(),
		Draining: s.draining, Jobs: len(s.jobs),
	}
}

// JobDir returns the artifact directory of a job id.
func (s *Server) JobDir(id string) string {
	return filepath.Join(s.cfg.Dir, "jobs", id)
}

// Drain performs graceful shutdown: stop admitting, let running jobs finish,
// and when ctx expires before they do, cancel them so they checkpoint their
// best iterate and journal an interrupt record for the next instance to
// requeue. Returns the number of jobs that had to checkpoint. The journal is
// closed; the server cannot be reused.
func (s *Server) Drain(ctx context.Context) (checkpointed int, err error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return 0, fmt.Errorf("serve: already draining")
	}
	s.draining = true
	s.mu.Unlock()
	s.log.Logf(obs.Info, "serve", "drain: admission stopped")
	signal(s.queueCh) // wake the dispatcher so it observes draining

	finished := make(chan struct{})
	go func() {
		s.runners.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		// Deadline: tell every running job to checkpoint now.
		s.mu.Lock()
		s.drainKill = true
		var cancels []context.CancelFunc
		//placelint:ignore maporder collecting cancel funcs; invocation order is irrelevant
		for _, j := range s.jobs {
			if j.State == StateRunning && j.cancel != nil {
				cancels = append(cancels, j.cancel)
			}
		}
		s.mu.Unlock()
		for _, c := range cancels {
			c()
		}
		s.runners.Wait()
	}
	// Stop the dispatcher (it may be idle-waiting or blocked in Acquire).
	s.rootCancel()
	<-s.dispatchedOrNever()

	s.mu.Lock()
	checkpointed = s.checkpointedCount()
	s.mu.Unlock()
	rec := Record{Ev: EvDrain, Checkpointed: checkpointed}
	if jerr := s.journal.Append(rec); jerr != nil && err == nil {
		err = jerr
	}
	if cerr := s.journal.Close(); cerr != nil && err == nil {
		err = cerr
	}
	s.log.Logf(obs.Info, "serve", "drain complete: %d jobs checkpointed", checkpointed)
	return checkpointed, err
}

// dispatchedOrNever returns the dispatcher-exit channel. When Start was
// never called (the sync.Once is still unfired) it closes the channel itself,
// so waiting on it cannot hang.
func (s *Server) dispatchedOrNever() <-chan struct{} {
	s.startOnce.Do(func() { close(s.dispatched) })
	return s.dispatched
}

// checkpointedCount counts jobs parked back in the queued state by a drain
// kill. Caller holds the mutex.
func (s *Server) checkpointedCount() int {
	n := 0
	//placelint:ignore maporder integer count is order independent
	for _, j := range s.jobs {
		if j.State == StateQueued && j.Requeued {
			n++
		}
	}
	return n
}

// Close shuts the server down immediately (tests): cancel everything, wait
// for runners, close the journal.
func (s *Server) Close() error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	s.drainKill = true
	var cancels []context.CancelFunc
	//placelint:ignore maporder collecting cancel funcs; invocation order is irrelevant
	for _, j := range s.jobs {
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	s.rootCancel()
	s.runners.Wait()
	<-s.dispatchedOrNever()
	if alreadyDraining {
		return nil // Drain already owns the journal shutdown
	}
	return s.journal.Close()
}

// signal performs a nonblocking send on a capacity-1 wake channel.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// runJob executes one job to a terminal state (or a drain checkpoint),
// retrying retryable failures with damped options. It owns `grant` workers
// of the shared budget for its whole duration, releasing them at the end.
func (s *Server) runJob(job *Job, grant int) {
	defer s.runners.Done()
	defer s.budget.Release(grant)
	defer func() {
		s.mu.Lock()
		s.running--
		s.syncGauges()
		s.mu.Unlock()
	}()

	for {
		retry, done := s.runAttempt(job, grant)
		if done {
			return
		}
		if !retry {
			return
		}
	}
}

// runAttempt executes one attempt. It returns retry=true when the job
// should run again (after this call journaled the retry record and slept
// the backoff), and done=true when the job reached a terminal state.
func (s *Server) runAttempt(job *Job, grant int) (retry, done bool) {
	jobCtx, cancel := context.WithCancel(context.Background())
	defer cancel()

	s.mu.Lock()
	if job.State != StateQueued {
		// Canceled between dispatch and start.
		s.mu.Unlock()
		return false, true
	}
	job.State = StateRunning
	job.Attempt++
	job.Workers = grant
	job.cancel = cancel
	if job.events == nil {
		job.events = s.newJobBroadcaster()
	}
	attempt := job.Attempt
	retries := job.Retries
	spec := job.Spec
	job.notifyState()
	s.metrics.jobState("running")
	s.mu.Unlock()

	if err := s.journal.Append(Record{Ev: EvStart, Job: job.ID, Attempt: attempt, Workers: grant}); err != nil {
		s.failJob(job, "error", fmt.Sprintf("journal: %v", err))
		return false, true
	}
	s.log.Logf(obs.Info, "serve", "job %s attempt %d starting on %d workers", job.ID, attempt, grant)

	result := s.place(jobCtx, job, spec, grant, retries)

	// The crash window a SIGKILL can always hit: solve finished, terminal
	// record not yet journaled. Tests arm this site to prove the journal
	// replays the job to an identical placement.
	if faultinject.Hit(faultinject.SiteServeCrashBeforeCommit) {
		return false, true
	}

	s.mu.Lock()
	canceled := job.State == StateCanceled
	drainKilled := s.drainKill && jobCtx.Err() != nil && !canceled
	s.mu.Unlock()

	switch {
	case canceled:
		s.journal.Append(Record{Ev: EvCancel, Job: job.ID, Attempt: attempt, Exit: "canceled"})
		s.finishJob(job, StateCanceled, "canceled", result)
		return false, true

	case drainKilled:
		// Checkpointed by the drain deadline: journal the interrupt so the
		// next daemon instance requeues the job.
		s.journal.Append(Record{Ev: EvInterrupt, Job: job.ID, Attempt: attempt,
			Error: result.errString(), Partial: result.partial})
		s.mu.Lock()
		job.State = StateQueued
		job.Requeued = true
		job.Partial = result.partial
		job.notifyState()
		s.metrics.jobState("queued")
		s.metrics.jobState("requeued")
		s.mu.Unlock()
		s.log.Add("serve/checkpointed", 1)
		return false, true

	case result.err == nil || result.usable:
		s.journal.Append(Record{Ev: EvDone, Job: job.ID, Attempt: attempt,
			Exit: result.class(), HPWL: result.hpwl, Partial: result.partial})
		s.finishJob(job, StateDone, result.class(), result)
		s.log.Add("serve/done", 1)
		return false, true

	case pipeline.Retryable(result.err) && retries < s.cfg.MaxRetries:
		s.journal.Append(Record{Ev: EvRetry, Job: job.ID, Attempt: attempt,
			Exit: result.class(), Error: result.errString()})
		s.mu.Lock()
		job.Retries++
		job.State = StateQueued
		job.Error = result.errString()
		job.notifyState()
		nRetries := job.Retries
		s.metrics.jobState("queued")
		s.mu.Unlock()
		s.metrics.retries.With(result.class()).Inc()
		s.log.Add("serve/retries", 1)
		s.log.Logf(obs.Warn, "serve", "job %s attempt %d failed (%s); retrying with damped options",
			job.ID, attempt, result.class())
		if !s.backoff(jobCtx, nRetries) {
			// Canceled or drained during backoff; next loop settles state.
			s.mu.Lock()
			stillQueued := job.State == StateQueued
			s.mu.Unlock()
			if stillQueued {
				s.journal.Append(Record{Ev: EvInterrupt, Job: job.ID, Attempt: attempt})
				return false, true
			}
		}
		return true, false

	default:
		s.journal.Append(Record{Ev: EvFail, Job: job.ID, Attempt: attempt,
			Exit: result.class(), Error: result.errString()})
		s.finishJob(job, StateFailed, result.class(), result)
		s.log.Add("serve/failed", 1)
		return false, true
	}
}

// backoff sleeps the damped-retry delay (100ms doubling per retry, capped at
// 2s), returning false when ctx or the server root context expired first.
func (s *Server) backoff(ctx context.Context, retries int) bool {
	d := 100 * time.Millisecond << uint(retries-1)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-s.rootCtx.Done():
		return false
	}
}

// finishJob moves job to a terminal state and closes its event stream.
func (s *Server) finishJob(job *Job, state State, exit string, result attemptResult) {
	s.mu.Lock()
	job.State = state
	job.Exit = exit
	job.Error = result.errString()
	job.HPWL = result.hpwl
	job.Partial = result.partial
	job.notifyState()
	s.countTerminal(job)
	events := job.events
	s.mu.Unlock()
	if events != nil {
		events.Close()
	}
}

// countTerminal records one job reaching a terminal state: the transition
// counter plus the end-to-end latency histogram (skipped for jobs whose
// admission clock never started, e.g. journal-replayed terminal jobs).
// Caller holds the mutex.
func (s *Server) countTerminal(job *Job) {
	s.metrics.jobState(string(job.State))
	if job.sw.Started() {
		s.metrics.jobDuration.Observe(job.sw.Seconds())
	}
}

// newJobBroadcaster builds a job's telemetry broadcaster with its drops wired
// to the fleet dropped-lines counter.
func (s *Server) newJobBroadcaster() *obs.LineBroadcaster {
	b := obs.NewLineBroadcaster()
	b.SetDropHook(func() { s.metrics.sseDropped.Inc() })
	return b
}

// failJob is finishJob for infrastructure failures that have no attempt
// result.
func (s *Server) failJob(job *Job, exit, msg string) {
	s.finishJob(job, StateFailed, exit, attemptResult{err: errors.New(msg)})
}

// attemptResult carries one attempt's outcome between place and the journal
// bookkeeping.
type attemptResult struct {
	err     error
	hpwl    float64
	partial bool
	// usable marks a failed attempt that still produced a legal best-iterate
	// placement (deadline checkpoints); the job counts as done-partial.
	usable bool
}

// class maps the attempt error to its taxonomy class.
func (r attemptResult) class() string { return pipeline.Classify(r.err) }

// errString renders the attempt error ("" when nil).
func (r attemptResult) errString() string {
	if r.err == nil {
		return ""
	}
	return r.err.Error()
}

// place runs the placement flow for one attempt: build the design from the
// journaled spec, wire a per-job recorder whose JSONL trace lands both in
// the artifact directory and on the SSE broadcaster, run core.PlaceCtx under
// the job deadline, and write the run report and placement artifacts.
func (s *Server) place(ctx context.Context, job *Job, spec *JobSpec, workers, retries int) attemptResult {
	d, err := BuildDesign(spec)
	if err != nil {
		return attemptResult{err: err}
	}
	chip, err := coreOf(d)
	if err != nil {
		return attemptResult{err: err}
	}

	dir := s.JobDir(job.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return attemptResult{err: fmt.Errorf("serve: job dir: %w", err)}
	}
	if err := writeSpecFile(filepath.Join(dir, "spec.json"), spec); err != nil {
		return attemptResult{err: err}
	}

	// Per-job recorder: collected counters feed the run report; the JSONL
	// trace tees into trace.jsonl and the SSE broadcaster. The span hook
	// bridges per-stage wall times into the fleet stage histograms.
	rec := obs.New()
	rec.Collect()
	rec.SetSpanHook(s.metrics.observeStage)
	traceFile, err := os.Create(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		return attemptResult{err: fmt.Errorf("serve: trace file: %w", err)}
	}
	bw := bufio.NewWriter(traceFile)
	rec.SetTrace(io.MultiWriter(bw, job.events))
	defer func() {
		bw.Flush()
		traceFile.Close()
	}()

	opt := buildOptions(spec, workers, retries)
	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutSeconds > 0 {
		timeout = time.Duration(spec.TimeoutSeconds * float64(time.Second))
	}
	runCtx, cancel := pipeline.WithBudget(obs.NewContext(ctx, rec), timeout)
	defer cancel()

	res, runErr := core.PlaceCtx(runCtx, d.Netlist, chip, d.Placement, opt)
	out := attemptResult{err: runErr}
	if res == nil {
		return out
	}
	out.partial = res.Partial
	out.hpwl = res.HPWLFinal
	// A legal checkpointed placement is a servable result even when the run
	// erred at its deadline.
	out.usable = runErr != nil && errors.Is(runErr, pipeline.ErrTimeout) && res.LegalityChecked

	var mrep *metrics.Report
	if res.LegalityChecked {
		r := metrics.Evaluate(d.Netlist, res.Placement, chip,
			metrics.Options{Obs: rec, Workers: workers})
		mrep = &r
	}
	// Fold this attempt's solver health counters into the fleet registry
	// before snapshotting, so the report's metrics_snapshot includes the work
	// it describes.
	s.metrics.foldRecorder(rec)
	snapshot := s.cfg.Metrics.Snapshot()
	if err := writeJobReport(filepath.Join(dir, "report.json"), d.Netlist.Name, opt.Mode, res, mrep, runErr, rec, snapshot); err != nil {
		s.log.Logf(obs.Warn, "serve", "job %s: %v", job.ID, err)
	}
	if res.LegalityChecked {
		if err := writePlacementFile(filepath.Join(dir, "out.pl"), d, res); err != nil {
			s.log.Logf(obs.Warn, "serve", "job %s: %v", job.ID, err)
		}
	}
	return out
}

// buildOptions maps the spec (plus the scheduler's worker grant and the
// retry damping level) onto core.Options. Damping is keyed on the retry
// count, never the attempt number: a crash-requeued job must re-run with
// identical options so its re-execution is bit-identical, while a
// divergence retry runs a gentler schedule (fallback degradation, halved
// inner iterations per retry).
func buildOptions(spec *JobSpec, workers, retries int) core.Options {
	o := spec.Options
	opt := core.Options{
		Timeout:    0, // the job deadline context already bounds the run
		Multilevel: o.Multilevel,
		Global: global.Options{
			WLModel:       o.Model,
			MaxOuterIters: o.Outer,
			InnerIters:    o.Inner,
			Workers:       workers,
		},
	}
	if opt.Global.WLModel == "" {
		opt.Global.WLModel = "wa"
	}
	if opt.Global.MaxOuterIters == 0 {
		opt.Global.MaxOuterIters = 24
	}
	if opt.Global.InnerIters == 0 {
		opt.Global.InnerIters = 50
	}
	if o.Mode != "baseline" {
		opt.Mode = core.StructureAware
	}
	if o.OnDegrade == "fail" {
		opt.OnDegrade = core.DegradeFail
	}
	for r := 0; r < retries; r++ {
		// Damped options per retry: a solve that diverged gets a gentler
		// (shorter) inner schedule, and degradation switches to fallback so
		// degenerate groups stop being fatal.
		opt.Global.InnerIters = max(10, opt.Global.InnerIters/2)
		opt.OnDegrade = core.DegradeFallback
	}
	return opt
}
