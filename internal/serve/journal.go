package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
)

// JournalSchema identifies the journal's JSONL layout. The first line of
// every journal file is a record with Ev "schema" carrying this string.
const JournalSchema = "dpplaced-journal/v1"

// Journal event kinds, in the order a job can emit them.
const (
	// EvSchema is the file header record.
	EvSchema = "schema"
	// EvSubmit admits a job: carries the full spec, the job id and the
	// submission sequence number. Written before the job enters the queue.
	EvSubmit = "submit"
	// EvStart begins an attempt: carries the attempt number and the worker
	// grant. A start without a matching terminal record means the daemon
	// died mid-attempt; replay requeues the job.
	EvStart = "start"
	// EvRetry ends a failed attempt that will be retried with damped
	// options: carries the attempt, the error and its taxonomy class.
	EvRetry = "retry"
	// EvDone ends a job successfully: carries the final HPWL and whether the
	// result is a deadline-checkpointed partial.
	EvDone = "done"
	// EvFail ends a job in terminal failure: carries the error and class.
	EvFail = "fail"
	// EvCancel ends a job by client request.
	EvCancel = "cancel"
	// EvInterrupt ends an attempt because the daemon drained before it
	// finished: the job checkpointed its best iterate and must be requeued
	// by the next daemon instance.
	EvInterrupt = "interrupt"
	// EvRequeue marks a replayed job being put back on the queue at startup.
	EvRequeue = "requeue"
	// EvDrain marks a graceful shutdown of the daemon itself.
	EvDrain = "drain"
)

// Record is one journal line. Fields are a union across event kinds; TMs is
// wall-clock milliseconds (informational only — replay never depends on it).
type Record struct {
	// Ev discriminates the record kind (the Ev* constants).
	Ev string `json:"ev"`
	// Schema is set on EvSchema records only.
	Schema string `json:"schema,omitempty"`
	// TMs is the wall-clock timestamp in Unix milliseconds.
	TMs int64 `json:"t_ms,omitempty"`
	// Job is the job id (absent on schema/drain records).
	Job string `json:"job,omitempty"`
	// Seq is the submission sequence number (EvSubmit).
	Seq uint64 `json:"seq,omitempty"`
	// Spec is the submitted job spec (EvSubmit).
	Spec *JobSpec `json:"spec,omitempty"`
	// Attempt numbers the execution attempt, starting at 1 (EvStart,
	// EvRetry, EvDone, EvFail, EvInterrupt).
	Attempt int `json:"attempt,omitempty"`
	// Workers is the granted worker count (EvStart).
	Workers int `json:"workers,omitempty"`
	// Exit is the pipeline taxonomy class (EvRetry, EvDone, EvFail).
	Exit string `json:"exit,omitempty"`
	// Error is the failure detail (EvRetry, EvFail, EvInterrupt).
	Error string `json:"error,omitempty"`
	// HPWL is the final half-perimeter wirelength (EvDone).
	HPWL float64 `json:"hpwl,omitempty"`
	// Partial marks a best-iterate checkpoint result (EvDone, EvInterrupt).
	Partial bool `json:"partial,omitempty"`
	// Checkpointed counts jobs that checkpointed instead of finishing
	// (EvDrain).
	Checkpointed int `json:"checkpointed,omitempty"`
}

// Journal is the append-only write-ahead log of the daemon. Every Append is
// written and fsynced before the state transition it describes takes effect,
// which is the whole crash-safety story: the on-disk journal is always at
// least as current as the daemon's in-memory state.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	onAppend func(fsyncSeconds float64)
}

// Instrument registers fn to be called after every successful Append with
// the fsync's wall time in seconds. fn runs outside the journal lock and
// must be safe for concurrent calls; nil clears the hook.
func (j *Journal) Instrument(fn func(fsyncSeconds float64)) {
	j.mu.Lock()
	j.onAppend = fn
	j.mu.Unlock()
}

// OpenJournal opens (creating if absent) the journal at dir/journal.jsonl,
// returning the journal and the replayed records of previous runs. A
// truncated trailing line — the signature of dying mid-write — is tolerated
// and dropped; any other unparsable line aborts, because a journal with
// corrupt interior records cannot be trusted to describe job state.
func OpenJournal(dir string) (*Journal, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	path := filepath.Join(dir, "journal.jsonl")
	recs, err := replayFile(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: open journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	if len(recs) == 0 {
		if err := j.Append(Record{Ev: EvSchema, Schema: JournalSchema}); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return j, recs, nil
}

// replayFile reads every parsable record of an existing journal.
func replayFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: read journal: %w", err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil {
			// Only the final line may be garbage (a write cut off by the
			// crash this journal exists to survive).
			if !scannerAtEOF(sc) {
				return nil, fmt.Errorf("serve: journal %s line %d: %w", path, line, err)
			}
			break
		}
		if rec.Ev == EvSchema {
			if rec.Schema != JournalSchema {
				return nil, fmt.Errorf("serve: journal %s: schema %q, want %q",
					path, rec.Schema, JournalSchema)
			}
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: journal %s: %w", path, err)
	}
	return recs, nil
}

// scannerAtEOF reports whether sc has no further tokens — i.e. the line just
// returned was the last one.
func scannerAtEOF(sc *bufio.Scanner) bool {
	return !sc.Scan()
}

// Append stamps, writes and fsyncs one record. The fsync is deliberate:
// journal records are rare (a handful per job) and each one is a promise to
// a future daemon instance about what happened.
func (j *Journal) Append(rec Record) error {
	rec.TMs = obs.UnixMilli()
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: marshal journal record: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return fmt.Errorf("serve: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(b); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("serve: append journal: %w", err)
	}
	sw := obs.StartStopwatch()
	if err := j.f.Sync(); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("serve: sync journal: %w", err)
	}
	fsyncSec := sw.Seconds()
	hook := j.onAppend
	j.mu.Unlock()
	if hook != nil {
		hook(fsyncSec)
	}
	return nil
}

// Close flushes and closes the journal file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("serve: close journal: %w", err)
	}
	return nil
}
