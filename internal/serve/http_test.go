package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func specJSON(t *testing.T, spec *JobSpec) string {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func decodeView(t *testing.T, resp *http.Response) View {
	t.Helper()
	defer resp.Body.Close()
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode view: %v", err)
	}
	return v
}

func TestHTTPEndToEnd(t *testing.T) {
	s := newServer(t, Config{Workers: 2})
	defer s.Close()
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/jobs", specJSON(t, fastSpec("http-e2e", 21)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/jobs/") {
		t.Fatalf("Location = %q", loc)
	}
	v := decodeView(t, resp)
	if v.ID == "" || v.State != StateQueued {
		t.Fatalf("submitted view = %+v", v)
	}

	waitTerminal(t, s, v.ID, 60*time.Second)

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp2, body := get("/jobs/" + v.ID)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET job: %d %s", resp2.StatusCode, body)
	}
	var got View
	json.Unmarshal(body, &got)
	if got.State != StateDone || got.Exit != "ok" {
		t.Fatalf("job view = %+v", got)
	}

	resp3, body := get("/jobs/" + v.ID + "/report")
	if resp3.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("dpplace-run-report/v1")) {
		t.Fatalf("GET report: %d %.120s", resp3.StatusCode, body)
	}
	resp4, body := get("/jobs/" + v.ID + "/placement")
	if resp4.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("UCLA pl")) {
		t.Fatalf("GET placement: %d %.120s", resp4.StatusCode, body)
	}
	resp5, body := get("/jobs")
	if resp5.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(v.ID)) {
		t.Fatalf("GET jobs: %d %.120s", resp5.StatusCode, body)
	}
	resp6, body := get("/stats")
	if resp6.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("workers_total")) {
		t.Fatalf("GET stats: %d %.120s", resp6.StatusCode, body)
	}
	resp7, _ := get("/healthz")
	if resp7.StatusCode != http.StatusOK {
		t.Fatalf("GET healthz: %d", resp7.StatusCode)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s := newServer(t, Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	// Dispatcher intentionally not started: submissions stay queued.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		do   func() *http.Response
		want int
	}{
		{"malformed JSON", func() *http.Response {
			return postJSON(t, ts.URL+"/jobs", "{nope")
		}, http.StatusBadRequest},
		{"unknown field", func() *http.Response {
			return postJSON(t, ts.URL+"/jobs", `{"gen":{},"bogus":1}`)
		}, http.StatusBadRequest},
		{"missing design", func() *http.Response {
			return postJSON(t, ts.URL+"/jobs", `{"name":"x"}`)
		}, http.StatusBadRequest},
		{"unknown job", func() *http.Response {
			resp, err := http.Get(ts.URL + "/jobs/j999999")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusNotFound},
		{"first admit ok", func() *http.Response {
			return postJSON(t, ts.URL+"/jobs", specJSON(t, fastSpec("q1", 1)))
		}, http.StatusAccepted},
		{"artifact not written yet", func() *http.Response {
			resp, err := http.Get(ts.URL + "/jobs/j000000/report")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusNotFound},
		{"queue full", func() *http.Response {
			return postJSON(t, ts.URL+"/jobs", specJSON(t, fastSpec("q2", 2)))
		}, http.StatusTooManyRequests},
	}
	for _, tc := range cases {
		resp := tc.do()
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

// readSSE parses events off the stream until pred says stop or the stream
// ends.
func readSSE(t *testing.T, r *bufio.Reader, stop func(sseEvent) bool) []sseEvent {
	t.Helper()
	var events []sseEvent
	cur := sseEvent{}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return events
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
				if stop(cur) {
					return events
				}
			}
			cur = sseEvent{}
		}
	}
}

// TestHTTPEventsSSE watches a job over SSE through its whole life: heartbeat
// events while it waits in the queue, telemetry lines while the solver runs,
// state transitions, and stream termination at the terminal state.
func TestHTTPEventsSSE(t *testing.T) {
	s := newServer(t, Config{Workers: 1, Heartbeat: 5 * time.Millisecond})
	defer s.Close()
	// Not started yet: the job waits in the queue while we connect, which
	// makes at least one heartbeat deterministic.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, err := s.Submit(fastSpec("sse", 33))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/events", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	// Queued state first, then heartbeats while nothing runs.
	pre := readSSE(t, br, func(e sseEvent) bool { return e.event == "heartbeat" })
	if len(pre) == 0 || pre[0].event != "state" || !strings.Contains(pre[0].data, `"queued"`) {
		t.Fatalf("stream preamble = %+v, want queued state first", pre)
	}

	s.Start()
	rest := readSSE(t, br, func(e sseEvent) bool {
		return e.event == "state" && (strings.Contains(e.data, `"done"`) ||
			strings.Contains(e.data, `"failed"`))
	})
	if len(rest) == 0 {
		t.Fatal("stream ended without a terminal state event")
	}
	last := rest[len(rest)-1]
	if !strings.Contains(last.data, `"done"`) {
		t.Fatalf("terminal event = %+v, want done", last)
	}
	telemetry := 0
	for _, e := range rest {
		if e.event == "telemetry" {
			telemetry++
			if !strings.HasPrefix(e.data, "{") {
				t.Fatalf("telemetry line is not JSONL: %q", e.data)
			}
		}
	}
	if telemetry == 0 {
		t.Fatal("no solver telemetry reached the SSE stream")
	}
	// The stream closes after the terminal event.
	if tail := readSSE(t, br, func(sseEvent) bool { return false }); len(tail) != 0 {
		t.Fatalf("stream kept talking after the terminal state: %+v", tail)
	}
}
