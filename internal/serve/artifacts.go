package serve

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/bookshelf"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// writeSpecFile persists the submitted spec beside the job's artifacts, so a
// result directory is self-describing without the journal.
func writeSpecFile(path string, spec *JobSpec) error {
	b, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: marshal spec: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("serve: write spec: %w", err)
	}
	return nil
}

// writeJobReport assembles the dpplace-run-report/v1 document for one job
// attempt — the same schema dpplace -report writes, so downstream tooling
// (benchsum, the smoke driver) reads daemon results unchanged. snapshot is
// the daemon's counter/gauge snapshot at report time (nil outside a metrics-
// enabled daemon); it lands in the additive metrics_snapshot section.
func writeJobReport(path, design string, mode core.Mode, res *core.Result, mrep *metrics.Report, runErr error, rec *obs.Recorder, snapshot map[string]float64) error {
	out := &obs.RunReport{
		Design:  design,
		Mode:    mode.String(),
		Exit:    pipeline.Classify(runErr),
		Partial: res.Partial,
		Workers: res.GlobalResult.Workers,
		HPWL: obs.HPWLSummary{
			Global: res.HPWLGlobal,
			Legal:  res.HPWLLegal,
			Final:  res.HPWLFinal,
		},
		StageSeconds: map[string]float64{
			"extract":  res.Times.Extract.Seconds(),
			"global":   res.Times.Global.Seconds(),
			"legalize": res.Times.Legalize.Seconds(),
			"detail":   res.Times.Detail.Seconds(),
		},
		Counters:        rec.Counters(),
		Trajectory:      rec.Trajectory(),
		DirtyNetRatio:   res.GlobalResult.DirtyNetRatio(),
		FullRecomputes:  res.GlobalResult.FullEvals,
		DeltaRecomputes: res.GlobalResult.DeltaEvals,
	}
	if res.Multilevel != nil {
		out.Levels = res.Multilevel.Levels
		out.ClusterRatio = res.Multilevel.ClusterRatio
	}
	if c := res.GlobalResult.Congestion; c != nil {
		out.Congestion = c.Report()
	}
	for _, deg := range res.Degradations {
		out.Degradations = append(out.Degradations, obs.DegradeEntry{
			Stage: deg.Stage, Group: deg.Group, Reason: deg.Reason,
		})
	}
	if mrep != nil {
		out.Metrics = mrep
	}
	out.MetricsSnapshot = snapshot
	if err := obs.WriteReportFile(path, out); err != nil {
		return fmt.Errorf("serve: job report: %w", err)
	}
	return nil
}

// writePlacementFile writes the legal placement in Bookshelf .pl format.
func writePlacementFile(path string, d *bookshelf.Design, res *core.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("serve: placement file: %w", err)
	}
	if err := bookshelf.WritePl(f, d.Netlist, res.Placement); err != nil {
		f.Close()
		return fmt.Errorf("serve: write placement: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serve: close placement: %w", err)
	}
	return nil
}
