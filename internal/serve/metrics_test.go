package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	obsmetrics "repro/internal/obs/metrics"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics Content-Type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// waitIdle polls until no job is running and the worker budget is fully
// released, so subsequent scrapes see a quiescent registry.
func waitIdle(t *testing.T, s *Server, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := s.Stats()
		if st.Running == 0 && st.WorkersInUse == 0 && st.Queued == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never went idle: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsEndToEnd runs one job to completion on a metrics-enabled server
// and checks the /metrics exposition carries every core series, that two
// idle scrapes are byte-identical, and that the job report embeds the
// metrics snapshot.
func TestMetricsEndToEnd(t *testing.T) {
	reg := obsmetrics.NewRegistry()
	s := newServer(t, Config{Workers: 2, Metrics: reg})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Start()

	v, err := s.Submit(fastSpec("metrics-e2e", 17))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitTerminal(t, s, v.ID, 60*time.Second)
	if got.State != StateDone {
		t.Fatalf("job ended %s (%s), want done", got.State, got.Error)
	}
	waitIdle(t, s, 10*time.Second)

	text := scrape(t, ts.URL)
	for _, want := range []string{
		`dpplaced_jobs_total{state="queued"} 1`,
		`dpplaced_jobs_total{state="running"} 1`,
		`dpplaced_jobs_total{state="done"} 1`,
		`dpplaced_jobs_total{state="failed"} 0`,
		`dpplaced_queue_depth 0`,
		`dpplaced_jobs_running 0`,
		`dpplaced_job_duration_seconds_count 1`,
		`dpplaced_admission_rejects_total{reason="queue_full"} 0`,
		`dpplaced_journal_appends_total`,
		`dpplaced_journal_fsync_seconds_bucket`,
		`dpplaced_par_budget_workers 2`,
		`dpplaced_par_lease_wait_seconds_count`,
		`dpplace_stage_seconds_bucket{stage="global",le=`,
		`dpplace_degradations_total`,
		`dpplace_health_events_total{kind="rollbacks"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// A completed job journals submit/start/done at minimum; the appends
	// counter and fsync histogram must agree.
	if !strings.Contains(text, "dpplaced_journal_fsync_seconds_count 3") &&
		!strings.Contains(text, "dpplaced_journal_fsync_seconds_count 4") {
		t.Errorf("fsync count not in the expected 3-4 range:\n%s",
			grepLine(text, "dpplaced_journal_fsync_seconds_count"))
	}

	// Idle server: consecutive scrapes are byte-identical.
	if again := scrape(t, ts.URL); again != text {
		t.Error("two idle scrapes are not byte-identical")
	}

	// The run report embeds the snapshot, counters and gauges only.
	repB, err := os.ReadFile(filepath.Join(s.JobDir(v.ID), "report.json"))
	if err != nil {
		t.Fatalf("report artifact: %v", err)
	}
	var rep struct {
		MetricsSnapshot map[string]float64 `json:"metrics_snapshot"`
	}
	if err := json.Unmarshal(repB, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.MetricsSnapshot == nil {
		t.Fatal("report has no metrics_snapshot section")
	}
	if rep.MetricsSnapshot[`dpplaced_jobs_total{state="running"}`] != 1 {
		t.Errorf("snapshot running transitions = %v, want 1",
			rep.MetricsSnapshot[`dpplaced_jobs_total{state="running"}`])
	}
	if _, ok := rep.MetricsSnapshot["dpplaced_job_duration_seconds"]; ok {
		t.Error("snapshot must not contain histogram families")
	}
}

// grepLine returns the lines of text containing substr (for error messages).
func grepLine(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestAdmissionRejectMetrics pins the reject-reason counters.
func TestAdmissionRejectMetrics(t *testing.T) {
	reg := obsmetrics.NewRegistry()
	// QueueDepth 1 and no Start: the second submit bounces queue_full.
	s := newServer(t, Config{Workers: 1, QueueDepth: 1, Metrics: reg})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Submit(fastSpec("fill", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(fastSpec("bounced", 2)); err == nil {
		t.Fatal("second submit should bounce on queue depth")
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit: status %d, want 400", resp.StatusCode)
	}

	text := scrape(t, ts.URL)
	for _, want := range []string{
		`dpplaced_admission_rejects_total{reason="queue_full"} 1`,
		`dpplaced_admission_rejects_total{reason="malformed"} 1`,
		`dpplaced_admission_rejects_total{reason="too_large"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want,
				grepLine(text, "admission_rejects"))
		}
	}
}

// TestReadyzFlipsDuringDrain is the health-probe contract: /readyz answers
// 200 while admitting, flips to 503 the moment a drain begins — while the
// in-flight job is still running — and /metrics keeps serving through the
// drain window.
func TestReadyzFlipsDuringDrain(t *testing.T) {
	reg := obsmetrics.NewRegistry()
	s := newServer(t, Config{Workers: 1, Metrics: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Start()

	statusOf := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := statusOf("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", got)
	}
	if got := statusOf("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", got)
	}

	v, err := s.Submit(slowSpec("grinder"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, 60*time.Second, func(jv View) bool { return jv.State == StateRunning })

	drainCtx, forceDrain := context.WithCancel(context.Background())
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		s.Drain(drainCtx)
	}()

	// The probe must flip before the running job finishes: poll /readyz for
	// 503 while the grinder is still grinding.
	deadline := time.Now().Add(10 * time.Second)
	for statusOf("/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if jv, err := s.Job(v.ID); err != nil || jv.State != StateRunning {
		t.Fatalf("job state during 503 window = %v (%v), want still running", jv.State, err)
	}
	// Liveness and metrics keep answering during the drain.
	if got := statusOf("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", got)
	}
	if text := scrape(t, ts.URL); !strings.Contains(text, `dpplaced_jobs_total{state="running"} 1`) {
		t.Error("/metrics during drain missing the running-job series")
	}

	forceDrain() // expire the drain deadline: the grinder checkpoints
	select {
	case <-drained:
	case <-time.After(60 * time.Second):
		t.Fatal("drain never completed")
	}
	if got := statusOf("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain = %d, want 503", got)
	}
}

// TestHeartbeatCarriesDroppedLines pins the SSE honesty field: every
// heartbeat reports the subscriber's cumulative dropped-line count.
func TestHeartbeatCarriesDroppedLines(t *testing.T) {
	reg := obsmetrics.NewRegistry()
	s := newServer(t, Config{Workers: 1, Heartbeat: 5 * time.Millisecond, Metrics: reg})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Not started: the queued job heartbeats while nothing runs.
	v, err := s.Submit(fastSpec("hb", 5))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/events", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	br := bufio.NewReader(resp.Body)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no heartbeat arrived")
		}
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read: %v", err)
		}
		if !strings.HasPrefix(line, "event: heartbeat") {
			continue
		}
		data, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read: %v", err)
		}
		var hb struct {
			Job          string `json:"job"`
			DroppedLines *int64 `json:"dropped_lines"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(data), "data: ")), &hb); err != nil {
			t.Fatalf("heartbeat payload: %v (%q)", err, data)
		}
		if hb.Job != v.ID {
			t.Fatalf("heartbeat job = %q, want %q", hb.Job, v.ID)
		}
		if hb.DroppedLines == nil {
			t.Fatal("heartbeat has no dropped_lines field")
		}
		break
	}
}
