package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// fastSpec is a placement small enough to finish in tens of milliseconds.
func fastSpec(name string, seed int64) *JobSpec {
	return &JobSpec{
		Name: name,
		Gen: &GenSpec{
			Seed: seed, Bits: 4, Units: []string{"adder"},
			RandomCells: 40, Pads: 8,
		},
		Options: SpecOptions{Outer: 3, Inner: 8, Workers: 1},
	}
}

// slowSpec is a placement that grinds long enough to still be running when a
// test drains or cancels it.
func slowSpec(name string) *JobSpec {
	return &JobSpec{
		Name: name,
		Gen: &GenSpec{
			Seed: 7, Bits: 8, Units: []string{"adder", "muxtree"},
			RandomCells: 2500, Pads: 16,
		},
		Options: SpecOptions{Outer: 400, Inner: 200, Workers: 1},
	}
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// waitState polls until the job satisfies pred or the deadline passes.
func waitState(t *testing.T, s *Server, id string, timeout time.Duration, pred func(View) bool) View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v, err := s.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s after %v", id, v.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitTerminal(t *testing.T, s *Server, id string, timeout time.Duration) View {
	t.Helper()
	return waitState(t, s, id, timeout, func(v View) bool { return v.State.Terminal() })
}

func TestSubmitRunsToCompletion(t *testing.T) {
	s := newServer(t, Config{Workers: 2})
	defer s.Close()
	s.Start()

	v, err := s.Submit(fastSpec("e2e", 11))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitTerminal(t, s, v.ID, 60*time.Second)
	if got.State != StateDone {
		t.Fatalf("job ended %s (exit %q, error %q), want done", got.State, got.Exit, got.Error)
	}
	if got.Exit != "ok" {
		t.Fatalf("exit = %q, want ok", got.Exit)
	}
	if got.HPWL <= 0 {
		t.Fatalf("HPWL = %v, want > 0", got.HPWL)
	}

	// The artifact directory holds the full result set.
	dir := s.JobDir(v.ID)
	repB, err := os.ReadFile(filepath.Join(dir, "report.json"))
	if err != nil {
		t.Fatalf("report artifact: %v", err)
	}
	var rep struct {
		Schema string `json:"schema"`
		Exit   string `json:"exit"`
		HPWL   struct{ Final float64 }
	}
	if err := json.Unmarshal(repB, &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if rep.Schema != "dpplace-run-report/v1" {
		t.Fatalf("report schema = %q", rep.Schema)
	}
	if rep.Exit != "ok" {
		t.Fatalf("report exit = %q", rep.Exit)
	}
	for _, f := range []string{"spec.json", "trace.jsonl", "out.pl"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("artifact %s: %v", f, err)
		}
	}
}

// TestCrashRequeueBitIdentical is the headline crash-safety test: a fault at
// the narrowest SIGKILL window (solve finished, terminal record not yet
// journaled) leaves a start-without-terminal journal. A new server instance
// must requeue the job and — placements being deterministic — produce a
// placement byte-identical to an uninterrupted run of the same spec.
func TestCrashRequeueBitIdentical(t *testing.T) {
	dir := t.TempDir()

	faultinject.Enable(1, faultinject.Spec{Site: faultinject.SiteServeCrashBeforeCommit, Count: 1})
	defer faultinject.Disable()

	s1 := newServer(t, Config{Dir: dir, Workers: 1})
	s1.Start()
	v, err := s1.Submit(fastSpec("crashy", 42))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// The runner exits without a terminal record: the job looks running in
	// memory but the scheduler shows no running job.
	waitState(t, s1, v.ID, 60*time.Second, func(jv View) bool {
		return jv.State == StateRunning && s1.Stats().Running == 0
	})
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	faultinject.Disable()

	// Restart on the same data dir: the journal shows attempt 1 started and
	// never ended, so the job must be requeued.
	s2 := newServer(t, Config{Dir: dir, Workers: 1})
	defer s2.Close()
	rv, err := s2.Job(v.ID)
	if err != nil {
		t.Fatalf("replayed job: %v", err)
	}
	if rv.State != StateQueued || !rv.Requeued {
		t.Fatalf("replayed job state=%s requeued=%v, want queued/requeued", rv.State, rv.Requeued)
	}
	s2.Start()
	got := waitTerminal(t, s2, v.ID, 60*time.Second)
	if got.State != StateDone {
		t.Fatalf("requeued job ended %s (%s), want done", got.State, got.Error)
	}

	// Reference: the same spec, uninterrupted, in a fresh data dir.
	ref := newServer(t, Config{Workers: 1})
	defer ref.Close()
	ref.Start()
	rvv, err := ref.Submit(fastSpec("crashy", 42))
	if err != nil {
		t.Fatalf("reference Submit: %v", err)
	}
	waitTerminal(t, ref, rvv.ID, 60*time.Second)

	crashed, err := os.ReadFile(filepath.Join(s2.JobDir(v.ID), "out.pl"))
	if err != nil {
		t.Fatalf("crashed-run placement: %v", err)
	}
	clean, err := os.ReadFile(filepath.Join(ref.JobDir(rvv.ID), "out.pl"))
	if err != nil {
		t.Fatalf("reference placement: %v", err)
	}
	if !bytes.Equal(crashed, clean) {
		t.Fatal("requeued re-execution produced a different placement than an uninterrupted run")
	}
}

func TestDrainRejectsNewAndFinishesInFlight(t *testing.T) {
	s := newServer(t, Config{Workers: 2})
	s.Start()
	v, err := s.Submit(fastSpec("inflight", 3))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Draining only protects jobs the dispatcher already started; wait until
	// this one is actually in flight (or already finished).
	waitState(t, s, v.ID, 60*time.Second, func(jv View) bool {
		return jv.State == StateRunning || jv.State.Terminal()
	})
	// Generous deadline: the in-flight job must be allowed to finish.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	checkpointed, err := s.Drain(ctx)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if checkpointed != 0 {
		t.Fatalf("clean drain checkpointed %d jobs, want 0", checkpointed)
	}
	got, err := s.Job(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("in-flight job ended %s, want done", got.State)
	}
	if _, err := s.Submit(fastSpec("late", 4)); err == nil || err != ErrDraining {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}
}

func TestDrainDeadlineCheckpointsAndRestartRequeues(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, Config{Dir: dir, Workers: 1})
	s.Start()
	v, err := s.Submit(slowSpec("grinder"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, v.ID, 60*time.Second, func(jv View) bool { return jv.State == StateRunning })

	// A deadline that is already expired forces the checkpoint path at once.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	checkpointed, err := s.Drain(ctx)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if checkpointed != 1 {
		t.Fatalf("checkpointed = %d, want 1", checkpointed)
	}
	got, err := s.Job(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateQueued || !got.Requeued {
		t.Fatalf("checkpointed job state=%s requeued=%v, want queued/requeued", got.State, got.Requeued)
	}

	// The next daemon instance picks the job back up from the journal.
	s2 := newServer(t, Config{Dir: dir, Workers: 1})
	defer s2.Close()
	rv, err := s2.Job(v.ID)
	if err != nil {
		t.Fatalf("replayed job: %v", err)
	}
	if rv.State != StateQueued {
		t.Fatalf("replayed job state = %s, want queued", rv.State)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s := newServer(t, Config{Workers: 1})
	defer s.Close()
	s.Start()

	running, err := s.Submit(slowSpec("victim-running"))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(fastSpec("victim-queued", 5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, 60*time.Second, func(v View) bool { return v.State == StateRunning })

	if v, err := s.Cancel(queued.ID); err != nil || v.State != StateCanceled {
		t.Fatalf("cancel queued: %v state=%s", err, v.State)
	}
	if v, err := s.Cancel(running.ID); err != nil || v.State != StateCanceled {
		t.Fatalf("cancel running: %v state=%s", err, v.State)
	}
	// The runner unwinds and the worker budget frees up.
	deadline := time.Now().Add(60 * time.Second)
	for s.Stats().WorkersInUse != 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled job never released its workers")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBudgetSharedAcrossJobs floods the scheduler at several budget sizes
// and asserts the shared worker budget never over-grants; run with -race.
func TestBudgetSharedAcrossJobs(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		t.Run(map[int]string{1: "workers1", 2: "workers2", 4: "workers4"}[workers], func(t *testing.T) {
			s := newServer(t, Config{Workers: workers})
			defer s.Close()
			s.Start()
			var ids []string
			for i := 0; i < 5; i++ {
				v, err := s.Submit(fastSpec("flood", int64(100+i)))
				if err != nil {
					t.Fatalf("Submit %d: %v", i, err)
				}
				ids = append(ids, v.ID)
			}
			for _, id := range ids {
				got := waitTerminal(t, s, id, 120*time.Second)
				if got.State != StateDone {
					t.Fatalf("job %s ended %s (%s)", id, got.State, got.Error)
				}
			}
			if hw := s.budget.HighWater(); hw > workers {
				t.Fatalf("budget high-water %d exceeds the %d-worker budget", hw, workers)
			}
			if used := s.budget.InUse(); used != 0 {
				t.Fatalf("%d workers still held after all jobs finished", used)
			}
		})
	}
}

// TestPriorityOrdering occupies the single worker, then queues a low- and a
// high-priority job; the journal's start records must show the high-priority
// job ran first.
func TestPriorityOrdering(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, Config{Dir: dir, Workers: 1})
	s.Start()

	blocker, err := s.Submit(slowSpec("blocker"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, 60*time.Second, func(v View) bool { return v.State == StateRunning })

	low := fastSpec("low", 1)
	low.Priority = -1
	lo, err := s.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	high := fastSpec("high", 2)
	high.Priority = 10
	hi, err := s.Submit(high)
	if err != nil {
		t.Fatal(err)
	}
	// Unblock the worker and let the queue drain.
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, lo.ID, 120*time.Second)
	waitTerminal(t, s, hi.ID, 120*time.Second)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := replayFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var starts []string
	for _, r := range recs {
		if r.Ev == EvStart {
			starts = append(starts, r.Job)
		}
	}
	if len(starts) != 3 {
		t.Fatalf("journal has %d start records %v, want 3", len(starts), starts)
	}
	if starts[1] != hi.ID || starts[2] != lo.ID {
		t.Fatalf("start order %v: high-priority %s must run before low-priority %s",
			starts, hi.ID, lo.ID)
	}
}

func TestAdmissionControl(t *testing.T) {
	t.Run("queue-full", func(t *testing.T) {
		s := newServer(t, Config{Workers: 1, QueueDepth: 1})
		defer s.Close()
		// Dispatcher never started: the first job sits in the queue.
		if _, err := s.Submit(fastSpec("a", 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit(fastSpec("b", 2)); err == nil {
			t.Fatal("submit past the queue depth succeeded")
		}
	})
	t.Run("too-large", func(t *testing.T) {
		s := newServer(t, Config{Workers: 1, MaxCells: 10})
		defer s.Close()
		if _, err := s.Submit(fastSpec("big", 1)); err == nil {
			t.Fatal("oversized job admitted past MaxCells")
		}
	})
}

// TestJournalReplayStates exercises replay directly against a synthetic
// journal covering every record shape.
func TestJournalReplayStates(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := fastSpec("replayed", 9)
	appendAll := func(recs ...Record) {
		t.Helper()
		for _, r := range recs {
			if err := j.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendAll(
		// j000000: completed; must keep serving its result, not requeue.
		Record{Ev: EvSubmit, Job: "j000000", Seq: 0, Spec: spec},
		Record{Ev: EvStart, Job: "j000000", Attempt: 1, Workers: 2},
		Record{Ev: EvDone, Job: "j000000", Attempt: 1, Exit: "ok", HPWL: 123.5},
		// j000001: started, no terminal record — crashed; must requeue.
		Record{Ev: EvSubmit, Job: "j000001", Seq: 1, Spec: spec},
		Record{Ev: EvStart, Job: "j000001", Attempt: 1, Workers: 1},
		// j000002: failed after a retry; stays failed.
		Record{Ev: EvSubmit, Job: "j000002", Seq: 2, Spec: spec},
		Record{Ev: EvStart, Job: "j000002", Attempt: 1, Workers: 1},
		Record{Ev: EvRetry, Job: "j000002", Attempt: 1, Exit: "diverged", Error: "diverged"},
		Record{Ev: EvStart, Job: "j000002", Attempt: 2, Workers: 1},
		Record{Ev: EvFail, Job: "j000002", Attempt: 2, Exit: "diverged", Error: "diverged"},
		// j000003: admitted, never started; must requeue quietly.
		Record{Ev: EvSubmit, Job: "j000003", Seq: 3, Spec: spec},
	)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	s := newServer(t, Config{Dir: dir, Workers: 1})
	defer s.Close()
	want := map[string]struct {
		state    State
		requeued bool
	}{
		"j000000": {StateDone, false},
		"j000001": {StateQueued, true},
		"j000002": {StateFailed, false},
		"j000003": {StateQueued, true},
	}
	for id, w := range want {
		v, err := s.Job(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if v.State != w.state || v.Requeued != w.requeued {
			t.Errorf("job %s: state=%s requeued=%v, want %s/%v",
				id, v.State, v.Requeued, w.state, w.requeued)
		}
	}
	if v, _ := s.Job("j000000"); v.HPWL != 123.5 {
		t.Errorf("done job lost its journaled HPWL: %v", v.HPWL)
	}
	// New submissions continue the sequence after the replayed ids.
	nv, err := s.Submit(fastSpec("next", 10))
	if err != nil {
		t.Fatal(err)
	}
	if nv.ID != "j000004" {
		t.Errorf("next id = %s, want j000004", nv.ID)
	}
}

// TestJournalTruncatedTail simulates dying mid-append: the torn final line
// is dropped, everything before it replays.
func TestJournalTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Ev: EvSubmit, Job: "j000000", Seq: 0, Spec: fastSpec("torn", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"ev":"start","job":"j0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := newServer(t, Config{Dir: dir, Workers: 1})
	defer s.Close()
	v, err := s.Job("j000000")
	if err != nil {
		t.Fatalf("replay after torn tail: %v", err)
	}
	// The torn start record is gone; the job replays as never-started.
	if v.State != StateQueued {
		t.Fatalf("state = %s, want queued", v.State)
	}
}

// TestJournalRejectsInteriorCorruption: garbage in the middle of the journal
// is not survivable and must fail loudly, not silently drop jobs.
func TestJournalRejectsInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	content := `{"ev":"schema","schema":"dpplaced-journal/v1"}
not json at all
{"ev":"submit","job":"j000000","seq":0}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: dir}); err == nil {
		t.Fatal("New accepted a journal with interior corruption")
	}
}

func TestJournalRejectsSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	if err := os.WriteFile(path, []byte(`{"ev":"schema","schema":"dpplaced-journal/v0"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: dir}); err == nil {
		t.Fatal("New accepted a journal with a foreign schema")
	}
}
