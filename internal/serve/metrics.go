package serve

import (
	"repro/internal/obs"
	obsmetrics "repro/internal/obs/metrics"
)

// Metric label enums. Every label value a serve-layer vec can emit is listed
// here and pre-seeded at registration, so the series set a daemon exposes is
// fixed at startup — two fresh daemons scrape identically, and dashboards
// never miss a series that simply hasn't fired yet.
var (
	// jobStateLabels are the dpplaced_jobs_total transition labels: the five
	// lifecycle states plus "requeued", which counts crash/drain recoveries
	// (a transition back into queued, worth its own series).
	jobStateLabels = []string{"queued", "running", "done", "failed", "canceled", "requeued"}
	// rejectReasonLabels are the admission-control bounce reasons.
	rejectReasonLabels = []string{"draining", "queue_full", "too_large", "malformed"}
	// retryClassLabels are the retryable slices of the pipeline taxonomy.
	retryClassLabels = []string{"diverged", "degenerate-groups"}
	// healthKindLabels are the solver health-guard event kinds folded from
	// per-job recorders.
	healthKindLabels = []string{"rollbacks", "re_anneals", "baseline_reruns"}
	// stageLabels are the pipeline stages with a wall-time series. Span names
	// outside this list (per-level multilevel spans) are skipped to keep the
	// label set bounded.
	stageLabels = []string{"place", "extract", "global", "legalize", "detail", "metrics"}
)

// Histogram bucket layouts, chosen once so every daemon instance exports the
// same boundaries. Units are seconds throughout.
var (
	// jobDurationBuckets span interactive smoke jobs (~ms) to capped
	// production solves (~10 min).
	jobDurationBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600}
	// fsyncBuckets resolve the journal's fsync cost: healthy SSDs sit in the
	// sub-millisecond buckets, a saturated disk shows up in the tail.
	fsyncBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5}
	// leaseWaitBuckets measure how long dispatch blocked on the worker
	// budget — the queueing-delay signal for capacity planning.
	leaseWaitBuckets = []float64{0.001, 0.01, 0.1, 1, 10, 60}
	// stageBuckets time individual pipeline stages.
	stageBuckets = []float64{0.005, 0.025, 0.1, 0.5, 2, 10, 60}
)

// serverMetrics bundles every instrument the daemon exports. It is always
// constructed — with a nil registry every instrument is nil and every method
// on it is an inert pointer check, so instrumented code paths never branch on
// "is metrics enabled".
//
// Naming scheme: dpplaced_* for service-level series (scheduler, journal,
// SSE, worker budget), dpplace_* for solver-pipeline series that describe
// placement work itself regardless of how it was invoked.
type serverMetrics struct {
	jobsTotal        *obsmetrics.CounterVec
	queueDepth       *obsmetrics.Gauge
	jobsRunning      *obsmetrics.Gauge
	admissionRejects *obsmetrics.CounterVec
	retries          *obsmetrics.CounterVec
	jobDuration      *obsmetrics.Histogram
	journalAppends   *obsmetrics.Counter
	journalFsync     *obsmetrics.Histogram
	sseSubscribers   *obsmetrics.Gauge
	sseDropped       *obsmetrics.Counter
	sseHeartbeats    *obsmetrics.Counter
	budgetWorkers    *obsmetrics.Gauge
	budgetInUse      *obsmetrics.Gauge
	budgetHighWater  *obsmetrics.Gauge
	leaseWait        *obsmetrics.Histogram
	stageSeconds     *obsmetrics.HistogramVec
	degradations     *obsmetrics.Counter
	healthEvents     *obsmetrics.CounterVec

	congestionSnapshots *obsmetrics.Counter
	congestionInflated  *obsmetrics.Counter
}

// newServerMetrics registers the daemon's metric families on reg and
// pre-seeds every enum-labeled child. A nil reg yields a fully inert bundle.
func newServerMetrics(reg *obsmetrics.Registry) *serverMetrics {
	m := &serverMetrics{
		jobsTotal: reg.CounterVec("dpplaced_jobs_total",
			"Job state transitions by resulting state.", "state"),
		queueDepth: reg.Gauge("dpplaced_queue_depth",
			"Jobs currently queued awaiting workers."),
		jobsRunning: reg.Gauge("dpplaced_jobs_running",
			"Jobs currently executing an attempt."),
		admissionRejects: reg.CounterVec("dpplaced_admission_rejects_total",
			"Submissions bounced by admission control, by reason.", "reason"),
		retries: reg.CounterVec("dpplaced_retries_total",
			"Retried attempts by failure taxonomy class.", "class"),
		jobDuration: reg.Histogram("dpplaced_job_duration_seconds",
			"End-to-end job latency from admission to terminal state.",
			jobDurationBuckets),
		journalAppends: reg.Counter("dpplaced_journal_appends_total",
			"Records appended to the write-ahead journal."),
		journalFsync: reg.Histogram("dpplaced_journal_fsync_seconds",
			"Fsync latency of journal appends.", fsyncBuckets),
		sseSubscribers: reg.Gauge("dpplaced_sse_subscribers",
			"Live SSE event-stream subscribers."),
		sseDropped: reg.Counter("dpplaced_sse_dropped_lines_total",
			"Telemetry lines dropped on slow SSE subscribers."),
		sseHeartbeats: reg.Counter("dpplaced_sse_heartbeats_total",
			"Heartbeat events emitted on SSE streams."),
		budgetWorkers: reg.Gauge("dpplaced_par_budget_workers",
			"Total size of the shared worker budget."),
		budgetInUse: reg.Gauge("dpplaced_par_budget_in_use",
			"Workers currently granted to running jobs."),
		budgetHighWater: reg.Gauge("dpplaced_par_budget_high_water",
			"Largest worker occupancy ever observed."),
		leaseWait: reg.Histogram("dpplaced_par_lease_wait_seconds",
			"Time dispatch spent blocked waiting for a worker grant.",
			leaseWaitBuckets),
		stageSeconds: reg.HistogramVec("dpplace_stage_seconds",
			"Wall time of pipeline stages across all jobs.", "stage",
			stageBuckets),
		degradations: reg.Counter("dpplace_degradations_total",
			"Graceful degradations (groups dropped to fallback placement)."),
		healthEvents: reg.CounterVec("dpplace_health_events_total",
			"Solver health-guard events by kind.", "kind"),
		congestionSnapshots: reg.Counter("dpplace_congestion_snapshots_total",
			"RUDY snapshots taken by the congestion feedback loop."),
		congestionInflated: reg.Counter("dpplace_congestion_inflated_cells_total",
			"Cells left inflated by the congestion feedback loop, summed over jobs."),
	}
	for _, v := range jobStateLabels {
		m.jobsTotal.With(v)
	}
	for _, v := range rejectReasonLabels {
		m.admissionRejects.With(v)
	}
	for _, v := range retryClassLabels {
		m.retries.With(v)
	}
	for _, v := range healthKindLabels {
		m.healthEvents.With(v)
	}
	for _, v := range stageLabels {
		m.stageSeconds.With(v)
	}
	return m
}

// jobState counts one lifecycle transition into state.
func (m *serverMetrics) jobState(state string) {
	m.jobsTotal.With(state).Inc()
}

// observeStage records one pipeline span's wall time, skipping span names
// outside the bounded stage enum (per-level multilevel spans would otherwise
// mint unbounded label values).
func (m *serverMetrics) observeStage(name string, seconds float64) {
	switch name {
	case "place", "extract", "global", "legalize", "detail", "metrics":
		m.stageSeconds.With(name).Observe(seconds)
	}
}

// foldRecorder folds one finished attempt's recorder counters into the fleet
// registry: total degradations plus the health-guard event totals. Only
// whole-run totals are folded (the per-event SolverEvent keys stay in the
// per-job report) so nothing is double counted.
func (m *serverMetrics) foldRecorder(rec *obs.Recorder) {
	c := rec.Counters()
	m.degradations.Add(c["degradations"])
	m.healthEvents.With("rollbacks").Add(c["global/rollbacks"])
	m.healthEvents.With("re_anneals").Add(c["global/re_anneals"])
	m.healthEvents.With("baseline_reruns").Add(c["global/baseline_reruns"])
	m.congestionSnapshots.Add(c["global/congestion_snapshots"])
	m.congestionInflated.Add(c["global/congestion_inflated_cells"])
}
