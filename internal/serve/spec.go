// Package serve implements dpplaced, the placement-as-a-service daemon: a
// bounded job scheduler with admission control and per-job priorities, an
// append-only crash-safe job journal with per-job artifact directories, HTTP
// handlers for job submission and result retrieval, and SSE streaming of the
// per-iteration solver telemetry with heartbeats.
//
// The robustness contract is the headline. Every state transition is
// journaled before it is acted on, so a SIGKILL at any point loses at most
// the work of the in-flight attempts: on restart, jobs with a start record
// but no terminal record are requeued and — placements being bit-identical
// for a given spec — re-execution converges to the same artifact an
// uninterrupted run would have produced. SIGTERM triggers a graceful drain:
// admission stops, running jobs finish (or checkpoint their best iterate
// when the drain deadline expires), the journal is flushed, and the daemon
// reports whether the drain was clean.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/bookshelf"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/pipeline"
)

// JobSpec is the client-facing job description POSTed to /jobs and persisted
// verbatim in the journal's submit record, so a requeued job re-executes
// from exactly the bytes the client sent. Exactly one of Gen and Aux must be
// set.
type JobSpec struct {
	// Name labels the design in reports and logs (default "job").
	Name string `json:"name,omitempty"`
	// Priority orders the queue: higher runs first, ties run in submission
	// order. Range [-100, 100].
	Priority int `json:"priority,omitempty"`
	// TimeoutSeconds caps the job's wall clock (0 = the daemon default). On
	// expiry the job keeps its best-iterate partial result.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Options tunes the placement flow.
	Options SpecOptions `json:"options,omitempty"`
	// Gen generates a synthetic benchmark in-process (deterministic in Seed).
	Gen *GenSpec `json:"gen,omitempty"`
	// Aux uploads a Bookshelf bundle inline: the file contents, not paths.
	Aux *AuxBundle `json:"aux,omitempty"`
}

// SpecOptions mirrors the dpplace run-control flags a service client may set.
type SpecOptions struct {
	// Mode selects "structure-aware" (default) or "baseline".
	Mode string `json:"mode,omitempty"`
	// Model selects the smooth wirelength model, "wa" (default) or "lse".
	Model string `json:"model,omitempty"`
	// Multilevel runs the V-cycle clustered global placement.
	Multilevel bool `json:"multilevel,omitempty"`
	// Outer caps λ-schedule iterations (0 = default 24).
	Outer int `json:"outer,omitempty"`
	// Inner caps CG iterations per stage (0 = default 50).
	Inner int `json:"inner,omitempty"`
	// Workers is the requested worker count; the scheduler may grant fewer
	// when the shared budget is contended (results are identical either way).
	Workers int `json:"workers,omitempty"`
	// OnDegrade selects "fallback" (default) or "fail".
	OnDegrade string `json:"on_degrade,omitempty"`
}

// GenSpec selects a synthetic benchmark, mirroring dpgen's flags.
type GenSpec struct {
	// Seed drives deterministic generation.
	Seed int64 `json:"seed,omitempty"`
	// Bits is the datapath width (default 16, max 512).
	Bits int `json:"bits,omitempty"`
	// Units lists datapath units in order: adder, muxtree, shifter, regbank.
	Units []string `json:"units,omitempty"`
	// RandomCells is the random-logic cell count.
	RandomCells int `json:"random_cells,omitempty"`
	// Pads is the fixed IO pad count (default 16).
	Pads int `json:"pads,omitempty"`
	// Scramble strips bus indices from net names.
	Scramble bool `json:"scramble,omitempty"`
}

// AuxBundle carries a Bookshelf design inline. Nodes and Nets are required;
// Scl is required too because the placer needs a core region. Pl is optional
// (fixed-cell positions; movables default to the core center at solve time).
type AuxBundle struct {
	// Nodes is the .nodes file contents.
	Nodes string `json:"nodes"`
	// Nets is the .nets file contents.
	Nets string `json:"nets"`
	// Pl is the optional .pl file contents.
	Pl string `json:"pl,omitempty"`
	// Scl is the .scl file contents.
	Scl string `json:"scl"`
}

// Spec limits. They bound what a single POST can make the daemon chew on
// before admission control has had a chance to look at a cost estimate.
const (
	maxPriorityMagnitude = 100
	maxGenBits           = 512
	maxGenUnits          = 64
	maxGenRandomCells    = 2_000_000
)

// malformedf builds a spec validation error carrying the taxonomy sentinel,
// so the HTTP layer maps it to 400 with errors.Is.
func malformedf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, pipeline.ErrMalformedInput)...)
}

// DecodeSpec parses and validates one JobSpec from r. Unknown fields are
// rejected — a typo'd option silently ignored would place the wrong design.
// Every rejection wraps pipeline.ErrMalformedInput.
func DecodeSpec(r io.Reader) (*JobSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	spec := &JobSpec{}
	if err := dec.Decode(spec); err != nil {
		return nil, malformedf("job spec: %v", err)
	}
	// Trailing garbage after the JSON object is a malformed request, not an
	// extra job.
	if dec.More() {
		return nil, malformedf("job spec: trailing data after JSON object")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Validate checks the spec against the submission limits.
func (s *JobSpec) Validate() error {
	if s.Gen == nil && s.Aux == nil {
		return malformedf("job spec: one of gen or aux is required")
	}
	if s.Gen != nil && s.Aux != nil {
		return malformedf("job spec: gen and aux are mutually exclusive")
	}
	if s.Priority < -maxPriorityMagnitude || s.Priority > maxPriorityMagnitude {
		return malformedf("job spec: priority %d outside [-%d, %d]",
			s.Priority, maxPriorityMagnitude, maxPriorityMagnitude)
	}
	if s.TimeoutSeconds < 0 {
		return malformedf("job spec: negative timeout_seconds")
	}
	switch s.Options.Mode {
	case "", "structure-aware", "baseline":
	default:
		return malformedf("job spec: unknown mode %q", s.Options.Mode)
	}
	switch s.Options.Model {
	case "", "wa", "lse":
	default:
		return malformedf("job spec: unknown model %q", s.Options.Model)
	}
	switch s.Options.OnDegrade {
	case "", "fallback", "fail":
	default:
		return malformedf("job spec: unknown on_degrade %q", s.Options.OnDegrade)
	}
	if s.Options.Outer < 0 || s.Options.Inner < 0 || s.Options.Workers < 0 {
		return malformedf("job spec: negative outer/inner/workers")
	}
	if g := s.Gen; g != nil {
		if g.Bits < 0 || g.Bits > maxGenBits {
			return malformedf("job spec: gen.bits %d outside [0, %d]", g.Bits, maxGenBits)
		}
		if len(g.Units) > maxGenUnits {
			return malformedf("job spec: %d gen units exceed the %d cap", len(g.Units), maxGenUnits)
		}
		if g.RandomCells < 0 || g.RandomCells > maxGenRandomCells {
			return malformedf("job spec: gen.random_cells %d outside [0, %d]",
				g.RandomCells, maxGenRandomCells)
		}
		if g.Pads < 0 {
			return malformedf("job spec: negative gen.pads")
		}
		if _, err := parseUnits(g.Units); err != nil {
			return err
		}
	}
	if a := s.Aux; a != nil {
		if strings.TrimSpace(a.Nodes) == "" || strings.TrimSpace(a.Nets) == "" {
			return malformedf("job spec: aux.nodes and aux.nets are required")
		}
		if strings.TrimSpace(a.Scl) == "" {
			return malformedf("job spec: aux.scl is required (the placer needs a core region)")
		}
	}
	return nil
}

// parseUnits maps unit-kind names to gen.UnitKind.
func parseUnits(names []string) ([]gen.UnitKind, error) {
	kinds := make([]gen.UnitKind, 0, len(names))
	for _, u := range names {
		switch strings.TrimSpace(u) {
		case "adder":
			kinds = append(kinds, gen.Adder)
		case "muxtree":
			kinds = append(kinds, gen.MuxTree)
		case "shifter":
			kinds = append(kinds, gen.Shifter)
		case "regbank":
			kinds = append(kinds, gen.RegBank)
		case "":
		default:
			return nil, malformedf("job spec: unknown gen unit %q", u)
		}
	}
	return kinds, nil
}

// EstimateCells is the admission-control cost proxy: an upper-ish estimate
// of the movable cell count the job will place, computed without building
// the design. Gen specs count their declared cells (each unit contributes at
// most ~8 cells per bit); aux bundles count .nodes lines. The estimate only
// has to rank job sizes for the admission threshold — it is not used
// anywhere a placement could observe it.
func EstimateCells(s *JobSpec) int {
	if g := s.Gen; g != nil {
		bits := g.Bits
		if bits <= 0 {
			bits = 16
		}
		return g.RandomCells + len(g.Units)*bits*8
	}
	if a := s.Aux; a != nil {
		return strings.Count(a.Nodes, "\n")
	}
	return 0
}

// BuildDesign materializes the spec's design: deterministic generation for
// gen specs, hardened Bookshelf parsing for aux bundles. Parse failures
// wrap pipeline.ErrMalformedInput via the bookshelf readers.
func BuildDesign(s *JobSpec) (*bookshelf.Design, error) {
	name := s.Name
	if name == "" {
		name = "job"
	}
	if g := s.Gen; g != nil {
		kinds, err := parseUnits(g.Units)
		if err != nil {
			return nil, err
		}
		b := gen.Generate(gen.Config{
			Name: name, Seed: g.Seed, Bits: g.Bits, Units: kinds,
			RandomCells: g.RandomCells, Pads: g.Pads, Scramble: g.Scramble,
		})
		return &bookshelf.Design{Netlist: b.Netlist, Placement: b.Placement, Core: b.Core}, nil
	}
	a := s.Aux
	nl := netlist.New(name)
	if err := bookshelf.ReadNodes(strings.NewReader(a.Nodes), nl); err != nil {
		return nil, fmt.Errorf("aux.nodes: %w", err)
	}
	if err := bookshelf.ReadNets(strings.NewReader(a.Nets), nl); err != nil {
		return nil, fmt.Errorf("aux.nets: %w", err)
	}
	d := &bookshelf.Design{Netlist: nl, Placement: netlist.NewPlacement(nl)}
	if a.Pl != "" {
		if err := bookshelf.ReadPl(strings.NewReader(a.Pl), nl, d.Placement); err != nil {
			return nil, fmt.Errorf("aux.pl: %w", err)
		}
	}
	core, err := bookshelf.ReadScl(strings.NewReader(a.Scl))
	if err != nil {
		return nil, fmt.Errorf("aux.scl: %w", err)
	}
	d.Core = core
	if err := nl.Validate(); err != nil {
		return nil, malformedf("aux bundle: %v", err)
	}
	return d, nil
}

// coreOf is a typed accessor asserting the design has a core; BuildDesign
// guarantees it for both paths, but the solver crashes confusingly without
// one, so the scheduler re-checks at run time.
func coreOf(d *bookshelf.Design) (*geom.Core, error) {
	if d.Core == nil {
		return nil, malformedf("design has no core region")
	}
	return d.Core, nil
}
