package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs                submit a job spec   → 202 + job view
//	GET    /jobs                list jobs
//	GET    /jobs/{id}           one job's state
//	GET    /jobs/{id}/events    SSE: telemetry, state changes, heartbeats
//	GET    /jobs/{id}/report    the dpplace-run-report/v1 JSON artifact
//	GET    /jobs/{id}/placement the Bookshelf .pl artifact
//	DELETE /jobs/{id}           cancel
//	GET    /healthz             liveness (200 while the process serves)
//	GET    /readyz              readiness (503 once draining begins)
//	GET    /metrics             Prometheus text exposition
//	GET    /stats               scheduler snapshot
//
// Admission failures map to 400 (malformed spec), 429 (overloaded) and
// 503 (draining).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleArtifact("report.json", "application/json"))
	mux.HandleFunc("GET /jobs/{id}/placement", s.handleArtifact("out.pl", "text/plain; charset=utf-8"))
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", s.cfg.Metrics.Handler())
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// apiError is the JSON error body of every non-2xx response.
type apiError struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps err to its HTTP status and writes the JSON error body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, pipeline.ErrMalformedInput):
		status = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrNoSuchJob):
		status = http.StatusNotFound
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeSpec(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		s.metrics.admissionRejects.With("malformed").Inc()
		writeError(w, err)
		return
	}
	v, err := s.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+v.ID)
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	v, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	v, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleArtifact serves one file from the job's artifact directory.
func (s *Server) handleArtifact(name, contentType string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, err := s.Job(id); err != nil {
			writeError(w, err)
			return
		}
		b, err := os.ReadFile(filepath.Join(s.JobDir(id), name))
		if os.IsNotExist(err) {
			writeError(w, fmt.Errorf("%w: artifact %s not written yet", ErrNoSuchJob, name))
			return
		}
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Write(b)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the load-balancer signal: 200 while the daemon admits
// work, 503 from the instant a drain begins — before in-flight jobs finish —
// so traffic shifts away while the drain completes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// watch subscribes to a job's telemetry and state transitions. The
// subscription is nil when the job already reached a terminal state without
// ever running (e.g. canceled while queued) — a nil *obs.Subscription is
// inert, so the caller streams state events only. Caller must Cancel the
// subscription.
func (s *Server) watch(id string) (v View, sub *obs.Subscription, stateCh <-chan struct{}, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return View{}, nil, nil, ErrNoSuchJob
	}
	if job.events == nil && !job.State.Terminal() {
		// First watcher of a not-yet-running job: create the broadcaster
		// early so no telemetry is missed when the attempt starts.
		job.events = s.newJobBroadcaster()
	}
	if job.events != nil {
		sub = job.events.Subscribe(256)
	}
	return job.view(), sub, job.stateCh, nil
}

// handleEvents streams a job over SSE: per-iteration solver telemetry from
// the recorder's JSONL trace feed ("telemetry" events), job state
// transitions ("state" events), and periodic "heartbeat" events proving
// liveness while the solver grinds between iterations. Heartbeats carry the
// subscriber's dropped-line count, so a slow client knows its view of the
// trace has holes. The stream ends with the terminal state event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	v, sub, stateCh, err := s.watch(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer sub.Cancel()
	if sub != nil {
		s.metrics.sseSubscribers.Add(1)
		defer s.metrics.sseSubscribers.Add(-1)
	}
	telemetry := sub.Lines()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, data any) {
		b, err := json.Marshal(data)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		fl.Flush()
	}
	emitLine := func(line string) {
		fmt.Fprintf(w, "event: telemetry\ndata: %s\n\n", line)
		fl.Flush()
	}

	if v.State.Terminal() {
		// Telemetry is fully published before a job's state turns terminal,
		// so flushing it first keeps the terminal state the stream's last
		// event.
		drainTelemetry(telemetry, emitLine)
		emit("state", v)
		return
	}
	emit("state", v)

	hb := time.NewTicker(s.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case line, open := <-telemetry:
			if !open {
				telemetry = nil
				continue
			}
			emitLine(line)
		case <-stateCh:
			// Re-arm on the fresh channel before emitting, so a transition
			// racing the emit is not lost.
			v2, next, err := s.watchState(v.ID)
			if err != nil {
				return
			}
			stateCh = next
			if v2.State.Terminal() {
				// Drain before the terminal emit: everything the attempt
				// traced is already buffered (telemetry writes complete
				// before the state transition), and the terminal state must
				// be the last event on the stream.
				drainTelemetry(telemetry, emitLine)
				emit("state", v2)
				return
			}
			emit("state", v2)
		case <-hb.C:
			emit("heartbeat", heartbeat{Job: v.ID, DroppedLines: sub.Drops()})
			s.metrics.sseHeartbeats.Inc()
			s.log.Add("serve/heartbeats", 1)
		case <-r.Context().Done():
			return
		}
	}
}

// heartbeat is the SSE heartbeat payload: proof of liveness plus this
// subscriber's cumulative dropped-line count, so a client that fell behind
// the drop-oldest buffer can tell its trace view is incomplete.
type heartbeat struct {
	// Job is the watched job id.
	Job string `json:"job"`
	// DroppedLines counts telemetry lines this subscriber lost so far.
	DroppedLines int64 `json:"dropped_lines"`
}

// watchState re-fetches a job's view and current state channel (no new
// telemetry subscription).
func (s *Server) watchState(id string) (View, <-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return View{}, nil, ErrNoSuchJob
	}
	return job.view(), job.stateCh, nil
}

// drainTelemetry forwards whatever telemetry is already buffered without
// blocking, so the tail of the trace reaches the client before the stream
// closes.
func drainTelemetry(telemetry <-chan string, emitLine func(string)) {
	for {
		select {
		case line, open := <-telemetry:
			if !open {
				return
			}
			emitLine(line)
		default:
			return
		}
	}
}
