package route

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

func grDesign(t *testing.T, locs [][2]float64, nets [][]int) (*netlist.Netlist, *netlist.Placement) {
	t.Helper()
	nl := netlist.New("gr")
	for i := range locs {
		nl.MustAddCell(cellNameGR(i), "STD", 1, 1, false)
	}
	for ni, conn := range nets {
		ends := make([]netlist.Endpoint, 0, len(conn))
		for k, c := range conn {
			dir := netlist.DirInput
			if k == 0 {
				dir = netlist.DirOutput
			}
			ends = append(ends, netlist.Endpoint{Cell: netlist.CellID(c), Pin: pinNameGR(ni, k), Dir: dir})
		}
		nl.MustAddNet(cellNameGR(1000+ni), 1, ends...)
	}
	pl := netlist.NewPlacement(nl)
	for i, p := range locs {
		pl.SetLoc(netlist.CellID(i), geom.Point{X: p[0], Y: p[1]})
	}
	return nl, pl
}

func cellNameGR(i int) string {
	return "g" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('A'+i/260))
}
func pinNameGR(n, k int) string {
	return "p" + string(rune('a'+n%26)) + string(rune('0'+k))
}

func TestGlobalRouteSingleNetLength(t *testing.T) {
	// Two pins far apart: routed WL ≈ Manhattan distance (bin-quantized).
	nl, pl := grDesign(t, [][2]float64{{5, 5}, {85, 45}}, [][]int{{0, 1}})
	region := geom.NewRect(0, 0, 100, 50)
	res := GlobalRoute(nl, pl, region, GRouteOptions{NX: 20, NY: 10})
	want := 80.0 + 40.0
	if math.Abs(res.WirelengthDB-want) > 12 {
		t.Errorf("routed WL = %g, want ≈%g", res.WirelengthDB, want)
	}
	if res.Overflow != 0 {
		t.Errorf("single net overflowed: %g", res.Overflow)
	}
}

func TestGlobalRouteSameBinIsFree(t *testing.T) {
	nl, pl := grDesign(t, [][2]float64{{5, 5}, {6, 6}}, [][]int{{0, 1}})
	res := GlobalRoute(nl, pl, geom.NewRect(0, 0, 100, 100), GRouteOptions{NX: 10, NY: 10})
	if res.WirelengthDB != 0 {
		t.Errorf("intra-bin net routed: %g", res.WirelengthDB)
	}
}

func TestGlobalRouteDetoursAroundCongestion(t *testing.T) {
	// Many parallel nets crossing the same cut must spread over rows once
	// the cheapest row saturates: total WL grows beyond the sum of
	// straight-line lengths, and overflow stays bounded.
	var locs [][2]float64
	var nets [][]int
	n := 60
	for i := 0; i < n; i++ {
		// All pins pinched into two bins at the same y.
		locs = append(locs, [2]float64{2, 52}, [2]float64{97, 52})
		nets = append(nets, []int{2 * i, 2*i + 1})
	}
	nl, pl := grDesign(t, locs, nets)
	region := geom.NewRect(0, 0, 100, 100)
	res := GlobalRoute(nl, pl, region, GRouteOptions{NX: 10, NY: 10, CapacityFactor: 0.35})
	straight := float64(n) * 90.0
	if res.WirelengthDB < straight*1.02 {
		t.Errorf("no detours under congestion: routed %g vs straight %g", res.WirelengthDB, straight)
	}
	// The capacity per horizontal edge is 0.35*10 = 3.5 tracks; 60 nets in
	// 10 rows cannot route overflow-free, but detouring must beat the
	// no-detour baseline (60 nets stacked on one row: 9 edges × 56.5 over).
	if res.MaxUsage <= 1 {
		t.Errorf("expected residual overflow, got max usage %g", res.MaxUsage)
	}
	noDetour := 9 * (float64(n) - 3.5)
	if res.Overflow > 0.9*noDetour {
		t.Errorf("rip-up did not relieve congestion: overflow %g vs no-detour %g", res.Overflow, noDetour)
	}
	// Spreading means many edges carry some overflow rather than one row
	// carrying it all.
	if res.OverflowEdges <= 9 {
		t.Errorf("congestion not spread: only %d overflowed edges", res.OverflowEdges)
	}
}

func TestGlobalRouteSkipsMonsterNets(t *testing.T) {
	var locs [][2]float64
	conn := []int{}
	for i := 0; i < 70; i++ {
		locs = append(locs, [2]float64{float64(i), float64(i)})
		conn = append(conn, i)
	}
	nl, pl := grDesign(t, locs, [][]int{conn})
	res := GlobalRoute(nl, pl, geom.NewRect(0, 0, 100, 100), GRouteOptions{MaxDegree: 64})
	if res.SkippedNets != 1 {
		t.Errorf("SkippedNets = %d, want 1", res.SkippedNets)
	}
	if res.WirelengthDB != 0 {
		t.Errorf("monster net was routed: %g", res.WirelengthDB)
	}
}

func TestMSTEdges(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 10, Y: 0}}
	edges := mstEdges(pts)
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	total := 0.0
	for _, e := range edges {
		total += pts[e[0]].Manhattan(pts[e[1]])
	}
	if total != 10 {
		t.Errorf("MST length = %g, want 10", total)
	}
	if mstEdges(pts[:1]) != nil {
		t.Error("single point should have no edges")
	}
}

func TestEdgeCostMonotone(t *testing.T) {
	prev := 0.0
	for u := 0.0; u <= 2.0; u += 0.1 {
		c := edgeCost(u*10, 10)
		if c < prev {
			t.Fatalf("edgeCost not monotone at u=%g", u)
		}
		prev = c
	}
	if edgeCost(5, 10) != 1 {
		t.Error("below-threshold cost should be 1")
	}
	if edgeCost(15, 10) <= 1 {
		t.Error("overloaded edge should cost more")
	}
}
