package route

import (
	"context"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// GRouteOptions configures the global router.
type GRouteOptions struct {
	NX, NY    int     // routing grid (default 48×48)
	WirePitch float64 // track pitch in database units (default 1)
	// CapacityFactor scales the geometric edge capacities (default 0.35:
	// roughly a third of the crossing tracks are available to signal
	// routing, the rest go to power/clock/blockage — the conventional
	// global-routing assumption).
	CapacityFactor float64
	// Passes is the number of rip-up-and-reroute passes after the initial
	// routing (default 2).
	Passes int
	// MaxDegree skips monster nets (clock trees); they are routed on
	// dedicated resources in practice (default 64).
	MaxDegree int
}

// GRouteResult summarizes a global routing.
type GRouteResult struct {
	WirelengthDB  float64 // routed wirelength in database units, detours included
	Overflow      float64 // Σ max(0, usage − capacity) over edges, in tracks
	MaxUsage      float64 // peak edge usage/capacity
	OverflowEdges int     // edges above capacity
	OverflowBins  int     // routing-grid bins touching at least one overflowed edge
	SkippedNets   int     // nets above MaxDegree
	Partial       bool    // a deadline stopped routing early
	// GridNX/GridNY record the routing-grid shape BinOverflow is indexed by.
	GridNX, GridNY int
	// BinOverflow maps overflow onto bins in Grid.Index order (j*GridNX+i):
	// each overflowed edge's excess tracks are split evenly between the two
	// bins the edge connects, so the slice sums to Overflow exactly. It is
	// O(bins) large and excluded from JSON run reports; dpeval exports the
	// nonzero entries explicitly for the CI gate and EXPERIMENTS tables.
	BinOverflow []float64 `json:"-"`
}

// grEdge addressing: horizontal edges cross vertical bin boundaries
// (between (i,j) and (i+1,j)); vertical edges cross horizontal boundaries.
type grouter struct {
	opt  GRouteOptions
	grid geom.Grid
	// usage/capacity per edge.
	hUse, vUse []float64
	hCap, vCap float64
	// per-net routed paths: sequence of edge ids (sign split h/v).
	paths [][]grEdgeRef
}

type grEdgeRef struct {
	horizontal bool
	idx        int
}

func (r *grouter) hIdx(i, j int) int { return j*(r.grid.NX-1) + i }
func (r *grouter) vIdx(i, j int) int { return j*r.grid.NX + i }

// GlobalRoute routes every net of the placement over a coarse grid with
// L/Z-pattern routing and congestion-driven rip-up-and-reroute. It is the
// routed-wirelength proxy of the evaluation: unlike RUDY it models detours,
// so scrambled buses pay for the congestion they cause.
func GlobalRoute(nl *netlist.Netlist, pl *netlist.Placement, region geom.Rect, opt GRouteOptions) *GRouteResult {
	return GlobalRouteCtx(context.Background(), nl, pl, region, opt)
}

// GlobalRouteCtx is GlobalRoute with cooperative cancellation. The context
// is polled between routing batches and rip-up passes; on expiry the result
// reflects the segments routed so far and has Partial set.
func GlobalRouteCtx(ctx context.Context, nl *netlist.Netlist, pl *netlist.Placement, region geom.Rect, opt GRouteOptions) *GRouteResult {
	if opt.NX <= 0 {
		opt.NX = 48
	}
	if opt.NY <= 0 {
		opt.NY = 48
	}
	if opt.WirePitch <= 0 {
		opt.WirePitch = 1
	}
	if opt.CapacityFactor <= 0 {
		opt.CapacityFactor = 0.35
	}
	if opt.Passes <= 0 {
		opt.Passes = 2
	}
	if opt.MaxDegree <= 0 {
		opt.MaxDegree = 64
	}
	r := &grouter{opt: opt, grid: geom.NewGrid(region, opt.NX, opt.NY)}
	r.hUse = make([]float64, (opt.NX-1)*opt.NY)
	r.vUse = make([]float64, opt.NX*(opt.NY-1))
	r.hCap = opt.CapacityFactor * r.grid.BinH / opt.WirePitch
	r.vCap = opt.CapacityFactor * r.grid.BinW / opt.WirePitch

	// Decompose nets into 2-pin segments along their MST; order nets by
	// bounding box (small, local nets first — they have no flexibility).
	type segment struct {
		net  netlist.NetID
		a, b [2]int // bin coords
	}
	var segs []segment
	res := &GRouteResult{}
	var pts []geom.Point
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		if net.Degree() < 2 {
			continue
		}
		if net.Degree() > opt.MaxDegree {
			res.SkippedNets++
			continue
		}
		pts = pts[:0]
		for _, pid := range net.Pins {
			pts = append(pts, pl.PinPos(nl, pid))
		}
		for _, e := range mstEdges(pts) {
			ai, aj := r.grid.Loc(pts[e[0]])
			bi, bj := r.grid.Loc(pts[e[1]])
			if ai == bi && aj == bj {
				continue
			}
			segs = append(segs, segment{netlist.NetID(ni), [2]int{ai, aj}, [2]int{bi, bj}})
		}
	}
	sort.SliceStable(segs, func(a, b int) bool {
		la := absInt(segs[a].a[0]-segs[a].b[0]) + absInt(segs[a].a[1]-segs[a].b[1])
		lb := absInt(segs[b].a[0]-segs[b].b[0]) + absInt(segs[b].a[1]-segs[b].b[1])
		return la < lb
	})

	rec := obs.From(ctx)
	sp := rec.Span("route")
	sp.Add("segments", int64(len(segs)))
	sp.Add("skipped_nets", int64(res.SkippedNets))

	r.paths = make([][]grEdgeRef, len(segs))
	for si := range segs {
		if si%1024 == 0 && pipeline.Expired(ctx) {
			res.Partial = true
			break
		}
		r.paths[si] = r.route(segs[si].a, segs[si].b)
		r.apply(r.paths[si], 1)
	}

	// Rip-up and reroute segments that touch overloaded edges.
	for pass := 0; pass < opt.Passes && !res.Partial; pass++ {
		if pipeline.Expired(ctx) {
			res.Partial = true
			break
		}
		rerouted := 0
		for si := range segs {
			if !r.overflows(r.paths[si]) {
				continue
			}
			r.apply(r.paths[si], -1)
			r.paths[si] = r.route(segs[si].a, segs[si].b)
			r.apply(r.paths[si], 1)
			rerouted++
		}
		sp.Add("rerouted", int64(rerouted))
		rec.Logf(obs.Debug, "route", "rip-up pass %d: %d segments rerouted", pass, rerouted)
		if rerouted == 0 {
			break
		}
	}
	defer sp.End()

	// Collect metrics.
	for si := range segs {
		for _, e := range r.paths[si] {
			if e.horizontal {
				res.WirelengthDB += r.grid.BinW
			} else {
				res.WirelengthDB += r.grid.BinH
			}
		}
	}
	res.GridNX, res.GridNY = opt.NX, opt.NY
	res.BinOverflow = make([]float64, r.grid.Bins())
	for idx, u := range r.hUse {
		if u > r.hCap {
			ex := u - r.hCap
			res.Overflow += ex
			res.OverflowEdges++
			// A horizontal edge crosses the boundary between bins (i,j)
			// and (i+1,j); charge half the excess to each side.
			i, j := idx%(opt.NX-1), idx/(opt.NX-1)
			res.BinOverflow[r.grid.Index(i, j)] += ex / 2
			res.BinOverflow[r.grid.Index(i+1, j)] += ex / 2
		}
		if m := u / r.hCap; m > res.MaxUsage {
			res.MaxUsage = m
		}
	}
	for idx, u := range r.vUse {
		if u > r.vCap {
			ex := u - r.vCap
			res.Overflow += ex
			res.OverflowEdges++
			i, j := idx%opt.NX, idx/opt.NX
			res.BinOverflow[r.grid.Index(i, j)] += ex / 2
			res.BinOverflow[r.grid.Index(i, j+1)] += ex / 2
		}
		if m := u / r.vCap; m > res.MaxUsage {
			res.MaxUsage = m
		}
	}
	for _, v := range res.BinOverflow {
		if v > 0 {
			res.OverflowBins++
		}
	}
	return res
}

// edgeCost is the congestion-aware cost of adding one track to an edge at
// the given usage/capacity: cheap below 80% utilization, steeply rising
// beyond (routers must be strongly discouraged from overfilling).
func edgeCost(use, cap float64) float64 {
	u := use / cap
	if u < 0.8 {
		return 1
	}
	return 1 + 16*(u-0.8)*(u-0.8)*25
}

// route finds the cheapest monotone L/Z path between two bins: it tries
// both L shapes and every Z with one intermediate bend along either axis.
func (r *grouter) route(a, b [2]int) []grEdgeRef {
	if a[0] == b[0] && a[1] == b[1] {
		return nil
	}
	best := math.Inf(1)
	var bestPath []grEdgeRef
	try := func(path []grEdgeRef, cost float64) {
		if cost < best {
			best = cost
			bestPath = path
		}
	}
	// The bend position may leave the bounding box by up to detourWindow
	// bins — essential for congestion relief when both pins share a row or
	// column (the straight path would otherwise be the only candidate).
	const detourWindow = 6
	// Z-routes with the vertical run at column m (includes both Ls).
	lo := maxInt(0, minInt(a[0], b[0])-detourWindow)
	hi := minInt(r.grid.NX-1, maxInt(a[0], b[0])+detourWindow)
	for m := lo; m <= hi; m++ {
		path, cost := r.zPathHV(a, b, m)
		try(path, cost)
	}
	// Z-routes with the horizontal run at row m.
	lo = maxInt(0, minInt(a[1], b[1])-detourWindow)
	hi = minInt(r.grid.NY-1, maxInt(a[1], b[1])+detourWindow)
	for m := lo; m <= hi; m++ {
		path, cost := r.zPathVH(a, b, m)
		try(path, cost)
	}
	return bestPath
}

// zPathHV: horizontal from a to column m, vertical to b's row, horizontal to b.
func (r *grouter) zPathHV(a, b [2]int, m int) ([]grEdgeRef, float64) {
	var path []grEdgeRef
	cost := 0.0
	addH := func(x0, x1, y int) {
		step := 1
		if x1 < x0 {
			step = -1
		}
		for x := x0; x != x1; x += step {
			i := x
			if step < 0 {
				i = x - 1
			}
			idx := r.hIdx(i, y)
			path = append(path, grEdgeRef{true, idx})
			cost += edgeCost(r.hUse[idx], r.hCap)
		}
	}
	addV := func(y0, y1, x int) {
		step := 1
		if y1 < y0 {
			step = -1
		}
		for y := y0; y != y1; y += step {
			j := y
			if step < 0 {
				j = y - 1
			}
			idx := r.vIdx(x, j)
			path = append(path, grEdgeRef{false, idx})
			cost += edgeCost(r.vUse[idx], r.vCap)
		}
	}
	addH(a[0], m, a[1])
	addV(a[1], b[1], m)
	addH(m, b[0], b[1])
	return path, cost
}

// zPathVH: vertical from a to row m, horizontal to b's column, vertical to b.
func (r *grouter) zPathVH(a, b [2]int, m int) ([]grEdgeRef, float64) {
	var path []grEdgeRef
	cost := 0.0
	addH := func(x0, x1, y int) {
		step := 1
		if x1 < x0 {
			step = -1
		}
		for x := x0; x != x1; x += step {
			i := x
			if step < 0 {
				i = x - 1
			}
			idx := r.hIdx(i, y)
			path = append(path, grEdgeRef{true, idx})
			cost += edgeCost(r.hUse[idx], r.hCap)
		}
	}
	addV := func(y0, y1, x int) {
		step := 1
		if y1 < y0 {
			step = -1
		}
		for y := y0; y != y1; y += step {
			j := y
			if step < 0 {
				j = y - 1
			}
			idx := r.vIdx(x, j)
			path = append(path, grEdgeRef{false, idx})
			cost += edgeCost(r.vUse[idx], r.vCap)
		}
	}
	addV(a[1], m, a[0])
	addH(a[0], b[0], m)
	addV(m, b[1], b[0])
	return path, cost
}

func (r *grouter) apply(path []grEdgeRef, delta float64) {
	for _, e := range path {
		if e.horizontal {
			r.hUse[e.idx] += delta
		} else {
			r.vUse[e.idx] += delta
		}
	}
}

func (r *grouter) overflows(path []grEdgeRef) bool {
	for _, e := range path {
		if e.horizontal {
			if r.hUse[e.idx] > r.hCap {
				return true
			}
		} else if r.vUse[e.idx] > r.vCap {
			return true
		}
	}
	return false
}

// mstEdges returns the Prim MST edge list (point index pairs).
func mstEdges(pts []geom.Point) [][2]int {
	n := len(pts)
	if n < 2 {
		return nil
	}
	inTree := make([]bool, n)
	dist := make([]float64, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	from[0] = -1
	var edges [][2]int
	for k := 0; k < n; k++ {
		best := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (best < 0 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		if from[best] >= 0 {
			edges = append(edges, [2]int{from[best], best})
		}
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pts[best].Manhattan(pts[i]); d < dist[i] {
					dist[i] = d
					from[i] = best
				}
			}
		}
	}
	return edges
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
