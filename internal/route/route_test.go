package route

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
)

func TestNetSteinerTrivial(t *testing.T) {
	if got := NetSteiner(nil); got != 0 {
		t.Errorf("empty = %g", got)
	}
	if got := NetSteiner([]geom.Point{{X: 3, Y: 4}}); got != 0 {
		t.Errorf("single = %g", got)
	}
	if got := NetSteiner([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}}); got != 7 {
		t.Errorf("pair = %g, want 7", got)
	}
}

func TestNetSteinerThreePins(t *testing.T) {
	// RSMT of 3 terminals = HPWL of their bbox.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 2}, {X: 4, Y: 8}}
	if got := NetSteiner(pts); got != 18 {
		t.Errorf("3-pin = %g, want 18", got)
	}
}

func TestNetSteinerCross(t *testing.T) {
	// Four pins at the arms of a cross: MST = 3 sides = 3*20 = 40 via
	// corner connections (each arm pair 20 apart in L1)... the Steiner
	// point at the center gives 4*10 = 40 too; but for a plus-shape with
	// unequal arms the Steiner point wins. Use the classic 4-corner case:
	// corners of a square: MST = 3*side*2? Let's verify the known optimum.
	side := 10.0
	pts := []geom.Point{{X: 0, Y: 0}, {X: side, Y: 0}, {X: 0, Y: side}, {X: side, Y: side}}
	got := NetSteiner(pts)
	// RSMT of a square's corners = 3*side (an "H" / comb shape).
	if math.Abs(got-3*side) > 1e-9 {
		t.Errorf("square corners = %g, want %g", got, 3*side)
	}
	// MST alone would be 3 edges × 10 (L1 dist between adjacent corners) = 30
	// here as well, but for a rectangle 20x10 the Steiner tree must beat
	// the 3-pin chain when pins interleave.
	pts2 := []geom.Point{{X: 0, Y: 0}, {X: 20, Y: 0}, {X: 0, Y: 10}, {X: 20, Y: 10}}
	got2 := NetSteiner(pts2)
	if math.Abs(got2-40) > 1e-9 { // trunk 20 + two rungs 2*10
		t.Errorf("rectangle corners = %g, want 40", got2)
	}
}

func TestSteinerNeverExceedsMST(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: math.Round(rng.Float64() * 50), Y: math.Round(rng.Float64() * 50)}
		}
		st := NetSteiner(pts)
		mst := mstLength(pts)
		// Steiner refinement can only improve, and never below the
		// theoretical 2/3 MST bound.
		return st <= mst+1e-9 && st >= mst*2/3-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSteinerAtLeastHPWL(t *testing.T) {
	// Any Steiner tree spans the bounding box: StWL >= HPWL.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		pts := make([]geom.Point, n)
		var b geom.BBox
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			b.Expand(pts[i])
		}
		return NetSteiner(pts) >= b.HalfPerimeter()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMSTLengthKnown(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 5, Y: 5}}
	if got := mstLength(pts); got != 10 {
		t.Errorf("mst = %g, want 10", got)
	}
}

func TestLargeNetFallsBackToMST(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, steinerRefineLimit+5)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	if got, want := NetSteiner(pts), mstLength(pts); got != want {
		t.Errorf("large net = %g, want MST %g", got, want)
	}
}

func buildNet(t *testing.T, locs []geom.Point) (*netlist.Netlist, *netlist.Placement) {
	t.Helper()
	nl := netlist.New("r")
	ends := make([]netlist.Endpoint, 0, len(locs))
	for i := range locs {
		id := nl.MustAddCell(string(rune('a'+i)), "STD", 1, 1, false)
		ends = append(ends, netlist.Endpoint{Cell: id, Pin: "P", Dir: netlist.DirInput})
	}
	nl.MustAddNet("n", 1, ends...)
	pl := netlist.NewPlacement(nl)
	for i, p := range locs {
		pl.SetLoc(netlist.CellID(i), p)
	}
	return nl, pl
}

func TestSteinerWL(t *testing.T) {
	nl, pl := buildNet(t, []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	if got := SteinerWL(nl, pl); got != 10 {
		t.Errorf("SteinerWL = %g, want 10", got)
	}
}

func TestRUDYUniformNet(t *testing.T) {
	nl, pl := buildNet(t, []geom.Point{{X: 0, Y: 0}, {X: 99, Y: 99}})
	grid := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10)
	cm := RUDY(nl, pl, grid, RUDYOptions{WireWidth: 1, Capacity: 1})
	// Total demand over bins should equal hpwl*wirewidth / capacity (up to
	// the padding of the box).
	total := 0.0
	for _, d := range cm.Demand {
		total += d * grid.BinW * grid.BinH
	}
	// The padded box clips slightly at the region boundary, losing ~1%.
	want := 99.0 + 99.0
	if math.Abs(total-want) > 4.0 {
		t.Errorf("total demand = %g, want ≈%g", total, want)
	}
}

func TestRUDYFlatNet(t *testing.T) {
	// Horizontal 2-pin net: degenerate bbox must not divide by zero.
	nl, pl := buildNet(t, []geom.Point{{X: 10, Y: 50}, {X: 90, Y: 50}})
	grid := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10)
	cm := RUDY(nl, pl, grid, RUDYOptions{})
	for _, d := range cm.Demand {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatal("RUDY produced NaN/Inf on flat net")
		}
	}
	// Demand concentrates in the row of bins at y=50.
	rowDemand := 0.0
	for i := 0; i < 10; i++ {
		rowDemand += cm.Demand[grid.Index(i, 5)] + cm.Demand[grid.Index(i, 4)]
	}
	if rowDemand <= 0 {
		t.Error("flat net left no demand along its row")
	}
}

func TestRUDYSkipsDegenerateAndSinglePin(t *testing.T) {
	nl := netlist.New("r")
	a := nl.MustAddCell("a", "STD", 1, 1, false)
	nl.MustAddNet("single", 1, netlist.Endpoint{Cell: a, Pin: "P", Dir: netlist.DirInput})
	// Two pins at the same location: zero HPWL → skipped.
	b := nl.MustAddCell("b", "STD", 1, 1, false)
	nl.MustAddNet("coincident", 1,
		netlist.Endpoint{Cell: a, Pin: "Q", Dir: netlist.DirInput},
		netlist.Endpoint{Cell: b, Pin: "Q", Dir: netlist.DirInput},
	)
	pl := netlist.NewPlacement(nl)
	grid := geom.NewGrid(geom.NewRect(0, 0, 10, 10), 2, 2)
	cm := RUDY(nl, pl, grid, RUDYOptions{})
	for _, d := range cm.Demand {
		if d != 0 {
			t.Fatalf("degenerate nets contributed demand: %v", cm.Demand)
		}
	}
}

func TestCongestionStats(t *testing.T) {
	grid := geom.NewGrid(geom.NewRect(0, 0, 10, 10), 2, 2)
	cm := &CongestionMap{Grid: grid, Demand: []float64{0.5, 1.5, 2.0, 0.0}}
	s := cm.Stats()
	if s.Max != 2.0 {
		t.Errorf("Max = %g", s.Max)
	}
	if math.Abs(s.Mean-1.0) > 1e-12 {
		t.Errorf("Mean = %g", s.Mean)
	}
	if math.Abs(s.Overflow-1.5) > 1e-12 { // (1.5-1)+(2-1)
		t.Errorf("Overflow = %g", s.Overflow)
	}
	if s.ACE5 != 2.0 { // worst 5% of 4 bins = worst 1 bin
		t.Errorf("ACE5 = %g", s.ACE5)
	}
}

func TestCongestionStatsEmpty(t *testing.T) {
	cm := &CongestionMap{}
	if s := cm.Stats(); s.Max != 0 || s.Mean != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func BenchmarkNetSteiner8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 8)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NetSteiner(pts)
	}
}

// parallelDesign builds a random netlist for the parallel-equality tests.
func parallelDesign(seed int64, nCells, nNets int) (*netlist.Netlist, *netlist.Placement) {
	rng := rand.New(rand.NewSource(seed))
	nl := netlist.New("par")
	for i := 0; i < nCells; i++ {
		nl.MustAddCell(fmtName("c", i), "STD", 4, 4, false)
	}
	for i := 0; i < nNets; i++ {
		deg := 2 + rng.Intn(8)
		ends := make([]netlist.Endpoint, 0, deg)
		for k := 0; k < deg; k++ {
			ends = append(ends, netlist.Endpoint{
				Cell: netlist.CellID(rng.Intn(nCells)),
				Pin:  fmtName("p", i*100+k),
			})
		}
		nl.MustAddNet(fmtName("n", i), 0.5+rng.Float64(), ends...)
	}
	pl := netlist.NewPlacement(nl)
	for i := range nl.Cells {
		pl.X[i] = rng.Float64() * 200
		pl.Y[i] = rng.Float64() * 200
	}
	return nl, pl
}

func fmtName(prefix string, i int) string {
	return prefix + string(rune('A'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('0'+(i/676)%10))
}

// TestSteinerWLParallelMatchesSerial asserts the per-net parallel Steiner
// estimate reduces to the bit-identical total at every worker count.
func TestSteinerWLParallelMatchesSerial(t *testing.T) {
	nl, pl := parallelDesign(17, 120, 250)
	want := SteinerWL(nl, pl)
	for _, workers := range []int{2, 3, 8} {
		got := SteinerWLPool(context.Background(), par.New(workers), nl, pl)
		if got != want {
			t.Fatalf("workers=%d: SteinerWL = %v, serial %v", workers, got, want)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := SteinerWLPool(ctx, par.New(4), nl, pl); !math.IsNaN(got) {
		t.Fatalf("cancelled SteinerWLPool = %v, want NaN", got)
	}
}

// TestRUDYParallelMatchesSerial asserts the row-tiled parallel RUDY map is
// bit-identical to the serial one at every worker count.
func TestRUDYParallelMatchesSerial(t *testing.T) {
	nl, pl := parallelDesign(29, 150, 300)
	grid := geom.NewGrid(geom.NewRect(0, 0, 200, 200), 24, 24)
	opt := RUDYOptions{WireWidth: 1.5, Capacity: 0.3}
	want := RUDY(nl, pl, grid, opt)
	for _, workers := range []int{2, 3, 8} {
		got := RUDYPool(context.Background(), par.New(workers), nl, pl, grid, opt)
		for i := range want.Demand {
			if got.Demand[i] != want.Demand[i] {
				t.Fatalf("workers=%d: bin %d = %v, serial %v",
					workers, i, got.Demand[i], want.Demand[i])
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := RUDYPool(ctx, par.New(4), nl, pl, grid, opt); got != nil {
		t.Fatal("cancelled RUDYPool returned a map, want nil")
	}
}
