package route

import (
	"context"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/par"
)

// TestBinOverflowAccounting drives the router into overflow and checks the
// per-bin export: the grid dimensions are recorded, OverflowBins counts
// exactly the nonzero entries, and the per-bin charges sum back to the total
// overflow (each overflowed edge is split half-and-half between its two
// endpoint bins).
func TestBinOverflowAccounting(t *testing.T) {
	var locs [][2]float64
	var nets [][]int
	n := 60
	for i := 0; i < n; i++ {
		locs = append(locs, [2]float64{2, 52}, [2]float64{97, 52})
		nets = append(nets, []int{2 * i, 2*i + 1})
	}
	nl, pl := grDesign(t, locs, nets)
	res := GlobalRoute(nl, pl, geom.NewRect(0, 0, 100, 100),
		GRouteOptions{NX: 10, NY: 10, CapacityFactor: 0.15})
	if res.Overflow == 0 {
		t.Fatal("pinched design did not overflow; accounting is unobservable")
	}
	if res.GridNX != 10 || res.GridNY != 10 {
		t.Fatalf("grid dims (%d,%d), want (10,10)", res.GridNX, res.GridNY)
	}
	if len(res.BinOverflow) != 100 {
		t.Fatalf("BinOverflow has %d entries, want 100", len(res.BinOverflow))
	}
	sum, nonzero := 0.0, 0
	for _, v := range res.BinOverflow {
		if v < 0 {
			t.Fatalf("negative bin overflow %v", v)
		}
		if v > 0 {
			nonzero++
		}
		sum += v
	}
	if nonzero != res.OverflowBins {
		t.Fatalf("OverflowBins = %d, nonzero entries = %d", res.OverflowBins, nonzero)
	}
	if math.Abs(sum-res.Overflow) > 1e-9*res.Overflow {
		t.Fatalf("per-bin overflow sums to %v, total is %v", sum, res.Overflow)
	}
}

// TestBinOverflowAbsentWhenClean checks a design without overflow exports an
// all-zero map and zero bin count.
func TestBinOverflowAbsentWhenClean(t *testing.T) {
	nl, pl := grDesign(t, [][2]float64{{5, 5}, {85, 45}}, [][]int{{0, 1}})
	res := GlobalRoute(nl, pl, geom.NewRect(0, 0, 100, 50), GRouteOptions{NX: 20, NY: 10})
	if res.Overflow != 0 {
		t.Fatalf("single net overflowed: %v", res.Overflow)
	}
	if res.OverflowBins != 0 {
		t.Fatalf("OverflowBins = %d on a clean route", res.OverflowBins)
	}
	for idx, v := range res.BinOverflow {
		if v != 0 {
			t.Fatalf("bin %d charged %v on a clean route", idx, v)
		}
	}
}

// TestEstimatorMatchesRUDYPool checks the reusable estimator against the
// one-shot computation bitwise, including after the scratch has been dirtied
// by a snapshot at different coordinates — the reuse must not leak state
// between snapshots.
func TestEstimatorMatchesRUDYPool(t *testing.T) {
	var locs [][2]float64
	var nets [][]int
	for i := 0; i < 40; i++ {
		locs = append(locs, [2]float64{float64(2 + i), 30}, [2]float64{float64(60 + i%20), 70})
		nets = append(nets, []int{2 * i, 2*i + 1})
	}
	nl, pl := grDesign(t, locs, nets)
	grid := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 12, 12)
	opt := RUDYOptions{Capacity: 0.15}
	pool := par.New(3)
	ctx := context.Background()

	want := RUDYPool(ctx, pool, nl, pl, grid, opt)
	est := NewEstimator(nl, grid, opt)
	got := est.Snapshot(ctx, pool, pl)
	for i := range want.Demand {
		if got.Demand[i] != want.Demand[i] {
			t.Fatalf("bin %d: estimator %v != RUDYPool %v", i, got.Demand[i], want.Demand[i])
		}
	}

	// Dirty the scratch with a shifted placement, then return and re-snapshot.
	for i := range pl.X {
		pl.X[i] += 17
	}
	est.Snapshot(ctx, pool, pl)
	for i := range pl.X {
		pl.X[i] -= 17
	}
	again := est.Snapshot(ctx, pool, pl)
	for i := range want.Demand {
		if again.Demand[i] != want.Demand[i] {
			t.Fatalf("bin %d after reuse: estimator %v != RUDYPool %v",
				i, again.Demand[i], want.Demand[i])
		}
	}

	// An expired context yields nil, matching RUDYPool.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if est.Snapshot(expired, pool, pl) != nil {
		t.Fatal("snapshot under an expired context returned a map")
	}
}
