// Package route provides the routing-cost proxies used by the evaluation:
// rectilinear Steiner wirelength (StWL) via a Prim minimum spanning tree
// with greedy 1-Steiner refinement over the Hanan grid, and the RUDY
// probabilistic congestion map. These stand in for a full router — the
// standard substitution in the placement literature, where StWL correlates
// within a few percent of routed wirelength.
package route

import (
	"context"
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
)

// steinerRefineLimit caps the net degree for Hanan-grid refinement;
// larger nets fall back to the plain MST length (the O(n^3)-per-point
// refinement would dominate runtime while changing StWL little).
const steinerRefineLimit = 12

// NetSteiner returns the estimated rectilinear Steiner minimal tree length
// of the given pin locations.
func NetSteiner(pts []geom.Point) float64 {
	switch len(pts) {
	case 0, 1:
		return 0
	case 2:
		return pts[0].Manhattan(pts[1])
	case 3:
		// The 3-terminal RSMT meets at the medians: length = HPWL.
		var b geom.BBox
		for _, p := range pts {
			b.Expand(p)
		}
		return b.HalfPerimeter()
	}
	if len(pts) > steinerRefineLimit {
		return mstLength(pts)
	}
	return greedySteiner(pts)
}

// mstLength returns the Manhattan-distance Prim MST length of pts (O(n²)).
func mstLength(pts []geom.Point) float64 {
	n := len(pts)
	inTree := make([]bool, n)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	total := 0.0
	for iter := 0; iter < n; iter++ {
		best := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (best < 0 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		total += dist[best]
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pts[best].Manhattan(pts[i]); d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

// greedySteiner implements the classic greedy 1-Steiner heuristic: repeatedly
// insert the Hanan-grid point that shrinks the MST the most, until no point
// helps. Terminals stay mandatory; inserted points with degree ≤ 2 add no
// value and the MST simply ignores them (their insertion is only accepted on
// strict improvement).
func greedySteiner(pts []geom.Point) float64 {
	cur := make([]geom.Point, len(pts))
	copy(cur, pts)
	curLen := mstLength(cur)
	// Hanan candidates come from the original terminals only; refreshing
	// them from inserted points yields marginal gains at quadratic cost.
	xs := make([]float64, 0, len(pts))
	ys := make([]float64, 0, len(pts))
	for _, p := range pts {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	for rounds := 0; rounds < len(pts); rounds++ {
		bestLen := curLen
		var bestPt geom.Point
		found := false
		for _, x := range xs {
			for _, y := range ys {
				cand := geom.Point{X: x, Y: y}
				if containsPoint(cur, cand) {
					continue
				}
				l := mstLength(append(cur, cand))
				if l < bestLen-1e-12 {
					bestLen = l
					bestPt = cand
					found = true
				}
			}
		}
		if !found {
			break
		}
		cur = append(cur, bestPt)
		curLen = bestLen
	}
	return curLen
}

func containsPoint(pts []geom.Point, q geom.Point) bool {
	for _, p := range pts {
		if p == q {
			return true
		}
	}
	return false
}

// SteinerWL returns the total weighted Steiner wirelength of a placement.
func SteinerWL(nl *netlist.Netlist, pl *netlist.Placement) float64 {
	return SteinerWLPool(context.Background(), nil, nl, pl)
}

// SteinerWLPool is SteinerWL sharded per net across a worker pool. Each
// net's tree length is computed independently into a per-net slot; the
// weighted sum then runs serially in net order, so the result is
// bit-identical to the serial loop at every worker count. A nil pool runs
// inline. When ctx expires mid-computation the function returns NaN — the
// caller sees an unusable metric rather than a silently truncated one.
func SteinerWLPool(ctx context.Context, pool *par.Pool, nl *netlist.Netlist, pl *netlist.Placement) float64 {
	lens := make([]float64, len(nl.Nets))
	err := pool.Run(ctx, len(nl.Nets), 8, func(lo, hi int) {
		var pts []geom.Point
		for i := lo; i < hi; i++ {
			net := &nl.Nets[i]
			if net.Degree() < 2 {
				continue
			}
			pts = pts[:0]
			for _, pid := range net.Pins {
				pts = append(pts, pl.PinPos(nl, pid))
			}
			lens[i] = NetSteiner(pts)
		}
	})
	if err != nil {
		return math.NaN()
	}
	total := 0.0
	for i := range nl.Nets {
		if nl.Nets[i].Degree() < 2 {
			continue
		}
		total += nl.Nets[i].Weight * lens[i]
	}
	return total
}
