package route

import (
	"context"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/par"
)

// RUDYOptions configures the congestion estimate.
type RUDYOptions struct {
	WireWidth float64 // routed wire width in database units; 0 means 1
	Capacity  float64 // routing capacity per unit bin area; 0 means 1
}

// CongestionMap is the per-bin RUDY routing-demand estimate.
type CongestionMap struct {
	Grid geom.Grid
	// Demand is per-bin routing demand normalized by capacity: 1.0 means
	// the bin is exactly at capacity.
	Demand []float64
}

// RUDY computes the Rectangular Uniform wire DensitY congestion estimate:
// each net spreads (HPWL · wireWidth) of routing area uniformly over its
// bounding box. Degenerate (flat) boxes are padded by the wire width.
func RUDY(nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid, opt RUDYOptions) *CongestionMap {
	return RUDYPool(context.Background(), nil, nl, pl, grid, opt)
}

// RUDYPool is RUDY parallelized across a worker pool. The per-net wire
// boxes and densities are computed independently in a first pass; the bin
// accumulation is then tiled by grid rows, with each row owned by exactly
// one worker and nets visited in ascending order within it, so every bin
// receives its contributions in the same order as the serial loop and the
// map is bit-identical at every worker count. A nil pool runs inline. When
// ctx expires mid-computation the returned map is nil.
func RUDYPool(ctx context.Context, pool *par.Pool, nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid, opt RUDYOptions) *CongestionMap {
	cm := &CongestionMap{Grid: grid, Demand: make([]float64, grid.Bins())}
	boxes := make([]geom.Rect, len(nl.Nets))
	dens := make([]float64, len(nl.Nets))
	if err := rudyInto(ctx, pool, nl, pl, grid, opt, boxes, dens, cm.Demand); err != nil {
		return nil
	}
	return cm
}

// Estimator computes repeated RUDY snapshots of an evolving placement over a
// fixed grid, owning the SoA scratch (per-net wire boxes and densities, the
// flat per-bin demand accumulator) across calls: the congestion-feedback loop
// of global placement snapshots every few outer iterations, and none of those
// snapshots allocates. Snapshots follow the same two-pass row-tiled
// discipline as RUDYPool, so each map is bit-identical at every worker count.
type Estimator struct {
	nl    *netlist.Netlist
	grid  geom.Grid
	opt   RUDYOptions
	boxes []geom.Rect
	dens  []float64
	cm    CongestionMap
}

// NewEstimator prepares an estimator for nl over grid. The options are
// normalized once here (zero WireWidth/Capacity become 1).
func NewEstimator(nl *netlist.Netlist, grid geom.Grid, opt RUDYOptions) *Estimator {
	if opt.WireWidth <= 0 {
		opt.WireWidth = 1
	}
	if opt.Capacity <= 0 {
		opt.Capacity = 1
	}
	return &Estimator{
		nl:    nl,
		grid:  grid,
		opt:   opt,
		boxes: make([]geom.Rect, len(nl.Nets)),
		dens:  make([]float64, len(nl.Nets)),
		cm:    CongestionMap{Grid: grid, Demand: make([]float64, grid.Bins())},
	}
}

// Snapshot recomputes the congestion map at pl into the estimator's reused
// buffers and returns it. The returned map is owned by the estimator and
// valid until the next Snapshot. A nil pool runs inline; when ctx expires
// mid-computation the result is nil and the internal state is unspecified
// (the next Snapshot recomputes everything regardless).
func (e *Estimator) Snapshot(ctx context.Context, pool *par.Pool, pl *netlist.Placement) *CongestionMap {
	for i := range e.cm.Demand {
		e.cm.Demand[i] = 0
	}
	if err := rudyInto(ctx, pool, e.nl, pl, e.grid, e.opt, e.boxes, e.dens, e.cm.Demand); err != nil {
		return nil
	}
	return &e.cm
}

// rudyInto is the shared RUDY core: normalized per-bin demand accumulated
// into the caller-owned demand slice (zeroed by the caller), using the
// caller-owned per-net scratch. opt must already carry positive
// WireWidth/Capacity defaults when called from Estimator; RUDYPool normalizes
// here for one-shot callers.
func rudyInto(ctx context.Context, pool *par.Pool, nl *netlist.Netlist, pl *netlist.Placement, grid geom.Grid, opt RUDYOptions, boxes []geom.Rect, dens []float64, demand []float64) error {
	if opt.WireWidth <= 0 {
		opt.WireWidth = 1
	}
	if opt.Capacity <= 0 {
		opt.Capacity = 1
	}

	// Pass 1: per-net boxes and spread densities (independent per net).
	if err := pool.Run(ctx, len(nl.Nets), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// Reset first: the estimator reuses this scratch across
			// snapshots, and skipped nets must not leak a stale density.
			dens[i] = 0
			net := &nl.Nets[i]
			if net.Degree() < 2 {
				continue
			}
			bb := pl.NetBBox(nl, netlist.NetID(i))
			hpwl := bb.W() + bb.H()
			if hpwl == 0 {
				continue
			}
			// Pad flat boxes so division by area stays sane.
			pad := opt.WireWidth / 2
			box := geom.NewRect(bb.Lo.X-pad, bb.Lo.Y-pad, bb.Hi.X+pad, bb.Hi.Y+pad)
			boxes[i] = box
			dens[i] = net.Weight * hpwl * opt.WireWidth / box.Area()
		}
	}); err != nil {
		return err
	}

	// Pass 2: accumulation tiled by grid rows; per-bin order is net order.
	if err := pool.Run(ctx, grid.NY, 2, func(loRow, hiRow int) {
		for i := range nl.Nets {
			if dens[i] == 0 {
				continue
			}
			box := boxes[i]
			i0, i1, j0, j1 := grid.Range(box)
			if j0 < loRow {
				j0 = loRow
			}
			if j1 > hiRow {
				j1 = hiRow
			}
			for j := j0; j < j1; j++ {
				for bi := i0; bi < i1; bi++ {
					ov := grid.BinRect(bi, j).Overlap(box)
					if ov > 0 {
						demand[grid.Index(bi, j)] += dens[i] * ov
					}
				}
			}
		}
	}); err != nil {
		return err
	}

	binArea := grid.BinW * grid.BinH
	for i := range demand {
		demand[i] /= opt.Capacity * binArea
	}
	return nil
}

// CongestionStats summarizes a congestion map for evaluation tables.
type CongestionStats struct {
	Max      float64 // peak bin demand/capacity
	Mean     float64 // average demand/capacity
	ACE5     float64 // average congestion of the worst 5% of bins (ACE metric)
	Overflow float64 // Σ max(0, demand − 1) over bins, in bin units
}

// Stats computes summary statistics of the map.
func (cm *CongestionMap) Stats() CongestionStats {
	n := len(cm.Demand)
	if n == 0 {
		return CongestionStats{}
	}
	sorted := make([]float64, n)
	copy(sorted, cm.Demand)
	sort.Float64s(sorted)
	var s CongestionStats
	sum := 0.0
	for _, v := range sorted {
		sum += v
		if v > 1 {
			s.Overflow += v - 1
		}
	}
	s.Mean = sum / float64(n)
	s.Max = sorted[n-1]
	k := int(math.Ceil(float64(n) * 0.05))
	if k < 1 {
		k = 1
	}
	top := 0.0
	for _, v := range sorted[n-k:] {
		top += v
	}
	s.ACE5 = top / float64(k)
	return s
}
