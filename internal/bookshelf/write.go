package bookshelf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// WriteAux writes the full design as base.aux plus its referenced files into
// dir, returning the .aux path.
func WriteAux(dir, base string, d *Design) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("bookshelf: %w", err)
	}
	files := map[string]func(io.Writer) error{
		base + ".nodes": func(w io.Writer) error { return WriteNodes(w, d.Netlist) },
		base + ".nets":  func(w io.Writer) error { return WriteNets(w, d.Netlist) },
		base + ".pl":    func(w io.Writer) error { return WritePl(w, d.Netlist, d.Placement) },
	}
	if d.Core != nil {
		files[base+".scl"] = func(w io.Writer) error { return WriteScl(w, d.Core) }
	}
	// Write in sorted name order so directory mtimes and error reporting
	// are reproducible run to run.
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writeFile(filepath.Join(dir, name), files[name]); err != nil {
			return "", err
		}
	}
	auxPath := filepath.Join(dir, base+".aux")
	err := writeFile(auxPath, func(w io.Writer) error {
		line := fmt.Sprintf("RowBasedPlacement : %s.nodes %s.nets %s.pl", base, base, base)
		if d.Core != nil {
			line += " " + base + ".scl"
		}
		_, err := fmt.Fprintln(w, line)
		return err
	})
	if err != nil {
		return "", err
	}
	return auxPath, nil
}

func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bookshelf: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := fn(bw); err != nil {
		f.Close()
		return fmt.Errorf("bookshelf: writing %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("bookshelf: writing %s: %w", path, err)
	}
	return f.Close()
}

// WriteNodes writes the .nodes section for nl.
func WriteNodes(w io.Writer, nl *netlist.Netlist) error {
	if _, err := fmt.Fprintf(w, "UCLA nodes 1.0\n\nNumNodes : %d\nNumTerminals : %d\n",
		nl.NumCells(), nl.NumCells()-nl.NumMovable()); err != nil {
		return err
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		suffix := ""
		if c.Fixed {
			suffix = " terminal"
		}
		if _, err := fmt.Fprintf(w, "%s %g %g%s\n", c.Name, c.W, c.H, suffix); err != nil {
			return err
		}
	}
	return nil
}

// WriteNets writes the .nets section for nl, converting pin offsets back to
// the Bookshelf center-relative convention.
func WriteNets(w io.Writer, nl *netlist.Netlist) error {
	if _, err := fmt.Fprintf(w, "UCLA nets 1.0\n\nNumNets : %d\nNumPins : %d\n",
		nl.NumNets(), nl.NumPins()); err != nil {
		return err
	}
	for i := range nl.Nets {
		n := &nl.Nets[i]
		if _, err := fmt.Fprintf(w, "NetDegree : %d %s\n", n.Degree(), n.Name); err != nil {
			return err
		}
		for _, pid := range n.Pins {
			p := nl.Pin(pid)
			dirCh := "B"
			switch p.Dir {
			case netlist.DirInput:
				dirCh = "I"
			case netlist.DirOutput:
				dirCh = "O"
			}
			var cellName string
			var dx, dy float64
			if p.Cell == netlist.NoCell {
				// Top-level terminals are not representable without a pad
				// cell; emit a synthetic name so the file stays parseable.
				cellName = "TERM_" + p.Name
				dx, dy = 0, 0
			} else {
				cell := nl.Cell(p.Cell)
				cellName = cell.Name
				dx = p.DX - cell.W/2
				dy = p.DY - cell.H/2
			}
			// The trailing pin name is a common academic extension of the
			// Bookshelf .nets format; standard parsers ignore extra tokens
			// and our reader recovers it, preserving extraction fidelity.
			if _, err := fmt.Fprintf(w, "\t%s %s : %g %g %s\n", cellName, dirCh, dx, dy, p.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePl writes the .pl section.
func WritePl(w io.Writer, nl *netlist.Netlist, pl *netlist.Placement) error {
	if _, err := fmt.Fprintln(w, "UCLA pl 1.0"); err != nil {
		return err
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		suffix := ""
		if c.Fixed {
			suffix = " /FIXED"
		}
		if _, err := fmt.Fprintf(w, "%s %g %g : N%s\n", c.Name, pl.X[i], pl.Y[i], suffix); err != nil {
			return err
		}
	}
	return nil
}

// WriteScl writes the .scl section for core.
func WriteScl(w io.Writer, core *geom.Core) error {
	if _, err := fmt.Fprintf(w, "UCLA scl 1.0\n\nNumRows : %d\n", core.NumRows()); err != nil {
		return err
	}
	for _, row := range core.Rows {
		siteW := row.SiteW
		if siteW <= 0 {
			siteW = 1
		}
		numSites := int(row.W / siteW)
		_, err := fmt.Fprintf(w,
			"CoreRow Horizontal\n"+
				" Coordinate : %g\n"+
				" Height : %g\n"+
				" Sitewidth : %g\n"+
				" Sitespacing : %g\n"+
				" SubrowOrigin : %g NumSites : %d\n"+
				"End\n",
			row.Y, row.H, siteW, siteW, row.X, numSites)
		if err != nil {
			return err
		}
	}
	return nil
}
