package bookshelf

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
)

// fuzzBench generates a small realistic design once per fuzz target so the
// seed corpus exercises the same shapes the rest of the system produces.
func fuzzBench() *gen.Benchmark {
	return gen.Generate(gen.Config{
		Name: "fuzzseed", Seed: 17, Bits: 4,
		Units:       []gen.UnitKind{gen.Adder},
		RandomCells: 40,
		Pads:        8,
	})
}

// seedCells gives fuzzed net streams a realistic cell population to
// reference.
func seedCells(t testing.TB) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("fuzz")
	if err := ReadNodes(strings.NewReader("a 2 10\nb 3 10\npad 1 1 terminal\n"), nl); err != nil {
		t.Fatal(err)
	}
	return nl
}

func FuzzReadNodes(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteNodes(&buf, fuzzBench().Netlist); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\na 2 10\nb 3 10\n")
	f.Add("NumNodes : 99999999999\na 1 1\n")
	f.Add("a NaN 10\n")
	f.Add("a 2 Inf\n")
	f.Add("a -2 10\n")
	f.Add("NumNodes : -5\n")
	f.Fuzz(func(t *testing.T, data string) {
		nl := netlist.New("fuzz")
		// Any outcome is fine except a panic or an unclassified error.
		if err := ReadNodes(strings.NewReader(data), nl); err != nil {
			if !errors.Is(err, ErrMalformedInput) {
				t.Errorf("error not wrapping ErrMalformedInput: %v", err)
			}
			return
		}
		// Accepted input must yield only finite, positive cell sizes.
		for i := range nl.Cells {
			c := &nl.Cells[i]
			if !finiteSize(c.W) || !finiteSize(c.H) {
				t.Errorf("accepted cell %q with size %gx%g", c.Name, c.W, c.H)
			}
		}
	})
}

func FuzzReadNets(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteNets(&buf, fuzzBench().Netlist); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("NumNets : 1\nNumPins : 2\nNetDegree : 2 n\na O : 0 0\nb I : 0 0\n")
	f.Add("NetDegree : 3 n\na O : 0 0\n")
	f.Add("NetDegree : -1 n\n")
	f.Add("a O : 0 0\n")
	f.Add("NetDegree : 2 n\na O : NaN 0\nb I : 0 0\n")
	f.Fuzz(func(t *testing.T, data string) {
		nl := seedCells(t)
		if err := ReadNets(strings.NewReader(data), nl); err != nil {
			if !errors.Is(err, ErrMalformedInput) {
				t.Errorf("error not wrapping ErrMalformedInput: %v", err)
			}
			return
		}
		if err := nl.Validate(); err != nil {
			t.Errorf("accepted nets violate netlist invariants: %v", err)
		}
	})
}

func FuzzReadAux(f *testing.F) {
	b := fuzzBench()
	dir := f.TempDir()
	aux, err := WriteAux(dir, "fuzzseed", &Design{
		Netlist: b.Netlist, Placement: b.Placement, Core: b.Core,
	})
	if err != nil {
		f.Fatal(err)
	}
	for _, name := range []string{"fuzzseed.nodes", "fuzzseed.nets", "fuzzseed.pl", "fuzzseed.scl"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(name, string(data))
	}
	_ = aux
	f.Add("x.nodes", "a 2 10\n")
	f.Add("x.nets", "garbage\x00\xff\n")
	f.Fuzz(func(t *testing.T, name, data string) {
		// The fuzzer mutates one component file of an otherwise valid
		// benchmark; ReadAux must classify, never panic.
		base := filepath.Base(name)
		if base == "." || base == ".." || base == "/" || strings.ContainsAny(base, "\x00") {
			t.Skip()
		}
		td := t.TempDir()
		files := map[string]string{
			"f.nodes": "a 2 10\nb 3 10\n",
			"f.nets":  "NetDegree : 2 n\na O : 0 0\nb I : 0 0\n",
			"f.pl":    "a 0 0 : N\nb 5 0 : N\n",
			"f.scl":   "CoreRow Horizontal\n Coordinate : 0\n Height : 10\n Sitewidth : 1\n SubrowOrigin : 0 NumSites : 50\nEnd\n",
		}
		// Overwrite one file with fuzz data when the name matches; unknown
		// names just add an unreferenced file.
		files[base] = data
		for fn, content := range files {
			if err := os.WriteFile(filepath.Join(td, fn), []byte(content), 0o644); err != nil {
				t.Skip()
			}
		}
		auxText := "RowBasedPlacement : f.nodes f.nets f.pl f.scl\n"
		if err := os.WriteFile(filepath.Join(td, "f.aux"), []byte(auxText), 0o644); err != nil {
			t.Skip()
		}
		if _, err := ReadAux(filepath.Join(td, "f.aux")); err != nil {
			if !errors.Is(err, ErrMalformedInput) && !os.IsNotExist(errors.Unwrap(err)) {
				// I/O errors are acceptable; anything format-related must
				// carry the sentinel.
				var pathErr *os.PathError
				if !errors.As(err, &pathErr) {
					t.Errorf("error not wrapping ErrMalformedInput: %v", err)
				}
			}
		}
	})
}
