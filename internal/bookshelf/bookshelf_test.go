package bookshelf

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

const nodesText = `UCLA nodes 1.0
# comment line
NumNodes : 4
NumTerminals : 1

a 2 10
b 3 10
c 2 10
pad 1 1 terminal
`

const netsText = `UCLA nets 1.0
NumNets : 2
NumPins : 5

NetDegree : 3 n1
	a O : 1.0 0.0
	b I : -1.5 0.0
	pad I : 0 0
NetDegree : 2 n2
	b O : 1.5 0
	c I : -1 0
`

const plText = `UCLA pl 1.0
a 0 0 : N
b 10 0 : N
c 20 10 : N
pad 50 50 : N /FIXED
`

const sclText = `UCLA scl 1.0
NumRows : 2

CoreRow Horizontal
 Coordinate : 0
 Height : 10
 Sitewidth : 1
 Sitespacing : 1
 SubrowOrigin : 0 NumSites : 100
End
CoreRow Horizontal
 Coordinate : 10
 Height : 10
 Sitewidth : 1
 Sitespacing : 1
 SubrowOrigin : 0 NumSites : 100
End
`

func TestReadNodes(t *testing.T) {
	nl := netlist.New("t")
	if err := ReadNodes(strings.NewReader(nodesText), nl); err != nil {
		t.Fatal(err)
	}
	if nl.NumCells() != 4 {
		t.Fatalf("NumCells = %d", nl.NumCells())
	}
	pad := nl.Cell(nl.CellByName("pad"))
	if !pad.Fixed {
		t.Error("terminal not marked fixed")
	}
	a := nl.Cell(nl.CellByName("a"))
	if a.W != 2 || a.H != 10 || a.Fixed {
		t.Errorf("cell a = %+v", a)
	}
}

func TestReadNetsOffsetsConverted(t *testing.T) {
	nl := netlist.New("t")
	if err := ReadNodes(strings.NewReader(nodesText), nl); err != nil {
		t.Fatal(err)
	}
	if err := ReadNets(strings.NewReader(netsText), nl); err != nil {
		t.Fatal(err)
	}
	if nl.NumNets() != 2 || nl.NumPins() != 5 {
		t.Fatalf("nets/pins = %d/%d", nl.NumNets(), nl.NumPins())
	}
	// Pin of "a" (2x10) on n1 had Bookshelf offset (1, 0) from center
	// → lower-left offset (2/2+1, 10/2+0) = (2, 5).
	n1 := nl.Net(nl.NetByName("n1"))
	p := nl.Pin(n1.Pins[0])
	if p.DX != 2 || p.DY != 5 {
		t.Errorf("converted offset = (%g,%g), want (2,5)", p.DX, p.DY)
	}
	if p.Dir != netlist.DirOutput {
		t.Errorf("dir = %v", p.Dir)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadNetsErrors(t *testing.T) {
	nl := netlist.New("t")
	if err := ReadNodes(strings.NewReader(nodesText), nl); err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"NetDegree : 2 n1\n\tzzz I : 0 0\n\ta I : 0 0\n", // unknown cell
		"NetDegree : 3 n1\n\ta I : 0 0\n\tb I : 0 0\n",   // short net
		"a I : 0 0\n",                                   // pin outside net
		"NetDegree : x n1\n\ta I : 0 0\n",               // bad degree
		"NetDegree : 2 n1\n\ta I : zz 0\n\tb I : 0 0\n", // bad offset
	}
	for _, text := range cases {
		nl2 := netlist.New("t")
		_ = ReadNodes(strings.NewReader(nodesText), nl2)
		if err := ReadNets(strings.NewReader(text), nl2); err == nil {
			t.Errorf("malformed nets accepted:\n%s", text)
		}
	}
}

func TestReadPl(t *testing.T) {
	nl := netlist.New("t")
	if err := ReadNodes(strings.NewReader(nodesText), nl); err != nil {
		t.Fatal(err)
	}
	pl := netlist.NewPlacement(nl)
	if err := ReadPl(strings.NewReader(plText), nl, pl); err != nil {
		t.Fatal(err)
	}
	b := nl.CellByName("b")
	if pl.X[b] != 10 || pl.Y[b] != 0 {
		t.Errorf("b at (%g,%g)", pl.X[b], pl.Y[b])
	}
	if !nl.Cell(nl.CellByName("pad")).Fixed {
		t.Error("/FIXED not honored")
	}
}

func TestReadScl(t *testing.T) {
	core, err := ReadScl(strings.NewReader(sclText))
	if err != nil {
		t.Fatal(err)
	}
	if core.NumRows() != 2 {
		t.Fatalf("NumRows = %d", core.NumRows())
	}
	if core.Rows[1].Y != 10 || core.Rows[1].H != 10 || core.Rows[1].W != 100 {
		t.Errorf("row[1] = %+v", core.Rows[1])
	}
	if core.Region != geom.NewRect(0, 0, 100, 20) {
		t.Errorf("Region = %v", core.Region)
	}
}

func TestReadSclEmpty(t *testing.T) {
	if _, err := ReadScl(strings.NewReader("UCLA scl 1.0\n")); err == nil {
		t.Error("empty scl accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	// Build a design in memory, write it, read it back, compare.
	nl := netlist.New("rt")
	a := nl.MustAddCell("a", "STD", 2, 10, false)
	b := nl.MustAddCell("b", "STD", 3, 10, false)
	pad := nl.MustAddCell("pad", "TERM", 1, 1, true)
	nl.MustAddNet("n1", 1,
		netlist.Endpoint{Cell: a, Pin: "Y", Dir: netlist.DirOutput, DX: 2, DY: 5},
		netlist.Endpoint{Cell: b, Pin: "A", Dir: netlist.DirInput, DX: 0, DY: 5},
		netlist.Endpoint{Cell: pad, Pin: "P", Dir: netlist.DirInput, DX: 0.5, DY: 0.5},
	)
	pl := netlist.NewPlacement(nl)
	pl.X[a], pl.Y[a] = 1, 0
	pl.X[b], pl.Y[b] = 7, 10
	pl.X[pad], pl.Y[pad] = 90, 90
	core := geom.NewCore(geom.NewRect(0, 0, 100, 20), 10, 1)
	d := &Design{Netlist: nl, Placement: pl, Core: core}

	dir := t.TempDir()
	auxPath, err := WriteAux(dir, "rt", d)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(auxPath) != "rt.aux" {
		t.Errorf("aux path = %s", auxPath)
	}

	got, err := ReadAux(auxPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Netlist.NumCells() != 3 || got.Netlist.NumNets() != 1 || got.Netlist.NumPins() != 3 {
		t.Fatalf("reread counts wrong: %d cells %d nets %d pins",
			got.Netlist.NumCells(), got.Netlist.NumNets(), got.Netlist.NumPins())
	}
	ga := got.Netlist.CellByName("a")
	if got.Placement.X[ga] != 1 || got.Placement.Y[ga] != 0 {
		t.Errorf("a reread at (%g,%g)", got.Placement.X[ga], got.Placement.Y[ga])
	}
	if !got.Netlist.Cell(got.Netlist.CellByName("pad")).Fixed {
		t.Error("fixed flag lost in round trip")
	}
	// Pin offsets survive the center-relative conversion.
	n := got.Netlist.NetByName("n1")
	p := got.Netlist.Pin(got.Netlist.Net(n).Pins[0])
	if math.Abs(p.DX-2) > 1e-9 || math.Abs(p.DY-5) > 1e-9 {
		t.Errorf("pin offset after round trip = (%g,%g), want (2,5)", p.DX, p.DY)
	}
	// Core survives.
	if got.Core == nil || got.Core.NumRows() != 2 || got.Core.Region != core.Region {
		t.Errorf("core after round trip = %+v", got.Core)
	}
	// HPWL identical before and after.
	if w1, w2 := pl.HPWL(nl), got.Placement.HPWL(got.Netlist); math.Abs(w1-w2) > 1e-9 {
		t.Errorf("HPWL changed: %g -> %g", w1, w2)
	}
}

func TestReadAuxMissingFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadAux(filepath.Join(dir, "absent.aux")); err == nil {
		t.Error("missing aux accepted")
	}
}
