// Package bookshelf reads and writes the UCLA Bookshelf placement format
// (.aux/.nodes/.nets/.pl/.scl), the lingua franca of academic placers. Only
// the row-based standard-cell subset used by placement benchmarks is
// supported.
//
// Offset convention: Bookshelf pin offsets are relative to the cell center;
// the in-memory netlist stores offsets from the cell's lower-left corner.
// Readers and writers convert between the two.
package bookshelf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Design bundles everything a Bookshelf benchmark describes.
type Design struct {
	Netlist   *netlist.Netlist
	Placement *netlist.Placement
	Core      *geom.Core
}

// ReadAux loads a complete design given the path of its .aux file.
func ReadAux(path string) (*Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bookshelf: %w", err)
	}
	defer f.Close()

	var nodes, nets, pl, scl string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// "RowBasedPlacement : a.nodes a.nets a.wts a.pl a.scl"
		if i := strings.Index(line, ":"); i >= 0 {
			line = line[i+1:]
		}
		for _, tok := range strings.Fields(line) {
			switch filepath.Ext(tok) {
			case ".nodes":
				nodes = tok
			case ".nets":
				nets = tok
			case ".pl":
				pl = tok
			case ".scl":
				scl = tok
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bookshelf: reading %s: %w", path, err)
	}
	if nodes == "" || nets == "" {
		return nil, fmt.Errorf("bookshelf: %s does not reference .nodes and .nets files", path)
	}
	dir := filepath.Dir(path)
	name := strings.TrimSuffix(filepath.Base(path), ".aux")

	nl := netlist.New(name)
	if err := readFileInto(filepath.Join(dir, nodes), func(r io.Reader) error {
		return ReadNodes(r, nl)
	}); err != nil {
		return nil, err
	}
	if err := readFileInto(filepath.Join(dir, nets), func(r io.Reader) error {
		return ReadNets(r, nl)
	}); err != nil {
		return nil, err
	}
	d := &Design{Netlist: nl, Placement: netlist.NewPlacement(nl)}
	if pl != "" {
		if err := readFileInto(filepath.Join(dir, pl), func(r io.Reader) error {
			return ReadPl(r, nl, d.Placement)
		}); err != nil {
			return nil, err
		}
	}
	if scl != "" {
		if err := readFileInto(filepath.Join(dir, scl), func(r io.Reader) error {
			core, err := ReadScl(r)
			d.Core = core
			return err
		}); err != nil {
			return nil, err
		}
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("bookshelf: %s: %w", path, err)
	}
	return d, nil
}

func readFileInto(path string, fn func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("bookshelf: %w", err)
	}
	defer f.Close()
	if err := fn(bufio.NewReader(f)); err != nil {
		return fmt.Errorf("bookshelf: %s: %w", path, err)
	}
	return nil
}

// lineScanner yields non-empty, comment-stripped lines with their numbers.
type lineScanner struct {
	sc   *bufio.Scanner
	line string
	num  int
}

func newLineScanner(r io.Reader) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	return &lineScanner{sc: sc}
}

func (ls *lineScanner) next() bool {
	for ls.sc.Scan() {
		ls.num++
		line := ls.sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "UCLA") {
			continue
		}
		ls.line = line
		return true
	}
	return false
}

func (ls *lineScanner) err() error { return ls.sc.Err() }

// headerValue parses "Key : value" lines, returning ok=false when the line
// does not start with key.
func headerValue(line, key string) (string, bool) {
	if !strings.HasPrefix(line, key) {
		return "", false
	}
	rest := strings.TrimPrefix(line, key)
	rest = strings.TrimSpace(rest)
	rest = strings.TrimPrefix(rest, ":")
	return strings.TrimSpace(rest), true
}

// ReadNodes parses a .nodes stream into nl.
func ReadNodes(r io.Reader, nl *netlist.Netlist) error {
	ls := newLineScanner(r)
	for ls.next() {
		if _, ok := headerValue(ls.line, "NumNodes"); ok {
			continue
		}
		if _, ok := headerValue(ls.line, "NumTerminals"); ok {
			continue
		}
		fields := strings.Fields(ls.line)
		if len(fields) < 3 {
			return fmt.Errorf("line %d: malformed node %q", ls.num, ls.line)
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("line %d: bad width %q", ls.num, fields[1])
		}
		h, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return fmt.Errorf("line %d: bad height %q", ls.num, fields[2])
		}
		fixed := len(fields) > 3 && strings.EqualFold(fields[3], "terminal")
		typ := "STD"
		if fixed {
			typ = "TERM"
		}
		if _, err := nl.AddCell(fields[0], typ, w, h, fixed); err != nil {
			return fmt.Errorf("line %d: %w", ls.num, err)
		}
	}
	return ls.err()
}

// ReadNets parses a .nets stream into nl, which must already hold the cells.
func ReadNets(r io.Reader, nl *netlist.Netlist) error {
	ls := newLineScanner(r)
	netCount := 0
	var pending []netlist.Endpoint
	var pendingName string
	var pendingLeft int

	flush := func() error {
		if pendingName == "" {
			return nil
		}
		if pendingLeft != 0 {
			return fmt.Errorf("net %q: expected %d more pins", pendingName, pendingLeft)
		}
		if _, err := nl.AddNet(pendingName, 1, pending...); err != nil {
			return err
		}
		pendingName = ""
		pending = nil
		return nil
	}

	for ls.next() {
		if _, ok := headerValue(ls.line, "NumNets"); ok {
			continue
		}
		if _, ok := headerValue(ls.line, "NumPins"); ok {
			continue
		}
		if v, ok := headerValue(ls.line, "NetDegree"); ok {
			if err := flush(); err != nil {
				return fmt.Errorf("line %d: %w", ls.num, err)
			}
			fields := strings.Fields(v)
			if len(fields) == 0 {
				return fmt.Errorf("line %d: NetDegree missing count", ls.num)
			}
			deg, err := strconv.Atoi(fields[0])
			if err != nil {
				return fmt.Errorf("line %d: bad NetDegree %q", ls.num, fields[0])
			}
			pendingLeft = deg
			if len(fields) > 1 {
				pendingName = fields[1]
			} else {
				pendingName = fmt.Sprintf("net%d", netCount)
			}
			netCount++
			continue
		}
		// Pin line: "cellname I : dx dy" (offsets optional).
		if pendingName == "" {
			return fmt.Errorf("line %d: pin line outside a net: %q", ls.num, ls.line)
		}
		fields := strings.Fields(strings.ReplaceAll(ls.line, ":", " "))
		if len(fields) < 2 {
			return fmt.Errorf("line %d: malformed pin %q", ls.num, ls.line)
		}
		cid := nl.CellByName(fields[0])
		if cid == netlist.NoCell {
			return fmt.Errorf("line %d: unknown cell %q", ls.num, fields[0])
		}
		var dir netlist.Dir
		switch strings.ToUpper(fields[1]) {
		case "I":
			dir = netlist.DirInput
		case "O":
			dir = netlist.DirOutput
		default:
			dir = netlist.DirInout
		}
		var dx, dy float64
		if len(fields) >= 4 {
			var err error
			if dx, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return fmt.Errorf("line %d: bad pin offset %q", ls.num, fields[2])
			}
			if dy, err = strconv.ParseFloat(fields[3], 64); err != nil {
				return fmt.Errorf("line %d: bad pin offset %q", ls.num, fields[3])
			}
		}
		// Optional 5th token: pin name (academic extension). Without it,
		// pins get positional names and structural extraction loses the
		// pin-role signal.
		pinName := fmt.Sprintf("p%d", len(pending))
		if len(fields) >= 5 {
			pinName = fields[4]
		}
		cell := nl.Cell(cid)
		// Convert center-relative Bookshelf offsets to lower-left-relative.
		pending = append(pending, netlist.Endpoint{
			Cell: cid,
			Pin:  pinName,
			Dir:  dir,
			DX:   cell.W/2 + dx,
			DY:   cell.H/2 + dy,
		})
		pendingLeft--
	}
	if err := flush(); err != nil {
		return err
	}
	return ls.err()
}

// ReadPl parses a .pl stream into pl. Cells marked /FIXED become fixed in nl.
func ReadPl(r io.Reader, nl *netlist.Netlist, pl *netlist.Placement) error {
	ls := newLineScanner(r)
	for ls.next() {
		fields := strings.Fields(ls.line)
		if len(fields) < 3 {
			return fmt.Errorf("line %d: malformed placement %q", ls.num, ls.line)
		}
		cid := nl.CellByName(fields[0])
		if cid == netlist.NoCell {
			return fmt.Errorf("line %d: unknown cell %q", ls.num, fields[0])
		}
		x, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("line %d: bad x %q", ls.num, fields[1])
		}
		y, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return fmt.Errorf("line %d: bad y %q", ls.num, fields[2])
		}
		pl.X[cid] = x
		pl.Y[cid] = y
		if strings.Contains(ls.line, "/FIXED") {
			nl.Cell(cid).Fixed = true
		}
	}
	return ls.err()
}

// ReadScl parses a .scl stream into a Core. Rows must be uniform in height;
// the core region is the bounding box of all rows.
func ReadScl(r io.Reader) (*geom.Core, error) {
	ls := newLineScanner(r)
	var rows []geom.Row
	var cur geom.Row
	var numSites float64
	inRow := false
	for ls.next() {
		switch {
		case strings.HasPrefix(ls.line, "CoreRow"):
			inRow = true
			cur = geom.Row{SiteW: 1}
			numSites = 0
		case strings.HasPrefix(ls.line, "End"):
			if inRow {
				cur.W = numSites * cur.SiteW
				rows = append(rows, cur)
				inRow = false
			}
		case inRow:
			// Row attribute lines may carry several "Key : value" pairs.
			if v, ok := headerValue(ls.line, "Coordinate"); ok {
				if _, err := fmt.Sscan(v, &cur.Y); err != nil {
					return nil, fmt.Errorf("line %d: bad Coordinate %q", ls.num, v)
				}
			} else if v, ok := headerValue(ls.line, "Height"); ok {
				if _, err := fmt.Sscan(v, &cur.H); err != nil {
					return nil, fmt.Errorf("line %d: bad Height %q", ls.num, v)
				}
			} else if v, ok := headerValue(ls.line, "Sitewidth"); ok {
				if _, err := fmt.Sscan(v, &cur.SiteW); err != nil {
					return nil, fmt.Errorf("line %d: bad Sitewidth %q", ls.num, v)
				}
			} else if v, ok := headerValue(ls.line, "SubrowOrigin"); ok {
				// "SubrowOrigin : x NumSites : n"
				fields := strings.Fields(strings.ReplaceAll(v, ":", " "))
				if len(fields) >= 1 {
					if _, err := fmt.Sscan(fields[0], &cur.X); err != nil {
						return nil, fmt.Errorf("line %d: bad SubrowOrigin %q", ls.num, v)
					}
				}
				for i := 0; i+1 < len(fields); i++ {
					if strings.EqualFold(fields[i], "NumSites") {
						if _, err := fmt.Sscan(fields[i+1], &numSites); err != nil {
							return nil, fmt.Errorf("line %d: bad NumSites %q", ls.num, fields[i+1])
						}
					}
				}
			}
		}
	}
	if err := ls.err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("scl: no rows found")
	}
	var bb geom.BBox
	for _, row := range rows {
		bb.ExpandRect(row.Rect())
	}
	return &geom.Core{Region: bb.Rect(), Rows: rows}, nil
}
