// Package bookshelf reads and writes the UCLA Bookshelf placement format
// (.aux/.nodes/.nets/.pl/.scl), the lingua franca of academic placers. Only
// the row-based standard-cell subset used by placement benchmarks is
// supported.
//
// Offset convention: Bookshelf pin offsets are relative to the cell center;
// the in-memory netlist stores offsets from the cell's lower-left corner.
// Readers and writers convert between the two.
//
// Readers are hardened against hostile input: declared header counts are
// capped against the bytes actually available before any allocation, sizes
// and coordinates must be finite, and every format violation wraps
// ErrMalformedInput so callers can classify with errors.Is.
package bookshelf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/pipeline"
)

// ErrMalformedInput is wrapped by every reader error caused by the input
// stream (as opposed to I/O failures). Alias of pipeline.ErrMalformedInput.
var ErrMalformedInput = pipeline.ErrMalformedInput

// malf builds a malformed-input error anchored to a line number.
func malf(num int, format string, args ...any) error {
	return fmt.Errorf("line %d: %s: %w", num, fmt.Sprintf(format, args...), ErrMalformedInput)
}

// Design bundles everything a Bookshelf benchmark describes.
type Design struct {
	Netlist   *netlist.Netlist
	Placement *netlist.Placement
	Core      *geom.Core
}

// ReadAux loads a complete design given the path of its .aux file.
func ReadAux(path string) (*Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bookshelf: %w", err)
	}
	defer f.Close()

	var nodes, nets, pl, scl string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// "RowBasedPlacement : a.nodes a.nets a.wts a.pl a.scl"
		if i := strings.Index(line, ":"); i >= 0 {
			line = line[i+1:]
		}
		for _, tok := range strings.Fields(line) {
			switch filepath.Ext(tok) {
			case ".nodes":
				nodes = tok
			case ".nets":
				nets = tok
			case ".pl":
				pl = tok
			case ".scl":
				scl = tok
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bookshelf: reading %s: %w", path, scanErr(err))
	}
	if nodes == "" || nets == "" {
		return nil, fmt.Errorf("bookshelf: %s does not reference .nodes and .nets files: %w",
			path, ErrMalformedInput)
	}
	dir := filepath.Dir(path)
	name := strings.TrimSuffix(filepath.Base(path), ".aux")

	nl := netlist.New(name)
	if err := readFileInto(filepath.Join(dir, nodes), func(r io.Reader) error {
		return ReadNodes(r, nl)
	}); err != nil {
		return nil, err
	}
	if err := readFileInto(filepath.Join(dir, nets), func(r io.Reader) error {
		return ReadNets(r, nl)
	}); err != nil {
		return nil, err
	}
	d := &Design{Netlist: nl, Placement: netlist.NewPlacement(nl)}
	if pl != "" {
		if err := readFileInto(filepath.Join(dir, pl), func(r io.Reader) error {
			return ReadPl(r, nl, d.Placement)
		}); err != nil {
			return nil, err
		}
	}
	if scl != "" {
		if err := readFileInto(filepath.Join(dir, scl), func(r io.Reader) error {
			core, err := ReadScl(r)
			d.Core = core
			return err
		}); err != nil {
			return nil, err
		}
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("bookshelf: %s: %w: %w", path, err, ErrMalformedInput)
	}
	return d, nil
}

// sizedReader pairs a stream with the number of bytes known to remain, so
// readers can sanity-check declared record counts before allocating.
type sizedReader struct {
	r io.Reader
	n int64 // bytes remaining, or -1 when unknown
}

func (s *sizedReader) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	if s.n >= 0 {
		s.n -= int64(n)
	}
	return n, err
}

// Remaining returns the bytes left in the stream, or -1 when unknown.
func (s *sizedReader) Remaining() int64 { return s.n }

func readFileInto(path string, fn func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("bookshelf: %w", err)
	}
	defer f.Close()
	size := int64(-1)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	var r io.Reader = f
	if size > 0 {
		// Fault injection: simulate a file cut off mid-record.
		cut := faultinject.TruncatedReader(faultinject.SiteBookshelfTruncate, r, (size+1)/2)
		if cut != r {
			r, size = cut, (size+1)/2
		}
	}
	if err := fn(&sizedReader{r: r, n: size}); err != nil {
		return fmt.Errorf("bookshelf: %s: %w", path, err)
	}
	return nil
}

// scanErr classifies scanner failures: an over-long token is an input
// problem, not an I/O one.
func scanErr(err error) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("%w: %w", err, ErrMalformedInput)
	}
	return err
}

// lineScanner yields non-empty, comment-stripped lines with their numbers.
type lineScanner struct {
	sc   *bufio.Scanner
	line string
	num  int
	size int64 // stream size at construction, or -1 when unknown
}

func newLineScanner(r io.Reader) *lineScanner {
	size := int64(-1)
	switch v := r.(type) {
	case interface{ Remaining() int64 }:
		size = v.Remaining()
	case interface{ Len() int }: // strings.Reader, bytes.Reader, bytes.Buffer
		size = int64(v.Len())
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	return &lineScanner{sc: sc, size: size}
}

func (ls *lineScanner) next() bool {
	for ls.sc.Scan() {
		ls.num++
		line := ls.sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "UCLA") {
			continue
		}
		ls.line = line
		return true
	}
	return false
}

func (ls *lineScanner) err() error { return scanErr(ls.sc.Err()) }

// headerValue parses "Key : value" lines, returning ok=false when the line
// does not start with key.
func headerValue(line, key string) (string, bool) {
	if !strings.HasPrefix(line, key) {
		return "", false
	}
	rest := strings.TrimPrefix(line, key)
	rest = strings.TrimSpace(rest)
	rest = strings.TrimPrefix(rest, ":")
	return strings.TrimSpace(rest), true
}

// headerCount parses a declared count header, rejecting negatives.
func headerCount(num int, key, v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, malf(num, "bad %s %q", key, v)
	}
	return n, nil
}

// capCount bounds a declared record count by the bytes actually available
// (at minBytes per record), so a hostile header cannot force a huge
// allocation. With an unknown stream size a fixed cap applies.
func capCount(declared int, size int64, minBytes int64) int {
	const fallback = 1 << 20
	if declared <= 0 {
		return 0
	}
	limit := int64(fallback)
	if size >= 0 {
		limit = size/minBytes + 1
	}
	if int64(declared) > limit {
		return int(limit)
	}
	return declared
}

// finiteSize reports whether v is a usable cell dimension.
func finiteSize(v float64) bool {
	return v > 0 && !math.IsInf(v, 0)
}

// ReadNodes parses a .nodes stream into nl.
func ReadNodes(r io.Reader, nl *netlist.Netlist) error {
	ls := newLineScanner(r)
	start := nl.NumCells()
	declared := -1
	for ls.next() {
		if v, ok := headerValue(ls.line, "NumNodes"); ok {
			n, err := headerCount(ls.num, "NumNodes", v)
			if err != nil {
				return err
			}
			declared = n
			// "a 1 1\n" is the shortest conceivable node record.
			nl.Reserve(capCount(n, ls.size, 6), 0, 0)
			continue
		}
		if v, ok := headerValue(ls.line, "NumTerminals"); ok {
			if _, err := headerCount(ls.num, "NumTerminals", v); err != nil {
				return err
			}
			continue
		}
		fields := strings.Fields(ls.line)
		if len(fields) < 3 {
			return malf(ls.num, "malformed node %q", ls.line)
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return malf(ls.num, "bad width %q", fields[1])
		}
		h, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return malf(ls.num, "bad height %q", fields[2])
		}
		if !finiteSize(w) || !finiteSize(h) {
			return malf(ls.num, "node %q has invalid size %gx%g", fields[0], w, h)
		}
		fixed := len(fields) > 3 && strings.EqualFold(fields[3], "terminal")
		typ := "STD"
		if fixed {
			typ = "TERM"
		}
		if _, err := nl.AddCell(fields[0], typ, w, h, fixed); err != nil {
			return malf(ls.num, "%s", err)
		}
	}
	if err := ls.err(); err != nil {
		return err
	}
	if declared >= 0 && nl.NumCells()-start != declared {
		return fmt.Errorf("NumNodes promises %d nodes, stream holds %d (truncated file?): %w",
			declared, nl.NumCells()-start, ErrMalformedInput)
	}
	return nil
}

// ReadNets parses a .nets stream into nl, which must already hold the cells.
func ReadNets(r io.Reader, nl *netlist.Netlist) error {
	ls := newLineScanner(r)
	startNets, startPins := nl.NumNets(), nl.NumPins()
	declaredNets, declaredPins := -1, -1
	netCount := 0
	var pending []netlist.Endpoint
	var pendingName string
	var pendingLeft int

	flush := func() error {
		if pendingName == "" {
			return nil
		}
		if pendingLeft != 0 {
			return fmt.Errorf("net %q: expected %d more pins (truncated file?): %w",
				pendingName, pendingLeft, ErrMalformedInput)
		}
		if _, err := nl.AddNet(pendingName, 1, pending...); err != nil {
			return fmt.Errorf("%w: %w", err, ErrMalformedInput)
		}
		pendingName = ""
		pending = nil
		return nil
	}

	for ls.next() {
		if v, ok := headerValue(ls.line, "NumNets"); ok {
			n, err := headerCount(ls.num, "NumNets", v)
			if err != nil {
				return err
			}
			declaredNets = n
			// A net costs at least a NetDegree line plus one pin line.
			nl.Reserve(0, capCount(n, ls.size, 16), 0)
			continue
		}
		if v, ok := headerValue(ls.line, "NumPins"); ok {
			n, err := headerCount(ls.num, "NumPins", v)
			if err != nil {
				return err
			}
			declaredPins = n
			nl.Reserve(0, 0, capCount(n, ls.size, 4))
			continue
		}
		if v, ok := headerValue(ls.line, "NetDegree"); ok {
			if err := flush(); err != nil {
				return fmt.Errorf("line %d: %w", ls.num, err)
			}
			fields := strings.Fields(v)
			if len(fields) == 0 {
				return malf(ls.num, "NetDegree missing count")
			}
			deg, err := strconv.Atoi(fields[0])
			if err != nil || deg < 1 {
				return malf(ls.num, "bad NetDegree %q", fields[0])
			}
			pendingLeft = deg
			if len(fields) > 1 {
				pendingName = fields[1]
			} else {
				pendingName = fmt.Sprintf("net%d", netCount)
			}
			netCount++
			continue
		}
		// Pin line: "cellname I : dx dy" (offsets optional).
		if pendingName == "" {
			return malf(ls.num, "pin line outside a net: %q", ls.line)
		}
		fields := strings.Fields(strings.ReplaceAll(ls.line, ":", " "))
		if len(fields) < 2 {
			return malf(ls.num, "malformed pin %q", ls.line)
		}
		cid := nl.CellByName(fields[0])
		if cid == netlist.NoCell {
			return malf(ls.num, "unknown cell %q", fields[0])
		}
		var dir netlist.Dir
		switch strings.ToUpper(fields[1]) {
		case "I":
			dir = netlist.DirInput
		case "O":
			dir = netlist.DirOutput
		default:
			dir = netlist.DirInout
		}
		var dx, dy float64
		if len(fields) >= 4 {
			var err error
			if dx, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return malf(ls.num, "bad pin offset %q", fields[2])
			}
			if dy, err = strconv.ParseFloat(fields[3], 64); err != nil {
				return malf(ls.num, "bad pin offset %q", fields[3])
			}
			if math.IsNaN(dx) || math.IsInf(dx, 0) || math.IsNaN(dy) || math.IsInf(dy, 0) {
				return malf(ls.num, "non-finite pin offset (%g,%g)", dx, dy)
			}
		}
		// Optional 5th token: pin name (academic extension). Without it,
		// pins get positional names and structural extraction loses the
		// pin-role signal.
		pinName := fmt.Sprintf("p%d", len(pending))
		if len(fields) >= 5 {
			pinName = fields[4]
		}
		cell := nl.Cell(cid)
		// Convert center-relative Bookshelf offsets to lower-left-relative.
		pending = append(pending, netlist.Endpoint{
			Cell: cid,
			Pin:  pinName,
			Dir:  dir,
			DX:   cell.W/2 + dx,
			DY:   cell.H/2 + dy,
		})
		pendingLeft--
	}
	if err := flush(); err != nil {
		return err
	}
	if err := ls.err(); err != nil {
		return err
	}
	if declaredNets >= 0 && nl.NumNets()-startNets != declaredNets {
		return fmt.Errorf("NumNets promises %d nets, stream holds %d (truncated file?): %w",
			declaredNets, nl.NumNets()-startNets, ErrMalformedInput)
	}
	if declaredPins >= 0 && nl.NumPins()-startPins != declaredPins {
		return fmt.Errorf("NumPins promises %d pins, stream holds %d (truncated file?): %w",
			declaredPins, nl.NumPins()-startPins, ErrMalformedInput)
	}
	return nil
}

// ReadPl parses a .pl stream into pl. Cells marked /FIXED become fixed in nl.
func ReadPl(r io.Reader, nl *netlist.Netlist, pl *netlist.Placement) error {
	ls := newLineScanner(r)
	for ls.next() {
		fields := strings.Fields(ls.line)
		if len(fields) < 3 {
			return malf(ls.num, "malformed placement %q", ls.line)
		}
		cid := nl.CellByName(fields[0])
		if cid == netlist.NoCell {
			return malf(ls.num, "unknown cell %q", fields[0])
		}
		x, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return malf(ls.num, "bad x %q", fields[1])
		}
		y, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return malf(ls.num, "bad y %q", fields[2])
		}
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return malf(ls.num, "non-finite position (%g,%g) for %q", x, y, fields[0])
		}
		pl.X[cid] = x
		pl.Y[cid] = y
		if strings.Contains(ls.line, "/FIXED") {
			nl.Cell(cid).Fixed = true
		}
	}
	return ls.err()
}

// ReadScl parses a .scl stream into a Core. Rows must be uniform in height;
// the core region is the bounding box of all rows.
func ReadScl(r io.Reader) (*geom.Core, error) {
	ls := newLineScanner(r)
	var rows []geom.Row
	var cur geom.Row
	var numSites float64
	inRow := false
	for ls.next() {
		switch {
		case strings.HasPrefix(ls.line, "CoreRow"):
			inRow = true
			cur = geom.Row{SiteW: 1}
			numSites = 0
		case strings.HasPrefix(ls.line, "End"):
			if inRow {
				cur.W = numSites * cur.SiteW
				rows = append(rows, cur)
				inRow = false
			}
		case inRow:
			// Row attribute lines may carry several "Key : value" pairs.
			if v, ok := headerValue(ls.line, "Coordinate"); ok {
				if _, err := fmt.Sscan(v, &cur.Y); err != nil {
					return nil, malf(ls.num, "bad Coordinate %q", v)
				}
			} else if v, ok := headerValue(ls.line, "Height"); ok {
				if _, err := fmt.Sscan(v, &cur.H); err != nil {
					return nil, malf(ls.num, "bad Height %q", v)
				}
			} else if v, ok := headerValue(ls.line, "Sitewidth"); ok {
				if _, err := fmt.Sscan(v, &cur.SiteW); err != nil {
					return nil, malf(ls.num, "bad Sitewidth %q", v)
				}
			} else if v, ok := headerValue(ls.line, "SubrowOrigin"); ok {
				// "SubrowOrigin : x NumSites : n"
				fields := strings.Fields(strings.ReplaceAll(v, ":", " "))
				if len(fields) >= 1 {
					if _, err := fmt.Sscan(fields[0], &cur.X); err != nil {
						return nil, malf(ls.num, "bad SubrowOrigin %q", v)
					}
				}
				for i := 0; i+1 < len(fields); i++ {
					if strings.EqualFold(fields[i], "NumSites") {
						if _, err := fmt.Sscan(fields[i+1], &numSites); err != nil {
							return nil, malf(ls.num, "bad NumSites %q", fields[i+1])
						}
					}
				}
			}
		}
	}
	if err := ls.err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("scl: no rows found: %w", ErrMalformedInput)
	}
	for i := range rows {
		if !finiteSize(rows[i].H) || !finiteSize(rows[i].W) ||
			math.IsNaN(rows[i].X) || math.IsInf(rows[i].X, 0) ||
			math.IsNaN(rows[i].Y) || math.IsInf(rows[i].Y, 0) {
			return nil, fmt.Errorf("scl: row %d has non-finite geometry: %w", i, ErrMalformedInput)
		}
	}
	var bb geom.BBox
	for _, row := range rows {
		bb.ExpandRect(row.Rect())
	}
	return &geom.Core{Region: bb.Rect(), Rows: rows}, nil
}
