package bookshelf

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/netlist"
)

// Robustness against real-world Bookshelf file quirks: comments between
// records, blank lines, tabs, CRLF-ish spacing and unnamed nets.
func TestReadNodesQuirks(t *testing.T) {
	text := `UCLA nodes 1.0
# header comment

NumNodes : 3
NumTerminals : 1
	a	 2	 10
# mid-file comment

b 3 10

pad 1 1 terminal
`
	nl := netlist.New("q")
	if err := ReadNodes(strings.NewReader(text), nl); err != nil {
		t.Fatal(err)
	}
	if nl.NumCells() != 3 {
		t.Fatalf("cells = %d", nl.NumCells())
	}
}

func TestReadNetsUnnamedNets(t *testing.T) {
	nl := netlist.New("q")
	if err := ReadNodes(strings.NewReader("a 2 10\nb 3 10\n"), nl); err != nil {
		t.Fatal(err)
	}
	// NetDegree without a name: reader must synthesize one.
	text := `UCLA nets 1.0
NetDegree : 2
	a O : 0 0
	b I : 0 0
NetDegree : 2
	b O : 0 0
	a I : 0 0
`
	if err := ReadNets(strings.NewReader(text), nl); err != nil {
		t.Fatal(err)
	}
	if nl.NumNets() != 2 {
		t.Fatalf("nets = %d", nl.NumNets())
	}
	if nl.NetByName("net0") == netlist.NoNet || nl.NetByName("net1") == netlist.NoNet {
		t.Error("synthesized net names missing")
	}
}

func TestReadNetsWithoutOffsets(t *testing.T) {
	nl := netlist.New("q")
	if err := ReadNodes(strings.NewReader("a 2 10\nb 4 10\n"), nl); err != nil {
		t.Fatal(err)
	}
	// Pins without offsets default to the cell center.
	text := "NetDegree : 2 n\n\ta O\n\tb I\n"
	if err := ReadNets(strings.NewReader(text), nl); err != nil {
		t.Fatal(err)
	}
	p := nl.Pin(nl.Net(0).Pins[0])
	if p.DX != 1 || p.DY != 5 { // center of 2x10
		t.Errorf("default offset = (%g,%g), want cell center (1,5)", p.DX, p.DY)
	}
}

func TestReadPlQuirks(t *testing.T) {
	nl := netlist.New("q")
	if err := ReadNodes(strings.NewReader("a 2 10\n"), nl); err != nil {
		t.Fatal(err)
	}
	pl := netlist.NewPlacement(nl)
	// Orientation token and trailing comment.
	text := "UCLA pl 1.0\n# c\n a   12.5   30 : N # trailing\n"
	if err := ReadPl(strings.NewReader(text), nl, pl); err != nil {
		t.Fatal(err)
	}
	if pl.X[0] != 12.5 || pl.Y[0] != 30 {
		t.Errorf("pos = (%g,%g)", pl.X[0], pl.Y[0])
	}
	// Unknown cell must error.
	if err := ReadPl(strings.NewReader("zzz 0 0 : N\n"), nl, pl); err == nil {
		t.Error("unknown cell accepted")
	}
	// Malformed coordinates must error.
	if err := ReadPl(strings.NewReader("a x 0 : N\n"), nl, pl); err == nil {
		t.Error("bad x accepted")
	}
}

func TestReadSclMultipleRowHeights(t *testing.T) {
	// Non-uniform rows are legal Bookshelf; the reader keeps them as given.
	text := `CoreRow Horizontal
 Coordinate : 0
 Height : 10
 Sitewidth : 1
 SubrowOrigin : 0 NumSites : 50
End
CoreRow Horizontal
 Coordinate : 10
 Height : 20
 Sitewidth : 2
 SubrowOrigin : 5 NumSites : 30
End
`
	core, err := ReadScl(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if core.Rows[1].H != 20 || core.Rows[1].SiteW != 2 || core.Rows[1].X != 5 || core.Rows[1].W != 60 {
		t.Errorf("row[1] = %+v", core.Rows[1])
	}
}

// Hostile-input hardening: every rejection below must wrap ErrMalformedInput
// so callers can classify, and none may panic or over-allocate.

func TestReadNodesRejectsInvalidSizes(t *testing.T) {
	for _, bad := range []string{
		"a NaN 10\n",
		"a 2 NaN\n",
		"a Inf 10\n",
		"a 2 -Inf\n",
		"a 0 10\n",
		"a -3 10\n",
	} {
		nl := netlist.New("q")
		err := ReadNodes(strings.NewReader(bad), nl)
		if err == nil {
			t.Errorf("accepted %q", bad)
			continue
		}
		if !errors.Is(err, ErrMalformedInput) {
			t.Errorf("%q: error %v does not wrap ErrMalformedInput", bad, err)
		}
	}
}

func TestReadNodesRejectsBadHeaders(t *testing.T) {
	for _, bad := range []string{
		"NumNodes : -5\n",
		"NumNodes : x\n",
		"NumTerminals : -1\n",
	} {
		nl := netlist.New("q")
		if err := ReadNodes(strings.NewReader(bad), nl); !errors.Is(err, ErrMalformedInput) {
			t.Errorf("%q: err = %v, want ErrMalformedInput", bad, err)
		}
	}
}

// A header promising vastly more records than the stream can hold must not
// drive allocation: the count is capped by the remaining byte count.
func TestReadNodesHeaderCountCapped(t *testing.T) {
	text := "NumNodes : 2000000000\na 2 10\n"
	nl := netlist.New("q")
	err := ReadNodes(strings.NewReader(text), nl)
	// The count mismatch is itself malformed input; what matters here is
	// that we got to the check without a 2-billion-entry allocation.
	if !errors.Is(err, ErrMalformedInput) {
		t.Fatalf("err = %v, want ErrMalformedInput", err)
	}
	if cap(nl.Cells) > 1024 {
		t.Errorf("cap(Cells) = %d; header-driven over-allocation", cap(nl.Cells))
	}
}

// Declared-versus-actual count checks are the truncation detector: a file
// cut between records parses cleanly line-by-line but fails the totals.
func TestReadNodesDetectsTruncation(t *testing.T) {
	text := "NumNodes : 3\na 2 10\nb 3 10\n" // third node missing
	nl := netlist.New("q")
	if err := ReadNodes(strings.NewReader(text), nl); !errors.Is(err, ErrMalformedInput) {
		t.Fatalf("err = %v, want ErrMalformedInput", err)
	}
}

func TestReadNetsDetectsTruncation(t *testing.T) {
	nl := netlist.New("q")
	if err := ReadNodes(strings.NewReader("a 2 10\nb 3 10\n"), nl); err != nil {
		t.Fatal(err)
	}
	// Net cut off mid-record: degree 2 declared, one pin present.
	text := "NetDegree : 2 n\na O : 0 0\n"
	if err := ReadNets(strings.NewReader(text), nl); !errors.Is(err, ErrMalformedInput) {
		t.Fatalf("err = %v, want ErrMalformedInput", err)
	}
	// Totals mismatch: NumNets promises two, file holds one.
	nl2 := netlist.New("q2")
	if err := ReadNodes(strings.NewReader("a 2 10\nb 3 10\n"), nl2); err != nil {
		t.Fatal(err)
	}
	text = "NumNets : 2\nNumPins : 2\nNetDegree : 2 n\na O : 0 0\nb I : 0 0\n"
	if err := ReadNets(strings.NewReader(text), nl2); !errors.Is(err, ErrMalformedInput) {
		t.Fatalf("totals: err = %v, want ErrMalformedInput", err)
	}
}

func TestReadNetsRejectsNonFiniteOffsets(t *testing.T) {
	nl := netlist.New("q")
	if err := ReadNodes(strings.NewReader("a 2 10\nb 3 10\n"), nl); err != nil {
		t.Fatal(err)
	}
	text := "NetDegree : 2 n\na O : NaN 0\nb I : 0 0\n"
	if err := ReadNets(strings.NewReader(text), nl); !errors.Is(err, ErrMalformedInput) {
		t.Fatalf("err = %v, want ErrMalformedInput", err)
	}
}

func TestReadPlRejectsNonFinitePositions(t *testing.T) {
	nl := netlist.New("q")
	if err := ReadNodes(strings.NewReader("a 2 10\n"), nl); err != nil {
		t.Fatal(err)
	}
	pl := netlist.NewPlacement(nl)
	for _, bad := range []string{"a NaN 0 : N\n", "a 0 Inf : N\n"} {
		if err := ReadPl(strings.NewReader(bad), nl, pl); !errors.Is(err, ErrMalformedInput) {
			t.Errorf("%q: err = %v, want ErrMalformedInput", bad, err)
		}
	}
}
