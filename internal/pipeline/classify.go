package pipeline

import "errors"

// Class names of the error taxonomy, shared by dpplace's run report, the
// daemon's job records and the journal. Classify maps any pipeline error to
// exactly one of them.
const (
	ClassOK         = "ok"
	ClassTimeout    = "timeout"
	ClassDiverged   = "diverged"
	ClassDegenerate = "degenerate-groups"
	ClassMalformed  = "malformed-input"
	ClassError      = "error"
)

// Classify maps err to its taxonomy class string. A nil error is ClassOK;
// an error outside the sentinel taxonomy is ClassError. The order mirrors
// the sentinels' severity: a chain wrapping several sentinels (rare, but
// "timeout while recovering from divergence" happens) reports the first
// match in this order.
func Classify(err error) string {
	switch {
	case err == nil:
		return ClassOK
	case errors.Is(err, ErrTimeout):
		return ClassTimeout
	case errors.Is(err, ErrDiverged):
		return ClassDiverged
	case errors.Is(err, ErrDegenerateGroups):
		return ClassDegenerate
	case errors.Is(err, ErrMalformedInput):
		return ClassMalformed
	default:
		return ClassError
	}
}

// Retryable reports whether a failed placement is worth re-running with
// damped options. The judgment is per sentinel:
//
//   - ErrDiverged: yes. The health guard exhausted its recovery budget, but
//     a rerun with a gentler schedule (fewer inner iterations, fallback
//     degradation policy) regularly converges — that is exactly what the
//     in-solve rollback/re-anneal machinery does at a smaller scale.
//   - ErrDegenerateGroups: yes. It only escapes under DegradeFail; a retry
//     under DegradeFallback places the offending groups as plain cells.
//   - ErrTimeout: no. The run consumed its whole budget; an identical rerun
//     consumes another budget to reach the same deadline.
//   - ErrMalformedInput: no. The input does not improve by being re-read.
//   - anything else: no — unknown failures are not assumed transient.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTimeout) || errors.Is(err, ErrMalformedInput) {
		return false
	}
	return errors.Is(err, ErrDiverged) || errors.Is(err, ErrDegenerateGroups)
}
