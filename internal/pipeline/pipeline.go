// Package pipeline defines the cross-cutting resilience vocabulary of the
// placement flow: the error taxonomy every stage wraps its failures in, and
// the cooperative cancellation helpers threaded through the solvers.
//
// The taxonomy is deliberately small. Callers branch on four conditions with
// errors.Is and treat everything else as a generic failure:
//
//	ErrTimeout          — a stage deadline or the pipeline budget expired;
//	                      the result carries the best iterate found so far.
//	ErrDiverged         — the numerical-health guard exhausted its recovery
//	                      budget (NaN/Inf objective or gradient, repeated
//	                      step collapse).
//	ErrDegenerateGroups — datapath extraction produced groups the placer
//	                      cannot honor (zero stages, taller or wider than
//	                      the core).
//	ErrMalformedInput   — an input file is syntactically or semantically
//	                      invalid (hostile headers, NaN coordinates,
//	                      truncated records).
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/faultinject"
)

// Sentinel errors of the placement flow. Stages wrap them with context via
// fmt.Errorf("...: %w", ...), so callers test with errors.Is.
var (
	ErrTimeout          = errors.New("stage deadline exceeded")
	ErrDiverged         = errors.New("optimization diverged")
	ErrDegenerateGroups = errors.New("degenerate datapath groups")
	ErrMalformedInput   = errors.New("malformed input")
)

// StageError wraps err with the stage name, preserving the sentinel chain.
func StageError(stage string, err error) error {
	return fmt.Errorf("%s: %w", stage, err)
}

// Expired reports whether ctx is done. A nil ctx never expires, so solvers
// can take a context unconditionally without the hot loop paying for one.
// The faultinject deadline site forces expiry deterministically in tests.
func Expired(ctx context.Context) bool {
	if faultinject.Hit(faultinject.SiteDeadline) {
		return true
	}
	if ctx == nil {
		return false
	}
	return ctx.Err() != nil
}

// WithBudget derives a stage context bounded by d. A zero or negative budget
// returns ctx unchanged with a no-op cancel, so call sites can defer cancel
// unconditionally.
func WithBudget(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}
