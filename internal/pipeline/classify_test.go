package pipeline

import (
	"errors"
	"fmt"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ClassOK},
		{ErrTimeout, ClassTimeout},
		{ErrDiverged, ClassDiverged},
		{ErrDegenerateGroups, ClassDegenerate},
		{ErrMalformedInput, ClassMalformed},
		{errors.New("disk on fire"), ClassError},
		{StageError("global", ErrTimeout), ClassTimeout},
		{fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", ErrDiverged)), ClassDiverged},
		// Timeout outranks divergence when both are in the chain.
		{fmt.Errorf("%w during recovery from %w", ErrTimeout, ErrDiverged), ClassTimeout},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestRetryable(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrTimeout, false},
		{ErrMalformedInput, false},
		{ErrDiverged, true},
		{ErrDegenerateGroups, true},
		{errors.New("unknown"), false},
		{StageError("global", ErrDiverged), true},
		// A divergence that also hit the deadline must not retry: the budget
		// is spent.
		{fmt.Errorf("%w during recovery from %w", ErrTimeout, ErrDiverged), false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
