package netlist

import (
	"fmt"
	"math"
	"sort"
)

// ClusterMap records a partition of a flat netlist's cells into clusters and
// the coarse netlist projected from that partition. It is the substrate of
// multilevel placement: the coarse netlist is placed cheaply, then positions
// are interpolated back down through the map.
//
// Invariants (checked by ProjectClusters and the multilevel property tests):
//   - every flat cell belongs to exactly one cluster (the partition is a
//     bijection between flat cells and (cluster, member-slot) pairs);
//   - fixed flat cells are singleton clusters, so pads and macros keep their
//     exact footprint and position at every level;
//   - total movable area is preserved: a coarse movable cell's area is the
//     sum of its members' areas.
type ClusterMap struct {
	// Flat is the fine netlist the partition was built on.
	Flat *Netlist
	// Coarse is the projected cluster-level netlist.
	Coarse *Netlist
	// ClusterOf[c] is the coarse cell holding flat cell c.
	ClusterOf []CellID
	// Members[k] lists the flat cells of coarse cell k in ascending order.
	Members [][]CellID
}

// NumClusters returns the number of coarse cells.
func (m *ClusterMap) NumClusters() int { return len(m.Members) }

// Ratio returns |coarse movable| / |flat movable|, the per-level coarsening
// ratio multilevel placement steers by.
func (m *ClusterMap) Ratio() float64 {
	fm := m.Flat.NumMovable()
	if fm == 0 {
		return 1
	}
	return float64(m.Coarse.NumMovable()) / float64(fm)
}

// ProjectClusters builds the coarse netlist for a cluster assignment.
// clusterOf maps every flat cell to a non-negative cluster id; ids need not
// be contiguous — clusters are renumbered deterministically by their lowest
// flat member. Fixed cells must be singletons (a cluster containing a fixed
// cell contains nothing else).
//
// Projection rules:
//   - A singleton cluster keeps its cell's footprint, type and pin offsets
//     exactly. A multi-member cluster becomes a square "CLUSTER" cell whose
//     area is the sum of the member areas, with every pin at its center.
//   - Each flat net is folded: pins on cells of one cluster collapse to one
//     coarse pin; top-level terminal pins (Cell == NoCell) survive as-is.
//     Nets whose folded degree drops below 2 are internal and vanish.
//   - Folded 2-pin nets connecting the same pair of multi-member clusters
//     merge into one net with summed weight, shrinking the coarse problem
//     without changing its wirelength objective.
func ProjectClusters(nl *Netlist, clusterOf []int) (*ClusterMap, error) {
	if len(clusterOf) != nl.NumCells() {
		return nil, fmt.Errorf("netlist: cluster map covers %d of %d cells",
			len(clusterOf), nl.NumCells())
	}

	// Renumber clusters by their lowest member so the coarse cell order is a
	// deterministic function of the partition alone.
	compact := map[int]int{}
	var members [][]CellID
	for c := range nl.Cells {
		k := clusterOf[c]
		if k < 0 {
			return nil, fmt.Errorf("netlist: cell %d has negative cluster id %d", c, k)
		}
		ck, ok := compact[k]
		if !ok {
			ck = len(members)
			compact[k] = ck
			members = append(members, nil)
		}
		members[ck] = append(members[ck], CellID(c))
	}
	clusters := make([]CellID, nl.NumCells())
	for ck, ms := range members {
		for _, c := range ms {
			clusters[c] = CellID(ck)
		}
	}

	coarse := New(nl.Name + ".coarse")
	coarse.Reserve(len(members), nl.NumNets(), nl.NumPins())
	for ck, ms := range members {
		if len(ms) == 1 {
			cell := nl.Cell(ms[0])
			coarse.MustAddCell(fmt.Sprintf("cl%d.%s", ck, cell.Name),
				cell.Type, cell.W, cell.H, cell.Fixed)
			continue
		}
		area := 0.0
		for _, c := range ms {
			cell := nl.Cell(c)
			if cell.Fixed {
				return nil, fmt.Errorf("netlist: fixed cell %q clustered with %d others",
					cell.Name, len(ms)-1)
			}
			area += cell.Area()
		}
		side := math.Sqrt(area)
		coarse.MustAddCell(fmt.Sprintf("cl%d", ck), "CLUSTER", side, side, false)
	}

	// Fold nets. For merge bookkeeping, a folded 2-pin net between two
	// multi-member clusters is keyed by its (low, high) cluster pair.
	type pairKey struct{ a, b CellID }
	merged := map[pairKey]NetID{}
	multi := func(k CellID) bool { return len(members[k]) > 1 }
	var ends []Endpoint
	seen := make([]int, len(members)) // seen[k] = net index + 1 when k already folded
	endOf := make([]int, len(members))
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		ends = ends[:0]
		for _, pid := range net.Pins {
			pin := nl.Pin(pid)
			if pin.Cell == NoCell {
				ends = append(ends, Endpoint{
					Cell: NoCell, Pin: pin.Name, Dir: pin.Dir, DX: pin.DX, DY: pin.DY,
				})
				continue
			}
			k := clusters[pin.Cell]
			if seen[k] == ni+1 {
				// Another member pin of the same cluster: the endpoint exists;
				// an output pin upgrades its direction so Driver() still works.
				if pin.Dir == DirOutput {
					ends[endOf[k]].Dir = DirOutput
				}
				continue
			}
			seen[k] = ni + 1
			endOf[k] = len(ends)
			e := Endpoint{Cell: k, Pin: pin.Name, Dir: pin.Dir}
			if multi(k) {
				cell := coarse.Cell(k)
				e.DX, e.DY = cell.W/2, cell.H/2
			} else {
				e.DX, e.DY = pin.DX, pin.DY
			}
			ends = append(ends, e)
		}
		if len(ends) < 2 {
			continue // internal to one cluster
		}
		if len(ends) == 2 && ends[0].Cell != NoCell && ends[1].Cell != NoCell &&
			multi(ends[0].Cell) && multi(ends[1].Cell) {
			key := pairKey{ends[0].Cell, ends[1].Cell}
			if key.a > key.b {
				key.a, key.b = key.b, key.a
			}
			if prev, ok := merged[key]; ok {
				coarse.Nets[prev].Weight += net.Weight
				continue
			}
			id := coarse.MustAddNet(net.Name, net.Weight, ends...)
			merged[key] = id
			continue
		}
		coarse.MustAddNet(net.Name, net.Weight, ends...)
	}

	return &ClusterMap{
		Flat:      nl,
		Coarse:    coarse,
		ClusterOf: clusters,
		Members:   members,
	}, nil
}

// ProjectPlacement returns the coarse placement induced by a flat one: each
// coarse cell is centered on the area-weighted centroid of its members, and
// singleton clusters (in particular fixed pads) keep their exact position.
func (m *ClusterMap) ProjectPlacement(flat *Placement) *Placement {
	pl := NewPlacement(m.Coarse)
	for ck, ms := range m.Members {
		cell := m.Coarse.Cell(CellID(ck))
		if len(ms) == 1 {
			pl.X[ck] = flat.X[ms[0]]
			pl.Y[ck] = flat.Y[ms[0]]
			continue
		}
		cx, cy, area := 0.0, 0.0, 0.0
		for _, c := range ms {
			fc := m.Flat.Cell(c)
			a := fc.Area()
			cx += a * (flat.X[c] + fc.W/2)
			cy += a * (flat.Y[c] + fc.H/2)
			area += a
		}
		pl.X[ck] = cx/area - cell.W/2
		pl.Y[ck] = cy/area - cell.H/2
	}
	return pl
}

// InterpolatePlacement pushes a coarse placement down onto the flat cells:
// every movable member is centered on its cluster's center (fixed members
// keep their position). The density penalty of the next refinement level
// spreads the coincident members apart again.
func (m *ClusterMap) InterpolatePlacement(coarse, flat *Placement) {
	for ck, ms := range m.Members {
		cell := m.Coarse.Cell(CellID(ck))
		cx := coarse.X[ck] + cell.W/2
		cy := coarse.Y[ck] + cell.H/2
		for _, c := range ms {
			fc := m.Flat.Cell(c)
			if fc.Fixed {
				continue
			}
			flat.X[c] = cx - fc.W/2
			flat.Y[c] = cy - fc.H/2
		}
	}
}

// CheckBijection verifies the partition is a bijection between flat cells
// and (cluster, member) slots: every cell appears in exactly one member list
// and that list's cluster matches ClusterOf. It is the invariant the
// unclustering step of multilevel placement relies on.
func (m *ClusterMap) CheckBijection() error {
	count := make([]int, m.Flat.NumCells())
	for ck, ms := range m.Members {
		if !sort.SliceIsSorted(ms, func(i, j int) bool { return ms[i] < ms[j] }) {
			return fmt.Errorf("netlist: cluster %d member list is not sorted", ck)
		}
		for _, c := range ms {
			if int(c) < 0 || int(c) >= len(count) {
				return fmt.Errorf("netlist: cluster %d lists invalid cell %d", ck, c)
			}
			count[c]++
			if m.ClusterOf[c] != CellID(ck) {
				return fmt.Errorf("netlist: cell %d listed in cluster %d but mapped to %d",
					c, ck, m.ClusterOf[c])
			}
		}
	}
	for c, n := range count {
		if n != 1 {
			return fmt.Errorf("netlist: cell %d appears in %d clusters", c, n)
		}
	}
	return nil
}
