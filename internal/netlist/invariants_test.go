package netlist

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// randomDesign builds a seeded random netlist + placement for the property
// tests below.
func randomDesign(seed int64) (*Netlist, *Placement) {
	rng := rand.New(rand.NewSource(seed))
	nl := New("prop")
	n := 5 + rng.Intn(30)
	for i := 0; i < n; i++ {
		nl.MustAddCell(fmt.Sprintf("c%d", i), "STD", 1+rng.Float64()*5, 10, false)
	}
	nets := 3 + rng.Intn(20)
	for k := 0; k < nets; k++ {
		deg := 2 + rng.Intn(4)
		ends := make([]Endpoint, 0, deg)
		for j := 0; j < deg; j++ {
			ends = append(ends, Endpoint{
				Cell: CellID(rng.Intn(n)),
				Pin:  fmt.Sprintf("p%d_%d", k, j),
				Dir:  DirInput,
				DX:   rng.Float64() * 2,
				DY:   rng.Float64() * 10,
			})
		}
		nl.MustAddNet(fmt.Sprintf("n%d", k), 0.5+rng.Float64(), ends...)
	}
	pl := NewPlacement(nl)
	for i := 0; i < n; i++ {
		pl.X[i] = rng.Float64() * 500
		pl.Y[i] = rng.Float64() * 500
	}
	return nl, pl
}

// Property: HPWL is invariant under rigid translation of the placement.
func TestHPWLTranslationInvariant(t *testing.T) {
	f := func(seed int64, dx, dy float64) bool {
		if math.IsNaN(dx) || math.IsInf(dx, 0) || math.IsNaN(dy) || math.IsInf(dy, 0) {
			return true
		}
		dx = math.Mod(dx, 1e5)
		dy = math.Mod(dy, 1e5)
		nl, pl := randomDesign(seed)
		before := pl.HPWL(nl)
		for i := range pl.X {
			pl.X[i] += dx
			pl.Y[i] += dy
		}
		after := pl.HPWL(nl)
		return math.Abs(before-after) < 1e-6*(1+before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: scaling all coordinates and offsets by k scales HPWL by k.
func TestHPWLScaleCovariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		k := 0.25 + rng.Float64()*8
		nl, pl := randomDesign(seed)
		before := pl.HPWL(nl)
		for i := range pl.X {
			pl.X[i] *= k
			pl.Y[i] *= k
		}
		for i := range nl.Pins {
			nl.Pins[i].DX *= k
			nl.Pins[i].DY *= k
		}
		after := pl.HPWL(nl)
		return math.Abs(after-k*before) < 1e-6*(1+k*before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: total displacement is symmetric and zero iff identical.
func TestDisplacementMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		nl, p := randomDesign(seed)
		q := p.Clone()
		if p.TotalDisplacement(nl, q) != 0 {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 1))
		for i := range q.X {
			q.X[i] += rng.NormFloat64()
		}
		d1 := p.TotalDisplacement(nl, q)
		d2 := q.TotalDisplacement(nl, p)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0 && p.MaxDisplacement(nl, q) <= d1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: NetBBox always contains every pin of the net.
func TestNetBBoxContainsPins(t *testing.T) {
	f := func(seed int64) bool {
		nl, pl := randomDesign(seed)
		for ni := range nl.Nets {
			bb := pl.NetBBox(nl, NetID(ni))
			for _, pid := range nl.Nets[ni].Pins {
				p := pl.PinPos(nl, pid)
				if p.X < bb.Lo.X-1e-9 || p.X > bb.Hi.X+1e-9 ||
					p.Y < bb.Lo.Y-1e-9 || p.Y > bb.Hi.Y+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: ClampInto is idempotent and always lands inside the region.
func TestClampIntoIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		nl, pl := randomDesign(seed)
		region := geom.NewRect(0, 0, 120, 120)
		pl.ClampInto(nl, region)
		snapshot := pl.Clone()
		pl.ClampInto(nl, region)
		for i := range pl.X {
			if pl.X[i] != snapshot.X[i] || pl.Y[i] != snapshot.Y[i] {
				return false
			}
			r := pl.CellRect(nl, CellID(i))
			if !region.ContainsRect(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
