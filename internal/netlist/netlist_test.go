package netlist

import (
	"strings"
	"testing"
)

// buildTiny returns a 3-cell, 2-net netlist used across tests:
//
//	a --n1--> b --n2--> c
func buildTiny(t *testing.T) (*Netlist, CellID, CellID, CellID) {
	t.Helper()
	nl := New("tiny")
	a := nl.MustAddCell("a", "INV", 2, 1, false)
	b := nl.MustAddCell("b", "INV", 2, 1, false)
	c := nl.MustAddCell("c", "DFF", 4, 1, false)
	nl.MustAddNet("n1", 1,
		Endpoint{Cell: a, Pin: "Y", Dir: DirOutput, DX: 2, DY: 0.5},
		Endpoint{Cell: b, Pin: "A", Dir: DirInput, DX: 0, DY: 0.5},
	)
	nl.MustAddNet("n2", 1,
		Endpoint{Cell: b, Pin: "Y", Dir: DirOutput, DX: 2, DY: 0.5},
		Endpoint{Cell: c, Pin: "D", Dir: DirInput, DX: 0, DY: 0.5},
	)
	if err := nl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return nl, a, b, c
}

func TestBuildAndLookup(t *testing.T) {
	nl, a, _, _ := buildTiny(t)
	if nl.NumCells() != 3 || nl.NumNets() != 2 || nl.NumPins() != 4 {
		t.Fatalf("counts = %d/%d/%d", nl.NumCells(), nl.NumNets(), nl.NumPins())
	}
	if nl.CellByName("a") != a {
		t.Errorf("CellByName(a) = %d", nl.CellByName("a"))
	}
	if nl.CellByName("zzz") != NoCell {
		t.Error("missing cell should return NoCell")
	}
	if nl.NetByName("n1") == NoNet {
		t.Error("NetByName(n1) missing")
	}
	if nl.NetByName("nope") != NoNet {
		t.Error("missing net should return NoNet")
	}
	if nl.Cell(a).Area() != 2 {
		t.Errorf("Area = %g", nl.Cell(a).Area())
	}
}

func TestDuplicateCellRejected(t *testing.T) {
	nl := New("d")
	nl.MustAddCell("x", "INV", 1, 1, false)
	if _, err := nl.AddCell("x", "INV", 1, 1, false); err == nil {
		t.Fatal("duplicate cell accepted")
	}
	if _, err := nl.AddCell("bad", "INV", 0, 1, false); err == nil {
		t.Fatal("zero-width cell accepted")
	}
}

func TestDuplicateNetRejected(t *testing.T) {
	nl := New("d")
	a := nl.MustAddCell("a", "INV", 1, 1, false)
	nl.MustAddNet("n", 1, Endpoint{Cell: a, Pin: "A", Dir: DirInput})
	if _, err := nl.AddNet("n", 1, Endpoint{Cell: a, Pin: "B", Dir: DirInput}); err == nil {
		t.Fatal("duplicate net accepted")
	}
	if _, err := nl.AddNet("m", 1, Endpoint{Cell: 99, Pin: "A", Dir: DirInput}); err == nil {
		t.Fatal("invalid cell ref accepted")
	}
}

func TestNetWeightDefault(t *testing.T) {
	nl := New("w")
	a := nl.MustAddCell("a", "INV", 1, 1, false)
	id := nl.MustAddNet("n", 0, Endpoint{Cell: a, Pin: "A", Dir: DirInput})
	if nl.Net(id).Weight != 1 {
		t.Errorf("default weight = %g, want 1", nl.Net(id).Weight)
	}
}

func TestDriver(t *testing.T) {
	nl, a, _, _ := buildTiny(t)
	n1 := nl.NetByName("n1")
	d := nl.Driver(n1)
	if d < 0 || nl.Pin(d).Cell != a {
		t.Fatalf("Driver(n1) = pin %d on cell %d, want cell %d", d, nl.Pin(d).Cell, a)
	}
	// A net with only inputs has no driver.
	c := nl.MustAddCell("x", "INV", 1, 1, false)
	n := nl.MustAddNet("ni", 1, Endpoint{Cell: c, Pin: "A", Dir: DirInput})
	if nl.Driver(n) != -1 {
		t.Error("input-only net should have no driver")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	nl, _, _, _ := buildTiny(t)
	nl.Pins[0].Net = 99
	if err := nl.Validate(); err == nil || !strings.Contains(err.Error(), "invalid net") {
		t.Fatalf("Validate missed bad pin->net: %v", err)
	}

	nl2, _, _, _ := buildTiny(t)
	nl2.Nets[0].Pins[0] = 999
	if err := nl2.Validate(); err == nil {
		t.Fatal("Validate missed bad net->pin")
	}

	nl3, _, _, _ := buildTiny(t)
	nl3.Nets = append(nl3.Nets, Net{Name: "empty"})
	if err := nl3.Validate(); err == nil || !strings.Contains(err.Error(), "no pins") {
		t.Fatalf("Validate missed empty net: %v", err)
	}

	nl4, _, _, _ := buildTiny(t)
	nl4.Pins[0].Cell = 2 // breaks the cell back-reference
	if err := nl4.Validate(); err == nil {
		t.Fatal("Validate missed cell back-reference mismatch")
	}
}

func TestRebuildIndex(t *testing.T) {
	nl, a, _, _ := buildTiny(t)
	// Simulate deserialization: wipe the maps.
	nl.cellByName = nil
	nl.netByName = nil
	nl.RebuildIndex()
	if nl.CellByName("a") != a {
		t.Error("RebuildIndex lost cell names")
	}
	if nl.NetByName("n2") == NoNet {
		t.Error("RebuildIndex lost net names")
	}
}

func TestStats(t *testing.T) {
	nl, _, _, _ := buildTiny(t)
	nl.MustAddCell("pad", "PAD", 1, 1, true)
	s := nl.ComputeStats()
	if s.Cells != 4 || s.Movable != 3 || s.Fixed != 1 {
		t.Errorf("cell stats = %+v", s)
	}
	if s.MaxDegree != 2 || s.AvgDegree != 2 {
		t.Errorf("degree stats = %+v", s)
	}
	if s.MovableArea != 2+2+4 {
		t.Errorf("MovableArea = %g", s.MovableArea)
	}
}

func TestMovableHelpers(t *testing.T) {
	nl, _, _, _ := buildTiny(t)
	nl.MustAddCell("pad", "PAD", 10, 10, true)
	if nl.NumMovable() != 3 {
		t.Errorf("NumMovable = %d", nl.NumMovable())
	}
	if nl.MovableArea() != 8 {
		t.Errorf("MovableArea = %g", nl.MovableArea())
	}
}
