package netlist

import (
	"math"
	"testing"
)

// testNetlist builds a small flat design: four movable cells, one fixed pad,
// and three nets (one of which will fold internal to a cluster).
func testNetlist(t *testing.T) *Netlist {
	t.Helper()
	nl := New("t")
	a := nl.MustAddCell("a", "AND2", 2, 1, false)
	b := nl.MustAddCell("b", "AND2", 2, 1, false)
	c := nl.MustAddCell("c", "DFF", 3, 1, false)
	d := nl.MustAddCell("d", "DFF", 3, 1, false)
	p := nl.MustAddCell("p", "PAD", 1, 1, true)
	nl.MustAddNet("n_ab", 1,
		Endpoint{Cell: a, Pin: "Y", Dir: DirOutput},
		Endpoint{Cell: b, Pin: "A", Dir: DirInput})
	nl.MustAddNet("n_bc", 2,
		Endpoint{Cell: b, Pin: "Y", Dir: DirOutput},
		Endpoint{Cell: c, Pin: "D", Dir: DirInput},
		Endpoint{Cell: d, Pin: "D", Dir: DirInput})
	nl.MustAddNet("n_cp", 1,
		Endpoint{Cell: c, Pin: "Q", Dir: DirOutput},
		Endpoint{Cell: p, Pin: "IO", Dir: DirInput, DX: 0.5, DY: 0.5})
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestProjectClustersBasics(t *testing.T) {
	nl := testNetlist(t)
	// {a,b} merge, {c,d} merge, pad p stays a singleton.
	cm, err := ProjectClusters(nl, []int{7, 7, 3, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.CheckBijection(); err != nil {
		t.Fatal(err)
	}
	if got := cm.NumClusters(); got != 3 {
		t.Fatalf("NumClusters = %d, want 3", got)
	}
	if got, want := cm.Coarse.MovableArea(), nl.MovableArea(); math.Abs(got-want) > 1e-9 {
		t.Errorf("movable area not preserved: %g vs %g", got, want)
	}
	// n_ab folds internal to cluster {a,b} and must vanish; n_bc folds to a
	// 2-pin net {ab}-{cd}; n_cp keeps the pad endpoint.
	if got := cm.Coarse.NumNets(); got != 2 {
		t.Fatalf("coarse nets = %d, want 2", got)
	}
	for i := range cm.Coarse.Nets {
		if cm.Coarse.Nets[i].Degree() < 2 {
			t.Errorf("coarse net %q has degree %d", cm.Coarse.Nets[i].Name, cm.Coarse.Nets[i].Degree())
		}
	}
	// The pad cluster keeps its footprint and fixedness.
	pc := cm.ClusterOf[4]
	if cell := cm.Coarse.Cell(pc); !cell.Fixed || cell.W != 1 || cell.H != 1 {
		t.Errorf("pad cluster lost its identity: %+v", cell)
	}
	if err := cm.Coarse.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProjectClustersMergesParallelTwoPinNets(t *testing.T) {
	nl := New("m")
	var cells []CellID
	for _, name := range []string{"a", "b", "c", "d"} {
		cells = append(cells, nl.MustAddCell(name, "BUF", 1, 1, false))
	}
	// Two parallel nets between the {a,b} and {c,d} clusters must merge into
	// one coarse net with summed weight.
	nl.MustAddNet("n1", 1.5,
		Endpoint{Cell: cells[0], Pin: "Y", Dir: DirOutput},
		Endpoint{Cell: cells[2], Pin: "A", Dir: DirInput})
	nl.MustAddNet("n2", 2.5,
		Endpoint{Cell: cells[1], Pin: "Y", Dir: DirOutput},
		Endpoint{Cell: cells[3], Pin: "A", Dir: DirInput})
	cm, err := ProjectClusters(nl, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.Coarse.NumNets(); got != 1 {
		t.Fatalf("coarse nets = %d, want 1 (parallel 2-pin nets merged)", got)
	}
	if w := cm.Coarse.Nets[0].Weight; w != 4 {
		t.Errorf("merged weight = %g, want 4", w)
	}
}

func TestProjectClustersRejectsBadInput(t *testing.T) {
	nl := testNetlist(t)
	if _, err := ProjectClusters(nl, []int{0, 1}); err == nil {
		t.Error("short cluster map accepted")
	}
	if _, err := ProjectClusters(nl, []int{0, 1, 2, 3, -1}); err == nil {
		t.Error("negative cluster id accepted")
	}
	// Fixed cell clustered with a movable one.
	if _, err := ProjectClusters(nl, []int{0, 1, 2, 5, 5}); err == nil {
		t.Error("fixed cell in a multi-member cluster accepted")
	}
}

func TestProjectAndInterpolatePlacement(t *testing.T) {
	nl := testNetlist(t)
	cm, err := ProjectClusters(nl, []int{0, 0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	flat := NewPlacement(nl)
	for i := range nl.Cells {
		flat.X[i] = float64(i) * 10
		flat.Y[i] = float64(i)
	}
	coarse := cm.ProjectPlacement(flat)
	// The pad singleton keeps its exact position.
	pc := cm.ClusterOf[4]
	if coarse.X[pc] != flat.X[4] || coarse.Y[pc] != flat.Y[4] {
		t.Errorf("pad moved during projection: (%g,%g)", coarse.X[pc], coarse.Y[pc])
	}
	// Cluster {a,b}: center must be the area-weighted centroid of a and b.
	k := cm.ClusterOf[0]
	cell := cm.Coarse.Cell(k)
	wantX := ((flat.X[0]+1)+(flat.X[1]+1))/2 - cell.W/2 // equal areas, W=2 ⇒ centers at +1
	if math.Abs(coarse.X[k]-wantX) > 1e-9 {
		t.Errorf("cluster x = %g, want %g", coarse.X[k], wantX)
	}

	// Interpolation centers members on the cluster; the pad must not move.
	down := NewPlacement(nl)
	down.X[4], down.Y[4] = flat.X[4], flat.Y[4]
	cm.InterpolatePlacement(coarse, down)
	if down.X[4] != flat.X[4] || down.Y[4] != flat.Y[4] {
		t.Error("interpolation moved a fixed cell")
	}
	for _, c := range []CellID{0, 1} {
		cc := down.X[c] + nl.Cell(c).W/2
		kc := coarse.X[k] + cell.W/2
		if math.Abs(cc-kc) > 1e-9 {
			t.Errorf("cell %d center %g, cluster center %g", c, cc, kc)
		}
	}
}
