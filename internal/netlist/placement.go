package netlist

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Placement holds the lower-left coordinates of every cell in a Netlist,
// indexed by CellID. A Placement is always paired with the Netlist it was
// created for; the slices are parallel to Netlist.Cells.
type Placement struct {
	X, Y []float64
}

// NewPlacement returns a zeroed placement for nl.
func NewPlacement(nl *Netlist) *Placement {
	return &Placement{
		X: make([]float64, nl.NumCells()),
		Y: make([]float64, nl.NumCells()),
	}
}

// Clone returns a deep copy.
func (p *Placement) Clone() *Placement {
	q := &Placement{
		X: make([]float64, len(p.X)),
		Y: make([]float64, len(p.Y)),
	}
	copy(q.X, p.X)
	copy(q.Y, p.Y)
	return q
}

// CopyFrom overwrites p with q's coordinates.
func (p *Placement) CopyFrom(q *Placement) {
	copy(p.X, q.X)
	copy(p.Y, q.Y)
}

// Loc returns the lower-left corner of cell c.
func (p *Placement) Loc(c CellID) geom.Point { return geom.Point{X: p.X[c], Y: p.Y[c]} }

// SetLoc sets the lower-left corner of cell c.
func (p *Placement) SetLoc(c CellID, pt geom.Point) {
	p.X[c] = pt.X
	p.Y[c] = pt.Y
}

// CellRect returns the placed footprint of cell c.
func (p *Placement) CellRect(nl *Netlist, c CellID) geom.Rect {
	cell := &nl.Cells[c]
	return geom.NewRect(p.X[c], p.Y[c], p.X[c]+cell.W, p.Y[c]+cell.H)
}

// CellCenter returns the placed center of cell c.
func (p *Placement) CellCenter(nl *Netlist, c CellID) geom.Point {
	cell := &nl.Cells[c]
	return geom.Point{X: p.X[c] + cell.W/2, Y: p.Y[c] + cell.H/2}
}

// PinPos returns the placed position of pin id. Pins on NoCell (top-level
// terminals) are positioned at their offsets directly.
func (p *Placement) PinPos(nl *Netlist, id PinID) geom.Point {
	pin := &nl.Pins[id]
	if pin.Cell == NoCell {
		return geom.Point{X: pin.DX, Y: pin.DY}
	}
	return geom.Point{X: p.X[pin.Cell] + pin.DX, Y: p.Y[pin.Cell] + pin.DY}
}

// NetBBox returns the bounding box of all pins of net n.
func (p *Placement) NetBBox(nl *Netlist, n NetID) geom.Rect {
	var b geom.BBox
	for _, pid := range nl.Nets[n].Pins {
		b.Expand(p.PinPos(nl, pid))
	}
	return b.Rect()
}

// HPWL returns the weighted half-perimeter wirelength of the whole design,
// the primary placement quality metric.
func (p *Placement) HPWL(nl *Netlist) float64 {
	total := 0.0
	for i := range nl.Nets {
		net := &nl.Nets[i]
		if len(net.Pins) < 2 {
			continue
		}
		var b geom.BBox
		for _, pid := range net.Pins {
			b.Expand(p.PinPos(nl, pid))
		}
		total += net.Weight * b.HalfPerimeter()
	}
	return total
}

// NetHPWL returns the half-perimeter wirelength of one net (unweighted).
func (p *Placement) NetHPWL(nl *Netlist, n NetID) float64 {
	var b geom.BBox
	for _, pid := range nl.Nets[n].Pins {
		b.Expand(p.PinPos(nl, pid))
	}
	return b.HalfPerimeter()
}

// TotalDisplacement returns the summed Manhattan displacement from placement
// q to p over movable cells — the standard legalization-cost metric.
func (p *Placement) TotalDisplacement(nl *Netlist, q *Placement) float64 {
	total := 0.0
	for i := range nl.Cells {
		if nl.Cells[i].Fixed {
			continue
		}
		total += math.Abs(p.X[i]-q.X[i]) + math.Abs(p.Y[i]-q.Y[i])
	}
	return total
}

// MaxDisplacement returns the maximum Manhattan displacement from q to p
// over movable cells.
func (p *Placement) MaxDisplacement(nl *Netlist, q *Placement) float64 {
	maxd := 0.0
	for i := range nl.Cells {
		if nl.Cells[i].Fixed {
			continue
		}
		d := math.Abs(p.X[i]-q.X[i]) + math.Abs(p.Y[i]-q.Y[i])
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// ClampInto clamps every movable cell so its footprint stays inside region.
func (p *Placement) ClampInto(nl *Netlist, region geom.Rect) {
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Fixed {
			continue
		}
		p.X[i] = geom.Clamp(p.X[i], region.Lo.X, region.Hi.X-c.W)
		p.Y[i] = geom.Clamp(p.Y[i], region.Lo.Y, region.Hi.Y-c.H)
	}
}

// CheckLegal verifies that the placement is legal with respect to core: every
// movable cell inside the region, bottom-aligned to a row, on the site grid,
// and no two cells overlapping. Returns nil if legal.
func (p *Placement) CheckLegal(nl *Netlist, core *geom.Core) error {
	const eps = 1e-6
	type placed struct {
		id   CellID
		x, w float64
	}
	byRow := make(map[int][]placed)
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Fixed {
			continue
		}
		r := p.CellRect(nl, CellID(i))
		if !core.Region.ContainsRect(r) {
			return fmt.Errorf("placement: cell %q at %v outside core %v", c.Name, r, core.Region)
		}
		ri := core.RowIndex(p.Y[i] + eps)
		row := core.Rows[ri]
		if math.Abs(p.Y[i]-row.Y) > eps {
			return fmt.Errorf("placement: cell %q y=%g not row-aligned (nearest row y=%g)", c.Name, p.Y[i], row.Y)
		}
		if row.SiteW > 0 {
			k := (p.X[i] - row.X) / row.SiteW
			if math.Abs(k-math.Round(k)) > 1e-4 {
				return fmt.Errorf("placement: cell %q x=%g off site grid", c.Name, p.X[i])
			}
		}
		// Tall cells occupy several rows; register the span in each.
		nRows := int(math.Ceil(c.H/core.RowH() - eps))
		for dr := 0; dr < nRows && ri+dr < core.NumRows(); dr++ {
			byRow[ri+dr] = append(byRow[ri+dr], placed{CellID(i), p.X[i], c.W})
		}
	}
	// Scan rows in index order so the first-reported overlap is the same
	// pair on every run (map order would vary the error message).
	for r := 0; r < core.NumRows(); r++ {
		cells := byRow[r]
		sort.Slice(cells, func(a, b int) bool { return cells[a].x < cells[b].x })
		for k := 1; k < len(cells); k++ {
			prev, cur := cells[k-1], cells[k]
			if prev.x+prev.w > cur.x+eps {
				return fmt.Errorf("placement: cells %q and %q overlap in a row",
					nl.Cells[prev.id].Name, nl.Cells[cur.id].Name)
			}
		}
	}
	return nil
}
