package netlist

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestPinPosAndBBox(t *testing.T) {
	nl, a, b, _ := buildTiny(t)
	pl := NewPlacement(nl)
	pl.SetLoc(a, geom.Point{X: 0, Y: 0})
	pl.SetLoc(b, geom.Point{X: 10, Y: 5})

	n1 := nl.NetByName("n1")
	// Pin of a on n1 is at (0+2, 0+0.5); pin of b at (10+0, 5+0.5).
	bb := pl.NetBBox(nl, n1)
	want := geom.Rect{Lo: geom.Point{X: 2, Y: 0.5}, Hi: geom.Point{X: 10, Y: 5.5}}
	if bb != want {
		t.Fatalf("NetBBox = %v, want %v", bb, want)
	}
	if got := pl.NetHPWL(nl, n1); got != 13 {
		t.Errorf("NetHPWL = %g, want 13", got)
	}
}

func TestTopLevelTerminalPin(t *testing.T) {
	nl := New("terminal")
	a := nl.MustAddCell("a", "INV", 2, 1, false)
	nl.MustAddNet("n", 1,
		Endpoint{Cell: NoCell, Pin: "IO", Dir: DirInput, DX: 50, DY: 60},
		Endpoint{Cell: a, Pin: "A", Dir: DirInput, DX: 0, DY: 0},
	)
	pl := NewPlacement(nl)
	pl.SetLoc(a, geom.Point{X: 10, Y: 10})
	n := nl.NetByName("n")
	if got := pl.NetHPWL(nl, n); got != 40+50 {
		t.Errorf("HPWL with terminal = %g, want 90", got)
	}
}

func TestHPWLWeighted(t *testing.T) {
	nl := New("w")
	a := nl.MustAddCell("a", "INV", 1, 1, false)
	b := nl.MustAddCell("b", "INV", 1, 1, false)
	nl.MustAddNet("n", 3,
		Endpoint{Cell: a, Pin: "Y", Dir: DirOutput},
		Endpoint{Cell: b, Pin: "A", Dir: DirInput},
	)
	pl := NewPlacement(nl)
	pl.SetLoc(b, geom.Point{X: 4, Y: 3})
	if got := pl.HPWL(nl); got != 3*(4+3) {
		t.Errorf("weighted HPWL = %g, want 21", got)
	}
}

func TestHPWLSkipsSinglePinNets(t *testing.T) {
	nl := New("s")
	a := nl.MustAddCell("a", "INV", 1, 1, false)
	nl.MustAddNet("n", 1, Endpoint{Cell: a, Pin: "A", Dir: DirInput})
	pl := NewPlacement(nl)
	pl.SetLoc(a, geom.Point{X: 100, Y: 100})
	if got := pl.HPWL(nl); got != 0 {
		t.Errorf("single-pin HPWL = %g, want 0", got)
	}
}

func TestCloneAndCopy(t *testing.T) {
	nl, a, _, _ := buildTiny(t)
	pl := NewPlacement(nl)
	pl.SetLoc(a, geom.Point{X: 1, Y: 2})
	cl := pl.Clone()
	cl.SetLoc(a, geom.Point{X: 9, Y: 9})
	if pl.X[a] != 1 || pl.Y[a] != 2 {
		t.Error("Clone aliased the original")
	}
	pl.CopyFrom(cl)
	if pl.X[a] != 9 {
		t.Error("CopyFrom did not copy")
	}
}

func TestDisplacement(t *testing.T) {
	nl, a, b, c := buildTiny(t)
	p := NewPlacement(nl)
	q := NewPlacement(nl)
	q.SetLoc(a, geom.Point{X: 3, Y: 4})
	q.SetLoc(b, geom.Point{X: 1, Y: 0})
	_ = c
	if got := p.TotalDisplacement(nl, q); got != 7+1 {
		t.Errorf("TotalDisplacement = %g, want 8", got)
	}
	if got := p.MaxDisplacement(nl, q); got != 7 {
		t.Errorf("MaxDisplacement = %g, want 7", got)
	}
}

func TestDisplacementIgnoresFixed(t *testing.T) {
	nl := New("f")
	a := nl.MustAddCell("pad", "PAD", 1, 1, true)
	p := NewPlacement(nl)
	q := NewPlacement(nl)
	q.SetLoc(a, geom.Point{X: 100, Y: 100})
	if got := p.TotalDisplacement(nl, q); got != 0 {
		t.Errorf("fixed displacement counted: %g", got)
	}
}

func TestClampInto(t *testing.T) {
	nl, a, b, _ := buildTiny(t)
	pl := NewPlacement(nl)
	pl.SetLoc(a, geom.Point{X: -5, Y: -5})
	pl.SetLoc(b, geom.Point{X: 99, Y: 99})
	pl.ClampInto(nl, geom.NewRect(0, 0, 50, 50))
	if pl.X[a] != 0 || pl.Y[a] != 0 {
		t.Errorf("a not clamped: (%g,%g)", pl.X[a], pl.Y[a])
	}
	// b is 2x1, so max X is 48, max Y is 49.
	if pl.X[b] != 48 || pl.Y[b] != 49 {
		t.Errorf("b not clamped: (%g,%g)", pl.X[b], pl.Y[b])
	}
}

func legalTestCore() *geom.Core {
	return geom.NewCore(geom.NewRect(0, 0, 100, 100), 10, 1)
}

func TestCheckLegalAccepts(t *testing.T) {
	nl, a, b, c := buildTiny(t)
	for _, id := range []CellID{a, b, c} {
		nl.Cells[id].H = 10
	}
	pl := NewPlacement(nl)
	pl.SetLoc(a, geom.Point{X: 0, Y: 0})
	pl.SetLoc(b, geom.Point{X: 2, Y: 0})
	pl.SetLoc(c, geom.Point{X: 4, Y: 10})
	if err := pl.CheckLegal(nl, legalTestCore()); err != nil {
		t.Fatalf("legal placement rejected: %v", err)
	}
}

func TestCheckLegalRejectsOverlap(t *testing.T) {
	nl, a, b, _ := buildTiny(t)
	nl.Cells[a].H = 10
	nl.Cells[b].H = 10
	pl := NewPlacement(nl)
	pl.SetLoc(a, geom.Point{X: 0, Y: 0})
	pl.SetLoc(b, geom.Point{X: 1, Y: 0}) // overlaps a (width 2)
	err := pl.CheckLegal(nl, legalTestCore())
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlap not caught: %v", err)
	}
}

func TestCheckLegalRejectsOffRow(t *testing.T) {
	nl, a, _, _ := buildTiny(t)
	nl.Cells[a].H = 10
	pl := NewPlacement(nl)
	pl.SetLoc(a, geom.Point{X: 0, Y: 3.5})
	err := pl.CheckLegal(nl, legalTestCore())
	if err == nil || !strings.Contains(err.Error(), "row-aligned") {
		t.Fatalf("off-row not caught: %v", err)
	}
}

func TestCheckLegalRejectsOutside(t *testing.T) {
	nl, a, _, _ := buildTiny(t)
	nl.Cells[a].H = 10
	pl := NewPlacement(nl)
	pl.SetLoc(a, geom.Point{X: 99.5, Y: 0})
	err := pl.CheckLegal(nl, legalTestCore())
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("outside not caught: %v", err)
	}
}

func TestCheckLegalRejectsOffSite(t *testing.T) {
	nl, a, _, _ := buildTiny(t)
	nl.Cells[a].H = 10
	pl := NewPlacement(nl)
	pl.SetLoc(a, geom.Point{X: 1.37, Y: 0})
	err := pl.CheckLegal(nl, legalTestCore())
	if err == nil || !strings.Contains(err.Error(), "site grid") {
		t.Fatalf("off-site not caught: %v", err)
	}
}

func TestCheckLegalMultiRowCell(t *testing.T) {
	nl := New("tall")
	a := nl.MustAddCell("tall", "MACRO", 10, 20, false) // spans 2 rows
	b := nl.MustAddCell("b", "INV", 2, 10, false)
	_ = nl.MustAddNet("n", 1,
		Endpoint{Cell: a, Pin: "A", Dir: DirInput},
		Endpoint{Cell: b, Pin: "Y", Dir: DirOutput},
	)
	pl := NewPlacement(nl)
	pl.SetLoc(a, geom.Point{X: 0, Y: 0})
	pl.SetLoc(b, geom.Point{X: 5, Y: 10}) // overlaps the tall cell's second row
	err := pl.CheckLegal(nl, legalTestCore())
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("multi-row overlap not caught: %v", err)
	}
	pl.SetLoc(b, geom.Point{X: 10, Y: 10})
	if err := pl.CheckLegal(nl, legalTestCore()); err != nil {
		t.Fatalf("legal multi-row arrangement rejected: %v", err)
	}
}

func TestCellRectAndCenter(t *testing.T) {
	nl, a, _, _ := buildTiny(t)
	pl := NewPlacement(nl)
	pl.SetLoc(a, geom.Point{X: 10, Y: 20})
	r := pl.CellRect(nl, a)
	if r != geom.NewRect(10, 20, 12, 21) {
		t.Errorf("CellRect = %v", r)
	}
	c := pl.CellCenter(nl, a)
	if math.Abs(c.X-11) > 1e-12 || math.Abs(c.Y-20.5) > 1e-12 {
		t.Errorf("CellCenter = %v", c)
	}
}
