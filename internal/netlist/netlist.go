// Package netlist models a flat gate-level design as a cell/pin/net
// hypergraph, the common substrate consumed by extraction, placement and
// evaluation. The representation is index-based (IDs into flat slices) for
// cache-friendly traversal of designs with 10^5+ cells.
//
// Conventions:
//   - Cell positions (held in Placement) refer to the cell's lower-left
//     corner, matching the Bookshelf standard.
//   - Pin offsets are relative to the cell's lower-left corner.
//   - Fixed cells (pads, macros) participate in nets but never move.
package netlist

import (
	"fmt"
	"math"
)

// CellID indexes a cell within a Netlist.
type CellID int32

// NetID indexes a net within a Netlist.
type NetID int32

// PinID indexes a pin within a Netlist.
type PinID int32

// NoCell is the sentinel for "no cell".
const NoCell CellID = -1

// NoNet is the sentinel for "no net".
const NoNet NetID = -1

// Dir is a pin direction.
type Dir uint8

// Pin directions.
const (
	DirInput Dir = iota
	DirOutput
	DirInout
)

// String names the pin direction.
func (d Dir) String() string {
	switch d {
	case DirInput:
		return "input"
	case DirOutput:
		return "output"
	case DirInout:
		return "inout"
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// Cell is one placeable (or fixed) instance.
type Cell struct {
	Name  string
	Type  string  // library cell class, e.g. "AND2", "DFF"; used by extraction
	W, H  float64 // footprint
	Fixed bool    // pads/macros that must not move
	Pins  []PinID // pins on this cell, in declaration order
}

// Area returns the cell footprint area.
func (c *Cell) Area() float64 { return c.W * c.H }

// Pin is one connection point: it belongs to exactly one cell (or is a
// top-level terminal when Cell == NoCell) and one net.
type Pin struct {
	Cell   CellID
	Net    NetID
	Name   string // pin name within the cell, e.g. "A", "Y"
	Dir    Dir
	DX, DY float64 // offset from the owning cell's lower-left corner
}

// Net is one hyperedge connecting two or more pins.
type Net struct {
	Name   string
	Weight float64
	Pins   []PinID
}

// Degree returns the number of pins on the net.
func (n *Net) Degree() int { return len(n.Pins) }

// Netlist is the full design hypergraph.
type Netlist struct {
	Name  string
	Cells []Cell
	Nets  []Net
	Pins  []Pin

	cellByName map[string]CellID
	netByName  map[string]NetID
}

// New returns an empty netlist with the given design name.
func New(name string) *Netlist {
	return &Netlist{
		Name:       name,
		cellByName: make(map[string]CellID),
		netByName:  make(map[string]NetID),
	}
}

// Reserve grows the cell/net/pin slices' capacity ahead of a bulk load.
// Counts are hints that bound allocation, not the final sizes; readers must
// cap hostile header counts before passing them here.
func (nl *Netlist) Reserve(cells, nets, pins int) {
	nl.Cells = growCap(nl.Cells, cells)
	nl.Nets = growCap(nl.Nets, nets)
	nl.Pins = growCap(nl.Pins, pins)
}

func growCap[T any](s []T, n int) []T {
	if n <= cap(s)-len(s) {
		return s
	}
	out := make([]T, len(s), len(s)+n)
	copy(out, s)
	return out
}

// NumCells returns the number of cells.
func (nl *Netlist) NumCells() int { return len(nl.Cells) }

// NumNets returns the number of nets.
func (nl *Netlist) NumNets() int { return len(nl.Nets) }

// NumPins returns the number of pins.
func (nl *Netlist) NumPins() int { return len(nl.Pins) }

// Cell returns the cell with the given id.
func (nl *Netlist) Cell(id CellID) *Cell { return &nl.Cells[id] }

// Net returns the net with the given id.
func (nl *Netlist) Net(id NetID) *Net { return &nl.Nets[id] }

// Pin returns the pin with the given id.
func (nl *Netlist) Pin(id PinID) *Pin { return &nl.Pins[id] }

// CellByName returns the id of the named cell, or NoCell.
func (nl *Netlist) CellByName(name string) CellID {
	if id, ok := nl.cellByName[name]; ok {
		return id
	}
	return NoCell
}

// NetByName returns the id of the named net, or NoNet.
func (nl *Netlist) NetByName(name string) NetID {
	if id, ok := nl.netByName[name]; ok {
		return id
	}
	return NoNet
}

// AddCell appends a cell and returns its id. Duplicate names are an error.
func (nl *Netlist) AddCell(name, typ string, w, h float64, fixed bool) (CellID, error) {
	if _, dup := nl.cellByName[name]; dup {
		return NoCell, fmt.Errorf("netlist: duplicate cell %q", name)
	}
	if !(w > 0) || !(h > 0) || math.IsInf(w, 0) || math.IsInf(h, 0) {
		// !(w > 0) also rejects NaN, which w <= 0 would let through.
		return NoCell, fmt.Errorf("netlist: cell %q has non-positive size %gx%g", name, w, h)
	}
	id := CellID(len(nl.Cells))
	nl.Cells = append(nl.Cells, Cell{Name: name, Type: typ, W: w, H: h, Fixed: fixed})
	nl.cellByName[name] = id
	return id, nil
}

// MustAddCell is AddCell for construction code where duplicates are bugs.
func (nl *Netlist) MustAddCell(name, typ string, w, h float64, fixed bool) CellID {
	id, err := nl.AddCell(name, typ, w, h, fixed)
	if err != nil {
		panic(err)
	}
	return id
}

// Endpoint describes one connection of a net under construction.
type Endpoint struct {
	Cell   CellID
	Pin    string
	Dir    Dir
	DX, DY float64
}

// AddNet appends a net connecting the given endpoints and returns its id.
// Weight <= 0 is normalized to 1.
func (nl *Netlist) AddNet(name string, weight float64, ends ...Endpoint) (NetID, error) {
	if _, dup := nl.netByName[name]; dup {
		return NoNet, fmt.Errorf("netlist: duplicate net %q", name)
	}
	if weight <= 0 {
		weight = 1
	}
	id := NetID(len(nl.Nets))
	net := Net{Name: name, Weight: weight, Pins: make([]PinID, 0, len(ends))}
	for _, e := range ends {
		if e.Cell != NoCell && (int(e.Cell) < 0 || int(e.Cell) >= len(nl.Cells)) {
			return NoNet, fmt.Errorf("netlist: net %q references invalid cell id %d", name, e.Cell)
		}
		pid := PinID(len(nl.Pins))
		nl.Pins = append(nl.Pins, Pin{
			Cell: e.Cell, Net: id, Name: e.Pin, Dir: e.Dir, DX: e.DX, DY: e.DY,
		})
		net.Pins = append(net.Pins, pid)
		if e.Cell != NoCell {
			nl.Cells[e.Cell].Pins = append(nl.Cells[e.Cell].Pins, pid)
		}
	}
	nl.Nets = append(nl.Nets, net)
	nl.netByName[name] = id
	return id, nil
}

// MustAddNet is AddNet for construction code where errors are bugs.
func (nl *Netlist) MustAddNet(name string, weight float64, ends ...Endpoint) NetID {
	id, err := nl.AddNet(name, weight, ends...)
	if err != nil {
		panic(err)
	}
	return id
}

// Validate checks structural invariants: index ranges, pin/net/cell
// cross-references, and net degrees. It returns the first violation found.
func (nl *Netlist) Validate() error {
	for i := range nl.Pins {
		p := &nl.Pins[i]
		if p.Cell != NoCell && (int(p.Cell) < 0 || int(p.Cell) >= len(nl.Cells)) {
			return fmt.Errorf("netlist: pin %d references invalid cell %d", i, p.Cell)
		}
		if int(p.Net) < 0 || int(p.Net) >= len(nl.Nets) {
			return fmt.Errorf("netlist: pin %d references invalid net %d", i, p.Net)
		}
	}
	for i := range nl.Nets {
		n := &nl.Nets[i]
		if len(n.Pins) == 0 {
			return fmt.Errorf("netlist: net %q has no pins", n.Name)
		}
		for _, pid := range n.Pins {
			if int(pid) < 0 || int(pid) >= len(nl.Pins) {
				return fmt.Errorf("netlist: net %q references invalid pin %d", n.Name, pid)
			}
			if nl.Pins[pid].Net != NetID(i) {
				return fmt.Errorf("netlist: net %q pin %d back-reference mismatch", n.Name, pid)
			}
		}
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		for _, pid := range c.Pins {
			if int(pid) < 0 || int(pid) >= len(nl.Pins) {
				return fmt.Errorf("netlist: cell %q references invalid pin %d", c.Name, pid)
			}
			if nl.Pins[pid].Cell != CellID(i) {
				return fmt.Errorf("netlist: cell %q pin %d back-reference mismatch", c.Name, pid)
			}
		}
	}
	return nil
}

// RebuildIndex regenerates the name lookup maps; needed after deserializing
// a Netlist constructed field-by-field rather than via Add*.
func (nl *Netlist) RebuildIndex() {
	nl.cellByName = make(map[string]CellID, len(nl.Cells))
	for i := range nl.Cells {
		nl.cellByName[nl.Cells[i].Name] = CellID(i)
	}
	nl.netByName = make(map[string]NetID, len(nl.Nets))
	for i := range nl.Nets {
		nl.netByName[nl.Nets[i].Name] = NetID(i)
	}
}

// Driver returns the id of the pin driving net n (the first output pin), or
// -1 when the net has no output pin (e.g. a primary-input net).
func (nl *Netlist) Driver(n NetID) PinID {
	for _, pid := range nl.Nets[n].Pins {
		if nl.Pins[pid].Dir == DirOutput {
			return pid
		}
	}
	return -1
}

// MovableArea returns the total area of movable cells.
func (nl *Netlist) MovableArea() float64 {
	a := 0.0
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed {
			a += nl.Cells[i].Area()
		}
	}
	return a
}

// NumMovable returns the number of movable cells.
func (nl *Netlist) NumMovable() int {
	n := 0
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed {
			n++
		}
	}
	return n
}

// Stats summarizes a netlist for benchmark tables.
type Stats struct {
	Cells, Movable, Fixed int
	Nets, Pins            int
	AvgDegree             float64
	MaxDegree             int
	MovableArea           float64
}

// ComputeStats gathers summary statistics.
func (nl *Netlist) ComputeStats() Stats {
	s := Stats{
		Cells:       nl.NumCells(),
		Movable:     nl.NumMovable(),
		Nets:        nl.NumNets(),
		Pins:        nl.NumPins(),
		MovableArea: nl.MovableArea(),
	}
	s.Fixed = s.Cells - s.Movable
	for i := range nl.Nets {
		d := nl.Nets[i].Degree()
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if s.Nets > 0 {
		s.AvgDegree = float64(s.Pins) / float64(s.Nets)
	}
	return s
}
