package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{4, 6}
	if got := p.Add(q); got != (Point{5, 8}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{3, 4}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %g, want 5", got)
	}
	if got := p.Manhattan(q); got != 7 {
		t.Errorf("Manhattan = %g, want 7", got)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	if r.Lo != (Point{1, 2}) || r.Hi != (Point{5, 7}) {
		t.Fatalf("NewRect did not normalize: %v", r)
	}
	if r.W() != 4 || r.H() != 5 || r.Area() != 20 {
		t.Errorf("W/H/Area = %g/%g/%g", r.W(), r.H(), r.Area())
	}
}

func TestRectEmpty(t *testing.T) {
	if !(Rect{}).Empty() {
		t.Error("zero Rect should be empty")
	}
	if NewRect(0, 0, 1, 1).Empty() {
		t.Error("unit Rect should not be empty")
	}
	degenerate := Rect{Point{3, 0}, Point{3, 5}} // zero width
	if !degenerate.Empty() {
		t.Error("zero-width Rect should be empty")
	}
	if degenerate.W() != 0 {
		t.Errorf("degenerate W = %g", degenerate.W())
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},    // closed on Lo
		{Point{10, 10}, false}, // open on Hi
		{Point{10, 5}, false},
		{Point{-1, 5}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 15, 15)
	got := a.Intersect(b)
	if got != NewRect(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if a.Overlap(b) != 25 {
		t.Errorf("Overlap = %g, want 25", a.Overlap(b))
	}
	u := a.Union(b)
	if u != NewRect(0, 0, 15, 15) {
		t.Errorf("Union = %v", u)
	}
	disjoint := NewRect(20, 20, 30, 30)
	if !a.Intersect(disjoint).Empty() {
		t.Error("disjoint intersect should be empty")
	}
	if a.Overlap(disjoint) != 0 {
		t.Error("disjoint overlap should be 0")
	}
}

func TestRectTranslateInset(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if got := r.Translate(Point{2, 3}); got != NewRect(2, 3, 12, 13) {
		t.Errorf("Translate = %v", got)
	}
	if got := r.Inset(2); got != NewRect(2, 2, 8, 8) {
		t.Errorf("Inset = %v", got)
	}
	if !r.Inset(6).Empty() {
		t.Error("over-inset should be empty")
	}
}

// Property: intersection area is symmetric and never exceeds either area.
func TestOverlapProperties(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 float64) bool {
		a := NewRect(mod100(x0), mod100(y0), mod100(x1), mod100(y1))
		b := NewRect(mod100(x2), mod100(y2), mod100(x3), mod100(y3))
		ov := a.Overlap(b)
		return ov == b.Overlap(a) && ov <= a.Area()+1e-9 && ov <= b.Area()+1e-9 && ov >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: union contains both operands.
func TestUnionContains(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 float64) bool {
		a := NewRect(mod100(x0), mod100(y0), mod100(x1), mod100(y1))
		b := NewRect(mod100(x2), mod100(y2), mod100(x3), mod100(y3))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mod100(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 100)
}

func TestBBox(t *testing.T) {
	var b BBox
	if !b.Empty() || b.HalfPerimeter() != 0 {
		t.Fatal("zero BBox should be empty with zero half-perimeter")
	}
	b.Expand(Point{3, 4})
	if b.Rect() != (Rect{Point{3, 4}, Point{3, 4}}) {
		t.Errorf("single-point bbox = %v", b.Rect())
	}
	b.Expand(Point{1, 8})
	b.Expand(Point{5, 2})
	want := Rect{Point{1, 2}, Point{5, 8}}
	if b.Rect() != want {
		t.Errorf("bbox = %v, want %v", b.Rect(), want)
	}
	if b.HalfPerimeter() != 10 {
		t.Errorf("half-perimeter = %g, want 10", b.HalfPerimeter())
	}
}

func TestBBoxMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		var b BBox
		minX, minY := math.Inf(1), math.Inf(1)
		maxX, maxY := math.Inf(-1), math.Inf(-1)
		for i := 0; i < n; i++ {
			p := Point{rng.Float64() * 100, rng.Float64() * 100}
			b.Expand(p)
			minX = math.Min(minX, p.X)
			minY = math.Min(minY, p.Y)
			maxX = math.Max(maxX, p.X)
			maxY = math.Max(maxY, p.Y)
		}
		want := (maxX - minX) + (maxY - minY)
		if math.Abs(b.HalfPerimeter()-want) > 1e-12 {
			t.Fatalf("trial %d: half-perimeter = %g, want %g", trial, b.HalfPerimeter(), want)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp misbehaves")
	}
}

func TestRowSnapX(t *testing.T) {
	r := Row{Y: 0, X: 10, W: 100, H: 12, SiteW: 2}
	if got := r.SnapX(15.4, 4); got != 16 {
		t.Errorf("SnapX(15.4) = %g, want 16", got)
	}
	// Clamped to keep cell inside row.
	if got := r.SnapX(200, 4); got != 106 {
		t.Errorf("SnapX(200) = %g, want 106", got)
	}
	if got := r.SnapX(-5, 4); got != 10 {
		t.Errorf("SnapX(-5) = %g, want 10", got)
	}
	cont := Row{Y: 0, X: 0, W: 100, H: 12, SiteW: 0}
	if got := cont.SnapX(33.3, 4); got != 33.3 {
		t.Errorf("continuous SnapX = %g, want 33.3", got)
	}
}

func TestNewCoreRows(t *testing.T) {
	c := NewCore(NewRect(0, 0, 100, 120), 12, 1)
	if c.NumRows() != 10 {
		t.Fatalf("NumRows = %d, want 10", c.NumRows())
	}
	if c.RowH() != 12 {
		t.Errorf("RowH = %g", c.RowH())
	}
	if c.Rows[0].Y != 0 || c.Rows[9].Y != 108 {
		t.Errorf("row Ys = %g..%g", c.Rows[0].Y, c.Rows[9].Y)
	}
	if c.Area() != 100*120 {
		t.Errorf("Area = %g", c.Area())
	}
}

func TestNewCorePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for region shorter than a row")
		}
	}()
	NewCore(NewRect(0, 0, 100, 5), 12, 1)
}

func TestRowIndexAndNearest(t *testing.T) {
	c := NewCore(NewRect(0, 0, 100, 120), 12, 1)
	if got := c.RowIndex(0); got != 0 {
		t.Errorf("RowIndex(0) = %d", got)
	}
	if got := c.RowIndex(13); got != 1 {
		t.Errorf("RowIndex(13) = %d", got)
	}
	if got := c.RowIndex(119.9); got != 9 {
		t.Errorf("RowIndex(119.9) = %d", got)
	}
	if got := c.RowIndex(500); got != 9 {
		t.Errorf("RowIndex(500) = %d (should clamp)", got)
	}
	if got := c.RowIndex(-5); got != 0 {
		t.Errorf("RowIndex(-5) = %d (should clamp)", got)
	}
	if got := c.NearestRowY(13); got != 12 {
		t.Errorf("NearestRowY(13) = %g, want 12", got)
	}
	if got := c.NearestRowY(23); got != 24 {
		t.Errorf("NearestRowY(23) = %g, want 24", got)
	}
	if got := c.NearestRowY(1000); got != 108 {
		t.Errorf("NearestRowY(1000) = %g, want 108", got)
	}
}

func TestGridLocAndIndex(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 100, 100), 10, 10)
	if g.Bins() != 100 {
		t.Fatalf("Bins = %d", g.Bins())
	}
	i, j := g.Loc(Point{15, 95})
	if i != 1 || j != 9 {
		t.Errorf("Loc = (%d,%d), want (1,9)", i, j)
	}
	// Out-of-region points clamp.
	i, j = g.Loc(Point{-10, 500})
	if i != 0 || j != 9 {
		t.Errorf("clamped Loc = (%d,%d)", i, j)
	}
	if g.Index(3, 2) != 23 {
		t.Errorf("Index = %d", g.Index(3, 2))
	}
	br := g.BinRect(1, 2)
	if br != NewRect(10, 20, 20, 30) {
		t.Errorf("BinRect = %v", br)
	}
}

func TestGridRange(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 100, 100), 10, 10)
	i0, i1, j0, j1 := g.Range(NewRect(15, 25, 35, 45))
	if i0 != 1 || i1 != 4 || j0 != 2 || j1 != 5 {
		t.Errorf("Range = %d,%d,%d,%d", i0, i1, j0, j1)
	}
	// Fully outside clamps to empty.
	i0, i1, _, _ = g.Range(NewRect(-50, 0, -10, 10))
	if i0 != 0 || i1 != 0 {
		t.Errorf("outside Range = %d,%d", i0, i1)
	}
	// Empty rect yields empty range.
	i0, i1, j0, j1 = g.Range(Rect{})
	if i0 != i1 || j0 != j1 {
		t.Errorf("empty rect Range = %d,%d,%d,%d", i0, i1, j0, j1)
	}
}

// Property: every random sub-rectangle's Range covers the bins of its corners.
func TestGridRangeCoversCorners(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 100, 100), 7, 13)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		x0, y0 := rng.Float64()*100, rng.Float64()*100
		x1, y1 := rng.Float64()*100, rng.Float64()*100
		r := NewRect(x0, y0, x1, y1)
		if r.Empty() {
			continue
		}
		i0, i1, j0, j1 := g.Range(r)
		li, lj := g.Loc(r.Lo)
		if li < i0 || li >= i1 || lj < j0 || lj >= j1 {
			t.Fatalf("Lo corner bin (%d,%d) outside range [%d,%d)x[%d,%d)", li, lj, i0, i1, j0, j1)
		}
	}
}
