package geom

import (
	"fmt"
	"math"
	"sort"
)

// Row is one horizontal standard-cell row. Cells legalized into a row share
// its Y coordinate and must keep X within [X, X+W] on SiteW multiples.
type Row struct {
	Y     float64 // bottom edge of the row
	X     float64 // left edge
	W     float64 // usable width
	H     float64 // row (cell) height
	SiteW float64 // placement site width; 0 means continuous
}

// Right returns the x coordinate of the row's right edge.
func (r Row) Right() float64 { return r.X + r.W }

// Top returns the y coordinate of the row's top edge.
func (r Row) Top() float64 { return r.Y + r.H }

// Rect returns the row extent as a rectangle.
func (r Row) Rect() Rect { return NewRect(r.X, r.Y, r.Right(), r.Top()) }

// SnapX quantizes x to the row's site grid, clamped into the row span so a
// cell of width w stays inside the row.
func (r Row) SnapX(x, w float64) float64 {
	x = Clamp(x, r.X, r.Right()-w)
	if r.SiteW <= 0 {
		return x
	}
	n := math.Round((x - r.X) / r.SiteW)
	x = r.X + n*r.SiteW
	return Clamp(x, r.X, r.Right()-w)
}

// Core models the chip core area: the placeable region plus its uniform row
// structure. All placement stages share one Core.
type Core struct {
	Region Rect  // outer placeable region
	Rows   []Row // rows sorted by increasing Y
}

// NewCore builds a core region filled with uniform rows of height rowH and
// site width siteW. It panics if the region cannot hold a single row, since
// that is a programming error in benchmark construction.
func NewCore(region Rect, rowH, siteW float64) *Core {
	if rowH <= 0 || region.H() < rowH || region.Empty() {
		panic(fmt.Sprintf("geom: invalid core: region=%v rowH=%g", region, rowH))
	}
	n := int(region.H() / rowH)
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Y:     region.Lo.Y + float64(i)*rowH,
			X:     region.Lo.X,
			W:     region.W(),
			H:     rowH,
			SiteW: siteW,
		}
	}
	return &Core{Region: region, Rows: rows}
}

// RowH returns the uniform row height.
func (c *Core) RowH() float64 {
	if len(c.Rows) == 0 {
		return 0
	}
	return c.Rows[0].H
}

// NumRows returns the number of rows.
func (c *Core) NumRows() int { return len(c.Rows) }

// RowIndex returns the index of the row whose span contains y, clamped to
// the valid range so out-of-core coordinates map to the nearest row.
func (c *Core) RowIndex(y float64) int {
	if len(c.Rows) == 0 {
		return 0
	}
	i := sort.Search(len(c.Rows), func(i int) bool {
		return c.Rows[i].Top() > y
	})
	if i >= len(c.Rows) {
		i = len(c.Rows) - 1
	}
	return i
}

// NearestRowY returns the bottom Y of the row nearest to y.
func (c *Core) NearestRowY(y float64) float64 {
	if len(c.Rows) == 0 {
		return y
	}
	i := c.RowIndex(y)
	// RowIndex clamps downward; check the neighbor above for the rounding
	// boundary between two rows.
	if i+1 < len(c.Rows) &&
		math.Abs(c.Rows[i+1].Y-y) < math.Abs(c.Rows[i].Y-y) {
		i++
	}
	return c.Rows[i].Y
}

// Area returns the total placeable row area.
func (c *Core) Area() float64 {
	a := 0.0
	for _, r := range c.Rows {
		a += r.W * r.H
	}
	return a
}

// Grid maps the core region onto a uniform nx×ny bin grid; it is the shared
// indexing scheme for density and congestion maps.
type Grid struct {
	Region Rect
	NX, NY int
	BinW   float64
	BinH   float64
}

// NewGrid builds a grid with nx×ny bins over region.
func NewGrid(region Rect, nx, ny int) Grid {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return Grid{
		Region: region,
		NX:     nx,
		NY:     ny,
		BinW:   region.W() / float64(nx),
		BinH:   region.H() / float64(ny),
	}
}

// Bins returns the total number of bins.
func (g Grid) Bins() int { return g.NX * g.NY }

// Index returns the flat bin index for bin column i, row j.
func (g Grid) Index(i, j int) int { return j*g.NX + i }

// Loc returns the bin column/row containing point p, clamped into the grid.
func (g Grid) Loc(p Point) (i, j int) {
	i = int((p.X - g.Region.Lo.X) / g.BinW)
	j = int((p.Y - g.Region.Lo.Y) / g.BinH)
	return clampInt(i, 0, g.NX-1), clampInt(j, 0, g.NY-1)
}

// BinRect returns the extent of bin (i, j).
func (g Grid) BinRect(i, j int) Rect {
	x0 := g.Region.Lo.X + float64(i)*g.BinW
	y0 := g.Region.Lo.Y + float64(j)*g.BinH
	return NewRect(x0, y0, x0+g.BinW, y0+g.BinH)
}

// Range returns the half-open bin index ranges [i0,i1)×[j0,j1) overlapped by
// r, clamped into the grid. Empty rectangles yield empty ranges.
func (g Grid) Range(r Rect) (i0, i1, j0, j1 int) {
	if r.Empty() {
		return 0, 0, 0, 0
	}
	i0 = int(math.Floor((r.Lo.X - g.Region.Lo.X) / g.BinW))
	i1 = int(math.Ceil((r.Hi.X - g.Region.Lo.X) / g.BinW))
	j0 = int(math.Floor((r.Lo.Y - g.Region.Lo.Y) / g.BinH))
	j1 = int(math.Ceil((r.Hi.Y - g.Region.Lo.Y) / g.BinH))
	i0 = clampInt(i0, 0, g.NX)
	i1 = clampInt(i1, 0, g.NX)
	j0 = clampInt(j0, 0, g.NY)
	j1 = clampInt(j1, 0, g.NY)
	return i0, i1, j0, j1
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
