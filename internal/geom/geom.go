// Package geom provides the planar geometry primitives shared by every
// placement stage: points, rectangles, standard-cell rows and the chip core
// area. All coordinates are float64 in database units; rows are horizontal,
// as in the Bookshelf standard-cell model.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the placement plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// String formats the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle with Lo as lower-left corner and Hi as
// upper-right corner. A Rect with Hi coordinates not greater than Lo
// coordinates is empty.
type Rect struct {
	Lo, Hi Point
}

// NewRect returns the rectangle spanning [x0,x1]×[y0,y1], normalizing the
// corner order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{Point{x0, y0}, Point{x1, y1}}
}

// W returns the rectangle width (zero if empty).
func (r Rect) W() float64 {
	if r.Hi.X < r.Lo.X {
		return 0
	}
	return r.Hi.X - r.Lo.X
}

// H returns the rectangle height (zero if empty).
func (r Rect) H() float64 {
	if r.Hi.Y < r.Lo.Y {
		return 0
	}
	return r.Hi.Y - r.Lo.Y
}

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether the rectangle has no interior.
func (r Rect) Empty() bool { return r.Hi.X <= r.Lo.X || r.Hi.Y <= r.Lo.Y }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Contains reports whether p lies inside r (closed on Lo, open on Hi for
// well-defined binning of shared edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X < r.Hi.X && p.Y >= r.Lo.Y && p.Y < r.Hi.Y
}

// ContainsRect reports whether s lies entirely inside r (closed comparison).
func (r Rect) ContainsRect(s Rect) bool {
	return s.Lo.X >= r.Lo.X && s.Hi.X <= r.Hi.X && s.Lo.Y >= r.Lo.Y && s.Hi.Y <= r.Hi.Y
}

// Intersect returns the overlap of r and s; the result may be empty.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		Point{math.Max(r.Lo.X, s.Lo.X), math.Max(r.Lo.Y, s.Lo.Y)},
		Point{math.Min(r.Hi.X, s.Hi.X), math.Min(r.Hi.Y, s.Hi.Y)},
	}
}

// Overlap returns the overlap area of r and s.
func (r Rect) Overlap(s Rect) float64 { return r.Intersect(s).Area() }

// Union returns the bounding box of r and s. Empty inputs are ignored so the
// zero Rect can be used as an accumulator seed via Expand.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Point{math.Min(r.Lo.X, s.Lo.X), math.Min(r.Lo.Y, s.Lo.Y)},
		Point{math.Max(r.Hi.X, s.Hi.X), math.Max(r.Hi.Y, s.Hi.Y)},
	}
}

// Translate returns r moved by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.Lo.Add(d), r.Hi.Add(d)}
}

// Inset returns r shrunk by m on every side. The result may be empty.
func (r Rect) Inset(m float64) Rect {
	return Rect{Point{r.Lo.X + m, r.Lo.Y + m}, Point{r.Hi.X - m, r.Hi.Y - m}}
}

// String formats the rectangle as its two corners.
func (r Rect) String() string {
	return fmt.Sprintf("[%s %s]", r.Lo, r.Hi)
}

// BBox is an accumulator for the bounding box of a point set. The zero BBox
// is empty and ready to use.
type BBox struct {
	init bool
	r    Rect
}

// Expand grows the box to include p.
func (b *BBox) Expand(p Point) {
	if !b.init {
		b.init = true
		b.r = Rect{p, p}
		return
	}
	if p.X < b.r.Lo.X {
		b.r.Lo.X = p.X
	}
	if p.Y < b.r.Lo.Y {
		b.r.Lo.Y = p.Y
	}
	if p.X > b.r.Hi.X {
		b.r.Hi.X = p.X
	}
	if p.Y > b.r.Hi.Y {
		b.r.Hi.Y = p.Y
	}
}

// ExpandRect grows the box to include r's corners.
func (b *BBox) ExpandRect(r Rect) {
	b.Expand(r.Lo)
	b.Expand(r.Hi)
}

// Empty reports whether nothing has been added.
func (b *BBox) Empty() bool { return !b.init }

// Rect returns the accumulated bounding box (the zero Rect when empty).
func (b *BBox) Rect() Rect { return b.r }

// HalfPerimeter returns the half-perimeter of the accumulated box, the
// per-net quantity summed by the HPWL metric.
func (b *BBox) HalfPerimeter() float64 {
	if !b.init {
		return 0
	}
	return b.r.W() + b.r.H()
}

// Clamp returns v limited to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
