package wirelength

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: all models are translation invariant — shifting every pin by a
// constant leaves the length unchanged. This is the invariant that lets the
// placer move aligned groups as rigid bodies without changing their internal
// wirelength.
func TestModelsTranslationInvariant(t *testing.T) {
	models := []Model{HPWL{}, NewLSE(1.3), NewWA(1.3)}
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		shift = math.Mod(shift, 1e4)
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		xs := make([]float64, n)
		shifted := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 50
			shifted[i] = xs[i] + shift
		}
		for _, m := range models {
			a := m.EvalAxis(xs, nil)
			b := m.EvalAxis(shifted, nil)
			if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: scaling all pins by k > 0 scales every model's length by k.
func TestModelsScaleCovariant(t *testing.T) {
	// Smooth models scale only when γ scales too; that is exactly how the
	// placer anneals γ in units of bin size, so test that contract.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 0.5 + rng.Float64()*4
		n := 2 + rng.Intn(8)
		xs := make([]float64, n)
		scaled := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 20
			scaled[i] = xs[i] * k
		}
		for _, gamma := range []float64{0.7, 2.5} {
			for _, pair := range []struct{ a, b Model }{
				{NewLSE(gamma), NewLSE(gamma * k)},
				{NewWA(gamma), NewWA(gamma * k)},
			} {
				la := pair.a.EvalAxis(xs, nil)
				lb := pair.b.EvalAxis(scaled, nil)
				if math.Abs(lb-k*la) > 1e-6*(1+math.Abs(k*la)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: both smooth models are symmetric under pin permutation.
func TestModelsPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(6)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 30
		}
		perm := rng.Perm(n)
		permuted := make([]float64, n)
		for i, p := range perm {
			permuted[i] = xs[p]
		}
		for _, m := range []Model{NewLSE(1), NewWA(1), HPWL{}} {
			a := m.EvalAxis(xs, nil)
			b := m.EvalAxis(permuted, nil)
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				t.Fatalf("%s not permutation invariant: %g vs %g", m.Name(), a, b)
			}
		}
	}
}
