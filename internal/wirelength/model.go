// Package wirelength provides the wirelength models used by analytical
// placement: the exact half-perimeter wirelength (HPWL) and two smooth,
// differentiable approximations — the classic log-sum-exp (LSE) model and
// the weighted-average (WA) model of Hsu, Balabanov and Chang, which this
// paper family introduced and prefers.
//
// All models are separable per axis; Eval operates on the pin coordinates of
// one net and accumulates the gradient with respect to each pin coordinate.
// Smaller smoothing parameter γ means a tighter approximation but a harder
// optimization landscape; placers anneal γ downward.
//
// Two forms of each smooth model exist. The Model interface (LSE, WA) owns
// its scratch and is convenient for one-off evaluations. The flat SoA
// kernels — WAValueAxis, WAGradAxis, LSEValueAxis, LSEGradAxis, with the
// per-net AxisState summary — write the per-pin exponential terms into
// caller-owned CSR buffers so the global-placement engine can store them and
// later produce gradients without re-exponentiating (soa.go documents the
// contract). Both forms are bit-identical at equal inputs and γ.
package wirelength

import "math"

// Model is a per-net smooth wirelength model. Implementations are reused
// across nets and are not safe for concurrent use (they carry scratch
// buffers); parallel evaluators give each worker its own instance via Clone.
type Model interface {
	// Name identifies the model in reports ("lse", "wa", "hpwl").
	Name() string
	// EvalAxis returns the model's length along one axis for the pin
	// coordinates in xs and, when grad is non-nil, *adds* ∂len/∂xs[i] into
	// grad[i]. len(grad) must equal len(xs).
	EvalAxis(xs []float64, grad []float64) float64
	// SetGamma updates the smoothing parameter (ignored by exact models).
	SetGamma(gamma float64)
	// Clone returns an independent model with the same parameters and fresh
	// scratch state. Because EvalAxis is a pure function of (xs, γ), a clone
	// produces bit-identical results to its original, which is what lets the
	// sharded wirelength evaluator hand one clone to each worker without
	// perturbing placements.
	Clone() Model
}

// Eval evaluates a model over both axes of one net.
func Eval(m Model, xs, ys, gx, gy []float64) float64 {
	return m.EvalAxis(xs, gx) + m.EvalAxis(ys, gy)
}

// HPWL is the exact half-perimeter model. Its gradient is subdifferential
// (±1 on the extreme pins); it is provided for evaluation and testing, not
// for optimization.
type HPWL struct{}

// Name implements Model.
func (HPWL) Name() string { return "hpwl" }

// SetGamma implements Model (no-op).
func (HPWL) SetGamma(float64) {}

// Clone implements Model. HPWL is stateless, so the receiver is its own
// clone.
func (HPWL) Clone() Model { return HPWL{} }

// EvalAxis implements Model.
func (HPWL) EvalAxis(xs []float64, grad []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	iMin, iMax := 0, 0
	for i, v := range xs {
		if v < xs[iMin] {
			iMin = i
		}
		if v > xs[iMax] {
			iMax = i
		}
	}
	if grad != nil && iMin != iMax {
		grad[iMax]++
		grad[iMin]--
	}
	return xs[iMax] - xs[iMin]
}

// LSE is the log-sum-exp smooth wirelength model:
//
//	WL(x) = γ·ln Σ e^{x_i/γ} + γ·ln Σ e^{−x_i/γ}
//
// It over-estimates HPWL by at most 2γ·ln(n).
type LSE struct {
	Gamma float64
	buf   []float64
}

// NewLSE returns an LSE model with smoothing γ.
func NewLSE(gamma float64) *LSE { return &LSE{Gamma: gamma} }

// Name implements Model.
func (m *LSE) Name() string { return "lse" }

// SetGamma implements Model.
func (m *LSE) SetGamma(g float64) { m.Gamma = g }

// Clone implements Model.
func (m *LSE) Clone() Model { return NewLSE(m.Gamma) }

// EvalAxis implements Model.
func (m *LSE) EvalAxis(xs []float64, grad []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	g := m.Gamma
	maxV, minV := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v > maxV {
			maxV = v
		}
		if v < minV {
			minV = v
		}
	}
	if cap(m.buf) < 2*n {
		m.buf = make([]float64, 2*n)
	}
	ep := m.buf[:n]      // e^{(x_i − max)/γ}
	en := m.buf[n : 2*n] // e^{(min − x_i)/γ}
	var sp, sn float64
	for i, v := range xs {
		ep[i] = math.Exp((v - maxV) / g)
		en[i] = math.Exp((minV - v) / g)
		sp += ep[i]
		sn += en[i]
	}
	wl := (maxV + g*math.Log(sp)) + (-minV + g*math.Log(sn))
	if grad != nil {
		for i := range xs {
			grad[i] += ep[i]/sp - en[i]/sn
		}
	}
	return wl
}

// WA is the weighted-average wirelength model:
//
//	WL(x) = Σ x_i·e^{x_i/γ} / Σ e^{x_i/γ}  −  Σ x_i·e^{−x_i/γ} / Σ e^{−x_i/γ}
//
// It under-estimates HPWL, with error bounded by O(γ), and has strictly
// better worst-case error than LSE at equal γ (the model's headline claim).
type WA struct {
	Gamma float64
	buf   []float64
}

// NewWA returns a WA model with smoothing γ.
func NewWA(gamma float64) *WA { return &WA{Gamma: gamma} }

// Name implements Model.
func (m *WA) Name() string { return "wa" }

// SetGamma implements Model.
func (m *WA) SetGamma(g float64) { m.Gamma = g }

// Clone implements Model.
func (m *WA) Clone() Model { return NewWA(m.Gamma) }

// EvalAxis implements Model.
func (m *WA) EvalAxis(xs []float64, grad []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	g := m.Gamma
	maxV, minV := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v > maxV {
			maxV = v
		}
		if v < minV {
			minV = v
		}
	}
	if cap(m.buf) < 2*n {
		m.buf = make([]float64, 2*n)
	}
	ep := m.buf[:n]      // e^{(x_i − max)/γ}, numerically safe
	en := m.buf[n : 2*n] // e^{(min − x_i)/γ}
	var sp, sn, xp, xn float64
	for i, v := range xs {
		ep[i] = math.Exp((v - maxV) / g)
		en[i] = math.Exp((minV - v) / g)
		sp += ep[i]
		sn += en[i]
		xp += v * ep[i]
		xn += v * en[i]
	}
	waMax := xp / sp
	waMin := xn / sn
	if grad != nil {
		for i, v := range xs {
			dMax := ep[i] / sp * (1 + (v-waMax)/g)
			dMin := en[i] / sn * (1 - (v-waMin)/g)
			grad[i] += dMax - dMin
		}
	}
	return waMax - waMin
}
