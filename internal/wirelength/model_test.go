package wirelength

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func hpwlOf(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

func TestHPWLModel(t *testing.T) {
	m := HPWL{}
	xs := []float64{3, -1, 7, 2}
	grad := make([]float64, 4)
	got := m.EvalAxis(xs, grad)
	if got != 8 {
		t.Fatalf("HPWL = %g, want 8", got)
	}
	want := []float64{0, -1, 1, 0}
	for i := range want {
		if grad[i] != want[i] {
			t.Fatalf("grad = %v, want %v", grad, want)
		}
	}
	if m.EvalAxis(nil, nil) != 0 {
		t.Error("empty net should be 0")
	}
}

func TestLSEUpperBoundsHPWL(t *testing.T) {
	m := NewLSE(2.0)
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 2 {
			return true
		}
		wl := m.EvalAxis(xs, nil)
		h := hpwlOf(xs)
		bound := h + 2*m.Gamma*math.Log(float64(len(xs)))
		return wl >= h-1e-9 && wl <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWALowerBoundsHPWL(t *testing.T) {
	m := NewWA(2.0)
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 2 {
			return true
		}
		wl := m.EvalAxis(xs, nil)
		h := hpwlOf(xs)
		return wl <= h+1e-9 && wl >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The WA paper's claim is about the worst case: LSE's error grows as
// 2γ·ln(n) when pins cluster (degenerating to 2γ·ln(n) at coincident pins),
// while WA's error stays O(γ) independent of n. Verify on clustered nets —
// the configurations that actually occur early in global placement.
func TestWAWorstCaseBetterThanLSE(t *testing.T) {
	gamma := 1.0
	wa := NewWA(gamma)
	lse := NewLSE(gamma)

	// Degenerate net: all pins coincident. HPWL = 0.
	xs := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	if got := wa.EvalAxis(xs, nil); math.Abs(got) > 1e-9 {
		t.Errorf("WA on coincident pins = %g, want 0", got)
	}
	if got := lse.EvalAxis(xs, nil); math.Abs(got-2*gamma*math.Log(8)) > 1e-9 {
		t.Errorf("LSE on coincident pins = %g, want 2γln8 = %g", got, 2*gamma*math.Log(8))
	}

	// Clustered nets: two tight clusters of many pins each. WA's worst-case
	// error must not exceed LSE's.
	rng := rand.New(rand.NewSource(17))
	var maxErrWA, maxErrLSE float64
	for trial := 0; trial < 300; trial++ {
		n := 4 + rng.Intn(12)
		xs := make([]float64, n)
		c0, c1 := rng.Float64()*10, 20+rng.Float64()*10
		for j := range xs {
			c := c0
			if j%2 == 0 {
				c = c1
			}
			xs[j] = c + rng.NormFloat64()*0.2
		}
		h := hpwlOf(xs)
		maxErrWA = math.Max(maxErrWA, math.Abs(wa.EvalAxis(xs, nil)-h))
		maxErrLSE = math.Max(maxErrLSE, math.Abs(lse.EvalAxis(xs, nil)-h))
	}
	if maxErrWA > maxErrLSE {
		t.Errorf("worst-case WA error %g exceeds LSE error %g on clustered nets", maxErrWA, maxErrLSE)
	}
}

func TestSmoothModelsConvergeToHPWL(t *testing.T) {
	xs := []float64{0, 3, 11, 5}
	h := hpwlOf(xs)
	for _, gamma := range []float64{4, 1, 0.25, 0.05} {
		wa := NewWA(gamma).EvalAxis(xs, nil)
		lse := NewLSE(gamma).EvalAxis(xs, nil)
		if gamma == 0.05 {
			if math.Abs(wa-h) > 0.1 || math.Abs(lse-h) > 0.6 {
				t.Errorf("γ=%g: wa=%g lse=%g hpwl=%g (should be close)", gamma, wa, lse, h)
			}
		}
	}
}

// Gradient check against central finite differences for both smooth models.
func TestGradientsMatchFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	models := []Model{NewLSE(1.5), NewWA(1.5)}
	for _, m := range models {
		for trial := 0; trial < 30; trial++ {
			n := 2 + rng.Intn(6)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.NormFloat64() * 10
			}
			grad := make([]float64, n)
			m.EvalAxis(xs, grad)
			const h = 1e-6
			for i := 0; i < n; i++ {
				orig := xs[i]
				xs[i] = orig + h
				fp := m.EvalAxis(xs, nil)
				xs[i] = orig - h
				fm := m.EvalAxis(xs, nil)
				xs[i] = orig
				fd := (fp - fm) / (2 * h)
				if math.Abs(fd-grad[i]) > 1e-4*(1+math.Abs(fd)) {
					t.Fatalf("%s: grad[%d] = %g, finite diff = %g (xs=%v)",
						m.Name(), i, grad[i], fd, xs)
				}
			}
		}
	}
}

func TestGradientAccumulates(t *testing.T) {
	// Eval must *add* into grad so callers can accumulate across nets.
	m := NewWA(1)
	xs := []float64{0, 10}
	grad := []float64{100, 100}
	m.EvalAxis(xs, grad)
	if grad[0] >= 100 || grad[1] <= 100 {
		t.Errorf("gradient did not accumulate: %v", grad)
	}
}

func TestNumericalStabilityLargeCoords(t *testing.T) {
	// Coordinates far beyond exp() overflow range must still work thanks to
	// max-subtraction.
	for _, m := range []Model{NewLSE(0.5), NewWA(0.5)} {
		xs := []float64{1e7, 1e7 + 13, 1e7 + 5}
		grad := make([]float64, 3)
		wl := m.EvalAxis(xs, grad)
		if math.IsNaN(wl) || math.IsInf(wl, 0) {
			t.Fatalf("%s: wl = %g on large coordinates", m.Name(), wl)
		}
		if math.Abs(wl-13) > 1.5 {
			t.Errorf("%s: wl = %g, want ≈13", m.Name(), wl)
		}
		for i, g := range grad {
			if math.IsNaN(g) {
				t.Fatalf("%s: grad[%d] is NaN", m.Name(), i)
			}
		}
	}
}

func TestEvalBothAxes(t *testing.T) {
	m := NewWA(0.01)
	xs := []float64{0, 10}
	ys := []float64{0, 4}
	gx := make([]float64, 2)
	gy := make([]float64, 2)
	wl := Eval(m, xs, ys, gx, gy)
	if math.Abs(wl-14) > 0.1 {
		t.Errorf("Eval = %g, want ≈14", wl)
	}
	if gx[1] <= 0 || gy[1] <= 0 {
		t.Errorf("gradients wrong sign: gx=%v gy=%v", gx, gy)
	}
}

func TestSetGamma(t *testing.T) {
	m := NewWA(10)
	xs := []float64{0, 10}
	loose := m.EvalAxis(xs, nil)
	m.SetGamma(0.01)
	tight := m.EvalAxis(xs, nil)
	if !(tight > loose) {
		t.Errorf("tight γ should approach HPWL from below: loose=%g tight=%g", loose, tight)
	}
	if math.Abs(tight-10) > 0.01 {
		t.Errorf("tight = %g, want ≈10", tight)
	}
}

func sanitize(raw []float64) []float64 {
	xs := raw[:0:0]
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		xs = append(xs, math.Mod(v, 1000))
	}
	return xs
}

func BenchmarkWAEval(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 8)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	grad := make([]float64, 8)
	m := NewWA(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range grad {
			grad[j] = 0
		}
		m.EvalAxis(xs, grad)
	}
}

func BenchmarkLSEEval(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 8)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	grad := make([]float64, 8)
	m := NewLSE(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range grad {
			grad[j] = 0
		}
		m.EvalAxis(xs, grad)
	}
}
