package wirelength

import (
	"math"
	"math/rand"
	"testing"
)

// randPins returns n pin coordinates drawn from a few distributions that
// stress the kernels: wide spreads, near-coincident clusters, and exact ties.
func randPins(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch rng.Intn(3) {
		case 0:
			xs[i] = rng.Float64() * 1000
		case 1:
			xs[i] = 500 + rng.Float64()*1e-6
		default:
			xs[i] = float64(rng.Intn(8)) * 10
		}
	}
	return xs
}

// TestSoAKernelsMatchModels is the bit-identity contract between the SoA
// kernels and the Model implementations: at every degree (the 2-pin fast
// path included) and several γ, value and gradient must match WA.EvalAxis /
// LSE.EvalAxis exactly.
func TestSoAKernelsMatchModels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, gamma := range []float64{0.5, 4, 64} {
		wa := NewWA(gamma)
		lse := NewLSE(gamma)
		for _, n := range []int{2, 3, 4, 7, 16, 33} {
			for rep := 0; rep < 20; rep++ {
				xs := randPins(rng, n)
				ep := make([]float64, n)
				en := make([]float64, n)
				kGrad := make([]float64, n)
				mGrad := make([]float64, n)

				st, kv := WAValueAxis(xs, ep, en, gamma)
				WAGradAxis(xs, ep, en, st, gamma, kGrad)
				mv := wa.EvalAxis(xs, mGrad)
				if kv != mv {
					t.Fatalf("WA n=%d γ=%g: kernel value %v != model %v", n, gamma, kv, mv)
				}
				for i := range kGrad {
					if kGrad[i] != mGrad[i] {
						t.Fatalf("WA n=%d γ=%g: grad[%d] %v != model %v", n, gamma, i, kGrad[i], mGrad[i])
					}
				}

				for i := range mGrad {
					mGrad[i] = 0
				}
				st, kv = LSEValueAxis(xs, ep, en, gamma)
				LSEGradAxis(ep, en, st, kGrad)
				mv = lse.EvalAxis(xs, mGrad)
				if kv != mv {
					t.Fatalf("LSE n=%d γ=%g: kernel value %v != model %v", n, gamma, kv, mv)
				}
				for i := range kGrad {
					if kGrad[i] != mGrad[i] {
						t.Fatalf("LSE n=%d γ=%g: grad[%d] %v != model %v", n, gamma, i, kGrad[i], mGrad[i])
					}
				}
			}
		}
	}
}

// TestSoAKernelsTwoPinTies pins down the fast path's edge cases explicitly:
// equal pins, reversed order, and zero-width nets must match the models.
func TestSoAKernelsTwoPinTies(t *testing.T) {
	cases := [][2]float64{{5, 5}, {5, 7}, {7, 5}, {0, 0}, {-3, -3.0000001}}
	for _, gamma := range []float64{1, 8} {
		wa := NewWA(gamma)
		for _, c := range cases {
			xs := []float64{c[0], c[1]}
			ep := make([]float64, 2)
			en := make([]float64, 2)
			kGrad := make([]float64, 2)
			mGrad := make([]float64, 2)
			st, kv := WAValueAxis(xs, ep, en, gamma)
			WAGradAxis(xs, ep, en, st, gamma, kGrad)
			mv := wa.EvalAxis(xs, mGrad)
			if kv != mv || kGrad[0] != mGrad[0] || kGrad[1] != mGrad[1] {
				t.Fatalf("WA 2-pin %v γ=%g: kernel (%v,%v) != model (%v,%v)",
					c, gamma, kv, kGrad, mv, mGrad)
			}
		}
	}
}

// TestSoAKernelsEmptyNet checks the degenerate degree-0 contract.
func TestSoAKernelsEmptyNet(t *testing.T) {
	if st, v := WAValueAxis(nil, nil, nil, 4); v != 0 || st != (AxisState{}) {
		t.Fatalf("WAValueAxis(nil) = %v, %v; want zero", st, v)
	}
	if st, v := LSEValueAxis(nil, nil, nil, 4); v != 0 || st != (AxisState{}) {
		t.Fatalf("LSEValueAxis(nil) = %v, %v; want zero", st, v)
	}
}

// TestSoAKernelsPoisonPropagates documents the NaN contract: non-finite
// inputs must never produce a finite value, so the optimizer's health guard
// sees the poison.
func TestSoAKernelsPoisonPropagates(t *testing.T) {
	for _, xs := range [][]float64{
		{math.NaN(), 3},
		{1, math.NaN(), 5},
	} {
		ep := make([]float64, len(xs))
		en := make([]float64, len(xs))
		if _, v := WAValueAxis(xs, ep, en, 4); !math.IsNaN(v) {
			t.Fatalf("WAValueAxis(%v) = %v, want NaN", xs, v)
		}
		if _, v := LSEValueAxis(xs, ep, en, 4); !math.IsNaN(v) {
			t.Fatalf("LSEValueAxis(%v) = %v, want NaN", xs, v)
		}
	}
}

// BenchmarkWAGradSoA measures the SoA value+gradient kernel over a CSR pin
// layout shaped like a real netlist (mostly 2-pin nets, a tail of wider
// ones), against the Model-interface path doing the same work. The "reuse"
// variant is the delta evaluator's accepted-iterate pattern: gradients from
// stored exponentials, no value recomputation.
func BenchmarkWAGradSoA(b *testing.B) {
	const nNets = 2048
	rng := rand.New(rand.NewSource(7))
	off := make([]int32, nNets+1)
	for ni := 0; ni < nNets; ni++ {
		deg := 2
		if ni%8 == 0 {
			deg = 3 + rng.Intn(14)
		}
		off[ni+1] = off[ni] + int32(deg)
	}
	total := int(off[nNets])
	xs := make([]float64, total)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	ep := make([]float64, total)
	en := make([]float64, total)
	grad := make([]float64, total)
	st := make([]AxisState, nNets)
	const gamma = 8.0

	b.Run("soa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for ni := 0; ni < nNets; ni++ {
				lo, hi := off[ni], off[ni+1]
				s, _ := WAValueAxis(xs[lo:hi], ep[lo:hi], en[lo:hi], gamma)
				st[ni] = s
				WAGradAxis(xs[lo:hi], ep[lo:hi], en[lo:hi], s, gamma, grad[lo:hi])
			}
		}
	})
	b.Run("soa-grad-reuse", func(b *testing.B) {
		for ni := 0; ni < nNets; ni++ {
			lo, hi := off[ni], off[ni+1]
			s, _ := WAValueAxis(xs[lo:hi], ep[lo:hi], en[lo:hi], gamma)
			st[ni] = s
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for ni := 0; ni < nNets; ni++ {
				lo, hi := off[ni], off[ni+1]
				WAGradAxis(xs[lo:hi], ep[lo:hi], en[lo:hi], st[ni], gamma, grad[lo:hi])
			}
		}
	})
	b.Run("model", func(b *testing.B) {
		m := NewWA(gamma)
		for i := 0; i < b.N; i++ {
			for ni := 0; ni < nNets; ni++ {
				lo, hi := off[ni], off[ni+1]
				g := grad[lo:hi]
				for k := range g {
					g[k] = 0
				}
				m.EvalAxis(xs[lo:hi], g)
			}
		}
	})
}
