package wirelength

import "math"

//docslint:kerneldoc

// The SoA kernels below are the flat, allocation-free form of the LSE and WA
// models used by the global-placement engine's incremental evaluator
// (internal/place/global). Where the Model interface owns its scratch, these
// kernels write into caller-owned CSR slices so one evaluation's exponential
// terms can be kept and reused by a later gradient-only pass:
//
//   - AxisState is the per-net, per-axis summary a value pass produces.
//   - WAValueAxis / LSEValueAxis fill the caller's exp scratch (ep, en) and
//     return the AxisState plus the axis wirelength.
//   - WAGradAxis / LSEGradAxis turn a stored (xs, ep, en, AxisState) back
//     into per-pin gradients without a single math.Exp call.
//
// Every kernel is a pure function of its arguments with a fixed operation
// order, so results are bit-identical to the corresponding Model.EvalAxis
// and independent of worker count. Two-pin nets (the majority in real
// netlists) take a single-exponential fast path that produces the same bits
// as the general loop because both pins share the exponent arguments 0 and
// (min−max)/γ, and math.Exp(0) is exactly 1.

// AxisState is the reusable per-net summary of one axis evaluation: the pin
// extrema, the positive/negative exponential sums, and (WA only) the
// coordinate-weighted sums. Together with the per-pin exp scratch written by
// WAValueAxis/LSEValueAxis it is sufficient to reconstruct the axis gradient
// exactly, which is what lets the engine's delta evaluator skip the value
// recomputation for nets whose pins did not move.
type AxisState struct {
	Max, Min   float64 // pin extrema along the axis
	SumP, SumN float64 // Σ e^{(x_i−max)/γ}, Σ e^{(min−x_i)/γ}
	WSumP      float64 // Σ x_i·e^{(x_i−max)/γ} (WA value path only)
	WSumN      float64 // Σ x_i·e^{(min−x_i)/γ} (WA value path only)
}

// WAValueAxis evaluates the weighted-average model along one axis for the
// pin coordinates xs, storing e^{(x_i−max)/γ} into ep[i] and e^{(min−x_i)/γ}
// into en[i] (both must have len(xs) slots). It returns the axis state and
// the axis wirelength, bit-identical to WA.EvalAxis at the same γ.
//
//placelint:hotpath
func WAValueAxis(xs, ep, en []float64, gamma float64) (AxisState, float64) {
	n := len(xs)
	if n == 0 {
		return AxisState{}, 0
	}
	maxV, minV := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v > maxV {
			maxV = v
		}
		if v < minV {
			minV = v
		}
	}
	var sp, sn, xp, xn float64
	if n == 2 {
		// Both exponent arguments are 0 and (min−max)/γ; one Exp suffices.
		// math.Exp(0) == 1 exactly and (min−max) is the identical subtraction
		// the general loop performs, so the bits match it — including equal
		// pins, where t = exp(0) = 1 covers all four slots.
		t := math.Exp((minV - maxV) / gamma)
		var e0p, e0n, e1p, e1n float64
		if xs[0] > xs[1] {
			e0p, e0n, e1p, e1n = 1, t, t, 1
		} else {
			e0p, e0n, e1p, e1n = t, 1, 1, t
		}
		ep[0], en[0] = e0p, e0n
		ep[1], en[1] = e1p, e1n
		sp = e0p + e1p
		sn = e0n + e1n
		xp = xs[0]*e0p + xs[1]*e1p
		xn = xs[0]*e0n + xs[1]*e1n
	} else {
		for i, v := range xs {
			// The extreme pins have exponent argument exactly ±0, and
			// math.Exp(±0) is exactly 1 — a compare replaces those calls
			// without changing a bit.
			e1, e2 := 1.0, 1.0
			//placelint:ignore floateq exact identity with the scan's max: v==maxV ⇒ (v−maxV)/γ is ±0 ⇒ Exp is exactly 1
			if v != maxV {
				e1 = math.Exp((v - maxV) / gamma)
			}
			//placelint:ignore floateq exact identity with the scan's min: v==minV ⇒ (minV−v)/γ is ±0 ⇒ Exp is exactly 1
			if v != minV {
				e2 = math.Exp((minV - v) / gamma)
			}
			ep[i] = e1
			en[i] = e2
			sp += e1
			sn += e2
			xp += v * e1
			xn += v * e2
		}
	}
	st := AxisState{Max: maxV, Min: minV, SumP: sp, SumN: sn, WSumP: xp, WSumN: xn}
	return st, xp/sp - xn/sn
}

// WAGradAxis writes the weighted-average axis gradient for a net previously
// evaluated by WAValueAxis into grad (len(xs) slots, overwritten — not
// accumulated). xs, ep, en and st must be exactly the slices/state of that
// value evaluation; no exponentials are recomputed.
//
//placelint:hotpath
func WAGradAxis(xs, ep, en []float64, st AxisState, gamma float64, grad []float64) {
	waMax := st.WSumP / st.SumP
	waMin := st.WSumN / st.SumN
	for i, v := range xs {
		dMax := ep[i] / st.SumP * (1 + (v-waMax)/gamma)
		dMin := en[i] / st.SumN * (1 - (v-waMin)/gamma)
		grad[i] = dMax - dMin
	}
}

// LSEValueAxis evaluates the log-sum-exp model along one axis, storing the
// per-pin exponentials into ep/en exactly like WAValueAxis. It returns the
// axis state (WSumP/WSumN stay zero — LSE does not need them) and the axis
// wirelength, bit-identical to LSE.EvalAxis at the same γ.
//
//placelint:hotpath
func LSEValueAxis(xs, ep, en []float64, gamma float64) (AxisState, float64) {
	n := len(xs)
	if n == 0 {
		return AxisState{}, 0
	}
	maxV, minV := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v > maxV {
			maxV = v
		}
		if v < minV {
			minV = v
		}
	}
	var sp, sn float64
	if n == 2 {
		// Same single-exponential shortcut as WAValueAxis.
		t := math.Exp((minV - maxV) / gamma)
		var e0p, e0n, e1p, e1n float64
		if xs[0] > xs[1] {
			e0p, e0n, e1p, e1n = 1, t, t, 1
		} else {
			e0p, e0n, e1p, e1n = t, 1, 1, t
		}
		ep[0], en[0] = e0p, e0n
		ep[1], en[1] = e1p, e1n
		sp = e0p + e1p
		sn = e0n + e1n
	} else {
		for i, v := range xs {
			// Same extreme-pin shortcut as WAValueAxis: Exp(±0) is exactly 1.
			e1, e2 := 1.0, 1.0
			//placelint:ignore floateq exact identity with the scan's max: v==maxV ⇒ (v−maxV)/γ is ±0 ⇒ Exp is exactly 1
			if v != maxV {
				e1 = math.Exp((v - maxV) / gamma)
			}
			//placelint:ignore floateq exact identity with the scan's min: v==minV ⇒ (minV−v)/γ is ±0 ⇒ Exp is exactly 1
			if v != minV {
				e2 = math.Exp((minV - v) / gamma)
			}
			ep[i] = e1
			en[i] = e2
			sp += e1
			sn += e2
		}
	}
	wl := (maxV + gamma*math.Log(sp)) + (-minV + gamma*math.Log(sn))
	return AxisState{Max: maxV, Min: minV, SumP: sp, SumN: sn}, wl
}

// LSEGradAxis writes the log-sum-exp axis gradient for a net previously
// evaluated by LSEValueAxis into grad (overwritten, not accumulated), using
// only the stored exponentials and sums.
//
//placelint:hotpath
func LSEGradAxis(ep, en []float64, st AxisState, grad []float64) {
	for i := range grad {
		grad[i] = ep[i]/st.SumP - en[i]/st.SumN
	}
}
