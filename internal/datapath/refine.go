package datapath

import (
	"sort"

	"repro/internal/netlist"
)

// partialMasks inspects every continuation attempt from a seed column and,
// when only a strict subset of bits can continue (at least MinBits of them),
// returns that subset as a retry mask. This rescues structural-bus seeds
// polluted by coincidental look-alike bits: one fake bit would otherwise
// veto the growth of the whole array.
func (ex *extractor) partialMasks(seed []netlist.CellID) [][]bool {
	nl := ex.nl
	bits := len(seed)
	var masks [][]bool
	seenMask := map[string]bool{}

	addMask := func(feasible []bool) {
		n := 0
		for _, f := range feasible {
			if f {
				n++
			}
		}
		// Rescue is for seeds polluted by fake bits; a mask at or below half
		// the seed width is a different (usually diagonal/cross-bit)
		// structure and aligning it would be wrong.
		min := ex.opt.MinBits
		if q := bits/2 + 1; q > min {
			min = q
		}
		if n < min || n == bits {
			return
		}
		key := string(maskBytes(feasible))
		if seenMask[key] {
			return
		}
		seenMask[key] = true
		masks = append(masks, append([]bool(nil), feasible...))
	}

	pinNames := make([]string, 0, 8)
	for name := range ex.pins(seed[0]) {
		pinNames = append(pinNames, name)
	}
	sort.Strings(pinNames)

	for _, pn := range pinNames {
		p0 := nl.Pin(ex.pins(seed[0])[pn])
		// Per-bit candidate nets; majority degree defines the lock-step
		// shape the mask keeps.
		nets := make([]netlist.NetID, bits)
		degCount := map[int]int{}
		for i, c := range seed {
			pid, okPin := ex.pins(c)[pn]
			if !okPin {
				nets[i] = netlist.NoNet
				continue
			}
			ni := nl.Pin(pid).Net
			nets[i] = ni
			degCount[nl.Net(ni).Degree()]++
		}
		wantDeg, bestN := -1, 0
		//placelint:ignore maporder argmax with a full (count, degree) tie break is iteration-order independent
		for d, n := range degCount {
			if n > bestN || (n == bestN && d < wantDeg) {
				wantDeg, bestN = d, n
			}
		}
		if wantDeg < 0 || wantDeg > ex.opt.MaxFanout {
			continue
		}
		netOK := make([]bool, bits)
		netUse := map[netlist.NetID]int{}
		for i, ni := range nets {
			if ni == netlist.NoNet || nl.Net(ni).Degree() != wantDeg {
				continue
			}
			netOK[i] = true
			netUse[ni]++
		}
		for i, ni := range nets {
			if netOK[i] && netUse[ni] > 1 {
				netOK[i] = false // shared net: control, not data
			}
		}

		if p0.Dir == netlist.DirOutput {
			for _, key := range ex.sinkKeysAny(nets, netOK) {
				feasible := make([]bool, bits)
				for i := range seed {
					if !netOK[i] {
						continue
					}
					if c := ex.uniqueEndpoint(nets[i], key, netlist.DirInput); c != netlist.NoCell {
						feasible[i] = true
					}
				}
				addMask(feasible)
			}
		} else {
			feasible := make([]bool, bits)
			for i := range seed {
				if !netOK[i] {
					continue
				}
				if c := ex.uniqueDriver(nets[i]); c != netlist.NoCell {
					feasible[i] = true
				}
			}
			addMask(feasible)
		}
	}
	return masks
}

// sinkKeysAny unions the exactly-once sink keys over the usable nets, so a
// key present on most bits is still tried.
func (ex *extractor) sinkKeysAny(nets []netlist.NetID, netOK []bool) []endpointMatch {
	seen := map[endpointMatch]bool{}
	var keys []endpointMatch
	for i, ni := range nets {
		if !netOK[i] {
			continue
		}
		for _, k := range ex.sinkKeys(ni, netlist.NoCell) {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].sig != keys[b].sig {
			return keys[a].sig < keys[b].sig
		}
		return keys[a].pin < keys[b].pin
	})
	return keys
}

func maskBytes(mask []bool) []byte {
	b := make([]byte, len(mask))
	for i, v := range mask {
		if v {
			b[i] = 1
		}
	}
	return b
}

// foldGroups reshapes groups whose rows are really words×bits. Evidence: an
// external driver cell feeding several rows of the same column through one
// data net marks those rows as one physical bit (the words of a register
// bank all load from the same input bit). When the evidence partitions the
// rows into equal-size classes, the group is reshaped to classes×(k·stages).
func (ex *extractor) foldGroups(groups []Group) []Group {
	for gi := range groups {
		g, ok := ex.foldOne(groups[gi])
		if !ok {
			continue
		}
		// Folding may drop non-conforming rows (fake bits, foreign cells a
		// mixed blob swept up); release their claims so later selection
		// rounds can regroup them correctly.
		kept := make(map[netlist.CellID]bool, g.NumCells())
		for _, col := range g.Columns {
			for _, c := range col {
				kept[c] = true
			}
		}
		for _, col := range groups[gi].Columns {
			for _, c := range col {
				if !kept[c] {
					ex.used[c] = false
				}
			}
		}
		groups[gi] = g
	}
	return groups
}

func (ex *extractor) foldOne(g Group) (Group, bool) {
	nl := ex.nl
	bits := g.Bits()
	if bits < 2*ex.opt.MinBits {
		return g, false
	}
	inGroup := make(map[netlist.CellID]bool, g.NumCells())
	for _, col := range g.Columns {
		for _, c := range col {
			inGroup[c] = true
		}
	}

	// Each (column, pin) is a separate fold hypothesis: nets on that pin
	// whose external driver feeds several rows partition the rows into
	// classes. Data pins (a register bank's load inputs) partition rows by
	// bit — many small classes; control pins (write enables) partition by
	// word — few large classes. Preferring the hypothesis with the most
	// classes therefore picks the data interpretation.
	var best *foldHyp
	for _, col := range g.Columns {
		rowsByPin := map[string]map[netlist.NetID][]int{}
		for b, c := range col {
			for _, pid := range nl.Cell(c).Pins {
				p := nl.Pin(pid)
				if p.Dir != netlist.DirInput {
					continue
				}
				if nl.Net(p.Net).Degree() > ex.opt.MaxFanout {
					continue
				}
				drv := ex.uniqueDriver(p.Net)
				if drv == netlist.NoCell || inGroup[drv] {
					continue
				}
				if rowsByPin[p.Name] == nil {
					rowsByPin[p.Name] = map[netlist.NetID][]int{}
				}
				rowsByPin[p.Name][p.Net] = append(rowsByPin[p.Name][p.Net], b)
			}
		}
		// Visit pins in sorted name order: the class-count comparison below
		// keeps the first hypothesis on ties, so map order would otherwise
		// decide which equally-good pin wins — and with it the partition.
		pins := make([]string, 0, len(rowsByPin))
		for name := range rowsByPin {
			pins = append(pins, name)
		}
		sort.Strings(pins)
		for _, name := range pins {
			h := buildFoldHypothesis(rowsByPin[name], bits, ex.opt.MinBits)
			if h == nil {
				continue
			}
			if best == nil || len(h.classes) > len(best.classes) {
				best = h
			}
		}
	}
	if best == nil {
		return g, false
	}

	// Reshape: each old column becomes k new columns (one per word).
	out := Group{}
	for _, col := range g.Columns {
		for w := 0; w < best.k; w++ {
			newCol := make([]netlist.CellID, len(best.classes))
			for ci, members := range best.classes {
				newCol[ci] = col[members[w]]
			}
			out.Columns = append(out.Columns, newCol)
		}
	}
	return out, true
}

// foldHyp is an equal-size row-partition hypothesis: classes of k rows.
type foldHyp struct {
	classes [][]int // equal-size classes, each sorted
	k       int
}

// buildFoldHypothesis turns a net→rows map into an equal-size row partition
// hypothesis, or nil when the evidence does not support one. Rows outside
// the dominant class size (fake bits, ragged boundaries) are dropped, but
// they must be a minority.
func buildFoldHypothesis(byNet map[netlist.NetID][]int, bits, minBits int) *foldHyp {
	sizeCount := map[int]int{} // class size → rows covered
	//placelint:ignore maporder integer accumulation keyed by class size is order independent
	for _, rows := range byNet {
		if len(rows) >= 2 {
			sizeCount[len(rows)] += len(rows)
		}
	}
	k, covered := 0, 0
	//placelint:ignore maporder argmax with a full (coverage, size) tie break is iteration-order independent
	for sz, rows := range sizeCount {
		if rows > covered || (rows == covered && sz < k) {
			k, covered = sz, rows
		}
	}
	nClasses := 0
	if k >= 2 {
		nClasses = covered / k
	}
	if k < 2 || nClasses < minBits || covered*4 < bits*3 {
		return nil
	}
	// A row may appear in several nets of the same pin only pathologically;
	// require disjoint classes.
	seen := make([]bool, bits)
	var classes [][]int
	//placelint:ignore maporder classes are disjoint (else nil) and fully sorted before use below
	for _, rows := range byNet {
		if len(rows) != k {
			continue
		}
		sorted := append([]int(nil), rows...)
		sort.Ints(sorted)
		for _, r := range sorted {
			if seen[r] {
				return nil
			}
			seen[r] = true
		}
		classes = append(classes, sorted)
	}
	sort.Slice(classes, func(a, b int) bool { return classes[a][0] < classes[b][0] })
	return &foldHyp{classes: classes, k: k}
}

// regrow resumes lock-step growth on the accepted groups: any continuation
// whose cells are globally unclaimed joins its group. Folding and merging
// create shapes whose continuations were impossible earlier.
func (ex *extractor) regrow(groups []Group) {
	for gi := range groups {
		g := &groups[gi]
		for qi := 0; qi < len(g.Columns); qi++ {
			for _, next := range ex.continuations(g.Columns[qi], nil) {
				ok := true
				for _, c := range next {
					if ex.used[c] {
						ok = false
						break
					}
				}
				if !ok || !ex.columnOK(next, nil) {
					continue
				}
				for _, c := range next {
					ex.used[c] = true
				}
				g.Columns = append(g.Columns, next)
			}
		}
	}
}
