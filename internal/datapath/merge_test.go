package datapath

import "testing"

// TestConsistentMappingTieBreakDeterministic pins the fix for a real
// nondeterminism placelint's maporder check surfaced: the per-bit argmax over
// the vote map used to keep whichever entry map iteration visited first, so
// on tied votes the accepted bit permutation — and with it the merge
// decision — changed between runs. The tie must now always resolve to the
// smallest target bit, independent of iteration order.
func TestConsistentMappingTieBreakDeterministic(t *testing.T) {
	// Bit 0 has a genuine tie: targets 0 and 2 both carry 3 votes, and the
	// smaller-target rule must pick 0 every time. The remaining bits vote
	// unambiguously, completing the identity permutation.
	votes := map[[2]int]int{
		{0, 2}: 3,
		{0, 0}: 3,
		{1, 1}: 4,
		{2, 2}: 2,
		{3, 3}: 5,
	}
	want := []int{0, 1, 2, 3}
	for trial := 0; trial < 200; trial++ {
		// Rebuild the map every trial so Go's per-map iteration seed varies;
		// before the tie break this flipped best[0] between 0 and 2.
		v := make(map[[2]int]int, len(votes))
		//placelint:ignore maporder copying into a map; insertion order cannot be observed
		for k, n := range votes {
			v[k] = n
		}
		got, ok := consistentMapping(v, 4)
		if !ok {
			t.Fatalf("trial %d: mapping rejected", trial)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mapping %v, want %v", trial, got, want)
			}
		}
	}
}

// TestConsistentMappingZeroVotesNeverWin guards the tie break's n > 0 term:
// score starts at zero, so without it a zero-vote pair would "tie" the
// initial score and claim a target it has no evidence for — here target 1,
// which collides with bit 1's real vote and would sink the whole mapping on
// the injectivity check.
func TestConsistentMappingZeroVotesNeverWin(t *testing.T) {
	votes := map[[2]int]int{
		{0, 1}: 0,
		{1, 1}: 2,
		{2, 2}: 2,
		{3, 3}: 2,
	}
	got, ok := consistentMapping(votes, 4)
	if !ok {
		t.Fatal("mapping rejected: the zero-vote pair must be ignored, not scored")
	}
	if got[0] != 0 {
		t.Fatalf("bit 0 must take the identity fill, got target %d (mapping %v)", got[0], got)
	}
}
