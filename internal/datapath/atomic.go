package datapath

import "repro/internal/netlist"

// AtomicSets returns, per extracted group, the group's cells in a canonical
// deterministic order (column-major: stage by stage, bit by bit). Multilevel
// coarsening treats each set as one atomic cluster — the whole bits × stages
// array coarsens into a single coarse cell and is never merged with foreign
// cells — so the regularity the extractor recovered survives every
// clustering level and is still intact when the finest level re-aligns the
// group. Cells belonging to no group are not listed.
func (e *Extraction) AtomicSets() [][]netlist.CellID {
	sets := make([][]netlist.CellID, 0, len(e.Groups))
	for gi := range e.Groups {
		g := &e.Groups[gi]
		cells := make([]netlist.CellID, 0, g.NumCells())
		for _, col := range g.Columns {
			cells = append(cells, col...)
		}
		sets = append(sets, cells)
	}
	return sets
}
