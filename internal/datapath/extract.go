package datapath

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Group is one recovered datapath array. Columns[s][b] is the cell of bit b
// at stage s; every column's cells are structurally identical and the bit
// order is consistent across all columns (bit b of every column belongs to
// the same slice).
type Group struct {
	Columns [][]netlist.CellID
}

// Bits returns the number of bit slices in the group.
func (g *Group) Bits() int {
	if len(g.Columns) == 0 {
		return 0
	}
	return len(g.Columns[0])
}

// Stages returns the number of columns (pipeline stages) in the group.
func (g *Group) Stages() int { return len(g.Columns) }

// NumCells returns Bits × Stages.
func (g *Group) NumCells() int { return g.Bits() * g.Stages() }

// String summarizes the group's shape.
func (g *Group) String() string {
	return fmt.Sprintf("group{%d bits × %d stages}", g.Bits(), g.Stages())
}

// Extraction is the result of running the extractor on a netlist.
type Extraction struct {
	Groups []Group
	// CellGroup maps each cell to its group index, or -1.
	CellGroup []int
	// CellBit maps each cell to its bit (row) within its group, or -1.
	CellBit []int
}

// NumGrouped returns the number of cells assigned to any group.
func (e *Extraction) NumGrouped() int {
	n := 0
	for _, g := range e.CellGroup {
		if g >= 0 {
			n++
		}
	}
	return n
}

// Options controls extraction.
type Options struct {
	MinBits       int  // minimum bus width / slice count (default 4)
	MinStages     int  // minimum columns per group (default 2)
	MaxBusBits    int  // widest structural bus considered (default 512)
	MaxFanout     int  // nets wider than this are control, not data (default 12)
	UseNames      bool // infer buses from net names (default on via DefaultOptions)
	UseStructural bool // infer buses from net signatures
}

// DefaultOptions returns the extraction defaults used in the paper
// reproduction: both inference modes on. MinStages is 3 because two
// lock-step columns arise by coincidence in random logic (pairs of identical
// cells joined by identical 2-pin nets), and aligning such false arrays
// costs wirelength for no benefit; three isomorphic stages are decisive.
func DefaultOptions() Options {
	return Options{
		MinBits:       4,
		MinStages:     3,
		MaxBusBits:    512,
		MaxFanout:     12,
		UseNames:      true,
		UseStructural: true,
	}
}

func (o *Options) fillDefaults() {
	if o.MinBits <= 0 {
		o.MinBits = 4
	}
	if o.MinStages <= 0 {
		o.MinStages = 2
	}
	if o.MaxBusBits <= 0 {
		o.MaxBusBits = 512
	}
	if o.MaxFanout <= 0 {
		o.MaxFanout = 12
	}
}

// extractor carries the per-run state.
type extractor struct {
	nl       *netlist.Netlist
	opt      Options
	cellSigs []Sig
	used     []bool // cells committed to an accepted group
	// pinByName[c] maps pin name → PinID for cell c, built lazily.
	pinByName []map[string]netlist.PinID
}

// Extract runs datapath extraction on nl.
func Extract(nl *netlist.Netlist, opt Options) *Extraction {
	opt.fillDefaults()
	ex := &extractor{
		nl:        nl,
		opt:       opt,
		cellSigs:  CellSigs(nl),
		used:      make([]bool, nl.NumCells()),
		pinByName: make([]map[string]netlist.PinID, nl.NumCells()),
	}

	var buses []Bus
	if opt.UseNames {
		buses = append(buses, NameBuses(nl, opt.MinBits)...)
	}
	if opt.UseStructural {
		netSigs := NetSigs(nl, ex.cellSigs)
		buses = append(buses, StructuralBuses(nl, netSigs, opt.MinBits, opt.MaxBusBits)...)
	}
	// Wider buses first: they anchor the most regular structure.
	sort.SliceStable(buses, func(a, b int) bool { return buses[a].Bits() > buses[b].Bits() })

	// Phase 1: grow a candidate group from every seed, without claiming
	// cells — overlapping candidates compete in phase 2. Seeds polluted by
	// a coincidental extra bit (common for structural buses) are retried on
	// the bit subsets that can actually continue.
	var candidates []Group
	for _, bus := range buses {
		for _, seed := range ex.seedColumns(bus) {
			if group, ok := ex.grow(seed); ok {
				candidates = append(candidates, group)
			}
			for _, mask := range ex.partialMasks(seed) {
				sub := make([]netlist.CellID, 0, len(seed))
				for i, keep := range mask {
					if keep {
						sub = append(sub, seed[i])
					}
				}
				if group, ok := ex.grow(sub); ok {
					candidates = append(candidates, group)
				}
			}
		}
	}

	// Phases 2-6 iterate: select candidates (most lock-step evidence
	// first), repair their shapes (fold), extend them (regrow), unite them
	// (merge), and drop the ones that remain shallow. Cells claimed by a
	// dropped group are released so the surviving candidates can pick them
	// up on the next round — a wide 2-stage mixed blob (one structural
	// class pooled across several units) would otherwise both fail its own
	// fold and starve the per-unit candidates of their cells.
	var finalGroups []Group
	for round := 0; round < 3; round++ {
		selected := ex.selectCandidates(candidates)
		if len(selected) == 0 {
			break
		}
		selected = ex.foldGroups(selected)
		ex.regrow(selected)
		selected = mergeGroups(nl, selected, opt.MaxFanout)
		ex.regrow(selected)

		// Confidence filter: groups still shallower than MinStages after
		// folding, regrowing and merging are coincidences or mixed blobs;
		// release their cells.
		dropped := 0
		for _, g := range selected {
			if g.Stages() >= opt.MinStages {
				finalGroups = append(finalGroups, g)
				continue
			}
			dropped++
			for _, col := range g.Columns {
				for _, c := range col {
					ex.used[c] = false
				}
			}
		}
		if dropped == 0 {
			break
		}
	}

	res := &Extraction{
		Groups:    finalGroups,
		CellGroup: make([]int, nl.NumCells()),
		CellBit:   make([]int, nl.NumCells()),
	}
	for i := range res.CellGroup {
		res.CellGroup[i] = -1
		res.CellBit[i] = -1
	}
	for gi, g := range res.Groups {
		for _, col := range g.Columns {
			for b, c := range col {
				res.CellGroup[c] = gi
				res.CellBit[c] = b
			}
		}
	}
	return res
}

// pins returns the name→pin map of cell c.
func (ex *extractor) pins(c netlist.CellID) map[string]netlist.PinID {
	if m := ex.pinByName[c]; m != nil {
		return m
	}
	cell := ex.nl.Cell(c)
	m := make(map[string]netlist.PinID, len(cell.Pins))
	for _, pid := range cell.Pins {
		m[ex.nl.Pin(pid).Name] = pid
	}
	ex.pinByName[c] = m
	return m
}

// columnOK reports whether cells form a valid fresh column: all distinct,
// unused, sharing one signature.
func (ex *extractor) columnOK(cells []netlist.CellID, tentative map[netlist.CellID]bool) bool {
	if len(cells) == 0 {
		return false
	}
	seen := make(map[netlist.CellID]bool, len(cells))
	sig := ex.cellSigs[cells[0]]
	for _, c := range cells {
		if c == netlist.NoCell || ex.used[c] || tentative[c] || seen[c] || ex.cellSigs[c] != sig {
			return false
		}
		seen[c] = true
	}
	return true
}

// endpointMatch describes one continuation target found on a net.
type endpointMatch struct {
	sig Sig
	pin string
}

// seedColumns derives candidate seed columns from a bus: for every
// (signature, pin-name) combination that occurs exactly once among the sinks
// of each bus net, the matched cells form a column; likewise for the unique
// drivers.
func (ex *extractor) seedColumns(bus Bus) [][]netlist.CellID {
	nl := ex.nl
	var seeds [][]netlist.CellID

	// Enumerate candidate sink keys from the first net.
	first := nl.Net(bus.Nets[0])
	counts := make(map[endpointMatch]int)
	for _, pid := range first.Pins {
		p := nl.Pin(pid)
		if p.Cell == netlist.NoCell || p.Dir == netlist.DirOutput {
			continue
		}
		counts[endpointMatch{ex.cellSigs[p.Cell], p.Name}]++
	}
	keys := make([]endpointMatch, 0, len(counts))
	for k, c := range counts {
		if c == 1 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].sig != keys[b].sig {
			return keys[a].sig < keys[b].sig
		}
		return keys[a].pin < keys[b].pin
	})

	for _, key := range keys {
		// Subset seeding: keep the bits whose net matches; real buses have
		// ragged boundaries (carry in/out, enables), and demanding a match
		// on every bit would discard the whole array.
		col := make([]netlist.CellID, 0, len(bus.Nets))
		for _, ni := range bus.Nets {
			if c := ex.uniqueEndpoint(ni, key, netlist.DirInput); c != netlist.NoCell {
				col = append(col, c)
			}
		}
		if len(col) >= ex.opt.MinBits && ex.columnOK(col, nil) {
			seeds = append(seeds, col)
		}
	}

	// Driver column: the unique output endpoint of each net. Drivers may
	// mix masters (boundary bits); keep the dominant signature subset.
	col := make([]netlist.CellID, 0, len(bus.Nets))
	for _, ni := range bus.Nets {
		if c := ex.uniqueDriver(ni); c != netlist.NoCell {
			col = append(col, c)
		}
	}
	col = ex.dominantSigSubset(col)
	if len(col) >= ex.opt.MinBits && ex.columnOK(col, nil) {
		seeds = append(seeds, col)
	}
	return seeds
}

// dominantSigSubset keeps the cells sharing the most common signature,
// preserving order.
func (ex *extractor) dominantSigSubset(col []netlist.CellID) []netlist.CellID {
	if len(col) == 0 {
		return col
	}
	counts := make(map[Sig]int)
	for _, c := range col {
		counts[ex.cellSigs[c]]++
	}
	var best Sig
	bestN := -1
	//placelint:ignore maporder argmax with a full (count, sig) tie break is iteration-order independent
	for s, n := range counts {
		if n > bestN || (n == bestN && s < best) {
			best, bestN = s, n
		}
	}
	out := col[:0]
	for _, c := range col {
		if ex.cellSigs[c] == best {
			out = append(out, c)
		}
	}
	return out
}

// uniqueEndpoint returns the only cell attached to net ni through a pin with
// the given name/signature/direction, or NoCell when absent or ambiguous.
func (ex *extractor) uniqueEndpoint(ni netlist.NetID, key endpointMatch, dir netlist.Dir) netlist.CellID {
	nl := ex.nl
	found := netlist.NoCell
	for _, pid := range nl.Net(ni).Pins {
		p := nl.Pin(pid)
		if p.Cell == netlist.NoCell || p.Dir != dir || p.Name != key.pin {
			continue
		}
		if ex.cellSigs[p.Cell] != key.sig {
			continue
		}
		if found != netlist.NoCell {
			return netlist.NoCell // ambiguous
		}
		found = p.Cell
	}
	return found
}

// uniqueDriver returns the single output-pin cell of net ni, or NoCell.
func (ex *extractor) uniqueDriver(ni netlist.NetID) netlist.CellID {
	nl := ex.nl
	found := netlist.NoCell
	for _, pid := range nl.Net(ni).Pins {
		p := nl.Pin(pid)
		if p.Cell == netlist.NoCell || p.Dir != netlist.DirOutput {
			continue
		}
		if found != netlist.NoCell {
			return netlist.NoCell
		}
		found = p.Cell
	}
	return found
}

// grow runs BFS from the seed column, adding every lock-step continuation
// (forward through output pins, backward through input pins) whose cells are
// fresh. Returns the group and whether it meets the acceptance thresholds.
func (ex *extractor) grow(seed []netlist.CellID) (Group, bool) {
	tentative := make(map[netlist.CellID]bool, len(seed)*4)
	for _, c := range seed {
		tentative[c] = true
	}
	group := Group{Columns: [][]netlist.CellID{seed}}
	for qi := 0; qi < len(group.Columns); qi++ {
		for _, next := range ex.continuations(group.Columns[qi], tentative) {
			// Re-validate: an earlier continuation from this same column may
			// have claimed these cells (e.g. a rotator's straight and
			// rotated paths reach the same mux column in two bit orders).
			if !ex.columnOK(next, tentative) {
				continue
			}
			for _, c := range next {
				tentative[c] = true
			}
			group.Columns = append(group.Columns, next)
		}
	}
	// Depth is checked again *after* fold/regrow/merge (see Extract): a
	// wide 2-stage candidate may be a folded register bank that deepens
	// once its row structure is recovered, so only the hard floor applies
	// here.
	if group.Bits() < ex.opt.MinBits || group.Stages() < 2 {
		return Group{}, false
	}
	return group, true
}

// continuations finds every new column reachable from col in lock step.
func (ex *extractor) continuations(col []netlist.CellID, tentative map[netlist.CellID]bool) [][]netlist.CellID {
	nl := ex.nl
	var result [][]netlist.CellID

	// Iterate the pin names of the column's class via cell 0, sorted for
	// determinism.
	pinNames := make([]string, 0, 8)
	for name := range ex.pins(col[0]) {
		pinNames = append(pinNames, name)
	}
	sort.Strings(pinNames)

	for _, pn := range pinNames {
		p0 := nl.Pin(ex.pins(col[0])[pn])
		// Gather the per-bit nets on this pin; they must be distinct
		// (a shared net is a control signal, not per-bit data) and narrow
		// enough to be data.
		nets := make([]netlist.NetID, len(col))
		ok := true
		seenNet := make(map[netlist.NetID]bool, len(col))
		wantDeg := -1
		for i, c := range col {
			pid, exists := ex.pins(c)[pn]
			if !exists {
				ok = false
				break
			}
			ni := nl.Pin(pid).Net
			deg := nl.Net(ni).Degree()
			if wantDeg < 0 {
				wantDeg = deg
			}
			// Lock-step requires per-bit, same-shape nets: distinct (shared
			// = control), equal degree (unequal = boundary or coincidence),
			// and narrow enough to be data.
			if seenNet[ni] || deg != wantDeg || deg > ex.opt.MaxFanout {
				ok = false
				break
			}
			seenNet[ni] = true
			nets[i] = ni
		}
		if !ok {
			continue
		}

		if p0.Dir == netlist.DirOutput {
			// Forward: unique same-key sink per net.
			for _, key := range ex.sinkKeys(nets[0], col[0]) {
				next := make([]netlist.CellID, len(col))
				good := true
				for i, ni := range nets {
					c := ex.uniqueEndpoint(ni, key, netlist.DirInput)
					if c == netlist.NoCell {
						good = false
						break
					}
					next[i] = c
				}
				if good && ex.columnOK(next, tentative) {
					result = append(result, next)
				}
			}
		} else {
			// Backward: unique driver per net, all alike.
			next := make([]netlist.CellID, len(col))
			good := true
			for i, ni := range nets {
				c := ex.uniqueDriver(ni)
				if c == netlist.NoCell {
					good = false
					break
				}
				next[i] = c
			}
			if good && ex.columnOK(next, tentative) {
				result = append(result, next)
			}
		}
	}
	return result
}

// sinkKeys lists the (signature, pin) keys occurring exactly once among the
// input-pin endpoints of net ni, excluding pins on cell self.
func (ex *extractor) sinkKeys(ni netlist.NetID, self netlist.CellID) []endpointMatch {
	nl := ex.nl
	counts := make(map[endpointMatch]int)
	for _, pid := range nl.Net(ni).Pins {
		p := nl.Pin(pid)
		if p.Cell == netlist.NoCell || p.Cell == self || p.Dir == netlist.DirOutput {
			continue
		}
		counts[endpointMatch{ex.cellSigs[p.Cell], p.Name}]++
	}
	keys := make([]endpointMatch, 0, len(counts))
	for k, c := range counts {
		if c == 1 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].sig != keys[b].sig {
			return keys[a].sig < keys[b].sig
		}
		return keys[a].pin < keys[b].pin
	})
	return keys
}

// rungs scores a candidate by its lock-step evidence: the number of
// parallel net "rungs" between consecutive columns. Depth and width both
// contribute, so true arrays outrank both the wide-but-shallow mixed blobs
// and the deep-but-narrow diagonal chains.
func rungs(g *Group) int { return g.Bits() * (g.Stages() - 1) }

// selectCandidates greedily claims candidates in decreasing evidence order,
// shedding columns whose cells are already claimed; remnants survive with
// two or more columns (the merge phase reunites them with their array).
func (ex *extractor) selectCandidates(candidates []Group) []Group {
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ga, gb := &candidates[order[a]], &candidates[order[b]]
		if rungs(ga) != rungs(gb) {
			return rungs(ga) > rungs(gb)
		}
		if ga.Bits() != gb.Bits() {
			return ga.Bits() > gb.Bits()
		}
		return order[a] < order[b]
	})
	var selected []Group
	for _, ci := range order {
		cand := &candidates[ci]
		var cols [][]netlist.CellID
		for _, col := range cand.Columns {
			free := true
			for _, c := range col {
				if ex.used[c] {
					free = false
					break
				}
			}
			if free {
				cols = append(cols, col)
			}
		}
		if len(cols) < 2 {
			continue
		}
		g := Group{Columns: cols}
		for _, col := range cols {
			for _, c := range col {
				ex.used[c] = true
			}
		}
		selected = append(selected, g)
	}
	return selected
}
