// Package datapath implements the paper's first contribution: automatic
// extraction of datapath regularity from a flat gate-level netlist. The
// extractor recovers groups — arrays of bit slices — without user
// annotations, by combining bus inference (name-based when names carry bus
// indices, purely structural otherwise) with lock-step seed-and-grow
// propagation of isomorphic bit slices.
//
// A Group is a set of columns; every column holds one cell per bit, all
// structurally identical, and column k of every bit belongs to the same
// logical pipeline stage. The structure-aware placer aligns each column
// vertically and each bit horizontally.
package datapath

import (
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/netlist"
)

// Sig is a structural signature; cells (or nets) with equal signatures are
// considered interchangeable slice elements.
type Sig uint64

// sizeClass quantizes cell geometry: identical library cells always share
// it, small numeric noise does not matter.
func sizeClass(v float64) uint64 {
	return uint64(math.Round(v * 16))
}

// CellSigs computes the structural signature of every cell: the library
// type, the footprint, and the sorted pin (name, direction) list — i.e. the
// master identity, independent of instance names AND of the surrounding
// nets. Keeping the signature master-level is deliberate: boundary cells of
// a slice (e.g. the input DFF column) connect to random-fanout nets, and a
// neighborhood-sensitive signature would split those columns apart. The
// discriminating power lives in the lock-step growth checks instead.
func CellSigs(nl *netlist.Netlist) []Sig {
	sigs := make([]Sig, nl.NumCells())
	type pinKey struct {
		name string
		dir  netlist.Dir
	}
	var keys []pinKey
	for ci := range nl.Cells {
		cell := &nl.Cells[ci]
		keys = keys[:0]
		for _, pid := range cell.Pins {
			pin := nl.Pin(pid)
			keys = append(keys, pinKey{name: pin.Name, dir: pin.Dir})
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].name != keys[b].name {
				return keys[a].name < keys[b].name
			}
			return keys[a].dir < keys[b].dir
		})
		h := fnv.New64a()
		writeString(h, cell.Type)
		writeU64(h, sizeClass(cell.W))
		writeU64(h, sizeClass(cell.H))
		writeU64(h, uint64(len(cell.Pins)))
		for _, k := range keys {
			writeString(h, k.name)
			writeU64(h, uint64(k.dir))
		}
		sigs[ci] = Sig(h.Sum64())
	}
	return sigs
}

// NetSigs computes the structural signature of every net: its degree plus
// the sorted multiset of (endpoint cell signature, pin name, direction).
// Nets of the same bus — one per bit of a replicated slice — hash equal.
func NetSigs(nl *netlist.Netlist, cellSigs []Sig) []Sig {
	sigs := make([]Sig, nl.NumNets())
	type endKey struct {
		cellSig Sig
		pin     string
		dir     netlist.Dir
	}
	var keys []endKey
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		keys = keys[:0]
		for _, pid := range net.Pins {
			pin := nl.Pin(pid)
			var cs Sig
			if pin.Cell != netlist.NoCell {
				cs = cellSigs[pin.Cell]
			}
			keys = append(keys, endKey{cellSig: cs, pin: pin.Name, dir: pin.Dir})
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].cellSig != keys[b].cellSig {
				return keys[a].cellSig < keys[b].cellSig
			}
			if keys[a].pin != keys[b].pin {
				return keys[a].pin < keys[b].pin
			}
			return keys[a].dir < keys[b].dir
		})
		h := fnv.New64a()
		writeU64(h, uint64(net.Degree()))
		for _, k := range keys {
			writeU64(h, uint64(k.cellSig))
			writeString(h, k.pin)
			writeU64(h, uint64(k.dir))
		}
		sigs[ni] = Sig(h.Sum64())
	}
	return sigs
}

type hash64 interface {
	Write(p []byte) (int, error)
}

func writeString(h hash64, s string) {
	h.Write([]byte(s))
	h.Write([]byte{0})
}

func writeU64(h hash64, v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}
