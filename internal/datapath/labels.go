package datapath

// Labels assigns each cell to a (group, bit) pair, or -1 for ungrouped.
// They express both extractor output and generator ground truth, so the two
// can be scored against each other.
type Labels struct {
	Group []int
	Bit   []int
}

// NewLabels returns all-ungrouped labels for n cells.
func NewLabels(n int) Labels {
	l := Labels{Group: make([]int, n), Bit: make([]int, n)}
	for i := range l.Group {
		l.Group[i] = -1
		l.Bit[i] = -1
	}
	return l
}

// Labels converts an extraction result to Labels.
func (e *Extraction) Labels() Labels {
	return Labels{Group: e.CellGroup, Bit: e.CellBit}
}

// sameSlice reports whether cells u and v belong to the same bit slice.
func (l *Labels) sameSlice(u, v int) bool {
	return l.Group[u] >= 0 && l.Group[u] == l.Group[v] && l.Bit[u] == l.Bit[v]
}

// Score holds pairwise precision/recall of the same-slice relation. The
// relation is invariant to group numbering and bit permutation, so an
// extraction that recovers the arrays with bits in a different order still
// scores perfectly.
type Score struct {
	Precision float64
	Recall    float64
	F1        float64
	TruePairs int // ground-truth same-slice pairs
	GotPairs  int // predicted same-slice pairs
	Hits      int // predicted pairs that are true
}

// Compare scores predicted labels against ground truth on the pairwise
// same-slice relation.
func Compare(truth, got Labels) Score {
	var s Score
	s.TruePairs = countPairs(truth)
	slices := collectSlices(got)
	//placelint:ignore maporder integer pair counting; addition over slice values is order independent
	for _, cells := range slices {
		for i := 0; i < len(cells); i++ {
			for j := i + 1; j < len(cells); j++ {
				s.GotPairs++
				if truth.sameSlice(cells[i], cells[j]) {
					s.Hits++
				}
			}
		}
	}
	if s.GotPairs > 0 {
		s.Precision = float64(s.Hits) / float64(s.GotPairs)
	}
	if s.TruePairs > 0 {
		s.Recall = float64(s.Hits) / float64(s.TruePairs)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

func collectSlices(l Labels) map[[2]int][]int {
	slices := make(map[[2]int][]int)
	for c, g := range l.Group {
		if g < 0 {
			continue
		}
		key := [2]int{g, l.Bit[c]}
		slices[key] = append(slices[key], c)
	}
	return slices
}

func countPairs(l Labels) int {
	n := 0
	//placelint:ignore maporder integer sum is order independent
	for _, cells := range collectSlices(l) {
		n += len(cells) * (len(cells) - 1) / 2
	}
	return n
}
