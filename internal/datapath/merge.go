package datapath

import (
	"sort"

	"repro/internal/netlist"
)

// mergeGroups repeatedly fuses pairs of groups whose bits are consistently
// connected: if most bits i of group A connect (through data nets) to the
// same bit j = π(i) of group B for an injective π, the two arrays are parts
// of one physical datapath and should share rows. B's columns are permuted
// into A's bit order and appended.
func mergeGroups(nl *netlist.Netlist, groups []Group, maxFanout int) []Group {
	for {
		merged := mergeOnce(nl, groups, maxFanout)
		if merged == nil {
			return groups
		}
		groups = merged
	}
}

// mergeOnce performs the single best merge, or returns nil when none
// qualifies.
func mergeOnce(nl *netlist.Netlist, groups []Group, maxFanout int) []Group {
	if len(groups) < 2 {
		return nil
	}
	// Cell → (group, bit) lookup.
	cellGroup := make(map[netlist.CellID][2]int)
	for gi, g := range groups {
		for _, col := range g.Columns {
			for b, c := range col {
				cellGroup[c] = [2]int{gi, b}
			}
		}
	}

	// Vote on bit correspondences through every data net.
	type pairKey struct{ g1, g2 int }
	votes := make(map[pairKey]map[[2]int]int)
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		if net.Degree() < 2 || net.Degree() > maxFanout {
			continue
		}
		// Collect grouped endpoints (dedup per cell).
		type end struct {
			g, b int
		}
		var ends []end
		seen := map[netlist.CellID]bool{}
		for _, pid := range net.Pins {
			p := nl.Pin(pid)
			if p.Cell == netlist.NoCell || seen[p.Cell] {
				continue
			}
			seen[p.Cell] = true
			if gb, ok := cellGroup[p.Cell]; ok {
				ends = append(ends, end{gb[0], gb[1]})
			}
		}
		for i := 0; i < len(ends); i++ {
			for j := i + 1; j < len(ends); j++ {
				a, b := ends[i], ends[j]
				if a.g == b.g {
					continue
				}
				if a.g > b.g {
					a, b = b, a
				}
				key := pairKey{a.g, b.g}
				if votes[key] == nil {
					votes[key] = make(map[[2]int]int)
				}
				votes[key][[2]int{a.b, b.b}]++
			}
		}
	}

	// Rank candidate pairs by total votes.
	type cand struct {
		key   pairKey
		total int
	}
	var cands []cand
	//placelint:ignore maporder candidates are fully sorted by (total, keys) before use below
	for k, v := range votes {
		if groups[k.g1].Bits() != groups[k.g2].Bits() {
			continue
		}
		total := 0
		//placelint:ignore maporder integer sum is order independent
		for _, n := range v {
			total += n
		}
		cands = append(cands, cand{k, total})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].total != cands[b].total {
			return cands[a].total > cands[b].total
		}
		if cands[a].key.g1 != cands[b].key.g1 {
			return cands[a].key.g1 < cands[b].key.g1
		}
		return cands[a].key.g2 < cands[b].key.g2
	})

	for _, c := range cands {
		bits := groups[c.key.g1].Bits()
		perm, ok := consistentMapping(votes[c.key], bits)
		if !ok {
			continue
		}
		// Merge g2 into g1 with B's rows permuted: new row i of B-columns is
		// B's row perm[i].
		g1 := groups[c.key.g1]
		g2 := groups[c.key.g2]
		for _, col := range g2.Columns {
			newCol := make([]netlist.CellID, bits)
			for i := 0; i < bits; i++ {
				newCol[i] = col[perm[i]]
			}
			g1.Columns = append(g1.Columns, newCol)
		}
		out := make([]Group, 0, len(groups)-1)
		for gi, g := range groups {
			switch gi {
			case c.key.g1:
				out = append(out, g1)
			case c.key.g2:
				// dropped (merged)
			default:
				out = append(out, g)
			}
		}
		return out
	}
	return nil
}

// consistentMapping extracts an injective bit mapping π with π(i) = the
// B-bit most voted for A-bit i. It succeeds when at least 3/4 of the bits
// have an unambiguous, mutually consistent vote; unvoted bits must then be
// completable injectively, which is only guaranteed when the voted part is
// already a full permutation — so require full coverage or identity fill.
func consistentMapping(v map[[2]int]int, bits int) ([]int, bool) {
	best := make([]int, bits)
	score := make([]int, bits)
	for i := range best {
		best[i] = -1
	}
	// Per-bit argmax with a full (votes, target) tie break: on equal votes
	// the smaller target bit wins. Without the tie break the winner was
	// whichever entry map iteration visited first, which made the accepted
	// mapping — and so the merge decision — vary from run to run.
	//placelint:ignore maporder argmax with a full (votes, target) tie break is iteration-order independent
	for key, n := range v {
		i, j := key[0], key[1]
		if i >= bits || j >= bits {
			return nil, false
		}
		if n > score[i] || (n > 0 && n == score[i] && (best[i] < 0 || j < best[i])) {
			score[i] = n
			best[i] = j
		}
	}
	// Count voted bits and check injectivity among them.
	taken := make([]bool, bits)
	voted := 0
	for i := 0; i < bits; i++ {
		if best[i] < 0 {
			continue
		}
		if taken[best[i]] {
			return nil, false
		}
		taken[best[i]] = true
		voted++
	}
	if voted*4 < bits*3 {
		return nil, false
	}
	// Fill unvoted bits with the remaining targets: prefer identity when
	// free, otherwise first free slot (deterministic).
	for i := 0; i < bits; i++ {
		if best[i] >= 0 {
			continue
		}
		if !taken[i] {
			best[i] = i
			taken[i] = true
			continue
		}
		for j := 0; j < bits; j++ {
			if !taken[j] {
				best[i] = j
				taken[j] = true
				break
			}
		}
	}
	return best, true
}
