package datapath

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/netlist"
)

// Bus is an ordered set of nets believed to carry one signal per bit.
type Bus struct {
	Name string // base name, or "" for structurally inferred buses
	Nets []netlist.NetID
}

// Bits returns the bus width.
func (b *Bus) Bits() int { return len(b.Nets) }

// parseBusName splits names of the forms "base[12]", "base<12>" and
// "base_12" into (base, index). ok is false for non-bus names.
func parseBusName(name string) (base string, idx int, ok bool) {
	if n := len(name); n > 2 {
		var open, close byte
		switch name[n-1] {
		case ']':
			open, close = '[', ']'
		case '>':
			open, close = '<', '>'
		}
		if close != 0 {
			if i := strings.LastIndexByte(name, open); i > 0 {
				if v, err := strconv.Atoi(name[i+1 : n-1]); err == nil && v >= 0 {
					return name[:i], v, true
				}
			}
		}
	}
	if i := strings.LastIndexByte(name, '_'); i > 0 && i < len(name)-1 {
		if v, err := strconv.Atoi(name[i+1:]); err == nil && v >= 0 {
			return name[:i], v, true
		}
	}
	return "", 0, false
}

// NameBuses infers buses from net names: nets named base[i] (or base_i,
// base<i>) group into one bus per base, ordered by index. Buses narrower
// than minBits are dropped, as are bases with duplicate indices (ambiguous).
func NameBuses(nl *netlist.Netlist, minBits int) []Bus {
	type member struct {
		idx int
		net netlist.NetID
	}
	byBase := make(map[string][]member)
	for ni := range nl.Nets {
		base, idx, ok := parseBusName(nl.Nets[ni].Name)
		if !ok {
			continue
		}
		byBase[base] = append(byBase[base], member{idx, netlist.NetID(ni)})
	}
	bases := make([]string, 0, len(byBase))
	for b := range byBase {
		bases = append(bases, b)
	}
	sort.Strings(bases)

	var buses []Bus
	for _, base := range bases {
		members := byBase[base]
		if len(members) < minBits {
			continue
		}
		sort.Slice(members, func(a, b int) bool { return members[a].idx < members[b].idx })
		dup := false
		for i := 1; i < len(members); i++ {
			if members[i].idx == members[i-1].idx {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		bus := Bus{Name: base, Nets: make([]netlist.NetID, 0, len(members))}
		for _, m := range members {
			bus.Nets = append(bus.Nets, m.net)
		}
		buses = append(buses, bus)
	}
	return buses
}

// StructuralBuses infers buses with no name information: nets sharing a
// structural signature form one bus, ordered by net id. Signature classes
// narrower than minBits are dropped. Degenerate giant classes (wider than
// maxBits) are dropped too — they are almost always clock/reset-like
// patterns, not data buses.
func StructuralBuses(nl *netlist.Netlist, netSigs []Sig, minBits, maxBits int) []Bus {
	bySig := make(map[Sig][]netlist.NetID)
	for ni := range nl.Nets {
		// Single-pin and 1-degree nets carry no slice structure.
		if nl.Nets[ni].Degree() < 2 {
			continue
		}
		bySig[netSigs[ni]] = append(bySig[netSigs[ni]], netlist.NetID(ni))
	}
	sigs := make([]Sig, 0, len(bySig))
	for s := range bySig {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(a, b int) bool { return sigs[a] < sigs[b] })

	var buses []Bus
	for _, s := range sigs {
		nets := bySig[s]
		if len(nets) < minBits || (maxBits > 0 && len(nets) > maxBits) {
			continue
		}
		sort.Slice(nets, func(a, b int) bool { return nets[a] < nets[b] })
		// A chained structure (stage k feeding stage k+1 through identical
		// cells) puts the nets of every stage into one signature class;
		// seeding that mixed class produces columns that straddle stages
		// and cannot grow. Split the class by chain depth first.
		for _, sub := range splitByChainDepth(nl, nets) {
			if len(sub) >= minBits {
				buses = append(buses, Bus{Nets: sub})
			}
		}
	}
	return buses
}

// splitByChainDepth partitions same-signature nets by their depth within
// the class: a net whose driver cell is itself fed by a class member sits
// one stage deeper than that member. Nets outside any chain all have depth
// zero, so unchained classes pass through unchanged.
func splitByChainDepth(nl *netlist.Netlist, nets []netlist.NetID) [][]netlist.NetID {
	inClass := make(map[netlist.NetID]bool, len(nets))
	for _, n := range nets {
		inClass[n] = true
	}
	depth := make(map[netlist.NetID]int, len(nets))
	var depthOf func(n netlist.NetID, guard int) int
	depthOf = func(n netlist.NetID, guard int) int {
		if d, ok := depth[n]; ok {
			return d
		}
		depth[n] = 0 // breaks cycles
		if guard > len(nets) {
			return 0
		}
		d := 0
		drv := driverPin(nl, n)
		if drv >= 0 {
			cell := nl.Pin(drv).Cell
			if cell != netlist.NoCell {
				for _, pid := range nl.Cell(cell).Pins {
					p := nl.Pin(pid)
					if p.Dir != netlist.DirInput || !inClass[p.Net] {
						continue
					}
					if pd := depthOf(p.Net, guard+1) + 1; pd > d {
						d = pd
					}
				}
			}
		}
		depth[n] = d
		return d
	}
	byDepth := map[int][]netlist.NetID{}
	maxD := 0
	for _, n := range nets {
		d := depthOf(n, 0)
		byDepth[d] = append(byDepth[d], n)
		if d > maxD {
			maxD = d
		}
	}
	out := make([][]netlist.NetID, 0, maxD+1)
	for d := 0; d <= maxD; d++ {
		if len(byDepth[d]) > 0 {
			out = append(out, byDepth[d])
		}
	}
	return out
}

// driverPin returns the pin id of the net's unique output endpoint, or -1.
func driverPin(nl *netlist.Netlist, n netlist.NetID) netlist.PinID {
	found := netlist.PinID(-1)
	for _, pid := range nl.Net(n).Pins {
		p := nl.Pin(pid)
		if p.Dir != netlist.DirOutput {
			continue
		}
		if found >= 0 {
			return -1
		}
		found = pid
	}
	return found
}
