package datapath

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

// buildRegisterColumn builds the canonical bit-sliced structure: per bit i,
// src_i --d[i]--> dff_i --q[i]--> sink_i, with one shared clock net. When
// scramble is set, net names carry no bus indices.
func buildRegisterColumn(t *testing.T, bits int, scramble bool) (*netlist.Netlist, Labels) {
	t.Helper()
	nl := netlist.New("regcol")
	truth := Labels{}

	clkBuf := nl.MustAddCell("clkbuf", "BUF", 2, 1, false)
	srcs := make([]netlist.CellID, bits)
	dffs := make([]netlist.CellID, bits)
	sinks := make([]netlist.CellID, bits)
	for i := 0; i < bits; i++ {
		srcs[i] = nl.MustAddCell(fmt.Sprintf("src%d", i), "INV", 2, 1, false)
		dffs[i] = nl.MustAddCell(fmt.Sprintf("dff%d", i), "DFF", 5, 1, false)
		sinks[i] = nl.MustAddCell(fmt.Sprintf("sink%d", i), "INV", 2, 1, false)
	}
	netName := func(base string, i int) string {
		if scramble {
			// No bracket/underscore-index pattern: invisible to name-based
			// bus inference.
			return fmt.Sprintf("w%s%d", base, i)
		}
		return fmt.Sprintf("%s[%d]", base, i)
	}
	ends := make([]netlist.Endpoint, 0, bits+1)
	ends = append(ends, netlist.Endpoint{Cell: clkBuf, Pin: "Y", Dir: netlist.DirOutput})
	for i := 0; i < bits; i++ {
		ends = append(ends, netlist.Endpoint{Cell: dffs[i], Pin: "CK", Dir: netlist.DirInput})
	}
	nl.MustAddNet("clk", 1, ends...)
	for i := 0; i < bits; i++ {
		nl.MustAddNet(netName("d", i), 1,
			netlist.Endpoint{Cell: srcs[i], Pin: "Y", Dir: netlist.DirOutput},
			netlist.Endpoint{Cell: dffs[i], Pin: "D", Dir: netlist.DirInput},
		)
		nl.MustAddNet(netName("q", i), 1,
			netlist.Endpoint{Cell: dffs[i], Pin: "Q", Dir: netlist.DirOutput},
			netlist.Endpoint{Cell: sinks[i], Pin: "A", Dir: netlist.DirInput},
		)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	truth = NewLabels(nl.NumCells())
	for i := 0; i < bits; i++ {
		for _, c := range []netlist.CellID{srcs[i], dffs[i], sinks[i]} {
			truth.Group[c] = 0
			truth.Bit[c] = i
		}
	}
	return nl, truth
}

func TestCellSigsGroupIdenticalCells(t *testing.T) {
	nl, _ := buildRegisterColumn(t, 8, false)
	sigs := CellSigs(nl)
	d0 := nl.CellByName("dff0")
	d5 := nl.CellByName("dff5")
	s0 := nl.CellByName("src0")
	if sigs[d0] != sigs[d5] {
		t.Error("identical DFFs got different signatures")
	}
	if sigs[d0] == sigs[s0] {
		t.Error("DFF and INV share a signature")
	}
	// src and sink are both INVs but differ in environment (src drives a
	// DFF-bound 2-pin net, sink is driven): the *cell* signature is
	// type-level and ignores neighbors beyond degree, so src0 vs sink0 may
	// collide — that is fine; the extractor separates them by connectivity.
}

func TestNetSigsGroupBusNets(t *testing.T) {
	nl, _ := buildRegisterColumn(t, 8, true)
	cs := CellSigs(nl)
	ns := NetSigs(nl, cs)
	// All 8 d-nets share a signature; the clock net must not share it.
	d0 := nl.NetByName("wd0")
	d5 := nl.NetByName("wd5")
	clk := nl.NetByName("clk")
	if ns[d0] != ns[d5] {
		t.Error("bus bit nets got different signatures")
	}
	if ns[d0] == ns[clk] {
		t.Error("clock net shares the data-net signature")
	}
}

func TestParseBusName(t *testing.T) {
	cases := []struct {
		in   string
		base string
		idx  int
		ok   bool
	}{
		{"data[3]", "data", 3, true},
		{"data<12>", "data", 12, true},
		{"data_7", "data", 7, true},
		{"clk", "", 0, false},
		{"a[x]", "", 0, false},
		{"[3]", "", 0, false},
		{"x_y_9", "x_y", 9, true},
		{"n_00", "n", 0, true},
		{"bus[-2]", "", 0, false},
	}
	for _, c := range cases {
		base, idx, ok := parseBusName(c.in)
		if ok != c.ok || (ok && (base != c.base || idx != c.idx)) {
			t.Errorf("parseBusName(%q) = (%q,%d,%v), want (%q,%d,%v)",
				c.in, base, idx, ok, c.base, c.idx, c.ok)
		}
	}
}

func TestNameBuses(t *testing.T) {
	nl, _ := buildRegisterColumn(t, 8, false)
	buses := NameBuses(nl, 4)
	if len(buses) != 2 {
		t.Fatalf("buses = %d, want 2 (d and q)", len(buses))
	}
	for _, b := range buses {
		if b.Bits() != 8 {
			t.Errorf("bus %q has %d bits", b.Name, b.Bits())
		}
	}
	if buses[0].Name != "d" || buses[1].Name != "q" {
		t.Errorf("bus names = %q, %q", buses[0].Name, buses[1].Name)
	}
}

func TestNameBusesRejectsDuplicateIndex(t *testing.T) {
	nl := netlist.New("dup")
	a := nl.MustAddCell("a", "INV", 1, 1, false)
	for i := 0; i < 5; i++ {
		nl.MustAddNet(fmt.Sprintf("b[%d]", i), 1,
			netlist.Endpoint{Cell: a, Pin: fmt.Sprintf("p%d", i), Dir: netlist.DirInput})
	}
	// Duplicate index 2 under a different container style.
	nl.MustAddNet("b_2", 1, netlist.Endpoint{Cell: a, Pin: "px", Dir: netlist.DirInput})
	buses := NameBuses(nl, 4)
	if len(buses) != 0 {
		t.Errorf("ambiguous bus accepted: %v", buses)
	}
}

func TestStructuralBuses(t *testing.T) {
	nl, _ := buildRegisterColumn(t, 8, true)
	cs := CellSigs(nl)
	ns := NetSigs(nl, cs)
	buses := StructuralBuses(nl, ns, 4, 512)
	// d-nets and q-nets form two structural classes of 8 each (possibly
	// more if INV signatures collide, merging d and q nets into one class
	// of 16 — still valid buses).
	total := 0
	for _, b := range buses {
		total += b.Bits()
	}
	if total < 16 {
		t.Errorf("structural buses cover %d nets, want >= 16", total)
	}
}

func TestExtractRegisterColumnNamed(t *testing.T) {
	nl, truth := buildRegisterColumn(t, 8, false)
	ext := Extract(nl, DefaultOptions())
	if len(ext.Groups) == 0 {
		t.Fatal("no groups extracted")
	}
	score := Compare(truth, ext.Labels())
	if score.Recall < 0.99 || score.Precision < 0.99 {
		t.Errorf("score = %+v, want perfect recovery", score)
	}
	// The main group must be 8 bits wide and at least src→dff→sink deep.
	g := ext.Groups[0]
	if g.Bits() != 8 || g.Stages() < 3 {
		t.Errorf("group shape = %d bits × %d stages, want 8×3", g.Bits(), g.Stages())
	}
}

func TestExtractRegisterColumnScrambled(t *testing.T) {
	nl, truth := buildRegisterColumn(t, 8, true)
	opt := DefaultOptions()
	opt.UseNames = false // force pure structural mode
	ext := Extract(nl, opt)
	score := Compare(truth, ext.Labels())
	if score.Recall < 0.99 || score.Precision < 0.99 {
		t.Errorf("structural-only score = %+v, want perfect recovery", score)
	}
}

func TestExtractTooNarrowBusIgnored(t *testing.T) {
	nl, _ := buildRegisterColumn(t, 3, false) // below MinBits=4
	ext := Extract(nl, DefaultOptions())
	if len(ext.Groups) != 0 {
		t.Errorf("3-bit structure extracted despite MinBits=4: %v", ext.Groups)
	}
	if ext.NumGrouped() != 0 {
		t.Errorf("NumGrouped = %d", ext.NumGrouped())
	}
}

func TestExtractRandomLogicFindsLittle(t *testing.T) {
	// A random Rent-style netlist has no repeated slices; the extractor
	// must not hallucinate large structures.
	rng := rand.New(rand.NewSource(99))
	nl := netlist.New("rand")
	n := 300
	for i := 0; i < n; i++ {
		nl.MustAddCell(fmt.Sprintf("c%d", i), fmt.Sprintf("T%d", rng.Intn(6)), 2, 1, false)
	}
	for i := 0; i < 400; i++ {
		deg := 2 + rng.Intn(3)
		ends := make([]netlist.Endpoint, 0, deg)
		drv := rng.Intn(n)
		ends = append(ends, netlist.Endpoint{
			Cell: netlist.CellID(drv), Pin: "Y", Dir: netlist.DirOutput})
		for k := 1; k < deg; k++ {
			ends = append(ends, netlist.Endpoint{
				Cell: netlist.CellID(rng.Intn(n)), Pin: fmt.Sprintf("A%d", k), Dir: netlist.DirInput})
		}
		nl.MustAddNet(fmt.Sprintf("n%d", i), 1, ends...)
	}
	ext := Extract(nl, DefaultOptions())
	if frac := float64(ext.NumGrouped()) / float64(n); frac > 0.15 {
		t.Errorf("extractor grouped %.0f%% of random logic", frac*100)
	}
}

func TestExtractionInvariants(t *testing.T) {
	nl, _ := buildRegisterColumn(t, 16, false)
	ext := Extract(nl, DefaultOptions())
	seen := make(map[netlist.CellID]bool)
	for gi, g := range ext.Groups {
		if g.Bits() == 0 || g.Stages() == 0 {
			t.Fatalf("group %d empty", gi)
		}
		for _, col := range g.Columns {
			if len(col) != g.Bits() {
				t.Fatalf("group %d has ragged columns", gi)
			}
			for b, c := range col {
				if seen[c] {
					t.Fatalf("cell %d in two groups", c)
				}
				seen[c] = true
				if ext.CellGroup[c] != gi || ext.CellBit[c] != b {
					t.Fatalf("reverse mapping wrong for cell %d", c)
				}
			}
		}
	}
	// Ungrouped cells must have -1 markers.
	for c := range nl.Cells {
		if !seen[netlist.CellID(c)] && (ext.CellGroup[c] != -1 || ext.CellBit[c] != -1) {
			t.Fatalf("ungrouped cell %d has labels %d/%d", c, ext.CellGroup[c], ext.CellBit[c])
		}
	}
}

func TestCompareScoring(t *testing.T) {
	truth := NewLabels(6)
	// Truth: cells 0,1 in slice (0,0); cells 2,3 in slice (0,1).
	truth.Group[0], truth.Bit[0] = 0, 0
	truth.Group[1], truth.Bit[1] = 0, 0
	truth.Group[2], truth.Bit[2] = 0, 1
	truth.Group[3], truth.Bit[3] = 0, 1

	// Prediction: perfect on slice 0, merges slice 1 with cell 4 (false pair).
	got := NewLabels(6)
	got.Group[0], got.Bit[0] = 7, 3 // renumbered: still same-slice pairs
	got.Group[1], got.Bit[1] = 7, 3
	got.Group[2], got.Bit[2] = 7, 4
	got.Group[3], got.Bit[3] = 7, 4
	got.Group[4], got.Bit[4] = 7, 4

	s := Compare(truth, got)
	if s.TruePairs != 2 {
		t.Errorf("TruePairs = %d, want 2", s.TruePairs)
	}
	if s.GotPairs != 4 { // (0,1) + C(3,2)=3
		t.Errorf("GotPairs = %d, want 4", s.GotPairs)
	}
	if s.Hits != 2 {
		t.Errorf("Hits = %d, want 2", s.Hits)
	}
	if s.Recall != 1 || s.Precision != 0.5 {
		t.Errorf("P/R = %g/%g, want 0.5/1", s.Precision, s.Recall)
	}
	if s.F1 <= 0.66 || s.F1 >= 0.67 {
		t.Errorf("F1 = %g, want 2/3", s.F1)
	}
}

func TestCompareEmpty(t *testing.T) {
	s := Compare(NewLabels(5), NewLabels(5))
	if s.Precision != 0 || s.Recall != 0 || s.F1 != 0 {
		t.Errorf("empty compare = %+v", s)
	}
}
